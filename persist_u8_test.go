package gkmeans

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"strings"
	"testing"

	"gkmeans/internal/dataset"
	"gkmeans/internal/vec"
)

// v5 container layout landmarks (persist.go): 28-byte header — magic,
// version, flags, entries, dtype word, segment count, id bound — then the
// uint8 matrix (8-byte shape + N·Dim payload bytes), the 32-byte-per-entry
// segment table, the segment bodies and the optional routing trailer.
const (
	u8HdrFlagsOff = 8
	u8HdrDtypeOff = 16
	u8HdrEnd      = 28
)

// smallU8Index builds a compact uint8 index from byte-valued synthetic
// data; opts compose on top of the fixed graph parameters.
func smallU8Index(t *testing.T, n int, opts ...Option) *Index {
	t.Helper()
	data := dataset.SIFTLike(n, 17) // quantized: every value is an exact byte
	u8, err := vec.U8FromMatrix(data)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := BuildU8(context.Background(), u8,
		append([]Option{WithKappa(5), WithXi(15), WithTau(3), WithSeed(17)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// writeBlob serialises an index and asserts the version word it wrote.
func writeBlob(t *testing.T, idx *Index, wantVersion uint32) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(buf.Bytes()[4:]); v != wantVersion {
		t.Fatalf("index wrote format version %d, want %d", v, wantVersion)
	}
	return buf.Bytes()
}

// roundTrip loads a blob and asserts the reload re-serialises to exactly
// the same bytes — the byte-stability contract of every .gkx version.
func roundTrip(t *testing.T, blob []byte) *Index {
	t.Helper()
	loaded, err := ReadIndexFrom(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if _, err := loaded.WriteTo(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, again.Bytes()) {
		t.Fatal("load/save round-trip changed bytes")
	}
	return loaded
}

// assertSearchEqual compares two indexes' results and work counters on a
// shared query set: a loaded index must answer exactly like the saved one.
// Counters are compared as deltas so an index that already served queries
// earlier in the test can still be diffed against a freshly loaded copy.
func assertSearchEqual(t *testing.T, want, got *Index, queries *Matrix) {
	t.Helper()
	wb, gb := want.SearchStats(), got.SearchStats()
	for qi := 0; qi < queries.N; qi++ {
		w := want.Search(queries.Row(qi), 5, 40)
		g := got.Search(queries.Row(qi), 5, 40)
		if len(w) != len(g) {
			t.Fatalf("query %d: %d vs %d results", qi, len(w), len(g))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("query %d result %d: %v vs %v", qi, i, w[i], g[i])
			}
		}
	}
	delta := func(after, before SearchStats) SearchStats {
		return SearchStats{
			Queries:            after.Queries - before.Queries,
			DistanceComps:      after.DistanceComps - before.DistanceComps,
			ExpandedCandidates: after.ExpandedCandidates - before.ExpandedCandidates,
			ShardsProbed:       after.ShardsProbed - before.ShardsProbed,
			RoutedQueries:      after.RoutedQueries - before.RoutedQueries,
		}
	}
	wd, gd := delta(want.SearchStats(), wb), delta(got.SearchStats(), gb)
	if wd != gd {
		t.Fatalf("search stats diverge: %+v vs %+v", wd, gd)
	}
}

// u8Queries derives a byte-valued query set from the same generator as the
// index data (disjoint seed).
func u8Queries(n int) *Matrix {
	return dataset.SIFTLike(n, 91)
}

// A monolithic uint8 index must write v5 with the uint8 flag and dtype
// word, load back as uint8, answer identically, and round-trip byte-stably.
func TestU8MonoWritesVersion5(t *testing.T) {
	idx := smallU8Index(t, 80)
	blob := writeBlob(t, idx, 5)
	flags := binary.LittleEndian.Uint32(blob[u8HdrFlagsOff:])
	if flags&flagU8 == 0 {
		t.Fatalf("v5 blob without the uint8 flag (flags %#x)", flags)
	}
	if dw := binary.LittleEndian.Uint32(blob[u8HdrDtypeOff:]); dw != dtypeWordU8 {
		t.Fatalf("dtype word %d, want %d", dw, dtypeWordU8)
	}
	loaded := roundTrip(t, blob)
	if loaded.DType() != DTypeUint8 {
		t.Fatalf("loaded dtype %s, want uint8", loaded.DType())
	}
	if loaded.DataU8() == nil || loaded.Data() != nil {
		t.Fatal("loaded uint8 index carries the wrong dataset kind")
	}
	if !loaded.DataU8().Equal(idx.DataU8()) {
		t.Fatal("loaded byte dataset differs")
	}
	assertSearchEqual(t, idx, loaded, u8Queries(10))
}

// Sharded and routed uint8 indexes share the v5 layout; the routed one
// carries the routing trailer and loads back routable.
func TestU8ShardedAndRoutedRoundTrip(t *testing.T) {
	queries := u8Queries(10)
	t.Run("sharded", func(t *testing.T) {
		idx := smallU8Index(t, 120, WithShards(3))
		blob := writeBlob(t, idx, 5)
		flags := binary.LittleEndian.Uint32(blob[u8HdrFlagsOff:])
		if flags&(flagU8|flagSharded) != flagU8|flagSharded {
			t.Fatalf("flags %#x missing uint8|sharded", flags)
		}
		loaded := roundTrip(t, blob)
		if !loaded.Sharded() || loaded.Shards() != 3 || loaded.DType() != DTypeUint8 {
			t.Fatalf("loaded shape: sharded=%v shards=%d dtype=%s", loaded.Sharded(), loaded.Shards(), loaded.DType())
		}
		assertSearchEqual(t, idx, loaded, queries)
	})
	t.Run("routed", func(t *testing.T) {
		idx := smallU8Index(t, 120, WithShards(3), WithRouting(2))
		blob := writeBlob(t, idx, 5)
		flags := binary.LittleEndian.Uint32(blob[u8HdrFlagsOff:])
		if flags&(flagU8|flagSharded|flagRouting) != flagU8|flagSharded|flagRouting {
			t.Fatalf("flags %#x missing uint8|sharded|routing", flags)
		}
		loaded := roundTrip(t, blob)
		if !loaded.Routed() || loaded.DType() != DTypeUint8 {
			t.Fatalf("loaded routed=%v dtype=%s", loaded.Routed(), loaded.DType())
		}
		for qi := 0; qi < queries.N; qi++ {
			w := idx.SearchNProbe(queries.Row(qi), 5, 40, 2)
			g := loaded.SearchNProbe(queries.Row(qi), 5, 40, 2)
			for i := range w {
				if w[i] != g[i] {
					t.Fatalf("nprobe query %d result %d: %v vs %v", qi, i, w[i], g[i])
				}
			}
		}
	})
}

// A mutated uint8 index (append, delete, compact) persists its mutation
// metadata in v5 and loads back with ids, tombstones and dtype intact.
func TestU8MutatedRoundTrip(t *testing.T) {
	idx := smallU8Index(t, 80)
	extra := NewMatrix(6, idx.Dim())
	for i := range extra.Data {
		extra.Data[i] = float32(i % 200)
	}
	idx, err := idx.Append(context.Background(), extra)
	if err != nil {
		t.Fatal(err)
	}
	if idx, err = idx.Delete(2, 7, 81); err != nil {
		t.Fatal(err)
	}
	blob := writeBlob(t, idx, 5)
	flags := binary.LittleEndian.Uint32(blob[u8HdrFlagsOff:])
	if flags&flagTombs == 0 {
		t.Fatalf("mutated v5 blob without the tombstone flag (flags %#x)", flags)
	}
	loaded := roundTrip(t, blob)
	if loaded.DType() != DTypeUint8 || loaded.Deleted() != 3 || loaded.IDBound() != idx.IDBound() {
		t.Fatalf("loaded dtype=%s deleted=%d idbound=%d", loaded.DType(), loaded.Deleted(), loaded.IDBound())
	}
	assertSearchEqual(t, idx, loaded, u8Queries(8))

	// Compaction produces an id-mapped segment; it must survive the trip too.
	if idx, err = idx.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	loaded = roundTrip(t, writeBlob(t, idx, 5))
	if loaded.DType() != DTypeUint8 || loaded.Deleted() != 0 {
		t.Fatalf("compacted load dtype=%s deleted=%d", loaded.DType(), loaded.Deleted())
	}
	assertSearchEqual(t, idx, loaded, u8Queries(8))
}

// Float32 indexes must keep writing v1–v4 byte-stably: introducing v5 may
// not move a single bit of any pre-existing layout.
func TestFloat32VersionsUnchangedByV5(t *testing.T) {
	build := func(t *testing.T, opts ...Option) *Index {
		t.Helper()
		data := dataset.SIFTLike(90, 29)
		idx, err := Build(context.Background(), data,
			append([]Option{WithKappa(5), WithXi(15), WithTau(3), WithSeed(29)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return idx
	}
	t.Run("v1 mono", func(t *testing.T) {
		roundTrip(t, writeBlob(t, build(t), 1))
	})
	t.Run("v2 sharded", func(t *testing.T) {
		roundTrip(t, writeBlob(t, build(t, WithShards(3)), 2))
	})
	t.Run("v3 mutated", func(t *testing.T) {
		idx := build(t)
		idx, err := idx.Delete(3)
		if err != nil {
			t.Fatal(err)
		}
		roundTrip(t, writeBlob(t, idx, 3))
	})
	t.Run("v4 routed", func(t *testing.T) {
		roundTrip(t, writeBlob(t, build(t, WithShards(3), WithRouting(2)), 4))
	})
}

// Corrupt v5 inputs — a lying dtype word, dtype/flag mismatches in either
// direction, and truncations in every section — must produce an error,
// never a panic or a byte dataset parsed as floats.
func TestReadU8CorruptInputs(t *testing.T) {
	idx := smallU8Index(t, 80)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()

	mustErr := func(t *testing.T, name string, b []byte, wantSub string) {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: ReadIndexFrom panicked: %v", name, r)
			}
		}()
		_, err := ReadIndexFrom(bytes.NewReader(b))
		if err == nil {
			t.Fatalf("%s: corrupt input accepted", name)
		}
		if wantSub != "" && !strings.Contains(err.Error(), wantSub) {
			t.Fatalf("%s: error %q does not mention %q", name, err, wantSub)
		}
	}
	flip := func(mutate func(b []byte)) []byte {
		b := bytes.Clone(whole)
		mutate(b)
		return b
	}

	t.Run("truncations", func(t *testing.T) {
		stride := len(whole) / 120
		if stride < 1 {
			stride = 1
		}
		for cut := 0; cut < len(whole); cut += stride {
			mustErr(t, fmt.Sprintf("cut at %d/%d", cut, len(whole)), whole[:cut], "")
		}
		for _, cut := range []int{4, u8HdrDtypeOff, u8HdrDtypeOff + 2, u8HdrEnd, u8HdrEnd + 8, len(whole) - 1} {
			mustErr(t, fmt.Sprintf("boundary cut at %d", cut), whole[:cut], "")
		}
	})

	t.Run("dtype words", func(t *testing.T) {
		for _, w := range []uint32{0, 2, 99, 0xFFFFFFFF} {
			mustErr(t, fmt.Sprintf("dtype word %d", w), flip(func(b []byte) {
				binary.LittleEndian.PutUint32(b[u8HdrDtypeOff:], w)
			}), "dtype word")
		}
	})

	t.Run("flag mismatches", func(t *testing.T) {
		// v5 with the uint8 flag cleared.
		mustErr(t, "v5 without flagU8", flip(func(b []byte) {
			f := binary.LittleEndian.Uint32(b[u8HdrFlagsOff:])
			binary.LittleEndian.PutUint32(b[u8HdrFlagsOff:], f&^flagU8)
		}), "dtype/flag mismatch")

		// Each float32 version with the uint8 flag forced on. The bodies are
		// valid for their version, so the flag check alone must reject them.
		data := dataset.SIFTLike(90, 31)
		floatBlob := func(mutateIdx func(*Index) *Index, opts ...Option) []byte {
			fidx, err := Build(context.Background(), data,
				append([]Option{WithKappa(5), WithXi(15), WithTau(3), WithSeed(31)}, opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			if mutateIdx != nil {
				fidx = mutateIdx(fidx)
			}
			var fb bytes.Buffer
			if _, err := fidx.WriteTo(&fb); err != nil {
				t.Fatal(err)
			}
			b := fb.Bytes()
			f := binary.LittleEndian.Uint32(b[u8HdrFlagsOff:])
			binary.LittleEndian.PutUint32(b[u8HdrFlagsOff:], f|flagU8)
			return b
		}
		mustErr(t, "v1 with flagU8", floatBlob(nil), "dtype/flag mismatch")
		mustErr(t, "v2 with flagU8", floatBlob(nil, WithShards(3)), "dtype/flag mismatch")
		mustErr(t, "v3 with flagU8", floatBlob(func(x *Index) *Index {
			y, err := x.Delete(3)
			if err != nil {
				t.Fatal(err)
			}
			return y
		}), "dtype/flag mismatch")
		mustErr(t, "v4 with flagU8", floatBlob(nil, WithShards(3), WithRouting(2)), "dtype/flag mismatch")
	})

	t.Run("shape mutations", func(t *testing.T) {
		mustErr(t, "rows huge", flip(func(b []byte) {
			binary.LittleEndian.PutUint32(b[u8HdrEnd:], 0xFFFFFF00)
		}), "")
		mustErr(t, "dim zero", flip(func(b []byte) {
			binary.LittleEndian.PutUint32(b[u8HdrEnd+4:], 0)
		}), "")
		mustErr(t, "segment count zero", flip(func(b []byte) {
			binary.LittleEndian.PutUint32(b[u8HdrDtypeOff+4:], 0)
		}), "")
		mustErr(t, "id bound below rows", flip(func(b []byte) {
			binary.LittleEndian.PutUint32(b[u8HdrDtypeOff+8:], 1)
		}), "")
	})
}

// SaveIndex/LoadIndex work for uint8 indexes end to end on disk.
func TestU8SaveLoadFile(t *testing.T) {
	idx := smallU8Index(t, 80)
	path := t.TempDir() + "/u8.gkx"
	if err := SaveIndex(path, idx); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.DType() != DTypeUint8 || loaded.N() != idx.N() {
		t.Fatalf("loaded dtype=%s n=%d", loaded.DType(), loaded.N())
	}
	assertSearchEqual(t, idx, loaded, u8Queries(6))
}
