package gkmeans

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"gkmeans/internal/checked"
	"gkmeans/internal/parallel"
	"gkmeans/internal/vec"
)

// Sharded indexes: WithShards(n) partitions the dataset into n contiguous
// row ranges, builds one independent monolithic sub-index per range, and
// answers queries by fanning out across the shards and merging the
// per-shard top-k into one global top-k. The shard datasets are views into
// the parent matrix (no copies), and a result id is remapped from
// shard-local to global by adding the shard's base row — so a sharded index
// is observably the same as a monolithic one up to approximation quality,
// while each graph build only ever holds one shard in flight and every
// query can use one core per shard.

// minShardRows is the smallest shard Build will create: a k-NN graph needs
// at least two samples (a single-row shard has no possible neighbour).
const minShardRows = 2

// clampShards resolves a requested shard count against the dataset size:
// every shard must keep at least minShardRows rows, a request of <=1 (or a
// dataset too small to split) means "monolithic", and the count never
// exceeds what the persistence segment table accepts — Build must not
// produce an index that SaveIndex writes but LoadIndex refuses.
func clampShards(requested, n int) int {
	if requested <= 1 {
		return 1
	}
	if requested > maxShardSegments {
		requested = maxShardSegments
	}
	if max := n / minShardRows; requested > max {
		requested = max
	}
	if requested < 1 {
		return 1
	}
	return requested
}

// shardBounds returns the global row range [lo, hi) of shard s out of
// total: the even contiguous split floor(s·n/total). It is the single
// source of truth for the partition — Build, persistence and the id remap
// all derive from it.
func shardBounds(s, total, n int) (lo, hi int) {
	return s * n / total, (s + 1) * n / total
}

// shardView returns rows [lo, hi) of m as a view aliasing m's storage.
func shardView(m *Matrix, lo, hi int) *Matrix {
	return &Matrix{Data: m.Data[lo*m.Dim : hi*m.Dim : hi*m.Dim], N: hi - lo, Dim: m.Dim}
}

// shardViewU8 is shardView for a byte dataset.
func shardViewU8(m *vec.U8Matrix, lo, hi int) *vec.U8Matrix {
	return &vec.U8Matrix{Data: m.Data[lo*m.Dim : hi*m.Dim : hi*m.Dim], N: hi - lo, Dim: m.Dim}
}

// newShardedIndex assembles the fan-out shell over already-built shard
// sub-indexes; exactly one of data (float32) and u8 must be non-nil, and
// the shards must cover it contiguously in order — both callers
// (buildSharded, the multi-segment loader) construct them from
// shardBounds, so the bases are recomputed the same way here.
func newShardedIndex(data *Matrix, u8 *vec.U8Matrix, shards []*Index, cfg config) *Index {
	base := make([]int32, len(shards))
	row := 0
	for s, shard := range shards {
		base[s] = checked.Int32(row)
		row += shard.N()
	}
	return &Index{data: data, u8: u8, shards: shards, shardBase: base, probes: &probeStats{}, cfg: cfg}
}

// buildSharded is Build's WithShards(n) path: one monolithic sub-index per
// contiguous shard, built sequentially so at most one build pipeline (and
// its scratch memory) is in flight, each using the full WithWorkers
// parallelism. Exactly one of data and u8 is non-nil (the dtype of the
// build). ctx cancellation is honoured inside every shard build.
// WithRouting switches to the cluster-aligned routed build (see route.go).
func buildSharded(ctx context.Context, data *Matrix, u8 *vec.U8Matrix, cfg config, nShards int) (*Index, error) {
	if cfg.routing > 0 {
		return buildRouted(ctx, data, u8, cfg, nShards)
	}
	shardCfg := cfg
	shardCfg.shards = 0
	shardCfg.progress = nil
	var progressFor func(s int) func(stage string, done, total int)
	if cfg.progress != nil {
		// One global "graph" progress stream across all shards: shard s's
		// rounds land at s·τ + done out of n·τ.
		tau := cfg.resolvedTau()
		progress := cfg.progress
		progressFor = func(s int) func(stage string, done, total int) {
			return func(stage string, done, _ int) {
				progress(stage, s*tau+done, nShards*tau)
			}
		}
	}
	n := 0
	if u8 != nil {
		n = u8.N
	} else {
		n = data.N
	}
	sizes := make([]int, nShards)
	for s := range sizes {
		lo, hi := shardBounds(s, nShards, n)
		sizes[s] = hi - lo
	}
	shards, graphTime, err := buildShardLoop(ctx, data, u8, shardCfg, sizes, progressFor)
	if err != nil {
		return nil, err
	}
	x := newShardedIndex(data, u8, shards, cfg)
	x.graphTime = graphTime
	return x, nil
}

// buildShardLoop builds one sub-index per entry of sizes over consecutive
// views of the parent dataset — data (float32) or u8 (uint8), exactly one
// non-nil — which the sizes must cover exactly. A uint8 shard widens its
// view transiently for graph construction (bit-identical to the float32
// build) and keeps only the byte view resident. progressFor, when non-nil,
// supplies each shard's progress callback. Callers: the even contiguous
// split (buildSharded), the coarse-partitioned routed build (buildRouted),
// and the single-shard builds of Append and Compact.
func buildShardLoop(ctx context.Context, data *Matrix, u8 *vec.U8Matrix, shardCfg config, sizes []int,
	progressFor func(s int) func(stage string, done, total int)) ([]*Index, time.Duration, error) {

	shards := make([]*Index, len(sizes))
	var graphTime time.Duration
	lo := 0
	for s, size := range sizes {
		hi := lo + size
		cfg := shardCfg
		if progressFor != nil {
			cfg.progress = progressFor(s)
		}
		var shard *Index
		var err error
		if u8 != nil {
			shard, err = buildMonoU8(ctx, shardViewU8(u8, lo, hi), cfg)
		} else {
			shard, err = buildMono(ctx, shardView(data, lo, hi), cfg)
		}
		if err != nil {
			return nil, 0, fmt.Errorf("gkmeans: building shard %d/%d (rows %d..%d): %w", s, len(sizes), lo, hi, err)
		}
		shards[s] = shard
		graphTime += shard.graphTime
		lo = hi
	}
	return shards, graphTime, nil
}

// searchLocal answers a query against a monolithic index in shard-local id
// space, applying no tombstone filter. It is the raw per-shard primitive of
// the fan-out: the parent owns the tombstones (Delete copies bitmaps at the
// parent level only) and applies them exactly once in searchShardGlobal —
// the sub-index must not filter again even when it happens to be a former
// monolithic index carrying its own bitmap (Append reuses the receiver as
// shard 0).
func (x *Index) searchLocal(q []float32, topK, ef int) []Neighbor {
	return x.ensureSearcher().Search(q, topK, ef)
}

// searchShardGlobal answers a query against shard s, skips the shard's
// tombstoned rows, and remaps the survivors to external ids. To keep topK
// live results available after filtering, the shard search overfetches by
// the shard's tombstone count (capped at the shard size) — the closest
// topK+dead rows contain at least the closest topK live ones.
func (x *Index) searchShardGlobal(s int, q []float32, topK, ef int) []Neighbor {
	sh := x.shards[s]
	tomb := x.shardTomb(s)
	dead := 0
	if tomb != nil {
		dead = tomb.Count()
	}
	if dead == 0 {
		return x.remapShard(s, sh.searchLocal(q, topK, ef))
	}
	k2 := topK + dead
	if k2 > sh.N() {
		k2 = sh.N()
	}
	ef2 := ef
	if ef2 < k2 {
		ef2 = k2
	}
	res := sh.searchLocal(q, k2, ef2)
	live := res[:0]
	for _, nb := range res {
		if tomb.Get(int(nb.ID)) {
			continue
		}
		live = append(live, nb)
		if len(live) == topK {
			break
		}
	}
	return x.remapShard(s, live)
}

// remapShard rewrites shard s's local result ids to external ids, in
// place: base + local for a contiguous shard, the explicit id map for a
// compacted one.
func (x *Index) remapShard(s int, res []Neighbor) []Neighbor {
	if ids := x.shardIDMap(s); ids != nil {
		for i := range res {
			res[i].ID = ids[res[i].ID]
		}
		return res
	}
	if base := x.shardBaseOf(s); base != 0 {
		for i := range res {
			res[i].ID += base
		}
	}
	return res
}

// searchMonoLive answers a query against a monolithic index that carries
// tombstones: overfetch by the tombstone count, drop the dead rows, keep
// the closest topK live ones. Monolithic ids are already external.
func (x *Index) searchMonoLive(q []float32, topK, ef int) []Neighbor {
	tomb := x.tombs[0]
	k2 := topK + tomb.Count()
	if k2 > x.rows() {
		k2 = x.rows()
	}
	ef2 := ef
	if ef2 < k2 {
		ef2 = k2
	}
	res := x.searchLocal(q, k2, ef2)
	live := res[:0]
	for _, nb := range res {
		if tomb.Get(int(nb.ID)) {
			continue
		}
		live = append(live, nb)
		if len(live) == topK {
			break
		}
	}
	return live
}

// searchBatchMonoLive is searchMonoLive across a batch, parallel over
// queries. Each query's result is independent of the worker count.
func (x *Index) searchBatchMonoLive(queries *Matrix, topK, ef int) [][]Neighbor {
	out := make([][]Neighbor, queries.N)
	parallel.For(queries.N, x.cfg.workers, func(lo, hi int) {
		for qi := lo; qi < hi; qi++ {
			out[qi] = x.searchMonoLive(queries.Row(qi), topK, ef)
		}
	})
	return out
}

// fanScratch is the per-call scratch of the sharded fan-out: the per-shard
// result slots plus the router's ranking arrays. Pooled so the fan-out
// path allocates nothing per query beyond the results themselves.
type fanScratch struct {
	parts [][]Neighbor
	order []int32
	dists []float32
}

// grow resizes the scratch for n shards, reusing capacity when it can.
func (sc *fanScratch) grow(n int) {
	if cap(sc.parts) < n {
		sc.parts = make([][]Neighbor, n)
		sc.order = make([]int32, n)
		sc.dists = make([]float32, n)
	}
	sc.parts = sc.parts[:n]
	sc.order = sc.order[:n]
	sc.dists = sc.dists[:n]
}

// release drops the result references (they belong to the caller now) so a
// pooled scratch never pins result slices across queries.
func (sc *fanScratch) release() {
	for i := range sc.parts {
		sc.parts[i] = nil
	}
}

var fanScratchPool = sync.Pool{New: func() any { return new(fanScratch) }}

// searchSharded answers one query against a sharded index. With a router
// and an effective nprobe below the shard count, the query is ranked
// against the routing centroids and only the nprobe best shards are
// searched; otherwise every shard is (the unrouted path, bit-identical to
// the pre-router full broadcast — the router is not even consulted). The
// probed shards run concurrently — one goroutine each, since a single
// query's latency is exactly what the fan-out buys — and the per-shard
// live top-k lists merge into the global top-k.
func (x *Index) searchSharded(q []float32, topK, ef, nprobe int) []Neighbor {
	n := len(x.shards)
	np := x.resolveNProbe(nprobe)
	sc := fanScratchPool.Get().(*fanScratch)
	sc.grow(n)
	var wg sync.WaitGroup
	if np < n {
		x.route.Rank(q, sc.order, sc.dists)
		x.noteProbe(np, n, x.route.TotalCentroids())
		for i := 0; i < np; i++ {
			wg.Add(1)
			go func(slot, s int) {
				defer wg.Done()
				sc.parts[slot] = x.searchShardGlobal(s, q, topK, ef)
			}(i, int(sc.order[i]))
		}
	} else {
		x.noteProbe(n, n, 0)
		for s := 0; s < n; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				sc.parts[s] = x.searchShardGlobal(s, q, topK, ef)
			}(s)
		}
	}
	wg.Wait()
	merged := mergeShardResults(sc.parts[:np], topK)
	sc.release()
	fanScratchPool.Put(sc)
	return merged
}

// searchBatchSharded answers a batch against a sharded index. Parallelism
// goes across queries (the batch already saturates the cores); within one
// query the probed shards are scanned sequentially in a query-determined
// order, which keeps the merge input — and therefore the output —
// identical for every worker count.
func (x *Index) searchBatchSharded(queries *Matrix, topK, ef, nprobe int) [][]Neighbor {
	out := make([][]Neighbor, queries.N)
	n := len(x.shards)
	np := x.resolveNProbe(nprobe)
	parallel.For(queries.N, x.cfg.workers, func(lo, hi int) {
		sc := fanScratchPool.Get().(*fanScratch)
		sc.grow(n)
		for qi := lo; qi < hi; qi++ {
			q := queries.Row(qi)
			if np < n {
				x.route.Rank(q, sc.order, sc.dists)
				x.noteProbe(np, n, x.route.TotalCentroids())
				for i := 0; i < np; i++ {
					sc.parts[i] = x.searchShardGlobal(int(sc.order[i]), q, topK, ef)
				}
			} else {
				x.noteProbe(n, n, 0)
				for s := 0; s < n; s++ {
					sc.parts[s] = x.searchShardGlobal(s, q, topK, ef)
				}
			}
			out[qi] = mergeShardResults(sc.parts[:np], topK)
		}
		sc.release()
		fanScratchPool.Put(sc)
	})
	return out
}

// mergeShardResults merges per-shard result lists — already filtered and
// remapped to external ids by searchShardGlobal — and keeps the topK
// closest overall. Ties on distance are broken by ascending id so the
// merged ranking is deterministic regardless of which shard finished
// first.
func mergeShardResults(parts [][]Neighbor, topK int) []Neighbor {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	merged := make([]Neighbor, 0, total)
	for _, p := range parts {
		merged = append(merged, p...)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Dist != merged[j].Dist {
			return merged[i].Dist < merged[j].Dist
		}
		return merged[i].ID < merged[j].ID
	})
	if len(merged) > topK {
		merged = merged[:topK]
	}
	return merged
}

// searchStatsSharded aggregates the per-shard counters: the work counters
// add up across shards (plus the router's centroid distance computations,
// zero on the full fan-out), the logical query count comes from the probe
// counters, and ShardsProbed/RoutedQueries expose how much of the fan-out
// routing actually skipped.
func (x *Index) searchStatsSharded() SearchStats {
	var out SearchStats
	for _, shard := range x.shards {
		st := shard.SearchStats()
		out.DistanceComps += st.DistanceComps
		out.ExpandedCandidates += st.ExpandedCandidates
		if st.Queries > out.Queries {
			out.Queries = st.Queries
		}
	}
	if p := x.probes; p != nil {
		if q := p.queries.Load(); q > 0 {
			out.Queries = q
		}
		out.ShardsProbed = p.probed.Load()
		out.RoutedQueries = p.routed.Load()
		out.DistanceComps += p.routeComps.Load()
	}
	return out
}
