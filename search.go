package gkmeans

import (
	"fmt"

	"gkmeans/internal/anns"
)

// ensureSearcher builds the search structures (symmetrised adjacency, entry
// points) on first use. It cannot fail: Build/NewIndex already validated
// the only invariants anns.NewSearcher checks.
func (x *Index) ensureSearcher() *anns.Searcher {
	x.searcherOnce.Do(func() {
		s, err := anns.NewSearcher(x.data, x.graph, x.cfg.entries)
		if err != nil {
			// Unreachable by construction; keep the invariant loud.
			panic("gkmeans: index searcher: " + err.Error())
		}
		x.searcher = s
	})
	return x.searcher
}

// defaultEf resolves the candidate pool size: a non-positive ef selects
// max(4·topK, 32), a reasonable recall/latency default, and ef < topK is
// raised to topK so the pool can always hold the requested results.
func defaultEf(topK, ef int) int {
	if ef <= 0 {
		if ef = 4 * topK; ef < 32 {
			ef = 32
		}
	}
	if ef < topK {
		ef = topK
	}
	return ef
}

// checkQueryDim rejects a query whose dimensionality does not match the
// indexed data. Search has no error return (a mismatch is a programming
// error, like an out-of-range slice index), so the violation is a panic
// with a message that names both sides.
func (x *Index) checkQueryDim(dim int) {
	if dim != x.data.Dim {
		panic(fmt.Sprintf("gkmeans: query dimensionality %d, index dimensionality %d", dim, x.data.Dim))
	}
}

// Search returns the approximately closest topK samples to q, sorted by
// ascending squared distance. ef bounds the candidate pool (larger ef =
// higher recall, more distance computations); ef <= 0 selects
// max(4·topK, 32), and ef < topK is raised to topK. topK larger than the
// index returns all indexed samples. q must have the index's
// dimensionality; a mismatch panics. Safe to call from any goroutine.
func (x *Index) Search(q []float32, topK, ef int) []Neighbor {
	x.checkQueryDim(len(q))
	return x.ensureSearcher().Search(q, topK, defaultEf(topK, ef))
}

// SearchBatch answers every query concurrently and returns one sorted
// result list per query. ef follows the same defaulting as Search; the
// worker count comes from WithWorkers (<=0 selects GOMAXPROCS). Queries
// must have the index's dimensionality; a mismatch panics. Safe to call
// from any goroutine, including concurrently with Search.
func (x *Index) SearchBatch(queries *Matrix, topK, ef int) [][]Neighbor {
	if queries.N > 0 {
		x.checkQueryDim(queries.Dim)
	}
	return anns.BatchSearch(x.ensureSearcher(), queries, topK, defaultEf(topK, ef), x.cfg.workers)
}

// Recall evaluates the index on a query set against exact ground truth (one
// exact top-k id list per query, e.g. from ExactNeighbors) and returns the
// average recall@k at the given pool size ef.
func (x *Index) Recall(queries *Matrix, truth [][]int32, k, ef int) float64 {
	return anns.RecallAt(x.ensureSearcher(), queries, truth, k, defaultEf(k, ef))
}
