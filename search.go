package gkmeans

import (
	"fmt"

	"gkmeans/internal/anns"
)

// ensureSearcher builds the search structures (flat CSR adjacency, entry
// points) on first use. It cannot fail: Build/NewIndex already validated
// the only invariants anns.NewSearcher checks. A sharded index has no
// top-level searcher — its shards each build their own — so every caller
// must dispatch on Sharded() first.
func (x *Index) ensureSearcher() *anns.Searcher {
	if x.Sharded() {
		panic("gkmeans: internal error: per-index searcher requested on a sharded index")
	}
	x.searcherOnce.Do(func() {
		var s *anns.Searcher
		var err error
		if x.u8 != nil {
			s, err = anns.NewSearcherU8(x.u8, x.graph, x.cfg.entries)
		} else {
			s, err = anns.NewSearcher(x.data, x.graph, x.cfg.entries)
		}
		if err != nil {
			// Unreachable by construction; keep the invariant loud.
			panic("gkmeans: index searcher: " + err.Error())
		}
		x.searcher.Store(s)
	})
	return x.searcher.Load()
}

// defaultEf resolves the candidate pool size: a non-positive ef selects
// max(4·topK, 32), a reasonable recall/latency default, and ef < topK is
// raised to topK so the pool can always hold the requested results.
func defaultEf(topK, ef int) int {
	if ef <= 0 {
		if ef = 4 * topK; ef < 32 {
			ef = 32
		}
	}
	if ef < topK {
		ef = topK
	}
	return ef
}

// checkQueryDim rejects a query whose dimensionality does not match the
// indexed data. Search has no error return (a mismatch is a programming
// error, like an out-of-range slice index), so the violation is a panic
// with a message that names both sides.
func (x *Index) checkQueryDim(dim int) {
	if dim != x.dims() {
		panic(fmt.Sprintf("gkmeans: query dimensionality %d, index dimensionality %d", dim, x.dims()))
	}
}

// Search returns the approximately closest topK samples to q, sorted by
// ascending squared distance. ef bounds the candidate pool and the
// worst-case work per query (larger ef = higher recall, more distance
// computations); ef <= 0 selects max(4·topK, 32), and ef < topK is raised
// to topK. The search terminates early: expansion stops once the best
// unexpanded candidate can no longer improve the current top-topK results
// and a further patience window of expansions has not improved them
// either, so easy queries finish well below the ef budget while hard ones
// use all of it. topK larger than the index returns all indexed samples.
// q must have the index's dimensionality; a mismatch panics. Safe to call
// from any goroutine.
//
// On a sharded index the query fans out across every shard concurrently
// (one goroutine per shard, each bounded by the same topK and ef) and the
// per-shard results merge into one global top-topK with global ids — unless
// the index carries a router and a WithNProbe default, in which case only
// the nprobe nearest shards are searched (see SearchNProbe).
func (x *Index) Search(q []float32, topK, ef int) []Neighbor {
	return x.SearchNProbe(q, topK, ef, 0)
}

// SearchNProbe is Search with an explicit per-query probe count for routed
// sharded indexes (WithRouting): the query is compared against every
// shard's routing centroids and only the nprobe shards with the closest
// centroids are searched before the usual deterministic merge. Smaller
// nprobe means proportionally fewer distance computations at some recall
// cost — the work/recall knob of a routed index, next to ef.
//
// nprobe <= 0 falls back to the WithNProbe default, and an nprobe at or
// past the shard count — or any value on an unrouted or monolithic index —
// probes everything, bit-identical to Search on an unrouted index.
func (x *Index) SearchNProbe(q []float32, topK, ef, nprobe int) []Neighbor {
	x.checkQueryDim(len(q))
	ef = defaultEf(topK, ef)
	if x.Sharded() {
		return x.searchSharded(q, topK, ef, nprobe)
	}
	if t := x.shardTomb(0); t != nil && t.Count() > 0 {
		return x.searchMonoLive(q, topK, ef)
	}
	return x.ensureSearcher().Search(q, topK, ef)
}

// SearchStats are the cumulative hot-path counters of an index's searcher,
// accumulated across every Search, SearchBatch and Recall call since the
// searcher was first used. DistanceComps counts distance-kernel
// evaluations (the dominant cost of a query) and ExpandedCandidates counts
// pool entries expanded through their graph neighbours — the quantity the
// early-termination rule bounds. Serving layers export them to make the
// per-query work visible in production.
// On a sharded index two more counters describe the fan-out: ShardsProbed
// is the number of per-shard searches actually executed (shard count ×
// queries on the full fan-out, less when routing skips shards) and
// RoutedQueries counts the queries for which the router skipped at least
// one shard. Both stay zero on a monolithic index.
type SearchStats struct {
	Queries            uint64
	DistanceComps      uint64
	ExpandedCandidates uint64
	ShardsProbed       uint64
	RoutedQueries      uint64
}

// SearchStats returns the index's cumulative search counters. It reports
// zeros before the first search (the searcher is built lazily and the
// accessor does not force it). For a sharded index the work counters are
// summed across shards — every query visits all of them — while Queries
// stays the logical query count, not shard-count times it. Safe to call
// from any goroutine.
func (x *Index) SearchStats() SearchStats {
	if x.Sharded() {
		return x.searchStatsSharded()
	}
	s := x.searcher.Load()
	if s == nil {
		return SearchStats{}
	}
	q, d, e := s.Totals()
	return SearchStats{Queries: q, DistanceComps: d, ExpandedCandidates: e}
}

// SearchBatch answers every query concurrently and returns one sorted
// result list per query. ef follows the same defaulting as Search; the
// worker count comes from WithWorkers (<=0 selects GOMAXPROCS). Queries
// must have the index's dimensionality; a mismatch panics. Safe to call
// from any goroutine, including concurrently with Search.
//
// On a sharded index the workers parallelise across queries and each query
// scans its probed shards in a query-determined order, so the merged
// results are identical for every worker count.
func (x *Index) SearchBatch(queries *Matrix, topK, ef int) [][]Neighbor {
	return x.SearchBatchNProbe(queries, topK, ef, 0)
}

// SearchBatchNProbe is SearchBatch with an explicit per-call probe count
// for routed sharded indexes; nprobe follows the same resolution as
// SearchNProbe.
func (x *Index) SearchBatchNProbe(queries *Matrix, topK, ef, nprobe int) [][]Neighbor {
	if queries.N > 0 {
		x.checkQueryDim(queries.Dim)
	}
	ef = defaultEf(topK, ef)
	if x.Sharded() {
		return x.searchBatchSharded(queries, topK, ef, nprobe)
	}
	if t := x.shardTomb(0); t != nil && t.Count() > 0 {
		return x.searchBatchMonoLive(queries, topK, ef)
	}
	return anns.BatchSearch(x.ensureSearcher(), queries, topK, ef, x.cfg.workers)
}

// Recall evaluates the index on a query set against exact ground truth (one
// exact top-k id list per query, e.g. from ExactNeighbors) and returns the
// average recall@k at the given pool size ef.
func (x *Index) Recall(queries *Matrix, truth [][]int32, k, ef int) float64 {
	if x.Sharded() {
		search := func(q []float32, topK, ef int) []Neighbor {
			return x.searchSharded(q, topK, ef, 0)
		}
		return anns.RecallAtFunc(search, queries, truth, k, defaultEf(k, ef))
	}
	if t := x.shardTomb(0); t != nil && t.Count() > 0 {
		return anns.RecallAtFunc(x.searchMonoLive, queries, truth, k, defaultEf(k, ef))
	}
	return anns.RecallAt(x.ensureSearcher(), queries, truth, k, defaultEf(k, ef))
}
