package anns

import (
	"math"
	"testing"

	"gkmeans/internal/core"
	"gkmeans/internal/dataset"
	"gkmeans/internal/vec"
)

// u8Fixture builds the same corpus twice — once widened to float32, once
// kept as bytes — with one shared graph, the exact situation the uint8
// distance path promises to serve identically. SIFTLike is quantised
// ([0,160] integers), so the byte conversion is lossless.
func u8Fixture(t *testing.T, n int, seed int64) (f32 *Searcher, u8 *Searcher, queries *vec.Matrix) {
	t.Helper()
	all := dataset.SIFTLike(n, seed)
	data, queries := split(all, 40)
	dataU8, err := vec.U8FromMatrix(data)
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.BuildGraph(data, core.GraphConfig{Kappa: 8, Xi: 20, Tau: 6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	f32, err = NewSearcher(data, g, 16)
	if err != nil {
		t.Fatal(err)
	}
	u8, err = NewSearcherU8(dataU8, g, 16)
	if err != nil {
		t.Fatal(err)
	}
	return f32, u8, queries
}

// TestU8SearchParity pins the core uint8 guarantee: on byte data of
// SIFT-like dimensionality the integer path returns exactly the float
// path's results — ids, distances and work counters — because integer L2
// is exact and the float32 kernels stay inside their exactness window.
func TestU8SearchParity(t *testing.T) {
	f32, u8, queries := u8Fixture(t, 900, 3)
	for _, cfg := range []struct{ topK, ef int }{{1, 8}, {5, 32}, {10, 64}} {
		for qi := 0; qi < queries.N; qi++ {
			q := queries.Row(qi)
			rf, sf := f32.search(q, cfg.topK, cfg.ef, false)
			ru, su := u8.search(q, cfg.topK, cfg.ef, false)
			if sf != su {
				t.Fatalf("topK=%d ef=%d query %d: stats diverge f32=%+v u8=%+v", cfg.topK, cfg.ef, qi, sf, su)
			}
			if len(rf) != len(ru) {
				t.Fatalf("topK=%d ef=%d query %d: %d vs %d results", cfg.topK, cfg.ef, qi, len(rf), len(ru))
			}
			for i := range rf {
				if rf[i].ID != ru[i].ID || math.Float32bits(rf[i].Dist) != math.Float32bits(ru[i].Dist) {
					t.Fatalf("topK=%d ef=%d query %d rank %d: f32=%+v u8=%+v", cfg.topK, cfg.ef, qi, i, rf[i], ru[i])
				}
			}
		}
	}
}

// TestU8SearchParityExhaustive repeats the parity check with early
// termination disabled, so the whole ef pool — not just the early-exit
// prefix — is proven identical.
func TestU8SearchParityExhaustive(t *testing.T) {
	f32, u8, queries := u8Fixture(t, 600, 5)
	for qi := 0; qi < queries.N; qi++ {
		q := queries.Row(qi)
		rf, sf := f32.search(q, 10, 40, true)
		ru, su := u8.search(q, 10, 40, true)
		if sf != su {
			t.Fatalf("query %d: stats diverge f32=%+v u8=%+v", qi, sf, su)
		}
		for i := range rf {
			if rf[i] != ru[i] {
				t.Fatalf("query %d rank %d: f32=%+v u8=%+v", qi, i, rf[i], ru[i])
			}
		}
	}
}

func TestU8SearcherRejectsNonByteQuery(t *testing.T) {
	_, u8, queries := u8Fixture(t, 300, 9)
	q := append([]float32(nil), queries.Row(0)...)
	q[3] = 0.5
	defer func() {
		if recover() == nil {
			t.Fatal("non-byte query should panic on a uint8 searcher")
		}
	}()
	u8.Search(q, 1, 8)
}

func TestNewSearcherU8Errors(t *testing.T) {
	small := dataset.SIFTLike(5, 1)
	g, err := core.BuildGraph(small, core.GraphConfig{Kappa: 2, Xi: 4, Tau: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSearcherU8(vec.NewU8Matrix(10, 4), g, 4); err == nil {
		t.Fatal("node-count mismatch should error")
	}
}
