package anns

import (
	"testing"

	"gkmeans/internal/dataset"
	"gkmeans/internal/knngraph"
)

func TestBatchSearchMatchesSequential(t *testing.T) {
	all := dataset.SIFTLike(520, 1)
	data, queries := dataset.Split(all, 20)
	g := knngraph.BruteForce(data, 8, 0)
	s, err := NewSearcher(data, g, 16)
	if err != nil {
		t.Fatal(err)
	}
	batch := BatchSearch(s, queries, 5, 32, 4)
	if len(batch) != queries.N {
		t.Fatalf("got %d result lists", len(batch))
	}
	for qi := 0; qi < queries.N; qi++ {
		seq := s.Search(queries.Row(qi), 5, 32)
		if len(seq) != len(batch[qi]) {
			t.Fatalf("query %d: %d vs %d results", qi, len(batch[qi]), len(seq))
		}
		for j := range seq {
			if seq[j] != batch[qi][j] {
				t.Fatalf("query %d result %d differs: %v vs %v", qi, j, batch[qi][j], seq[j])
			}
		}
	}
}

func TestCloneForConcurrentIndependentScratch(t *testing.T) {
	data := dataset.Uniform(100, 4, 2)
	g := knngraph.BruteForce(data, 4, 0)
	s, _ := NewSearcher(data, g, 8)
	c := s.CloneForConcurrent()
	// Interleaved queries on the original and clone must not interfere.
	a1 := s.Search(data.Row(1), 3, 16)
	b1 := c.Search(data.Row(2), 3, 16)
	a2 := s.Search(data.Row(1), 3, 16)
	b2 := c.Search(data.Row(2), 3, 16)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("original searcher state corrupted by clone")
		}
	}
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatal("clone state corrupted")
		}
	}
}

func TestBatchSearchEmptyQueries(t *testing.T) {
	data := dataset.Uniform(20, 3, 3)
	g := knngraph.BruteForce(data, 3, 0)
	s, _ := NewSearcher(data, g, 4)
	out := BatchSearch(s, dataset.Uniform(1, 3, 4).SubsetRows(nil), 3, 8, 2)
	if len(out) != 0 {
		t.Fatalf("expected no results, got %d", len(out))
	}
}
