package anns

import (
	"gkmeans/internal/knngraph"
	"gkmeans/internal/parallel"
	"gkmeans/internal/vec"
)

// CloneForConcurrent returns the receiver. Per-query scratch now lives in a
// sync.Pool inside the Searcher, so one Searcher is already safe for
// concurrent use from any number of goroutines.
//
// Deprecated: call Search directly from multiple goroutines.
func (s *Searcher) CloneForConcurrent() *Searcher { return s }

// BatchSearch answers every query concurrently and returns one result list
// per query. workers <= 0 selects GOMAXPROCS. The flat CSR adjacency is
// built once in NewSearcher and shared read-only across workers; per-query
// scratch is recycled through the searcher's pool.
//
//gk:hotpath
func BatchSearch(s *Searcher, queries *vec.Matrix, topK, ef, workers int) [][]knngraph.Neighbor {
	out := make([][]knngraph.Neighbor, queries.N)
	parallel.For(queries.N, workers, func(lo, hi int) {
		for qi := lo; qi < hi; qi++ {
			out[qi] = s.Search(queries.Row(qi), topK, ef)
		}
	})
	return out
}
