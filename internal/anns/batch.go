package anns

import (
	"gkmeans/internal/knngraph"
	"gkmeans/internal/parallel"
	"gkmeans/internal/vec"
)

// CloneForConcurrent returns a searcher that shares this searcher's
// read-only state (data, adjacency, entry points) but owns its own per-query
// scratch, making the pair safe to use from two goroutines.
func (s *Searcher) CloneForConcurrent() *Searcher {
	return &Searcher{
		data:    s.data,
		g:       s.g,
		entry:   s.entry,
		adj:     s.adj,
		visited: make([]int32, len(s.visited)),
	}
}

// BatchSearch answers every query concurrently and returns one result list
// per query. workers <= 0 selects GOMAXPROCS. The expensive symmetrised
// adjacency is built once and shared across workers.
func BatchSearch(s *Searcher, queries *vec.Matrix, topK, ef, workers int) [][]knngraph.Neighbor {
	out := make([][]knngraph.Neighbor, queries.N)
	parallel.For(queries.N, workers, func(lo, hi int) {
		w := s.CloneForConcurrent()
		for qi := lo; qi < hi; qi++ {
			out[qi] = w.Search(queries.Row(qi), topK, ef)
		}
	})
	return out
}
