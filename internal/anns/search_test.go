package anns

import (
	"path/filepath"
	"testing"

	"gkmeans/internal/core"
	"gkmeans/internal/dataset"
	"gkmeans/internal/knngraph"
	"gkmeans/internal/vec"
)

// split separates one corpus into a reference set and a held-out query set
// drawn from the same distribution (how SIFT1M's query set is produced).
func split(m *vec.Matrix, nQueries int) (data, queries *vec.Matrix) {
	dataIdx := make([]int, 0, m.N-nQueries)
	queryIdx := make([]int, 0, nQueries)
	for i := 0; i < m.N; i++ {
		if i%(m.N/nQueries) == 0 && len(queryIdx) < nQueries {
			queryIdx = append(queryIdx, i)
		} else {
			dataIdx = append(dataIdx, i)
		}
	}
	return m.SubsetRows(dataIdx), m.SubsetRows(queryIdx)
}

func TestSearchOnExactGraphFindsTrueNeighbors(t *testing.T) {
	all := dataset.SIFTLike(650, 1)
	data, queries := split(all, 50)
	g := knngraph.BruteForce(data, 10, 0)
	s, err := NewSearcher(data, g, 32)
	if err != nil {
		t.Fatal(err)
	}
	truth := ExactTruth(data, queries, 1, 0)
	if r := RecallAt(s, queries, truth, 1, 32); r < 0.9 {
		t.Fatalf("recall@1 on exact graph %.3f, want >= 0.9", r)
	}
}

func TestSearchOnConstructedGraph(t *testing.T) {
	// §4.3: the Alg. 3 graph supports ANN search with good recall.
	all := dataset.SIFTLike(840, 2)
	data, queries := split(all, 40)
	g, err := core.BuildGraph(data, core.GraphConfig{Kappa: 10, Xi: 25, Tau: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSearcher(data, g, 32)
	if err != nil {
		t.Fatal(err)
	}
	truth := ExactTruth(data, queries, 10, 0)
	if r := RecallAt(s, queries, truth, 10, 64); r < 0.8 {
		t.Fatalf("recall@10 %.3f, want >= 0.8", r)
	}
}

func TestSearchResultsSortedAndUnique(t *testing.T) {
	data := dataset.GloVeLike(300, 4)
	g := knngraph.BruteForce(data, 8, 0)
	s, _ := NewSearcher(data, g, 4)
	res := s.Search(data.Row(5), 10, 32)
	if len(res) != 10 {
		t.Fatalf("got %d results", len(res))
	}
	seen := map[int32]bool{}
	for i, nb := range res {
		if seen[nb.ID] {
			t.Fatalf("duplicate id %d", nb.ID)
		}
		seen[nb.ID] = true
		if i > 0 && res[i-1].Dist > nb.Dist {
			t.Fatal("results not sorted")
		}
	}
	// Query is a data point: its own id must be the top hit at distance 0.
	if res[0].ID != 5 || res[0].Dist != 0 {
		t.Fatalf("self query top hit %v", res[0])
	}
}

func TestSearchEfBelowTopKRaised(t *testing.T) {
	data := dataset.Uniform(100, 4, 5)
	g := knngraph.BruteForce(data, 5, 0)
	s, _ := NewSearcher(data, g, 4)
	res := s.Search(data.Row(0), 10, 1) // ef < topK
	if len(res) != 10 {
		t.Fatalf("ef raise failed: %d results", len(res))
	}
}

func TestSearchTopKZero(t *testing.T) {
	data := dataset.Uniform(20, 4, 6)
	g := knngraph.BruteForce(data, 3, 0)
	s, _ := NewSearcher(data, g, 2)
	if res := s.Search(data.Row(0), 0, 8); res != nil {
		t.Fatalf("topK=0 should return nil, got %v", res)
	}
}

func TestSearcherReusableAcrossQueries(t *testing.T) {
	data := dataset.Uniform(200, 6, 7)
	g := knngraph.BruteForce(data, 6, 0)
	s, _ := NewSearcher(data, g, 4)
	a1 := s.Search(data.Row(3), 5, 16)
	_ = s.Search(data.Row(9), 5, 16)
	a2 := s.Search(data.Row(3), 5, 16)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("repeated identical query returned different results")
		}
	}
}

func TestNewSearcherErrors(t *testing.T) {
	data := dataset.Uniform(10, 3, 8)
	g := knngraph.BruteForce(data, 3, 0)
	other := dataset.Uniform(5, 3, 9)
	if _, err := NewSearcher(other, g, 4); err == nil {
		t.Fatal("size mismatch should error")
	}
	if _, err := NewSearcher(&vec.Matrix{Dim: 3}, knngraph.New(0, 3), 4); err == nil {
		t.Fatal("empty dataset should error")
	}
}

func TestExactTruth(t *testing.T) {
	data := vec.FromRows([][]float32{{0, 0}, {1, 0}, {5, 0}, {6, 0}})
	queries := vec.FromRows([][]float32{{0.1, 0}})
	truth := ExactTruth(data, queries, 2, 0)
	if truth[0][0] != 0 || truth[0][1] != 1 {
		t.Fatalf("truth %v", truth[0])
	}
}

func TestRecallAtEmptyQueries(t *testing.T) {
	data := dataset.Uniform(10, 2, 10)
	g := knngraph.BruteForce(data, 3, 0)
	s, _ := NewSearcher(data, g, 2)
	if r := RecallAt(s, &vec.Matrix{Dim: 2}, nil, 1, 8); r != 0 {
		t.Fatalf("empty query recall %v", r)
	}
}

// Regression: queries with an empty ground-truth list must be excluded from
// the denominator, not silently counted as recall-0 rows.
func TestRecallAtSkipsEmptyTruth(t *testing.T) {
	data := dataset.Uniform(50, 4, 11)
	g := knngraph.BruteForce(data, 8, 0)
	s, _ := NewSearcher(data, g, 8)
	queries := data.SubsetRows([]int{1, 7, 13, 21})
	truth := ExactTruth(data, queries, 3, 0)
	truth[1] = nil       // no ground truth for this query
	truth[3] = []int32{} // nor this one
	r := RecallAt(s, queries, truth, 3, 32)
	// Queries 0 and 2 are data points searched over an exact graph with a
	// generous pool: both find their full true top-3, so the average over
	// the two evaluated queries is 1. The old N-denominator reported 0.5.
	if r != 1 {
		t.Fatalf("recall with half-empty truth = %v, want 1 (empty lists excluded)", r)
	}
	if r := RecallAt(s, queries, [][]int32{nil, nil, nil, nil}, 3, 32); r != 0 {
		t.Fatalf("recall with all-empty truth = %v, want 0", r)
	}
}

// The early exit must bound search work versus the exhaust-the-pool
// baseline without costing measurable recall — the paper's §4.3 latency
// claim rests on it.
func TestEarlyTerminationBoundsWork(t *testing.T) {
	all := dataset.SIFTLike(840, 2)
	data, queries := split(all, 40)
	g, err := core.BuildGraph(data, core.GraphConfig{Kappa: 10, Xi: 25, Tau: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSearcher(data, g, 32)
	if err != nil {
		t.Fatal(err)
	}
	const topK, ef = 10, 128
	truth := ExactTruth(data, queries, topK, 0)
	measure := func(exhaust bool) (recall float64, dist, expanded int) {
		var sum float64
		for qi := 0; qi < queries.N; qi++ {
			res, st := s.search(queries.Row(qi), topK, ef, exhaust)
			dist += st.Dist
			expanded += st.Expanded
			got := make(map[int32]bool, len(res))
			for _, nb := range res {
				got[nb.ID] = true
			}
			hit := 0
			for _, id := range truth[qi] {
				if got[id] {
					hit++
				}
			}
			sum += float64(hit) / float64(len(truth[qi]))
		}
		return sum / float64(queries.N), dist, expanded
	}
	baseRecall, baseDist, baseExp := measure(true)
	earlyRecall, earlyDist, earlyExp := measure(false)
	t.Logf("exhaust: recall=%.4f dist=%d expanded=%d | early: recall=%.4f dist=%d expanded=%d",
		baseRecall, baseDist, baseExp, earlyRecall, earlyDist, earlyExp)
	if earlyExp >= baseExp*6/10 {
		t.Fatalf("early exit expanded %d candidates, want well under the %d baseline", earlyExp, baseExp)
	}
	if earlyDist >= baseDist*8/10 {
		t.Fatalf("early exit computed %d distances, want well under the %d baseline", earlyDist, baseDist)
	}
	if diff := baseRecall - earlyRecall; diff > 0.01 {
		t.Fatalf("early exit costs %.4f recall@%d (%.4f -> %.4f), budget 0.01", diff, topK, baseRecall, earlyRecall)
	}
}

// Recall parity must hold on fvecs-loaded data too, not just on in-memory
// synthetic matrices — the path real corpora arrive through.
func TestEarlyTerminationParityOnFvecsData(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.fvecs")
	if err := dataset.SaveFvecsFile(path, dataset.SIFTLike(600, 9)); err != nil {
		t.Fatal(err)
	}
	all, err := dataset.LoadFvecsFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	data, queries := split(all, 30)
	g := knngraph.BruteForce(data, 10, 0)
	s, err := NewSearcher(data, g, 16)
	if err != nil {
		t.Fatal(err)
	}
	const topK, ef = 10, 64
	truth := ExactTruth(data, queries, topK, 0)
	recall := func(exhaust bool) float64 {
		var sum float64
		for qi := 0; qi < queries.N; qi++ {
			res, _ := s.search(queries.Row(qi), topK, ef, exhaust)
			got := make(map[int32]bool, len(res))
			for _, nb := range res {
				got[nb.ID] = true
			}
			hit := 0
			for _, id := range truth[qi] {
				if got[id] {
					hit++
				}
			}
			sum += float64(hit) / float64(len(truth[qi]))
		}
		return sum / float64(queries.N)
	}
	if diff := recall(true) - recall(false); diff > 0.01 {
		t.Fatalf("early exit costs %.4f recall@%d on fvecs data, budget 0.01", diff, topK)
	}
}

func TestSearchStatsCounters(t *testing.T) {
	data := dataset.SIFTLike(400, 5)
	g := knngraph.BruteForce(data, 8, 0)
	s, _ := NewSearcher(data, g, 8)
	res, st := s.search(data.Row(3), 5, 32, false)
	if len(res) != 5 {
		t.Fatalf("got %d results", len(res))
	}
	if st.Dist <= 0 || st.Expanded <= 0 {
		t.Fatalf("stats not counted: %+v", st)
	}
	if st.Expanded > st.Dist {
		t.Fatalf("expanded %d candidates with only %d distance evaluations", st.Expanded, st.Dist)
	}
	_, st2 := s.search(data.Row(9), 5, 32, false)
	q, dist, exp := s.Totals()
	if q != 2 || dist != uint64(st.Dist+st2.Dist) || exp != uint64(st.Expanded+st2.Expanded) {
		t.Fatalf("totals (%d, %d, %d) do not accumulate per-query stats %+v %+v", q, dist, exp, st, st2)
	}
}

// The CSR layout must hold exactly the symmetrised adjacency: every graph
// edge in both directions, no duplicates, no self-loops.
func TestCSRMatchesSymmetrisedAdjacency(t *testing.T) {
	data := dataset.GloVeLike(300, 6)
	g := knngraph.BruteForce(data, 7, 0)
	s, err := NewSearcher(data, g, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Reference adjacency, built the straightforward way.
	want := make([]map[int32]bool, data.N)
	for i := range want {
		want[i] = make(map[int32]bool)
	}
	for i, list := range g.Lists {
		for _, nb := range list {
			want[i][nb.ID] = true
			want[nb.ID][int32(i)] = true
		}
	}
	edges := 0
	for i := 0; i < data.N; i++ {
		row := s.adjacency(int32(i))
		edges += len(row)
		seen := make(map[int32]bool, len(row))
		for _, id := range row {
			if id == int32(i) {
				t.Fatalf("node %d: CSR self-loop", i)
			}
			if seen[id] {
				t.Fatalf("node %d: duplicate CSR neighbour %d", i, id)
			}
			seen[id] = true
			if !want[i][id] {
				t.Fatalf("node %d: CSR neighbour %d not in symmetrised adjacency", i, id)
			}
		}
		if len(seen) != len(want[i]) {
			t.Fatalf("node %d: CSR has %d neighbours, want %d", i, len(seen), len(want[i]))
		}
	}
	if edges != s.Edges() {
		t.Fatalf("Edges() = %d, want %d", s.Edges(), edges)
	}
}

// Entry points must be nEntry distinct, evenly spread ids whenever the
// dataset is large enough — a stride-and-modulo scheme could wrap and
// silently under-fill the set.
func TestEntryPointsDistinctAndCovering(t *testing.T) {
	for _, tc := range []struct{ n, nEntry int }{
		{10, 7}, {20, 16}, {100, 16}, {5, 16}, {97, 31}, {16, 16},
	} {
		data := dataset.Uniform(tc.n, 4, int64(tc.n))
		g := knngraph.BruteForce(data, 3, 0)
		s, err := NewSearcher(data, g, tc.nEntry)
		if err != nil {
			t.Fatal(err)
		}
		want := tc.nEntry
		if want > tc.n {
			want = tc.n
		}
		if len(s.entry) < want {
			t.Fatalf("n=%d nEntry=%d: %d entry points, want >= %d", tc.n, tc.nEntry, len(s.entry), want)
		}
		seen := make(map[int32]bool, len(s.entry))
		for _, e := range s.entry {
			if seen[e] {
				t.Fatalf("n=%d nEntry=%d: duplicate entry point %d", tc.n, tc.nEntry, e)
			}
			seen[e] = true
			if int(e) < 0 || int(e) >= tc.n {
				t.Fatalf("n=%d nEntry=%d: entry point %d out of range", tc.n, tc.nEntry, e)
			}
		}
	}
}
