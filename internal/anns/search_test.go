package anns

import (
	"testing"

	"gkmeans/internal/core"
	"gkmeans/internal/dataset"
	"gkmeans/internal/knngraph"
	"gkmeans/internal/vec"
)

// split separates one corpus into a reference set and a held-out query set
// drawn from the same distribution (how SIFT1M's query set is produced).
func split(m *vec.Matrix, nQueries int) (data, queries *vec.Matrix) {
	dataIdx := make([]int, 0, m.N-nQueries)
	queryIdx := make([]int, 0, nQueries)
	for i := 0; i < m.N; i++ {
		if i%(m.N/nQueries) == 0 && len(queryIdx) < nQueries {
			queryIdx = append(queryIdx, i)
		} else {
			dataIdx = append(dataIdx, i)
		}
	}
	return m.SubsetRows(dataIdx), m.SubsetRows(queryIdx)
}

func TestSearchOnExactGraphFindsTrueNeighbors(t *testing.T) {
	all := dataset.SIFTLike(650, 1)
	data, queries := split(all, 50)
	g := knngraph.BruteForce(data, 10, 0)
	s, err := NewSearcher(data, g, 32)
	if err != nil {
		t.Fatal(err)
	}
	truth := ExactTruth(data, queries, 1)
	if r := RecallAt(s, queries, truth, 1, 32); r < 0.9 {
		t.Fatalf("recall@1 on exact graph %.3f, want >= 0.9", r)
	}
}

func TestSearchOnConstructedGraph(t *testing.T) {
	// §4.3: the Alg. 3 graph supports ANN search with good recall.
	all := dataset.SIFTLike(840, 2)
	data, queries := split(all, 40)
	g, err := core.BuildGraph(data, core.GraphConfig{Kappa: 10, Xi: 25, Tau: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSearcher(data, g, 32)
	if err != nil {
		t.Fatal(err)
	}
	truth := ExactTruth(data, queries, 10)
	if r := RecallAt(s, queries, truth, 10, 64); r < 0.8 {
		t.Fatalf("recall@10 %.3f, want >= 0.8", r)
	}
}

func TestSearchResultsSortedAndUnique(t *testing.T) {
	data := dataset.GloVeLike(300, 4)
	g := knngraph.BruteForce(data, 8, 0)
	s, _ := NewSearcher(data, g, 4)
	res := s.Search(data.Row(5), 10, 32)
	if len(res) != 10 {
		t.Fatalf("got %d results", len(res))
	}
	seen := map[int32]bool{}
	for i, nb := range res {
		if seen[nb.ID] {
			t.Fatalf("duplicate id %d", nb.ID)
		}
		seen[nb.ID] = true
		if i > 0 && res[i-1].Dist > nb.Dist {
			t.Fatal("results not sorted")
		}
	}
	// Query is a data point: its own id must be the top hit at distance 0.
	if res[0].ID != 5 || res[0].Dist != 0 {
		t.Fatalf("self query top hit %v", res[0])
	}
}

func TestSearchEfBelowTopKRaised(t *testing.T) {
	data := dataset.Uniform(100, 4, 5)
	g := knngraph.BruteForce(data, 5, 0)
	s, _ := NewSearcher(data, g, 4)
	res := s.Search(data.Row(0), 10, 1) // ef < topK
	if len(res) != 10 {
		t.Fatalf("ef raise failed: %d results", len(res))
	}
}

func TestSearchTopKZero(t *testing.T) {
	data := dataset.Uniform(20, 4, 6)
	g := knngraph.BruteForce(data, 3, 0)
	s, _ := NewSearcher(data, g, 2)
	if res := s.Search(data.Row(0), 0, 8); res != nil {
		t.Fatalf("topK=0 should return nil, got %v", res)
	}
}

func TestSearcherReusableAcrossQueries(t *testing.T) {
	data := dataset.Uniform(200, 6, 7)
	g := knngraph.BruteForce(data, 6, 0)
	s, _ := NewSearcher(data, g, 4)
	a1 := s.Search(data.Row(3), 5, 16)
	_ = s.Search(data.Row(9), 5, 16)
	a2 := s.Search(data.Row(3), 5, 16)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("repeated identical query returned different results")
		}
	}
}

func TestNewSearcherErrors(t *testing.T) {
	data := dataset.Uniform(10, 3, 8)
	g := knngraph.BruteForce(data, 3, 0)
	other := dataset.Uniform(5, 3, 9)
	if _, err := NewSearcher(other, g, 4); err == nil {
		t.Fatal("size mismatch should error")
	}
	if _, err := NewSearcher(&vec.Matrix{Dim: 3}, knngraph.New(0, 3), 4); err == nil {
		t.Fatal("empty dataset should error")
	}
}

func TestExactTruth(t *testing.T) {
	data := vec.FromRows([][]float32{{0, 0}, {1, 0}, {5, 0}, {6, 0}})
	queries := vec.FromRows([][]float32{{0.1, 0}})
	truth := ExactTruth(data, queries, 2)
	if truth[0][0] != 0 || truth[0][1] != 1 {
		t.Fatalf("truth %v", truth[0])
	}
}

func TestRecallAtEmptyQueries(t *testing.T) {
	data := dataset.Uniform(10, 2, 10)
	g := knngraph.BruteForce(data, 3, 0)
	s, _ := NewSearcher(data, g, 2)
	if r := RecallAt(s, &vec.Matrix{Dim: 2}, nil, 1, 8); r != 0 {
		t.Fatalf("empty query recall %v", r)
	}
}
