// Package anns implements greedy best-first approximate nearest-neighbour
// search over a k-NN graph, backing the paper's §4.3 observation that the
// graph produced by Alg. 3 serves ANN search well (sub-3 ms queries at 0.9+
// recall on 100M SIFT in the authors' C++ setup).
//
// The search keeps a bounded pool of the closest candidates found so far,
// repeatedly expands the closest unexpanded one through its graph
// neighbours, and stops when the pool's best unexpanded candidate can no
// longer improve the top results — the standard graph-ANN routine.
package anns

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"gkmeans/internal/knngraph"
	"gkmeans/internal/vec"
)

// Searcher performs repeated queries against one dataset + graph pair. The
// dataset, adjacency and entry points are read-only after construction and
// every per-query mutable structure lives in a searchScratch recycled
// through a sync.Pool, so a single Searcher is safe for concurrent use from
// any number of goroutines.
type Searcher struct {
	data  *vec.Matrix
	g     *knngraph.Graph
	entry []int32 // fixed, evenly spread entry points

	// adj is the symmetrised adjacency: each node's k-NN list plus the
	// nodes that list it. A raw k-NN graph is directed and splits into
	// hard-to-escape basins; reverse edges restore the connectivity greedy
	// search needs.
	adj [][]int32

	// scratch recycles per-query state across searches and goroutines.
	scratch sync.Pool
}

// searchScratch is the per-query mutable state: the stamp-based visited set
// and the bounded candidate pool. One scratch serves one search at a time;
// the pool hands each goroutine its own.
type searchScratch struct {
	visited []int32
	stamp   int32
	pool    []candidate
}

// candidate is a pool entry during search.
type candidate struct {
	id       int32
	dist     float32
	expanded bool
}

// NewSearcher builds a searcher with nEntry evenly spaced entry points
// (<=0 selects 16). A k-NN graph over strongly clustered data can be
// disconnected even after symmetrisation, and greedy search cannot cross
// between components — so the searcher additionally locates every connected
// component of the graph and guarantees at least one entry point inside
// each, making recall independent of component coverage.
func NewSearcher(data *vec.Matrix, g *knngraph.Graph, nEntry int) (*Searcher, error) {
	if g.N() != data.N {
		return nil, fmt.Errorf("anns: graph has %d nodes for %d samples", g.N(), data.N)
	}
	if data.N == 0 {
		return nil, fmt.Errorf("anns: empty dataset")
	}
	if nEntry <= 0 {
		nEntry = 16
	}
	if nEntry > data.N {
		nEntry = data.N
	}
	s := &Searcher{data: data, g: g}
	n := data.N
	s.scratch.New = func() any {
		return &searchScratch{visited: make([]int32, n)}
	}
	s.adj = make([][]int32, data.N)
	for i, list := range g.Lists {
		for _, nb := range list {
			s.adj[i] = append(s.adj[i], nb.ID)
		}
	}
	for i, list := range g.Lists {
		for _, nb := range list {
			if !g.Contains(int(nb.ID), int32(i)) {
				s.adj[nb.ID] = append(s.adj[nb.ID], int32(i))
			}
		}
	}
	step := data.N / nEntry
	if step == 0 {
		step = 1
	}
	covered := make(map[int32]bool, nEntry)
	for i := 0; i < nEntry; i++ {
		id := int32((i * step) % data.N)
		if !covered[id] {
			covered[id] = true
			s.entry = append(s.entry, id)
		}
	}
	// One entry per connected component not already reachable.
	comp := s.components()
	reach := make(map[int32]bool)
	for _, e := range s.entry {
		reach[comp[e]] = true
	}
	for i := 0; i < data.N; i++ {
		if !reach[comp[i]] {
			reach[comp[i]] = true
			s.entry = append(s.entry, int32(i))
		}
	}
	return s, nil
}

// components labels the connected components of the symmetrised graph with
// an iterative DFS (adj holds both edge directions, so directed reach
// equals undirected components).
func (s *Searcher) components() []int32 {
	n := len(s.adj)
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var stack []int32
	next := int32(0)
	for i := 0; i < n; i++ {
		if comp[i] >= 0 {
			continue
		}
		stack = append(stack[:0], int32(i))
		comp[i] = next
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range s.adj[v] {
				if comp[w] < 0 {
					comp[w] = next
					stack = append(stack, w)
				}
			}
		}
		next++
	}
	return comp
}

// Search returns the approximately closest topK samples to q, sorted by
// ascending squared distance. ef bounds the candidate pool (larger ef =
// higher recall, more distance computations); ef < topK is raised to topK.
// Safe to call from any goroutine.
func (s *Searcher) Search(q []float32, topK, ef int) []knngraph.Neighbor {
	if topK <= 0 {
		return nil
	}
	if ef < topK {
		ef = topK
	}
	sc := s.scratch.Get().(*searchScratch)
	if sc.stamp == math.MaxInt32 {
		// Stamp wrapped: wash the visited array so stale stamps cannot
		// collide with fresh ones.
		for i := range sc.visited {
			sc.visited[i] = 0
		}
		sc.stamp = 0
	}
	sc.stamp++
	stamp := sc.stamp

	// cur is the index of the first unexpanded pool entry: entries before it
	// are all expanded, so each iteration resumes there instead of rescanning
	// the pool from 0 (which made Search O(ef²)).
	cur := 0
	pool := sc.pool[:0]
	insert := func(id int32, dist float32) {
		if len(pool) == ef && dist >= pool[len(pool)-1].dist {
			return
		}
		pos := sort.Search(len(pool), func(i int) bool { return pool[i].dist >= dist })
		if len(pool) < ef {
			pool = append(pool, candidate{})
		}
		copy(pool[pos+1:], pool[pos:len(pool)-1])
		pool[pos] = candidate{id: id, dist: dist}
		if pos < cur {
			cur = pos
		}
	}

	for _, e := range s.entry {
		if sc.visited[e] == stamp {
			continue
		}
		sc.visited[e] = stamp
		insert(e, vec.L2Sqr(q, s.data.Row(int(e))))
	}

	for {
		for cur < len(pool) && pool[cur].expanded {
			cur++
		}
		if cur >= len(pool) {
			break
		}
		pool[cur].expanded = true
		node := pool[cur].id
		for _, id := range s.adj[node] {
			if sc.visited[id] == stamp {
				continue
			}
			sc.visited[id] = stamp
			insert(id, vec.L2Sqr(q, s.data.Row(int(id))))
		}
	}

	if topK > len(pool) {
		topK = len(pool)
	}
	out := make([]knngraph.Neighbor, topK)
	for i := 0; i < topK; i++ {
		out[i] = knngraph.Neighbor{ID: pool[i].id, Dist: pool[i].dist}
	}
	sc.pool = pool // keep the grown capacity for the next query
	s.scratch.Put(sc)
	return out
}

// RecallAt evaluates the searcher on a query set against exact ground truth
// (one exact top-k list per query) and returns the average recall@k: the
// fraction of each true top-k found among the returned top-k.
func RecallAt(s *Searcher, queries *vec.Matrix, truth [][]int32, k, ef int) float64 {
	if queries.N == 0 {
		return 0
	}
	var sum float64
	for qi := 0; qi < queries.N; qi++ {
		res := s.Search(queries.Row(qi), k, ef)
		got := make(map[int32]bool, len(res))
		for _, nb := range res {
			got[nb.ID] = true
		}
		t := truth[qi]
		if len(t) > k {
			t = t[:k]
		}
		if len(t) == 0 {
			continue
		}
		hit := 0
		for _, id := range t {
			if got[id] {
				hit++
			}
		}
		sum += float64(hit) / float64(len(t))
	}
	return sum / float64(queries.N)
}

// ExactTruth computes exact top-k ids for each query by brute force —
// ground truth for recall evaluation.
func ExactTruth(data, queries *vec.Matrix, k int) [][]int32 {
	truth := make([][]int32, queries.N)
	for qi := 0; qi < queries.N; qi++ {
		q := queries.Row(qi)
		type pair struct {
			id int32
			d  float32
		}
		best := make([]pair, 0, k+1)
		for i := 0; i < data.N; i++ {
			d := vec.L2Sqr(q, data.Row(i))
			if len(best) == k && d >= best[len(best)-1].d {
				continue
			}
			pos := sort.Search(len(best), func(j int) bool { return best[j].d >= d })
			if len(best) < k {
				best = append(best, pair{})
			}
			copy(best[pos+1:], best[pos:len(best)-1])
			best[pos] = pair{int32(i), d}
		}
		ids := make([]int32, len(best))
		for i, p := range best {
			ids[i] = p.id
		}
		truth[qi] = ids
	}
	return truth
}
