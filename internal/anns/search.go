// Package anns implements greedy best-first approximate nearest-neighbour
// search over a k-NN graph, backing the paper's §4.3 observation that the
// graph produced by Alg. 3 serves ANN search well (sub-3 ms queries at 0.9+
// recall on 100M SIFT in the authors' C++ setup).
//
// The search keeps a bounded pool of the ef closest candidates found so
// far, sorted by ascending distance, and repeatedly expands the closest
// unexpanded one through its graph neighbours. It terminates early: once
// the best unexpanded candidate can no longer improve the current top-topK
// results and a further patience window of expansions (max(topK, ef/4))
// has brought no top-topK improvement either, the remaining pool tail is
// abandoned. Easy queries — the common case — therefore stop well before
// the ef pool is exhausted, while hard queries keep expanding up to the
// full pool; ef remains the recall/latency knob (it bounds both pool
// admission and the worst-case expansion count), and topK anchors the
// termination window.
//
// Two further hot-path structures keep the constant factor small: the
// symmetrised adjacency is a flat CSR layout (one offsets array and one
// neighbours array, no per-node slice headers to chase), and candidate
// distances are computed with an early-abandoning kernel that stops
// mid-vector once the partial sum proves the candidate cannot enter the
// pool.
package anns

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"gkmeans/internal/checked"
	"gkmeans/internal/knngraph"
	"gkmeans/internal/parallel"
	"gkmeans/internal/vec"
)

// Searcher performs repeated queries against one dataset + graph pair. The
// dataset, adjacency and entry points are read-only after construction and
// every per-query mutable structure lives in a searchScratch recycled
// through a sync.Pool, so a single Searcher is safe for concurrent use from
// any number of goroutines.
type Searcher struct {
	data *vec.Matrix   // float32 rows; nil on a uint8 searcher
	u8   *vec.U8Matrix // uint8 rows; nil on a float32 searcher
	n    int           // rows in whichever matrix backs the searcher
	dim  int

	g     *knngraph.Graph
	entry []int32 // fixed, evenly spread entry points

	// The symmetrised adjacency — each node's k-NN list plus the nodes that
	// list it (a raw k-NN graph is directed and splits into hard-to-escape
	// basins; reverse edges restore the connectivity greedy search needs) —
	// stored as a flat CSR: node i's neighbours are
	// neighbors[offsets[i]:offsets[i+1]]. One contiguous allocation instead
	// of n slice headers keeps expansion sequential in memory.
	offsets   []int32
	neighbors []int32

	// Cumulative hot-path counters, accumulated once per query (not per
	// candidate), exposed through Totals for serving metrics.
	nQueries  atomic.Uint64
	nDist     atomic.Uint64
	nExpanded atomic.Uint64

	// scratch recycles per-query state across searches and goroutines.
	scratch sync.Pool
}

// Stats counts the work one Search performed.
type Stats struct {
	// Dist is the number of distance-kernel evaluations (one per candidate
	// whose distance to the query was computed, abandoned or not).
	Dist int
	// Expanded is the number of pool candidates expanded through their
	// graph neighbours — the quantity the early-termination rule bounds.
	// On easy queries it stays well below ef; it has no hard ceiling
	// (eviction of an already-expanded candidate frees its pool slot for a
	// fresh one), but it never exceeds Dist.
	Expanded int
}

// searchScratch is the per-query mutable state: the stamp-based visited set
// and the bounded candidate pool. One scratch serves one search at a time;
// the pool hands each goroutine its own.
type searchScratch struct {
	// visited holds one stamp per dataset sample — the classic O(1)
	// visited-set fast path: membership is one array load, and "clearing"
	// between queries is a single stamp increment instead of an O(n) wipe.
	visited []int32
	stamp   int32
	pool    []candidate
	// q8 is the byte view of the current query on a uint8 searcher,
	// preallocated here so the per-query narrowing never allocates.
	q8 []uint8
}

// candidate is a pool entry during search.
type candidate struct {
	id       int32
	dist     float32
	expanded bool
}

// NewSearcher builds a searcher with nEntry evenly spread distinct entry
// points (<=0 selects 16). A k-NN graph over strongly clustered data can be
// disconnected even after symmetrisation, and greedy search cannot cross
// between components — so the searcher additionally locates every connected
// component of the graph and guarantees at least one entry point inside
// each, making recall independent of component coverage.
func NewSearcher(data *vec.Matrix, g *knngraph.Graph, nEntry int) (*Searcher, error) {
	return newSearcher(&Searcher{data: data, n: data.N, dim: data.Dim, g: g}, nEntry)
}

// NewSearcherU8 builds a searcher over a uint8 dataset: identical graph,
// entry-point and pool machinery, with candidate distances computed by the
// exact integer kernels (L2SqrU8/L2SqrBoundU8) directly on the byte rows.
// Queries stay []float32 at the API, but every value must be an exact byte
// (an integer in [0,255]) — Search panics otherwise, the same contract as a
// dimension mismatch.
func NewSearcherU8(data *vec.U8Matrix, g *knngraph.Graph, nEntry int) (*Searcher, error) {
	return newSearcher(&Searcher{u8: data, n: data.N, dim: data.Dim, g: g}, nEntry)
}

func newSearcher(s *Searcher, nEntry int) (*Searcher, error) {
	n := s.n
	if s.g.N() != n {
		return nil, fmt.Errorf("anns: graph has %d nodes for %d samples", s.g.N(), n)
	}
	if n == 0 {
		return nil, fmt.Errorf("anns: empty dataset")
	}
	// Ids are int32 end to end (graph lists, CSR, results); a larger dataset
	// cannot be addressed and must be rejected, not truncated.
	if int64(n) > math.MaxInt32 {
		return nil, fmt.Errorf("anns: dataset has %d rows; ids are int32", n)
	}
	if nEntry <= 0 {
		nEntry = 16
	}
	if nEntry > n {
		nEntry = n
	}
	isU8, dim := s.u8 != nil, s.dim
	s.scratch.New = func() any {
		sc := &searchScratch{visited: make([]int32, n)}
		if isU8 {
			sc.q8 = make([]uint8, dim)
		}
		return sc
	}
	if err := s.buildCSR(); err != nil {
		return nil, err
	}
	// floor(i·n/nEntry) is strictly increasing when nEntry <= n, so the
	// entries are nEntry distinct ids spread evenly across the id range —
	// a stride-and-modulo scheme can wrap onto already-covered ids and
	// silently under-fill the entry set.
	s.entry = make([]int32, 0, nEntry)
	for i := 0; i < nEntry; i++ {
		s.entry = append(s.entry, int32(int64(i)*int64(n)/int64(nEntry)))
	}
	// One entry per connected component not already reachable.
	comp := s.components()
	reach := make(map[int32]bool)
	for _, e := range s.entry {
		reach[comp[e]] = true
	}
	for i := 0; i < n; i++ {
		if !reach[comp[i]] {
			reach[comp[i]] = true
			s.entry = append(s.entry, int32(i))
		}
	}
	return s, nil
}

// buildCSR flattens the symmetrised adjacency into the offsets/neighbors
// pair: a counting pass sizes each node's slot, a prefix sum places it, and
// a fill pass writes forward edges then the reverse edges missing from the
// target's own list. Built once per Searcher; every query reads it.
func (s *Searcher) buildCSR() error {
	g, n := s.g, s.n
	deg := make([]int32, n)
	for i, list := range g.Lists {
		deg[i] += int32(len(list))
		for _, nb := range list {
			if !g.Contains(int(nb.ID), int32(i)) {
				deg[nb.ID]++
			}
		}
	}
	s.offsets = make([]int32, n+1)
	var total int64
	for i := 0; i < n; i++ {
		total += int64(deg[i])
		if total > math.MaxInt32 {
			return fmt.Errorf("anns: symmetrised adjacency has over %d edges; int32 CSR offsets overflow", math.MaxInt32)
		}
		s.offsets[i+1] = int32(total)
	}
	s.neighbors = make([]int32, total)
	cursor := deg // reuse: cursor[i] counts down as slots fill
	copy(cursor, s.offsets[:n])
	for i, list := range g.Lists {
		for _, nb := range list {
			s.neighbors[cursor[i]] = nb.ID
			cursor[i]++
		}
	}
	for i, list := range g.Lists {
		for _, nb := range list {
			if !g.Contains(int(nb.ID), int32(i)) {
				s.neighbors[cursor[nb.ID]] = int32(i)
				cursor[nb.ID]++
			}
		}
	}
	return nil
}

// adjacency returns node id's neighbour ids (a CSR row).
//
//gk:hotpath
func (s *Searcher) adjacency(id int32) []int32 {
	return s.neighbors[s.offsets[id]:s.offsets[id+1]]
}

// Edges returns the number of directed edges in the symmetrised adjacency.
func (s *Searcher) Edges() int { return len(s.neighbors) }

// Entries returns the number of search entry points (evenly spread ids plus
// the per-component top-up).
func (s *Searcher) Entries() int { return len(s.entry) }

// components labels the connected components of the symmetrised graph with
// an iterative DFS (the CSR holds both edge directions, so directed reach
// equals undirected components).
func (s *Searcher) components() []int32 {
	n := s.n
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var stack []int32
	next := int32(0)
	for i := 0; i < n; i++ {
		if comp[i] >= 0 {
			continue
		}
		stack = append(stack[:0], checked.Int32(i))
		comp[i] = next
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range s.adjacency(v) {
				if comp[w] < 0 {
					comp[w] = next
					stack = append(stack, w)
				}
			}
		}
		next++
	}
	return comp
}

// Search returns the approximately closest topK samples to q, sorted by
// ascending squared distance. ef bounds the candidate pool and the
// worst-case expansion count (larger ef = higher recall, more distance
// computations); ef < topK is raised to topK. The search stops early once
// the best unexpanded candidate can no longer improve the current top-topK
// and a further patience window of expansions has not improved them either
// (see the package comment). Safe to call from any goroutine.
//
//gk:hotpath
func (s *Searcher) Search(q []float32, topK, ef int) []knngraph.Neighbor {
	res, _ := s.search(q, topK, ef, false)
	return res
}

// Totals returns the cumulative counters across every search answered by
// this Searcher: queries, distance-kernel evaluations and candidate
// expansions.
func (s *Searcher) Totals() (queries, dist, expanded uint64) {
	return s.nQueries.Load(), s.nDist.Load(), s.nExpanded.Load()
}

// search runs one query. exhaust disables early termination (the
// expand-the-whole-pool baseline) — kept for the regression tests that
// prove the early exit bounds work without costing recall.
//
//gk:hotpath
func (s *Searcher) search(q []float32, topK, ef int, exhaust bool) ([]knngraph.Neighbor, Stats) {
	var st Stats
	if topK <= 0 {
		return nil, st
	}
	if ef < topK {
		ef = topK
	}
	// patience: how many consecutive non-improving expansions the search
	// tolerates once the best unexpanded candidate is outside the top-topK.
	// Scaling it with ef keeps ef meaningful as the recall knob.
	patience := ef / 4
	if patience < topK {
		patience = topK
	}
	sc := s.scratch.Get().(*searchScratch)
	if sc.stamp == math.MaxInt32 {
		// Stamp wrapped: wash the visited array so stale stamps cannot
		// collide with fresh ones.
		for i := range sc.visited {
			sc.visited[i] = 0
		}
		sc.stamp = 0
	}
	sc.stamp++
	stamp := sc.stamp
	// On a uint8 searcher, narrow the query once into the scratch byte
	// buffer; the candidate loop then runs the exact integer kernels.
	u8 := s.u8 != nil
	q8 := sc.q8
	if u8 {
		convertQueryU8(q, q8)
	}

	// cur is the index of the first unexpanded pool entry: entries before it
	// are all expanded, so each iteration resumes there instead of rescanning
	// the pool from 0 (which made Search O(ef²)).
	cur := 0
	pool := sc.pool[:0]
	// insert places (id, dist) into the sorted bounded pool and reports the
	// insertion position, or -1 when the pool rejected the candidate.
	insert := func(id int32, dist float32) int {
		if len(pool) == ef && dist >= pool[len(pool)-1].dist {
			return -1
		}
		pos := sort.Search(len(pool), func(i int) bool { return pool[i].dist >= dist })
		if len(pool) < ef {
			pool = append(pool, candidate{})
		}
		copy(pool[pos+1:], pool[pos:len(pool)-1])
		pool[pos] = candidate{id: id, dist: dist}
		if pos < cur {
			cur = pos
		}
		return pos
	}

	for _, e := range s.entry {
		if sc.visited[e] == stamp {
			continue
		}
		sc.visited[e] = stamp
		st.Dist++
		if u8 {
			insert(e, float32(vec.L2SqrU8(q8, s.u8.Row(int(e)))))
		} else {
			insert(e, vec.L2Sqr(q, s.data.Row(int(e))))
		}
	}

	sinceImprove := 0
	for {
		for cur < len(pool) && pool[cur].expanded {
			cur++
		}
		if cur >= len(pool) {
			break
		}
		kTop := topK
		if kTop > len(pool) {
			kTop = len(pool)
		}
		// outside: the best unexpanded candidate sits at or beyond the
		// top-topK boundary, so its own distance cannot improve the current
		// top-topK. Only expansions performed in this state count toward
		// the patience window — the documented rule grants a full window of
		// further expansions after the boundary condition first holds.
		outside := cur >= kTop
		if !exhaust && outside && sinceImprove >= patience {
			// Early termination: the remaining pool tail is very unlikely
			// to help; abandon it.
			break
		}
		pool[cur].expanded = true
		node := pool[cur].id
		st.Expanded++
		improved := false
		for _, id := range s.adjacency(node) {
			if sc.visited[id] == stamp {
				continue
			}
			sc.visited[id] = stamp
			// Candidates that cannot enter the pool are rejected by the
			// early-abandoning kernel partway through the vector.
			bound := float32(math.MaxFloat32)
			if len(pool) == ef {
				bound = pool[len(pool)-1].dist
			}
			st.Dist++
			var d float32
			if u8 {
				// U8Bound never abandons a candidate the float32 kernel
				// would admit, and integer L2 on byte data is exact, so the
				// pool the uint8 path builds is identical to the float path's
				// whenever the widened data equals the byte data.
				d = float32(vec.L2SqrBoundU8(q8, s.u8.Row(int(id)), vec.U8Bound(bound)))
			} else {
				d = vec.L2SqrBound(q, s.data.Row(int(id)), bound)
			}
			if d >= bound {
				continue
			}
			if pos := insert(id, d); pos >= 0 && pos < topK {
				improved = true
			}
		}
		switch {
		case improved:
			sinceImprove = 0
		case outside:
			sinceImprove++
		}
	}

	if topK > len(pool) {
		topK = len(pool)
	}
	out := make([]knngraph.Neighbor, topK)
	for i := 0; i < topK; i++ {
		out[i] = knngraph.Neighbor{ID: pool[i].id, Dist: pool[i].dist}
	}
	sc.pool = pool // keep the grown capacity for the next query
	s.scratch.Put(sc)
	s.nQueries.Add(1)
	s.nDist.Add(uint64(st.Dist))
	s.nExpanded.Add(uint64(st.Expanded))
	return out, st
}

// convertQueryU8 narrows a float32 query onto dst for the integer kernels.
// A query that is not exact bytes has no exact integer distance to byte
// data, so narrowing it would silently change results; panicking matches
// the dimension-mismatch contract (a caller bug, not a data condition).
func convertQueryU8(q []float32, dst []uint8) {
	for i, v := range q {
		if !(v >= 0 && v <= 255) || v != float32(uint8(v)) {
			panic(fmt.Sprintf("anns: query value %v at dim %d is not an exact byte (uint8 searcher)", v, i))
		}
		dst[i] = uint8(v)
	}
}

// RecallAt evaluates the searcher on a query set against exact ground truth
// (one exact top-k list per query) and returns the average recall@k at
// pool size ef. See RecallAtFunc for the scoring protocol.
func RecallAt(s *Searcher, queries *vec.Matrix, truth [][]int32, k, ef int) float64 {
	return RecallAtFunc(s.Search, queries, truth, k, ef)
}

// RecallAtFunc is the recall@k scoring protocol over an arbitrary search
// function — the single definition shared by RecallAt and the sharded
// fan-out path, so the two recall numbers can never diverge in protocol.
// It returns the average fraction of each true top-k found among the
// returned top-k, over the queries that have a non-empty ground-truth
// list. Queries with no ground truth are excluded from the average
// entirely (counting them in the denominator would bias recall downward);
// if no query has ground truth the recall is 0.
func RecallAtFunc(search func(q []float32, k, ef int) []knngraph.Neighbor,
	queries *vec.Matrix, truth [][]int32, k, ef int) float64 {

	var sum float64
	evaluated := 0
	for qi := 0; qi < queries.N; qi++ {
		t := truth[qi]
		if len(t) > k {
			t = t[:k]
		}
		if len(t) == 0 {
			continue
		}
		res := search(queries.Row(qi), k, ef)
		got := make(map[int32]bool, len(res))
		for _, nb := range res {
			got[nb.ID] = true
		}
		hit := 0
		for _, id := range t {
			if got[id] {
				hit++
			}
		}
		evaluated++
		sum += float64(hit) / float64(len(t))
	}
	if evaluated == 0 {
		return 0
	}
	return sum / float64(evaluated)
}

// ExactTruth computes exact top-k ids for each query by brute force —
// ground truth for recall evaluation. Queries are independent, so the scan
// fans out across up to workers goroutines (<=0 selects GOMAXPROCS); the
// result is identical for every worker count.
func ExactTruth(data, queries *vec.Matrix, k, workers int) [][]int32 {
	truth := make([][]int32, queries.N)
	parallel.For(queries.N, workers, func(lo, hi int) {
		for qi := lo; qi < hi; qi++ {
			q := queries.Row(qi)
			type pair struct {
				id int32
				d  float32
			}
			best := make([]pair, 0, k+1)
			for i := 0; i < data.N; i++ {
				d := vec.L2Sqr(q, data.Row(i))
				if len(best) == k && d >= best[len(best)-1].d {
					continue
				}
				pos := sort.Search(len(best), func(j int) bool { return best[j].d >= d })
				if len(best) < k {
					best = append(best, pair{})
				}
				copy(best[pos+1:], best[pos:len(best)-1])
				best[pos] = pair{checked.Int32(i), d}
			}
			ids := make([]int32, len(best))
			for i, p := range best {
				ids[i] = p.id
			}
			truth[qi] = ids
		}
	})
	return truth
}
