package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"gkmeans/internal/vec"
)

// fvecs/ivecs are the de-facto exchange formats of the corpora in Table 1
// (SIFT1M, GIST1M, ...): each vector is stored as a little-endian int32
// dimension header followed by that many float32 (fvecs) or int32 (ivecs)
// values.

// ReadFvecs decodes an fvecs stream. maxN > 0 limits the number of vectors
// read; maxN <= 0 reads the whole stream.
func ReadFvecs(r io.Reader, maxN int) (*vec.Matrix, error) {
	br := bufio.NewReader(r)
	var rows [][]float32
	dim := -1
	for maxN <= 0 || len(rows) < maxN {
		var d int32
		err := binary.Read(br, binary.LittleEndian, &d)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading fvecs header: %w", err)
		}
		if d <= 0 {
			return nil, fmt.Errorf("dataset: fvecs vector %d has dimension %d", len(rows), d)
		}
		if dim == -1 {
			dim = int(d)
		} else if int(d) != dim {
			return nil, fmt.Errorf("dataset: fvecs vector %d has dimension %d, want %d", len(rows), d, dim)
		}
		row := make([]float32, d)
		if err := binary.Read(br, binary.LittleEndian, row); err != nil {
			return nil, fmt.Errorf("dataset: reading fvecs vector %d: %w", len(rows), err)
		}
		rows = append(rows, row)
	}
	return vec.FromRows(rows), nil
}

// WriteFvecs encodes m as an fvecs stream.
func WriteFvecs(w io.Writer, m *vec.Matrix) error {
	bw := bufio.NewWriter(w)
	hdr := make([]byte, 4)
	binary.LittleEndian.PutUint32(hdr, uint32(m.Dim))
	buf := make([]byte, 4*m.Dim)
	for i := 0; i < m.N; i++ {
		if _, err := bw.Write(hdr); err != nil {
			return err
		}
		row := m.Row(i)
		for j, v := range row {
			binary.LittleEndian.PutUint32(buf[4*j:], math.Float32bits(v))
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadIvecs decodes an ivecs stream (e.g. nearest-neighbour ground truth).
func ReadIvecs(r io.Reader, maxN int) ([][]int32, error) {
	br := bufio.NewReader(r)
	var rows [][]int32
	for maxN <= 0 || len(rows) < maxN {
		var d int32
		err := binary.Read(br, binary.LittleEndian, &d)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading ivecs header: %w", err)
		}
		if d <= 0 {
			return nil, fmt.Errorf("dataset: ivecs vector %d has dimension %d", len(rows), d)
		}
		row := make([]int32, d)
		if err := binary.Read(br, binary.LittleEndian, row); err != nil {
			return nil, fmt.Errorf("dataset: reading ivecs vector %d: %w", len(rows), err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteIvecs encodes integer lists as an ivecs stream.
func WriteIvecs(w io.Writer, rows [][]int32) error {
	bw := bufio.NewWriter(w)
	for _, row := range rows {
		if err := binary.Write(bw, binary.LittleEndian, int32(len(row))); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, row); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadFvecsFile reads up to maxN vectors from an fvecs file on disk.
func LoadFvecsFile(path string, maxN int) (*vec.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFvecs(f, maxN)
}

// SaveFvecsFile writes m to an fvecs file on disk.
func SaveFvecsFile(path string, m *vec.Matrix) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteFvecs(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
