package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"gkmeans/internal/vec"
)

// bvecs is the byte-vector variant of fvecs used by the SIFT1B corpus: a
// little-endian int32 dimension header followed by that many uint8 values.
// ReadBvecs widens vectors to float32 on load, which is how every public
// SIFT1B consumer treats them; ReadBvecsU8 keeps them as bytes for the
// uint8 distance path (4x less memory, exact integer L2).

// ReadBvecs decodes a bvecs stream into a float32 matrix. maxN > 0 limits
// the number of vectors read.
func ReadBvecs(r io.Reader, maxN int) (*vec.Matrix, error) {
	br := bufio.NewReader(r)
	var rows [][]float32
	dim := -1
	for maxN <= 0 || len(rows) < maxN {
		var d int32
		err := binary.Read(br, binary.LittleEndian, &d)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading bvecs header: %w", err)
		}
		if d <= 0 {
			return nil, fmt.Errorf("dataset: bvecs vector %d has dimension %d", len(rows), d)
		}
		if dim == -1 {
			dim = int(d)
		} else if int(d) != dim {
			return nil, fmt.Errorf("dataset: bvecs vector %d has dimension %d, want %d", len(rows), d, dim)
		}
		raw := make([]uint8, d)
		if _, err := io.ReadFull(br, raw); err != nil {
			return nil, fmt.Errorf("dataset: reading bvecs vector %d: %w", len(rows), err)
		}
		row := make([]float32, d)
		for i, b := range raw {
			row[i] = float32(b)
		}
		rows = append(rows, row)
	}
	return vec.FromRows(rows), nil
}

// ReadBvecsU8 decodes a bvecs stream into a uint8 matrix without widening:
// the same wire format as ReadBvecs, kept in the bytes the file actually
// holds. maxN > 0 limits the number of vectors read.
func ReadBvecsU8(r io.Reader, maxN int) (*vec.U8Matrix, error) {
	br := bufio.NewReader(r)
	var data []uint8
	n, dim := 0, -1
	for maxN <= 0 || n < maxN {
		var d int32
		err := binary.Read(br, binary.LittleEndian, &d)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading bvecs header: %w", err)
		}
		if d <= 0 {
			return nil, fmt.Errorf("dataset: bvecs vector %d has dimension %d", n, d)
		}
		if d > vec.MaxU8Dim {
			return nil, fmt.Errorf("dataset: bvecs dimension %d exceeds the uint8 kernel cap %d", d, vec.MaxU8Dim)
		}
		if dim == -1 {
			dim = int(d)
		} else if int(d) != dim {
			return nil, fmt.Errorf("dataset: bvecs vector %d has dimension %d, want %d", n, d, dim)
		}
		data = append(data, make([]uint8, d)...)
		if _, err := io.ReadFull(br, data[len(data)-int(d):]); err != nil {
			return nil, fmt.Errorf("dataset: reading bvecs vector %d: %w", n, err)
		}
		n++
	}
	if dim == -1 {
		dim = 0
	}
	if n == 0 {
		return &vec.U8Matrix{Dim: dim}, nil
	}
	return &vec.U8Matrix{Data: data, N: n, Dim: dim}, nil
}

// WriteBvecs encodes a matrix as a bvecs stream. Values are rounded and
// clamped to [0,255]; it errors when a value is more than 0.5 outside that
// range (the caller is probably holding non-byte data).
func WriteBvecs(w io.Writer, m *vec.Matrix) error {
	bw := bufio.NewWriter(w)
	hdr := make([]byte, 4)
	binary.LittleEndian.PutUint32(hdr, uint32(m.Dim))
	raw := make([]uint8, m.Dim)
	for i := 0; i < m.N; i++ {
		if _, err := bw.Write(hdr); err != nil {
			return err
		}
		for j, v := range m.Row(i) {
			if v < -0.5 || v > 255.5 {
				return fmt.Errorf("dataset: value %v at row %d col %d does not fit a byte", v, i, j)
			}
			iv := int(v + 0.5)
			if iv < 0 {
				iv = 0
			}
			if iv > 255 {
				iv = 255
			}
			raw[j] = uint8(iv)
		}
		if _, err := bw.Write(raw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadBvecsFile reads up to maxN vectors from a bvecs file.
func LoadBvecsFile(path string, maxN int) (*vec.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBvecs(f, maxN)
}

// LoadBvecsU8 reads up to maxN vectors from a bvecs file without widening
// them — the entry point of the uint8 distance path.
func LoadBvecsU8(path string, maxN int) (*vec.U8Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBvecsU8(f, maxN)
}

// SplitU8 partitions a uint8 matrix exactly like Split: the same strided
// held-out query rows, so a uint8 load and a widened load of the same file
// produce element-identical corpus/query splits.
func SplitU8(m *vec.U8Matrix, nQueries int) (data, queries *vec.U8Matrix) {
	if nQueries >= m.N {
		nQueries = m.N - 1
	}
	if nQueries <= 0 {
		return m.Clone(), &vec.U8Matrix{Dim: m.Dim}
	}
	stride := m.N / nQueries
	dataIdx := make([]int, 0, m.N-nQueries)
	queryIdx := make([]int, 0, nQueries)
	for i := 0; i < m.N; i++ {
		if i%stride == 0 && len(queryIdx) < nQueries {
			queryIdx = append(queryIdx, i)
		} else {
			dataIdx = append(dataIdx, i)
		}
	}
	return m.SubsetRows(dataIdx), m.SubsetRows(queryIdx)
}

// Split partitions a matrix into a reference set and an evenly strided
// held-out query set of nQueries rows — the standard way this repository
// derives in-distribution ANN query sets. nQueries is clamped to [0, N-1].
func Split(m *vec.Matrix, nQueries int) (data, queries *vec.Matrix) {
	if nQueries >= m.N {
		nQueries = m.N - 1
	}
	if nQueries <= 0 {
		return m.Clone(), &vec.Matrix{Dim: m.Dim}
	}
	stride := m.N / nQueries
	dataIdx := make([]int, 0, m.N-nQueries)
	queryIdx := make([]int, 0, nQueries)
	for i := 0; i < m.N; i++ {
		if i%stride == 0 && len(queryIdx) < nQueries {
			queryIdx = append(queryIdx, i)
		} else {
			dataIdx = append(dataIdx, i)
		}
	}
	return m.SubsetRows(dataIdx), m.SubsetRows(queryIdx)
}
