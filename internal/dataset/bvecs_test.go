package dataset

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestBvecsRoundTrip(t *testing.T) {
	m := SIFTLike(25, 1) // quantised values in [0,160] fit bytes
	var buf bytes.Buffer
	if err := WriteBvecs(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBvecs(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("bvecs round trip mismatch")
	}
}

func TestBvecsMaxN(t *testing.T) {
	m := SIFTLike(10, 2)
	var buf bytes.Buffer
	if err := WriteBvecs(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBvecs(&buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 4 {
		t.Fatalf("read %d vectors", got.N)
	}
}

func TestWriteBvecsRejectsNonByteData(t *testing.T) {
	m := GloVeLike(5, 3) // zero-mean data has negatives
	var buf bytes.Buffer
	if err := WriteBvecs(&buf, m); err == nil {
		t.Fatal("negative values should be rejected")
	}
}

func TestReadBvecsRejectsGarbage(t *testing.T) {
	if _, err := ReadBvecs(bytes.NewReader([]byte{0, 0, 0, 0}), 0); err == nil {
		t.Fatal("zero dimension should error")
	}
	var buf bytes.Buffer
	if err := WriteBvecs(&buf, SIFTLike(1, 4)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadBvecs(bytes.NewReader(raw[:len(raw)-3]), 0); err == nil {
		t.Fatal("truncated payload should error")
	}
}

func TestLoadBvecsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.bvecs")
	m := SIFTLike(8, 5)
	var buf bytes.Buffer
	if err := WriteBvecs(&buf, m); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(path, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBvecsFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("file round trip mismatch")
	}
	if _, err := LoadBvecsFile(filepath.Join(t.TempDir(), "missing"), 0); err == nil {
		t.Fatal("missing file should error")
	}
}

// TestReadBvecsU8MatchesWidened pins the dtype parity at the load layer:
// a uint8 load widened after the fact is element-identical to the widening
// loader, including under maxN truncation and the Split holdout.
func TestReadBvecsU8MatchesWidened(t *testing.T) {
	m := SIFTLike(25, 1)
	var buf bytes.Buffer
	if err := WriteBvecs(&buf, m); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	wide, err := ReadBvecs(bytes.NewReader(raw), 0)
	if err != nil {
		t.Fatal(err)
	}
	u8, err := ReadBvecsU8(bytes.NewReader(raw), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !u8.Widen().Equal(wide) {
		t.Fatal("uint8 load does not match widened load")
	}
	u8Trunc, err := ReadBvecsU8(bytes.NewReader(raw), 4)
	if err != nil {
		t.Fatal(err)
	}
	if u8Trunc.N != 4 {
		t.Fatalf("read %d vectors", u8Trunc.N)
	}
	dataF, queriesF := Split(wide, 5)
	dataU, queriesU := SplitU8(u8, 5)
	if !dataU.Widen().Equal(dataF) || !queriesU.Widen().Equal(queriesF) {
		t.Fatal("SplitU8 does not match Split")
	}
}

func TestReadBvecsU8RejectsGarbage(t *testing.T) {
	if _, err := ReadBvecsU8(bytes.NewReader([]byte{0, 0, 0, 0}), 0); err == nil {
		t.Fatal("zero dimension should error")
	}
	var buf bytes.Buffer
	if err := WriteBvecs(&buf, SIFTLike(1, 4)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadBvecsU8(bytes.NewReader(raw[:len(raw)-3]), 0); err == nil {
		t.Fatal("truncated payload should error")
	}
}

func TestLoadBvecsU8(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.bvecs")
	m := SIFTLike(8, 5)
	var buf bytes.Buffer
	if err := WriteBvecs(&buf, m); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(path, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBvecsU8(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Widen().Equal(m) {
		t.Fatal("file round trip mismatch")
	}
	if _, err := LoadBvecsU8(filepath.Join(t.TempDir(), "missing"), 0); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestSplit(t *testing.T) {
	m := Uniform(100, 4, 6)
	data, queries := Split(m, 10)
	if data.N != 90 || queries.N != 10 {
		t.Fatalf("split %d/%d", data.N, queries.N)
	}
	// Strided: query rows are rows 0, 10, 20, ... of the original.
	for qi := 0; qi < queries.N; qi++ {
		orig := m.Row(qi * 10)
		for j, v := range queries.Row(qi) {
			if v != orig[j] {
				t.Fatalf("query %d not the expected source row", qi)
			}
		}
	}
}

func TestSplitEdgeCases(t *testing.T) {
	m := Uniform(10, 2, 7)
	data, queries := Split(m, 0)
	if data.N != 10 || queries.N != 0 {
		t.Fatalf("nQueries=0 split %d/%d", data.N, queries.N)
	}
	data, queries = Split(m, 100) // clamped to n-1
	if data.N != 1 || queries.N != 9 {
		t.Fatalf("oversized split %d/%d", data.N, queries.N)
	}
}

// writeFile is a test helper (os.WriteFile with default perms).
func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
