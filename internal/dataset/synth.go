// Package dataset provides the evaluation corpora. The paper benchmarks on
// SIFT1M, GIST1M, Glove1M and VLAD10M (Table 1); those corpora are multi-GB
// downloads and this module is offline, so the package generates
// distribution-matched synthetic substitutes: Gaussian mixtures with each
// corpus' dimensionality and value range. A Gaussian mixture preserves the
// statistical property the paper's algorithm exploits — near neighbours
// co-occur in the same cluster (Fig. 1) — so relative method behaviour is
// preserved even though absolute distortion values differ from the paper.
//
// The package also reads and writes the standard fvecs/ivecs formats so that
// every tool in this repository runs unchanged on the real corpora when they
// are available.
package dataset

import (
	"fmt"
	"math/rand"

	"gkmeans/internal/vec"
)

// GMMConfig describes a synthetic Gaussian-mixture dataset.
type GMMConfig struct {
	N          int     // number of samples
	Dim        int     // dimensionality
	Components int     // number of mixture components (latent clusters)
	Spread     float64 // standard deviation of component centres per axis
	Noise      float64 // standard deviation of samples around their centre
	Seed       int64   // RNG seed; identical configs generate identical data

	// Post-processing, applied in this order.
	Offset    float64 // added to every value (e.g. to make data non-negative)
	ClampMin  float64 // clamp lower bound (applied only when ClampMax > ClampMin)
	ClampMax  float64
	Quantize  bool // round values to integers (SIFT-style byte-ish vectors)
	Normalize bool // L2-normalise each vector (VLAD-style)
}

// GMM samples a Gaussian-mixture dataset and returns it together with the
// latent component of each sample (useful as weak ground truth in tests).
func GMM(cfg GMMConfig) (*vec.Matrix, []int) {
	if cfg.N <= 0 || cfg.Dim <= 0 || cfg.Components <= 0 {
		panic(fmt.Sprintf("dataset: invalid GMM config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	centres := vec.NewMatrix(cfg.Components, cfg.Dim)
	for c := 0; c < cfg.Components; c++ {
		row := centres.Row(c)
		for j := range row {
			row[j] = float32(rng.NormFloat64() * cfg.Spread)
		}
	}
	m := vec.NewMatrix(cfg.N, cfg.Dim)
	labels := make([]int, cfg.N)
	for i := 0; i < cfg.N; i++ {
		c := rng.Intn(cfg.Components)
		labels[i] = c
		centre := centres.Row(c)
		row := m.Row(i)
		for j := range row {
			v := float64(centre[j]) + rng.NormFloat64()*cfg.Noise + cfg.Offset
			if cfg.ClampMax > cfg.ClampMin {
				if v < cfg.ClampMin {
					v = cfg.ClampMin
				}
				if v > cfg.ClampMax {
					v = cfg.ClampMax
				}
			}
			if cfg.Quantize {
				v = float64(int64(v + 0.5))
			}
			row[j] = float32(v)
		}
		if cfg.Normalize {
			vec.Normalize(row)
		}
	}
	return m, labels
}

// The named generators below mirror Table 1 of the paper. Component counts
// scale with n so that latent cluster size stays realistic at reduced scale.

func components(n int) int {
	c := n / 200
	if c < 8 {
		c = 8
	}
	return c
}

// Generator calibration: real descriptor corpora overlap heavily — the
// paper's Fig. 1 measures only ≈0.5 probability that a sample's nearest
// neighbour shares its (size-50) cluster on SIFT100K. Noise is therefore
// set comparable to the component spread, so the synthetic corpora exhibit
// the same partially-overlapping structure rather than clean blobs.

// SIFTLike generates 128-d non-negative quantised vectors resembling SIFT
// descriptors (value range ≈ [0,160]).
func SIFTLike(n int, seed int64) *vec.Matrix {
	m, _ := GMM(GMMConfig{
		N: n, Dim: 128, Components: components(n),
		Spread: 14, Noise: 15, Seed: seed,
		Offset: 60, ClampMin: 0, ClampMax: 160, Quantize: true,
	})
	return m
}

// GISTLike generates 960-d small positive floats resembling GIST global
// descriptors (values in [0,1)).
func GISTLike(n int, seed int64) *vec.Matrix {
	m, _ := GMM(GMMConfig{
		N: n, Dim: 960, Components: components(n),
		Spread: 0.06, Noise: 0.06, Seed: seed,
		Offset: 0.25, ClampMin: 0, ClampMax: 1,
	})
	return m
}

// GloVeLike generates 100-d zero-mean vectors resembling GloVe word
// embeddings.
func GloVeLike(n int, seed int64) *vec.Matrix {
	m, _ := GMM(GMMConfig{
		N: n, Dim: 100, Components: components(n),
		Spread: 1.2, Noise: 1.2, Seed: seed,
	})
	return m
}

// VLADLike generates 512-d L2-normalised vectors resembling the VLAD image
// descriptors of the paper's 10M-scale experiments.
func VLADLike(n int, seed int64) *vec.Matrix {
	m, _ := GMM(GMMConfig{
		N: n, Dim: 512, Components: components(n),
		Spread: 0.7, Noise: 0.8, Seed: seed,
		Normalize: true,
	})
	return m
}

// Uniform generates n d-dimensional vectors with i.i.d. uniform [0,1)
// coordinates — a structure-free control used by tests.
func Uniform(n, d int, seed int64) *vec.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := vec.NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = rng.Float32()
	}
	return m
}

// Info describes one named dataset for the Table 1 registry.
type Info struct {
	Name     string // registry key, e.g. "sift"
	PaperRef string // dataset used in the paper
	Dim      int
	Kind     string // data type column of Table 1
	Gen      func(n int, seed int64) *vec.Matrix
}

// Registry mirrors Table 1 of the paper: one entry per evaluation corpus,
// each backed by its synthetic generator.
func Registry() []Info {
	return []Info{
		{Name: "sift", PaperRef: "SIFT1M (1M × 128)", Dim: 128, Kind: "SIFT local feature", Gen: SIFTLike},
		{Name: "vlad", PaperRef: "VLAD10M (10M × 512)", Dim: 512, Kind: "VLAD from YFCC", Gen: VLADLike},
		{Name: "glove", PaperRef: "Glove1M (1M × 100)", Dim: 100, Kind: "vectorized text word", Gen: GloVeLike},
		{Name: "gist", PaperRef: "GIST1M (1M × 960)", Dim: 960, Kind: "GIST global feature", Gen: GISTLike},
	}
}

// ByName returns the registry entry with the given name.
func ByName(name string) (Info, error) {
	for _, in := range Registry() {
		if in.Name == name {
			return in, nil
		}
	}
	return Info{}, fmt.Errorf("dataset: unknown dataset %q", name)
}
