package dataset

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"gkmeans/internal/vec"
)

func TestGMMShapeAndDeterminism(t *testing.T) {
	cfg := GMMConfig{N: 200, Dim: 16, Components: 5, Spread: 3, Noise: 1, Seed: 7}
	a, la := GMM(cfg)
	b, lb := GMM(cfg)
	if a.N != 200 || a.Dim != 16 {
		t.Fatalf("shape %d×%d", a.N, a.Dim)
	}
	if !a.Equal(b) {
		t.Fatal("same seed must generate identical data")
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatal("same seed must generate identical labels")
		}
	}
	c, _ := GMM(GMMConfig{N: 200, Dim: 16, Components: 5, Spread: 3, Noise: 1, Seed: 8})
	if a.Equal(c) {
		t.Fatal("different seeds should generate different data")
	}
}

func TestGMMLatentLabelsInRange(t *testing.T) {
	_, labels := GMM(GMMConfig{N: 100, Dim: 4, Components: 3, Spread: 1, Noise: 1, Seed: 1})
	for _, l := range labels {
		if l < 0 || l >= 3 {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestGMMPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for N=0")
		}
	}()
	GMM(GMMConfig{N: 0, Dim: 4, Components: 2})
}

func TestGMMClusterStructure(t *testing.T) {
	// Samples from the same latent component must on average be much closer
	// than samples from different components — the property GK-means relies
	// on (paper Fig. 1).
	m, labels := GMM(GMMConfig{N: 400, Dim: 32, Components: 4, Spread: 10, Noise: 1, Seed: 3})
	var same, diff float64
	var nSame, nDiff int
	for i := 0; i < 200; i++ {
		for j := i + 1; j < 200; j++ {
			d := float64(vec.L2Sqr(m.Row(i), m.Row(j)))
			if labels[i] == labels[j] {
				same += d
				nSame++
			} else {
				diff += d
				nDiff++
			}
		}
	}
	if nSame == 0 || nDiff == 0 {
		t.Skip("degenerate sampling")
	}
	if same/float64(nSame) >= diff/float64(nDiff)/4 {
		t.Fatalf("within-cluster distance %.1f not ≪ between-cluster %.1f",
			same/float64(nSame), diff/float64(nDiff))
	}
}

func TestSIFTLikeProperties(t *testing.T) {
	m := SIFTLike(300, 1)
	if m.Dim != 128 {
		t.Fatalf("dim %d", m.Dim)
	}
	for _, v := range m.Data {
		if v < 0 || v > 160 {
			t.Fatalf("SIFT-like value %v out of [0,160]", v)
		}
		if v != float32(int64(v)) {
			t.Fatalf("SIFT-like value %v not quantised", v)
		}
	}
}

func TestGISTLikeProperties(t *testing.T) {
	m := GISTLike(50, 1)
	if m.Dim != 960 {
		t.Fatalf("dim %d", m.Dim)
	}
	for _, v := range m.Data {
		if v < 0 || v > 1 {
			t.Fatalf("GIST-like value %v out of [0,1]", v)
		}
	}
}

func TestGloVeLikeProperties(t *testing.T) {
	m := GloVeLike(300, 1)
	if m.Dim != 100 {
		t.Fatalf("dim %d", m.Dim)
	}
	var mean float64
	for _, v := range m.Data {
		mean += float64(v)
	}
	mean /= float64(len(m.Data))
	if math.Abs(mean) > 0.5 {
		t.Fatalf("GloVe-like data not roughly zero mean: %v", mean)
	}
}

func TestVLADLikeUnitNorm(t *testing.T) {
	m := VLADLike(100, 1)
	if m.Dim != 512 {
		t.Fatalf("dim %d", m.Dim)
	}
	for i := 0; i < m.N; i++ {
		if n := float64(vec.SqNorm(m.Row(i))); math.Abs(n-1) > 1e-4 {
			t.Fatalf("row %d has squared norm %v", i, n)
		}
	}
}

func TestUniform(t *testing.T) {
	m := Uniform(100, 8, 5)
	if m.N != 100 || m.Dim != 8 {
		t.Fatalf("shape %d×%d", m.N, m.Dim)
	}
	for _, v := range m.Data {
		if v < 0 || v >= 1 {
			t.Fatalf("uniform value %v out of [0,1)", v)
		}
	}
}

func TestRegistryMatchesTable1(t *testing.T) {
	reg := Registry()
	if len(reg) != 4 {
		t.Fatalf("registry has %d entries, Table 1 has 4", len(reg))
	}
	wantDims := map[string]int{"sift": 128, "vlad": 512, "glove": 100, "gist": 960}
	for _, in := range reg {
		if wantDims[in.Name] != in.Dim {
			t.Fatalf("%s has dim %d, want %d", in.Name, in.Dim, wantDims[in.Name])
		}
		m := in.Gen(20, 1)
		if m.N != 20 || m.Dim != in.Dim {
			t.Fatalf("%s generator produced %d×%d", in.Name, m.N, m.Dim)
		}
	}
}

func TestByName(t *testing.T) {
	in, err := ByName("glove")
	if err != nil || in.Dim != 100 {
		t.Fatalf("ByName(glove) = %+v, %v", in, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestFvecsRoundTrip(t *testing.T) {
	m := SIFTLike(37, 9)
	var buf bytes.Buffer
	if err := WriteFvecs(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFvecs(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("fvecs round trip mismatch")
	}
}

func TestFvecsMaxN(t *testing.T) {
	m := Uniform(10, 4, 1)
	var buf bytes.Buffer
	if err := WriteFvecs(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFvecs(&buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 3 {
		t.Fatalf("maxN=3 read %d vectors", got.N)
	}
}

func TestFvecsRejectsBadDimension(t *testing.T) {
	// A header of 0 is invalid.
	if _, err := ReadFvecs(bytes.NewReader([]byte{0, 0, 0, 0}), 0); err == nil {
		t.Fatal("expected error for zero dimension")
	}
	// Mixed dimensions are invalid.
	var buf bytes.Buffer
	if err := WriteFvecs(&buf, Uniform(1, 2, 1)); err != nil {
		t.Fatal(err)
	}
	if err := WriteFvecs(&buf, Uniform(1, 3, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFvecs(&buf, 0); err == nil {
		t.Fatal("expected error for inconsistent dimensions")
	}
}

func TestFvecsTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFvecs(&buf, Uniform(1, 4, 1)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadFvecs(bytes.NewReader(raw[:len(raw)-2]), 0); err == nil {
		t.Fatal("expected error for truncated vector")
	}
}

func TestIvecsRoundTrip(t *testing.T) {
	rows := [][]int32{{1, 2, 3}, {4, 5, 6}}
	var buf bytes.Buffer
	if err := WriteIvecs(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIvecs(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1][2] != 6 {
		t.Fatalf("ivecs round trip got %v", got)
	}
}

func TestFvecsFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.fvecs")
	m := GloVeLike(25, 2)
	if err := SaveFvecsFile(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFvecsFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("file round trip mismatch")
	}
	if _, err := LoadFvecsFile(filepath.Join(t.TempDir(), "missing.fvecs"), 0); err == nil {
		t.Fatal("expected error for missing file")
	}
}
