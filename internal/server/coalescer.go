package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"gkmeans"
)

// ErrDraining is returned for work submitted after shutdown has begun.
var ErrDraining = errors.New("server: draining, not accepting new work")

// coalescer micro-batches concurrent single-query searches against one
// index. Each incoming query joins the open batch for its (topK, ef,
// nprobe) parameters; a batch is executed — one Index.SearchBatch call
// fanning the queries across the worker pool — as soon as it reaches
// maxBatch queries or its collection window expires, whichever comes first.
// Under load this turns q concurrent HTTP requests into ~q/maxBatch batched
// searches that share workers instead of contending query by query; an idle
// server pays at most the window in added latency.
//
// Results are identical to calling Index.SearchNProbe directly: batches are
// grouped by exact (topK, ef, nprobe), and SearchBatchNProbe resolves those
// parameters the same way SearchNProbe does.
//
// The coalescer holds a provider function, not an index value: the serving
// layer swaps in new index epochs (inserts, deletes, compaction) while
// batches are open, and a batch resolves the index at execution time so it
// always runs against the newest epoch.
type coalescer struct {
	get      func() *gkmeans.Index
	window   time.Duration
	maxBatch int

	mu     sync.Mutex
	closed bool
	groups map[searchKey]*batchGroup

	queries  atomic.Int64 // single queries accepted
	batches  atomic.Int64 // SearchBatch executions
	maxFlush atomic.Int64 // largest batch executed
}

// searchKey groups queries that can share one SearchBatch call.
type searchKey struct{ topK, ef, nprobe int }

// batchGroup is one open batch: the collected queries, one result channel
// per caller, and each caller's context so a query whose deadline already
// expired can be dropped at execution time. flushed guards against the
// double flush that the size trigger and the window timer could otherwise
// race into.
type batchGroup struct {
	key     searchKey
	queries [][]float32
	ctxs    []context.Context
	out     []chan []gkmeans.Neighbor
	timer   *time.Timer
	flushed bool
}

// newCoalescer wires a coalescer to an index provider. window <= 0
// disables batching (every query runs alone); maxBatch <= 1 likewise.
func newCoalescer(get func() *gkmeans.Index, window time.Duration, maxBatch int) *coalescer {
	return &coalescer{
		get:      get,
		window:   window,
		maxBatch: maxBatch,
		groups:   make(map[searchKey]*batchGroup),
	}
}

// Search answers one query through the micro-batcher. It blocks until the
// query's batch has executed or ctx is done; a query whose caller gave up
// still executes with its batch (the result is simply dropped).
func (c *coalescer) Search(ctx context.Context, q []float32, topK, ef, nprobe int) ([]gkmeans.Neighbor, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if c.window <= 0 || c.maxBatch <= 1 {
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return nil, ErrDraining
		}
		c.queries.Add(1)
		c.batches.Add(1)
		c.bumpMaxFlush(1)
		return c.get().SearchNProbe(q, topK, ef, nprobe), nil
	}

	key := searchKey{topK: topK, ef: ef, nprobe: nprobe}
	ch := make(chan []gkmeans.Neighbor, 1) // buffered: delivery never blocks on a gone caller

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrDraining
	}
	c.queries.Add(1)
	g, ok := c.groups[key]
	if !ok {
		g = &batchGroup{key: key}
		g.timer = time.AfterFunc(c.window, func() { c.flush(g) })
		c.groups[key] = g
	}
	g.queries = append(g.queries, q)
	g.ctxs = append(g.ctxs, ctx)
	g.out = append(g.out, ch)
	full := len(g.queries) >= c.maxBatch
	if full {
		c.detachLocked(g)
	}
	c.mu.Unlock()

	if full {
		// The filling goroutine runs the batch itself: natural backpressure,
		// and no handoff latency for the batch-mates waiting on channels.
		c.run(g)
	}

	select {
	case res := <-ch:
		return res, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// detachLocked removes g from the open set and disarms its timer. The
// caller holds c.mu; after detach, the caller owns g exclusively.
func (c *coalescer) detachLocked(g *batchGroup) {
	g.flushed = true
	g.timer.Stop()
	delete(c.groups, g.key)
}

// flush is the window-timer path: claim the group if the size trigger has
// not already, then execute it.
func (c *coalescer) flush(g *batchGroup) {
	c.mu.Lock()
	if g.flushed {
		c.mu.Unlock()
		return
	}
	c.detachLocked(g)
	c.mu.Unlock()
	c.run(g)
}

// run executes one claimed batch and delivers each caller its result list.
// Queries whose caller's context is already done — deadline expired or
// connection gone while the batch collected — are dropped before the
// SearchBatch call: one timed-out request must not cost its batch-mates
// any work, let alone poison their results. Per-query results are
// independent (SearchBatch is query-parallel, not query-coupled), so the
// survivors' neighbours are bit-identical with or without the dropped
// rows.
func (c *coalescer) run(g *batchGroup) {
	live := g.queries[:0]
	out := g.out[:0]
	for i, ctx := range g.ctxs {
		if ctx.Err() != nil {
			continue // caller is gone; its buffered channel just gets no send
		}
		live = append(live, g.queries[i])
		out = append(out, g.out[i])
	}
	if len(live) == 0 {
		return // every caller timed out while the batch collected
	}
	c.batches.Add(1)
	c.bumpMaxFlush(int64(len(live)))
	m := gkmeans.FromRows(live)
	res := c.get().SearchBatchNProbe(m, g.key.topK, g.key.ef, g.key.nprobe)
	for i, ch := range out {
		ch <- res[i]
	}
}

func (c *coalescer) bumpMaxFlush(n int64) {
	for {
		cur := c.maxFlush.Load()
		if n <= cur || c.maxFlush.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Close stops accepting new queries and synchronously executes every open
// batch, so callers already waiting get their results — the drain step of
// graceful shutdown.
func (c *coalescer) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	pending := make([]*batchGroup, 0, len(c.groups))
	for _, g := range c.groups {
		pending = append(pending, g)
	}
	for _, g := range pending {
		c.detachLocked(g)
	}
	c.mu.Unlock()
	for _, g := range pending {
		c.run(g)
	}
}

// Stats returns the counters: total queries accepted, batches executed and
// the largest batch.
func (c *coalescer) Stats() (queries, batches, maxBatch int64) {
	return c.queries.Load(), c.batches.Load(), c.maxFlush.Load()
}
