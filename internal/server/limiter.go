package server

import (
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// limiter is the load-shedding concurrency gate in front of the expensive
// endpoints (search, cluster). It admits at most max requests at a time and
// rejects the rest immediately with 429 + Retry-After instead of queueing
// them: under overload, queued work only converts into collapsed tail
// latency and timed-out clients, while an early 429 costs the shed caller
// one cheap round trip and keeps the admitted requests fast. max <= 0
// disables the gate.
//
// The gate is a single atomic counter, not a semaphore: shedding must stay
// O(1) and allocation-free precisely when the server is busiest.
type limiter struct {
	max        int64
	retryAfter time.Duration

	inflight atomic.Int64
	shed     atomic.Int64 // requests rejected with 429
}

func newLimiter(max int, retryAfter time.Duration) *limiter {
	if retryAfter <= 0 {
		retryAfter = DefaultRetryAfter
	}
	return &limiter{max: int64(max), retryAfter: retryAfter}
}

// acquire tries to admit one request. The counter is incremented first and
// repaired on rejection, so two racing requests cannot both slip under the
// limit.
func (l *limiter) acquire() bool {
	if l.max <= 0 {
		return true
	}
	if l.inflight.Add(1) > l.max {
		l.inflight.Add(-1)
		l.shed.Add(1)
		return false
	}
	return true
}

// release returns an admitted request's slot.
func (l *limiter) release() {
	if l.max > 0 {
		l.inflight.Add(-1)
	}
}

// reject writes the 429 shed response. Retry-After is the client's retry
// contract: honour it, then retry — the Go client in gkmeans/client does
// both (see OPERATIONS.md "Load shedding").
func (l *limiter) reject(w http.ResponseWriter) {
	secs := int(l.retryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusTooManyRequests,
		"server at concurrency limit (%d in flight); retry after %ds", l.max, secs)
}
