package server

import (
	"encoding/json"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latWindow is the per-endpoint ring of recent request latencies backing
// the quantile estimates. 1024 samples bound both memory and the cost of
// the sort performed when /debug/vars is scraped.
const latWindow = 1024

// metrics tracks per-endpoint request counts and latency quantiles plus a
// server-wide in-flight gauge, exported as JSON at /debug/vars (the expvar
// convention, but instance-scoped: no process-global registry, so many
// servers can coexist in one process/test binary).
type metrics struct {
	inflight atomic.Int64

	mu        sync.Mutex
	endpoints map[string]*endpointMetrics
}

type endpointMetrics struct {
	count atomic.Int64

	mu     sync.Mutex
	ring   [latWindow]float64 // latency in milliseconds
	pos    int
	filled int
}

func newMetrics() *metrics {
	return &metrics{endpoints: make(map[string]*endpointMetrics)}
}

// endpoint returns (creating on first use) the named endpoint's stats.
func (m *metrics) endpoint(name string) *endpointMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	em, ok := m.endpoints[name]
	if !ok {
		em = &endpointMetrics{}
		m.endpoints[name] = em
	}
	return em
}

// observe records one completed request.
func (em *endpointMetrics) observe(d time.Duration) {
	em.count.Add(1)
	ms := float64(d) / float64(time.Millisecond)
	em.mu.Lock()
	em.ring[em.pos] = ms
	em.pos = (em.pos + 1) % latWindow
	if em.filled < latWindow {
		em.filled++
	}
	em.mu.Unlock()
}

// quantiles returns p50/p90/p99 over the retained window via the
// nearest-rank method; zeros when nothing has been observed yet.
func (em *endpointMetrics) quantiles() (p50, p90, p99 float64) {
	em.mu.Lock()
	n := em.filled
	buf := make([]float64, n)
	copy(buf, em.ring[:n])
	em.mu.Unlock()
	if n == 0 {
		return 0, 0, 0
	}
	sort.Float64s(buf)
	rank := func(q float64) float64 {
		i := int(q*float64(n)+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return buf[i]
	}
	return rank(0.50), rank(0.90), rank(0.99)
}

// instrument wraps a handler with the in-flight gauge and per-endpoint
// count/latency tracking under name.
func (m *metrics) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	em := m.endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		m.inflight.Add(1)
		start := time.Now()
		defer func() {
			em.observe(time.Since(start))
			m.inflight.Add(-1)
		}()
		h(w, r)
	}
}

// endpointVars is the exported per-endpoint snapshot.
type endpointVars struct {
	Count int64   `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// serveVars renders the metrics snapshot at /debug/vars.
func (m *metrics) serveVars(w http.ResponseWriter, _ *http.Request) {
	m.mu.Lock()
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	m.mu.Unlock()
	sort.Strings(names)

	eps := make(map[string]endpointVars, len(names))
	for _, name := range names {
		em := m.endpoint(name)
		p50, p90, p99 := em.quantiles()
		eps[name] = endpointVars{Count: em.count.Load(), P50Ms: p50, P90Ms: p90, P99Ms: p99}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"inflight":   m.inflight.Load(),
		"endpoints":  eps,
		"goroutines": runtime.NumGoroutine(),
	})
}
