package server

import (
	"encoding/json"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// latWindow is the per-endpoint ring of recent request latencies backing
// the quantile estimates. 1024 samples bound both memory and the cost of
// the sort performed when /debug/vars is scraped.
const latWindow = 1024

// durationBuckets are the upper bounds (seconds) of the request-latency
// histogram exported at /metrics. They span sub-millisecond cache hits to
// multi-second cluster calls; Prometheus appends the implicit +Inf bucket.
var durationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// metrics tracks per-endpoint request counts, status codes, latency
// quantiles and histogram buckets, plus a server-wide in-flight gauge.
// Everything is instance-scoped (no process-global registry, so many
// servers can coexist in one process/test binary) and exported twice: as
// JSON at /debug/vars (the expvar convention) and in Prometheus text
// format at /metrics (see Server.serveMetrics).
type metrics struct {
	inflight atomic.Int64

	mu        sync.Mutex
	endpoints map[string]*endpointMetrics
}

type endpointMetrics struct {
	count atomic.Int64

	mu      sync.Mutex
	ring    [latWindow]float64 // latency in milliseconds
	pos     int
	filled  int
	codes   map[int]int64 // HTTP status → responses
	buckets []int64       // non-cumulative counts per durationBuckets bound
	over    int64         // observations above the last bound (the +Inf bucket)
	sumNS   int64         // total observed latency, for the histogram _sum
}

func newMetrics() *metrics {
	return &metrics{endpoints: make(map[string]*endpointMetrics)}
}

// endpoint returns (creating on first use) the named endpoint's stats.
func (m *metrics) endpoint(name string) *endpointMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	em, ok := m.endpoints[name]
	if !ok {
		em = &endpointMetrics{
			codes:   make(map[int]int64),
			buckets: make([]int64, len(durationBuckets)),
		}
		m.endpoints[name] = em
	}
	return em
}

// observe records one completed request and the status code it answered
// with.
func (em *endpointMetrics) observe(d time.Duration, code int) {
	em.count.Add(1)
	ms := float64(d) / float64(time.Millisecond)
	secs := d.Seconds()
	em.mu.Lock()
	em.ring[em.pos] = ms
	em.pos = (em.pos + 1) % latWindow
	if em.filled < latWindow {
		em.filled++
	}
	em.codes[code]++
	em.sumNS += int64(d)
	placed := false
	for i, ub := range durationBuckets {
		if secs <= ub {
			em.buckets[i]++
			placed = true
			break
		}
	}
	if !placed {
		em.over++
	}
	em.mu.Unlock()
}

// quantiles returns p50/p90/p99 over the retained window via the
// nearest-rank method; zeros when nothing has been observed yet.
func (em *endpointMetrics) quantiles() (p50, p90, p99 float64) {
	em.mu.Lock()
	n := em.filled
	buf := make([]float64, n)
	copy(buf, em.ring[:n])
	em.mu.Unlock()
	if n == 0 {
		return 0, 0, 0
	}
	sort.Float64s(buf)
	rank := func(q float64) float64 {
		i := int(q*float64(n)+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return buf[i]
	}
	return rank(0.50), rank(0.90), rank(0.99)
}

// histSnapshot copies the histogram state: per-code counts, cumulative
// bucket counts (Prometheus buckets are cumulative on the wire), the +Inf
// total and the latency sum in seconds.
func (em *endpointMetrics) histSnapshot() (codes map[int]int64, cum []int64, total int64, sumSeconds float64) {
	em.mu.Lock()
	defer em.mu.Unlock()
	codes = make(map[int]int64, len(em.codes))
	for c, n := range em.codes {
		codes[c] = n
	}
	cum = make([]int64, len(em.buckets))
	running := int64(0)
	for i, n := range em.buckets {
		running += n
		cum[i] = running
	}
	return codes, cum, running + em.over, float64(em.sumNS) / 1e9
}

// statusRecorder captures the status code a handler wrote so instrument
// can attribute the request; an untouched recorder means an implicit 200.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the in-flight gauge and per-endpoint
// count/status/latency tracking under name.
func (m *metrics) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	em := m.endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		m.inflight.Add(1)
		sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		defer func() {
			em.observe(time.Since(start), sr.code)
			m.inflight.Add(-1)
		}()
		h(sr, r)
	}
}

// endpointVars is the exported per-endpoint snapshot.
type endpointVars struct {
	Count int64   `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// serveVars renders the metrics snapshot at /debug/vars.
func (m *metrics) serveVars(w http.ResponseWriter, _ *http.Request) {
	m.mu.Lock()
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	m.mu.Unlock()
	sort.Strings(names)

	eps := make(map[string]endpointVars, len(names))
	for _, name := range names {
		em := m.endpoint(name)
		p50, p90, p99 := em.quantiles()
		eps[name] = endpointVars{Count: em.count.Load(), P50Ms: p50, P90Ms: p90, P99Ms: p99}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"inflight":   m.inflight.Load(),
		"endpoints":  eps,
		"goroutines": runtime.NumGoroutine(),
	})
}

// promWriter accumulates Prometheus text-format exposition. Families are
// emitted in one block each (HELP, TYPE, then samples) as the format
// requires; float formatting uses the shortest round-trip representation.
type promWriter struct {
	buf []byte
}

func (p *promWriter) family(name, help, typ string) {
	p.buf = append(p.buf, "# HELP "...)
	p.buf = append(p.buf, name...)
	p.buf = append(p.buf, ' ')
	p.buf = append(p.buf, help...)
	p.buf = append(p.buf, "\n# TYPE "...)
	p.buf = append(p.buf, name...)
	p.buf = append(p.buf, ' ')
	p.buf = append(p.buf, typ...)
	p.buf = append(p.buf, '\n')
}

// sample writes one line: name{labels} value. labels alternate key, value
// and are emitted in the given order; values are escaped per the format
// (backslash, double quote, newline).
func (p *promWriter) sample(name string, labels []string, value float64) {
	p.buf = append(p.buf, name...)
	if len(labels) > 0 {
		p.buf = append(p.buf, '{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				p.buf = append(p.buf, ',')
			}
			p.buf = append(p.buf, labels[i]...)
			p.buf = append(p.buf, '=', '"')
			for _, r := range labels[i+1] {
				switch r {
				case '\\':
					p.buf = append(p.buf, '\\', '\\')
				case '"':
					p.buf = append(p.buf, '\\', '"')
				case '\n':
					p.buf = append(p.buf, '\\', 'n')
				default:
					p.buf = append(p.buf, string(r)...)
				}
			}
			p.buf = append(p.buf, '"')
		}
		p.buf = append(p.buf, '}')
	}
	p.buf = append(p.buf, ' ')
	if value == float64(int64(value)) {
		p.buf = strconv.AppendInt(p.buf, int64(value), 10)
	} else {
		p.buf = strconv.AppendFloat(p.buf, value, 'g', -1, 64)
	}
	p.buf = append(p.buf, '\n')
}

// serveMetrics renders the Prometheus text-format exposition at /metrics:
// the per-endpoint request counters and latency histograms, the in-flight
// and shed gauges, and the per-index serving, mutation and cache series.
// Every exported series is documented in OPERATIONS.md.
func (s *Server) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	s.met.mu.Lock()
	names := make([]string, 0, len(s.met.endpoints))
	for name := range s.met.endpoints {
		names = append(names, name)
	}
	s.met.mu.Unlock()
	sort.Strings(names)

	p := &promWriter{}

	p.family("gkserved_requests_total", "Requests served, by endpoint and HTTP status code.", "counter")
	for _, name := range names {
		codes, _, _, _ := s.met.endpoint(name).histSnapshot()
		cs := make([]int, 0, len(codes))
		for c := range codes {
			cs = append(cs, c)
		}
		sort.Ints(cs)
		for _, c := range cs {
			p.sample("gkserved_requests_total",
				[]string{"endpoint", name, "code", strconv.Itoa(c)}, float64(codes[c]))
		}
	}

	p.family("gkserved_request_duration_seconds", "Request latency, by endpoint.", "histogram")
	for _, name := range names {
		_, cum, total, sum := s.met.endpoint(name).histSnapshot()
		for i, ub := range durationBuckets {
			p.sample("gkserved_request_duration_seconds_bucket",
				[]string{"endpoint", name, "le", strconv.FormatFloat(ub, 'g', -1, 64)}, float64(cum[i]))
		}
		p.sample("gkserved_request_duration_seconds_bucket",
			[]string{"endpoint", name, "le", "+Inf"}, float64(total))
		p.sample("gkserved_request_duration_seconds_sum", []string{"endpoint", name}, sum)
		p.sample("gkserved_request_duration_seconds_count", []string{"endpoint", name}, float64(total))
	}

	p.family("gkserved_inflight_requests", "Requests currently being served.", "gauge")
	p.sample("gkserved_inflight_requests", nil, float64(s.met.inflight.Load()))

	p.family("gkserved_shed_total", "Requests rejected with 429 by the concurrency limiter.", "counter")
	p.sample("gkserved_shed_total", nil, float64(s.limiter.shed.Load()))

	p.family("gkserved_deadline_exceeded_total", "Searches that returned 504 after their deadline expired.", "counter")
	p.sample("gkserved_deadline_exceeded_total", nil, float64(s.deadlineExceeded.Load()))

	entries := s.reg.list()
	indexGauge := func(name, help string, val func(*entry) float64) {
		p.family(name, help, "gauge")
		for _, e := range entries {
			p.sample(name, []string{"index", e.name}, val(e))
		}
	}
	indexCounter := func(name, help string, val func(*entry) float64) {
		p.family(name, help, "counter")
		for _, e := range entries {
			p.sample(name, []string{"index", e.name}, val(e))
		}
	}

	indexGauge("gkserved_index_epoch", "Epoch of the served index snapshot (bumps on every published mutation).",
		func(e *entry) float64 { return float64(e.epoch()) })
	indexGauge("gkserved_index_live_rows", "Searchable (non-tombstoned) rows.",
		func(e *entry) float64 { return float64(e.index().Live()) })
	indexGauge("gkserved_index_deleted_rows", "Tombstoned rows awaiting compaction.",
		func(e *entry) float64 { return float64(e.index().Deleted()) })
	indexGauge("gkserved_index_pending_rows", "Inserted rows buffered ahead of their shard build.",
		func(e *entry) float64 { return float64(e.pending.Load()) })
	indexCounter("gkserved_queries_total", "Queries answered (single and batch rows).",
		func(e *entry) float64 {
			q, _, _ := e.coal.Stats()
			return float64(q + e.batchQueries.Load())
		})
	indexCounter("gkserved_coalesced_batches_total", "SearchBatch executions on the micro-batching path.",
		func(e *entry) float64 {
			_, b, _ := e.coal.Stats()
			return float64(b)
		})
	indexCounter("gkserved_distance_comps_total", "Distance-kernel evaluations across all searches.",
		func(e *entry) float64 { return float64(e.index().SearchStats().DistanceComps) })
	indexCounter("gkserved_inserts_total", "Vectors accepted by /insert.",
		func(e *entry) float64 { return float64(e.inserts.Load()) })
	indexCounter("gkserved_deletes_total", "Ids accepted by /delete.",
		func(e *entry) float64 { return float64(e.deletes.Load()) })
	indexCounter("gkserved_flushes_total", "Memtable flushes (incremental shard builds).",
		func(e *entry) float64 { return float64(e.flushes.Load()) })
	indexCounter("gkserved_compactions_total", "Compaction rounds applied.",
		func(e *entry) float64 { return float64(e.compactions.Load()) })

	p.family("gkserved_cache_hits_total", "Query-cache hits.", "counter")
	for _, e := range entries {
		h, _, _ := e.cache.counters()
		p.sample("gkserved_cache_hits_total", []string{"index", e.name}, float64(h))
	}
	p.family("gkserved_cache_misses_total", "Query-cache misses (including epoch invalidations).", "counter")
	for _, e := range entries {
		_, ms, _ := e.cache.counters()
		p.sample("gkserved_cache_misses_total", []string{"index", e.name}, float64(ms))
	}
	p.family("gkserved_cache_evictions_total", "Query-cache LRU evictions.", "counter")
	for _, e := range entries {
		_, _, ev := e.cache.counters()
		p.sample("gkserved_cache_evictions_total", []string{"index", e.name}, float64(ev))
	}
	p.family("gkserved_cache_entries", "Query-cache resident entries.", "gauge")
	for _, e := range entries {
		p.sample("gkserved_cache_entries", []string{"index", e.name}, float64(e.cache.len()))
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(p.buf)
}
