package server

import (
	"container/list"
	"math"
	"sync"
	"sync/atomic"

	"gkmeans"
)

// queryCache is a sharded LRU of search results for one served index,
// keyed by (query bytes, topK, ef, nprobe) and pinned to the index epoch
// the results were computed at.
//
// Correctness contract (ARCHITECTURE.md invariant 8): a cache hit is
// bit-identical to the cold search it replaces, and a hit can never cross
// an epoch. Both follow from two rules:
//
//   - an entry is only stored when the epoch observed before the search
//     equals the epoch observed after it (no mutation was published while
//     the search ran), and it is tagged with that epoch;
//   - a lookup only hits when the entry's epoch equals the index's current
//     epoch. Epochs strictly increase (store.Versioned.Swap), so equality
//     proves the entry was computed against exactly the index snapshot now
//     serving, and the searches it short-circuits are deterministic
//     (worker-count independent), so the stored neighbours are the bytes a
//     cold search would produce.
//
// Invalidation is therefore lazy: a mutation does not walk the cache, it
// just bumps the epoch, and stale entries die on their next lookup (or age
// out of the LRU). Hash collisions cannot serve wrong results: the stored
// key — including the full query vector — is compared before a hit is
// declared.
//
// The cache is sharded by key hash: cacheShardCount independently locked
// LRUs, so concurrent lookups contend only within a shard. Capacity is
// split evenly across shards, which makes eviction deterministic for a
// sequential request trace (each shard is strict LRU) — the property the
// determinism tests pin across worker counts.
type queryCache struct {
	shards []cacheShard

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// cacheShardCount spreads lock contention; a power of two so the hash can
// be masked. 16 shards keep the per-shard mutex uncontended at the
// concurrency levels one process serves.
const cacheShardCount = 16

type cacheShard struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List               // front = most recently used
	table map[uint64]*list.Element // key hash → element; collisions overwrite
}

type cacheEntry struct {
	hash   uint64
	query  []float32 // full key: compared on lookup, so collisions miss
	topK   int
	ef     int
	nprobe int
	epoch  uint64
	res    []gkmeans.Neighbor
}

// newQueryCache builds a cache holding at most capacity entries in total;
// capacity <= 0 returns nil (callers treat a nil cache as disabled).
func newQueryCache(capacity int) *queryCache {
	if capacity <= 0 {
		return nil
	}
	perShard := (capacity + cacheShardCount - 1) / cacheShardCount
	c := &queryCache{shards: make([]cacheShard, cacheShardCount)}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			cap:   perShard,
			ll:    list.New(),
			table: make(map[uint64]*list.Element, perShard),
		}
	}
	return c
}

// hashKey is FNV-1a over the query's float bits and the search parameters.
// Float32 NaN payloads and signed zeros hash by representation, matching
// the bit-identity contract: two queries are "the same" exactly when their
// bytes are.
func hashKey(q []float32, topK, ef, nprobe int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64, bytes int) {
		for s := 0; s < bytes*8; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	for _, f := range q {
		mix(uint64(math.Float32bits(f)), 4)
	}
	mix(uint64(topK), 8)
	mix(uint64(ef), 8)
	mix(uint64(nprobe), 8)
	return h
}

func (e *cacheEntry) matches(q []float32, topK, ef, nprobe int) bool {
	if e.topK != topK || e.ef != ef || e.nprobe != nprobe || len(e.query) != len(q) {
		return false
	}
	for i, f := range q {
		if math.Float32bits(e.query[i]) != math.Float32bits(f) {
			return false
		}
	}
	return true
}

// get returns the cached results for the key at exactly epoch. A stale
// entry (older epoch) is removed on sight so the table does not fill with
// dead weight between mutations.
func (c *queryCache) get(q []float32, topK, ef, nprobe int, epoch uint64) ([]gkmeans.Neighbor, bool) {
	if c == nil {
		return nil, false
	}
	h := hashKey(q, topK, ef, nprobe)
	sh := &c.shards[h&(cacheShardCount-1)]
	sh.mu.Lock()
	el, ok := sh.table[h]
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.epoch != epoch || !ent.matches(q, topK, ef, nprobe) {
		if ent.epoch != epoch {
			// Stale: the index moved on. Epochs never repeat, so this entry
			// can never hit again — drop it now.
			sh.ll.Remove(el)
			delete(sh.table, h)
		}
		sh.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	sh.ll.MoveToFront(el)
	sh.mu.Unlock()
	c.hits.Add(1)
	return ent.res, true
}

// put stores results computed at epoch. The query is copied (the request
// buffer is reused by the HTTP layer); the result slice is stored as-is
// and must never be mutated by readers — the handlers only encode it.
func (c *queryCache) put(q []float32, topK, ef, nprobe int, epoch uint64, res []gkmeans.Neighbor) {
	if c == nil {
		return
	}
	h := hashKey(q, topK, ef, nprobe)
	sh := &c.shards[h&(cacheShardCount-1)]
	ent := &cacheEntry{
		hash:  h,
		query: append([]float32(nil), q...),
		topK:  topK, ef: ef, nprobe: nprobe,
		epoch: epoch,
		res:   res,
	}
	sh.mu.Lock()
	if el, ok := sh.table[h]; ok {
		// Same hash: either a refresh of this key at a newer epoch or a
		// collision — both just replace the old entry.
		el.Value = ent
		sh.ll.MoveToFront(el)
		sh.mu.Unlock()
		return
	}
	sh.table[h] = sh.ll.PushFront(ent)
	evicted := 0
	for sh.ll.Len() > sh.cap {
		last := sh.ll.Back()
		sh.ll.Remove(last)
		delete(sh.table, last.Value.(*cacheEntry).hash)
		evicted++
	}
	sh.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(int64(evicted))
	}
}

// len reports the current entry count across shards (an O(shards) walk,
// used by stats and metrics, not the hot path).
func (c *queryCache) len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.ll.Len()
		sh.mu.Unlock()
	}
	return n
}

// counters snapshots hits/misses/evictions (zeros for a disabled cache).
func (c *queryCache) counters() (hits, misses, evictions int64) {
	if c == nil {
		return 0, 0, 0
	}
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}
