package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gkmeans"
	"gkmeans/client"
	"gkmeans/internal/dataset"
)

func insertBody(t *testing.T, vectors [][]float32) string {
	t.Helper()
	b, err := json.Marshal(client.InsertRequest{Vectors: vectors})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func deleteBody(t *testing.T, ids []int32) string {
	t.Helper()
	b, err := json.Marshal(client.DeleteRequest{IDs: ids})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// mustInsert inserts vectors over HTTP and returns the decoded response.
func mustInsert(t *testing.T, s *Server, name string, vectors [][]float32) client.InsertResponse {
	t.Helper()
	var out client.InsertResponse
	w := call(t, s, "POST", "/v1/indexes/"+name+"/insert", insertBody(t, vectors), &out)
	if w.Code != http.StatusOK {
		t.Fatalf("insert: status %d: %s", w.Code, w.Body.String())
	}
	return out
}

func mustDelete(t *testing.T, s *Server, name string, ids ...int32) client.DeleteResponse {
	t.Helper()
	var out client.DeleteResponse
	w := call(t, s, "POST", "/v1/indexes/"+name+"/delete", deleteBody(t, ids), &out)
	if w.Code != http.StatusOK {
		t.Fatalf("delete %v: status %d: %s", ids, w.Code, w.Body.String())
	}
	return out
}

func mustSearch(t *testing.T, s *Server, name string, q []float32, topK, ef int) []client.Neighbor {
	t.Helper()
	var out client.SearchResponse
	w := call(t, s, "POST", "/v1/indexes/"+name+"/search", searchBody(q, topK, ef), &out)
	if w.Code != http.StatusOK {
		t.Fatalf("search: status %d: %s", w.Code, w.Body.String())
	}
	if len(out.Results) != 1 {
		t.Fatalf("search returned %d result lists", len(out.Results))
	}
	return out.Results[0]
}

// insertedRow builds a deterministic, easily recognisable vector far from
// the SIFT-like data distribution, so a self-lookup at distance zero can
// only hit the inserted row itself.
func insertedRow(dim, i int) []float32 {
	row := make([]float32, dim)
	for d := range row {
		row[d] = float32(1000+17*i) + float32(d)
	}
	return row
}

// durableScenario drives a full mutate→crash→restart cycle against a
// server whose index was built with the given worker count, and returns
// the search results the restarted server produces for a fixed query set.
//
// The crash is simulated the hard way: the first server is simply
// abandoned — no shutdown, no WAL close, no flush of buffered rows — and a
// fresh server is pointed at the same data directory, exactly as a process
// restart after SIGKILL would be.
func durableScenario(t *testing.T, workers int) [][]client.Neighbor {
	t.Helper()
	const name = "mut"
	all := dataset.SIFTLike(240, 6)
	data, queries := dataset.Split(all, 20)
	idx, err := gkmeans.Build(context.Background(), data,
		gkmeans.WithKappa(8), gkmeans.WithXi(20), gkmeans.WithTau(3),
		gkmeans.WithSeed(5), gkmeans.WithWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	orig := filepath.Join(dir, "orig.gkx")
	if err := gkmeans.SaveIndex(orig, idx); err != nil {
		t.Fatal(err)
	}
	bound := int32(idx.N())
	cfg := Config{Window: -1, DataDir: filepath.Join(dir, "state"), MemtableThreshold: 4}

	s1 := New(cfg)
	if err := s1.RegisterFile(name, orig); err != nil {
		t.Fatal(err)
	}
	rows := make([][]float32, 6)
	for i := range rows {
		rows[i] = insertedRow(idx.Dim(), i)
	}
	// First insert fills the memtable exactly: flushed into a shard.
	r1 := mustInsert(t, s1, name, rows[:4])
	if r1.FirstID != bound || r1.Count != 4 || !r1.Flushed || r1.Pending != 0 {
		t.Fatalf("first insert: %+v", r1)
	}
	// Second insert stays buffered: durable in the WAL, not yet searchable.
	r2 := mustInsert(t, s1, name, rows[4:])
	if r2.FirstID != bound+4 || r2.Flushed || r2.Pending != 2 {
		t.Fatalf("second insert: %+v", r2)
	}
	// Delete two original rows, one flushed inserted row, and one row that
	// is still buffered (its tombstone must survive the crash too).
	doomed := []int32{3, 17, bound + 1, bound + 4}
	if dr := mustDelete(t, s1, name, doomed...); dr.Deleted != 4 {
		t.Fatalf("delete: %+v", dr)
	}

	// -- crash: s1 is abandoned with 2 rows buffered and 4 tombstones. --

	s2 := New(cfg)
	if err := s2.RegisterFile(name, orig); err != nil {
		t.Fatal(err)
	}
	var info client.IndexInfo
	for _, ix := range listIndexes(t, s2) {
		if ix.Name == name {
			info = ix
		}
	}
	// Replay restored the flushed shard (4 rows appended to the index), the
	// 2 buffered rows, and all tombstones aimed at built rows.
	if info.N != idx.N()+4 || info.Pending != 2 {
		t.Fatalf("after restart: N=%d (want %d) pending=%d (want 2)", info.N, idx.N()+4, info.Pending)
	}
	if info.Deleted != 3 { // 3, 17, bound+1; bound+4 is still buffered
		t.Fatalf("after restart: deleted=%d, want 3", info.Deleted)
	}

	// Two more rows trigger the flush of the buffered pair; the tombstone
	// on bound+4 must be applied in the same step.
	r3 := mustInsert(t, s2, name, [][]float32{insertedRow(idx.Dim(), 6), insertedRow(idx.Dim(), 7)})
	if r3.FirstID != bound+6 || !r3.Flushed {
		t.Fatalf("post-restart insert: %+v", r3)
	}

	ef := idx.N() + 8 // exhaustive: the checks below must not hinge on recall
	// Every surviving inserted row is found by self-lookup at distance 0.
	for _, i := range []int{0, 2, 3, 5, 6, 7} {
		id := bound + int32(i)
		res := mustSearch(t, s2, name, insertedRow(idx.Dim(), i), 1, ef)
		if len(res) != 1 || res[0].ID != id || res[0].Dist != 0 {
			t.Fatalf("self-lookup of inserted row %d: %+v", i, res)
		}
	}
	// Deleted rows never appear — not even searching their own vector.
	for _, i := range []int{1, 4} {
		for _, nb := range mustSearch(t, s2, name, insertedRow(idx.Dim(), i), 10, ef) {
			if nb.ID == bound+int32(i) {
				t.Fatalf("deleted inserted row %d resurfaced", i)
			}
		}
	}
	results := make([][]client.Neighbor, queries.N)
	for qi := 0; qi < queries.N; qi++ {
		results[qi] = mustSearch(t, s2, name, queries.Row(qi), 10, ef)
		for _, nb := range results[qi] {
			for _, d := range doomed {
				if nb.ID == d {
					t.Fatalf("query %d returned deleted id %d", qi, d)
				}
			}
		}
	}
	return results
}

func listIndexes(t *testing.T, s *Server) []client.IndexInfo {
	t.Helper()
	var out client.ListResponse
	if w := call(t, s, "GET", "/v1/indexes", "", &out); w.Code != http.StatusOK {
		t.Fatalf("list: status %d", w.Code)
	}
	return out.Indexes
}

// Acknowledged mutations survive a kill -9: the WAL restores them on the
// next start, and the restored index answers searches identically no
// matter how many workers rebuilt it.
func TestServerDurableRestartReplaysWAL(t *testing.T) {
	res1 := durableScenario(t, 1)
	res2 := durableScenario(t, 2)
	if len(res1) != len(res2) {
		t.Fatalf("scenario result counts differ: %d vs %d", len(res1), len(res2))
	}
	for qi := range res1 {
		if len(res1[qi]) != len(res2[qi]) {
			t.Fatalf("query %d: %d vs %d results across worker counts", qi, len(res1[qi]), len(res2[qi]))
		}
		for j := range res1[qi] {
			if res1[qi][j] != res2[qi][j] {
				t.Fatalf("query %d result %d differs across worker counts: %+v vs %+v",
					qi, j, res1[qi][j], res2[qi][j])
			}
		}
	}
}

// Compaction must be invisible to search: same results bit for bit, fewer
// shards, tombstones gone — and after a checkpoint, a restart replays only
// what the checkpoint does not already cover.
func TestServerCompactionPreservesSearchResults(t *testing.T) {
	const name = "cpt"
	idx, queries := sharedIndex(t)
	dir := t.TempDir()
	orig := filepath.Join(dir, "orig.gkx")
	if err := gkmeans.SaveIndex(orig, idx); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Window: -1, DataDir: filepath.Join(dir, "state"), MemtableThreshold: 4}
	s := New(cfg)
	if err := s.RegisterFile(name, orig); err != nil {
		t.Fatal(err)
	}

	// Grow two small shards, then tombstone >25% of the original shard so
	// the default policy selects it.
	for i := 0; i < 2; i++ {
		rows := make([][]float32, 4)
		for j := range rows {
			rows[j] = insertedRow(idx.Dim(), 4*i+j)
		}
		if r := mustInsert(t, s, name, rows); !r.Flushed {
			t.Fatalf("insert %d did not flush: %+v", i, r)
		}
	}
	doomed := make([]int32, idx.N()/4+1)
	for i := range doomed {
		doomed[i] = int32(i)
	}
	mustDelete(t, s, name, doomed...)

	ef := idx.N() + 16
	before := make([][]client.Neighbor, queries.N)
	for qi := range before {
		before[qi] = mustSearch(t, s, name, queries.Row(qi), 10, ef)
	}

	ran, err := s.CompactNow(name)
	if err != nil || !ran {
		t.Fatalf("CompactNow: ran=%v err=%v", ran, err)
	}
	var st client.IndexStats
	if w := call(t, s, "GET", "/v1/indexes/"+name+"/stats", "", &st); w.Code != http.StatusOK {
		t.Fatalf("stats: %d", w.Code)
	}
	if st.Compactions != 1 || st.Deleted != 0 || !st.Durable {
		t.Fatalf("post-compaction stats: compactions=%d deleted=%d durable=%v",
			st.Compactions, st.Deleted, st.Durable)
	}
	if st.N != idx.N()+8-len(doomed) {
		t.Fatalf("post-compaction N=%d, want %d", st.N, idx.N()+8-len(doomed))
	}
	for qi := range before {
		after := mustSearch(t, s, name, queries.Row(qi), 10, ef)
		if len(after) != len(before[qi]) {
			t.Fatalf("query %d: %d results after compaction, %d before", qi, len(after), len(before[qi]))
		}
		for j := range after {
			if after[j] != before[qi][j] {
				t.Fatalf("query %d result %d changed across compaction: %+v vs %+v",
					qi, j, before[qi][j], after[j])
			}
		}
	}

	// The checkpoint superseded the WAL: nothing was buffered, so the
	// rewritten log is empty, and a restarted server must prefer the
	// checkpoint over the (stale, pre-mutation) registered index.
	if _, err := os.Stat(filepath.Join(cfg.DataDir, name+".gkx")); err != nil {
		t.Fatalf("no checkpoint after compaction: %v", err)
	}
	s2 := New(cfg)
	if err := s2.RegisterIndex(name, idx); err != nil {
		t.Fatal(err)
	}
	for qi := range before {
		after := mustSearch(t, s2, name, queries.Row(qi), 10, ef)
		for j := range after {
			if after[j] != before[qi][j] {
				t.Fatalf("query %d result %d differs after checkpoint restart", qi, j)
			}
		}
	}
}

// Concurrent searches across insert/delete/compaction swaps: every request
// succeeds, and an id whose delete was acknowledged before the search
// began never appears in its results. Run with -race this doubles as the
// hot-swap data-race check.
func TestServerHotSwapUnderSearchLoad(t *testing.T) {
	const name = "swap"
	idx, queries := sharedIndex(t)
	s := New(Config{Window: time.Millisecond, MaxBatch: 8, MemtableThreshold: 2})
	if err := s.RegisterIndex(name, idx); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	acked := make(map[int32]bool) // deletes acknowledged so far
	snapshot := func() map[int32]bool {
		mu.Lock()
		defer mu.Unlock()
		out := make(map[int32]bool, len(acked))
		for id := range acked {
			out[id] = true
		}
		return out
	}

	stop := make(chan struct{})
	errs := make(chan error, 8)
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for qi := 0; ; qi++ {
				select {
				case <-stop:
					return
				default:
				}
				// No t.Fatal off the test goroutine: report via errs.
				dead := snapshot()
				req := httptest.NewRequest("POST", "/v1/indexes/"+name+"/search",
					strings.NewReader(searchBody(queries.Row((qi+r)%queries.N), 5, 128)))
				w := httptest.NewRecorder()
				s.Handler().ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					errs <- fmt.Errorf("reader %d: status %d: %s", r, w.Code, w.Body.String())
					return
				}
				var out client.SearchResponse
				if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil || len(out.Results) != 1 {
					errs <- fmt.Errorf("reader %d: bad search response: %v", r, err)
					return
				}
				for _, nb := range out.Results[0] {
					if dead[nb.ID] {
						errs <- fmt.Errorf("reader %d: deleted id %d in results", r, nb.ID)
						return
					}
				}
			}
		}(r)
	}

	for round := 0; round < 30; round++ {
		rows := [][]float32{insertedRow(idx.Dim(), 2*round), insertedRow(idx.Dim(), 2*round+1)}
		mustInsert(t, s, name, rows) // threshold 2: every insert flushes
		doomed := int32(round)
		mustDelete(t, s, name, doomed)
		mu.Lock()
		acked[doomed] = true
		mu.Unlock()
		if round%10 == 9 {
			if _, err := s.CompactNow(name); err != nil {
				t.Fatalf("CompactNow: %v", err)
			}
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

func TestServerMutationErrorPaths(t *testing.T) {
	s := newTestServer(t)
	idx, _ := sharedIndex(t)

	cases := []struct {
		name, path, body string
		wantCode         int
		wantErr          string
	}{
		{"insert no vectors", "/v1/indexes/sift/insert", `{"vectors":[]}`, 400, "at least one vector"},
		{"insert ragged row", "/v1/indexes/sift/insert", `{"vectors":[[1,2]]}`, 400, "dimensionality"},
		{"insert unknown index", "/v1/indexes/nope/insert", `{"vectors":[[1]]}`, 404, "unknown index"},
		{"insert bad json", "/v1/indexes/sift/insert", `{"vectors":`, 400, "malformed"},
		{"insert unknown field", "/v1/indexes/sift/insert", `{"rows":[[1]]}`, 400, "malformed"},
		{"delete no ids", "/v1/indexes/sift/delete", `{"ids":[]}`, 400, "at least one id"},
		{"delete unknown id", "/v1/indexes/sift/delete", `{"ids":[999999]}`, 400, "unknown id"},
		{"delete negative id", "/v1/indexes/sift/delete", `{"ids":[-4]}`, 400, "unknown id"},
		{"delete unknown index", "/v1/indexes/nope/delete", `{"ids":[1]}`, 404, "unknown index"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := call(t, s, "POST", tc.path, tc.body, nil)
			if w.Code != tc.wantCode {
				t.Fatalf("status %d, want %d (%s)", w.Code, tc.wantCode, w.Body.String())
			}
			if msg := errorOf(t, w); !strings.Contains(msg, tc.wantErr) {
				t.Fatalf("error %q does not mention %q", msg, tc.wantErr)
			}
		})
	}
	// A rejected mixed delete applies nothing: the known id must survive.
	w := call(t, s, "POST", "/v1/indexes/sift/delete", deleteBody(t, []int32{5, 999999}), nil)
	if w.Code != 400 {
		t.Fatalf("mixed delete: status %d", w.Code)
	}
	res := mustSearch(t, s, "sift", idx.Data().Row(5), 1, 128)
	if len(res) != 1 || res[0].ID != 5 {
		t.Fatalf("id 5 was deleted by a rejected request: %+v", res)
	}
}

// A Build-time clustering blocks inserts (Index.Append could never apply
// them, so logging one would break the ack-means-durable-and-applicable
// contract), but the first delete drops the clustering and lifts the
// restriction — mirroring the root API.
func TestServerInsertOnClusteredIndex(t *testing.T) {
	data := dataset.SIFTLike(60, 3)
	idx, err := gkmeans.Build(context.Background(), data,
		gkmeans.WithKappa(4), gkmeans.WithXi(10), gkmeans.WithTau(2),
		gkmeans.WithSeed(5), gkmeans.WithClusters(3))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Window: -1})
	if err := s.RegisterIndex("clustered", idx); err != nil {
		t.Fatal(err)
	}

	body := insertBody(t, [][]float32{insertedRow(idx.Dim(), 0)})
	w := call(t, s, "POST", "/v1/indexes/clustered/insert", body, nil)
	if w.Code != 400 {
		t.Fatalf("insert on clustered index: status %d (%s)", w.Code, w.Body.String())
	}
	if msg := errorOf(t, w); !strings.Contains(msg, "clustering") {
		t.Fatalf("error %q does not mention the clustering", msg)
	}

	mustDelete(t, s, "clustered", 7)
	ins := mustInsert(t, s, "clustered", [][]float32{insertedRow(idx.Dim(), 0)})
	if ins.FirstID != int32(idx.N()) {
		t.Fatalf("post-delete insert assigned id %d, want %d", ins.FirstID, idx.N())
	}
}
