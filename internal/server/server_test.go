package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gkmeans"
	"gkmeans/client"
	"gkmeans/internal/dataset"
)

// newTestServer serves the shared test index as "sift".
func newTestServer(t *testing.T) *Server {
	t.Helper()
	idx, _ := sharedIndex(t)
	s := New(Config{Window: time.Millisecond, MaxBatch: 8})
	if err := s.RegisterIndex("sift", idx); err != nil {
		t.Fatal(err)
	}
	return s
}

// call sends one request through the handler and decodes the JSON reply.
func call(t *testing.T, s *Server, method, path, body string, out any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if out != nil && w.Code < 300 {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, path, w.Body.String(), err)
		}
	}
	return w
}

// errorOf extracts the error envelope of a non-2xx reply.
func errorOf(t *testing.T, w *httptest.ResponseRecorder) string {
	t.Helper()
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Fatalf("status %d reply %q is not the error envelope", w.Code, w.Body.String())
	}
	return e.Error
}

func searchBody(q []float32, topK, ef int) string {
	b, _ := json.Marshal(client.SearchRequest{Query: q, TopK: topK, Ef: ef})
	return string(b)
}

func TestServerErrorPaths(t *testing.T) {
	s := newTestServer(t)
	idx, queries := sharedIndex(t)
	okQuery := queries.Row(0)

	cases := []struct {
		name          string
		method, path  string
		body          string
		wantCode      int
		wantErrSubstr string
	}{
		{"search unknown index", "POST", "/v1/indexes/nosuch/search",
			searchBody(okQuery, 5, 32), http.StatusNotFound, "unknown index"},
		{"stats unknown index", "GET", "/v1/indexes/nosuch/stats",
			"", http.StatusNotFound, "unknown index"},
		{"cluster unknown index", "POST", "/v1/indexes/nosuch/cluster",
			`{"k":4}`, http.StatusNotFound, "unknown index"},
		{"malformed search JSON", "POST", "/v1/indexes/sift/search",
			`{"query": [1,2`, http.StatusBadRequest, "malformed"},
		{"unknown search field", "POST", "/v1/indexes/sift/search",
			`{"quary": [1], "top_k": 5}`, http.StatusBadRequest, "malformed"},
		{"trailing garbage", "POST", "/v1/indexes/sift/search",
			`{"query":[1],"top_k":5}{}`, http.StatusBadRequest, "malformed"},
		{"neither query nor queries", "POST", "/v1/indexes/sift/search",
			`{"top_k": 5}`, http.StatusBadRequest, "exactly one"},
		{"both query and queries", "POST", "/v1/indexes/sift/search",
			`{"query":[1],"queries":[[1]],"top_k":5}`, http.StatusBadRequest, "exactly one"},
		{"non-positive top_k", "POST", "/v1/indexes/sift/search",
			searchBody(okQuery, 0, 32), http.StatusBadRequest, "top_k"},
		{"wrong dimensionality", "POST", "/v1/indexes/sift/search",
			searchBody([]float32{1, 2, 3}, 5, 32), http.StatusBadRequest, "dimensionality"},
		{"wrong dimensionality in batch", "POST", "/v1/indexes/sift/search",
			`{"queries":[[1,2,3]],"top_k":5}`, http.StatusBadRequest, "dimensionality"},
		{"malformed cluster JSON", "POST", "/v1/indexes/sift/cluster",
			`k=4`, http.StatusBadRequest, "malformed"},
		{"non-positive k", "POST", "/v1/indexes/sift/cluster",
			`{"k":0}`, http.StatusBadRequest, "k must be"},
		{"k beyond n", "POST", "/v1/indexes/sift/cluster",
			fmt.Sprintf(`{"k":%d}`, idx.N()+1), http.StatusBadRequest, "k must be"},
		{"malformed register JSON", "POST", "/v1/indexes",
			`{`, http.StatusBadRequest, "malformed"},
		{"register missing fields", "POST", "/v1/indexes",
			`{"name":"x"}`, http.StatusBadRequest, "name and path"},
		{"register unreadable path", "POST", "/v1/indexes",
			`{"name":"x","path":"/nonexistent/a.gkx"}`, http.StatusBadRequest, "loading index"},
		{"register duplicate name", "POST", "/v1/indexes",
			`{"name":"sift","path":"/tmp/x.gkx"}`, http.StatusConflict, "already registered"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := call(t, s, c.method, c.path, c.body, nil)
			if w.Code != c.wantCode {
				t.Fatalf("status %d (%s), want %d", w.Code, w.Body.String(), c.wantCode)
			}
			if msg := errorOf(t, w); !strings.Contains(msg, c.wantErrSubstr) {
				t.Fatalf("error %q does not mention %q", msg, c.wantErrSubstr)
			}
		})
	}
}

func TestServerSearchSingleAndBatch(t *testing.T) {
	s := newTestServer(t)
	idx, queries := sharedIndex(t)

	q := queries.Row(3)
	var single client.SearchResponse
	if w := call(t, s, "POST", "/v1/indexes/sift/search", searchBody(q, 10, 64), &single); w.Code != 200 {
		t.Fatalf("single search: %d %s", w.Code, w.Body.String())
	}
	if len(single.Results) != 1 {
		t.Fatalf("single search returned %d lists", len(single.Results))
	}
	want := idx.Search(q, 10, 64)
	if len(single.Results[0]) != len(want) {
		t.Fatalf("got %d neighbours, want %d", len(single.Results[0]), len(want))
	}
	for i, nb := range single.Results[0] {
		if nb.ID != want[i].ID || nb.Dist != want[i].Dist {
			t.Fatalf("result %d = %+v, want %+v", i, nb, want[i])
		}
	}

	rows := make([][]float32, 5)
	for i := range rows {
		rows[i] = queries.Row(i)
	}
	body, _ := json.Marshal(client.SearchRequest{Queries: rows, TopK: 5, Ef: 40})
	var batch client.SearchResponse
	if w := call(t, s, "POST", "/v1/indexes/sift/search", string(body), &batch); w.Code != 200 {
		t.Fatalf("batch search: %d %s", w.Code, w.Body.String())
	}
	if len(batch.Results) != 5 {
		t.Fatalf("batch returned %d lists, want 5", len(batch.Results))
	}
	for qi, res := range batch.Results {
		want := idx.Search(rows[qi], 5, 40)
		for i, nb := range res {
			if nb.ID != want[i].ID || nb.Dist != want[i].Dist {
				t.Fatalf("batch query %d result %d = %+v, want %+v", qi, i, nb, want[i])
			}
		}
	}

	// An empty batch is a 200 with zero lists, not an error.
	var empty client.SearchResponse
	if w := call(t, s, "POST", "/v1/indexes/sift/search", `{"queries":[],"top_k":5}`, &empty); w.Code != 200 {
		t.Fatalf("empty batch: %d %s", w.Code, w.Body.String())
	}
	if len(empty.Results) != 0 {
		t.Fatalf("empty batch returned %d lists", len(empty.Results))
	}
}

func TestServerListAndStats(t *testing.T) {
	s := newTestServer(t)
	idx, queries := sharedIndex(t)

	var list client.ListResponse
	call(t, s, "GET", "/v1/indexes", "", &list)
	if len(list.Indexes) != 1 || list.Indexes[0].Name != "sift" ||
		list.Indexes[0].N != idx.N() || list.Indexes[0].Dim != idx.Dim() {
		t.Fatalf("list = %+v", list)
	}

	call(t, s, "POST", "/v1/indexes/sift/search", searchBody(queries.Row(0), 5, 32), nil)
	var stats client.IndexStats
	if w := call(t, s, "GET", "/v1/indexes/sift/stats", "", &stats); w.Code != 200 {
		t.Fatalf("stats: %d %s", w.Code, w.Body.String())
	}
	if stats.Name != "sift" || stats.Queries < 1 || stats.Batches < 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.CoalesceWindowNS != int64(time.Millisecond) {
		t.Fatalf("stats window %d, want %d", stats.CoalesceWindowNS, time.Millisecond)
	}
	// The index's hot-path totals flow through: at least one search ran, so
	// work counters are live and expansions never exceed distance evals.
	if stats.DistanceComps == 0 || stats.ExpandedCandidates == 0 {
		t.Fatalf("hot-path counters missing from stats: %+v", stats)
	}
	if stats.ExpandedCandidates > stats.DistanceComps {
		t.Fatalf("expanded %d > distance comps %d", stats.ExpandedCandidates, stats.DistanceComps)
	}
}

func TestServerClusterEndpoint(t *testing.T) {
	s := newTestServer(t)
	idx, _ := sharedIndex(t)

	var res client.ClusterResponse
	body := `{"k":8,"seed":5,"with_labels":true,"with_centroids":true}`
	if w := call(t, s, "POST", "/v1/indexes/sift/cluster", body, &res); w.Code != 200 {
		t.Fatalf("cluster: %d %s", w.Code, w.Body.String())
	}
	if res.K != 8 || res.Iters <= 0 || res.Distortion <= 0 {
		t.Fatalf("cluster response %+v", res)
	}
	if len(res.Labels) != idx.N() {
		t.Fatalf("%d labels for %d samples", len(res.Labels), idx.N())
	}
	if len(res.Centroids) != 8 || len(res.Centroids[0]) != idx.Dim() {
		t.Fatalf("centroid shape %d×%d", len(res.Centroids), len(res.Centroids[0]))
	}

	// Labels and centroids stay off the wire unless asked for.
	var lean client.ClusterResponse
	call(t, s, "POST", "/v1/indexes/sift/cluster", `{"k":8,"seed":5}`, &lean)
	if lean.Labels != nil || lean.Centroids != nil {
		t.Fatal("labels/centroids returned without opt-in")
	}
}

func TestServerHotRegistration(t *testing.T) {
	idx, queries := sharedIndex(t)
	path := filepath.Join(t.TempDir(), "hot.gkx")
	if err := gkmeans.SaveIndex(path, idx); err != nil {
		t.Fatal(err)
	}

	s := New(Config{})
	var info client.IndexInfo
	body, _ := json.Marshal(client.RegisterRequest{Name: "hot", Path: path})
	if w := call(t, s, "POST", "/v1/indexes", string(body), &info); w.Code != 200 {
		t.Fatalf("register: %d %s", w.Code, w.Body.String())
	}
	if info.Name != "hot" || info.N != idx.N() || info.Dim != idx.Dim() {
		t.Fatalf("register info %+v", info)
	}

	// The freshly loaded index serves identically to the in-process one.
	q := queries.Row(1)
	var res client.SearchResponse
	if w := call(t, s, "POST", "/v1/indexes/hot/search", searchBody(q, 5, 32), &res); w.Code != 200 {
		t.Fatalf("search on hot index: %d %s", w.Code, w.Body.String())
	}
	want := idx.Search(q, 5, 32)
	for i, nb := range res.Results[0] {
		if nb.ID != want[i].ID || nb.Dist != want[i].Dist {
			t.Fatalf("hot result %d = %+v, want %+v", i, nb, want[i])
		}
	}

	// Invalid names never enter the registry.
	if w := call(t, s, "POST", "/v1/indexes", `{"name":"../evil","path":"x.gkx"}`, nil); w.Code != http.StatusBadRequest {
		t.Fatalf("invalid name accepted: %d", w.Code)
	}
}

func TestServerShutdownDrains(t *testing.T) {
	s := newTestServer(t)
	_, queries := sharedIndex(t)

	if w := call(t, s, "GET", "/healthz", "", nil); w.Code != 200 {
		t.Fatalf("healthz before shutdown: %d", w.Code)
	}
	s.BeginShutdown()
	s.BeginShutdown() // idempotent

	if w := call(t, s, "GET", "/healthz", "", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %d, want 503", w.Code)
	}
	for _, c := range []struct{ method, path, body string }{
		{"POST", "/v1/indexes/sift/search", searchBody(queries.Row(0), 5, 32)},
		{"POST", "/v1/indexes/sift/cluster", `{"k":4}`},
		{"POST", "/v1/indexes", `{"name":"x","path":"x.gkx"}`},
	} {
		if w := call(t, s, c.method, c.path, c.body, nil); w.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s %s during drain: %d, want 503", c.method, c.path, w.Code)
		}
	}

	// Read-only endpoints keep answering so operators can inspect a
	// draining server.
	if w := call(t, s, "GET", "/v1/indexes", "", nil); w.Code != 200 {
		t.Fatalf("list during drain: %d", w.Code)
	}
	if w := call(t, s, "GET", "/debug/vars", "", nil); w.Code != 200 {
		t.Fatalf("debug vars during drain: %d", w.Code)
	}
}

func TestServerConcurrentSearchNoDrops(t *testing.T) {
	s := newTestServer(t)
	idx, queries := sharedIndex(t)

	const goroutines = 32
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				q := queries.Row((g*4 + i) % queries.N)
				w := call(t, s, "POST", "/v1/indexes/sift/search", searchBody(q, 10, 64), nil)
				if w.Code != 200 {
					errs <- fmt.Errorf("g%d i%d: status %d", g, i, w.Code)
					return
				}
				var res client.SearchResponse
				if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
					errs <- err
					return
				}
				want := idx.Search(q, 10, 64)
				for j, nb := range res.Results[0] {
					if nb.ID != want[j].ID || nb.Dist != want[j].Dist {
						errs <- fmt.Errorf("g%d i%d: result %d differs from in-process search", g, i, j)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var stats client.IndexStats
	call(t, s, "GET", "/v1/indexes/sift/stats", "", &stats)
	if stats.Queries != goroutines*4 {
		t.Fatalf("served %d queries, want %d (dropped requests)", stats.Queries, goroutines*4)
	}
	if stats.Batches >= stats.Queries {
		t.Fatalf("%d batches for %d queries: coalescer never batched", stats.Batches, stats.Queries)
	}
}

func TestServerMetricsEndpoint(t *testing.T) {
	s := newTestServer(t)
	_, queries := sharedIndex(t)
	for i := 0; i < 3; i++ {
		call(t, s, "POST", "/v1/indexes/sift/search", searchBody(queries.Row(i), 5, 32), nil)
	}
	call(t, s, "GET", "/healthz", "", nil)

	var vars struct {
		Inflight  int64                   `json:"inflight"`
		Endpoints map[string]endpointVars `json:"endpoints"`
	}
	if w := call(t, s, "GET", "/debug/vars", "", &vars); w.Code != 200 {
		t.Fatalf("debug vars: %d", w.Code)
	}
	search, ok := vars.Endpoints["search"]
	if !ok || search.Count != 3 {
		t.Fatalf("search endpoint vars %+v (present %v)", search, ok)
	}
	if search.P50Ms <= 0 || search.P99Ms < search.P50Ms {
		t.Fatalf("implausible quantiles %+v", search)
	}
	if vars.Endpoints["healthz"].Count != 1 {
		t.Fatalf("healthz count %d, want 1", vars.Endpoints["healthz"].Count)
	}
	// The scrape itself is in flight while it runs.
	if vars.Inflight < 1 {
		t.Fatalf("inflight gauge %d, want >= 1", vars.Inflight)
	}
}

func TestServerSearchContextCancelled(t *testing.T) {
	idx, queries := sharedIndex(t)
	// A giant window and no size trigger: the only way out is the request
	// context, which must map to 408.
	s := New(Config{Window: time.Hour, MaxBatch: 1 << 20})
	if err := s.RegisterIndex("sift", idx); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/v1/indexes/sift/search",
		bytes.NewReader([]byte(searchBody(queries.Row(0), 5, 32)))).WithContext(ctx)
	w := httptest.NewRecorder()
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusRequestTimeout {
		t.Fatalf("cancelled search: %d %s, want 408", w.Code, w.Body.String())
	}
	s.BeginShutdown() // release the hour-long batch for a clean test exit
}

// A sharded index must serve end-to-end exactly like a monolithic one —
// registered from a multi-segment .gkx file, searched over HTTP with
// results identical to in-process fan-out search, reported with its shard
// count — while clustering is refused as a client error.
func TestServerServesShardedIndex(t *testing.T) {
	all := dataset.SIFTLike(400, 19)
	data, queries := dataset.Split(all, 20)
	idx, err := gkmeans.Build(context.Background(), data,
		gkmeans.WithShards(3), gkmeans.WithKappa(8), gkmeans.WithTau(3), gkmeans.WithSeed(19))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sharded.gkx")
	if err := gkmeans.SaveIndex(path, idx); err != nil {
		t.Fatal(err)
	}

	s := New(Config{Window: time.Millisecond, MaxBatch: 8})
	if err := s.RegisterFile("sharded", path); err != nil {
		t.Fatal(err)
	}

	var list client.ListResponse
	if w := call(t, s, "GET", "/v1/indexes", "", &list); w.Code != http.StatusOK {
		t.Fatalf("list: %d %s", w.Code, w.Body.String())
	}
	if len(list.Indexes) != 1 || list.Indexes[0].Shards != 3 || list.Indexes[0].HasClusters {
		t.Fatalf("list = %+v, want one index with 3 shards", list.Indexes)
	}

	// Single-query (through the coalescer) and batch search must both match
	// the in-process fan-out results bit for bit.
	for qi := 0; qi < 5; qi++ {
		want := idx.Search(queries.Row(qi), 5, 64)
		var out client.SearchResponse
		if w := call(t, s, "POST", "/v1/indexes/sharded/search",
			searchBody(queries.Row(qi), 5, 64), &out); w.Code != http.StatusOK {
			t.Fatalf("search %d: %d %s", qi, w.Code, w.Body.String())
		}
		if len(out.Results) != 1 || len(out.Results[0]) != len(want) {
			t.Fatalf("search %d returned %d lists", qi, len(out.Results))
		}
		for i, nb := range out.Results[0] {
			if nb.ID != want[i].ID || nb.Dist != want[i].Dist {
				t.Fatalf("search %d result %d = %+v, want %+v", qi, i, nb, want[i])
			}
		}
	}
	batchReq, _ := json.Marshal(client.SearchRequest{
		Queries: [][]float32{queries.Row(0), queries.Row(1)}, TopK: 3, Ef: 32})
	var batchOut client.SearchResponse
	if w := call(t, s, "POST", "/v1/indexes/sharded/search", string(batchReq), &batchOut); w.Code != http.StatusOK {
		t.Fatalf("batch search: %d %s", w.Code, w.Body.String())
	}
	if len(batchOut.Results) != 2 {
		t.Fatalf("batch search returned %d lists, want 2", len(batchOut.Results))
	}

	// Clustering a sharded index is a client error, not a server failure.
	w := call(t, s, "POST", "/v1/indexes/sharded/cluster", `{"k":3}`, nil)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("cluster on sharded index: %d, want 400", w.Code)
	}
	if msg := errorOf(t, w); !strings.Contains(msg, "sharded") {
		t.Fatalf("cluster error %q does not mention sharding", msg)
	}

	// Stats aggregate the per-shard hot-path counters.
	var stats client.IndexStats
	if w := call(t, s, "GET", "/v1/indexes/sharded/stats", "", &stats); w.Code != http.StatusOK {
		t.Fatalf("stats: %d %s", w.Code, w.Body.String())
	}
	if stats.Shards != 3 || stats.DistanceComps == 0 {
		t.Fatalf("stats = %+v, want 3 shards and non-zero distance comps", stats)
	}
}

// TestServerServesRoutedIndex covers the nprobe wire surface: a routed
// index accepts per-query probe caps (full fan-out staying bit-identical),
// surfaces the routing counters in /stats, and the validation paths reject
// bad nprobe values with 400s.
func TestServerServesRoutedIndex(t *testing.T) {
	all := dataset.SIFTLike(400, 23)
	data, queries := dataset.Split(all, 20)
	idx, err := gkmeans.Build(context.Background(), data,
		gkmeans.WithShards(4), gkmeans.WithRouting(4),
		gkmeans.WithKappa(8), gkmeans.WithTau(3), gkmeans.WithSeed(23))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Window: time.Millisecond, MaxBatch: 8})
	if err := s.RegisterIndex("routed", idx); err != nil {
		t.Fatal(err)
	}

	var list client.ListResponse
	if w := call(t, s, "GET", "/v1/indexes", "", &list); w.Code != http.StatusOK {
		t.Fatalf("list: %d %s", w.Code, w.Body.String())
	}
	if len(list.Indexes) != 1 || !list.Indexes[0].Routed || list.Indexes[0].Shards != 4 {
		t.Fatalf("list = %+v, want one routed index with 4 shards", list.Indexes)
	}

	// nprobe == shard count must match the library's full fan-out exactly.
	req, _ := json.Marshal(client.SearchRequest{Query: queries.Row(0), TopK: 5, Ef: 64, NProbe: 4})
	var out client.SearchResponse
	if w := call(t, s, "POST", "/v1/indexes/routed/search", string(req), &out); w.Code != http.StatusOK {
		t.Fatalf("search nprobe=4: %d %s", w.Code, w.Body.String())
	}
	want := idx.Search(queries.Row(0), 5, 64)
	if len(out.Results) != 1 || len(out.Results[0]) != len(want) {
		t.Fatalf("search returned %d lists", len(out.Results))
	}
	for i, nb := range out.Results[0] {
		if nb.ID != want[i].ID || nb.Dist != want[i].Dist {
			t.Fatalf("nprobe=4 result %d = %+v, want full fan-out %+v", i, nb, want[i])
		}
	}

	// A routed batch search with nprobe < shards answers every query and
	// bumps the routing counters.
	batchReq, _ := json.Marshal(client.SearchRequest{
		Queries: [][]float32{queries.Row(1), queries.Row(2)}, TopK: 3, Ef: 32, NProbe: 1})
	var batchOut client.SearchResponse
	if w := call(t, s, "POST", "/v1/indexes/routed/search", string(batchReq), &batchOut); w.Code != http.StatusOK {
		t.Fatalf("batch search nprobe=1: %d %s", w.Code, w.Body.String())
	}
	if len(batchOut.Results) != 2 || len(batchOut.Results[0]) != 3 {
		t.Fatalf("batch search returned %+v, want 2 lists of 3", batchOut.Results)
	}

	var stats client.IndexStats
	if w := call(t, s, "GET", "/v1/indexes/routed/stats", "", &stats); w.Code != http.StatusOK {
		t.Fatalf("stats: %d %s", w.Code, w.Body.String())
	}
	if !stats.Routed || stats.RoutedQueries != 2 || stats.ShardsProbed == 0 {
		t.Fatalf("stats = %+v, want routed with 2 routed queries and non-zero shards probed", stats)
	}

	// Validation: negative nprobe, and positive nprobe on an unrouted index.
	w := call(t, s, "POST", "/v1/indexes/routed/search",
		`{"query":[0],"top_k":1,"nprobe":-1}`, nil)
	if w.Code != http.StatusBadRequest || !strings.Contains(errorOf(t, w), "nprobe") {
		t.Fatalf("negative nprobe: %d %s, want 400 mentioning nprobe", w.Code, w.Body.String())
	}
	plain := newTestServer(t)
	req2, _ := json.Marshal(client.SearchRequest{Query: make([]float32, 32), TopK: 1, NProbe: 2})
	w = call(t, plain, "POST", "/v1/indexes/sift/search", string(req2), nil)
	if w.Code != http.StatusBadRequest || !strings.Contains(errorOf(t, w), "routing") {
		t.Fatalf("nprobe on unrouted index: %d %s, want 400 mentioning routing", w.Code, w.Body.String())
	}
}
