package server

import (
	"context"
	"gkmeans"
	"testing"
	"time"
)

// BenchmarkDirectSearch is the baseline: goroutines hitting Index.Search
// with no coalescing.
func BenchmarkDirectSearch(b *testing.B) {
	idx, queries := sharedIndex(b)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			idx.Search(queries.Row(i%queries.N), 10, 64)
			i++
		}
	})
}

// BenchmarkCoalescedSearch sends the same traffic through the micro-batch
// coalescer, the server's hot path for concurrent single-query requests.
func BenchmarkCoalescedSearch(b *testing.B) {
	idx, queries := sharedIndex(b)
	c := newCoalescer(func() *gkmeans.Index { return idx }, time.Millisecond, 32)
	defer c.Close()
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := c.Search(ctx, queries.Row(i%queries.N), 10, 64, 0); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}
