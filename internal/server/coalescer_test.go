package server

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"gkmeans"
	"gkmeans/internal/dataset"
)

// testIndex builds one small deterministic index per test binary run.
var (
	testIdxOnce sync.Once
	testIdx     *gkmeans.Index
	testQueries *gkmeans.Matrix
)

func sharedIndex(t testing.TB) (*gkmeans.Index, *gkmeans.Matrix) {
	t.Helper()
	testIdxOnce.Do(func() {
		all := dataset.SIFTLike(540, 7)
		data, queries := dataset.Split(all, 40)
		idx, err := gkmeans.Build(context.Background(), data,
			gkmeans.WithKappa(10), gkmeans.WithXi(25), gkmeans.WithTau(4), gkmeans.WithSeed(3))
		if err != nil {
			panic(err)
		}
		testIdx, testQueries = idx, queries
	})
	return testIdx, testQueries
}

func neighborsEqual(a, b []gkmeans.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Queries answered through the coalescer must be bit-identical to direct
// Index.Search calls, and hammering it from many goroutines must batch them.
func TestCoalescerMatchesDirectSearchUnderLoad(t *testing.T) {
	idx, queries := sharedIndex(t)
	c := newCoalescer(func() *gkmeans.Index { return idx }, 50*time.Millisecond, 8)
	defer c.Close()

	const goroutines, perG = 32, 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				q := queries.Row((g*perG + i) % queries.N)
				got, err := c.Search(context.Background(), q, 10, 64, 0)
				if err != nil {
					errs <- err
					return
				}
				if want := idx.Search(q, 10, 64); !neighborsEqual(got, want) {
					errs <- fmt.Errorf("g%d i%d: coalesced result differs from direct Index.Search", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	nq, nb, maxB := c.Stats()
	if nq != goroutines*perG {
		t.Fatalf("coalescer accepted %d queries, want %d (dropped requests)", nq, goroutines*perG)
	}
	if nb >= nq {
		t.Fatalf("%d batches for %d queries: coalescer never batched", nb, nq)
	}
	if maxB < 2 || maxB > 8 {
		t.Fatalf("max batch %d outside (1, maxBatch]", maxB)
	}
}

// Reaching maxBatch must flush immediately — no waiting out the window.
func TestCoalescerSizeTrigger(t *testing.T) {
	idx, queries := sharedIndex(t)
	// A window far longer than the test timeout: only the size trigger can
	// flush, so completion itself proves the trigger works.
	c := newCoalescer(func() *gkmeans.Index { return idx }, time.Hour, 4)
	defer c.Close()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.Search(context.Background(), queries.Row(i), 5, 32, 0); err != nil {
				t.Error(err)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("size-triggered flush never happened")
	}
	if _, nb, _ := c.Stats(); nb != 1 {
		t.Fatalf("4 queries at maxBatch=4 ran as %d batches, want 1", nb)
	}
}

// Different (topK, ef) parameters must not share a batch — mixing them
// would change results.
func TestCoalescerGroupsByParams(t *testing.T) {
	idx, queries := sharedIndex(t)
	c := newCoalescer(func() *gkmeans.Index { return idx }, 20*time.Millisecond, 64)
	defer c.Close()

	var wg sync.WaitGroup
	run := func(topK, ef int) {
		defer wg.Done()
		q := queries.Row(0)
		got, err := c.Search(context.Background(), q, topK, ef, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if want := idx.Search(q, topK, ef); !neighborsEqual(got, want) {
			t.Errorf("topK=%d ef=%d: coalesced result differs", topK, ef)
		}
	}
	wg.Add(3)
	go run(5, 32)
	go run(10, 64)
	go run(10, 0)
	wg.Wait()

	if _, nb, _ := c.Stats(); nb != 3 {
		t.Fatalf("3 distinct parameter sets ran as %d batches, want 3", nb)
	}
}

// A caller whose context dies while waiting gets the context error; the
// batch still executes for its surviving members.
func TestCoalescerContextCancellation(t *testing.T) {
	idx, queries := sharedIndex(t)
	c := newCoalescer(func() *gkmeans.Index { return idx }, time.Hour, 1000) // nothing flushes on its own
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Search(ctx, queries.Row(0), 5, 32, 0)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the query enqueue
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled caller never returned")
	}

	// Pre-cancelled contexts never enqueue at all.
	if _, err := c.Search(ctx, queries.Row(0), 5, 32, 0); err != context.Canceled {
		t.Fatalf("pre-cancelled search: got %v, want context.Canceled", err)
	}
}

// Close drains: callers already waiting get results, later callers get
// ErrDraining.
func TestCoalescerCloseDrains(t *testing.T) {
	idx, queries := sharedIndex(t)
	c := newCoalescer(func() *gkmeans.Index { return idx }, time.Hour, 1000)

	done := make(chan error, 1)
	go func() {
		res, err := c.Search(context.Background(), queries.Row(0), 5, 32, 0)
		if err == nil && len(res) != 5 {
			err = fmt.Errorf("drained search returned %d results, want 5", len(res))
		}
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the query enqueue
	c.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("waiting caller not drained: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not flush the open batch")
	}

	if _, err := c.Search(context.Background(), queries.Row(0), 5, 32, 0); err != ErrDraining {
		t.Fatalf("search after Close: got %v, want ErrDraining", err)
	}
	c.Close() // idempotent
}

// window <= 0 disables batching but keeps the same results and counters.
func TestCoalescerDisabled(t *testing.T) {
	idx, queries := sharedIndex(t)
	c := newCoalescer(func() *gkmeans.Index { return idx }, 0, 32)
	q := queries.Row(1)
	got, err := c.Search(context.Background(), q, 7, 40, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := idx.Search(q, 7, 40); !neighborsEqual(got, want) {
		t.Fatal("unbatched coalescer result differs from direct search")
	}
	nq, nb, maxB := c.Stats()
	if nq != 1 || nb != 1 || maxB != 1 {
		t.Fatalf("stats %d/%d/%d, want 1/1/1", nq, nb, maxB)
	}
	c.Close()
	if _, err := c.Search(context.Background(), q, 7, 40, 0); err != ErrDraining {
		t.Fatalf("disabled coalescer after Close: got %v, want ErrDraining", err)
	}
}
