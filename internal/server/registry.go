package server

import (
	"errors"
	"fmt"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gkmeans"
	"gkmeans/client"
)

// nameRE constrains index names so they embed cleanly in URL paths.
var nameRE = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

// errDuplicate marks a registration under a name that is already serving;
// the HTTP layer maps it to 409 Conflict.
var errDuplicate = errors.New("already registered")

// entry is one served index: the immutable Index, its coalescer and its
// serving counters.
type entry struct {
	name string
	path string // source .gkx file, "" for in-process registration
	idx  *gkmeans.Index
	coal *coalescer

	batchRequests   atomic.Int64 // explicit batch searches (bypass the coalescer)
	batchQueries    atomic.Int64 // rows answered by explicit batch searches
	clusterRequests atomic.Int64
}

// info snapshots the entry for the list endpoint.
func (e *entry) info() client.IndexInfo {
	return client.IndexInfo{
		Name:        e.name,
		N:           e.idx.N(),
		Dim:         e.idx.Dim(),
		Shards:      e.idx.Shards(),
		HasClusters: e.idx.Clusters() != nil,
	}
}

// stats snapshots the entry's serving counters, including the index's own
// hot-path totals so operators can see the per-query search work (distance
// computations, candidate expansions) the early-termination rule bounds.
func (e *entry) stats(window time.Duration) client.IndexStats {
	queries, batches, maxBatch := e.coal.Stats()
	hot := e.idx.SearchStats()
	return client.IndexStats{
		IndexInfo:          e.info(),
		Path:               e.path,
		Queries:            queries + e.batchQueries.Load(),
		Batches:            batches,
		MaxBatch:           maxBatch,
		BatchRequests:      e.batchRequests.Load(),
		ClusterRequests:    e.clusterRequests.Load(),
		CoalesceWindowNS:   int64(window),
		DistanceComps:      hot.DistanceComps,
		ExpandedCandidates: hot.ExpandedCandidates,
	}
}

// registry is the concurrent-safe name → index map behind /v1/indexes.
// Registration is cheap relative to serving, so a single RWMutex suffices:
// the hot search path takes only a read lock for the name lookup.
type registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

func newRegistry() *registry {
	return &registry{entries: make(map[string]*entry)}
}

// add registers an index under name. It fails on a duplicate name so a
// re-registration cannot silently swap an index out from under live
// traffic.
func (r *registry) add(name, path string, idx *gkmeans.Index, window time.Duration, maxBatch int) (*entry, error) {
	if !nameRE.MatchString(name) {
		return nil, fmt.Errorf("invalid index name %q (want %s)", name, nameRE)
	}
	e := &entry{name: name, path: path, idx: idx, coal: newCoalescer(idx, window, maxBatch)}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[name]; dup {
		return nil, fmt.Errorf("index %q: %w", name, errDuplicate)
	}
	r.entries[name] = e
	return e, nil
}

// get looks up a served index by name.
func (r *registry) get(name string) (*entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e, ok
}

// list returns every entry sorted by name.
func (r *registry) list() []*entry {
	r.mu.RLock()
	out := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// closeAll drains every coalescer; part of graceful shutdown.
func (r *registry) closeAll() {
	for _, e := range r.list() {
		e.coal.Close()
	}
}
