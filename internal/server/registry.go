package server

import (
	"errors"
	"fmt"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gkmeans"
	"gkmeans/client"
	"gkmeans/internal/store"
	"gkmeans/internal/wal"
)

// nameRE constrains index names so they embed cleanly in URL paths (and,
// with -data, in WAL/checkpoint file names).
var nameRE = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

// errDuplicate marks a registration under a name that is already serving;
// the HTTP layer maps it to 409 Conflict.
var errDuplicate = errors.New("already registered")

// entry is one served index name. The index itself lives in an
// epoch-versioned atomic cell: every search loads a consistent (index,
// epoch) snapshot with one atomic read, and the write path — insert,
// delete, flush, compaction — publishes a copy-on-write successor with one
// atomic swap, so readers never observe a torn shard set and are never
// blocked by writers.
//
// Writes are serialised by mu: the id sequence, the WAL order and the
// memtable contents must agree, so there is exactly one writer at a time
// per index. Search never touches mu.
type entry struct {
	name  string
	path  string // source .gkx file, "" for in-process registration
	cur   store.Versioned[*gkmeans.Index]
	coal  *coalescer
	cache *queryCache // nil when Config.CacheSize is 0

	// Write path, guarded by mu. wal is nil when the server has no data
	// dir (mutations are accepted but volatile). mem buffers inserted
	// vectors until a shard build is worthwhile; memDel holds deletes
	// aimed at still-buffered rows, applied in the same flush that makes
	// the rows searchable.
	mu        sync.Mutex
	wal       *wal.Log
	mem       *store.Memtable
	memDel    map[int32]bool
	threshold int

	pending atomic.Int64 // mem.Rows(), readable without mu

	batchRequests   atomic.Int64 // explicit batch searches (bypass the coalescer)
	batchQueries    atomic.Int64 // rows answered by explicit batch searches
	clusterRequests atomic.Int64
	inserts         atomic.Int64 // vectors accepted by /insert
	deletes         atomic.Int64 // ids accepted by /delete
	flushes         atomic.Int64 // memtable flushes (incremental shard builds)
	compactions     atomic.Int64
}

// newEntry wires an entry around its initial index. The coalescer takes
// the provider function, not the index value, so in-flight micro-batches
// always run against the newest epoch; the query cache (nil when disabled)
// is pinned to that epoch sequence.
func newEntry(name, path string, idx *gkmeans.Index, window time.Duration, maxBatch, cacheSize int) *entry {
	e := &entry{
		name:   name,
		path:   path,
		cache:  newQueryCache(cacheSize),
		mem:    store.NewMemtable(idx.Dim()),
		memDel: make(map[int32]bool),
	}
	e.cur.Swap(idx)
	e.coal = newCoalescer(e.index, window, maxBatch)
	return e
}

// index returns the current index snapshot.
func (e *entry) index() *gkmeans.Index {
	idx, _ := e.cur.Load()
	return idx
}

// epoch returns the current swap epoch (1 after registration, +1 per
// flush, delete or compaction that published a new index).
func (e *entry) epoch() uint64 {
	_, ep := e.cur.Load()
	return ep
}

// info snapshots the entry for the list endpoint.
func (e *entry) info() client.IndexInfo {
	idx := e.index()
	return client.IndexInfo{
		Name:        e.name,
		N:           idx.N(),
		Dim:         idx.Dim(),
		DType:       idx.DType().String(),
		Shards:      idx.Shards(),
		HasClusters: idx.Clusters() != nil,
		Routed:      idx.Routed(),
		Epoch:       e.epoch(),
		Live:        idx.Live(),
		Deleted:     idx.Deleted(),
		Pending:     int(e.pending.Load()),
	}
}

// stats snapshots the entry's serving counters, including the index's own
// hot-path totals so operators can see the per-query search work (distance
// computations, candidate expansions) the early-termination rule bounds.
func (e *entry) stats(window time.Duration) client.IndexStats {
	queries, batches, maxBatch := e.coal.Stats()
	hot := e.index().SearchStats()
	hits, misses, evictions := e.cache.counters()
	return client.IndexStats{
		IndexInfo:          e.info(),
		Path:               e.path,
		Queries:            queries + e.batchQueries.Load() + hits,
		Batches:            batches,
		MaxBatch:           maxBatch,
		BatchRequests:      e.batchRequests.Load(),
		ClusterRequests:    e.clusterRequests.Load(),
		CoalesceWindowNS:   int64(window),
		DistanceComps:      hot.DistanceComps,
		ExpandedCandidates: hot.ExpandedCandidates,
		ShardsProbed:       hot.ShardsProbed,
		RoutedQueries:      hot.RoutedQueries,
		Inserts:            e.inserts.Load(),
		Deletes:            e.deletes.Load(),
		Flushes:            e.flushes.Load(),
		Compactions:        e.compactions.Load(),
		Durable:            e.wal != nil,
		CacheHits:          hits,
		CacheMisses:        misses,
		CacheEvictions:     evictions,
		CacheEntries:       e.cache.len(),
	}
}

// registry is the concurrent-safe name → entry map behind /v1/indexes.
// Registration is cheap relative to serving, so a single RWMutex suffices:
// the hot search path takes only a read lock for the name lookup — the
// index value itself is resolved lock-free through the entry's versioned
// cell.
type registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

func newRegistry() *registry {
	return &registry{entries: make(map[string]*entry)}
}

// publish makes a fully constructed entry visible. It fails on a
// duplicate name so a re-registration cannot silently swap an index out
// from under live traffic.
func (r *registry) publish(e *entry) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[e.name]; dup {
		return fmt.Errorf("index %q: %w", e.name, errDuplicate)
	}
	r.entries[e.name] = e
	return nil
}

// get looks up a served index by name.
func (r *registry) get(name string) (*entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e, ok
}

// list returns every entry sorted by name.
func (r *registry) list() []*entry {
	r.mu.RLock()
	out := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// closeAll drains every coalescer and closes the write-ahead logs; part of
// graceful shutdown. Buffered (unflushed) rows are not built into shards —
// the WAL already holds them, and the next startup replays them.
func (r *registry) closeAll() {
	for _, e := range r.list() {
		e.coal.Close()
		e.mu.Lock()
		if e.wal != nil {
			e.wal.Close()
		}
		e.mu.Unlock()
	}
}
