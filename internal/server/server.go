// Package server implements gkserved's HTTP serving layer: a registry of
// named gkmeans indexes served over a /v1 JSON API, with micro-batched
// single-query search (concurrent requests coalesce into SearchBatch calls
// that share the worker pool), graph-supported clustering, hot index
// registration, instance-scoped metrics (/debug/vars JSON and Prometheus
// text format at /metrics) and graceful drain.
//
// The read path is hardened for production traffic: every search passes
// deadline → limiter → cache → coalescer → fan-out. Per-request deadlines
// (Config.RequestTimeout, tightened per request by timeout_ms) answer 504
// when the time budget expires, without costing a coalesced batch its
// other members; the concurrency limiter (Config.MaxInFlight) sheds excess
// load with 429 + Retry-After before queueing collapses tail latency; and
// the per-index query cache (Config.CacheSize) serves repeated single
// queries bit-identically to a cold search, keyed by (query bytes, topK,
// ef, nprobe) and invalidated by the index epoch so a hit can never cross
// a mutation. See OPERATIONS.md for the operator view of all of it.
//
// Served indexes are mutable: /insert appends vectors and /delete
// tombstones rows. Each mutation publishes a copy-on-write index snapshot
// through an epoch-versioned atomic cell, so searches are never blocked by
// writers and never see a half-applied mutation. With Config.DataDir set,
// every accepted write is fsynced to a per-index write-ahead log before the
// response, and replayed on the next startup; a background compactor folds
// tombstoned and fragmented shards back into dense ones and checkpoints the
// result. See mutation.go for the write path.
//
// The wire types live in gkmeans/client so the Go client and this server
// share one definition of the API.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"gkmeans"
	"gkmeans/client"
	"gkmeans/internal/store"
	"gkmeans/internal/wal"
)

// Defaults for the micro-batching coalescer, the write path and the
// hardening knobs; see Config.
const (
	DefaultWindow            = time.Millisecond
	DefaultMaxBatch          = 32
	DefaultMemtableThreshold = 256
	// DefaultRetryAfter is the Retry-After hint sent with a 429 when the
	// concurrency limiter sheds a request.
	DefaultRetryAfter = time.Second
)

// maxBodyBytes bounds request bodies (a batch of a few thousand
// high-dimensional queries fits comfortably).
const maxBodyBytes = 64 << 20

// Config tunes a Server. The zero value serves with the defaults.
type Config struct {
	// Window is how long the coalescer holds the first single-query search
	// of a batch while collecting company; 0 selects DefaultWindow, and a
	// negative Window (or MaxBatch 1) disables batching entirely.
	Window time.Duration
	// MaxBatch caps how many single queries share one SearchBatch call;
	// 0 selects DefaultMaxBatch.
	MaxBatch int
	// DataDir makes mutations durable: each index keeps a write-ahead log
	// at DataDir/<name>.wal (fsynced before an insert or delete is
	// acknowledged, replayed on the next registration of the same name) and
	// compaction checkpoints the index to DataDir/<name>.gkx. Empty keeps
	// mutations in memory only.
	DataDir string
	// MemtableThreshold is how many inserted vectors accumulate before
	// they are built into a searchable shard; 0 selects
	// DefaultMemtableThreshold. Values below 2 are raised to 2 (a shard
	// graph needs at least two rows). Buffered rows are durable (with
	// DataDir) but not searchable until flushed.
	MemtableThreshold int
	// Policy decides which shards the background compactor rebuilds. The
	// zero value selects store.DefaultPolicy.
	Policy store.Policy
	// CompactInterval is the period of the background compactor; 0
	// disables it (CompactNow still works).
	CompactInterval time.Duration

	// RequestTimeout is the server-wide deadline for search and cluster
	// requests: work still queued or running when it expires is answered
	// with 504. A request can only tighten it (SearchRequest.TimeoutMS),
	// never extend it. 0 disables the server-wide deadline.
	RequestTimeout time.Duration
	// MaxInFlight caps concurrently admitted search and cluster requests;
	// the excess is shed immediately with 429 + Retry-After instead of
	// queueing into collapsed tail latency. 0 disables the limiter.
	MaxInFlight int
	// RetryAfter is the Retry-After hint attached to shed (429) responses;
	// 0 selects DefaultRetryAfter.
	RetryAfter time.Duration
	// CacheSize is the per-index query-cache capacity in entries (cached
	// single-query results keyed by query bytes, topK, ef and nprobe,
	// invalidated by the index epoch). 0 disables caching.
	CacheSize int

	// Logger receives serving events; nil discards them.
	Logger *log.Logger
}

// Server serves a registry of indexes over HTTP. Create one with New,
// register indexes, then mount Handler on any http.Server. Safe for
// concurrent use.
type Server struct {
	cfg     Config
	reg     *registry
	met     *metrics
	limiter *limiter
	mux     *http.ServeMux

	deadlineExceeded atomic.Int64 // searches answered with 504

	draining chan struct{} // closed when shutdown begins
}

// New builds a Server with no indexes registered.
func New(cfg Config) *Server {
	if cfg.Window == 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.MemtableThreshold == 0 {
		cfg.MemtableThreshold = DefaultMemtableThreshold
	}
	if cfg.MemtableThreshold < 2 {
		cfg.MemtableThreshold = 2
	}
	if !cfg.Policy.Enabled() {
		cfg.Policy = store.DefaultPolicy
	}
	s := &Server{cfg: cfg, reg: newRegistry(), met: newMetrics(), draining: make(chan struct{})}
	s.limiter = newLimiter(cfg.MaxInFlight, cfg.RetryAfter)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.met.instrument("healthz", s.handleHealth))
	s.mux.HandleFunc("GET /v1/indexes", s.met.instrument("list", s.handleList))
	s.mux.HandleFunc("POST /v1/indexes", s.met.instrument("register", s.handleRegister))
	s.mux.HandleFunc("GET /v1/indexes/{name}/stats", s.met.instrument("stats", s.handleStats))
	s.mux.HandleFunc("POST /v1/indexes/{name}/search", s.met.instrument("search", s.handleSearch))
	s.mux.HandleFunc("POST /v1/indexes/{name}/insert", s.met.instrument("insert", s.handleInsert))
	s.mux.HandleFunc("POST /v1/indexes/{name}/delete", s.met.instrument("delete", s.handleDelete))
	s.mux.HandleFunc("POST /v1/indexes/{name}/cluster", s.met.instrument("cluster", s.handleCluster))
	s.mux.HandleFunc("GET /debug/vars", s.met.instrument("debug_vars", s.met.serveVars))
	s.mux.HandleFunc("GET /metrics", s.met.instrument("metrics", s.serveMetrics))
	if cfg.CompactInterval > 0 {
		go s.compactLoop()
	}
	return s
}

// Handler returns the root http.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

// RegisterIndex serves an already-loaded index under name — the path used
// by gkserved at startup and by tests/examples embedding the server.
func (s *Server) RegisterIndex(name string, idx *gkmeans.Index) error {
	return s.registerIndex(name, "", idx)
}

// RegisterFile loads a persisted index (gkmeans.SaveIndex) from path and
// serves it under name.
func (s *Server) RegisterFile(name, path string) error {
	idx, err := gkmeans.LoadIndex(path)
	if err != nil {
		return fmt.Errorf("loading index %q from %s: %w", name, path, err)
	}
	return s.registerIndex(name, path, idx)
}

func (s *Server) registerIndex(name, path string, idx *gkmeans.Index) error {
	// Validate the name before it touches the filesystem: nameRE admits no
	// path separators or dots-only names, so DataDir/<name>.wal is safe.
	if !nameRE.MatchString(name) {
		return fmt.Errorf("invalid index name %q", name)
	}
	e := newEntry(name, path, idx, s.cfg.Window, s.cfg.MaxBatch, s.cfg.CacheSize)
	e.threshold = s.cfg.MemtableThreshold
	if s.cfg.DataDir != "" {
		if err := s.setupDurability(e); err != nil {
			return fmt.Errorf("index %q: %w", name, err)
		}
	}
	if err := s.reg.publish(e); err != nil {
		if e.wal != nil {
			e.wal.Close()
		}
		return err
	}
	cur := e.index()
	s.logf("serving index %q: %d×%d %s (clusters: %v, durable: %v, pending: %d)",
		name, cur.N(), cur.Dim(), cur.DType(), cur.Clusters() != nil, e.wal != nil, e.mem.Rows())
	return nil
}

// setupDurability attaches the WAL to a not-yet-published entry: load the
// compaction checkpoint if one supersedes the registered file, open (or
// repair) the log, and replay every surviving record. The entry is still
// private to this goroutine, so no locking.
func (s *Server) setupDurability(e *entry) error {
	if err := os.MkdirAll(s.cfg.DataDir, 0o755); err != nil {
		return err
	}
	if cp := s.checkpointPath(e.name); fileExists(cp) {
		idx, err := gkmeans.LoadIndex(cp)
		if err != nil {
			return fmt.Errorf("loading checkpoint %s: %w", cp, err)
		}
		if idx.Dim() != e.index().Dim() {
			return fmt.Errorf("checkpoint %s has dimensionality %d, registered index has %d",
				cp, idx.Dim(), e.index().Dim())
		}
		e.cur.Swap(idx)
	}
	l, err := wal.Open(s.walPath(e.name))
	if err != nil {
		return err
	}
	e.wal = l
	replayed, err := e.replayWAL()
	if err != nil {
		l.Close()
		return fmt.Errorf("replaying %s: %w", s.walPath(e.name), err)
	}
	if replayed > 0 {
		s.logf("index %q: replayed %d WAL records (%d rows pending)", e.name, replayed, e.mem.Rows())
	}
	return nil
}

func (s *Server) walPath(name string) string {
	return filepath.Join(s.cfg.DataDir, name+".wal")
}

func (s *Server) checkpointPath(name string) string {
	return filepath.Join(s.cfg.DataDir, name+".gkx")
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// BeginShutdown moves the server into draining: /healthz flips to 503 so
// load balancers stop routing here, new searches are refused with 503, and
// every open micro-batch is executed so waiting callers get their results.
// In-flight requests run to completion — pair it with http.Server.Shutdown,
// which drains connections. Idempotent.
func (s *Server) BeginShutdown() {
	select {
	case <-s.draining:
		return // already draining
	default:
	}
	close(s.draining)
	s.logf("draining: flushing open batches, refusing new work")
	s.reg.closeAll()
}

// isDraining reports whether BeginShutdown has been called.
func (s *Server) isDraining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

// writeError sends the API's error envelope.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeJSON sends a 200 with the JSON-encoded body.
func writeJSON(w http.ResponseWriter, body any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(body)
}

// decodeBody strictly decodes the request body into dst; unknown fields are
// rejected so client typos surface as 400s instead of silently-default
// behaviour.
func decodeBody(r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return err
	}
	// A body with trailing garbage ("{}{}") is malformed too.
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("trailing data after JSON body")
	}
	return nil
}

// lookup resolves the {name} path segment against the registry, writing the
// 404 itself when absent.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*entry, bool) {
	name := r.PathValue("name")
	e, ok := s.reg.get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown index %q", name)
		return nil, false
	}
	return e, true
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.isDraining() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, map[string]string{"status": "ok"})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	entries := s.reg.list()
	out := client.ListResponse{Indexes: make([]client.IndexInfo, 0, len(entries))}
	for _, e := range entries {
		out.Indexes = append(out.Indexes, e.info())
	}
	writeJSON(w, out)
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req client.RegisterRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed register request: %v", err)
		return
	}
	if req.Name == "" || req.Path == "" {
		writeError(w, http.StatusBadRequest, "register needs both name and path")
		return
	}
	if _, dup := s.reg.get(req.Name); dup {
		writeError(w, http.StatusConflict, "index %q already registered", req.Name)
		return
	}
	if err := s.RegisterFile(req.Name, req.Path); err != nil {
		// A racing registration can still lose to the registry's own
		// duplicate check after the pre-check above passed.
		code := http.StatusBadRequest
		if errors.Is(err, errDuplicate) {
			code = http.StatusConflict
		}
		writeError(w, code, "%v", err)
		return
	}
	e, _ := s.reg.get(req.Name)
	writeJSON(w, e.info())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, e.stats(s.cfg.Window))
}

// searchContext derives the effective deadline for one search or cluster
// request: the server-wide RequestTimeout, tightened (never extended) by a
// client-supplied timeout_ms. With neither set, the request context is
// returned as-is.
func (s *Server) searchContext(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	d := s.cfg.RequestTimeout
	if t := time.Duration(timeoutMS) * time.Millisecond; timeoutMS > 0 && (d <= 0 || t < d) {
		d = t
	}
	if d <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), d)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	// Shed before reading the body: an overloaded server should spend as
	// close to zero work as possible on the requests it rejects.
	if !s.limiter.acquire() {
		s.limiter.reject(w)
		return
	}
	defer s.limiter.release()
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req client.SearchRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed search request: %v", err)
		return
	}
	single := req.Query != nil
	batch := req.Queries != nil
	switch {
	case single == batch:
		writeError(w, http.StatusBadRequest, "exactly one of query and queries must be set")
		return
	case req.TopK <= 0:
		writeError(w, http.StatusBadRequest, "top_k must be positive, got %d", req.TopK)
		return
	case req.NProbe < 0:
		writeError(w, http.StatusBadRequest, "nprobe must be non-negative, got %d", req.NProbe)
		return
	case req.TimeoutMS < 0:
		writeError(w, http.StatusBadRequest, "timeout_ms must be non-negative, got %d", req.TimeoutMS)
		return
	}
	if req.NProbe > 0 && !e.index().Routed() {
		// Silently scanning everything would misreport the recall/latency
		// trade the caller asked for, so refuse instead.
		writeError(w, http.StatusBadRequest,
			"index %q has no routing table (build it with WithRouting); nprobe is not applicable", e.name)
		return
	}
	idx := e.index()
	dim := idx.Dim()
	queries := req.Queries
	if single {
		queries = [][]float32{req.Query}
	}
	for i, q := range queries {
		if len(q) != dim {
			writeError(w, http.StatusBadRequest,
				"query %d has dimensionality %d, index %q has %d", i, len(q), e.name, dim)
			return
		}
		// A uint8 index scans byte rows with integer kernels; a query value
		// that is not an exact byte is a caller error (like a dimension
		// mismatch), answered 400 before the search path would panic.
		if err := idx.CheckByteValues(q); err != nil {
			writeError(w, http.StatusBadRequest, "query %d: %v", i, err)
			return
		}
	}
	if len(queries) == 0 {
		writeJSON(w, client.SearchResponse{Results: [][]client.Neighbor{}})
		return
	}

	ctx, cancel := s.searchContext(r, req.TimeoutMS)
	defer cancel()

	var results [][]gkmeans.Neighbor
	if single {
		// The read path of the hardening pipeline: deadline → limiter
		// (above) → cache → coalescer → fan-out. The epoch is captured
		// before the search and re-checked before the insert, so a result
		// computed while a mutation published can never be cached — and a
		// hit can never cross an epoch (see queryCache).
		epoch := e.cur.Epoch()
		if res, hit := e.cache.get(req.Query, req.TopK, req.Ef, req.NProbe, epoch); hit {
			results = [][]gkmeans.Neighbor{res}
		} else {
			res, err := e.coal.Search(ctx, req.Query, req.TopK, req.Ef, req.NProbe)
			if err != nil {
				s.writeSearchError(w, err)
				return
			}
			if e.cur.Epoch() == epoch {
				e.cache.put(req.Query, req.TopK, req.Ef, req.NProbe, epoch, res)
			}
			results = [][]gkmeans.Neighbor{res}
		}
	} else {
		e.batchRequests.Add(1)
		e.batchQueries.Add(int64(len(queries)))
		// An explicit batch is one bounded SearchBatch call; it cannot be
		// preempted mid-flight, so the deadline is enforced by answering
		// 504 when it expires first (the computation's results are
		// discarded). The goroutine never outlives the batch.
		done := make(chan [][]gkmeans.Neighbor, 1)
		go func() {
			done <- e.index().SearchBatchNProbe(gkmeans.FromRows(queries), req.TopK, req.Ef, req.NProbe)
		}()
		select {
		case results = <-done:
		case <-ctx.Done():
			s.writeSearchError(w, ctx.Err())
			return
		}
	}

	out := client.SearchResponse{Results: make([][]client.Neighbor, len(results))}
	for i, res := range results {
		list := make([]client.Neighbor, len(res))
		for j, nb := range res {
			list[j] = client.Neighbor{ID: nb.ID, Dist: nb.Dist}
		}
		out.Results[i] = list
	}
	writeJSON(w, out)
}

// writeSearchError maps coalescer and deadline errors to status codes: a
// draining server answers 503 (retry another replica), an expired deadline
// 504 (the request's time budget ran out server-side), and a client-side
// cancellation 408 (the caller was already gone).
func (s *Server) writeSearchError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "draining")
	case errors.Is(err, context.DeadlineExceeded):
		s.deadlineExceeded.Add(1)
		writeError(w, http.StatusGatewayTimeout, "search deadline exceeded")
	default:
		writeError(w, http.StatusRequestTimeout, "search aborted: %v", err)
	}
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	// Clustering shares the limiter with search: both are the expensive,
	// sheddable read-side work the concurrency cap exists for.
	if !s.limiter.acquire() {
		s.limiter.reject(w)
		return
	}
	defer s.limiter.release()
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req client.ClusterRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed cluster request: %v", err)
		return
	}
	idx := e.index()
	if idx.Sharded() {
		// Index.Cluster would refuse too, but a sharded index can never
		// satisfy the request, so report it as a client error, not a 500.
		writeError(w, http.StatusBadRequest,
			"index %q is sharded (%d shards); clustering needs a monolithic index", e.name, idx.Shards())
		return
	}
	if req.K <= 0 || req.K > idx.N() {
		writeError(w, http.StatusBadRequest, "k must be in [1,%d], got %d", idx.N(), req.K)
		return
	}
	e.clusterRequests.Add(1)
	var opts []gkmeans.Option
	if req.MaxIter > 0 {
		opts = append(opts, gkmeans.WithMaxIter(req.MaxIter))
	}
	if req.Seed != 0 {
		opts = append(opts, gkmeans.WithSeed(req.Seed))
	}
	ctx, cancel := s.searchContext(r, 0)
	defer cancel()
	res, err := idx.Cluster(ctx, req.K, opts...)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			s.deadlineExceeded.Add(1)
			writeError(w, http.StatusGatewayTimeout, "cluster deadline exceeded")
			return
		}
		writeError(w, http.StatusInternalServerError, "clustering failed: %v", err)
		return
	}
	out := client.ClusterResponse{K: res.K, Iters: res.Iters, Distortion: res.Distortion(idx.Data())}
	if req.WithLabels {
		out.Labels = res.Labels
	}
	if req.WithCentroids {
		out.Centroids = make([][]float32, res.Centroids.N)
		for i := range out.Centroids {
			row := make([]float32, res.Centroids.Dim)
			copy(row, res.Centroids.Row(i))
			out.Centroids[i] = row
		}
	}
	writeJSON(w, out)
}
