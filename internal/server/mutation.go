package server

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"time"

	"gkmeans"
	"gkmeans/client"
	"gkmeans/internal/store"
	"gkmeans/internal/wal"
)

// The write path. Every mutation follows the same discipline under the
// entry's write mutex:
//
//  1. validate fully — nothing is logged that cannot be applied;
//  2. append the op to the WAL and fsync (when the server is durable) —
//     this is the acknowledgement point;
//  3. apply in memory: deletes publish a copy-on-write index snapshot via
//     one atomic swap, inserts accumulate in the memtable until
//     MemtableThreshold rows trigger a flush that builds them into a new
//     shard (plus any deletes aimed at the buffered rows) and swaps once.
//
// Searches load the current snapshot with one atomic read and are never
// blocked: a reader mid-search keeps its snapshot alive while writers move
// the entry forward. Buffered rows are durable but not searchable until
// their flush — callers that need immediate visibility can lower the
// threshold to 2.

// nextInsertID returns the external id the next inserted vector will get:
// ids continue past the index's id bound, offset by the rows already
// buffered. Caller holds e.mu.
func (e *entry) nextInsertID() int32 {
	return e.index().IDBound() + int32(e.mem.Rows())
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req client.InsertRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed insert request: %v", err)
		return
	}
	if len(req.Vectors) == 0 {
		writeError(w, http.StatusBadRequest, "insert needs at least one vector")
		return
	}

	e.mu.Lock()
	defer e.mu.Unlock()

	// Index.Append refuses a Build-time clustering (its labels cannot
	// cover new rows), so a logged insert could never flush — reject it
	// here, before the WAL ack. A delete lifts the restriction: the root
	// API drops the clustering on the first Delete.
	if e.index().Clusters() != nil {
		writeError(w, http.StatusBadRequest,
			"index %q has a Build-time clustering and cannot accept inserts; rebuild it without clusters", e.name)
		return
	}
	idx := e.index()
	dim := idx.Dim()
	flat := make([]float32, 0, len(req.Vectors)*dim)
	for i, row := range req.Vectors {
		if len(row) != dim {
			writeError(w, http.StatusBadRequest,
				"vector %d has dimensionality %d, index %q has %d", i, len(row), e.name, dim)
			return
		}
		// On a uint8 index every inserted value must be an exact byte;
		// rejecting here keeps bad vectors out of the WAL, where they would
		// fail every later flush and replay instead.
		if err := idx.CheckByteValues(row); err != nil {
			writeError(w, http.StatusBadRequest, "vector %d: %v", i, err)
			return
		}
		flat = append(flat, row...)
	}
	firstID := e.nextInsertID()
	if int64(firstID)+int64(len(req.Vectors)) > math.MaxInt32 {
		writeError(w, http.StatusBadRequest, "insert would overflow the id space")
		return
	}

	if e.wal != nil {
		payload, err := wal.EncodeInsert(firstID, dim, flat)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if err := e.wal.Append(payload); err != nil {
			writeError(w, http.StatusInternalServerError, "logging insert: %v", err)
			return
		}
	}
	for i := 0; i < len(req.Vectors); i++ {
		e.mem.Add(flat[i*dim : (i+1)*dim])
	}
	e.pending.Store(int64(e.mem.Rows()))
	e.inserts.Add(int64(len(req.Vectors)))

	flushed := false
	if e.mem.Rows() >= e.threshold {
		// The rows are already durable; a failed flush keeps them buffered
		// (and replayable), so it degrades visibility, not safety.
		if err := e.flushLocked(r.Context()); err != nil {
			s.logf("index %q: flush failed, %d rows stay buffered: %v", e.name, e.mem.Rows(), err)
		} else {
			flushed = true
		}
	}
	writeJSON(w, client.InsertResponse{
		FirstID: firstID,
		Count:   len(req.Vectors),
		Epoch:   e.epoch(),
		Flushed: flushed,
		Pending: e.mem.Rows(),
	})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req client.DeleteRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed delete request: %v", err)
		return
	}
	if len(req.IDs) == 0 {
		writeError(w, http.StatusBadRequest, "delete needs at least one id")
		return
	}

	e.mu.Lock()
	defer e.mu.Unlock()

	idx := e.index()
	bound := idx.IDBound()
	memHi := bound + int32(e.mem.Rows())
	var idxIDs, memIDs []int32
	for _, id := range req.IDs {
		switch {
		case id >= 0 && id < bound:
			idxIDs = append(idxIDs, id)
		case id >= bound && id < memHi:
			memIDs = append(memIDs, id)
		default:
			writeError(w, http.StatusBadRequest, "unknown id %d", id)
			return
		}
	}
	// Apply to a candidate snapshot first: Index.Delete is copy-on-write,
	// so a rejected id (e.g. one reclaimed by compaction) costs nothing and
	// nothing reaches the WAL.
	newIdx := idx
	if len(idxIDs) > 0 {
		var err error
		newIdx, err = idx.Delete(idxIDs...)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	if e.wal != nil {
		payload, err := wal.EncodeDelete(req.IDs)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if err := e.wal.Append(payload); err != nil {
			writeError(w, http.StatusInternalServerError, "logging delete: %v", err)
			return
		}
	}
	if newIdx != idx {
		e.cur.Swap(newIdx)
	}
	for _, id := range memIDs {
		e.memDel[id] = true
	}
	e.deletes.Add(int64(len(req.IDs)))
	writeJSON(w, client.DeleteResponse{
		Deleted: len(req.IDs),
		Epoch:   e.epoch(),
	})
}

// flushLocked builds the buffered rows into a new shard via Index.Append,
// applies any deletes aimed at those rows, and publishes the result with a
// single swap. Caller holds e.mu (or owns the entry exclusively, during
// replay). A flush with fewer than two rows waits for more: a shard graph
// needs at least two vertices.
func (e *entry) flushLocked(ctx context.Context) error {
	if e.mem.Rows() < 2 {
		return nil
	}
	m := gkmeans.NewMatrix(e.mem.Rows(), e.mem.Dim())
	copy(m.Data, e.mem.Data())
	newIdx, err := e.index().Append(ctx, m)
	if err != nil {
		return err
	}
	if len(e.memDel) > 0 {
		ids := make([]int32, 0, len(e.memDel))
		for id := range e.memDel {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		if newIdx, err = newIdx.Delete(ids...); err != nil {
			return err
		}
	}
	e.cur.Swap(newIdx)
	e.mem.Reset()
	e.memDel = make(map[int32]bool)
	e.pending.Store(0)
	e.flushes.Add(1)
	return nil
}

// replayWAL re-applies every surviving log record to the entry's index and
// memtable, reproducing exactly the in-memory state the server had when
// each record was acknowledged. Inserts whose ids fall below the current
// id bound were already folded into the checkpoint and are skipped;
// deletes of ids a later compaction reclaimed are likewise no-ops. Called
// before the entry is published, so no locking.
func (e *entry) replayWAL() (int, error) {
	applied := 0
	_, err := e.wal.Replay(func(payload []byte) error {
		op, err := wal.Decode(payload)
		if err != nil {
			return err
		}
		if op.Insert {
			return e.replayInsert(op, &applied)
		}
		return e.replayDelete(op, &applied)
	})
	e.pending.Store(int64(e.mem.Rows()))
	return applied, err
}

func (e *entry) replayInsert(op wal.Op, applied *int) error {
	idx := e.index()
	if op.Dim != idx.Dim() {
		return fmt.Errorf("insert op has dimensionality %d, index has %d", op.Dim, idx.Dim())
	}
	count := int32(op.Count())
	expect := e.nextInsertID()
	switch {
	case op.FirstID+count <= idx.IDBound():
		return nil // fully folded into the checkpoint
	case op.FirstID == expect:
		for r := 0; r < op.Count(); r++ {
			e.mem.Add(op.Vectors[r*op.Dim : (r+1)*op.Dim])
		}
		*applied++
		if e.mem.Rows() >= e.threshold {
			return e.flushLocked(context.Background())
		}
		return nil
	default:
		// Flushes always consume whole ops, so an op can never straddle the
		// id bound; a gap or overlap means the WAL and checkpoint diverged.
		return fmt.Errorf("insert op at id %d does not line up with id bound %d (+%d buffered)",
			op.FirstID, idx.IDBound(), e.mem.Rows())
	}
}

func (e *entry) replayDelete(op wal.Op, applied *int) error {
	idx := e.index()
	bound := idx.IDBound()
	memHi := bound + int32(e.mem.Rows())
	changed := false
	for _, id := range op.IDs {
		switch {
		case id < bound:
			// Deleting an already-tombstoned id is a no-op; an id the
			// checkpoint's compaction reclaimed fails to resolve — both are
			// records whose effect is already durable, so skip, don't fail.
			if next, err := idx.Delete(id); err == nil {
				idx, changed = next, true
			}
		case id < memHi:
			e.memDel[id] = true
		}
	}
	if changed {
		e.cur.Swap(idx)
	}
	*applied++
	return nil
}

// compactLoop periodically offers every entry to the compactor until the
// server starts draining.
func (s *Server) compactLoop() {
	t := time.NewTicker(s.cfg.CompactInterval)
	defer t.Stop()
	for {
		select {
		case <-s.draining:
			return
		case <-t.C:
			for _, e := range s.reg.list() {
				if _, err := s.compactEntry(e); err != nil {
					s.logf("index %q: compaction failed: %v", e.name, err)
				}
			}
		}
	}
}

// CompactNow runs one synchronous compaction round for the named index,
// applying the configured policy, and reports whether a compaction
// actually ran. Exposed for operational tooling and tests; the background
// loop calls the same code.
func (s *Server) CompactNow(name string) (bool, error) {
	e, ok := s.reg.get(name)
	if !ok {
		return false, fmt.Errorf("unknown index %q", name)
	}
	return s.compactEntry(e)
}

// compactEntry rebuilds the shards the policy selects, swaps the compacted
// index in, and — when durable — checkpoints it so the WAL can shed every
// record the checkpoint now covers. Holding e.mu stalls writers for the
// duration; searches keep running against the pre-compaction snapshot and
// observe a single atomic transition whose results are identical (only
// dead rows are dropped).
func (s *Server) compactEntry(e *entry) (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	idx := e.index()
	infos := idx.ShardInfos()
	stats := make([]store.ShardStat, len(infos))
	for i, si := range infos {
		stats[i] = store.ShardStat{Rows: si.Rows, Deleted: si.Deleted, Gen: si.Gen}
	}
	plan := s.cfg.Policy.Plan(stats)
	if plan == nil {
		return false, nil
	}
	newIdx, err := idx.Compact(context.Background(), plan...)
	if err != nil {
		return false, err
	}
	e.cur.Swap(newIdx)
	e.compactions.Add(1)
	s.logf("index %q: compacted shards %v (%d live rows, epoch %d)",
		e.name, plan, newIdx.Live(), e.epoch())
	if e.wal == nil {
		return true, nil
	}
	return true, s.checkpointLocked(e, newIdx)
}

// checkpointLocked persists idx as the new on-disk baseline and rewrites
// the WAL to hold only the still-buffered operations. The order matters
// for crash safety: the checkpoint lands first (atomic rename inside
// SaveIndex), so a crash before the WAL rewrite replays old records
// against the new checkpoint — harmless, because replay skips ops the
// checkpoint's id bound and tombstones already cover. The rewrite itself
// builds a fresh log and renames it over the old one, so no crash point
// leaves buffered rows unlogged. Caller holds e.mu.
func (s *Server) checkpointLocked(e *entry, idx *gkmeans.Index) error {
	if err := gkmeans.SaveIndex(s.checkpointPath(e.name), idx); err != nil {
		return fmt.Errorf("writing checkpoint: %w", err)
	}

	tmp := e.wal.Path() + ".rewrite"
	os.Remove(tmp) // a stale leftover would make appends land after its records
	nw, err := wal.Open(tmp)
	if err != nil {
		return fmt.Errorf("rewriting WAL: %w", err)
	}
	if e.mem.Rows() > 0 {
		payload, err := wal.EncodeInsert(idx.IDBound(), e.mem.Dim(), e.mem.Data())
		if err == nil {
			err = nw.Append(payload)
		}
		if err != nil {
			nw.Close()
			return fmt.Errorf("rewriting WAL: %w", err)
		}
	}
	if len(e.memDel) > 0 {
		ids := make([]int32, 0, len(e.memDel))
		for id := range e.memDel {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		payload, err := wal.EncodeDelete(ids)
		if err == nil {
			err = nw.Append(payload)
		}
		if err != nil {
			nw.Close()
			return fmt.Errorf("rewriting WAL: %w", err)
		}
	}
	if err := nw.Close(); err != nil {
		return fmt.Errorf("rewriting WAL: %w", err)
	}
	if err := os.Rename(tmp, e.wal.Path()); err != nil {
		return fmt.Errorf("swapping WAL: %w", err)
	}
	old := e.wal
	reopened, err := wal.Open(old.Path())
	if err != nil {
		return fmt.Errorf("reopening WAL: %w", err)
	}
	old.Close()
	e.wal = reopened
	return nil
}
