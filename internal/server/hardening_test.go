package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gkmeans"
	"gkmeans/client"
	"gkmeans/internal/dataset"
)

// Tests for the serving-hardening pipeline: deadline → limiter → cache →
// coalescer → fan-out. The cache assertions pin ARCHITECTURE.md invariant 8
// (a hit is bit-identical to the cold search, and can never cross an epoch).

func searchBodyFull(t *testing.T, req client.SearchRequest) string {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestQueryCacheEpochSemantics(t *testing.T) {
	c := newQueryCache(64)
	q := []float32{1, 2, 3}
	res := []gkmeans.Neighbor{{ID: 7, Dist: 0.5}}

	if _, hit := c.get(q, 10, 32, 0, 4); hit {
		t.Fatal("empty cache hit")
	}
	c.put(q, 10, 32, 0, 4, res)
	got, hit := c.get(q, 10, 32, 0, 4)
	if !hit || len(got) != 1 || got[0] != res[0] {
		t.Fatalf("same-epoch lookup: hit=%v got=%v", hit, got)
	}
	// Different search parameters are different keys.
	if _, hit := c.get(q, 11, 32, 0, 4); hit {
		t.Fatal("topK=11 hit the topK=10 entry")
	}
	// A different epoch must miss — and evict the stale entry, so even
	// asking for the original epoch again misses now.
	if _, hit := c.get(q, 10, 32, 0, 5); hit {
		t.Fatal("lookup at epoch 5 hit an entry computed at epoch 4")
	}
	if _, hit := c.get(q, 10, 32, 0, 4); hit {
		t.Fatal("stale entry survived its cross-epoch lookup")
	}
	if c.len() != 0 {
		t.Fatalf("cache holds %d entries, want 0", c.len())
	}
	hits, misses, _ := c.counters()
	if hits != 1 || misses != 4 {
		t.Fatalf("counters: hits=%d misses=%d, want 1/4", hits, misses)
	}

	// A nil cache (disabled) is safe to use and never hits.
	var disabled *queryCache
	disabled.put(q, 10, 32, 0, 4, res)
	if _, hit := disabled.get(q, 10, 32, 0, 4); hit {
		t.Fatal("nil cache hit")
	}
	if disabled.len() != 0 {
		t.Fatal("nil cache has entries")
	}
}

func TestQueryCacheEviction(t *testing.T) {
	c := newQueryCache(cacheShardCount) // one entry per shard
	const n = 64
	for i := 0; i < n; i++ {
		c.put([]float32{float32(i)}, 10, 32, 0, 1, nil)
	}
	_, _, evictions := c.counters()
	if c.len() > cacheShardCount {
		t.Fatalf("cache holds %d entries, cap is %d", c.len(), cacheShardCount)
	}
	if evictions == 0 {
		t.Fatalf("no evictions after %d inserts into a %d-entry cache", n, cacheShardCount)
	}
}

// cacheServer serves a fresh index (built with the given worker count) with
// the query cache enabled and micro-batching disabled.
func cacheServer(t *testing.T, workers, cacheSize int) (*Server, *gkmeans.Matrix) {
	t.Helper()
	all := dataset.SIFTLike(540, 7)
	data, queries := dataset.Split(all, 40)
	idx, err := gkmeans.Build(context.Background(), data,
		gkmeans.WithKappa(10), gkmeans.WithXi(25), gkmeans.WithTau(4),
		gkmeans.WithSeed(3), gkmeans.WithWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Window: -1, CacheSize: cacheSize})
	if err := s.RegisterIndex("sift", idx); err != nil {
		t.Fatal(err)
	}
	return s, queries
}

// The cache must be invisible in the results: the same sequential request
// trace against cache-enabled servers whose indexes were built with
// different worker counts must produce byte-identical response bodies (hits
// included — bit-identity with the cold search) and identical hit/miss/
// eviction counters (eviction order is deterministic for a fixed trace).
func TestCacheDeterminismAcrossWorkerCounts(t *testing.T) {
	trace := func(workers int) ([]string, client.IndexStats) {
		s, queries := cacheServer(t, workers, cacheShardCount) // 1 entry/shard: forces evictions
		var bodies []string
		for round := 0; round < 3; round++ {
			for qi := 0; qi < queries.N; qi++ {
				w := call(t, s, "POST", "/v1/indexes/sift/search",
					searchBody(queries.Row(qi), 10, 64), nil)
				if w.Code != http.StatusOK {
					t.Fatalf("workers=%d round=%d q=%d: status %d: %s",
						workers, round, qi, w.Code, w.Body.String())
				}
				bodies = append(bodies, w.Body.String())
			}
		}
		var st client.IndexStats
		call(t, s, "GET", "/v1/indexes/sift/stats", "", &st)
		return bodies, st
	}

	b1, st1 := trace(1)
	b4, st4 := trace(4)
	for i := range b1 {
		if b1[i] != b4[i] {
			t.Fatalf("request %d differs between worker counts:\n  w1: %s\n  w4: %s", i, b1[i], b4[i])
		}
	}
	if st1.CacheHits != st4.CacheHits || st1.CacheMisses != st4.CacheMisses ||
		st1.CacheEvictions != st4.CacheEvictions {
		t.Fatalf("cache counters diverged: w1 hits/misses/evictions %d/%d/%d, w4 %d/%d/%d",
			st1.CacheHits, st1.CacheMisses, st1.CacheEvictions,
			st4.CacheHits, st4.CacheMisses, st4.CacheEvictions)
	}
	if st1.CacheHits == 0 {
		t.Fatal("repeated trace produced no cache hits")
	}
	if st1.CacheEvictions == 0 {
		t.Fatal("over-capacity trace produced no evictions")
	}

	// And a cached answer is byte-identical to the cold answer for the same
	// query: round 2 repeats round 0's requests against a warm cache.
	n := len(b1) / 3
	for i := 0; i < n; i++ {
		if b1[i] != b1[i+n] {
			t.Fatalf("warm answer for query %d differs from cold answer", i)
		}
	}
}

// Hammering searches while rows are deleted must never surface a row whose
// delete was acknowledged before the search began — the epoch pinning makes
// a stale cache hit impossible. Run with -race, this is also the data-race
// check over the cache/mutation interleaving.
func TestCacheEpochInvalidationRace(t *testing.T) {
	all := dataset.SIFTLike(240, 6)
	data, queries := dataset.Split(all, 20)
	idx, err := gkmeans.Build(context.Background(), data,
		gkmeans.WithKappa(8), gkmeans.WithXi(20), gkmeans.WithTau(3), gkmeans.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Window: -1, CacheSize: 1024, MemtableThreshold: 4})
	if err := s.RegisterIndex("mut", idx); err != nil {
		t.Fatal(err)
	}

	// The mutator deletes doomed ids one at a time; acked publishes how many
	// of those deletes have been acknowledged. A searcher that starts after
	// acked=k must never see doomed[:k].
	doomed := []int32{1, 5, 9, 13, 17, 21, 25, 29, 33, 37, 41, 45}
	var acked atomic.Int64
	ef := idx.N() + 8 // exhaustive search: assertions must not hinge on recall

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := acked.Load()
				q := queries.Row((g + i) % queries.N)
				req := httpRequest(s, "POST", "/v1/indexes/mut/search", searchBody(q, 20, ef))
				if req.code != http.StatusOK {
					errs <- fmt.Errorf("search: status %d: %s", req.code, req.body)
					return
				}
				var out client.SearchResponse
				if err := json.Unmarshal([]byte(req.body), &out); err != nil {
					errs <- err
					return
				}
				for _, nb := range out.Results[0] {
					for _, d := range doomed[:k] {
						if nb.ID == d {
							errs <- fmt.Errorf("deleted id %d resurfaced after its delete was acked", d)
							return
						}
					}
				}
			}
		}(g)
	}
	// Mutate on the test goroutine: deletes interleave with inserts so the
	// epoch also moves through flush-triggered rebuilds.
	for i, id := range doomed {
		if w := call(t, s, "POST", "/v1/indexes/mut/delete",
			fmt.Sprintf(`{"ids":[%d]}`, id), nil); w.Code != http.StatusOK {
			t.Fatalf("delete %d: status %d: %s", id, w.Code, w.Body.String())
		}
		acked.Store(int64(i + 1))
		if i%3 == 2 {
			row := make([]float32, idx.Dim())
			for j := range row {
				row[j] = float32(1000 + i)
			}
			body, _ := json.Marshal(client.InsertRequest{Vectors: [][]float32{row}})
			if w := call(t, s, "POST", "/v1/indexes/mut/insert", string(body), nil); w.Code != http.StatusOK {
				t.Fatalf("insert: status %d: %s", w.Code, w.Body.String())
			}
		}
		time.Sleep(2 * time.Millisecond) // let searchers interleave
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// httpResult is a goroutine-safe capture of one handler round trip (the
// call() helper t.Fatals, which is not legal off the test goroutine).
type httpResult struct {
	code int
	body string
}

func newRecordedRequest(method, path, body string) (*http.Request, *httptest.ResponseRecorder) {
	return httptest.NewRequest(method, path, strings.NewReader(body)), httptest.NewRecorder()
}

func httpRequest(s *Server, method, path, body string) httpResult {
	req, w := newRecordedRequest(method, path, body)
	s.Handler().ServeHTTP(w, req)
	return httpResult{code: w.Code, body: w.Body.String()}
}

// A request whose deadline expires while it waits in the coalescer window
// is answered 504 — and must not poison its batch: members with time left
// still get answers identical to a direct search.
func TestSearchDeadline504WithoutPoisoningBatch(t *testing.T) {
	idx, queries := sharedIndex(t)
	s := New(Config{Window: 40 * time.Millisecond, MaxBatch: 8})
	if err := s.RegisterIndex("sift", idx); err != nil {
		t.Fatal(err)
	}

	const survivors = 4
	var wg sync.WaitGroup
	results := make([]httpResult, survivors+1)
	for i := 0; i < survivors; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = httpRequest(s, "POST", "/v1/indexes/sift/search",
				searchBody(queries.Row(i), 5, 64))
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		// 1ms expires inside the 40ms window, long before the batch runs.
		results[survivors] = httpRequest(s, "POST", "/v1/indexes/sift/search",
			searchBodyFull(t, client.SearchRequest{Query: queries.Row(survivors), TopK: 5, Ef: 64, TimeoutMS: 1}))
	}()
	wg.Wait()

	if results[survivors].code != http.StatusGatewayTimeout {
		t.Fatalf("expired request: status %d, want 504 (%s)",
			results[survivors].code, results[survivors].body)
	}
	for i := 0; i < survivors; i++ {
		if results[i].code != http.StatusOK {
			t.Fatalf("batch-mate %d: status %d: %s", i, results[i].code, results[i].body)
		}
		var out client.SearchResponse
		if err := json.Unmarshal([]byte(results[i].body), &out); err != nil {
			t.Fatal(err)
		}
		want := idx.Search(queries.Row(i), 5, 64)
		got := out.Results[0]
		if len(got) != len(want) {
			t.Fatalf("batch-mate %d: %d results, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j].ID != want[j].ID || got[j].Dist != want[j].Dist {
				t.Fatalf("batch-mate %d result %d: got %+v want %+v", i, j, got[j], want[j])
			}
		}
	}
	if s.deadlineExceeded.Load() != 1 {
		t.Fatalf("deadlineExceeded=%d, want 1", s.deadlineExceeded.Load())
	}
}

// An explicit batch request past its deadline is answered 504 too.
func TestBatchSearchDeadline504(t *testing.T) {
	s := newTestServer(t)
	idx, queries := sharedIndex(t)
	// A batch heavy enough that a 1ms budget cannot cover it: every held-out
	// query repeated, searched exhaustively.
	var batch [][]float32
	for len(batch) < 1024 {
		batch = append(batch, queries.Row(len(batch)%queries.N))
	}
	body := searchBodyFull(t, client.SearchRequest{
		Queries: batch, TopK: 10, Ef: idx.N(), TimeoutMS: 1,
	})
	// The deadline may still lose the select on a fast machine; retry a few
	// times before declaring the 504 path unreachable.
	for i := 0; i < 50; i++ {
		if w := call(t, s, "POST", "/v1/indexes/sift/search", body, nil); w.Code == http.StatusGatewayTimeout {
			return
		}
	}
	t.Fatal("explicit batch with a 1ms budget never answered 504")
}

func TestLimiterSheds429WithRetryAfter(t *testing.T) {
	idx, queries := sharedIndex(t)
	s := New(Config{Window: -1, MaxInFlight: 1, RetryAfter: 3 * time.Second})
	if err := s.RegisterIndex("sift", idx); err != nil {
		t.Fatal(err)
	}

	// Occupy the only slot directly, then observe the shed.
	if !s.limiter.acquire() {
		t.Fatal("first acquire failed")
	}
	req, w := newRecordedRequest("POST", "/v1/indexes/sift/search", searchBody(queries.Row(0), 5, 64))
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", w.Code, w.Body.String())
	}
	if ra := w.Header().Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}
	if shed := s.limiter.shed.Load(); shed != 1 {
		t.Fatalf("shed counter = %d, want 1", shed)
	}
	s.limiter.release()

	// With the slot free the same request succeeds.
	if w := call(t, s, "POST", "/v1/indexes/sift/search", searchBody(queries.Row(0), 5, 64), nil); w.Code != http.StatusOK {
		t.Fatalf("post-release search: status %d: %s", w.Code, w.Body.String())
	}
}

// /metrics must stay parseable Prometheus text format, with coherent
// histogram series and the hardening counters present.
func TestMetricsEndpointParses(t *testing.T) {
	s, queries := cacheServer(t, 1, 256)
	for i := 0; i < 3; i++ {
		call(t, s, "POST", "/v1/indexes/sift/search", searchBody(queries.Row(0), 5, 64), nil)
	}
	call(t, s, "POST", "/v1/indexes/sift/search", `not json`, nil)

	w := call(t, s, "GET", "/metrics", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	families, err := client.ParseMetrics(strings.NewReader(w.Body.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}

	reqs, ok := client.Find(families, "gkserved_requests_total")
	if !ok {
		t.Fatal("gkserved_requests_total missing")
	}
	var searchOK, searchBad float64
	for _, sm := range reqs.Samples {
		if sm.Labels["endpoint"] == "search" {
			switch sm.Labels["code"] {
			case "200":
				searchOK = sm.Value
			case "400":
				searchBad = sm.Value
			}
		}
	}
	if searchOK != 3 || searchBad != 1 {
		t.Fatalf("search requests 200=%v 400=%v, want 3/1", searchOK, searchBad)
	}

	hist, ok := client.Find(families, "gkserved_request_duration_seconds")
	if !ok || hist.Type != "histogram" {
		t.Fatalf("duration histogram missing or mistyped: %+v", hist.Type)
	}
	// Per endpoint: cumulative buckets are non-decreasing, end at +Inf, and
	// the +Inf bucket equals _count.
	byEndpoint := map[string][]client.Sample{}
	counts := map[string]float64{}
	for _, sm := range hist.Samples {
		ep := sm.Labels["endpoint"]
		switch sm.Name {
		case "gkserved_request_duration_seconds_bucket":
			byEndpoint[ep] = append(byEndpoint[ep], sm)
		case "gkserved_request_duration_seconds_count":
			counts[ep] = sm.Value
		}
	}
	for ep, buckets := range byEndpoint {
		prev, inf := -1.0, -1.0
		for _, b := range buckets {
			if b.Value < prev {
				t.Fatalf("endpoint %s: bucket series decreases", ep)
			}
			prev = b.Value
			if b.Labels["le"] == "+Inf" {
				inf = b.Value
			}
		}
		if inf < 0 || inf != counts[ep] {
			t.Fatalf("endpoint %s: +Inf bucket %v != count %v", ep, inf, counts[ep])
		}
	}

	for _, name := range []string{
		"gkserved_inflight_requests", "gkserved_shed_total", "gkserved_deadline_exceeded_total",
		"gkserved_index_epoch", "gkserved_cache_hits_total", "gkserved_cache_misses_total",
		"gkserved_cache_entries",
	} {
		if _, ok := client.Find(families, name); !ok {
			t.Fatalf("family %s missing from /metrics", name)
		}
	}
	hits, _ := client.Find(families, "gkserved_cache_hits_total")
	if len(hits.Samples) != 1 || hits.Samples[0].Value != 2 {
		t.Fatalf("cache hits exported %+v, want one sample of 2", hits.Samples)
	}
}
