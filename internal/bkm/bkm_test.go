package bkm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gkmeans/internal/dataset"
	"gkmeans/internal/kmeans"
	"gkmeans/internal/metrics"
	"gkmeans/internal/vec"
)

func randomLabels(n, k int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	labels := make([]int, n)
	perm := rng.Perm(n)
	for idx, i := range perm {
		labels[i] = idx % k
	}
	return labels
}

func TestNewOptimizerCompositesMatchDefinition(t *testing.T) {
	data := dataset.GloVeLike(80, 1)
	k := 5
	labels := randomLabels(data.N, k, 2)
	o, err := NewOptimizer(data, labels, k)
	if err != nil {
		t.Fatal(err)
	}
	// D_r must equal the sum of members.
	for r := 0; r < k; r++ {
		want := make([]float64, data.Dim)
		count := 0
		for i, l := range labels {
			if l != r {
				continue
			}
			count++
			for j, v := range data.Row(i) {
				want[j] += float64(v)
			}
		}
		if o.Count(r) != count {
			t.Fatalf("cluster %d count %d want %d", r, o.Count(r), count)
		}
		got := o.Composite(r)
		for j := range want {
			if math.Abs(got[j]-want[j]) > 1e-6 {
				t.Fatalf("cluster %d composite[%d] = %v want %v", r, j, got[j], want[j])
			}
		}
	}
}

func TestNewOptimizerErrors(t *testing.T) {
	data := dataset.Uniform(10, 3, 1)
	if _, err := NewOptimizer(data, make([]int, 5), 2); err == nil {
		t.Fatal("label length mismatch should error")
	}
	if _, err := NewOptimizer(data, make([]int, 10), 0); err == nil {
		t.Fatal("k=0 should error")
	}
	bad := make([]int, 10)
	bad[3] = 7
	if _, err := NewOptimizer(data, bad, 2); err == nil {
		t.Fatal("out-of-range label should error")
	}
}

func TestObjectiveMatchesMetrics(t *testing.T) {
	data := dataset.SIFTLike(120, 3)
	k := 6
	labels := randomLabels(data.N, k, 4)
	o, _ := NewOptimizer(data, labels, k)
	want := metrics.Objective(data, labels, k)
	if got := o.Objective(); math.Abs(got-want) > 1e-6*math.Abs(want) {
		t.Fatalf("objective %v want %v", got, want)
	}
	wantE := metrics.DistortionFromLabels(data, labels, k)
	if got := o.Distortion(); math.Abs(got-wantE) > 1e-6*math.Max(1, wantE) {
		t.Fatalf("distortion %v want %v", got, wantE)
	}
}

// Property (the heart of BKM): DeltaI predicts exactly the objective change
// that Move then realises, for random data, labellings and moves.
func TestDeltaIMatchesRealizedChangeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(60)
		d := 1 + rng.Intn(16)
		k := 2 + rng.Intn(5)
		data := dataset.Uniform(n, d, seed)
		labels := randomLabels(n, k, seed+1)
		o, err := NewOptimizer(data, labels, k)
		if err != nil {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			i := rng.Intn(n)
			v := rng.Intn(k)
			before := o.Objective()
			delta := o.DeltaI(i, v)
			if delta == negInf {
				continue // move would empty source; no prediction to check
			}
			o.Move(i, v)
			after := o.Objective()
			if math.Abs((after-before)-delta) > 1e-6*math.Max(1, math.Abs(after)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaISelfAndEmptyGuard(t *testing.T) {
	data := dataset.Uniform(10, 4, 1)
	labels := []int{0, 0, 0, 0, 0, 0, 0, 0, 0, 1} // cluster 1 is a singleton
	o, _ := NewOptimizer(data, labels, 2)
	if o.DeltaI(0, 0) != 0 {
		t.Fatal("DeltaI to own cluster should be 0")
	}
	if o.DeltaI(9, 0) != negInf {
		t.Fatal("move emptying a cluster must be rejected")
	}
	if v, delta := o.BestMove(9, nil); v != 1 || delta != 0 {
		t.Fatalf("BestMove from singleton must stay put, got v=%d delta=%v", v, delta)
	}
}

func TestBestMoveAgainstExhaustiveDelta(t *testing.T) {
	data := dataset.GloVeLike(60, 5)
	k := 6
	o, _ := NewOptimizer(data, randomLabels(data.N, k, 6), k)
	for i := 0; i < data.N; i += 7 {
		bestV, bestD := o.BestMove(i, nil)
		// Recompute by brute force over DeltaI.
		wantV, wantD := o.Labels[i], 0.0
		for v := 0; v < k; v++ {
			if d := o.DeltaI(i, v); v != o.Labels[i] && d > wantD {
				wantV, wantD = v, d
			}
		}
		if bestV != wantV || math.Abs(bestD-wantD) > 1e-9*math.Max(1, math.Abs(wantD)) {
			t.Fatalf("sample %d: BestMove (%d,%v) vs exhaustive (%d,%v)", i, bestV, bestD, wantV, wantD)
		}
	}
}

func TestBestMoveRestrictedCandidates(t *testing.T) {
	data := dataset.Uniform(30, 3, 7)
	k := 5
	o, _ := NewOptimizer(data, randomLabels(data.N, k, 8), k)
	u := o.Labels[0]
	cands := []int{u, (u + 1) % k}
	v, _ := o.BestMove(0, cands)
	if v != u && v != (u+1)%k {
		t.Fatalf("BestMove left candidate set: %d", v)
	}
}

func TestEpochMonotoneObjective(t *testing.T) {
	data := dataset.SIFTLike(300, 9)
	k := 10
	o, _ := NewOptimizer(data, randomLabels(data.N, k, 10), k)
	prev := o.Objective()
	for e := 0; e < 10; e++ {
		moves := o.Epoch(nil, nil)
		cur := o.Objective()
		if cur < prev-1e-6*math.Abs(prev) {
			t.Fatalf("objective decreased in epoch %d: %v -> %v", e, prev, cur)
		}
		prev = cur
		if moves == 0 {
			break
		}
	}
}

func TestEpochCountsNoMovesAtConvergence(t *testing.T) {
	data := dataset.Uniform(50, 4, 11)
	k := 4
	o, _ := NewOptimizer(data, randomLabels(data.N, k, 12), k)
	for e := 0; e < 50; e++ {
		if o.Epoch(nil, nil) == 0 {
			// A second pass at the fixed point must also make no moves.
			if o.Epoch(nil, nil) != 0 {
				t.Fatal("epoch after convergence made moves")
			}
			return
		}
	}
	t.Fatal("did not converge in 50 epochs")
}

func TestClusterBeatsLloydDistortion(t *testing.T) {
	// The paper's premise (§3.1): BKM converges to lower distortion than
	// traditional k-means on the same task.
	data := dataset.SIFTLike(1000, 13)
	k := 20
	bres, err := Cluster(data, Config{K: k, MaxIter: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	lres, err := kmeans.Lloyd(data, kmeans.Config{K: k, MaxIter: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	eB := metrics.AverageDistortion(data, bres.Labels, bres.Centroids)
	eL := metrics.AverageDistortion(data, lres.Labels, lres.Centroids)
	if eB > eL*1.02 {
		t.Fatalf("BKM distortion %.2f worse than Lloyd %.2f", eB, eL)
	}
}

func TestClusterValidatesResult(t *testing.T) {
	data := dataset.GloVeLike(100, 14)
	res, err := Cluster(data, Config{K: 7, MaxIter: 30, Seed: 2, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(data.N); err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 {
		t.Fatal("trace requested but empty")
	}
	sizes := metrics.ClusterSizes(res.Labels, 7)
	for r, s := range sizes {
		if s == 0 {
			t.Fatalf("cluster %d empty (BKM forbids emptying moves)", r)
		}
	}
}

func TestClusterWithInitLabels(t *testing.T) {
	data := dataset.Uniform(40, 3, 15)
	init := randomLabels(40, 4, 16)
	initCopy := append([]int(nil), init...)
	res, err := Cluster(data, Config{K: 4, MaxIter: 10, Seed: 3, InitLabels: init})
	if err != nil {
		t.Fatal(err)
	}
	for i := range init {
		if init[i] != initCopy[i] {
			t.Fatal("InitLabels were mutated")
		}
	}
	if err := res.Validate(data.N); err != nil {
		t.Fatal(err)
	}
}

func TestClusterErrors(t *testing.T) {
	data := dataset.Uniform(10, 2, 1)
	if _, err := Cluster(data, Config{K: 0}); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := Cluster(data, Config{K: 11}); err == nil {
		t.Fatal("k>n should error")
	}
	if _, err := Cluster(data, Config{K: 2, InitLabels: []int{0}}); err == nil {
		t.Fatal("short init labels should error")
	}
}

func TestClusterDeterministic(t *testing.T) {
	data := dataset.SIFTLike(200, 17)
	a, _ := Cluster(data, Config{K: 8, MaxIter: 15, Seed: 5})
	b, _ := Cluster(data, Config{K: 8, MaxIter: 15, Seed: 5})
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed produced different labels")
		}
	}
}

func TestMoveIncrementalSqMatchesRefresh(t *testing.T) {
	// After many moves the incrementally maintained ‖D_r‖² must agree with
	// an exact recomputation.
	data := dataset.GloVeLike(150, 18)
	k := 6
	o, _ := NewOptimizer(data, randomLabels(data.N, k, 19), k)
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 500; trial++ {
		i := rng.Intn(data.N)
		v := rng.Intn(k)
		if o.Count(o.Labels[i]) > 1 {
			o.Move(i, v)
		}
	}
	before := append([]float64(nil), o.compSq...)
	o.RefreshCompSq()
	for r := 0; r < k; r++ {
		if math.Abs(before[r]-o.compSq[r]) > 1e-6*math.Max(1, o.compSq[r]) {
			t.Fatalf("cluster %d drifted: %v vs %v", r, before[r], o.compSq[r])
		}
	}
}

func TestCentroidsMatchMetrics(t *testing.T) {
	data := dataset.Uniform(60, 5, 21)
	k := 4
	labels := randomLabels(data.N, k, 22)
	o, _ := NewOptimizer(data, labels, k)
	want := metrics.Centroids(data, labels, k)
	got := o.Centroids()
	for r := 0; r < k; r++ {
		if vec.L2Sqr(got.Row(r), want.Row(r)) > 1e-9 {
			t.Fatalf("centroid %d mismatch", r)
		}
	}
}
