// Package bkm implements boost k-means (paper §3.1, reference [16]): an
// incremental clustering optimiser driven by the explicit objective
// I = Σ_r D_r·D_r / n_r (Eqn. 2), where D_r is the composite (sum) vector of
// cluster r. One sample at a time, the optimiser evaluates the objective
// change ΔI of moving the sample to another cluster (Eqn. 3) and applies the
// best strictly positive move immediately.
//
// Maximising I is equivalent to minimising the k-means distortion because
// n·E = Σ‖x_i‖² − I with Σ‖x_i‖² constant, so distortion tracking is free.
//
// The Optimizer type exposes the move machinery directly; GK-means
// (internal/core) reuses it with graph-pruned candidate sets, which is the
// entire speed-up of the paper.
package bkm

import (
	"fmt"
	"gkmeans/internal/splitmix"
	"time"

	"gkmeans/internal/kmeans"
	"gkmeans/internal/metrics"
	"gkmeans/internal/vec"
)

// Optimizer holds the incremental state of boost k-means over a fixed
// dataset and cluster count: per-cluster composite vectors D_r (float64 to
// survive millions of incremental updates), their squared norms, member
// counts, and the current labelling.
type Optimizer struct {
	Data   *vec.Matrix
	Labels []int
	K      int

	norms  []float32 // ‖x_i‖² per sample
	sumSq  float64   // Σ‖x_i‖²
	comp   []float64 // k×d composite vectors, row-major
	compSq []float64 // ‖D_r‖² per cluster
	counts []int
	dim    int
}

// NewOptimizer builds the incremental state for the given initial labelling.
// labels is used in place (and mutated by Move); it must hold values in
// [0,k).
func NewOptimizer(data *vec.Matrix, labels []int, k int) (*Optimizer, error) {
	if len(labels) != data.N {
		return nil, fmt.Errorf("bkm: %d labels for %d samples", len(labels), data.N)
	}
	if k <= 0 {
		return nil, fmt.Errorf("bkm: k must be positive, got %d", k)
	}
	o := &Optimizer{
		Data:   data,
		Labels: labels,
		K:      k,
		norms:  data.Norms(),
		comp:   make([]float64, k*data.Dim),
		compSq: make([]float64, k),
		counts: make([]int, k),
		dim:    data.Dim,
	}
	for _, nrm := range o.norms {
		o.sumSq += float64(nrm)
	}
	for i, l := range labels {
		if l < 0 || l >= k {
			return nil, fmt.Errorf("bkm: label %d of sample %d out of range [0,%d)", l, i, k)
		}
		o.counts[l]++
		row := data.Row(i)
		base := l * o.dim
		for j, v := range row {
			o.comp[base+j] += float64(v)
		}
	}
	o.RefreshCompSq()
	return o, nil
}

// RefreshCompSq recomputes every ‖D_r‖² exactly. Incremental updates are
// exact in formula but accumulate float64 rounding over very long runs;
// Epoch calls this once per pass to wash any drift.
func (o *Optimizer) RefreshCompSq() {
	for r := 0; r < o.K; r++ {
		base := r * o.dim
		var s float64
		for j := 0; j < o.dim; j++ {
			s += o.comp[base+j] * o.comp[base+j]
		}
		o.compSq[r] = s
	}
}

// Composite returns cluster r's composite vector (aliasing internal state).
func (o *Optimizer) Composite(r int) []float64 {
	return o.comp[r*o.dim : (r+1)*o.dim]
}

// Count returns cluster r's current size.
func (o *Optimizer) Count(r int) int { return o.counts[r] }

// Objective returns I = Σ_r ‖D_r‖²/n_r (Eqn. 2) from cached state.
func (o *Optimizer) Objective() float64 {
	var obj float64
	for r := 0; r < o.K; r++ {
		if o.counts[r] > 0 {
			obj += o.compSq[r] / float64(o.counts[r])
		}
	}
	return obj
}

// Distortion returns the average distortion E = (Σ‖x‖² − I)/n (Eqn. 4).
func (o *Optimizer) Distortion() float64 {
	return metrics.DistortionFromObjective(o.sumSq, o.Objective(), o.Data.N)
}

// DeltaI evaluates Eqn. 3: the objective change of moving sample i from its
// current cluster to cluster v. It returns negative infinity for moves that
// would empty the source cluster, and 0 for v == current.
func (o *Optimizer) DeltaI(i, v int) float64 {
	u := o.Labels[i]
	if v == u {
		return 0
	}
	if o.counts[u] <= 1 {
		return negInf
	}
	x := o.Data.Row(i)
	nx := float64(o.norms[i])
	du := vec.DotMixed(o.Composite(u), x)
	dv := vec.DotMixed(o.Composite(v), x)
	nu, nv := float64(o.counts[u]), float64(o.counts[v])
	return (o.compSq[v]+2*dv+nx)/(nv+1) +
		(o.compSq[u]-2*du+nx)/(nu-1) -
		o.compSq[v]/nv - o.compSq[u]/nu
}

const negInf = -1e308

// BestMove scans the candidate clusters and returns the one maximising ΔI
// together with that ΔI. Candidates equal to the current cluster are
// skipped; moves that would empty the source are rejected. When candidates
// is nil every cluster is considered (plain boost k-means). The source
// term of Eqn. 3 is hoisted out of the loop, so the cost is one dot product
// per distinct candidate.
func (o *Optimizer) BestMove(i int, candidates []int) (int, float64) {
	u := o.Labels[i]
	if o.counts[u] <= 1 {
		return u, 0
	}
	x := o.Data.Row(i)
	nx := float64(o.norms[i])
	du := vec.DotMixed(o.Composite(u), x)
	nu := float64(o.counts[u])
	termU := (o.compSq[u]-2*du+nx)/(nu-1) - o.compSq[u]/nu

	best, bestDelta := u, 0.0
	eval := func(v int) {
		if v == u {
			return
		}
		dv := vec.DotMixed(o.Composite(v), x)
		nv := float64(o.counts[v])
		delta := termU + (o.compSq[v]+2*dv+nx)/(nv+1) - o.compSq[v]/nv
		if delta > bestDelta {
			best, bestDelta = v, delta
		}
	}
	if candidates == nil {
		for v := 0; v < o.K; v++ {
			eval(v)
		}
	} else {
		for _, v := range candidates {
			eval(v)
		}
	}
	return best, bestDelta
}

// Move reassigns sample i to cluster v, updating composites, counts and
// cached squared norms incrementally (exact identities, two dot products).
func (o *Optimizer) Move(i, v int) {
	u := o.Labels[i]
	if u == v {
		return
	}
	x := o.Data.Row(i)
	nx := float64(o.norms[i])
	du := vec.DotMixed(o.Composite(u), x)
	dv := vec.DotMixed(o.Composite(v), x)
	o.compSq[u] += nx - 2*du // ‖D_u−x‖² = ‖D_u‖² − 2D_u·x + ‖x‖²
	o.compSq[v] += nx + 2*dv // ‖D_v+x‖² = ‖D_v‖² + 2D_v·x + ‖x‖²
	cu, cv := o.Composite(u), o.Composite(v)
	for j, val := range x {
		cu[j] -= float64(val)
		cv[j] += float64(val)
	}
	o.counts[u]--
	o.counts[v]++
	o.Labels[i] = v
}

// Epoch performs one boost k-means pass: samples are visited in the given
// order (a permutation; nil means natural order) and each is moved to the
// candidate cluster with the highest strictly positive ΔI. candidatesFor
// restricts the clusters examined for a sample (nil means all clusters).
// It returns the number of accepted moves.
func (o *Optimizer) Epoch(order []int, candidatesFor func(i int) []int) int {
	moves := 0
	n := o.Data.N
	for idx := 0; idx < n; idx++ {
		i := idx
		if order != nil {
			i = order[idx]
		}
		var cands []int
		if candidatesFor != nil {
			cands = candidatesFor(i)
		}
		if v, delta := o.BestMove(i, cands); delta > 0 {
			o.Move(i, v)
			moves++
		}
	}
	o.RefreshCompSq()
	return moves
}

// Centroids materialises the current centroids from the composites.
func (o *Optimizer) Centroids() *vec.Matrix {
	c := vec.NewMatrix(o.K, o.dim)
	for r := 0; r < o.K; r++ {
		if o.counts[r] == 0 {
			continue
		}
		inv := 1 / float64(o.counts[r])
		row := c.Row(r)
		base := r * o.dim
		for j := range row {
			row[j] = float32(o.comp[base+j] * inv)
		}
	}
	return c
}

// Config controls a standalone boost k-means run.
type Config struct {
	K          int
	MaxIter    int   // <=0 selects 100
	Seed       int64 // shuffling and random initial partition
	Trace      bool
	InitLabels []int // optional initial labelling; copied, not mutated
}

// Cluster runs standalone boost k-means: random balanced initial partition
// (unless InitLabels is given), then full-candidate epochs until an epoch
// makes no move. This is the paper's "BKM" baseline — best distortion,
// O(n·k·d) per epoch.
func Cluster(data *vec.Matrix, cfg Config) (*kmeans.Result, error) {
	if cfg.K <= 0 || cfg.K > data.N {
		return nil, fmt.Errorf("bkm: invalid k=%d for n=%d", cfg.K, data.N)
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = 100
	}
	rng := splitmix.New(cfg.Seed)
	start := time.Now()
	labels := make([]int, data.N)
	if cfg.InitLabels != nil {
		if len(cfg.InitLabels) != data.N {
			return nil, fmt.Errorf("bkm: %d init labels for %d samples", len(cfg.InitLabels), data.N)
		}
		copy(labels, cfg.InitLabels)
	} else {
		// Balanced random partition: shuffle then deal round-robin, so no
		// cluster starts empty.
		perm := rng.Perm(data.N)
		for idx, i := range perm {
			labels[i] = idx % cfg.K
		}
	}
	o, err := NewOptimizer(data, labels, cfg.K)
	if err != nil {
		return nil, err
	}
	initTime := time.Since(start)
	res := &kmeans.Result{Labels: labels, K: cfg.K, InitTime: initTime}
	iterStart := time.Now()
	order := make([]int, data.N)
	for i := range order {
		order[i] = i
	}
	for iter := 0; iter < maxIter; iter++ {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		moves := o.Epoch(order, nil)
		res.Iters = iter + 1
		if cfg.Trace {
			res.History = append(res.History, kmeans.IterStat{
				Iter:       iter + 1,
				Distortion: o.Distortion(),
				Moves:      moves,
				Elapsed:    initTime + time.Since(iterStart),
			})
		}
		if moves == 0 {
			break
		}
	}
	res.IterTime = time.Since(iterStart)
	res.Centroids = o.Centroids()
	return res, nil
}
