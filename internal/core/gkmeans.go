// Package core implements the paper's contribution: GK-means (Alg. 2), the
// k-NN-graph driven fast k-means, and the intertwined graph construction
// process (Alg. 3) that builds the graph by repeatedly calling GK-means on
// its own intermediate clusterings.
//
// The speed-up: in every optimisation step a sample is compared only against
// the clusters in which its κ approximate nearest neighbours currently live
// (plus its own), instead of against all k clusters. Because neighbours
// overwhelmingly share clusters (paper Fig. 1), the candidate set is tiny —
// usually far below κ after deduplication — making the per-epoch cost
// O(n·κ·d), independent of k.
package core

import (
	"fmt"
	"gkmeans/internal/splitmix"
	"time"

	"gkmeans/internal/bkm"
	"gkmeans/internal/kmeans"
	"gkmeans/internal/knngraph"
	"gkmeans/internal/metrics"
	"gkmeans/internal/twomeans"
	"gkmeans/internal/vec"
)

// Config controls one GK-means clustering run (Alg. 2).
type Config struct {
	K           int
	MaxIter     int   // optimisation epochs; <=0 selects 50
	Seed        int64 // 2M-tree initialisation and epoch shuffling
	Trace       bool  // record per-epoch distortion history
	InitLabels  []int // optional initial clustering; nil runs the 2M tree (Alg. 2 line 3)
	Traditional bool  // GK-means−: nearest-centroid moves instead of boost k-means ΔI moves

	// Interrupt, when non-nil, is polled before every optimisation epoch;
	// a non-nil return aborts the run with that error. Context cancellation
	// is plumbed through this hook.
	Interrupt func() error
	// OnEpoch, when non-nil, observes every completed epoch: the 1-based
	// epoch number and the epoch cap. Progress reporting hangs off it.
	OnEpoch func(epoch, maxIter int)
}

// Result extends the common clustering result with the statistic that
// demonstrates the paper's point: how many distinct clusters a sample
// actually had to examine per epoch (≪ k, and ≤ κ).
type Result struct {
	*kmeans.Result
	// AvgCandidates is the mean number of distinct candidate clusters
	// examined per sample per optimisation epoch (own cluster excluded).
	AvgCandidates float64
}

// Cluster runs GK-means over data with the support of the given k-NN graph.
// The graph may come from BuildGraph (Alg. 3, the standard configuration),
// from NN-Descent ("KGraph+GK-means"), or from any other construction — the
// algorithm only reads neighbour ids.
func Cluster(data *vec.Matrix, g *knngraph.Graph, cfg Config) (*Result, error) {
	n := data.N
	if cfg.K <= 0 || cfg.K > n {
		return nil, fmt.Errorf("core: invalid k=%d for n=%d", cfg.K, n)
	}
	if g == nil || g.N() != n {
		return nil, fmt.Errorf("core: graph size mismatch (graph %d, data %d)", graphN(g), n)
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = 50
	}
	rng := splitmix.New(cfg.Seed)

	// Alg. 2 line 3: initial clusters from the two-means tree.
	start := time.Now()
	var labels []int
	if cfg.InitLabels != nil {
		if len(cfg.InitLabels) != n {
			return nil, fmt.Errorf("core: %d init labels for %d samples", len(cfg.InitLabels), n)
		}
		labels = append([]int(nil), cfg.InitLabels...)
	} else {
		var err error
		labels, err = twomeans.Cluster(data, twomeans.Config{K: cfg.K, Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("core: 2M-tree initialisation: %w", err)
		}
	}
	initTime := time.Since(start)

	if cfg.Traditional {
		return clusterTraditional(data, g, cfg, labels, initTime, maxIter, &rng)
	}
	return clusterBoost(data, g, cfg, labels, initTime, maxIter, &rng)
}

func graphN(g *knngraph.Graph) int {
	if g == nil {
		return -1
	}
	return g.N()
}

// candidateCollector gathers the distinct clusters of a sample's graph
// neighbours (Alg. 2 lines 7–11) with O(1) stamp-based deduplication.
type candidateCollector struct {
	seen  []int
	stamp int
	buf   []int
}

func newCandidateCollector(k, kappa int) *candidateCollector {
	c := &candidateCollector{seen: make([]int, k), buf: make([]int, 0, kappa+1)}
	for i := range c.seen {
		c.seen[i] = -1
	}
	return c
}

// collect returns the distinct clusters of i's neighbours, excluding cur.
// The returned slice is reused between calls.
func (c *candidateCollector) collect(g *knngraph.Graph, labels []int, i, cur int) []int {
	c.stamp++
	c.buf = c.buf[:0]
	c.seen[cur] = c.stamp
	for _, nb := range g.Lists[i] {
		cl := labels[nb.ID]
		if c.seen[cl] != c.stamp {
			c.seen[cl] = c.stamp
			c.buf = append(c.buf, cl)
		}
	}
	return c.buf
}

// clusterBoost is the standard GK-means: boost k-means moves restricted to
// graph candidates.
func clusterBoost(data *vec.Matrix, g *knngraph.Graph, cfg Config, labels []int,
	initTime time.Duration, maxIter int, rng *splitmix.Stream) (*Result, error) {

	o, err := bkm.NewOptimizer(data, labels, cfg.K)
	if err != nil {
		return nil, err
	}
	res := &Result{Result: &kmeans.Result{Labels: labels, K: cfg.K, InitTime: initTime}}
	iterStart := time.Now()
	order := make([]int, data.N)
	for i := range order {
		order[i] = i
	}
	coll := newCandidateCollector(cfg.K, g.Kappa)
	var candTotal, candSamples int64
	for iter := 0; iter < maxIter; iter++ {
		if cfg.Interrupt != nil {
			if err := cfg.Interrupt(); err != nil {
				return nil, err
			}
		}
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		moves := 0
		for _, i := range order {
			cands := coll.collect(g, labels, i, labels[i])
			candTotal += int64(len(cands))
			candSamples++
			if len(cands) == 0 {
				continue
			}
			if v, delta := o.BestMove(i, cands); delta > 0 {
				o.Move(i, v)
				moves++
			}
		}
		o.RefreshCompSq()
		res.Iters = iter + 1
		if cfg.Trace {
			res.History = append(res.History, kmeans.IterStat{
				Iter:       iter + 1,
				Distortion: o.Distortion(),
				Moves:      moves,
				Elapsed:    initTime + time.Since(iterStart),
			})
		}
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(iter+1, maxIter)
		}
		if moves == 0 {
			break
		}
	}
	res.IterTime = time.Since(iterStart)
	res.Centroids = o.Centroids()
	if candSamples > 0 {
		res.AvgCandidates = float64(candTotal) / float64(candSamples)
	}
	return res, nil
}

// clusterTraditional is GK-means− (paper §4.2, last paragraph): the same
// candidate pruning applied to traditional nearest-centroid k-means.
// Centroids are maintained incrementally across moves and recomputed
// exactly at the end of each epoch to wash float drift.
func clusterTraditional(data *vec.Matrix, g *knngraph.Graph, cfg Config, labels []int,
	initTime time.Duration, maxIter int, rng *splitmix.Stream) (*Result, error) {

	n := data.N
	centroids := metrics.Centroids(data, labels, cfg.K)
	counts := metrics.ClusterSizes(labels, cfg.K)
	res := &Result{Result: &kmeans.Result{Labels: labels, K: cfg.K, InitTime: initTime}}
	iterStart := time.Now()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	coll := newCandidateCollector(cfg.K, g.Kappa)
	var candTotal, candSamples int64
	for iter := 0; iter < maxIter; iter++ {
		if cfg.Interrupt != nil {
			if err := cfg.Interrupt(); err != nil {
				return nil, err
			}
		}
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		moves := 0
		for _, i := range order {
			cur := labels[i]
			cands := coll.collect(g, labels, i, cur)
			candTotal += int64(len(cands))
			candSamples++
			if len(cands) == 0 || counts[cur] <= 1 {
				continue
			}
			row := data.Row(i)
			best, bestD := cur, vec.L2Sqr(row, centroids.Row(cur))
			for _, c := range cands {
				if d := vec.L2Sqr(row, centroids.Row(c)); d < bestD {
					best, bestD = c, d
				}
			}
			if best != cur {
				moveCentroid(centroids, counts, row, cur, best)
				labels[i] = best
				moves++
			}
		}
		// Exact recomputation: incremental float32 centroid updates drift.
		centroids = metrics.Centroids(data, labels, cfg.K)
		res.Iters = iter + 1
		if cfg.Trace {
			res.History = append(res.History, kmeans.IterStat{
				Iter:       iter + 1,
				Distortion: metrics.AverageDistortion(data, labels, centroids),
				Moves:      moves,
				Elapsed:    initTime + time.Since(iterStart),
			})
		}
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(iter+1, maxIter)
		}
		if moves == 0 {
			break
		}
	}
	res.IterTime = time.Since(iterStart)
	res.Centroids = centroids
	if candSamples > 0 {
		res.AvgCandidates = float64(candTotal) / float64(candSamples)
	}
	return res, nil
}

// moveCentroid updates the two affected centroids for moving x from u to v:
// c_u ← (n_u·c_u − x)/(n_u−1), c_v ← (n_v·c_v + x)/(n_v+1).
func moveCentroid(centroids *vec.Matrix, counts []int, x []float32, u, v int) {
	cu, cv := centroids.Row(u), centroids.Row(v)
	nu, nv := float32(counts[u]), float32(counts[v])
	for j := range x {
		cu[j] = (nu*cu[j] - x[j]) / (nu - 1)
		cv[j] = (nv*cv[j] + x[j]) / (nv + 1)
	}
	counts[u]--
	counts[v]++
}
