package core

import (
	"fmt"
	"gkmeans/internal/splitmix"
	"sync/atomic"

	"gkmeans/internal/knngraph"
	"gkmeans/internal/nndescent"
	"gkmeans/internal/parallel"
	"gkmeans/internal/vec"
)

// Graph builder names accepted by GraphConfig.Builder.
const (
	BuilderGKMeans   = "gkmeans"   // the paper's intertwined process (Alg. 3); the default
	BuilderNNDescent = "nndescent" // the KGraph baseline (Dong et al., WWW 2011)
)

// saltRounds tags the stream that draws the per-round clustering seeds of
// BuildGraph, decorrelating it from every other derivation of cfg.Seed.
const saltRounds uint64 = 0x524e4453 // "RNDS"

// GraphConfig controls the intertwined k-NN graph construction (Alg. 3).
// The paper's defaults (§4.4): Tau=10, Xi=50, Kappa=50; Tau up to 32 when
// the graph is built for ANN search rather than clustering.
type GraphConfig struct {
	Kappa   int // neighbours per node (κ); <=0 selects 50
	Xi      int // target cluster size for the refinement clusters (ξ); <=0 selects 50
	Tau     int // construction rounds (τ); <=0 selects 10 (nndescent: its own 30-round cap)
	Seed    int64
	Workers int // parallel workers for init, refinement and NN-Descent joins; <=0 selects GOMAXPROCS

	// Builder selects the construction algorithm: BuilderGKMeans (also the
	// "" default) or BuilderNNDescent. Both honour Seed, Kappa, Tau and
	// Workers and produce worker-count-independent output; Xi only applies
	// to the gkmeans builder.
	Builder string

	// OnRound, when non-nil, observes each round: the round number t
	// (1-based), the graph after refinement, and the clustering used for
	// the round. Fig. 2 of the paper is generated from this hook. The
	// nndescent builder keeps its neighbour lists private until the build
	// finishes, so it invokes the hook with a nil graph and nil labels.
	OnRound func(t int, g *knngraph.Graph, labels []int)

	// Interrupt, when non-nil, is polled before every construction round;
	// a non-nil return aborts the build with that error. Context
	// cancellation is plumbed through this hook.
	Interrupt func() error
}

// GraphStats reports the work a graph build performed, for benchmarks and
// the CI perf trajectory.
type GraphStats struct {
	Builder string // resolved builder name
	Rounds  int    // construction rounds actually run
	// DistComps counts the distance computations spent updating the graph:
	// random initialisation plus in-cluster refinement for the gkmeans
	// builder (the per-round clustering passes keep their own economy and
	// are excluded), initialisation plus local joins for nndescent.
	DistComps int64
}

// BuildGraph constructs an approximate k-NN graph by the paper's
// self-evolving process (Alg. 3): starting from a random graph, each round
// (1) runs one GK-means pass that partitions the data into clusters of
// roughly ξ members using the current graph, then (2) exhaustively compares
// samples *within* each cluster and feeds closer pairs back into the graph.
// Cluster structure and graph quality improve alternately (Fig. 3).
// GraphConfig.Builder swaps in the NN-Descent baseline instead.
func BuildGraph(data *vec.Matrix, cfg GraphConfig) (*knngraph.Graph, error) {
	g, _, err := BuildGraphWithStats(data, cfg)
	return g, err
}

// BuildGraphWithStats is BuildGraph plus work counters.
func BuildGraphWithStats(data *vec.Matrix, cfg GraphConfig) (*knngraph.Graph, GraphStats, error) {
	switch cfg.Builder {
	case "", BuilderGKMeans:
		return buildIntertwined(data, cfg)
	case BuilderNNDescent:
		return buildNNDescent(data, cfg)
	default:
		return nil, GraphStats{}, fmt.Errorf("core: unknown graph builder %q (want %q or %q)",
			cfg.Builder, BuilderGKMeans, BuilderNNDescent)
	}
}

// buildIntertwined is Alg. 3, the paper's standard configuration.
func buildIntertwined(data *vec.Matrix, cfg GraphConfig) (*knngraph.Graph, GraphStats, error) {
	stats := GraphStats{Builder: BuilderGKMeans}
	n := data.N
	if n < 2 {
		return nil, stats, fmt.Errorf("core: BuildGraph needs at least 2 samples, got %d", n)
	}
	kappa := cfg.Kappa
	if kappa <= 0 {
		kappa = 50
	}
	if kappa >= n {
		kappa = n - 1
	}
	xi := cfg.Xi
	if xi <= 0 {
		xi = 50
	}
	tau := cfg.Tau
	if tau <= 0 {
		tau = 10
	}
	k0 := n / xi // Alg. 3 line 5
	if k0 < 1 {
		k0 = 1
	}

	// Alg. 3 line 4: random initial graph, built across the worker pool.
	g, initComps := knngraph.RandomN(data, kappa, cfg.Seed, cfg.Workers)
	var refineComps atomic.Int64
	// Per-round clustering seeds come from a stream salted away from the
	// initial-graph streams derived from the same cfg.Seed inside RandomN.
	rng := splitmix.New(cfg.Seed, saltRounds)
	for t := 0; t < tau; t++ {
		if cfg.Interrupt != nil {
			if err := cfg.Interrupt(); err != nil {
				return nil, stats, err
			}
		}
		// Line 7: one GK-means pass (the inner iteration count is fixed to
		// 1, §4.5). The seed varies per round so the 2M tree produces a
		// fresh partition each time; diversity across rounds is what lets
		// the union of in-cluster comparisons cover true neighbourhoods.
		res, err := Cluster(data, g, Config{K: k0, MaxIter: 1, Seed: rng.Int63()})
		if err != nil {
			return nil, stats, fmt.Errorf("core: BuildGraph round %d: %w", t+1, err)
		}
		refine(data, g, res.Labels, k0, cfg.Workers, &refineComps)
		stats.Rounds = t + 1
		if cfg.OnRound != nil {
			cfg.OnRound(t+1, g, res.Labels)
		}
	}
	stats.DistComps = initComps + refineComps.Load()
	return g, stats, nil
}

// buildNNDescent dispatches to the KGraph baseline builder, mapping the
// shared knobs: Tau, when set, caps the NN-Descent rounds (its own
// δ-termination usually stops earlier); Xi has no meaning there.
func buildNNDescent(data *vec.Matrix, cfg GraphConfig) (*knngraph.Graph, GraphStats, error) {
	stats := GraphStats{Builder: BuilderNNDescent}
	kappa := cfg.Kappa
	if kappa <= 0 {
		kappa = 50
	}
	var onRound func(round, updates int)
	if cfg.OnRound != nil {
		hook := cfg.OnRound
		onRound = func(round, _ int) { hook(round, nil, nil) }
	}
	g, ns, err := nndescent.BuildWithStats(data, nndescent.Config{
		Kappa:     kappa,
		MaxRounds: cfg.Tau,
		Seed:      cfg.Seed,
		Workers:   cfg.Workers,
		OnRound:   onRound,
		Interrupt: cfg.Interrupt,
	})
	if err != nil {
		return nil, stats, err
	}
	stats.Rounds = ns.Rounds
	stats.DistComps = ns.DistComps
	return g, stats, nil
}

// refine performs Alg. 3 lines 8–14: exhaustive pairwise comparison within
// each cluster, updating both endpoints' k-NN lists. Each sample belongs to
// exactly one cluster, so refinement parallelises safely across clusters.
// distComps, when non-nil, accumulates the distances actually computed
// (lookups served from either endpoint's list are free).
func refine(data *vec.Matrix, g *knngraph.Graph, labels []int, k int, workers int, distComps *atomic.Int64) {
	clusters := make([][]int32, k)
	for i, l := range labels {
		clusters[l] = append(clusters[l], int32(i))
	}
	parallel.For(k, workers, func(lo, hi int) {
		var comps int64
		for c := lo; c < hi; c++ {
			members := clusters[c]
			for a := 0; a < len(members); a++ {
				ia := members[a]
				rowA := data.Row(int(ia))
				for b := a + 1; b < len(members); b++ {
					ib := members[b]
					// The "visited" check (Alg. 3 line 10): never score an
					// edge twice. If either endpoint already stores it,
					// reuse that distance; only compute when the edge is
					// entirely new.
					d, inA := g.Lookup(int(ia), ib)
					var inB bool
					if !inA {
						d, inB = g.Lookup(int(ib), ia)
					} else {
						inB = g.Contains(int(ib), ia)
					}
					if inA && inB {
						continue
					}
					if !inA && !inB {
						d = vec.L2Sqr(rowA, data.Row(int(ib)))
						comps++
					}
					if !inA {
						g.Insert(int(ia), ib, d)
					}
					if !inB {
						g.Insert(int(ib), ia, d)
					}
				}
			}
		}
		if distComps != nil {
			distComps.Add(comps)
		}
	})
}
