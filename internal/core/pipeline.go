package core

import (
	"time"

	"gkmeans/internal/knngraph"
	"gkmeans/internal/vec"
)

// PipelineConfig configures the complete two-step GK-means of the paper
// (§4.3 summary): first build the approximate k-NN graph with Alg. 3, then
// run the graph-supported clustering of Alg. 2.
type PipelineConfig struct {
	K     int
	Graph GraphConfig // phase 1 (Alg. 3)
	Run   Config      // phase 2 (Alg. 2); its K field is overridden by K
}

// PipelineResult carries the outcome of both phases.
type PipelineResult struct {
	*Result
	Graph     *knngraph.Graph
	GraphTime time.Duration // wall clock of phase 1
}

// GKMeans runs the full pipeline: graph construction followed by clustering.
// Because the graph is built from intermediate clustering structures, it
// carries "prior knowledge" of how samples organise into clusters — the
// reason the paper's standard configuration beats KGraph+GK-means in final
// distortion despite lower graph recall (Table 2).
func GKMeans(data *vec.Matrix, cfg PipelineConfig) (*PipelineResult, error) {
	start := time.Now()
	g, err := BuildGraph(data, cfg.Graph)
	if err != nil {
		return nil, err
	}
	graphTime := time.Since(start)
	run := cfg.Run
	run.K = cfg.K
	res, err := Cluster(data, g, run)
	if err != nil {
		return nil, err
	}
	return &PipelineResult{Result: res, Graph: g, GraphTime: graphTime}, nil
}
