package core

// Failure-injection tests: GK-means must behave sanely when the supporting
// graph is degenerate, adversarial or low quality — the graph is an
// *approximation*, so the clustering must never rely on its correctness for
// structural validity, only for quality.

import (
	"math/rand"
	"testing"

	"gkmeans/internal/bkm"
	"gkmeans/internal/dataset"
	"gkmeans/internal/knngraph"
	"gkmeans/internal/metrics"
)

func TestClusterWithEmptyGraphListsStillValid(t *testing.T) {
	// A graph with empty lists gives every sample an empty candidate set:
	// no moves can happen, but the result must still be a valid k-way
	// partition (the 2M-tree initialisation).
	data := dataset.Uniform(200, 6, 1)
	g := knngraph.New(200, 5) // all lists empty
	res, err := Cluster(data, g, Config{K: 10, MaxIter: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(data.N); err != nil {
		t.Fatal(err)
	}
	if res.AvgCandidates != 0 {
		t.Fatalf("empty graph should yield 0 candidates, got %v", res.AvgCandidates)
	}
	sizes := metrics.ClusterSizes(res.Labels, 10)
	if metrics.NonEmpty(sizes) != 10 {
		t.Fatalf("partition broken: %v", sizes)
	}
}

func TestClusterWithAdversarialGraph(t *testing.T) {
	// A graph whose every list points at the same far-away node is
	// maximally misleading. Clustering must stay valid and, because BKM
	// only accepts strictly improving moves, distortion must not exceed
	// the 2M-tree initialisation's distortion.
	data := dataset.SIFTLike(300, 3)
	g := knngraph.New(300, 3)
	for i := 0; i < 300; i++ {
		target := int32((i + 150) % 300)
		g.Insert(i, target, 1) // wrong distances too
	}
	init, err := Cluster(data, knngraph.New(300, 3), Config{K: 15, MaxIter: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	eInit := metrics.DistortionFromLabels(data, init.Labels, 15)
	res, err := Cluster(data, g, Config{K: 15, MaxIter: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	eRes := metrics.AverageDistortion(data, res.Labels, res.Centroids)
	if eRes > eInit*1.0001 {
		t.Fatalf("adversarial graph made distortion worse than init: %v vs %v", eRes, eInit)
	}
}

func TestClusterWithWrongDistancesInGraph(t *testing.T) {
	// Candidate collection only reads neighbour *ids*; corrupt distances
	// must not change the result at all.
	data := dataset.GloVeLike(250, 5)
	g, err := BuildGraph(data, GraphConfig{Kappa: 6, Xi: 20, Tau: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	corrupted := g.Clone()
	rng := rand.New(rand.NewSource(7))
	for i := range corrupted.Lists {
		for j := range corrupted.Lists[i] {
			corrupted.Lists[i][j].Dist = rng.Float32() // nonsense, unsorted
		}
	}
	a, err := Cluster(data, g, Config{K: 12, MaxIter: 8, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(data, corrupted, Config{K: 12, MaxIter: 8, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("corrupted distances changed the clustering — ids alone must decide")
		}
	}
}

func TestLowQualityGraphDegradesGracefully(t *testing.T) {
	// Random graph (recall ≈ 0) must still produce a usable clustering —
	// worse than a good graph, but far better than random labels.
	data := dataset.SIFTLike(800, 9)
	k := 20
	randomG := knngraph.Random(data, 10, 10)
	goodG, err := BuildGraph(data, GraphConfig{Kappa: 10, Xi: 25, Tau: 6, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	onRandom, err := Cluster(data, randomG, Config{K: k, MaxIter: 15, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	onGood, err := Cluster(data, goodG, Config{K: k, MaxIter: 15, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	eRandomG := metrics.AverageDistortion(data, onRandom.Labels, onRandom.Centroids)
	eGoodG := metrics.AverageDistortion(data, onGood.Labels, onGood.Centroids)
	if eGoodG > eRandomG*1.001 {
		t.Fatalf("better graph should not hurt: good %v vs random %v", eGoodG, eRandomG)
	}
	rng := rand.New(rand.NewSource(13))
	randLabels := make([]int, data.N)
	for i := range randLabels {
		randLabels[i] = rng.Intn(k)
	}
	eRandLabels := metrics.DistortionFromLabels(data, randLabels, k)
	if eRandomG > eRandLabels*0.95 {
		t.Fatalf("random-graph clustering %v not clearly better than random labels %v",
			eRandomG, eRandLabels)
	}
}

func TestBuildGraphExtremeParameters(t *testing.T) {
	data := dataset.Uniform(100, 4, 14)
	// xi = 1: every refinement cluster is (nearly) a singleton — no pairs,
	// graph stays random, but nothing crashes.
	g, err := BuildGraph(data, GraphConfig{Kappa: 4, Xi: 1, Tau: 2, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// kappa > n clamps.
	g, err = BuildGraph(data, GraphConfig{Kappa: 500, Xi: 20, Tau: 1, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	if g.Kappa != 99 {
		t.Fatalf("kappa should clamp to n-1, got %d", g.Kappa)
	}
}

func TestOptimizerSingletonClustersEverywhere(t *testing.T) {
	// k = n: every cluster is a singleton; no move is ever legal, and an
	// epoch must report zero moves rather than emptying clusters.
	data := dataset.Uniform(30, 3, 17)
	labels := make([]int, 30)
	for i := range labels {
		labels[i] = i
	}
	o, err := bkm.NewOptimizer(data, labels, 30)
	if err != nil {
		t.Fatal(err)
	}
	if moves := o.Epoch(nil, nil); moves != 0 {
		t.Fatalf("singleton clusters moved %d samples", moves)
	}
	for r := 0; r < 30; r++ {
		if o.Count(r) != 1 {
			t.Fatalf("cluster %d size %d", r, o.Count(r))
		}
	}
}
