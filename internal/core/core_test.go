package core

import (
	"math/rand"
	"testing"

	"gkmeans/internal/bkm"
	"gkmeans/internal/dataset"
	"gkmeans/internal/knngraph"
	"gkmeans/internal/metrics"
)

func TestClusterCloseToFullBKM(t *testing.T) {
	// The paper's headline quality claim: GK-means lands within a few
	// percent of exhaustive boost k-means while examining far fewer
	// clusters per sample.
	data := dataset.SIFTLike(1500, 1)
	k := 50
	g, err := BuildGraph(data, GraphConfig{Kappa: 10, Xi: 30, Tau: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	gres, err := Cluster(data, g, Config{K: k, MaxIter: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := gres.Validate(data.N); err != nil {
		t.Fatal(err)
	}
	bres, err := bkm.Cluster(data, bkm.Config{K: k, MaxIter: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	eG := metrics.AverageDistortion(data, gres.Labels, gres.Centroids)
	eB := metrics.AverageDistortion(data, bres.Labels, bres.Centroids)
	if eG > eB*1.10 {
		t.Fatalf("GK-means distortion %.2f more than 10%% above BKM %.2f", eG, eB)
	}
	// The candidate statistic must demonstrate the pruning.
	if gres.AvgCandidates >= float64(k)/2 {
		t.Fatalf("avg candidates %.1f not clearly below k=%d", gres.AvgCandidates, k)
	}
	if gres.AvgCandidates <= 0 {
		t.Fatal("candidate statistic not recorded")
	}
}

func TestClusterCandidatesBoundedByKappa(t *testing.T) {
	data := dataset.GloVeLike(400, 2)
	g := knngraph.Random(data, 8, 1)
	res, err := Cluster(data, g, Config{K: 20, MaxIter: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgCandidates > 8 {
		t.Fatalf("avg candidates %.2f exceeds kappa=8", res.AvgCandidates)
	}
}

func TestClusterTraditionalVariant(t *testing.T) {
	data := dataset.SIFTLike(1000, 4)
	k := 25
	g, err := BuildGraph(data, GraphConfig{Kappa: 10, Xi: 25, Tau: 5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tres, err := Cluster(data, g, Config{K: k, MaxIter: 25, Seed: 6, Traditional: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := tres.Validate(data.N); err != nil {
		t.Fatal(err)
	}
	bres, err := Cluster(data, g, Config{K: k, MaxIter: 25, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	eT := metrics.AverageDistortion(data, tres.Labels, tres.Centroids)
	eB := metrics.AverageDistortion(data, bres.Labels, bres.Centroids)
	// Paper Fig. 4: the boost-k-means-based variant shows lower distortion
	// than GK-means− at the same graph quality. Allow generous noise.
	if eB > eT*1.05 {
		t.Fatalf("boost variant (%.2f) clearly worse than traditional (%.2f)", eB, eT)
	}
}

func TestClusterTraditionalKeepsClustersAlive(t *testing.T) {
	data := dataset.Uniform(300, 8, 7)
	g := knngraph.Random(data, 6, 2)
	res, err := Cluster(data, g, Config{K: 30, MaxIter: 15, Seed: 8, Traditional: true})
	if err != nil {
		t.Fatal(err)
	}
	sizes := metrics.ClusterSizes(res.Labels, 30)
	for r, s := range sizes {
		if s == 0 {
			t.Fatalf("cluster %d empty", r)
		}
	}
}

func TestClusterErrors(t *testing.T) {
	data := dataset.Uniform(20, 4, 1)
	g := knngraph.Random(data, 4, 1)
	if _, err := Cluster(data, g, Config{K: 0}); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := Cluster(data, g, Config{K: 21}); err == nil {
		t.Fatal("k>n should error")
	}
	if _, err := Cluster(data, nil, Config{K: 2}); err == nil {
		t.Fatal("nil graph should error")
	}
	other := knngraph.Random(dataset.Uniform(10, 4, 2), 3, 1)
	if _, err := Cluster(data, other, Config{K: 2}); err == nil {
		t.Fatal("graph size mismatch should error")
	}
	if _, err := Cluster(data, g, Config{K: 2, InitLabels: []int{0}}); err == nil {
		t.Fatal("short init labels should error")
	}
}

func TestClusterWithInitLabelsSkipsTree(t *testing.T) {
	data := dataset.Uniform(100, 4, 9)
	g := knngraph.Random(data, 5, 3)
	rng := rand.New(rand.NewSource(10))
	init := make([]int, 100)
	for i := range init {
		init[i] = rng.Intn(10)
	}
	initCopy := append([]int(nil), init...)
	res, err := Cluster(data, g, Config{K: 10, MaxIter: 5, Seed: 11, InitLabels: init})
	if err != nil {
		t.Fatal(err)
	}
	for i := range init {
		if init[i] != initCopy[i] {
			t.Fatal("InitLabels mutated")
		}
	}
	if err := res.Validate(data.N); err != nil {
		t.Fatal(err)
	}
}

func TestClusterDeterministic(t *testing.T) {
	data := dataset.SIFTLike(300, 12)
	g, _ := BuildGraph(data, GraphConfig{Kappa: 8, Xi: 20, Tau: 3, Seed: 13})
	a, _ := Cluster(data, g, Config{K: 15, MaxIter: 10, Seed: 14})
	b, _ := Cluster(data, g, Config{K: 15, MaxIter: 10, Seed: 14})
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed produced different labels")
		}
	}
}

func TestClusterTrace(t *testing.T) {
	data := dataset.Uniform(200, 6, 15)
	g := knngraph.Random(data, 6, 4)
	res, err := Cluster(data, g, Config{K: 10, MaxIter: 8, Seed: 16, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != res.Iters {
		t.Fatalf("history %d for %d iters", len(res.History), res.Iters)
	}
	// Boost-variant distortion must be non-increasing across epochs.
	for i := 1; i < len(res.History); i++ {
		if res.History[i].Distortion > res.History[i-1].Distortion*1.0001 {
			t.Fatalf("distortion rose at epoch %d: %v -> %v",
				i, res.History[i-1].Distortion, res.History[i].Distortion)
		}
	}
}

func TestBuildGraphRecallImprovesWithTau(t *testing.T) {
	// Fig. 2 of the paper: recall climbs steeply over the first rounds.
	data := dataset.SIFTLike(1000, 17)
	exact := knngraph.BruteForce(data, 10, 0)
	var recalls []float64
	_, err := BuildGraph(data, GraphConfig{
		Kappa: 10, Xi: 25, Tau: 8, Seed: 18,
		OnRound: func(t int, g *knngraph.Graph, labels []int) {
			recalls = append(recalls, g.Recall(exact))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recalls) != 8 {
		t.Fatalf("OnRound fired %d times, want 8", len(recalls))
	}
	if recalls[7] < 0.7 {
		t.Fatalf("final recall %.3f too low; trajectory %v", recalls[7], recalls)
	}
	if recalls[7] < recalls[0] {
		t.Fatalf("recall did not improve: %v", recalls)
	}
}

func TestBuildGraphValidAndDeterministic(t *testing.T) {
	data := dataset.GloVeLike(400, 19)
	a, err := BuildGraph(data, GraphConfig{Kappa: 8, Xi: 20, Tau: 4, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	b, _ := BuildGraph(data, GraphConfig{Kappa: 8, Xi: 20, Tau: 4, Seed: 20})
	for i := range a.Lists {
		if len(a.Lists[i]) != len(b.Lists[i]) {
			t.Fatal("same seed produced different graphs")
		}
		for j := range a.Lists[i] {
			if a.Lists[i][j] != b.Lists[i][j] {
				t.Fatal("same seed produced different graphs")
			}
		}
	}
}

func TestBuildGraphSmallInputs(t *testing.T) {
	if _, err := BuildGraph(dataset.Uniform(1, 4, 1), GraphConfig{}); err == nil {
		t.Fatal("n=1 should error")
	}
	// n smaller than xi: a single refinement cluster (k0=1) makes the graph
	// exact after one round.
	data := dataset.Uniform(30, 4, 21)
	g, err := BuildGraph(data, GraphConfig{Kappa: 5, Xi: 50, Tau: 1, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	exact := knngraph.BruteForce(data, 5, 0)
	if r := g.Recall(exact); r != 1 {
		t.Fatalf("single-cluster refinement should be exact, recall %v", r)
	}
}

func TestBuildGraphDefaultsApplied(t *testing.T) {
	data := dataset.Uniform(120, 4, 23)
	g, err := BuildGraph(data, GraphConfig{Tau: 1, Seed: 24}) // Kappa, Xi default
	if err != nil {
		t.Fatal(err)
	}
	if g.Kappa != 50 { // default κ=50 (clamped only when n-1 < 50)
		t.Fatalf("kappa %d, want default 50", g.Kappa)
	}
}

func TestGKMeansPipeline(t *testing.T) {
	data := dataset.SIFTLike(800, 25)
	res, err := GKMeans(data, PipelineConfig{
		K:     20,
		Graph: GraphConfig{Kappa: 10, Xi: 25, Tau: 5, Seed: 26},
		Run:   Config{MaxIter: 20, Seed: 27},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(data.N); err != nil {
		t.Fatal(err)
	}
	if res.Graph == nil || res.GraphTime <= 0 {
		t.Fatal("pipeline must report the graph and its build time")
	}
	// Distortion far better than a random labelling.
	rng := rand.New(rand.NewSource(28))
	randLabels := make([]int, data.N)
	for i := range randLabels {
		randLabels[i] = rng.Intn(20)
	}
	eRand := metrics.DistortionFromLabels(data, randLabels, 20)
	eRes := metrics.AverageDistortion(data, res.Labels, res.Centroids)
	if eRes > eRand*0.9 {
		t.Fatalf("pipeline distortion %.2f not clearly below random %.2f", eRes, eRand)
	}
}

func TestGKMeansPipelinePropagatesErrors(t *testing.T) {
	data := dataset.Uniform(30, 4, 1)
	if _, err := GKMeans(data, PipelineConfig{K: 31, Graph: GraphConfig{Tau: 1}}); err == nil {
		t.Fatal("invalid k should propagate")
	}
	if _, err := GKMeans(dataset.Uniform(1, 4, 1), PipelineConfig{K: 1}); err == nil {
		t.Fatal("tiny data should propagate graph error")
	}
}
