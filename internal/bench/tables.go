package bench

import (
	"fmt"
	"time"

	"gkmeans/internal/anns"
	"gkmeans/internal/core"
	"gkmeans/internal/dataset"
)

// Table1 renders the dataset overview of the paper's Table 1 together with
// the synthetic substitutes this reproduction uses.
func Table1() *Table {
	t := &Table{
		Title:  "Table 1 — datasets (paper corpora and synthetic substitutes)",
		Header: []string{"name", "paper corpus", "dim", "data type", "substitute"},
	}
	for _, in := range dataset.Registry() {
		t.AddRow(in.Name, in.PaperRef, d(in.Dim), in.Kind, "Gaussian mixture, matched dim/range")
	}
	return t
}

// Table2Config sizes the huge-k experiment of Table 2: partitioning the
// VLAD-like corpus into n/10 clusters (the paper partitions 10M vectors
// into 1M clusters) with the only two methods workable at that ratio, plus
// the KGraph-supplied configuration.
type Table2Config struct {
	N     int // <=0 selects 10000 (k = n/10)
	Iters int // <=0 selects 10
	Seed  int64
	Kappa int // <=0 selects 20
	Tau   int // <=0 selects 8
}

func (c *Table2Config) defaults() {
	if c.N <= 0 {
		c.N = 10000
	}
	if c.Iters <= 0 {
		c.Iters = 10
	}
	if c.Kappa <= 0 {
		c.Kappa = 20
	}
	if c.Tau <= 0 {
		c.Tau = 8
	}
}

// Table2 reproduces paper Table 2: init/iteration/total wall clock, final
// distortion E, and graph recall for KGraph+GK-means, GK-means and closure
// k-means at k = n/10.
func Table2(cfg Table2Config) (*Table, error) {
	cfg.defaults()
	data, err := Gen("vlad", cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	k := data.N / 10
	if k < 2 {
		return nil, fmt.Errorf("bench: table2 needs n >= 20")
	}
	t := &Table{
		Title:  fmt.Sprintf("Table 2 — huge-k partition (VLAD-like, n=%d, k=%d)", data.N, k),
		Header: []string{"method", "init", "iter", "total", "E", "graph recall"},
	}
	run := RunConfig{K: k, Iters: cfg.Iters, Seed: cfg.Seed, Kappa: cfg.Kappa, Tau: cfg.Tau}
	for _, m := range []string{MKGraphGK, MGKMeans, MClosure} {
		res, err := Run(m, data, run)
		if err != nil {
			return nil, err
		}
		recall := "N.A."
		if res.Recall > 0 || m != MClosure {
			recall = f3(res.Recall)
		}
		t.AddRow(m, dur(res.InitTime), dur(res.IterTime),
			dur(res.InitTime+res.IterTime), f(res.Distortion), recall)
	}
	return t, nil
}

// ANNSConfig sizes the §4.3 approximate-nearest-neighbour experiment.
type ANNSConfig struct {
	N       int // reference vectors; <=0 selects 8000
	Queries int // held-out queries; <=0 selects 200
	Tau     int // graph construction rounds; <=0 selects 12
	Seed    int64
}

func (c *ANNSConfig) defaults() {
	if c.N <= 0 {
		c.N = 8000
	}
	if c.Queries <= 0 {
		c.Queries = 200
	}
	if c.Tau <= 0 {
		c.Tau = 12
	}
}

// ANNS evaluates graph-based search on SIFT-like data against brute force:
// recall@1 and per-query latency across pool sizes.
func ANNS(cfg ANNSConfig) (*Table, error) {
	cfg.defaults()
	all, err := Gen("sift", cfg.N+cfg.Queries, cfg.Seed)
	if err != nil {
		return nil, err
	}
	dataIdx := make([]int, 0, cfg.N)
	queryIdx := make([]int, 0, cfg.Queries)
	stride := all.N / cfg.Queries
	for i := 0; i < all.N; i++ {
		if stride > 0 && i%stride == 0 && len(queryIdx) < cfg.Queries {
			queryIdx = append(queryIdx, i)
		} else {
			dataIdx = append(dataIdx, i)
		}
	}
	data := all.SubsetRows(dataIdx)
	queries := all.SubsetRows(queryIdx)

	g, err := core.BuildGraph(data, core.GraphConfig{Kappa: 20, Xi: 50, Tau: cfg.Tau, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	s, err := anns.NewSearcher(data, g, 32)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	truth := anns.ExactTruth(data, queries, 1, 1)
	brutePer := time.Since(start) / time.Duration(queries.N)

	t := &Table{
		Title: fmt.Sprintf("§4.3 — ANN search on the Alg. 3 graph (n=%d, %d queries, brute force %.3f ms/query)",
			data.N, queries.N, float64(brutePer.Microseconds())/1000),
		Header: []string{"ef", "recall@1", "ms/query", "speed-up vs brute"},
	}
	for _, ef := range []int{8, 16, 32, 64, 128} {
		start := time.Now()
		hit := 0
		for qi := 0; qi < queries.N; qi++ {
			res := s.Search(queries.Row(qi), 1, ef)
			if len(res) > 0 && len(truth[qi]) > 0 && res[0].ID == truth[qi][0] {
				hit++
			}
		}
		per := time.Since(start) / time.Duration(queries.N)
		t.AddRow(d(ef), f3(float64(hit)/float64(queries.N)),
			fmt.Sprintf("%.3f", float64(per.Microseconds())/1000),
			fmt.Sprintf("%.1fx", float64(brutePer)/float64(per)))
	}
	return t, nil
}
