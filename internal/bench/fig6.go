package bench

import (
	"fmt"
)

// Fig6Config sizes the scalability experiment of Fig. 6 (time) and Fig. 7
// (distortion) on VLAD-like data. The paper varies n from 10K to 10M at
// k=1024 (a), and k from 1024 to 8192 at n=1M (b); the reduced defaults
// keep the same geometric sweeps two octaves smaller.
type Fig6Config struct {
	Sizes []int // sweep (a); nil selects {1000, 2000, 4000, 8000, 16000}
	KForN int   // k of sweep (a); <=0 selects 64
	NForK int   // n of sweep (b); <=0 selects 8000
	Ks    []int // sweep (b); nil selects {64, 128, 256, 512}
	Iters int   // fixed iteration budget (paper fixes 30); <=0 selects 20
	Seed  int64
}

func (c *Fig6Config) defaults() {
	if c.Sizes == nil {
		c.Sizes = []int{1000, 2000, 4000, 8000, 16000}
	}
	if c.KForN <= 0 {
		c.KForN = 64
	}
	if c.NForK <= 0 {
		c.NForK = 8000
	}
	if c.Ks == nil {
		c.Ks = []int{64, 128, 256, 512}
	}
	if c.Iters <= 0 {
		c.Iters = 20
	}
}

// Fig6Size reproduces Fig. 6(a) and Fig. 7(a): total clustering time and
// distortion while the input size grows at fixed k.
func Fig6Size(cfg Fig6Config) ([]*Table, error) {
	cfg.defaults()
	timeT := &Table{
		Title:  fmt.Sprintf("Fig. 6(a)/7(a) — time & distortion vs n (VLAD-like, k=%d, %d iters)", cfg.KForN, cfg.Iters),
		Header: []string{"n", "method", "time", "distortion"},
	}
	for _, n := range cfg.Sizes {
		data, err := Gen("vlad", n, cfg.Seed)
		if err != nil {
			return nil, err
		}
		for _, m := range Methods() {
			res, err := Run(m, data, RunConfig{K: cfg.KForN, Iters: cfg.Iters, Seed: cfg.Seed})
			if err != nil {
				return nil, err
			}
			timeT.AddRow(d(n), m, dur(res.InitTime+res.IterTime), f(res.Distortion))
		}
	}
	return []*Table{timeT}, nil
}

// Fig6K reproduces Fig. 6(b) and Fig. 7(b): total clustering time and
// distortion while the cluster count grows at fixed n. The paper's key
// observation — k-means/BKM/Mini-Batch grow linearly with k while closure
// k-means and GK-means stay nearly flat — is directly visible in the time
// column.
func Fig6K(cfg Fig6Config) ([]*Table, error) {
	cfg.defaults()
	data, err := Gen("vlad", cfg.NForK, cfg.Seed)
	if err != nil {
		return nil, err
	}
	timeT := &Table{
		Title:  fmt.Sprintf("Fig. 6(b)/7(b) — time & distortion vs k (VLAD-like, n=%d, %d iters)", cfg.NForK, cfg.Iters),
		Header: []string{"k", "method", "time", "distortion"},
	}
	for _, k := range cfg.Ks {
		for _, m := range Methods() {
			res, err := Run(m, data, RunConfig{K: k, Iters: cfg.Iters, Seed: cfg.Seed})
			if err != nil {
				return nil, err
			}
			timeT.AddRow(d(k), m, dur(res.InitTime+res.IterTime), f(res.Distortion))
		}
	}
	return []*Table{timeT}, nil
}
