package bench

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"time"

	"gkmeans"
	"gkmeans/client"
	"gkmeans/internal/dataset"
	"gkmeans/internal/server"
	"gkmeans/internal/vec"
)

// The HTTP benchmark harness drives a running gkserved daemon through the
// Go client at a configurable concurrency and records end-to-end request
// latency — the serving numbers the in-process harness (searchbench.go)
// cannot see: JSON round-trips, the micro-batching coalescer, load
// shedding and the epoch-invalidated query cache. The workload repeats a
// bounded pool of distinct queries, so a cache-enabled server answers the
// tail of the run from its cache and the report shows the hit-path
// latency next to the cold path.

// HTTPBenchConfig configures one HTTP harness run against a live daemon.
type HTTPBenchConfig struct {
	BaseURL string // daemon address, e.g. http://127.0.0.1:8080
	Index   string // served index name to query

	Concurrency int // client workers issuing requests (<=0 selects 8)
	Requests    int // timed search requests across all workers
	Distinct    int // distinct query pool size; the workload cycles it
	Warmup      int // untimed requests issued first (<=0 selects Distinct)

	TopK, Ef, NProbe int
	Seed             int64

	// Queries overrides the generated query pool (live mode generates
	// Distinct uniform vectors of the served index's dimensionality, which
	// exercises latency but not recall). The in-process cache sweep passes
	// real held-out corpus queries instead.
	Queries *vec.Matrix
}

// HTTPRun is one measured pass over the workload.
type HTTPRun struct {
	Label     string  `json:"label"`      // e.g. "live", "cache-off", "cache-on"
	CacheSize int     `json:"cache_size"` // server-side entries, 0 = disabled/unknown
	Requests  int     `json:"requests"`
	Errors    int     `json:"errors"` // failed requests (after client retries)
	Shed      int     `json:"shed"`   // requests answered 429 at least once
	MeanUS    float64 `json:"mean_us"`
	P50US     float64 `json:"p50_us"`
	P90US     float64 `json:"p90_us"`
	P99US     float64 `json:"p99_us"`
	QPS       float64 `json:"qps"`
	WallMS    float64 `json:"wall_ms"`

	// Server-side deltas over the timed window, from /stats. Zero when the
	// server runs without a cache.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
}

// HTTPReport is the HTTP harness output; it marshals to BENCH_http.json.
type HTTPReport struct {
	Schema      int       `json:"schema"`
	CreatedAt   string    `json:"created_at"`
	GoVersion   string    `json:"go_version"`
	MaxProcs    int       `json:"maxprocs"`
	BaseURL     string    `json:"base_url,omitempty"` // empty for in-process runs
	Index       string    `json:"index"`
	N           int       `json:"n,omitempty"` // corpus rows (in-process runs)
	Dim         int       `json:"dim"`
	Concurrency int       `json:"concurrency"`
	Requests    int       `json:"requests"`
	Distinct    int       `json:"distinct"`
	TopK        int       `json:"top_k"`
	Ef          int       `json:"ef"`
	NProbe      int       `json:"nprobe,omitempty"`
	Seed        int64     `json:"seed"`
	Runs        []HTTPRun `json:"runs"`
}

// httpReportSchema versions BENCH_http.json independently of the search
// report: the two evolve on different axes.
const httpReportSchema = 1

// RunHTTPBench measures a live daemon: one timed pass over the repeated
// query workload, recorded as a single "live" run.
func RunHTTPBench(cfg HTTPBenchConfig, logf func(format string, args ...any)) (*HTTPReport, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("bench: http mode needs a base URL")
	}
	if cfg.Index == "" {
		return nil, fmt.Errorf("bench: http mode needs an index name")
	}
	normalizeHTTPConfig(&cfg)

	c := client.New(cfg.BaseURL)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	infos, err := c.Indexes(ctx)
	if err != nil {
		return nil, fmt.Errorf("bench: listing indexes on %s: %w", cfg.BaseURL, err)
	}
	dim := 0
	for _, info := range infos {
		if info.Name == cfg.Index {
			dim = info.Dim
		}
	}
	if dim == 0 {
		return nil, fmt.Errorf("bench: index %q not served by %s", cfg.Index, cfg.BaseURL)
	}
	if cfg.Queries == nil {
		cfg.Queries = dataset.Uniform(cfg.Distinct, dim, cfg.Seed)
	}

	rep := newHTTPReport(cfg, dim)
	rep.BaseURL = cfg.BaseURL
	logf("http bench: %s index=%s dim=%d, %d requests × %d workers over %d distinct queries",
		cfg.BaseURL, cfg.Index, dim, cfg.Requests, cfg.Concurrency, cfg.Queries.N)
	run, err := httpRun(c, "live", 0, cfg, logf)
	if err != nil {
		return nil, err
	}
	rep.Runs = append(rep.Runs, *run)
	return rep, nil
}

// RunHTTPCachePair builds a small index in-process, serves it twice through
// the full HTTP stack — once with the query cache disabled and once with it
// enabled — and measures the identical workload against both. The two runs
// land in one report, so the committed file itself records the p50 saving
// the cache buys on a repeated-query workload.
func RunHTTPCachePair(cfg HTTPBenchConfig, n, cacheSize int,
	logf func(format string, args ...any)) (*HTTPReport, error) {

	if logf == nil {
		logf = func(string, ...any) {}
	}
	normalizeHTTPConfig(&cfg)
	if cfg.Index == "" {
		cfg.Index = "bench"
	}

	info, err := dataset.ByName("sift")
	if err != nil {
		return nil, err
	}
	m := info.Gen(n, cfg.Seed)
	if m.N <= cfg.Distinct {
		return nil, fmt.Errorf("bench: corpus of %d rows cannot spare %d distinct queries", m.N, cfg.Distinct)
	}
	data, queries := splitCorpus(m, cfg.Distinct)
	cfg.Queries = queries
	logf("corpus sift: %d×%d data, %d held-out distinct queries", data.N, data.Dim, queries.N)

	idx, err := gkmeans.Build(context.Background(), data,
		gkmeans.WithKappa(10), gkmeans.WithXi(25), gkmeans.WithTau(4),
		gkmeans.WithSeed(cfg.Seed))
	if err != nil {
		return nil, err
	}

	rep := newHTTPReport(cfg, data.Dim)
	rep.N = data.N
	for _, pass := range []struct {
		label string
		size  int
	}{{"cache-off", 0}, {"cache-on", cacheSize}} {
		run, err := servePass(idx, pass.label, pass.size, cfg, logf)
		if err != nil {
			return nil, err
		}
		rep.Runs = append(rep.Runs, *run)
	}
	return rep, nil
}

// servePass serves idx over a loopback HTTP listener with the given cache
// size and measures one workload pass against it.
func servePass(idx *gkmeans.Index, label string, cacheSize int, cfg HTTPBenchConfig,
	logf func(format string, args ...any)) (*HTTPRun, error) {

	srv := server.New(server.Config{
		Window:    -1, // no micro-batching: measure the search/cache paths alone
		CacheSize: cacheSize,
	})
	if err := srv.RegisterIndex(cfg.Index, idx); err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.BeginShutdown()

	c := client.New(ts.URL)
	defer c.Close()
	return httpRun(c, label, cacheSize, cfg, logf)
}

// httpRun issues the workload through c: Warmup untimed requests (which also
// primes a server-side cache exactly once per distinct query), then
// cfg.Requests timed ones spread over cfg.Concurrency workers, cycling the
// distinct query pool. Per-request latencies land in a preallocated slice —
// one slot per request, no locking on the hot path.
func httpRun(c *client.Client, label string, cacheSize int, cfg HTTPBenchConfig,
	logf func(format string, args ...any)) (*HTTPRun, error) {

	ctx := context.Background()
	query := func(i int) []float32 { return cfg.Queries.Row(i % cfg.Queries.N) }
	search := func(i int) error {
		_, err := c.SearchNProbe(ctx, cfg.Index, query(i), cfg.TopK, cfg.Ef, cfg.NProbe)
		return err
	}

	for i := 0; i < cfg.Warmup; i++ {
		if err := search(i); err != nil {
			return nil, fmt.Errorf("bench: warmup request %d: %w", i, err)
		}
	}

	before, err := c.Stats(ctx, cfg.Index)
	if err != nil {
		return nil, fmt.Errorf("bench: reading stats before run: %w", err)
	}

	lat := make([]time.Duration, cfg.Requests)
	var failed, shed int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < cfg.Requests; i += cfg.Concurrency {
				r0 := time.Now()
				err := search(i)
				lat[i] = time.Since(r0)
				if err != nil {
					mu.Lock()
					failed++
					var apiErr *client.APIError
					if errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests {
						shed++
					}
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(t0)

	after, err := c.Stats(ctx, cfg.Index)
	if err != nil {
		return nil, fmt.Errorf("bench: reading stats after run: %w", err)
	}

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var total time.Duration
	for _, l := range lat {
		total += l
	}
	run := &HTTPRun{
		Label:       label,
		CacheSize:   cacheSize,
		Requests:    cfg.Requests,
		Errors:      int(failed),
		Shed:        int(shed),
		MeanUS:      total.Seconds() * 1e6 / float64(cfg.Requests),
		P50US:       quantileUS(lat, 0.50),
		P90US:       quantileUS(lat, 0.90),
		P99US:       quantileUS(lat, 0.99),
		QPS:         float64(cfg.Requests) / wall.Seconds(),
		WallMS:      wall.Seconds() * 1e3,
		CacheHits:   after.CacheHits - before.CacheHits,
		CacheMisses: after.CacheMisses - before.CacheMisses,
	}
	logf("%-9s p50=%.0fµs p90=%.0fµs p99=%.0fµs %.0f qps (hits=%d misses=%d errors=%d)",
		label, run.P50US, run.P90US, run.P99US, run.QPS, run.CacheHits, run.CacheMisses, run.Errors)
	return run, nil
}

func normalizeHTTPConfig(cfg *HTTPBenchConfig) {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 2000
	}
	if cfg.Distinct <= 0 {
		cfg.Distinct = 64
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = cfg.Distinct
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 10
	}
}

func newHTTPReport(cfg HTTPBenchConfig, dim int) *HTTPReport {
	return &HTTPReport{
		Schema:      httpReportSchema,
		CreatedAt:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		MaxProcs:    runtime.GOMAXPROCS(0),
		Index:       cfg.Index,
		Dim:         dim,
		Concurrency: cfg.Concurrency,
		Requests:    cfg.Requests,
		Distinct:    cfg.Distinct,
		TopK:        cfg.TopK,
		Ef:          cfg.Ef,
		NProbe:      cfg.NProbe,
		Seed:        cfg.Seed,
	}
}

// Summary renders the HTTP report as an aligned table.
func (r *HTTPReport) Summary() *Table {
	where := r.BaseURL
	if where == "" {
		where = "in-process"
	}
	t := &Table{
		Title: fmt.Sprintf("http benchmark — %s index=%s dim=%d, %d req × %d workers, %d distinct",
			where, r.Index, r.Dim, r.Requests, r.Concurrency, r.Distinct),
		Header: []string{"run", "cache", "p50 µs", "p90 µs", "p99 µs", "qps", "hits", "misses", "errors"},
	}
	for _, run := range r.Runs {
		t.AddRow(run.Label, d(run.CacheSize), f(run.P50US), f(run.P90US), f(run.P99US),
			f(run.QPS), fmt.Sprint(run.CacheHits), fmt.Sprint(run.CacheMisses), d(run.Errors))
	}
	return t
}
