package bench

import (
	"fmt"
)

// BaselinesConfig sizes the all-methods comparison: every clustering
// algorithm in this repository under one configuration. It substantiates
// the paper's §1/§2 positioning claims — e.g. Elkan's O(n·k) bound matrix
// (reported as the extra-memory column) and bisecting's quality loss.
type BaselinesConfig struct {
	N     int // <=0 selects 5000
	K     int // <=0 selects 50
	Iters int // <=0 selects 20
	Seed  int64
}

func (c *BaselinesConfig) defaults() {
	if c.N <= 0 {
		c.N = 5000
	}
	if c.K <= 0 {
		c.K = 50
	}
	if c.Iters <= 0 {
		c.Iters = 20
	}
}

// Baselines runs every method on SIFT-like data and reports time,
// distortion and the dominant algorithm-specific auxiliary memory.
func Baselines(cfg BaselinesConfig) (*Table, error) {
	cfg.defaults()
	data, err := Gen("sift", cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("All baselines — SIFT-like n=%d, k=%d, %d iters",
			data.N, cfg.K, cfg.Iters),
		Header: []string{"method", "init", "iter", "total", "distortion", "aux memory"},
	}
	n, k, kappa := cfg.N, cfg.K, 20
	mem := map[string]string{
		MKMeans:    "O(k·d) centroids",
		MElkan:     fmt.Sprintf("O(n·k) bounds = %d floats", n*k),
		MHamerly:   fmt.Sprintf("O(n) bounds = %d floats", 2*n),
		MBKM:       "O(k·d) composites",
		MMiniBatch: "O(k·d) centroids",
		MClosure:   "O(trees·n) cells",
		MGKMeans:   fmt.Sprintf("O(n·κ) graph = %d entries", n*kappa),
		MGKMeansT:  fmt.Sprintf("O(n·κ) graph = %d entries", n*kappa),
		MKGraphGK:  fmt.Sprintf("O(n·κ) graph = %d entries", n*kappa),
		MBisecting: "O(n) split state",
		MAKM:       "O(k) KD tree per iter",
	}
	for _, m := range []string{MKMeans, MElkan, MHamerly, MBisecting, MAKM, MMiniBatch,
		MClosure, MBKM, MKGraphGK, MGKMeansT, MGKMeans} {
		res, err := Run(m, data, RunConfig{K: cfg.K, Iters: cfg.Iters, Seed: cfg.Seed, Kappa: kappa})
		if err != nil {
			return nil, err
		}
		t.AddRow(m, dur(res.InitTime), dur(res.IterTime),
			dur(res.InitTime+res.IterTime), f(res.Distortion), mem[m])
	}
	return t, nil
}
