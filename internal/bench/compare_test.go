package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func baselineReport() *SearchReport {
	return &SearchReport{
		Schema: 2, Dataset: "sift", N: 1900, Dim: 128, Queries: 100,
		Kappa: 10, Xi: 25, Tau: 4, Seed: 1,
		Build: BuildResult{Builder: "gkmeans", GraphSeconds: 1.0},
		Search: []SearchPoint{
			{TopK: 10, Ef: 16, Recall: 0.95, P50US: 100},
			{TopK: 10, Ef: 32, Recall: 0.99, P50US: 120},
		},
	}
}

func cloneReport(r *SearchReport) *SearchReport {
	c := *r
	c.Search = append([]SearchPoint(nil), r.Search...)
	return &c
}

func TestCompareReportsPassesWithinNoise(t *testing.T) {
	old := baselineReport()
	fresh := cloneReport(old)
	fresh.Build.GraphSeconds = 1.2 // +20% < 25%
	fresh.Search[0].P50US = 115    // +15% < 25%
	fresh.Search[0].Recall = 0.945 // -0.005 < 0.01
	fresh.Search[1].P50US = 132    // +10%
	regs, err := CompareReports(old, fresh, CompareThresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}

func TestCompareReportsFlagsLatencyRegression(t *testing.T) {
	old := baselineReport()
	fresh := cloneReport(old)
	fresh.Search[1].P50US = 160 // +33% and +40µs over slack
	regs, err := CompareReports(old, fresh, CompareThresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "p50_us" || regs[0].Where != "topK=10 ef=32" {
		t.Fatalf("got %v, want one p50 regression at ef=32", regs)
	}
}

func TestCompareReportsLatencySlackFloor(t *testing.T) {
	// A 50% jump that is only 6µs absolute must stay under the 10µs slack.
	old := baselineReport()
	old.Search[0].P50US = 12
	fresh := cloneReport(old)
	fresh.Search[0].P50US = 18
	regs, err := CompareReports(old, fresh, CompareThresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("sub-slack jitter flagged: %v", regs)
	}
	// Disabling the floor (negative) flags it.
	regs, err = CompareReports(old, fresh, CompareThresholds{LatencySlackUS: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 {
		t.Fatalf("got %v, want one regression with slack disabled", regs)
	}
}

func TestCompareReportsFlagsRecallDrop(t *testing.T) {
	old := baselineReport()
	fresh := cloneReport(old)
	fresh.Search[0].Recall = 0.93 // -0.02 > 0.01
	regs, err := CompareReports(old, fresh, CompareThresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "recall" {
		t.Fatalf("got %v, want one recall regression", regs)
	}
}

func TestCompareReportsFlagsBuildRegression(t *testing.T) {
	old := baselineReport()
	fresh := cloneReport(old)
	fresh.Build.GraphSeconds = 1.5
	regs, err := CompareReports(old, fresh, CompareThresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "build_seconds" {
		t.Fatalf("got %v, want one build regression", regs)
	}
	// A looser explicit threshold passes the same pair.
	regs, err = CompareReports(old, fresh, CompareThresholds{MaxBuildRegress: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("loose threshold still flagged: %v", regs)
	}
}

func TestCompareReportsBuildSlackFloor(t *testing.T) {
	// A 2x jump that is only 0.1s absolute (a quick-preset build on a
	// noisy runner) must stay under the 0.25s default slack.
	old := baselineReport()
	old.Build.GraphSeconds = 0.1
	fresh := cloneReport(old)
	fresh.Build.GraphSeconds = 0.2
	regs, err := CompareReports(old, fresh, CompareThresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("sub-slack build jitter flagged: %v", regs)
	}
	// Disabling the floor (negative) flags it.
	regs, err = CompareReports(old, fresh, CompareThresholds{BuildSlackSeconds: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "build_seconds" {
		t.Fatalf("got %v, want one build regression with slack disabled", regs)
	}
}

func TestCompareReportsSkipsUnmatchedCells(t *testing.T) {
	old := baselineReport()
	fresh := cloneReport(old)
	fresh.Search = append(fresh.Search, SearchPoint{TopK: 10, Ef: 64, Recall: 0.1, P50US: 9999})
	regs, err := CompareReports(old, fresh, CompareThresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("new grid cell should be skipped, got %v", regs)
	}
}

func TestCompareReportsRejectsIncomparableConfigs(t *testing.T) {
	old := baselineReport()
	fresh := cloneReport(old)
	fresh.N = 4000
	if _, err := CompareReports(old, fresh, CompareThresholds{}); err == nil {
		t.Fatal("different corpus size must not be comparable")
	}
	fresh = cloneReport(old)
	fresh.Build.Builder = "nndescent"
	if _, err := CompareReports(old, fresh, CompareThresholds{}); err == nil {
		t.Fatal("different builder must not be comparable")
	}
	// Schema-1 baselines have no builder field; treat "" as gkmeans.
	fresh = cloneReport(old)
	old.Build.Builder = ""
	if _, err := CompareReports(old, fresh, CompareThresholds{}); err != nil {
		t.Fatalf("empty baseline builder should match gkmeans: %v", err)
	}
}

func TestCompareReportsRejectsDTypeMismatch(t *testing.T) {
	// A uint8 run scans different kernels over different memory than a
	// float32 one — refuse the diff and demand a baseline refresh.
	old := baselineReport()
	fresh := cloneReport(old)
	fresh.DType = "uint8"
	if _, err := CompareReports(old, fresh, CompareThresholds{}); err == nil ||
		!strings.Contains(err.Error(), "dtype") {
		t.Fatalf("uint8 run vs float32 baseline: err = %v, want dtype refusal", err)
	}
	// Schema <= 3 baselines predate the field and measured float32, so an
	// empty dtype on either side matches an explicit "float32".
	old.DType = ""
	fresh = cloneReport(old)
	fresh.DType = "float32"
	if _, err := CompareReports(old, fresh, CompareThresholds{}); err != nil {
		t.Fatalf("empty baseline dtype should match float32: %v", err)
	}
	old.DType = "uint8"
	fresh = cloneReport(old)
	fresh.DType = "uint8"
	if _, err := CompareReports(old, fresh, CompareThresholds{}); err != nil {
		t.Fatalf("matching uint8 dtypes should compare: %v", err)
	}
}

func TestLoadReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(path, []byte(`{"schema":2,"dataset":"sift","n":10}`), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dataset != "sift" || rep.N != 10 {
		t.Fatalf("loaded %+v", rep)
	}
	if _, err := LoadReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
	if err := os.WriteFile(path, []byte(`{not json`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(path); err == nil || !strings.Contains(err.Error(), "parsing") {
		t.Fatalf("corrupt file error = %v", err)
	}
	if err := os.WriteFile(path, []byte(`{"schema":0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(path); err == nil {
		t.Fatal("schema 0 must error")
	}
}
