package bench

import (
	"fmt"

	"gkmeans/internal/core"
	"gkmeans/internal/knngraph"
	"gkmeans/internal/metrics"
	"gkmeans/internal/nndescent"
)

// Fig4Config sizes the configuration test of Fig. 4: clustering distortion
// as a function of supplied graph recall, for the three configurations
// KGraph+GK-means, GK-means, and GK-means− (paper §5.2; SIFT1M, k=10,000 —
// the same n:k ratio of 100 is kept here).
type Fig4Config struct {
	N     int // <=0 selects 8000
	Kappa int // <=0 selects 20
	Seed  int64
	Iters int // clustering epochs; <=0 selects 25
}

func (c *Fig4Config) defaults() {
	if c.N <= 0 {
		c.N = 8000
	}
	if c.Kappa <= 0 {
		c.Kappa = 20
	}
	if c.Iters <= 0 {
		c.Iters = 25
	}
}

// Fig4 sweeps graph quality (via construction effort) for each
// configuration and reports (recall, distortion) pairs — the axes of the
// paper's Fig. 4 scatter.
func Fig4(cfg Fig4Config) (*Table, error) {
	cfg.defaults()
	data, err := Gen("sift", cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	k := data.N / 100
	if k < 2 {
		return nil, fmt.Errorf("bench: fig4 needs n >= 200")
	}
	exact := knngraph.BruteForce(data, 1, 0)

	t := &Table{
		Title: fmt.Sprintf("Fig. 4 — distortion vs graph recall (n=%d, k=%d)",
			data.N, k),
		Header: []string{"config", "graph effort", "recall@1", "distortion"},
	}

	cluster := func(g *knngraph.Graph, traditional bool) (float64, error) {
		res, err := core.Cluster(data, g, core.Config{
			K: k, MaxIter: cfg.Iters, Seed: cfg.Seed + 7, Traditional: traditional,
		})
		if err != nil {
			return 0, err
		}
		return metrics.AverageDistortion(data, res.Labels, res.Centroids), nil
	}

	// Alg. 3 graphs of increasing τ drive both GK-means and GK-means−.
	for _, tau := range []int{1, 2, 4, 8, 12} {
		g, err := core.BuildGraph(data, core.GraphConfig{
			Kappa: cfg.Kappa, Xi: 50, Tau: tau, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		recall := g.Recall(exact)
		for _, run := range []struct {
			name string
			trad bool
		}{{"GK-means", false}, {"GK-means-", true}} {
			dist, err := cluster(g, run.trad)
			if err != nil {
				return nil, err
			}
			t.AddRow(run.name, fmt.Sprintf("tau=%d", tau), f3(recall), f(dist))
		}
	}

	// NN-Descent graphs of increasing round budget drive KGraph+GK-means.
	for _, rounds := range []int{1, 2, 4, 8} {
		g, err := nndescent.Build(data, nndescent.Config{
			Kappa: cfg.Kappa, Seed: cfg.Seed, MaxRounds: rounds,
		})
		if err != nil {
			return nil, err
		}
		recall := g.Recall(exact)
		dist, err := cluster(g, false)
		if err != nil {
			return nil, err
		}
		t.AddRow("KGraph+GK-means", fmt.Sprintf("rounds=%d", rounds), f3(recall), f(dist))
	}
	return t, nil
}
