package bench

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"gkmeans"
	"gkmeans/internal/dataset"
	"gkmeans/internal/server"
	"gkmeans/internal/vec"
)

func buildIndexForBench(t *testing.T, data *vec.Matrix) *gkmeans.Index {
	t.Helper()
	idx, err := gkmeans.Build(context.Background(), data,
		gkmeans.WithKappa(8), gkmeans.WithXi(20), gkmeans.WithTau(3), gkmeans.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// The in-process cache sweep must produce two comparable runs: identical
// workload, cache off then on, with the cache-on pass actually hitting.
func TestRunHTTPCachePairSmoke(t *testing.T) {
	cfg := HTTPBenchConfig{
		Concurrency: 4, Requests: 200, Distinct: 16, Warmup: 16,
		TopK: 5, Ef: 32, Seed: 1,
	}
	rep, err := RunHTTPCachePair(cfg, 600, 256, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != httpReportSchema || len(rep.Runs) != 2 {
		t.Fatalf("report: schema=%d runs=%d", rep.Schema, len(rep.Runs))
	}
	off, on := rep.Runs[0], rep.Runs[1]
	if off.Label != "cache-off" || on.Label != "cache-on" {
		t.Fatalf("run labels %q/%q", off.Label, on.Label)
	}
	if off.Errors != 0 || on.Errors != 0 {
		t.Fatalf("errors: off=%d on=%d", off.Errors, on.Errors)
	}
	if off.CacheHits != 0 {
		t.Fatalf("cache-off run recorded %d hits", off.CacheHits)
	}
	// Warmup primed every distinct query, so the timed cache-on pass is all
	// hits.
	if on.CacheHits != int64(cfg.Requests) || on.CacheMisses != 0 {
		t.Fatalf("cache-on run: hits=%d misses=%d, want %d/0", on.CacheHits, on.CacheMisses, cfg.Requests)
	}
	if off.P50US <= 0 || on.P50US <= 0 || off.QPS <= 0 {
		t.Fatalf("degenerate latency stats: %+v / %+v", off, on)
	}
	if got := rep.Summary().Render(); !strings.Contains(got, "cache-on") {
		t.Fatalf("summary table missing runs:\n%s", got)
	}
}

// Live mode drives an external daemon; here, a loopback server stands in.
func TestRunHTTPBenchLive(t *testing.T) {
	srv := server.New(server.Config{Window: -1, CacheSize: 128})
	all := dataset.SIFTLike(300, 4)
	idx := buildIndexForBench(t, all)
	if err := srv.RegisterIndex("live", idx); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep, err := RunHTTPBench(HTTPBenchConfig{
		BaseURL: ts.URL, Index: "live",
		Concurrency: 2, Requests: 60, Distinct: 8, Warmup: 8,
		TopK: 3, Ef: 16, Seed: 2,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BaseURL != ts.URL || rep.Dim != all.Dim || len(rep.Runs) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	run := rep.Runs[0]
	if run.Label != "live" || run.Errors != 0 || run.Requests != 60 {
		t.Fatalf("run = %+v", run)
	}
	if run.CacheHits == 0 {
		t.Fatal("repeated workload against a cached server produced no hits")
	}

	// An unknown index is an error, not a hang.
	if _, err := RunHTTPBench(HTTPBenchConfig{BaseURL: ts.URL, Index: "nope"}, nil); err == nil {
		t.Fatal("bench against unknown index succeeded")
	}
}
