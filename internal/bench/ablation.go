package bench

import (
	"fmt"
	"time"

	"gkmeans/internal/core"
	"gkmeans/internal/knngraph"
	"gkmeans/internal/metrics"
)

// AblationConfig sizes the parameter study of paper §4.4: how κ (neighbour
// count), ξ (refinement cluster size) and τ (construction rounds) trade
// construction cost against graph recall and final clustering distortion.
type AblationConfig struct {
	N     int // <=0 selects 4000
	Iters int // clustering epochs; <=0 selects 15
	Seed  int64
}

func (c *AblationConfig) defaults() {
	if c.N <= 0 {
		c.N = 4000
	}
	if c.Iters <= 0 {
		c.Iters = 15
	}
}

// Ablation sweeps one parameter at a time around the paper's defaults
// (κ=50, ξ=50, τ=10) on SIFT-like data at k=n/100, reporting graph build
// time, graph recall, clustering distortion, and candidate-set size. It
// substantiates the paper's recommendations: ξ in [40,100], quality stable
// for κ ≥ 40, τ=10 sufficient for clustering.
func Ablation(cfg AblationConfig) (*Table, error) {
	cfg.defaults()
	data, err := Gen("sift", cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	k := data.N / 100
	if k < 2 {
		return nil, fmt.Errorf("bench: ablation needs n >= 200")
	}
	exact := knngraph.BruteForce(data, 1, 0)

	t := &Table{
		Title: fmt.Sprintf("§4.4 ablation — parameter sweeps (SIFT-like, n=%d, k=%d; defaults κ=50 ξ=50 τ=10)",
			data.N, k),
		Header: []string{"sweep", "value", "build time", "recall@1", "distortion", "avg candidates"},
	}

	measure := func(sweep, value string, gc core.GraphConfig) error {
		start := time.Now()
		g, err := core.BuildGraph(data, gc)
		if err != nil {
			return err
		}
		buildTime := time.Since(start)
		res, err := core.Cluster(data, g, core.Config{K: k, MaxIter: cfg.Iters, Seed: cfg.Seed + 3})
		if err != nil {
			return err
		}
		dist := metrics.AverageDistortion(data, res.Labels, res.Centroids)
		t.AddRow(sweep, value, dur(buildTime), f3(g.Recall(exact)), f(dist),
			fmt.Sprintf("%.1f", res.AvgCandidates))
		return nil
	}

	base := core.GraphConfig{Kappa: 50, Xi: 50, Tau: 10, Seed: cfg.Seed}
	for _, kappa := range []int{5, 10, 20, 40, 50} {
		gc := base
		gc.Kappa = kappa
		if err := measure("kappa", d(kappa), gc); err != nil {
			return nil, err
		}
	}
	for _, xi := range []int{20, 40, 50, 100} {
		gc := base
		gc.Xi = xi
		if err := measure("xi", d(xi), gc); err != nil {
			return nil, err
		}
	}
	for _, tau := range []int{2, 5, 10, 20} {
		gc := base
		gc.Tau = tau
		if err := measure("tau", d(tau), gc); err != nil {
			return nil, err
		}
	}
	return t, nil
}
