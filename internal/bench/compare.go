package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// The CI perf-regression gate: gkbench -compare diffs a fresh SearchReport
// against the committed baseline (BENCH_search.json) and fails the job when
// the hot numbers regress beyond noise-tolerant thresholds. Wall-clock on
// shared runners jitters, so latency and build-time checks are relative
// (default 25%) with an absolute latency slack floor, while recall — which
// is deterministic for a fixed seed — gets a tight absolute budget.

// CompareThresholds bounds how much a fresh run may regress before
// CompareReports flags it. Zero values select the CI defaults.
type CompareThresholds struct {
	// MaxLatencyRegress is the allowed fractional p50 latency increase per
	// (topK, ef) cell; <=0 selects 0.25 (i.e. +25%).
	MaxLatencyRegress float64
	// MaxBuildRegress is the allowed fractional graph build-time increase;
	// <=0 selects 0.25.
	MaxBuildRegress float64
	// MaxRecallDrop is the allowed absolute recall@k decrease per cell;
	// <=0 selects 0.01.
	MaxRecallDrop float64
	// LatencySlackUS is an absolute floor under the latency check: a p50
	// increase smaller than this many microseconds is never flagged, which
	// keeps sub-noise cells (a 20µs p50 jittering by 30%) from failing CI;
	// 0 selects 10, <0 disables the floor.
	LatencySlackUS float64
	// BuildSlackSeconds is the same absolute floor for the build check: a
	// build-time increase smaller than this is never flagged, which keeps
	// the quick preset's ~0.1s build — where +25% is runner noise and the
	// baseline may come from different hardware — from failing CI while
	// still catching serialisation-scale disasters; 0 selects 0.25, <0
	// disables the floor.
	BuildSlackSeconds float64
}

func (t CompareThresholds) resolved() CompareThresholds {
	if t.MaxLatencyRegress <= 0 {
		t.MaxLatencyRegress = 0.25
	}
	if t.MaxBuildRegress <= 0 {
		t.MaxBuildRegress = 0.25
	}
	if t.MaxRecallDrop <= 0 {
		t.MaxRecallDrop = 0.01
	}
	if t.LatencySlackUS == 0 {
		t.LatencySlackUS = 10
	} else if t.LatencySlackUS < 0 {
		t.LatencySlackUS = 0
	}
	if t.BuildSlackSeconds == 0 {
		t.BuildSlackSeconds = 0.25
	} else if t.BuildSlackSeconds < 0 {
		t.BuildSlackSeconds = 0
	}
	return t
}

// Regression is one threshold violation found by CompareReports.
type Regression struct {
	Metric string  // "p50_us", "recall", "build_seconds"
	Where  string  // which cell, e.g. "topK=10 ef=32"
	Old    float64 // baseline value
	New    float64 // fresh value
	Limit  float64 // the value the fresh run was allowed to reach
}

func (r Regression) String() string {
	return fmt.Sprintf("%s %s: %.4g -> %.4g (limit %.4g)", r.Metric, r.Where, r.Old, r.New, r.Limit)
}

// CompareReports diffs fresh against the old baseline and returns every
// threshold violation. Cells present in only one report are skipped (grid
// changes need a baseline refresh, not a failure); incomparable
// configurations (different dataset, size or graph parameters) return an
// error because their numbers measure different work.
func CompareReports(old, fresh *SearchReport, th CompareThresholds) ([]Regression, error) {
	if err := sameMeasurement(old, fresh); err != nil {
		return nil, err
	}
	th = th.resolved()
	var regs []Regression

	if old.Build.GraphSeconds > 0 {
		limit := old.Build.GraphSeconds * (1 + th.MaxBuildRegress)
		if fresh.Build.GraphSeconds > limit &&
			fresh.Build.GraphSeconds-old.Build.GraphSeconds > th.BuildSlackSeconds {
			regs = append(regs, Regression{
				Metric: "build_seconds", Where: "graph",
				Old: old.Build.GraphSeconds, New: fresh.Build.GraphSeconds, Limit: limit,
			})
		}
	}

	baseline := make(map[[3]int]SearchPoint, len(old.Search))
	for _, pt := range old.Search {
		baseline[[3]int{pt.TopK, pt.Ef, pt.NProbe}] = pt
	}
	for _, pt := range fresh.Search {
		ref, ok := baseline[[3]int{pt.TopK, pt.Ef, pt.NProbe}]
		if !ok {
			continue
		}
		where := fmt.Sprintf("topK=%d ef=%d", pt.TopK, pt.Ef)
		if pt.NProbe > 0 {
			where += fmt.Sprintf(" nprobe=%d", pt.NProbe)
		}
		latLimit := ref.P50US * (1 + th.MaxLatencyRegress)
		if pt.P50US > latLimit && pt.P50US-ref.P50US > th.LatencySlackUS {
			regs = append(regs, Regression{
				Metric: "p50_us", Where: where,
				Old: ref.P50US, New: pt.P50US, Limit: latLimit,
			})
		}
		recallLimit := ref.Recall - th.MaxRecallDrop
		if pt.Recall < recallLimit {
			regs = append(regs, Regression{
				Metric: "recall", Where: where,
				Old: ref.Recall, New: pt.Recall, Limit: recallLimit,
			})
		}
	}
	return regs, nil
}

// sameMeasurement rejects baselines that measured different work than the fresh
// run: their numbers cannot be diffed, only refreshed.
func sameMeasurement(old, fresh *SearchReport) error {
	type key struct {
		field string
		o, f  any
	}
	// Dtype normalisation: schema <= 3 baselines predate the field and
	// measured float32. A uint8 run scans different kernels over different
	// memory than a float32 one, so the two are refresh-not-compare.
	od, fd := old.DType, fresh.DType
	if od == "" {
		od = "float32"
	}
	if fd == "" {
		fd = "float32"
	}
	for _, k := range []key{
		{"dataset", old.Dataset, fresh.Dataset},
		{"dtype", od, fd},
		{"n", old.N, fresh.N},
		{"dim", old.Dim, fresh.Dim},
		{"queries", old.Queries, fresh.Queries},
		{"kappa", old.Kappa, fresh.Kappa},
		{"xi", old.Xi, fresh.Xi},
		{"tau", old.Tau, fresh.Tau},
		{"seed", old.Seed, fresh.Seed},
		{"shards", old.Shards, fresh.Shards},
		// A routed run scans different shard subsets per query than an
		// unrouted one (and a different router size clusters differently),
		// so their latency/recall numbers measure different work.
		{"routing", old.Routing, fresh.Routing},
	} {
		if k.o != k.f {
			return fmt.Errorf("bench: baseline measured %s=%v but this run measured %v — refresh the committed baseline instead of comparing", k.field, k.o, k.f)
		}
	}
	// Builders measure different construction work; "" and "gkmeans" are
	// the same builder (schema-1 baselines predate the field).
	ob, fb := old.Build.Builder, fresh.Build.Builder
	if ob == "" {
		ob = "gkmeans"
	}
	if fb == "" {
		fb = "gkmeans"
	}
	if ob != fb {
		return fmt.Errorf("bench: baseline built with %s but this run with %s — refresh the committed baseline instead of comparing", ob, fb)
	}
	return nil
}

// LoadReport reads a SearchReport JSON file (a committed baseline).
func LoadReport(path string) (*SearchReport, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep SearchReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	if rep.Schema < 1 {
		return nil, fmt.Errorf("bench: %s does not look like a gkbench report (schema %d)", path, rep.Schema)
	}
	return &rep, nil
}
