package bench

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"gkmeans"
	"gkmeans/internal/anns"
	"gkmeans/internal/core"
	"gkmeans/internal/dataset"
	"gkmeans/internal/knngraph"
	"gkmeans/internal/vec"
)

// The search benchmark harness behind cmd/gkbench: it builds one graph over
// a corpus, holds out a query set, and measures the three serving
// quantities that matter for the ROADMAP's perf trajectory — Build time,
// per-query Search latency (with the work counters the early-termination
// rule bounds), and SearchBatch throughput — plus recall@k against exact
// ground truth, across a topK×ef grid. The resulting SearchReport
// marshals to BENCH_search.json at the repo root so successive PRs leave a
// comparable perf record.

// SearchBenchConfig configures one harness run.
type SearchBenchConfig struct {
	Dataset string      // synthetic corpus name (dataset.Registry); ignored when Data is set
	Data    *vec.Matrix // pre-loaded corpus (e.g. fvecs/bvecs); queries are split off it
	N       int         // corpus size before the query split (synthetic only)
	Queries int         // held-out query count
	Kappa   int         // graph neighbours per sample
	Xi      int         // refinement cluster size
	Tau     int         // graph construction rounds
	Seed    int64
	Entries int    // search entry points (<=0 selects the searcher default)
	TopKs   []int  // grid: requested neighbours per query
	Efs     []int  // grid: candidate pool sizes
	Workers int    // build + SearchBatch parallelism (<=0 selects GOMAXPROCS)
	Builder string // graph builder: core.BuilderGKMeans ("" default) or core.BuilderNNDescent

	// DType selects the dataset element type the index stores and scans:
	// "" or "float32" (default), or "uint8" for the integer distance path
	// (the corpus must be exactly byte-valued — SIFT-style data is). The
	// graph, recall and work counters are identical across dtypes by
	// construction; what moves is dataset memory (4x) and scan bandwidth.
	DType string

	// Shards > 1 benchmarks a sharded index (gkmeans.WithShards) through
	// the public fan-out path instead of the single searcher: same grid,
	// same recall protocol, per-query work read from the aggregated
	// SearchStats. The build sweep does not apply to a sharded run.
	Shards int

	// Routing > 0 builds the sharded index with that many routing centroids
	// per shard (gkmeans.WithRouting) and makes NProbes a third grid axis:
	// every (topK, ef) cell is measured once per listed shard-probe cap, so
	// the recall-vs-work trade of routed fan-out lands in the same report as
	// the full fan-out it approximates. Ignored when Shards <= 1.
	Routing int
	// NProbes lists the per-cell shard-probe caps; 0 means the index default
	// (full fan-out). Empty, or on an unrouted run, measures the single
	// nprobe=0 column.
	NProbes []int

	// BuildWorkers, when non-empty, additionally rebuilds the graph once
	// per listed worker count and records wall-clock, speedup, rounds and
	// distance computations — the build half of the perf trajectory. The
	// builders are worker-count deterministic, so the sweep also
	// cross-checks that every rebuild produced the identical graph.
	BuildWorkers []int
}

// SearchPoint is one (topK, ef, nprobe) cell of the single-query grid;
// NProbe is 0 (full fan-out / monolithic) outside routed runs.
type SearchPoint struct {
	TopK         int     `json:"top_k"`
	Ef           int     `json:"ef"`
	NProbe       int     `json:"nprobe,omitempty"`
	Recall       float64 `json:"recall"`
	MeanUS       float64 `json:"mean_us"`
	P50US        float64 `json:"p50_us"`
	P90US        float64 `json:"p90_us"`
	P99US        float64 `json:"p99_us"`
	AvgDistComps float64 `json:"avg_dist_comps"`
	AvgExpanded  float64 `json:"avg_expanded"`
}

// BatchPoint is one (topK, ef, nprobe) cell of the SearchBatch throughput
// grid.
type BatchPoint struct {
	TopK   int     `json:"top_k"`
	Ef     int     `json:"ef"`
	NProbe int     `json:"nprobe,omitempty"`
	QPS    float64 `json:"qps"`
	WallMS float64 `json:"wall_ms"`
}

// BuildSweepPoint is one worker count of the build sweep.
type BuildSweepPoint struct {
	Workers     int     `json:"workers"`
	Seconds     float64 `json:"seconds"`
	Speedup     float64 `json:"speedup"` // vs the workers=1 point (1.0 when absent)
	Rounds      int     `json:"rounds"`
	DistComps   int64   `json:"dist_comps"`
	GraphRecall float64 `json:"graph_recall"` // sampled recall@top1 vs exact NN
}

// BuildResult times index construction.
type BuildResult struct {
	Builder         string  `json:"builder"`
	GraphSeconds    float64 `json:"graph_seconds"`
	SearcherSeconds float64 `json:"searcher_seconds"` // CSR + entry points
	GraphEdges      int     `json:"graph_edges"`      // symmetrised, directed
	EntryPoints     int     `json:"entry_points"`
	Rounds          int     `json:"rounds"`
	DistComps       int64   `json:"dist_comps"`
	// Sweep and the fields below are populated when BuildWorkers is set.
	Sweep         []BuildSweepPoint `json:"worker_sweep,omitempty"`
	Speedup       float64           `json:"speedup,omitempty"`    // best sweep speedup vs workers=1
	Deterministic bool              `json:"worker_deterministic"` // all sweep graphs identical
}

// SearchReport is the full harness output; it marshals to BENCH_search.json.
type SearchReport struct {
	Schema    int    `json:"schema"`
	CreatedAt string `json:"created_at"`
	GoVersion string `json:"go_version"`
	MaxProcs  int    `json:"maxprocs"`
	Dataset   string `json:"dataset"`
	N         int    `json:"n"`
	Dim       int    `json:"dim"`
	Queries   int    `json:"queries"`
	Kappa     int    `json:"kappa"`
	Xi        int    `json:"xi"`
	Tau       int    `json:"tau"`
	Seed      int64  `json:"seed"`
	Shards    int    `json:"shards,omitempty"`  // 0/absent = monolithic
	Routing   int    `json:"routing,omitempty"` // routing centroids per shard; 0 = unrouted
	// DType is the dataset element type of the run ("float32"/"uint8";
	// absent on schema <= 3 baselines, which measured float32), and
	// DatasetBytes the resident bytes of the indexed dataset — the number
	// the uint8 path divides by 4.
	DType        string        `json:"dtype,omitempty"`
	DatasetBytes int64         `json:"dataset_bytes,omitempty"`
	Build        BuildResult   `json:"build"`
	Search       []SearchPoint `json:"search"`
	Batch        []BatchPoint  `json:"search_batch"`
}

// RunSearchBench executes the harness. logf, when non-nil, receives
// progress lines (cmd/gkbench passes a printer; tests pass nil).
func RunSearchBench(cfg SearchBenchConfig, logf func(format string, args ...any)) (*SearchReport, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.Queries <= 0 {
		return nil, fmt.Errorf("bench: query count must be positive, got %d", cfg.Queries)
	}
	if len(cfg.TopKs) == 0 || len(cfg.Efs) == 0 {
		return nil, fmt.Errorf("bench: empty topK/ef grid")
	}
	dt, err := gkmeans.ParseDType(cfg.DType)
	if err != nil {
		return nil, err
	}
	cfg.DType = dt.String()

	corpus := cfg.Data
	name := cfg.Dataset
	if corpus == nil {
		info, err := dataset.ByName(cfg.Dataset)
		if err != nil {
			return nil, err
		}
		corpus = info.Gen(cfg.N, cfg.Seed)
	} else if name == "" {
		name = "file"
	}
	if corpus.N <= cfg.Queries {
		return nil, fmt.Errorf("bench: corpus of %d rows cannot spare %d queries", corpus.N, cfg.Queries)
	}
	data, queries := splitCorpus(corpus, cfg.Queries)
	logf("corpus %s: %d×%d data, %d held-out queries", name, data.N, data.Dim, queries.N)

	if cfg.Shards > 1 {
		return runShardedSearchBench(cfg, name, data, queries, logf)
	}

	rep := newReport(cfg, name, data, queries)

	// The uint8 path narrows the (byte-valued) corpus up front; the graph is
	// still built over the float rows — bytes are exact in float32, so the
	// graph and every downstream number except dataset bytes is identical.
	var dataU8 *vec.U8Matrix
	if dt == gkmeans.DTypeUint8 {
		dataU8, err = vec.U8FromMatrix(data)
		if err != nil {
			return nil, fmt.Errorf("bench: -dtype uint8 needs a byte-valued corpus: %w", err)
		}
		rep.DatasetBytes = int64(len(dataU8.Data))
		logf("uint8 dataset: %d bytes resident (float32 would be %d)",
			len(dataU8.Data), 4*len(data.Data))
	}

	gc := core.GraphConfig{
		Kappa: cfg.Kappa, Xi: cfg.Xi, Tau: cfg.Tau, Seed: cfg.Seed,
		Workers: cfg.Workers, Builder: cfg.Builder,
	}
	start := time.Now()
	g, gs, err := core.BuildGraphWithStats(data, gc)
	if err != nil {
		return nil, err
	}
	rep.Build.GraphSeconds = time.Since(start).Seconds()
	rep.Build.Builder = gs.Builder
	rep.Build.Rounds = gs.Rounds
	rep.Build.DistComps = gs.DistComps
	logf("graph built with %s in %.2fs (%d rounds, %d dist comps)",
		gs.Builder, rep.Build.GraphSeconds, gs.Rounds, gs.DistComps)

	if len(cfg.BuildWorkers) > 0 {
		if err := runBuildSweep(data, gc, cfg.BuildWorkers, &rep.Build, logf); err != nil {
			return nil, err
		}
	}

	start = time.Now()
	var s *anns.Searcher
	if dataU8 != nil {
		s, err = anns.NewSearcherU8(dataU8, g, cfg.Entries)
	} else {
		s, err = anns.NewSearcher(data, g, cfg.Entries)
	}
	if err != nil {
		return nil, err
	}
	rep.Build.SearcherSeconds = time.Since(start).Seconds()
	rep.Build.GraphEdges = s.Edges()
	rep.Build.EntryPoints = s.Entries()

	measureGrid(rep, cfg, queries, exactTruthFor(cfg, data, queries),
		func(q []float32, topK, ef, _ int) []knngraph.Neighbor { return s.Search(q, topK, ef) },
		func() (dist, expanded uint64) {
			_, d, e := s.Totals()
			return d, e
		},
		func(topK, ef, _ int) { anns.BatchSearch(s, queries, topK, ef, cfg.Workers) },
		logf)
	return rep, nil
}

// exactTruthFor computes the ground truth once, at the largest requested
// topK, shared by both harness paths.
func exactTruthFor(cfg SearchBenchConfig, data, queries *vec.Matrix) [][]int32 {
	maxK := 0
	for _, k := range cfg.TopKs {
		if k > maxK {
			maxK = k
		}
	}
	return anns.ExactTruth(data, queries, maxK, cfg.Workers)
}

// measureGrid runs the topK×ef×nprobe measurement protocol shared by the
// monolithic and sharded harness paths: per cell, every query is timed
// through search and scored against truth, per-query work comes from the
// delta of the cumulative totals (the grid loop is sequential, so the
// delta is exact), and one batch run records throughput. Unrouted runs
// collapse the nprobe axis to the single full fan-out column (nprobe 0).
// Changing the protocol — percentiles, recall scoring, new counters —
// happens here, once, for every path.
func measureGrid(rep *SearchReport, cfg SearchBenchConfig, queries *vec.Matrix, truth [][]int32,
	search func(q []float32, topK, ef, nprobe int) []knngraph.Neighbor,
	totals func() (dist, expanded uint64),
	batch func(topK, ef, nprobe int),
	logf func(format string, args ...any)) {

	nprobes := cfg.NProbes
	if len(nprobes) == 0 || rep.Routing == 0 {
		nprobes = []int{0}
	}
	for _, topK := range cfg.TopKs {
		for _, ef := range cfg.Efs {
			for _, nprobe := range nprobes {
				pt := SearchPoint{TopK: topK, Ef: ef, NProbe: nprobe}
				lat := make([]time.Duration, queries.N)
				var recall float64
				dist0, expanded0 := totals()
				for qi := 0; qi < queries.N; qi++ {
					q := queries.Row(qi)
					t0 := time.Now()
					res := search(q, topK, ef, nprobe)
					lat[qi] = time.Since(t0)
					recall += recallOf(res, truth[qi], topK)
				}
				dist1, expanded1 := totals()
				sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
				var total time.Duration
				for _, l := range lat {
					total += l
				}
				nq := float64(queries.N)
				pt.Recall = recall / nq
				pt.MeanUS = total.Seconds() * 1e6 / nq
				pt.P50US = quantileUS(lat, 0.50)
				pt.P90US = quantileUS(lat, 0.90)
				pt.P99US = quantileUS(lat, 0.99)
				pt.AvgDistComps = float64(dist1-dist0) / nq
				pt.AvgExpanded = float64(expanded1-expanded0) / nq
				rep.Search = append(rep.Search, pt)
				logf("search topK=%-3d ef=%-4d np=%-2d recall=%.3f p50=%.0fµs p99=%.0fµs dist=%.0f exp=%.1f",
					topK, ef, nprobe, pt.Recall, pt.P50US, pt.P99US, pt.AvgDistComps, pt.AvgExpanded)

				t0 := time.Now()
				batch(topK, ef, nprobe)
				wall := time.Since(t0)
				bp := BatchPoint{TopK: topK, Ef: ef, NProbe: nprobe,
					QPS: nq / wall.Seconds(), WallMS: wall.Seconds() * 1e3}
				rep.Batch = append(rep.Batch, bp)
				logf("batch  topK=%-3d ef=%-4d np=%-2d %.0f qps", topK, ef, nprobe, bp.QPS)
			}
		}
	}
}

// newReport fills in the measurement metadata every harness path shares.
func newReport(cfg SearchBenchConfig, name string, data, queries *vec.Matrix) *SearchReport {
	return &SearchReport{
		Schema:       4,
		CreatedAt:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		MaxProcs:     runtime.GOMAXPROCS(0),
		Dataset:      name,
		N:            data.N,
		Dim:          data.Dim,
		Queries:      queries.N,
		Kappa:        cfg.Kappa,
		Xi:           cfg.Xi,
		Tau:          cfg.Tau,
		Seed:         cfg.Seed,
		DType:        cfg.DType,
		DatasetBytes: 4 * int64(len(data.Data)),
	}
}

// runShardedSearchBench is the cfg.Shards > 1 harness path: it builds a
// sharded index through the public API and measures the same grid over the
// fan-out search. Per-query work counters come from deltas of the
// aggregated SearchStats; the build sweep is skipped (per-shard builds
// already reuse the parallel pipeline, and the monolithic sweep is the
// worker-scaling record).
func runShardedSearchBench(cfg SearchBenchConfig, name string, data, queries *vec.Matrix,
	logf func(format string, args ...any)) (*SearchReport, error) {

	rep := newReport(cfg, name, data, queries)

	opts := []gkmeans.Option{
		gkmeans.WithShards(cfg.Shards),
		gkmeans.WithKappa(cfg.Kappa), gkmeans.WithXi(cfg.Xi), gkmeans.WithTau(cfg.Tau),
		gkmeans.WithSeed(cfg.Seed), gkmeans.WithWorkers(cfg.Workers),
		gkmeans.WithEntryPoints(cfg.Entries),
	}
	if cfg.Builder != "" {
		opts = append(opts, gkmeans.WithGraphBuilder(cfg.Builder))
	}
	if cfg.Routing > 0 {
		opts = append(opts, gkmeans.WithRouting(cfg.Routing))
	}
	if cfg.DType == "uint8" {
		opts = append(opts, gkmeans.WithDType(gkmeans.DTypeUint8))
	}
	start := time.Now()
	idx, err := gkmeans.Build(context.Background(), data, opts...)
	if err != nil {
		return nil, err
	}
	buildSeconds := time.Since(start).Seconds()
	if u8 := idx.DataU8(); u8 != nil {
		rep.DatasetBytes = int64(len(u8.Data))
		logf("uint8 dataset: %d bytes resident (float32 would be %d)",
			len(u8.Data), 4*len(data.Data))
	}
	rep.Shards = idx.Shards()
	if idx.Routed() {
		rep.Routing = idx.RoutingCentroids()
	}
	logf("index built: %d shard(s), %d routing centroid(s)/shard in %.2fs",
		idx.Shards(), rep.Routing, buildSeconds)
	if rep.Shards == 1 {
		// Build clamped the request down to one shard (dataset too small):
		// the run measured the monolithic configuration (the clamp also drops
		// the router), so leave the report's shards field 0/absent to keep it
		// comparable with a monolithic baseline.
		rep.Shards = 0
		logf("requested %d shards, but the corpus only supports a monolithic build", cfg.Shards)
	}
	rep.Build.Builder = cfg.Builder
	if rep.Build.Builder == "" {
		rep.Build.Builder = core.BuilderGKMeans
	}
	rep.Build.GraphSeconds = buildSeconds
	if len(cfg.BuildWorkers) > 0 {
		logf("build sweep skipped: not applicable to a sharded run")
	}

	measureGrid(rep, cfg, queries, exactTruthFor(cfg, data, queries),
		idx.SearchNProbe,
		func() (dist, expanded uint64) {
			st := idx.SearchStats()
			return st.DistanceComps, st.ExpandedCandidates
		},
		func(topK, ef, nprobe int) { idx.SearchBatchNProbe(queries, topK, ef, nprobe) },
		logf)
	return rep, nil
}

// graphRecallSample bounds the per-sweep-point recall estimate: 200 nodes
// keeps the exact-NN scans cheap while the ±0.005 tolerance the CI gate
// cares about stays resolvable.
const graphRecallSample = 200

// runBuildSweep rebuilds the graph once per worker count, recording
// wall-clock, speedup vs the workers=1 point, per-build work counters and
// sampled graph recall, and verifies the builds are worker-count
// deterministic (bit-identical graphs).
func runBuildSweep(data *vec.Matrix, gc core.GraphConfig, workerGrid []int,
	out *BuildResult, logf func(format string, args ...any)) error {

	out.Deterministic = true
	var ref *knngraph.Graph
	for _, w := range workerGrid {
		wgc := gc
		wgc.Workers = w
		t0 := time.Now()
		gw, st, err := core.BuildGraphWithStats(data, wgc)
		if err != nil {
			return err
		}
		pt := BuildSweepPoint{
			Workers: w, Seconds: time.Since(t0).Seconds(),
			Rounds: st.Rounds, DistComps: st.DistComps,
			GraphRecall: sampledGraphRecall(data, gw, graphRecallSample, gc.Seed),
		}
		if ref == nil {
			ref = gw
		} else if !graphsEqual(ref, gw) {
			out.Deterministic = false
		}
		out.Sweep = append(out.Sweep, pt)
		logf("build workers=%-2d %.3fs (%d rounds, %d dist comps, graph recall %.3f)",
			pt.Workers, pt.Seconds, pt.Rounds, pt.DistComps, pt.GraphRecall)
	}
	// Speedups are relative to the workers=1 point; without one the sweep
	// still records absolute times but every speedup stays 1.0.
	base := 0.0
	for _, pt := range out.Sweep {
		if pt.Workers == 1 {
			base = pt.Seconds
			break
		}
	}
	for i := range out.Sweep {
		out.Sweep[i].Speedup = 1
		if base > 0 && out.Sweep[i].Seconds > 0 {
			out.Sweep[i].Speedup = base / out.Sweep[i].Seconds
		}
		if out.Sweep[i].Speedup > out.Speedup {
			out.Speedup = out.Sweep[i].Speedup
		}
	}
	if !out.Deterministic {
		logf("WARNING: build sweep produced differing graphs across worker counts")
	}
	return nil
}

// graphsEqual reports whether two graphs store exactly the same neighbour
// lists — the determinism check of the build sweep.
func graphsEqual(a, b *knngraph.Graph) bool {
	if a.N() != b.N() || a.Kappa != b.Kappa {
		return false
	}
	for i := range a.Lists {
		if len(a.Lists[i]) != len(b.Lists[i]) {
			return false
		}
		for j := range a.Lists[i] {
			if a.Lists[i][j] != b.Lists[i][j] {
				return false
			}
		}
	}
	return true
}

// splitCorpus holds out nQueries evenly spread rows as the query set and
// returns the remaining rows as the searchable data — the protocol of the
// anns test suite and of SIFT1M's own query set.
func splitCorpus(m *vec.Matrix, nQueries int) (data, queries *vec.Matrix) {
	stride := m.N / nQueries
	dataIdx := make([]int, 0, m.N-nQueries)
	queryIdx := make([]int, 0, nQueries)
	for i := 0; i < m.N; i++ {
		if i%stride == 0 && len(queryIdx) < nQueries {
			queryIdx = append(queryIdx, i)
		} else {
			dataIdx = append(dataIdx, i)
		}
	}
	return m.SubsetRows(dataIdx), m.SubsetRows(queryIdx)
}

// recallOf returns the fraction of the true top-k found in res.
func recallOf(res []knngraph.Neighbor, truth []int32, k int) float64 {
	if len(truth) > k {
		truth = truth[:k]
	}
	if len(truth) == 0 {
		return 0
	}
	got := make(map[int32]bool, len(res))
	for _, nb := range res {
		got[nb.ID] = true
	}
	hit := 0
	for _, id := range truth {
		if got[id] {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// quantileUS reads quantile q from an ascending-sorted latency slice, in
// microseconds (nearest-rank).
func quantileUS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i].Seconds() * 1e6
}

// Summary renders the report as an aligned table for terminal output; a
// routed run grows an nprobe column (0 = full fan-out).
func (r *SearchReport) Summary() *Table {
	shards := ""
	if r.Shards > 1 {
		shards = fmt.Sprintf(", %d shards", r.Shards)
	}
	if r.Routing > 0 {
		shards += fmt.Sprintf(", routed (%d centroids/shard)", r.Routing)
	}
	if r.DType == "uint8" {
		shards += ", uint8"
	}
	t := &Table{
		Title:  fmt.Sprintf("search benchmark — %s %d×%d, κ=%d τ=%d%s", r.Dataset, r.N, r.Dim, r.Kappa, r.Tau, shards),
		Header: []string{"topK", "ef", "recall", "mean µs", "p50 µs", "p99 µs", "dist/q", "exp/q", "batch qps"},
	}
	if r.Routing > 0 {
		t.Header = []string{"topK", "ef", "nprobe", "recall", "mean µs", "p50 µs", "p99 µs", "dist/q", "exp/q", "batch qps"}
	}
	for i, pt := range r.Search {
		qps := ""
		if i < len(r.Batch) {
			qps = fmt.Sprintf("%.0f", r.Batch[i].QPS)
		}
		row := []string{d(pt.TopK), d(pt.Ef)}
		if r.Routing > 0 {
			row = append(row, d(pt.NProbe))
		}
		row = append(row, f3(pt.Recall), f(pt.MeanUS), f(pt.P50US), f(pt.P99US),
			f(pt.AvgDistComps), f(pt.AvgExpanded), qps)
		t.AddRow(row...)
	}
	return t
}
