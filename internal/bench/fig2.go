package bench

import (
	"fmt"

	"gkmeans/internal/core"
	"gkmeans/internal/knngraph"
	"gkmeans/internal/metrics"
)

// Fig2Config sizes the Fig. 2 experiment: graph recall@top1 and clustering
// distortion as functions of the construction round τ.
type Fig2Config struct {
	N     int // <=0 selects 6000
	Tau   int // rounds measured; <=0 selects 15 (paper plots 30)
	Xi    int // <=0 selects 50
	Kappa int // <=0 selects 20
	Seed  int64
}

func (c *Fig2Config) defaults() {
	if c.N <= 0 {
		c.N = 6000
	}
	if c.Tau <= 0 {
		c.Tau = 15
	}
	if c.Xi <= 0 {
		c.Xi = 50
	}
	if c.Kappa <= 0 {
		c.Kappa = 20
	}
}

// Fig2 reproduces paper Fig. 2 on SIFT-like data: the intertwined evolution
// of graph quality and clustering quality. Each row is one construction
// round with the graph's recall and the round's clustering distortion.
func Fig2(cfg Fig2Config) (*Table, error) {
	cfg.defaults()
	data, err := Gen("sift", cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	exact := knngraph.BruteForce(data, 1, 0) // top-1 ground truth
	k0 := data.N / cfg.Xi
	if k0 < 1 {
		k0 = 1
	}

	t := &Table{
		Title: fmt.Sprintf("Fig. 2 — recall & distortion vs τ (n=%d, ξ=%d, κ=%d, k0=%d)",
			data.N, cfg.Xi, cfg.Kappa, k0),
		Header: []string{"tau", "recall@1", "distortion"},
	}
	_, err = core.BuildGraph(data, core.GraphConfig{
		Kappa: cfg.Kappa, Xi: cfg.Xi, Tau: cfg.Tau, Seed: cfg.Seed,
		OnRound: func(round int, g *knngraph.Graph, labels []int) {
			recall := g.Recall(exact)
			dist := metrics.DistortionFromLabels(data, labels, k0)
			t.AddRow(d(round), f3(recall), f(dist))
		},
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}
