package bench

import (
	"fmt"
	"time"

	"gkmeans/internal/bkm"
	"gkmeans/internal/closure"
	"gkmeans/internal/core"
	"gkmeans/internal/dataset"
	"gkmeans/internal/kmeans"
	"gkmeans/internal/knngraph"
	"gkmeans/internal/metrics"
	"gkmeans/internal/nndescent"
	"gkmeans/internal/vec"
)

// Method names accepted by Run — the paper's comparison set (§5) plus the
// triangle-inequality baselines discussed in §1.
const (
	MKMeans    = "k-means"         // Lloyd [5]
	MBKM       = "BKM"             // boost k-means [16]
	MMiniBatch = "Mini-Batch"      // Sculley [20]
	MClosure   = "closure k-means" // Wang et al. [27]
	MGKMeans   = "GK-means"        // Alg. 2 + Alg. 3 (this paper)
	MGKMeansT  = "GK-means-"       // Alg. 2 on traditional k-means
	MKGraphGK  = "KGraph+GK-means" // Alg. 2 on an NN-Descent graph
	MElkan     = "Elkan"           // Elkan [29]
	MHamerly   = "Hamerly"         // Hamerly
	MBisecting = "bisecting"       // top-down hierarchical [1,40,41]
	MAKM       = "AKM"             // KD-tree approximate k-means [22]
)

// Methods returns the method set of the paper's scalability experiments
// (Fig. 6/7), in presentation order.
func Methods() []string {
	return []string{MMiniBatch, MClosure, MKMeans, MBKM, MGKMeans}
}

// RunConfig controls a unified method run.
type RunConfig struct {
	K     int
	Iters int
	Seed  int64
	Trace bool
	Kappa int // graph parameters for the GK-means family
	Xi    int
	Tau   int
}

func (c RunConfig) kappa() int {
	if c.Kappa <= 0 {
		return 20
	}
	return c.Kappa
}
func (c RunConfig) xi() int {
	if c.Xi <= 0 {
		return 50
	}
	return c.Xi
}
func (c RunConfig) tau() int {
	if c.Tau <= 0 {
		return 8
	}
	return c.Tau
}

// RunResult is the unified outcome used by every sweep.
type RunResult struct {
	Labels     []int
	Centroids  *vec.Matrix
	Distortion float64
	InitTime   time.Duration // initialisation incl. graph construction
	IterTime   time.Duration
	History    []kmeans.IterStat
	Recall     float64 // graph recall for the GK-means family (when computed)
}

// Run dispatches one clustering method under a common configuration. For
// the GK-means family, graph construction counts into InitTime (the paper's
// Table 2 reports it the same way).
func Run(method string, data *vec.Matrix, cfg RunConfig) (*RunResult, error) {
	switch method {
	case MKMeans:
		res, err := kmeans.Lloyd(data, kmeans.Config{
			K: cfg.K, MaxIter: cfg.Iters, Seed: cfg.Seed, Trace: cfg.Trace, PlusPlus: false,
		})
		return wrap(data, res, err)
	case MElkan:
		res, err := kmeans.Elkan(data, kmeans.Config{
			K: cfg.K, MaxIter: cfg.Iters, Seed: cfg.Seed, Trace: cfg.Trace,
		})
		return wrap(data, res, err)
	case MHamerly:
		res, err := kmeans.Hamerly(data, kmeans.Config{
			K: cfg.K, MaxIter: cfg.Iters, Seed: cfg.Seed, Trace: cfg.Trace,
		})
		return wrap(data, res, err)
	case MBisecting:
		res, err := kmeans.Bisecting(data, kmeans.Config{
			K: cfg.K, MaxIter: cfg.Iters, Seed: cfg.Seed,
		})
		return wrap(data, res, err)
	case MAKM:
		res, err := kmeans.AKM(data, kmeans.AKMConfig{
			Config: kmeans.Config{K: cfg.K, MaxIter: cfg.Iters, Seed: cfg.Seed, Trace: cfg.Trace},
		})
		return wrap(data, res, err)
	case MBKM:
		res, err := bkm.Cluster(data, bkm.Config{
			K: cfg.K, MaxIter: cfg.Iters, Seed: cfg.Seed, Trace: cfg.Trace,
		})
		return wrap(data, res, err)
	case MMiniBatch:
		res, err := kmeans.MiniBatch(data, kmeans.MiniBatchConfig{
			Config:    kmeans.Config{K: cfg.K, MaxIter: cfg.Iters, Seed: cfg.Seed, Trace: cfg.Trace},
			BatchSize: 1024,
		})
		return wrap(data, res, err)
	case MClosure:
		res, err := closure.Cluster(data, closure.Config{
			K: cfg.K, MaxIter: cfg.Iters, Seed: cfg.Seed, Trace: cfg.Trace,
			LeafSize: cfg.xi(),
		})
		return wrap(data, res, err)
	case MGKMeans, MGKMeansT:
		start := time.Now()
		g, err := core.BuildGraph(data, core.GraphConfig{
			Kappa: cfg.kappa(), Xi: cfg.xi(), Tau: cfg.tau(), Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		graphTime := time.Since(start)
		return runOnGraph(data, g, graphTime, method == MGKMeansT, cfg)
	case MKGraphGK:
		start := time.Now()
		g, err := nndescent.Build(data, nndescent.Config{Kappa: cfg.kappa(), Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		graphTime := time.Since(start)
		return runOnGraph(data, g, graphTime, false, cfg)
	default:
		return nil, fmt.Errorf("bench: unknown method %q", method)
	}
}

func runOnGraph(data *vec.Matrix, g *knngraph.Graph, graphTime time.Duration,
	traditional bool, cfg RunConfig) (*RunResult, error) {
	res, err := core.Cluster(data, g, core.Config{
		K: cfg.K, MaxIter: cfg.Iters, Seed: cfg.Seed, Trace: cfg.Trace, Traditional: traditional,
	})
	if err != nil {
		return nil, err
	}
	out, err := wrap(data, res.Result, nil)
	if err != nil {
		return nil, err
	}
	out.InitTime += graphTime
	// Shift traced timestamps so elapsed includes graph construction (the
	// distortion-vs-time plots of Fig. 5 include all setup cost).
	for i := range out.History {
		out.History[i].Elapsed += graphTime
	}
	out.Recall = sampledGraphRecall(data, g, 100, cfg.Seed)
	return out, nil
}

func wrap(data *vec.Matrix, res *kmeans.Result, err error) (*RunResult, error) {
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Labels:     res.Labels,
		Centroids:  res.Centroids,
		Distortion: metrics.AverageDistortion(data, res.Labels, res.Centroids),
		InitTime:   res.InitTime,
		IterTime:   res.IterTime,
		History:    res.History,
	}, nil
}

// sampledGraphRecall estimates graph recall@top1 on a node sample by
// scanning the full dataset for each sampled node's true nearest neighbour
// (the paper's VLAD10M protocol, §5.1).
func sampledGraphRecall(data *vec.Matrix, g *knngraph.Graph, samples int, seed int64) float64 {
	n := data.N
	if samples > n {
		samples = n
	}
	step := n / samples
	if step == 0 {
		step = 1
	}
	hits, total := 0, 0
	for s := 0; s < samples; s++ {
		i := (s*step + int(seed)) % n
		row := data.Row(i)
		best, bestD := -1, float32(0)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if dd := vec.L2Sqr(row, data.Row(j)); best < 0 || dd < bestD {
				best, bestD = j, dd
			}
		}
		total++
		if g.Contains(i, int32(best)) {
			hits++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// Gen generates the named synthetic corpus at size n.
func Gen(name string, n int, seed int64) (*vec.Matrix, error) {
	info, err := dataset.ByName(name)
	if err != nil {
		return nil, err
	}
	return info.Gen(n, seed), nil
}
