// Package bench is the experiment harness: one runner per table and figure
// of the paper's evaluation (§5), a unified method dispatcher so every
// clustering algorithm is swept identically, and plain-text/CSV reporting.
//
// Every experiment runs at a reduced default scale suited to a laptop (the
// paper's largest runs need CPU-days; see DESIGN.md §2), with the same n:k
// ratios, and accepts a scale factor to grow toward paper size on bigger
// hardware.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a rendered experiment result: a title, a header row and string
// cells. Rows print aligned; WriteCSV exports the same content.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of already formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// WriteCSV emits the table as comma-separated values (quotes cells that
// contain commas).
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// f formats a float compactly for table cells.
func f(v float64) string { return fmt.Sprintf("%.4g", v) }

// f3 formats a float with three decimals (recall values).
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// d formats an integer.
func d(v int) string { return fmt.Sprintf("%d", v) }

// dur formats a duration in seconds with millisecond resolution.
func dur(v time.Duration) string { return fmt.Sprintf("%.3fs", v.Seconds()) }
