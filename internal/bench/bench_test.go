package bench

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// The harness tests run every experiment at a tiny scale: they verify the
// plumbing (rows produced, columns consistent, trends sane), not the
// paper-scale numbers — those are exercised by cmd/experiments.

func TestTableRenderAndCSV(t *testing.T) {
	tab := &Table{Title: "t", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2,x")
	out := tab.Render()
	if !strings.Contains(out, "== t ==") || !strings.Contains(out, "bb") {
		t.Fatalf("render missing pieces:\n%s", out)
	}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"2,x"`) {
		t.Fatalf("csv quoting wrong: %s", buf.String())
	}
}

func TestRunDispatchesEveryMethod(t *testing.T) {
	data, err := Gen("sift", 600, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{MKMeans, MBKM, MMiniBatch, MClosure, MGKMeans,
		MGKMeansT, MKGraphGK, MElkan, MHamerly} {
		res, err := Run(m, data, RunConfig{K: 12, Iters: 5, Seed: 2, Kappa: 8, Xi: 20, Tau: 2})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if len(res.Labels) != data.N || res.Distortion <= 0 {
			t.Fatalf("%s: bad result", m)
		}
	}
	if _, err := Run("nope", data, RunConfig{K: 2, Iters: 1}); err == nil {
		t.Fatal("unknown method should error")
	}
}

func TestRunGraphMethodsReportRecallAndInit(t *testing.T) {
	data, _ := Gen("sift", 800, 3)
	res, err := Run(MGKMeans, data, RunConfig{K: 16, Iters: 5, Seed: 4, Kappa: 10, Xi: 25, Tau: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recall <= 0 || res.Recall > 1 {
		t.Fatalf("graph recall %v out of (0,1]", res.Recall)
	}
	if res.InitTime <= 0 {
		t.Fatal("graph construction must count into InitTime")
	}
}

func TestFig1SmallScale(t *testing.T) {
	tab, err := Fig1(Fig1Config{N: 1000, ClusterSize: 50, MaxRank: 50, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	// The co-occurrence probability must be far above the random floor
	// (50/1000 = 0.05) at rank 1 and non-increasing in trend.
	first := tab.Rows[0]
	var p1 float64
	if _, err := fscan(first[1], &p1); err != nil {
		t.Fatal(err)
	}
	if p1 < 0.2 {
		t.Fatalf("rank-1 co-occurrence %.3f too close to random", p1)
	}
}

func TestFig2SmallScale(t *testing.T) {
	tab, err := Fig2(Fig2Config{N: 1200, Tau: 5, Xi: 25, Kappa: 8, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("expected 5 rounds, got %d", len(tab.Rows))
	}
	var r1, r5 float64
	if _, err := fscan(tab.Rows[0][1], &r1); err != nil {
		t.Fatal(err)
	}
	if _, err := fscan(tab.Rows[4][1], &r5); err != nil {
		t.Fatal(err)
	}
	if r5 < r1 {
		t.Fatalf("recall should improve with tau: %.3f -> %.3f", r1, r5)
	}
}

func TestFig4SmallScale(t *testing.T) {
	tab, err := Fig4(Fig4Config{N: 1000, Kappa: 8, Seed: 7, Iters: 8})
	if err != nil {
		t.Fatal(err)
	}
	// 5 tau levels × 2 configs + 4 NN-Descent levels = 14 rows.
	if len(tab.Rows) != 14 {
		t.Fatalf("expected 14 rows, got %d", len(tab.Rows))
	}
}

func TestFig5SmallScale(t *testing.T) {
	tabs, err := Fig5("glove", Fig5Config{N: 800, Iters: 6, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 {
		t.Fatalf("expected 2 tables, got %d", len(tabs))
	}
	if len(tabs[0].Header) != 1+len(fig5Methods()) {
		t.Fatalf("iteration table has %d columns", len(tabs[0].Header))
	}
	if len(tabs[1].Rows) != len(fig5Methods()) {
		t.Fatalf("time table has %d rows", len(tabs[1].Rows))
	}
}

func TestFig6SmallScale(t *testing.T) {
	tabs, err := Fig6Size(Fig6Config{Sizes: []int{300, 600}, KForN: 8, Iters: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs[0].Rows) != 2*len(Methods()) {
		t.Fatalf("size sweep rows %d", len(tabs[0].Rows))
	}
	tabs, err = Fig6K(Fig6Config{NForK: 600, Ks: []int{8, 16}, Iters: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs[0].Rows) != 2*len(Methods()) {
		t.Fatalf("k sweep rows %d", len(tabs[0].Rows))
	}
}

func TestTable1(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 4 {
		t.Fatalf("Table 1 rows %d", len(tab.Rows))
	}
}

func TestTable2SmallScale(t *testing.T) {
	tab, err := Table2(Table2Config{N: 600, Iters: 4, Seed: 10, Kappa: 8, Tau: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("Table 2 rows %d", len(tab.Rows))
	}
	// closure k-means has no graph: recall column must be N.A.
	if tab.Rows[2][5] != "N.A." {
		t.Fatalf("closure recall cell %q", tab.Rows[2][5])
	}
}

func TestANNSSmallScale(t *testing.T) {
	tab, err := ANNS(ANNSConfig{N: 600, Queries: 30, Tau: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("ANNS rows %d", len(tab.Rows))
	}
}

func TestAblationSmallScale(t *testing.T) {
	tab, err := Ablation(AblationConfig{N: 400, Iters: 4, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	// 5 kappa + 4 xi + 4 tau rows.
	if len(tab.Rows) != 13 {
		t.Fatalf("ablation rows %d", len(tab.Rows))
	}
}

func TestBaselinesSmallScale(t *testing.T) {
	tab, err := Baselines(BaselinesConfig{N: 500, K: 10, Iters: 4, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 11 {
		t.Fatalf("baselines rows %d", len(tab.Rows))
	}
}

func TestDimsSmallScale(t *testing.T) {
	tab, err := Dims(DimsConfig{N: 400, K: 8, Iters: 4, Seed: 18, Dims: []int{8, 64}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("dims rows %d", len(tab.Rows))
	}
}

func TestRunAKM(t *testing.T) {
	data, _ := Gen("sift", 300, 16)
	res, err := Run(MAKM, data, RunConfig{K: 8, Iters: 5, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != 300 || res.Distortion <= 0 {
		t.Fatal("bad AKM result")
	}
}

func TestRunBisecting(t *testing.T) {
	data, _ := Gen("glove", 300, 14)
	res, err := Run(MBisecting, data, RunConfig{K: 8, Iters: 5, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != 300 {
		t.Fatal("bad result")
	}
}

func TestGenUnknownDataset(t *testing.T) {
	if _, err := Gen("bogus", 10, 1); err == nil {
		t.Fatal("unknown dataset should error")
	}
}

func TestSamplePoints(t *testing.T) {
	pts := samplePoints(30)
	if pts[len(pts)-1] != 30 {
		t.Fatalf("last point %d, want 30", pts[len(pts)-1])
	}
	pts = samplePoints(4)
	for _, p := range pts {
		if p > 4 {
			t.Fatalf("point %d exceeds max", p)
		}
	}
}

// fscan parses a float from a table cell.
func fscan(s string, v *float64) (int, error) {
	return fmt.Sscanf(s, "%g", v)
}
