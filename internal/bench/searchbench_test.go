package bench

import (
	"encoding/json"
	"testing"

	"gkmeans/internal/dataset"
)

func TestRunSearchBenchProducesFullReport(t *testing.T) {
	cfg := SearchBenchConfig{
		Dataset: "sift", N: 400, Queries: 25,
		Kappa: 6, Xi: 15, Tau: 2, Seed: 7,
		TopKs: []int{5}, Efs: []int{16, 32},
		BuildWorkers: []int{1, 2},
	}
	rep, err := RunSearchBench(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != 4 || rep.Dataset != "sift" || rep.N != 375 || rep.Queries != 25 {
		t.Fatalf("report header wrong: %+v", rep)
	}
	if rep.DType != "float32" || rep.DatasetBytes != int64(4*375*128) {
		t.Fatalf("dtype header wrong: dtype=%q dataset_bytes=%d", rep.DType, rep.DatasetBytes)
	}
	if rep.Build.GraphSeconds <= 0 || rep.Build.GraphEdges <= 0 || rep.Build.EntryPoints <= 0 {
		t.Fatalf("build section not populated: %+v", rep.Build)
	}
	if rep.Build.Builder != "gkmeans" || rep.Build.Rounds != 2 || rep.Build.DistComps <= 0 {
		t.Fatalf("build stats not populated: %+v", rep.Build)
	}
	if len(rep.Build.Sweep) != 2 {
		t.Fatalf("sweep has %d points, want 2: %+v", len(rep.Build.Sweep), rep.Build.Sweep)
	}
	if !rep.Build.Deterministic {
		t.Fatal("worker sweep produced differing graphs")
	}
	for _, pt := range rep.Build.Sweep {
		if pt.Seconds <= 0 || pt.Speedup <= 0 || pt.Rounds != 2 || pt.DistComps <= 0 {
			t.Fatalf("sweep point not populated: %+v", pt)
		}
		if pt.GraphRecall != rep.Build.Sweep[0].GraphRecall {
			t.Fatalf("identical graphs with different recall: %+v", rep.Build.Sweep)
		}
	}
	if len(rep.Search) != 2 || len(rep.Batch) != 2 {
		t.Fatalf("grid sizes: %d search, %d batch points", len(rep.Search), len(rep.Batch))
	}
	for _, pt := range rep.Search {
		if pt.Recall < 0 || pt.Recall > 1 {
			t.Fatalf("recall out of range: %+v", pt)
		}
		if pt.MeanUS <= 0 || pt.P50US < 0 || pt.P99US < pt.P50US {
			t.Fatalf("latency summary inconsistent: %+v", pt)
		}
		if pt.AvgDistComps <= 0 || pt.AvgExpanded <= 0 {
			t.Fatalf("work counters not populated: %+v", pt)
		}
	}
	for _, bp := range rep.Batch {
		if bp.QPS <= 0 || bp.WallMS <= 0 {
			t.Fatalf("batch point not populated: %+v", bp)
		}
	}

	// The report is the BENCH_search.json payload: it must round-trip.
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back SearchReport
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.N != rep.N || len(back.Search) != len(rep.Search) || back.Search[0].Recall != rep.Search[0].Recall {
		t.Fatal("report did not survive a JSON round trip")
	}

	if rows := rep.Summary().Render(); rows == "" {
		t.Fatal("empty summary table")
	}
}

func TestRunSearchBenchOnPreloadedData(t *testing.T) {
	// The -data path of cmd/gkbench: a pre-loaded matrix instead of a
	// synthetic corpus name.
	m := dataset.GloVeLike(300, 9)
	rep, err := RunSearchBench(SearchBenchConfig{
		Data: m, Queries: 20, Kappa: 5, Xi: 12, Tau: 2, Seed: 3,
		TopKs: []int{3}, Efs: []int{16},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dataset != "file" || rep.N != 280 || rep.Dim != 100 {
		t.Fatalf("preloaded corpus mishandled: %+v", rep)
	}
}

func TestRunSearchBenchNNDescentBuilder(t *testing.T) {
	rep, err := RunSearchBench(SearchBenchConfig{
		Dataset: "sift", N: 400, Queries: 20,
		Kappa: 8, Tau: 6, Seed: 5, Builder: "nndescent",
		TopKs: []int{5}, Efs: []int{32},
		BuildWorkers: []int{1, 3},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Build.Builder != "nndescent" || rep.Build.Rounds <= 0 || rep.Build.DistComps <= 0 {
		t.Fatalf("nndescent build stats not populated: %+v", rep.Build)
	}
	if !rep.Build.Deterministic {
		t.Fatal("nndescent sweep produced differing graphs")
	}
	if _, err := RunSearchBench(SearchBenchConfig{
		Dataset: "sift", N: 400, Queries: 20, Kappa: 8, Builder: "nosuch",
		TopKs: []int{5}, Efs: []int{32},
	}, nil); err == nil {
		t.Fatal("unknown builder accepted")
	}
}

func TestRunSearchBenchRejectsBadConfig(t *testing.T) {
	if _, err := RunSearchBench(SearchBenchConfig{Dataset: "sift", N: 100, Queries: 0,
		Kappa: 5, TopKs: []int{5}, Efs: []int{16}}, nil); err == nil {
		t.Fatal("zero queries accepted")
	}
	if _, err := RunSearchBench(SearchBenchConfig{Dataset: "nosuch", N: 100, Queries: 10,
		Kappa: 5, TopKs: []int{5}, Efs: []int{16}}, nil); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := RunSearchBench(SearchBenchConfig{Dataset: "sift", N: 100, Queries: 10,
		Kappa: 5}, nil); err == nil {
		t.Fatal("empty grid accepted")
	}
}

// The cfg.Shards > 1 path must produce the same report shape through the
// public fan-out API, record the shard count, and refuse comparison
// against a baseline with a different one.
func TestRunSearchBenchSharded(t *testing.T) {
	cfg := SearchBenchConfig{
		Dataset: "sift", N: 400, Queries: 25,
		Kappa: 6, Xi: 15, Tau: 2, Seed: 7,
		TopKs: []int{5}, Efs: []int{16, 32},
		Shards: 3,
	}
	rep, err := RunSearchBench(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shards != 3 {
		t.Fatalf("report shards = %d, want 3", rep.Shards)
	}
	if rep.Build.GraphSeconds <= 0 || rep.Build.Builder != "gkmeans" {
		t.Fatalf("build section not populated: %+v", rep.Build)
	}
	if len(rep.Search) != 2 || len(rep.Batch) != 2 {
		t.Fatalf("grid sizes: %d search, %d batch points", len(rep.Search), len(rep.Batch))
	}
	for _, pt := range rep.Search {
		if pt.Recall <= 0 || pt.MeanUS <= 0 || pt.AvgDistComps <= 0 || pt.AvgExpanded <= 0 {
			t.Fatalf("sharded search point not populated: %+v", pt)
		}
	}
	for _, bp := range rep.Batch {
		if bp.QPS <= 0 {
			t.Fatalf("sharded batch point not populated: %+v", bp)
		}
	}

	mono := *rep
	mono.Shards = 0
	if _, err := CompareReports(&mono, rep, CompareThresholds{}); err == nil {
		t.Fatal("comparing sharded against monolithic baseline did not error")
	}
	if _, err := CompareReports(rep, rep, CompareThresholds{}); err != nil {
		t.Fatalf("self-compare errored: %v", err)
	}
}

func TestRunSearchBenchRouted(t *testing.T) {
	cfg := SearchBenchConfig{
		Dataset: "sift", N: 400, Queries: 25,
		Kappa: 6, Xi: 15, Tau: 2, Seed: 7,
		TopKs: []int{5}, Efs: []int{32},
		Shards: 3, Routing: 2, NProbes: []int{1, 3},
	}
	rep, err := RunSearchBench(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shards != 3 || rep.Routing != 2 {
		t.Fatalf("report shards/routing = %d/%d, want 3/2", rep.Shards, rep.Routing)
	}
	// One (topK, ef) cell × two nprobe columns.
	if len(rep.Search) != 2 || len(rep.Batch) != 2 {
		t.Fatalf("grid sizes: %d search, %d batch points", len(rep.Search), len(rep.Batch))
	}
	if rep.Search[0].NProbe != 1 || rep.Search[1].NProbe != 3 {
		t.Fatalf("nprobe columns = %d,%d, want 1,3", rep.Search[0].NProbe, rep.Search[1].NProbe)
	}
	// Probing one shard out of three must do strictly less distance work
	// than full fan-out, and cannot beat its recall.
	one, all := rep.Search[0], rep.Search[1]
	if one.AvgDistComps >= all.AvgDistComps {
		t.Fatalf("nprobe=1 did %f dist comps/query, full fan-out %f — routing saved nothing",
			one.AvgDistComps, all.AvgDistComps)
	}
	if one.Recall > all.Recall {
		t.Fatalf("nprobe=1 recall %f exceeds full fan-out %f", one.Recall, all.Recall)
	}

	// A routed report only compares against a baseline with the same router.
	unrouted := *rep
	unrouted.Routing = 0
	if _, err := CompareReports(&unrouted, rep, CompareThresholds{}); err == nil {
		t.Fatal("comparing routed against unrouted baseline did not error")
	}
	if _, err := CompareReports(rep, rep, CompareThresholds{}); err != nil {
		t.Fatalf("self-compare errored: %v", err)
	}
}

// The -dtype uint8 axis must run the integer path on both the monolithic
// and sharded branches, record the byte-sized dataset, and — because the
// synthetic sift corpus is byte-valued and the integer kernels are exact —
// reproduce the float32 run's recall and work counters identically.
func TestRunSearchBenchUint8(t *testing.T) {
	base := SearchBenchConfig{
		Dataset: "sift", N: 400, Queries: 25,
		Kappa: 6, Xi: 15, Tau: 2, Seed: 7,
		TopKs: []int{5}, Efs: []int{16, 32},
	}
	for _, shards := range []int{0, 3} {
		f32cfg, u8cfg := base, base
		f32cfg.Shards, u8cfg.Shards = shards, shards
		u8cfg.DType = "uint8"
		f32rep, err := RunSearchBench(f32cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		u8rep, err := RunSearchBench(u8cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if u8rep.DType != "uint8" {
			t.Fatalf("shards=%d: report dtype %q", shards, u8rep.DType)
		}
		if u8rep.DatasetBytes*4 != f32rep.DatasetBytes {
			t.Fatalf("shards=%d: dataset bytes %d (uint8) vs %d (float32), want 4x",
				shards, u8rep.DatasetBytes, f32rep.DatasetBytes)
		}
		for i := range f32rep.Search {
			fp, up := f32rep.Search[i], u8rep.Search[i]
			if fp.Recall != up.Recall || fp.AvgDistComps != up.AvgDistComps || fp.AvgExpanded != up.AvgExpanded {
				t.Fatalf("shards=%d cell %d: float32 (recall %v dist %v exp %v) vs uint8 (recall %v dist %v exp %v)",
					shards, i, fp.Recall, fp.AvgDistComps, fp.AvgExpanded, up.Recall, up.AvgDistComps, up.AvgExpanded)
			}
		}
		// Different-dtype reports are refresh-not-compare.
		if _, err := CompareReports(f32rep, u8rep, CompareThresholds{}); err == nil {
			t.Fatalf("shards=%d: comparing uint8 against float32 baseline did not error", shards)
		}
	}
	bad := base
	bad.DType = "int16"
	if _, err := RunSearchBench(bad, nil); err == nil {
		t.Fatal("unknown dtype accepted")
	}
}
