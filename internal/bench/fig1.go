package bench

import (
	"fmt"

	"gkmeans/internal/kmeans"
	"gkmeans/internal/knngraph"
	"gkmeans/internal/twomeans"
)

// Fig1Config sizes the Fig. 1 experiment: the probability that a sample's
// rank-κ true nearest neighbour lives in the sample's cluster, measured for
// traditional k-means and the 2M tree with cluster size fixed to 50.
type Fig1Config struct {
	N           int // samples; <=0 selects 6000
	ClusterSize int // paper fixes 50
	MaxRank     int // deepest neighbour rank measured; <=0 selects 150
	Seed        int64
}

func (c *Fig1Config) defaults() {
	if c.N <= 0 {
		c.N = 6000
	}
	if c.ClusterSize <= 0 {
		c.ClusterSize = 50
	}
	if c.MaxRank <= 0 {
		c.MaxRank = 150
	}
}

// Fig1 reproduces paper Fig. 1(a,b) on SIFT-like data. Each row is a
// neighbour rank with the same-cluster co-occurrence probability under both
// clusterings, plus the random-collision floor the paper quotes
// (clusterSize/n).
func Fig1(cfg Fig1Config) (*Table, error) {
	cfg.defaults()
	data, err := Gen("sift", cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	k := data.N / cfg.ClusterSize
	if k < 2 {
		return nil, fmt.Errorf("bench: fig1 needs n >= 2×cluster size")
	}

	exact := knngraph.BruteForce(data, cfg.MaxRank, 0)

	km, err := kmeans.Lloyd(data, kmeans.Config{K: k, MaxIter: 30, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	tm, err := twomeans.Cluster(data, twomeans.Config{K: k, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}

	probKM := coOccurrence(exact, km.Labels, cfg.MaxRank)
	probTM := coOccurrence(exact, tm, cfg.MaxRank)

	t := &Table{
		Title: fmt.Sprintf("Fig. 1 — P(rank-κ NN in same cluster), n=%d, cluster size=%d (random floor %.5f)",
			data.N, cfg.ClusterSize, float64(cfg.ClusterSize)/float64(data.N)),
		Header: []string{"rank", "P k-means", "P 2M tree"},
	}
	for _, rank := range []int{1, 2, 5, 10, 20, 30, 50, 75, 100, 125, 150} {
		if rank > cfg.MaxRank {
			break
		}
		t.AddRow(d(rank), f3(probKM[rank-1]), f3(probTM[rank-1]))
	}
	return t, nil
}

// coOccurrence returns, per neighbour rank r (0-based), the fraction of
// samples whose rank-r true neighbour shares the sample's cluster.
func coOccurrence(exact *knngraph.Graph, labels []int, maxRank int) []float64 {
	counts := make([]int, maxRank)
	totals := make([]int, maxRank)
	for i, list := range exact.Lists {
		for r := 0; r < maxRank && r < len(list); r++ {
			totals[r]++
			if labels[list[r].ID] == labels[i] {
				counts[r]++
			}
		}
	}
	out := make([]float64, maxRank)
	for r := range out {
		if totals[r] > 0 {
			out[r] = float64(counts[r]) / float64(totals[r])
		}
	}
	return out
}
