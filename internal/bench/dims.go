package bench

import (
	"fmt"

	"gkmeans/internal/dataset"
	"gkmeans/internal/kmeans"
	"gkmeans/internal/metrics"
)

// DimsConfig sizes the dimensionality study behind the paper's §2.1
// argument: KD-tree acceleration (AKM) holds up in few tens of dimensions
// and degrades at descriptor dimensionality, while graph-based pruning
// (GK-means) does not care about the dimension.
type DimsConfig struct {
	N     int // <=0 selects 3000
	K     int // <=0 selects 50
	Iters int // <=0 selects 15
	Seed  int64
	Dims  []int // nil selects {8, 32, 128, 512}
}

func (c *DimsConfig) defaults() {
	if c.N <= 0 {
		c.N = 3000
	}
	if c.K <= 0 {
		c.K = 50
	}
	if c.Iters <= 0 {
		c.Iters = 15
	}
	if c.Dims == nil {
		c.Dims = []int{8, 32, 128, 512}
	}
}

// Dims compares exact Lloyd, budget-limited AKM and GK-means across data
// dimensionality on mixture data, reporting each approximate method's
// distortion overhead relative to Lloyd. AKM's overhead grows with
// dimension (the §2.1 failure); GK-means stays flat.
func Dims(cfg DimsConfig) (*Table, error) {
	cfg.defaults()
	t := &Table{
		Title: fmt.Sprintf("§2.1 — distortion overhead vs dimension (n=%d, k=%d, AKM budget 16)",
			cfg.N, cfg.K),
		Header: []string{"dim", "Lloyd E", "AKM E", "AKM overhead", "GK-means E", "GK overhead"},
	}
	for _, dim := range cfg.Dims {
		data, _ := dataset.GMM(dataset.GMMConfig{
			N: cfg.N, Dim: dim, Components: cfg.N / 100,
			Spread: 1, Noise: 1, Seed: cfg.Seed,
		})
		ll, err := kmeans.Lloyd(data, kmeans.Config{K: cfg.K, MaxIter: cfg.Iters, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		eL := metrics.AverageDistortion(data, ll.Labels, ll.Centroids)

		akm, err := kmeans.AKM(data, kmeans.AKMConfig{
			Config:    kmeans.Config{K: cfg.K, MaxIter: cfg.Iters, Seed: cfg.Seed},
			MaxChecks: 16,
		})
		if err != nil {
			return nil, err
		}
		eA := metrics.AverageDistortion(data, akm.Labels, akm.Centroids)

		gk, err := Run(MGKMeans, data, RunConfig{
			K: cfg.K, Iters: cfg.Iters, Seed: cfg.Seed, Kappa: 16, Tau: 6,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(d(dim), f(eL), f(eA),
			fmt.Sprintf("%+.1f%%", 100*(eA-eL)/eL),
			f(gk.Distortion),
			fmt.Sprintf("%+.1f%%", 100*(gk.Distortion-eL)/eL))
	}
	return t, nil
}
