package bench

import (
	"fmt"
)

// Fig5Config sizes the quality experiment of Fig. 5: distortion as a
// function of iteration (a,c,e) and of wall-clock time (b,d,f) on the
// SIFT-, GloVe- and GIST-like corpora at k = n/100 (the paper uses
// k=10,000 on 1M points).
type Fig5Config struct {
	N     int // samples per corpus; <=0 selects 8000 (GIST defaults to half: 960-d)
	Iters int // iterations traced; <=0 selects 30
	Seed  int64
}

func (c *Fig5Config) defaults() {
	if c.N <= 0 {
		c.N = 8000
	}
	if c.Iters <= 0 {
		c.Iters = 30
	}
}

// fig5Methods is the comparison set of Fig. 5(a,c,e).
func fig5Methods() []string {
	return []string{MMiniBatch, MClosure, MKMeans, MBKM, MKGraphGK, MGKMeans}
}

// Fig5 runs every method with tracing on one corpus and emits two tables:
// distortion-vs-iteration and distortion-vs-time. datasetName is "sift",
// "glove" or "gist".
func Fig5(datasetName string, cfg Fig5Config) ([]*Table, error) {
	cfg.defaults()
	n := cfg.N
	if datasetName == "gist" {
		n /= 2 // 960-d: keep the default runtime comparable
	}
	data, err := Gen(datasetName, n, cfg.Seed)
	if err != nil {
		return nil, err
	}
	k := data.N / 100
	if k < 2 {
		return nil, fmt.Errorf("bench: fig5 needs n >= 200")
	}

	iterT := &Table{
		Title: fmt.Sprintf("Fig. 5 — distortion vs iteration, %s (n=%d, k=%d)",
			datasetName, data.N, k),
		Header: []string{"iter"},
	}
	timeT := &Table{
		Title: fmt.Sprintf("Fig. 5 — distortion vs time, %s (n=%d, k=%d)",
			datasetName, data.N, k),
		Header: []string{"method", "time", "final distortion"},
	}

	type trace struct {
		name string
		res  *RunResult
	}
	var traces []trace
	for _, m := range fig5Methods() {
		res, err := Run(m, data, RunConfig{K: k, Iters: cfg.Iters, Seed: cfg.Seed, Trace: true})
		if err != nil {
			return nil, err
		}
		traces = append(traces, trace{m, res})
		iterT.Header = append(iterT.Header, m)
	}

	// Distortion-vs-iteration: one row per sampled iteration, one column
	// per method (methods that converged earlier repeat their final value,
	// matching how the paper's curves flatten).
	for _, it := range samplePoints(cfg.Iters) {
		row := []string{d(it)}
		for _, tr := range traces {
			h := tr.res.History
			idx := it - 1
			if idx >= len(h) {
				idx = len(h) - 1
			}
			if idx < 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, f(h[idx].Distortion))
		}
		iterT.AddRow(row...)
	}

	// Distortion-vs-time: the paper plots only the methods with a
	// competitive trade-off (closure, KGraph+GK, GK); report all, sorted by
	// the presentation order, with total time and final distortion.
	for _, tr := range traces {
		timeT.AddRow(tr.name, dur(tr.res.InitTime+tr.res.IterTime), f(tr.res.Distortion))
	}
	return []*Table{iterT, timeT}, nil
}

// samplePoints picks the iteration numbers reported in the table.
func samplePoints(max int) []int {
	pts := []int{1, 2, 3, 5, 8, 12, 20, 30, 45, 60, 80, 100, 130, 160}
	var out []int
	for _, p := range pts {
		if p <= max {
			out = append(out, p)
		}
	}
	if len(out) == 0 || out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}
