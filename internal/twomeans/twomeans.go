// Package twomeans implements the two-means (2M) tree of paper §3.2
// (Alg. 1, reference [31]): a balanced hierarchical bisecting clusterer.
// Starting from one cluster holding everything, the largest cluster is
// repeatedly popped and bisected until k clusters exist. Each bisection runs
// a short boost k-means at k=2 (the enhancement the paper applies at Alg. 1
// step 8) and is then *adjusted to equal size* by splitting the members at
// the median of ‖x−c_u‖² − ‖x−c_v‖².
//
// The 2M tree is O(d·n·log k) — cheaper than a single k-means iteration —
// and is how GK-means obtains its initial k clusters.
package twomeans

import (
	"container/heap"
	"fmt"
	"sort"

	"gkmeans/internal/bkm"
	"gkmeans/internal/splitmix"
	"gkmeans/internal/vec"
)

// Config controls the tree construction.
type Config struct {
	K           int
	Seed        int64
	BisectIters int // boost k-means epochs per bisection; <=0 selects 8
}

// cluster is one heap entry: the member indices of a current cluster.
type cluster struct {
	members []int
}

// sizeHeap is a max-heap of clusters ordered by member count.
type sizeHeap []*cluster

func (h sizeHeap) Len() int            { return len(h) }
func (h sizeHeap) Less(i, j int) bool  { return len(h[i].members) > len(h[j].members) }
func (h sizeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *sizeHeap) Push(x interface{}) { *h = append(*h, x.(*cluster)) }
func (h *sizeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return c
}

// Cluster partitions data into k clusters with the 2M tree and returns the
// cluster label of every sample.
func Cluster(data *vec.Matrix, cfg Config) ([]int, error) {
	if cfg.K <= 0 {
		return nil, fmt.Errorf("twomeans: k must be positive, got %d", cfg.K)
	}
	if cfg.K > data.N {
		return nil, fmt.Errorf("twomeans: k=%d exceeds n=%d", cfg.K, data.N)
	}
	rng := splitmix.New(cfg.Seed)
	all := make([]int, data.N)
	for i := range all {
		all[i] = i
	}
	h := &sizeHeap{{members: all}}
	heap.Init(h)
	// Alg. 1 main loop: t grows from 1 to k clusters.
	for h.Len() < cfg.K {
		top := heap.Pop(h).(*cluster)
		if len(top.members) < 2 {
			// Cannot bisect a singleton; with k <= n this only happens when
			// every remaining cluster is a singleton, i.e. never before
			// reaching k. Guard anyway.
			heap.Push(h, top)
			return nil, fmt.Errorf("twomeans: cannot split singleton cluster (k=%d, n=%d)", cfg.K, data.N)
		}
		left, right := bisect(data, top.members, cfg, &rng)
		heap.Push(h, &cluster{members: left})
		heap.Push(h, &cluster{members: right})
	}
	labels := make([]int, data.N)
	for id, c := range *h {
		for _, i := range c.members {
			labels[i] = id
		}
	}
	return labels, nil
}

// bisect splits members into two equally sized halves: a short BKM run at
// k=2 finds the two-centre structure, then the equal-size adjustment of
// Alg. 1 line 9 rebalances on the signed distance difference.
func bisect(data *vec.Matrix, members []int, cfg Config, rng *splitmix.Stream) (left, right []int) {
	sub := data.SubsetRows(members)
	labels := make([]int, sub.N)
	// Random balanced initial split.
	perm := rng.Perm(sub.N)
	for idx, i := range perm {
		labels[i] = idx % 2
	}
	o, err := bkm.NewOptimizer(sub, labels, 2)
	if err != nil {
		// Unreachable: inputs are validated by Cluster. Fall back to the
		// initial random split rather than crash mid-tree.
		return splitByLabel(members, labels)
	}
	iters := cfg.BisectIters
	if iters <= 0 {
		iters = 8
	}
	order := rng.Perm(sub.N)
	for e := 0; e < iters; e++ {
		if o.Epoch(order, nil) == 0 {
			break
		}
	}
	// Equal-size adjustment: order members by how much closer they are to
	// centre u than to centre v, then cut in the middle.
	cents := o.Centroids()
	cu, cv := cents.Row(0), cents.Row(1)
	type scored struct {
		member int
		diff   float32
	}
	sc := make([]scored, sub.N)
	for i := 0; i < sub.N; i++ {
		row := sub.Row(i)
		sc[i] = scored{members[i], vec.L2Sqr(row, cu) - vec.L2Sqr(row, cv)}
	}
	sort.Slice(sc, func(a, b int) bool {
		if sc[a].diff != sc[b].diff {
			return sc[a].diff < sc[b].diff
		}
		return sc[a].member < sc[b].member // deterministic tie break
	})
	half := (len(sc) + 1) / 2
	left = make([]int, 0, half)
	right = make([]int, 0, len(sc)-half)
	for i, s := range sc {
		if i < half {
			left = append(left, s.member)
		} else {
			right = append(right, s.member)
		}
	}
	return left, right
}

// splitByLabel partitions members by a binary labelling (fallback path).
func splitByLabel(members []int, labels []int) (left, right []int) {
	for i, m := range members {
		if labels[i] == 0 {
			left = append(left, m)
		} else {
			right = append(right, m)
		}
	}
	return left, right
}
