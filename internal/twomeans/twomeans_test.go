package twomeans

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gkmeans/internal/dataset"
	"gkmeans/internal/metrics"
)

func TestClusterProducesKBalancedClusters(t *testing.T) {
	data := dataset.SIFTLike(400, 1)
	for _, k := range []int{2, 3, 7, 16} {
		labels, err := Cluster(data, Config{K: k, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		sizes := metrics.ClusterSizes(labels, k)
		if metrics.NonEmpty(sizes) != k {
			t.Fatalf("k=%d: %d non-empty clusters", k, metrics.NonEmpty(sizes))
		}
		// Balanced tree: equal-size adjustment at every bisection keeps the
		// max/min ratio small (popping largest first bounds skew at ~2×).
		min, max := sizes[0], sizes[0]
		for _, s := range sizes {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		if max > 3*min {
			t.Fatalf("k=%d: unbalanced sizes min=%d max=%d (%v)", k, min, max, sizes)
		}
	}
}

// Property: any valid (n,k) pair yields a complete partition into exactly k
// non-empty clusters.
func TestClusterPartitionQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(120)
		k := 1 + rng.Intn(n)
		data := dataset.Uniform(n, 1+rng.Intn(8), seed)
		labels, err := Cluster(data, Config{K: k, Seed: seed})
		if err != nil {
			return false
		}
		if len(labels) != n {
			return false
		}
		return metrics.NonEmpty(metrics.ClusterSizes(labels, k)) == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestClusterSeparatedDataQuality(t *testing.T) {
	// On well-separated blobs the 2M tree should produce a far better
	// partition than random labelling.
	data, _ := dataset.GMM(dataset.GMMConfig{
		N: 512, Dim: 16, Components: 4, Spread: 30, Noise: 1, Seed: 3,
	})
	labels, err := Cluster(data, Config{K: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	eTree := metrics.DistortionFromLabels(data, labels, 4)
	rng := rand.New(rand.NewSource(5))
	randLabels := make([]int, data.N)
	for i := range randLabels {
		randLabels[i] = rng.Intn(4)
	}
	eRand := metrics.DistortionFromLabels(data, randLabels, 4)
	if eTree > eRand/2 {
		t.Fatalf("2M tree distortion %.2f not clearly better than random %.2f", eTree, eRand)
	}
}

func TestClusterErrors(t *testing.T) {
	data := dataset.Uniform(10, 3, 1)
	if _, err := Cluster(data, Config{K: 0}); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := Cluster(data, Config{K: 11}); err == nil {
		t.Fatal("k>n should error")
	}
}

func TestClusterDeterministic(t *testing.T) {
	data := dataset.GloVeLike(200, 6)
	a, _ := Cluster(data, Config{K: 9, Seed: 7})
	b, _ := Cluster(data, Config{K: 9, Seed: 7})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different labels")
		}
	}
}

func TestClusterKEqualsN(t *testing.T) {
	data := dataset.Uniform(8, 2, 2)
	labels, err := Cluster(data, Config{K: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sizes := metrics.ClusterSizes(labels, 8)
	for r, s := range sizes {
		if s != 1 {
			t.Fatalf("cluster %d has size %d, want 1", r, s)
		}
	}
}

func TestClusterK1(t *testing.T) {
	data := dataset.Uniform(5, 2, 3)
	labels, err := Cluster(data, Config{K: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range labels {
		if l != 0 {
			t.Fatal("k=1 must put everything in cluster 0")
		}
	}
}
