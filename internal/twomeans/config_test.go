package twomeans

import (
	"testing"

	"gkmeans/internal/dataset"
	"gkmeans/internal/metrics"
)

func TestBisectItersConfigurations(t *testing.T) {
	// The per-bisection epoch budget is a speed/quality dial. Greedy local
	// splits do not guarantee monotone k-way quality, so only structural
	// validity is asserted: every budget must yield a complete balanced
	// partition and a distortion far below random labelling.
	data := dataset.SIFTLike(600, 1)
	k := 12
	randE := metrics.DistortionFromLabels(data, make([]int, data.N), 1)
	for _, iters := range []int{1, 4, 12} {
		labels, err := Cluster(data, Config{K: k, Seed: 2, BisectIters: iters})
		if err != nil {
			t.Fatalf("iters=%d: %v", iters, err)
		}
		if metrics.NonEmpty(metrics.ClusterSizes(labels, k)) != k {
			t.Fatalf("iters=%d: incomplete partition", iters)
		}
		if e := metrics.DistortionFromLabels(data, labels, k); e > randE {
			t.Fatalf("iters=%d: distortion %v above single-cluster %v", iters, e, randE)
		}
	}
}

func TestClusterSizesDifferByAtMostFactor(t *testing.T) {
	// Equal-size adjustment: after splitting the largest first, sizes can
	// differ by at most ~2× between any two clusters for power-of-two k.
	data := dataset.GloVeLike(512, 3)
	labels, err := Cluster(data, Config{K: 16, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	sizes := metrics.ClusterSizes(labels, 16)
	for _, s := range sizes {
		if s != 32 { // 512/16: perfectly balanced for power-of-two sizes
			t.Fatalf("power-of-two case should be perfectly balanced: %v", sizes)
		}
	}
}

func TestOddSizesBalanced(t *testing.T) {
	data := dataset.Uniform(101, 4, 5)
	labels, err := Cluster(data, Config{K: 7, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	sizes := metrics.ClusterSizes(labels, 7)
	min, max := sizes[0], sizes[0]
	for _, s := range sizes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	// Largest-first halving bounds the spread at roughly 2× (plus rounding):
	// for k=7 on 101 points the legal range is about [12, 26].
	if max > 2*min+2 {
		t.Fatalf("odd-size partition too skewed: %v", sizes)
	}
}
