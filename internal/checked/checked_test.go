package checked

import (
	"math"
	"testing"
)

func TestInt32InRange(t *testing.T) {
	for _, v := range []int64{0, 1, -1, math.MaxInt32, math.MinInt32} {
		if got := Int32(v); int64(got) != v {
			t.Errorf("Int32(%d) = %d", v, got)
		}
	}
	if got := Int32(int(42)); got != 42 {
		t.Errorf("Int32(int) = %d", got)
	}
}

func TestU32InRange(t *testing.T) {
	for _, v := range []int64{0, 1, math.MaxUint32} {
		if got := U32(v); int64(got) != v {
			t.Errorf("U32(%d) = %d", v, got)
		}
	}
}

func TestInt32Overflow(t *testing.T) {
	for _, v := range []int64{math.MaxInt32 + 1, math.MinInt32 - 1, math.MaxInt64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Int32(%d) did not panic", v)
				}
			}()
			Int32(v)
		}()
	}
}

func TestU32Overflow(t *testing.T) {
	for _, v := range []int64{-1, math.MaxUint32 + 1, math.MaxInt64, math.MinInt64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("U32(%d) did not panic", v)
				}
			}()
			U32(v)
		}()
	}
}
