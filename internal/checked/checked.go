// Package checked provides overflow-guarded integer narrowing for the
// persistence and CSR layers, where int values (sample counts, row offsets,
// cluster ids) are stored as int32/uint32 on disk and in flat adjacency
// arrays. A raw conversion silently truncates; these helpers panic with a
// clear message instead, turning a would-be data-corruption bug into an
// immediate, attributable failure.
//
// The values passed here are bounded by construction — Build and NewIndex
// refuse datasets with more than MaxInt32 rows, and everything narrowed
// downstream (labels, shard rows, list lengths) is bounded by the row count
// — so the panics are unreachable invariant assertions, not error handling.
// The gkvet int32cast analyzer enforces that every narrowing conversion on
// the persist and CSR paths either sits behind an explicit bounds check or
// goes through this package.
package checked

import (
	"fmt"
	"math"
)

// Int32 narrows v to int32, panicking if the value does not fit.
func Int32[T ~int | ~int64](v T) int32 {
	if int64(v) < math.MinInt32 || int64(v) > math.MaxInt32 {
		panic(fmt.Sprintf("checked: value %d overflows int32", int64(v)))
	}
	return int32(v)
}

// U32 narrows v to uint32, panicking if the value is negative or too large.
func U32[T ~int | ~int64](v T) uint32 {
	if v < 0 || int64(v) > math.MaxUint32 {
		panic(fmt.Sprintf("checked: value %d overflows uint32", int64(v)))
	}
	return uint32(v)
}
