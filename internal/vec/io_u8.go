package vec

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// U8Matrix (de)serialisation mirrors the float32 format in io.go: the same
// 8-byte {N, Dim} little-endian header followed by the row-major payload,
// one byte per value. Reads never consume more bytes than the matrix
// occupies, so the .gkx v5 container can embed it mid-stream.

// u8IOChunk is the streaming buffer size for the byte payload.
const u8IOChunk = 4 * ioChunk // bytes per chunk (64 KiB)

// WriteU8Matrix serialises m to w and returns the number of bytes written.
func WriteU8Matrix(w io.Writer, m *U8Matrix) (int64, error) {
	if m.N < 0 || int64(m.N) > math.MaxUint32 || m.Dim < 0 || int64(m.Dim) > math.MaxUint32 {
		return 0, fmt.Errorf("vec: matrix shape %d×%d does not fit the uint32 header", m.N, m.Dim)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(m.N))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(m.Dim))
	n, err := w.Write(hdr[:])
	written := int64(n)
	if err != nil {
		return written, err
	}
	for off := 0; off < len(m.Data); off += u8IOChunk {
		end := off + u8IOChunk
		if end > len(m.Data) {
			end = len(m.Data)
		}
		n, err := w.Write(m.Data[off:end])
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// ReadU8Matrix deserialises a matrix written by WriteU8Matrix. It reads
// exactly the matrix's bytes from r — safe to call mid-stream.
func ReadU8Matrix(r io.Reader) (*U8Matrix, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("vec: reading matrix header: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(hdr[0:]))
	d := int(binary.LittleEndian.Uint32(hdr[4:]))
	if n < 0 || d <= 0 || n > math.MaxInt32 || d > math.MaxInt32 {
		return nil, fmt.Errorf("vec: invalid matrix shape %d×%d", n, d)
	}
	// The uint8 kernels need Dim ≤ MaxU8Dim for exact int32 accumulation;
	// a file claiming more is corrupt or not ours.
	if d > MaxU8Dim {
		return nil, fmt.Errorf("vec: uint8 matrix dim %d exceeds the kernel cap %d", d, MaxU8Dim)
	}
	// Same untrusted-header discipline as ReadMatrix: plausibility cap, then
	// grow the payload with the bytes that actually arrive so a lying header
	// over a short stream fails at EOF having allocated one chunk.
	total := int64(n) * int64(d)
	if total > 1<<40 {
		return nil, fmt.Errorf("vec: implausible matrix shape %d×%d", n, d)
	}
	capHint := total
	if capHint > u8IOChunk {
		capHint = u8IOChunk
	}
	data := make([]uint8, 0, capHint)
	buf := make([]byte, u8IOChunk)
	for off := int64(0); off < total; off += u8IOChunk {
		end := off + u8IOChunk
		if end > total {
			end = total
		}
		chunk := buf[:end-off]
		if _, err := io.ReadFull(r, chunk); err != nil {
			return nil, fmt.Errorf("vec: reading matrix payload: %w", err)
		}
		data = append(data, chunk...)
	}
	return &U8Matrix{Data: data, N: n, Dim: d}, nil
}
