package vec

// Scalar reference kernels. These are the pinned semantics of the unrolled
// hot-path kernels in dist.go and dist_u8.go: one element at a time, with
// the exact accumulation order the unrolled loops produce. They are never
// called on a hot path — the kernel-equivalence test suite (and the
// FuzzKernelEquivalence target) diff the unrolled kernels against them
// bit-for-bit at every tail residue, so any future rewrite of the unrolled
// loops that changes a single ULP of any result fails the suite.
//
// Float32 addition is not associative, so the float32 references must
// replicate the unrolled loops' striped accumulation to be bit-identical:
// element i of the 4-wide region accumulates into lane i%4, the scalar tail
// into lane 0, and the reduction is ((s0+s1)+s2)+s3. Integer addition is
// associative, so the uint8 reference is a plain left-to-right loop.

// dotScalar is the bit-exact scalar reference for Dot.
func dotScalar(a, b []float32) float32 {
	var s [4]float32
	n := len(a) &^ 3
	for i := 0; i < n; i++ {
		s[i%4] += a[i] * b[i]
	}
	for i := n; i < len(a); i++ {
		s[0] += a[i] * b[i]
	}
	return ((s[0] + s[1]) + s[2]) + s[3]
}

// l2SqrScalar is the bit-exact scalar reference for L2Sqr (and for
// L2SqrBound whenever the full distance is below the bound).
func l2SqrScalar(a, b []float32) float32 {
	var s [4]float32
	n := len(a) &^ 3
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		s[i%4] += d * d
	}
	for i := n; i < len(a); i++ {
		d := a[i] - b[i]
		s[0] += d * d
	}
	return ((s[0] + s[1]) + s[2]) + s[3]
}

// l2SqrU8Scalar is the exact reference for L2SqrU8: integer sums are
// associative, so plain left-to-right accumulation is the full contract.
func l2SqrU8Scalar(a, b []uint8) int32 {
	var s int32
	for i := range a {
		d := int32(a[i]) - int32(b[i])
		s += d * d
	}
	return s
}
