package vec

import "math"

// Integer distance kernels for U8Matrix rows. Each squared difference is at
// most 255² = 65025 and U8Matrix caps Dim at MaxU8Dim, so the int32
// accumulators can never overflow and the results are exact — no float
// rounding anywhere. Because integer addition is associative, the 4-way
// unrolling below changes nothing about the result, only the throughput.

// L2SqrU8 returns the exact squared Euclidean distance between two byte
// vectors as an int32. The slices must have equal length ≤ MaxU8Dim.
//
//gk:hotpath
func L2SqrU8(a, b []uint8) int32 {
	var s0, s1, s2, s3 int32
	n := len(a)
	b = b[:n] // eliminate bounds checks in the loop body
	i := 0
	for ; i+4 <= n; i += 4 {
		d0 := int32(a[i]) - int32(b[i])
		d1 := int32(a[i+1]) - int32(b[i+1])
		d2 := int32(a[i+2]) - int32(b[i+2])
		d3 := int32(a[i+3]) - int32(b[i+3])
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < n; i++ {
		d := int32(a[i]) - int32(b[i])
		s0 += d * d
	}
	return s0 + s1 + s2 + s3
}

// L2SqrBoundU8 returns L2SqrU8(a, b) unless the running sum reaches bound
// partway through — then it abandons the computation and returns the
// partial sum (which is ≥ bound; squared distances only grow). The bound
// check cadence matches the float32 L2SqrBound (every abandonBlock
// elements), and whenever the full distance is below bound the returned
// value equals L2SqrU8(a, b) exactly.
//
//gk:hotpath
func L2SqrBoundU8(a, b []uint8, bound int32) int32 {
	var s0, s1, s2, s3 int32
	n := len(a)
	b = b[:n]
	i := 0
	for i+4 <= n {
		stop := i + abandonBlock
		if stop+4 > n {
			stop = n
		}
		for ; i+4 <= stop; i += 4 {
			d0 := int32(a[i]) - int32(b[i])
			d1 := int32(a[i+1]) - int32(b[i+1])
			d2 := int32(a[i+2]) - int32(b[i+2])
			d3 := int32(a[i+3]) - int32(b[i+3])
			s0 += d0 * d0
			s1 += d1 * d1
			s2 += d2 * d2
			s3 += d3 * d3
		}
		if s := s0 + s1 + s2 + s3; s >= bound {
			return s
		}
	}
	for ; i < n; i++ {
		d := int32(a[i]) - int32(b[i])
		s0 += d * d
	}
	return s0 + s1 + s2 + s3
}

// U8Bound converts a float32 abandonment bound into an int32 bound for
// L2SqrBoundU8: the smallest integer t with float32(t) ≥ bound, clamped to
// [0, MaxInt32]. An integer partial sum reaching t therefore implies the
// float32 view of that sum reaches bound, so the integer kernel never
// abandons a candidate the float32 kernel would have admitted — the
// property the uint8/float32 search-parity tests pin.
func U8Bound(bound float32) int32 {
	if !(bound > 0) {
		return 0
	}
	if bound >= float32(math.MaxInt32) {
		return math.MaxInt32
	}
	return int32(math.Ceil(float64(bound)))
}
