package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixShape(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.N != 3 || m.Dim != 4 || len(m.Data) != 12 {
		t.Fatalf("got shape %d×%d len %d", m.N, m.Dim, len(m.Data))
	}
}

func TestNewMatrixPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for d=0")
		}
	}()
	NewMatrix(3, 0)
}

func TestFromRowsAndAccessors(t *testing.T) {
	m := FromRows([][]float32{{1, 2}, {3, 4}, {5, 6}})
	if m.At(1, 0) != 3 || m.At(2, 1) != 6 {
		t.Fatalf("At wrong: %v", m.Data)
	}
	m.Set(0, 1, 9)
	if m.Row(0)[1] != 9 {
		t.Fatalf("Set/Row mismatch")
	}
	m.SetRow(2, []float32{7, 8})
	if m.At(2, 0) != 7 || m.At(2, 1) != 8 {
		t.Fatalf("SetRow failed: %v", m.Row(2))
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows(nil)
	if m.N != 0 {
		t.Fatalf("want empty matrix, got N=%d", m.N)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float32{{1, 2}, {3}})
}

func TestCloneIsDeep(t *testing.T) {
	m := FromRows([][]float32{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
	if !m.Equal(m.Clone()) {
		t.Fatal("Clone not equal to original")
	}
}

func TestSubsetRows(t *testing.T) {
	m := FromRows([][]float32{{0, 0}, {1, 1}, {2, 2}, {3, 3}})
	s := m.SubsetRows([]int{3, 1})
	want := FromRows([][]float32{{3, 3}, {1, 1}})
	if !s.Equal(want) {
		t.Fatalf("SubsetRows got %v", s.Data)
	}
}

func TestEqualShapes(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(3, 2)
	if a.Equal(b) {
		t.Fatal("matrices of different shapes reported equal")
	}
}

func TestMean(t *testing.T) {
	m := FromRows([][]float32{{0, 0}, {2, 4}, {4, 8}})
	c := m.Mean([]int{0, 1, 2})
	if c[0] != 2 || c[1] != 4 {
		t.Fatalf("Mean got %v", c)
	}
	z := m.Mean(nil)
	if z[0] != 0 || z[1] != 0 {
		t.Fatalf("Mean of empty set should be zero, got %v", z)
	}
}

func TestDotMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(130) // cover remainder lengths 0..3
		a := make([]float32, n)
		b := make([]float32, n)
		var want float64
		for i := range a {
			a[i] = rng.Float32()*2 - 1
			b[i] = rng.Float32()*2 - 1
			want += float64(a[i]) * float64(b[i])
		}
		got := float64(Dot(a, b))
		if math.Abs(got-want) > 1e-3 {
			t.Fatalf("n=%d Dot=%v want %v", n, got, want)
		}
	}
}

func TestL2SqrMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(257)
		a := make([]float32, n)
		b := make([]float32, n)
		var want float64
		for i := range a {
			a[i] = rng.Float32() * 10
			b[i] = rng.Float32() * 10
			d := float64(a[i]) - float64(b[i])
			want += d * d
		}
		got := float64(L2Sqr(a, b))
		if math.Abs(got-want) > 1e-2*math.Max(1, want) {
			t.Fatalf("n=%d L2Sqr=%v want %v", n, got, want)
		}
	}
}

// Property: ‖a−b‖² = ‖a‖² + ‖b‖² − 2a·b.
func TestL2SqrDotIdentity(t *testing.T) {
	f := func(raw []float32) bool {
		if len(raw) < 2 {
			return true
		}
		half := len(raw) / 2
		a, b := raw[:half], raw[half:half*2]
		for i := range a {
			// clamp to a sane range so float32 error stays bounded
			a[i] = float32(math.Mod(float64(a[i]), 100))
			b[i] = float32(math.Mod(float64(b[i]), 100))
			if math.IsNaN(float64(a[i])) {
				a[i] = 0
			}
			if math.IsNaN(float64(b[i])) {
				b[i] = 0
			}
		}
		lhs := float64(L2Sqr(a, b))
		rhs := float64(SqNorm(a)) + float64(SqNorm(b)) - 2*float64(Dot(a, b))
		scale := math.Max(1, math.Abs(lhs))
		return math.Abs(lhs-rhs) <= 1e-2*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: distances are symmetric and zero on identical inputs.
func TestL2SqrSymmetry(t *testing.T) {
	f := func(raw []float32) bool {
		if len(raw) < 2 {
			return true
		}
		half := len(raw) / 2
		a, b := raw[:half], raw[half:half*2]
		for i := range a {
			if math.IsNaN(float64(a[i])) || math.IsInf(float64(a[i]), 0) {
				a[i] = 1
			}
			if math.IsNaN(float64(b[i])) || math.IsInf(float64(b[i]), 0) {
				b[i] = 1
			}
		}
		return L2Sqr(a, b) == L2Sqr(b, a) && L2Sqr(a, a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNearestRow(t *testing.T) {
	m := FromRows([][]float32{{0, 0}, {10, 10}, {3, 3}})
	i, d := NearestRow(m, []float32{2.9, 3.1})
	if i != 2 {
		t.Fatalf("NearestRow got %d (d=%v)", i, d)
	}
}

func TestNearestRowPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NearestRow(&Matrix{Dim: 2}, []float32{1, 2})
}

func TestAddSubScale(t *testing.T) {
	a := []float32{1, 2, 3}
	Add(a, []float32{1, 1, 1})
	if a[0] != 2 || a[2] != 4 {
		t.Fatalf("Add got %v", a)
	}
	Sub(a, []float32{2, 3, 4})
	if a[0] != 0 || a[1] != 0 || a[2] != 0 {
		t.Fatalf("Sub got %v", a)
	}
	b := []float32{2, 4}
	Scale(b, 0.5)
	if b[0] != 1 || b[1] != 2 {
		t.Fatalf("Scale got %v", b)
	}
}

func TestNorms(t *testing.T) {
	m := FromRows([][]float32{{3, 4}, {0, 0}})
	n := m.Norms()
	if n[0] != 25 || n[1] != 0 {
		t.Fatalf("Norms got %v", n)
	}
}

func TestNormalize(t *testing.T) {
	x := []float32{3, 4}
	n := Normalize(x)
	if math.Abs(float64(n)-5) > 1e-6 {
		t.Fatalf("returned norm %v", n)
	}
	if math.Abs(float64(SqNorm(x))-1) > 1e-6 {
		t.Fatalf("not unit norm: %v", x)
	}
	z := []float32{0, 0}
	if Normalize(z) != 0 || z[0] != 0 {
		t.Fatal("zero vector should be unchanged")
	}
}

// L2SqrBound must return exactly L2Sqr's value (bit-identical: same
// accumulation order) whenever the true distance is below the bound, and a
// value >= bound when it abandons.
func TestL2SqrBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 31, 32, 33, 63, 64, 65, 100, 128, 960} {
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			a[i] = rng.Float32() * 10
			b[i] = rng.Float32() * 10
		}
		exact := L2Sqr(a, b)
		if got := L2SqrBound(a, b, math.MaxFloat32); got != exact {
			t.Fatalf("n=%d: unbounded L2SqrBound %v != L2Sqr %v", n, got, exact)
		}
		if got := L2SqrBound(a, b, exact*2+1); got != exact {
			t.Fatalf("n=%d: loose bound changed result: %v != %v", n, got, exact)
		}
		if got := L2SqrBound(a, b, exact/2); n >= 4 && got < exact/2 {
			t.Fatalf("n=%d: abandoned computation returned %v, below bound %v", n, got, exact/2)
		}
	}
}

// An abandoned computation must actually stop early: time is hard to assert,
// but a bound of zero must return after at most one block regardless of
// dimensionality, and the partial sum it reports must never exceed the
// exact distance is not required — only >= bound.
func TestL2SqrBoundAbandons(t *testing.T) {
	a := make([]float32, 960)
	b := make([]float32, 960)
	for i := range a {
		a[i] = 1
	}
	got := L2SqrBound(a, b, 1)
	if got < 1 {
		t.Fatalf("abandoned sum %v below bound", got)
	}
	// The first check fires after one block: the partial sum is far below
	// the 960 full distance.
	if got >= 960 {
		t.Fatalf("bound 1 over 960 dims returned %v; abandoning should stop after one block", got)
	}
}
