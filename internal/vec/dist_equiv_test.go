package vec

import (
	"math"
	"testing"
)

// Kernel-equivalence suite: the unrolled hot-path kernels must be
// bit-identical to the scalar references in scalar.go at every length
// 0..130 (every tail residue of the 4-wide loops and several abandonBlock
// boundaries), and the bounded kernels must equal the unbounded ones
// whenever the full distance is below the bound. Float32 addition is not
// associative, so these tests pin the accumulation order itself — any
// rewrite that reorders a single addition fails here before it can break
// the determinism and early-abandon tests upstream.

// testLCG is a tiny deterministic generator for test vectors; the suite
// must not depend on math/rand ordering across Go versions.
type testLCG uint64

func (g *testLCG) next() uint32 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return uint32(*g >> 32)
}

// f32 returns a finite float32 in roughly [-8, 8) with a fractional part,
// so squared sums exercise real rounding (not exact small integers).
func (g *testLCG) f32() float32 {
	return float32(int32(g.next()%1024)-512) / 64
}

func (g *testLCG) u8() uint8 { return uint8(g.next()) }

func testVecs(n int, seed uint64) (a, b []float32) {
	g := testLCG(seed)
	a = make([]float32, n)
	b = make([]float32, n)
	for i := range a {
		a[i] = g.f32()
		b[i] = g.f32()
	}
	return a, b
}

func testVecsU8(n int, seed uint64) (a, b []uint8) {
	g := testLCG(seed)
	a = make([]uint8, n)
	b = make([]uint8, n)
	for i := range a {
		a[i] = g.u8()
		b[i] = g.u8()
	}
	return a, b
}

// maxEquivLen covers all tail residues of the 4-wide loops plus several
// abandonBlock (32) boundaries of the bounded kernels.
const maxEquivLen = 130

func TestDotMatchesScalarReference(t *testing.T) {
	for n := 0; n <= maxEquivLen; n++ {
		a, b := testVecs(n, uint64(n)+1)
		got := Dot(a, b)
		want := dotScalar(a, b)
		if math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("len %d: Dot=%x scalar=%x", n, math.Float32bits(got), math.Float32bits(want))
		}
	}
}

func TestL2SqrMatchesScalarReference(t *testing.T) {
	for n := 0; n <= maxEquivLen; n++ {
		a, b := testVecs(n, uint64(n)+101)
		got := L2Sqr(a, b)
		want := l2SqrScalar(a, b)
		if math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("len %d: L2Sqr=%x scalar=%x", n, math.Float32bits(got), math.Float32bits(want))
		}
	}
}

func TestL2SqrU8MatchesScalarReference(t *testing.T) {
	for n := 0; n <= maxEquivLen; n++ {
		a, b := testVecsU8(n, uint64(n)+201)
		if got, want := L2SqrU8(a, b), l2SqrU8Scalar(a, b); got != want {
			t.Fatalf("len %d: L2SqrU8=%d scalar=%d", n, got, want)
		}
	}
}

// TestL2SqrBoundBelowBound pins the bit-identical-below-bound contract: at
// every length and for bounds above the full distance, L2SqrBound returns
// exactly L2Sqr's bits; for bounds at or below it, the partial it returns
// is >= the bound.
func TestL2SqrBoundBelowBound(t *testing.T) {
	for n := 0; n <= maxEquivLen; n++ {
		a, b := testVecs(n, uint64(n)+301)
		full := L2Sqr(a, b)
		for _, bound := range []float32{
			full + 1, full*2 + 1, math.MaxFloat32, float32(math.Inf(1)),
		} {
			got := L2SqrBound(a, b, bound)
			if math.Float32bits(got) != math.Float32bits(full) {
				t.Fatalf("len %d bound %g: L2SqrBound=%x L2Sqr=%x", n, bound, math.Float32bits(got), math.Float32bits(full))
			}
		}
		for _, bound := range []float32{0, full / 2, full} {
			if got := L2SqrBound(a, b, bound); got < bound {
				t.Fatalf("len %d: abandoned partial %g below bound %g", n, got, bound)
			}
		}
	}
}

func TestL2SqrBoundU8BelowBound(t *testing.T) {
	for n := 0; n <= maxEquivLen; n++ {
		a, b := testVecsU8(n, uint64(n)+401)
		full := L2SqrU8(a, b)
		for _, bound := range []int32{full + 1, math.MaxInt32} {
			if got := L2SqrBoundU8(a, b, bound); got != full {
				t.Fatalf("len %d bound %d: L2SqrBoundU8=%d L2SqrU8=%d", n, bound, got, full)
			}
		}
		for _, bound := range []int32{0, full / 2, full} {
			if got := L2SqrBoundU8(a, b, bound); got < bound {
				t.Fatalf("len %d: abandoned partial %d below bound %d", n, got, bound)
			}
		}
	}
}

// TestL2SqrU8MatchesWidenedFloat proves the exactness claim behind the
// uint8 path: on byte data of SIFT-like dimensionality, integer L2 equals
// the float32 kernel on the widened copy bit-for-bit, because every
// float32 stripe partial stays far below 2²⁴.
func TestL2SqrU8MatchesWidenedFloat(t *testing.T) {
	for n := 0; n <= maxEquivLen; n++ {
		a, b := testVecsU8(n, uint64(n)+501)
		af := make([]float32, n)
		bf := make([]float32, n)
		for i := range a {
			af[i] = float32(a[i])
			bf[i] = float32(b[i])
		}
		want := L2Sqr(af, bf)
		if got := float32(L2SqrU8(a, b)); got != want {
			t.Fatalf("len %d: u8=%g float=%g", n, got, want)
		}
	}
}

// TestU8Bound pins the conversion's safety property: an integer partial
// reaching U8Bound(b) implies its float32 view reaches b, so the integer
// kernel never abandons a candidate the float kernel would have admitted.
func TestU8Bound(t *testing.T) {
	cases := []struct {
		in   float32
		want int32
	}{
		{-1, 0},
		{0, 0},
		{float32(math.NaN()), 0},
		{0.5, 1},
		{1, 1},
		{1.5, 2},
		{65025, 65025},
		{65025.5, 65026},
		{float32(math.MaxInt32), math.MaxInt32},
		{math.MaxFloat32, math.MaxInt32},
		{float32(math.Inf(1)), math.MaxInt32},
	}
	for _, c := range cases {
		if got := U8Bound(c.in); got != c.want {
			t.Fatalf("U8Bound(%g) = %d, want %d", c.in, got, c.want)
		}
	}
	g := testLCG(7)
	for i := 0; i < 10000; i++ {
		bound := float32(g.next()%(1<<26)) / 8
		t32 := U8Bound(bound)
		if float64(t32) < float64(bound) {
			t.Fatalf("U8Bound(%g) = %d below the bound", bound, t32)
		}
		if t32 > 0 && float64(t32-1) >= math.Ceil(float64(bound)) {
			t.Fatalf("U8Bound(%g) = %d is not minimal", bound, t32)
		}
	}
}

// FuzzKernelEquivalence cross-checks every kernel against its scalar
// reference (and the bounded kernels against the unbounded ones) on
// fuzzer-chosen vectors, lengths and bounds. Wired into the CI fuzz job.
func FuzzKernelEquivalence(f *testing.F) {
	f.Add([]byte{}, uint32(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, math.Float32bits(12))
	f.Add([]byte{255, 0, 255, 0, 255, 0, 255, 0}, math.Float32bits(1e9))
	f.Fuzz(func(t *testing.T, raw []byte, boundBits uint32) {
		n := len(raw) / 2
		au, bu := raw[:n], raw[n:2*n]
		if got, want := L2SqrU8(au, bu), l2SqrU8Scalar(au, bu); got != want {
			t.Fatalf("L2SqrU8=%d scalar=%d", got, want)
		}
		fullU := L2SqrU8(au, bu)
		boundU := int32(boundBits & math.MaxInt32)
		gotU := L2SqrBoundU8(au, bu, boundU)
		if fullU < boundU && gotU != fullU {
			t.Fatalf("L2SqrBoundU8=%d below bound %d but L2SqrU8=%d", gotU, boundU, fullU)
		}
		if fullU >= boundU && gotU < boundU {
			t.Fatalf("abandoned partial %d below bound %d", gotU, boundU)
		}

		a := make([]float32, n)
		b := make([]float32, n)
		for i := 0; i < n; i++ {
			// Finite, fraction-bearing floats derived from the raw bytes.
			a[i] = float32(int8(au[i])) / 4
			b[i] = float32(int8(bu[i])) / 4
		}
		if got, want := Dot(a, b), dotScalar(a, b); math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("Dot=%x scalar=%x", math.Float32bits(got), math.Float32bits(want))
		}
		full := L2Sqr(a, b)
		if want := l2SqrScalar(a, b); math.Float32bits(full) != math.Float32bits(want) {
			t.Fatalf("L2Sqr=%x scalar=%x", math.Float32bits(full), math.Float32bits(want))
		}
		bound := math.Float32frombits(boundBits)
		got := L2SqrBound(a, b, bound)
		if full < bound && math.Float32bits(got) != math.Float32bits(full) {
			t.Fatalf("L2SqrBound=%x below bound %g but L2Sqr=%x", math.Float32bits(got), bound, math.Float32bits(full))
		}
		if full >= bound && got < bound {
			t.Fatalf("abandoned partial %g below bound %g", got, bound)
		}

		if bound > 0 && !math.IsNaN(float64(bound)) {
			if t32 := U8Bound(bound); float64(t32) < float64(bound) && t32 != math.MaxInt32 {
				t.Fatalf("U8Bound(%g) = %d below the bound", bound, t32)
			}
		}
	})
}

func BenchmarkL2Sqr128(b *testing.B) {
	a, c := testVecs(128, 1)
	b.SetBytes(2 * 4 * 128)
	for i := 0; i < b.N; i++ {
		sinkF = L2Sqr(a, c)
	}
}

func BenchmarkL2SqrU8128(b *testing.B) {
	a, c := testVecsU8(128, 1)
	b.SetBytes(2 * 128)
	for i := 0; i < b.N; i++ {
		sinkI = L2SqrU8(a, c)
	}
}

var (
	sinkF float32
	sinkI int32
)
