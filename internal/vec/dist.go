package vec

// The kernels below are manually unrolled four wide. On amd64 the Go
// compiler turns the unrolled float32 loops into SSE code that is within a
// small factor of hand-written intrinsics, and these two functions account
// for essentially all of the clustering run time.

// Dot returns the inner product a·b. The slices must have equal length.
//
//gk:hotpath
func Dot(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	n := len(a)
	b = b[:n] // eliminate bounds checks in the loop body
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}

// L2Sqr returns the squared Euclidean distance ‖a−b‖².
//
//gk:hotpath
func L2Sqr(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	n := len(a)
	b = b[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < n; i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return s0 + s1 + s2 + s3
}

// abandonBlock is how many elements L2SqrBound accumulates between bound
// checks: frequent enough to save most of the work on high-dimensional
// rejects, rare enough that the extra branch is noise on accepts.
const abandonBlock = 32

// L2SqrBound returns ‖a−b‖² like L2Sqr, unless the running sum reaches
// bound partway through — then it abandons the computation and returns the
// partial sum (which is ≥ bound; squared distances only grow). Graph search
// uses it with the current pool-admission threshold: most rejected
// candidates abandon after a fraction of the dimensions, and the saving
// grows with dimensionality (960-d GIST abandons earliest).
//
// When the full distance is below bound the accumulation order matches
// L2Sqr exactly, so the returned value is bit-identical to L2Sqr(a, b).
//
//gk:hotpath
func L2SqrBound(a, b []float32, bound float32) float32 {
	var s0, s1, s2, s3 float32
	n := len(a)
	b = b[:n]
	i := 0
	for i+4 <= n {
		stop := i + abandonBlock
		if stop+4 > n {
			stop = n
		}
		for ; i+4 <= stop; i += 4 {
			d0 := a[i] - b[i]
			d1 := a[i+1] - b[i+1]
			d2 := a[i+2] - b[i+2]
			d3 := a[i+3] - b[i+3]
			s0 += d0 * d0
			s1 += d1 * d1
			s2 += d2 * d2
			s3 += d3 * d3
		}
		if s := s0 + s1 + s2 + s3; s >= bound {
			return s
		}
	}
	for ; i < n; i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return s0 + s1 + s2 + s3
}

// DotMixed returns the inner product of a float64 vector with a float32
// vector. Boost k-means keeps cluster composite vectors in float64 (they
// are mutated incrementally millions of times and would drift in float32)
// while samples stay float32; this kernel is its inner loop.
//
//gk:hotpath
func DotMixed(a []float64, b []float32) float64 {
	var s0, s1, s2, s3 float64
	n := len(a)
	b = b[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * float64(b[i])
		s1 += a[i+1] * float64(b[i+1])
		s2 += a[i+2] * float64(b[i+2])
		s3 += a[i+3] * float64(b[i+3])
	}
	for ; i < n; i++ {
		s0 += a[i] * float64(b[i])
	}
	return s0 + s1 + s2 + s3
}

// NearestRow returns the index of the row of m closest (squared Euclidean)
// to q and that distance. It panics on an empty matrix.
//
//gk:hotpath
func NearestRow(m *Matrix, q []float32) (int, float32) {
	if m.N == 0 {
		panic("vec: NearestRow on empty matrix")
	}
	best := 0
	bestD := L2Sqr(m.Row(0), q)
	for i := 1; i < m.N; i++ {
		if d := L2Sqr(m.Row(i), q); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}
