package vec

import (
	"bytes"
	"testing"
)

func TestMatrixIORoundTrip(t *testing.T) {
	m := NewMatrix(37, 11) // deliberately not a multiple of the chunk size
	for i := range m.Data {
		m.Data[i] = float32(i)*0.5 - 9
	}
	var buf bytes.Buffer
	n, err := WriteMatrix(&buf, m)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteMatrix reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadMatrix(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("matrix round trip mismatch")
	}
}

func TestMatrixIOMidStream(t *testing.T) {
	// ReadMatrix must consume exactly the matrix's bytes.
	m := NewMatrix(5, 3)
	for i := range m.Data {
		m.Data[i] = float32(i)
	}
	var buf bytes.Buffer
	if _, err := WriteMatrix(&buf, m); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("tail")
	got, err := ReadMatrix(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("round trip mismatch")
	}
	if buf.String() != "tail" {
		t.Fatalf("ReadMatrix over-read: %q left", buf.String())
	}
}

func TestReadMatrixRejectsTruncated(t *testing.T) {
	m := NewMatrix(10, 4)
	var buf bytes.Buffer
	if _, err := WriteMatrix(&buf, m); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-7]
	if _, err := ReadMatrix(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated payload should error")
	}
	if _, err := ReadMatrix(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Fatal("truncated header should error")
	}
}

func TestWriteMatrixRejectsOversizedShape(t *testing.T) {
	// The header stores N and Dim as uint32; a shape that cannot round-trip
	// must be refused up front rather than silently truncated.
	var buf bytes.Buffer
	for _, m := range []*Matrix{
		{N: 1 << 33, Dim: 4},
		{N: 4, Dim: 1 << 33},
		{N: -1, Dim: 4},
	} {
		if _, err := WriteMatrix(&buf, m); err == nil {
			t.Errorf("WriteMatrix accepted shape %d×%d", m.N, m.Dim)
		}
		if buf.Len() != 0 {
			t.Fatalf("WriteMatrix emitted %d bytes before rejecting the shape", buf.Len())
		}
	}
}
