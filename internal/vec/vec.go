// Package vec provides the dense float32 vector substrate used by every
// algorithm in this repository: a flat row-major matrix type and the squared
// Euclidean / inner-product kernels that dominate k-means and k-NN graph
// construction run time.
//
// All distances in this code base are squared Euclidean (no square roots);
// the paper's average distortion (Eqn. 4) is defined on squared distances,
// and squared distances preserve nearest-neighbour order.
package vec

import (
	"fmt"
	"math"
)

// Matrix is an n×d row-major matrix of float32 values. The zero value is an
// empty matrix. Rows are the data samples; Row returns a slice aliasing the
// underlying storage, so callers must not grow it.
type Matrix struct {
	// Data holds the n*d values row by row.
	Data []float32
	// N is the number of rows (samples).
	N int
	// Dim is the number of columns (vector dimensionality).
	Dim int
}

// NewMatrix allocates a zeroed n×d matrix.
func NewMatrix(n, d int) *Matrix {
	if n < 0 || d <= 0 {
		panic(fmt.Sprintf("vec: invalid matrix shape %d×%d", n, d))
	}
	return &Matrix{Data: make([]float32, n*d), N: n, Dim: d}
}

// FromRows builds a matrix by copying the given equally sized rows.
func FromRows(rows [][]float32) *Matrix {
	if len(rows) == 0 {
		return &Matrix{}
	}
	d := len(rows[0])
	m := NewMatrix(len(rows), d)
	for i, r := range rows {
		if len(r) != d {
			panic(fmt.Sprintf("vec: ragged row %d: got %d values, want %d", i, len(r), d))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float32 {
	return m.Data[i*m.Dim : (i+1)*m.Dim : (i+1)*m.Dim]
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Dim+j] }

// Set stores v at row i, column j.
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Dim+j] = v }

// SetRow copies r into row i.
func (m *Matrix) SetRow(i int, r []float32) {
	if len(r) != m.Dim {
		panic(fmt.Sprintf("vec: SetRow length %d, want %d", len(r), m.Dim))
	}
	copy(m.Row(i), r)
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{Data: make([]float32, len(m.Data)), N: m.N, Dim: m.Dim}
	copy(c.Data, m.Data)
	return c
}

// SubsetRows returns a new matrix containing the given rows, in order.
func (m *Matrix) SubsetRows(idx []int) *Matrix {
	s := NewMatrix(len(idx), m.Dim)
	for out, i := range idx {
		copy(s.Row(out), m.Row(i))
	}
	return s
}

// Norms returns ‖x_i‖² for every row. k-means and BKM precompute these once:
// with them, a squared distance needs only one dot product.
func (m *Matrix) Norms() []float32 {
	out := make([]float32, m.N)
	for i := 0; i < m.N; i++ {
		out[i] = SqNorm(m.Row(i))
	}
	return out
}

// Mean computes the centroid (column-wise mean) of the rows listed in idx.
// It returns a zero vector when idx is empty.
func (m *Matrix) Mean(idx []int) []float32 {
	c := make([]float32, m.Dim)
	if len(idx) == 0 {
		return c
	}
	acc := make([]float64, m.Dim)
	for _, i := range idx {
		row := m.Row(i)
		for j, v := range row {
			acc[j] += float64(v)
		}
	}
	inv := 1 / float64(len(idx))
	for j := range c {
		c[j] = float32(acc[j] * inv)
	}
	return c
}

// Equal reports whether two matrices have identical shape and contents.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.N != o.N || m.Dim != o.Dim {
		return false
	}
	for i, v := range m.Data {
		if v != o.Data[i] {
			return false
		}
	}
	return true
}

// Add accumulates src into dst element-wise. Used for composite vectors.
func Add(dst, src []float32) {
	for i, v := range src {
		dst[i] += v
	}
}

// Sub subtracts src from dst element-wise.
func Sub(dst, src []float32) {
	for i, v := range src {
		dst[i] -= v
	}
}

// Scale multiplies every element of dst by s.
func Scale(dst []float32, s float32) {
	for i := range dst {
		dst[i] *= s
	}
}

// SqNorm returns the squared Euclidean norm of x.
func SqNorm(x []float32) float32 { return Dot(x, x) }

// Normalize scales x to unit Euclidean norm in place; a zero vector is left
// unchanged. It returns the original norm.
func Normalize(x []float32) float32 {
	n := math.Sqrt(float64(SqNorm(x)))
	if n == 0 {
		return 0
	}
	inv := float32(1 / n)
	for i := range x {
		x[i] *= inv
	}
	return float32(n)
}
