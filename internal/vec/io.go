package vec

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Matrix (de)serialisation: a tiny shape header followed by the row-major
// float32 payload, all little-endian. The format is a building block for
// larger container files (the index persistence embeds it), so reads never
// consume more bytes than the matrix occupies.

// ioChunk is the streaming buffer size for the payload: large enough to
// amortise Write calls, small enough not to double peak memory.
const ioChunk = 16384 // float32 values per chunk (64 KiB)

// WriteMatrix serialises m to w and returns the number of bytes written.
func WriteMatrix(w io.Writer, m *Matrix) (int64, error) {
	// The header stores both dimensions as uint32; a larger matrix would
	// round-trip silently truncated, so refuse it outright. ReadMatrix
	// additionally caps N and Dim at MaxInt32.
	if m.N < 0 || int64(m.N) > math.MaxUint32 || m.Dim < 0 || int64(m.Dim) > math.MaxUint32 {
		return 0, fmt.Errorf("vec: matrix shape %d×%d does not fit the uint32 header", m.N, m.Dim)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(m.N))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(m.Dim))
	n, err := w.Write(hdr[:])
	written := int64(n)
	if err != nil {
		return written, err
	}
	buf := make([]byte, 0, 4*ioChunk)
	for off := 0; off < len(m.Data); off += ioChunk {
		end := off + ioChunk
		if end > len(m.Data) {
			end = len(m.Data)
		}
		buf = buf[:0]
		for _, v := range m.Data[off:end] {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
		n, err := w.Write(buf)
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// ReadMatrix deserialises a matrix written by WriteMatrix. It reads exactly
// the matrix's bytes from r — safe to call mid-stream.
func ReadMatrix(r io.Reader) (*Matrix, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("vec: reading matrix header: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(hdr[0:]))
	d := int(binary.LittleEndian.Uint32(hdr[4:]))
	if n < 0 || d <= 0 || n > math.MaxInt32 || d > math.MaxInt32 {
		return nil, fmt.Errorf("vec: invalid matrix shape %d×%d", n, d)
	}
	// Plausibility cap before allocating from an untrusted header: a corrupt
	// file must fail with an error, not an OOM crash. 1 TiB of payload.
	total := int64(n) * int64(d)
	if total > (1<<40)/4 {
		return nil, fmt.Errorf("vec: implausible matrix shape %d×%d", n, d)
	}
	// The shape is still untrusted: grow the payload with the bytes that
	// actually arrive instead of allocating n×d up front, so a lying header
	// over a short stream fails at EOF having allocated one chunk, not
	// gigabytes (repeatedly zeroing huge reused spans is also what a fuzzer
	// would otherwise spend all its time on).
	capHint := total
	if capHint > ioChunk {
		capHint = ioChunk
	}
	data := make([]float32, 0, capHint)
	buf := make([]byte, 4*ioChunk)
	for off := int64(0); off < total; off += ioChunk {
		end := off + ioChunk
		if end > total {
			end = total
		}
		chunk := buf[:4*(end-off)]
		if _, err := io.ReadFull(r, chunk); err != nil {
			return nil, fmt.Errorf("vec: reading matrix payload: %w", err)
		}
		for i := 0; i < len(chunk); i += 4 {
			data = append(data, math.Float32frombits(binary.LittleEndian.Uint32(chunk[i:])))
		}
	}
	return &Matrix{Data: data, N: n, Dim: d}, nil
}
