package vec

import "fmt"

// U8Matrix is the uint8 counterpart of Matrix: an n×d row-major matrix of
// byte values, the native representation of SIFT1B-style bvecs corpora.
// Keeping byte data as bytes instead of widening to float32 shrinks the
// dataset 4x and scans proportionally less memory per distance computation;
// the integer kernels below (L2SqrU8, L2SqrBoundU8) compute exact squared
// distances on it with no float rounding at all.
type U8Matrix struct {
	// Data holds the n*d values row by row.
	Data []uint8
	// N is the number of rows (samples).
	N int
	// Dim is the number of columns (vector dimensionality).
	Dim int
}

// MaxU8Dim is the largest dimensionality a U8Matrix may have:
// floor(MaxInt32 / 255²), so a full squared distance — at most
// Dim·255² — always fits the kernels' int32 accumulators exactly.
const MaxU8Dim = (1<<31 - 1) / (255 * 255)

// NewU8Matrix allocates a zeroed n×d uint8 matrix. Shapes the int32
// distance kernels cannot serve exactly (d > MaxU8Dim) are refused.
func NewU8Matrix(n, d int) *U8Matrix {
	if n < 0 || d <= 0 || d > MaxU8Dim {
		panic(fmt.Sprintf("vec: invalid uint8 matrix shape %d×%d (dim cap %d)", n, d, MaxU8Dim))
	}
	return &U8Matrix{Data: make([]uint8, n*d), N: n, Dim: d}
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *U8Matrix) Row(i int) []uint8 {
	return m.Data[i*m.Dim : (i+1)*m.Dim : (i+1)*m.Dim]
}

// Clone returns a deep copy of the matrix.
func (m *U8Matrix) Clone() *U8Matrix {
	c := &U8Matrix{Data: make([]uint8, len(m.Data)), N: m.N, Dim: m.Dim}
	copy(c.Data, m.Data)
	return c
}

// SubsetRows returns a new matrix containing the given rows, in order.
func (m *U8Matrix) SubsetRows(idx []int) *U8Matrix {
	s := NewU8Matrix(len(idx), m.Dim)
	for out, i := range idx {
		copy(s.Row(out), m.Row(i))
	}
	return s
}

// Equal reports whether two matrices have identical shape and contents.
func (m *U8Matrix) Equal(o *U8Matrix) bool {
	if m.N != o.N || m.Dim != o.Dim {
		return false
	}
	for i, v := range m.Data {
		if v != o.Data[i] {
			return false
		}
	}
	return true
}

// Widen returns a float32 copy of the matrix. Every byte is exactly
// representable in float32, so the result is the matrix every pre-uint8
// consumer of bvecs data would have loaded — graph construction over the
// widened copy is bit-identical to the float32 path.
func (m *U8Matrix) Widen() *Matrix {
	w := NewMatrix(m.N, m.Dim)
	for i, b := range m.Data {
		w.Data[i] = float32(b)
	}
	return w
}

// U8FromMatrix converts a float32 matrix whose every value is an exact byte
// (an integer in [0,255]) into a U8Matrix. A value that is not exactly a
// byte returns an error naming it — narrowing such data would silently
// change distances, so the caller must decide how to quantize.
func U8FromMatrix(m *Matrix) (*U8Matrix, error) {
	if m.Dim > MaxU8Dim {
		return nil, fmt.Errorf("vec: %d-dimensional data exceeds the uint8 kernel cap %d", m.Dim, MaxU8Dim)
	}
	u := NewU8Matrix(m.N, m.Dim)
	for i, v := range m.Data {
		if !(v >= 0 && v <= 255) || v != float32(uint8(v)) {
			return nil, fmt.Errorf("vec: value %v at row %d col %d is not an exact byte", v, i/m.Dim, i%m.Dim)
		}
		u.Data[i] = uint8(v)
	}
	return u, nil
}
