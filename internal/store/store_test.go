package store

import (
	"sync"
	"testing"
)

func TestBitsSetGetCount(t *testing.T) {
	b := NewBits(130)
	if b.Len() != 130 || b.Count() != 0 {
		t.Fatalf("fresh bits: Len=%d Count=%d", b.Len(), b.Count())
	}
	for _, i := range []int{0, 63, 64, 129} {
		if b.Get(i) {
			t.Fatalf("bit %d set in a fresh set", i)
		}
		if !b.Set(i) {
			t.Fatalf("Set(%d) reported no change", i)
		}
		if b.Set(i) {
			t.Fatalf("second Set(%d) reported a change", i)
		}
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if b.Count() != 4 {
		t.Fatalf("Count = %d, want 4", b.Count())
	}

	c := b.Clone()
	c.Set(5)
	if b.Get(5) || b.Count() != 4 || c.Count() != 5 {
		t.Fatal("Clone shares storage with the original")
	}

	for _, bad := range []int{-1, 130} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Get(%d) did not panic", bad)
				}
			}()
			b.Get(bad)
		}()
	}
}

func TestBitsFromWords(t *testing.T) {
	b := NewBits(70)
	b.Set(1)
	b.Set(69)
	words := make([]uint64, len(b.Words()))
	copy(words, b.Words())
	got, err := BitsFromWords(70, words)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != 2 || !got.Get(1) || !got.Get(69) || got.Get(0) {
		t.Fatalf("round-tripped bits differ: count=%d", got.Count())
	}
	if _, err := BitsFromWords(70, words[:1]); err == nil {
		t.Fatal("short word slice accepted")
	}
	if _, err := BitsFromWords(65, []uint64{0, 1 << 5}); err == nil {
		t.Fatal("bit beyond n accepted")
	}
	if _, err := BitsFromWords(64, []uint64{^uint64(0)}); err != nil {
		t.Fatalf("full final word rejected: %v", err)
	}
}

func TestVersionedSwapEpochs(t *testing.T) {
	var v Versioned[string]
	if val, epoch := v.Load(); val != "" || epoch != 0 {
		t.Fatalf("empty cell: %q @ %d", val, epoch)
	}
	if e := v.Swap("a"); e != 1 {
		t.Fatalf("first Swap epoch %d", e)
	}
	if val, epoch := v.Load(); val != "a" || epoch != 1 {
		t.Fatalf("after first swap: %q @ %d", val, epoch)
	}
	if e := v.Swap("b"); e != 2 {
		t.Fatalf("second Swap epoch %d", e)
	}

	// Concurrent swaps must produce strictly increasing unique epochs.
	const writers, swaps = 8, 50
	epochs := make([][]uint64, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < swaps; i++ {
				epochs[w] = append(epochs[w], v.Swap("x"))
			}
		}(w)
	}
	wg.Wait()
	seen := map[uint64]bool{}
	for _, es := range epochs {
		for _, e := range es {
			if seen[e] {
				t.Fatalf("epoch %d issued twice", e)
			}
			seen[e] = true
		}
	}
	if _, epoch := v.Load(); int(epoch) != 2+writers*swaps {
		t.Fatalf("final epoch %d, want %d", epoch, 2+writers*swaps)
	}
}

func TestMemtable(t *testing.T) {
	m := NewMemtable(3)
	m.Add([]float32{1, 2, 3})
	m.Add([]float32{4, 5, 6})
	if m.Rows() != 2 || m.Dim() != 3 {
		t.Fatalf("Rows=%d Dim=%d", m.Rows(), m.Dim())
	}
	if d := m.Data(); len(d) != 6 || d[4] != 5 {
		t.Fatalf("Data = %v", d)
	}
	m.Reset()
	if m.Rows() != 0 || len(m.Data()) != 0 {
		t.Fatalf("after Reset: Rows=%d", m.Rows())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ragged Add did not panic")
		}
	}()
	m.Add([]float32{1})
}

func TestPolicyPlan(t *testing.T) {
	if (Policy{}).Enabled() {
		t.Fatal("zero policy reports enabled")
	}
	if !DefaultPolicy.Enabled() {
		t.Fatal("default policy reports disabled")
	}

	// Tombstone trigger: only the over-ratio shard is picked.
	p := Policy{TombRatio: 0.25}
	stats := []ShardStat{
		{Rows: 100, Deleted: 10},
		{Rows: 100, Deleted: 30},
		{Rows: 0, Deleted: 0},
	}
	if got := p.Plan(stats); len(got) != 1 || got[0] != 1 {
		t.Fatalf("tombstone plan = %v, want [1]", got)
	}

	// Fragment trigger: the excess+1 smallest-live shards merge into one.
	p = Policy{MaxFragments: 3}
	stats = []ShardStat{
		{Rows: 500}, {Rows: 10}, {Rows: 300}, {Rows: 20, Deleted: 15}, {Rows: 400},
	}
	// 5 shards, max 3 → merge 3 smallest by live rows: shards 3 (live 5),
	// 1 (live 10) and 2 (live 300)? No — excess+1 = 3 picks live 5, 10, 300.
	if got := p.Plan(stats); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("fragment plan = %v, want [1 2 3]", got)
	}

	// No trigger → nil.
	if got := DefaultPolicy.Plan([]ShardStat{{Rows: 100, Deleted: 2}}); got != nil {
		t.Fatalf("quiet plan = %v, want nil", got)
	}

	// Determinism: the same stats always plan the same shards.
	a := DefaultPolicy.Plan(stats)
	b := DefaultPolicy.Plan(stats)
	if len(a) != len(b) {
		t.Fatalf("plans differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plans differ: %v vs %v", a, b)
		}
	}
}
