package store

import "sort"

// ShardStat is the per-shard view the compaction policy decides on: how
// many rows the shard holds, how many of them are tombstoned, and the
// generation the shard was built in (higher = newer).
type ShardStat struct {
	Rows    int
	Deleted int
	Gen     uint64
}

// Policy decides which shards the background compactor should rebuild.
// Two triggers, both off the serving path:
//
//   - a shard whose tombstone ratio exceeds TombRatio is rebuilt to
//     reclaim the dead rows (and drop the filter overhead its tombstones
//     impose on every query), and
//   - when the shard count exceeds MaxFragments — every append creates a
//     fresh shard, and each shard multiplies per-query fan-out work — the
//     smallest shards are merged until the count fits again.
//
// The zero value never compacts; DefaultPolicy is a sane serving default.
type Policy struct {
	// TombRatio is the deleted/rows fraction above which a shard is
	// rebuilt. <= 0 disables the tombstone trigger.
	TombRatio float64
	// MaxFragments is the shard count above which the smallest shards are
	// merged. <= 0 disables the fragment trigger.
	MaxFragments int
}

// DefaultPolicy compacts shards that are over a quarter dead and keeps
// deployments at no more than 8 shards.
var DefaultPolicy = Policy{TombRatio: 0.25, MaxFragments: 8}

// Enabled reports whether either trigger is active.
func (p Policy) Enabled() bool { return p.TombRatio > 0 || p.MaxFragments > 0 }

// Plan returns the indices of the shards to rebuild into one merged
// shard, in ascending order, or nil when no compaction is due. The
// decision is a pure function of stats, so the compactor behaves
// identically wherever it runs.
func (p Policy) Plan(stats []ShardStat) []int {
	pick := make(map[int]bool)
	if p.TombRatio > 0 {
		for s, st := range stats {
			if st.Rows > 0 && float64(st.Deleted)/float64(st.Rows) > p.TombRatio {
				pick[s] = true
			}
		}
	}
	if p.MaxFragments > 0 && len(stats) > p.MaxFragments {
		// Merge the smallest shards (by live rows) until the post-merge
		// count fits: merging k shards into one removes k-1 fragments.
		excess := len(stats) - p.MaxFragments
		order := make([]int, len(stats))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool {
			li := stats[order[i]].Rows - stats[order[i]].Deleted
			lj := stats[order[j]].Rows - stats[order[j]].Deleted
			if li != lj {
				return li < lj
			}
			return order[i] < order[j]
		})
		for _, s := range order[:excess+1] {
			pick[s] = true
		}
	}
	if len(pick) == 0 {
		return nil
	}
	// A lone fragment-trigger pick cannot reduce the shard count; a lone
	// tombstone-trigger pick is still worth rebuilding. The loop above
	// always picks >= 2 for fragments, so a singleton here is tombstone-
	// driven and kept.
	out := make([]int, 0, len(pick))
	for s := range pick {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}
