package store

import "sync/atomic"

// Versioned is an epoch-versioned atomic cell: the serving registry keeps
// each index's current shard set in one, so the write path can swap in a
// rebuilt copy-on-write value while readers load a consistent (value,
// epoch) pair with a single atomic operation — a reader can never observe
// a torn shard set, and the epoch lets caches and tests detect swaps.
//
// The zero value is empty: Load returns the zero T at epoch 0 until the
// first Swap.
type Versioned[T any] struct {
	p atomic.Pointer[snapshot[T]]
}

type snapshot[T any] struct {
	val   T
	epoch uint64
}

// Epoch returns the current epoch without loading the value — the cheap
// read the serving layer's query cache uses to decide whether a cached
// result is still current.
func (v *Versioned[T]) Epoch() uint64 {
	s := v.p.Load()
	if s == nil {
		return 0
	}
	return s.epoch
}

// Load returns the current value and its epoch (0 when nothing was ever
// stored).
func (v *Versioned[T]) Load() (T, uint64) {
	s := v.p.Load()
	if s == nil {
		var zero T
		return zero, 0
	}
	return s.val, s.epoch
}

// Swap publishes val as the new current value and returns its epoch,
// which is exactly one greater than the previous one even under
// concurrent swaps.
func (v *Versioned[T]) Swap(val T) uint64 {
	for {
		old := v.p.Load()
		next := &snapshot[T]{val: val, epoch: 1}
		if old != nil {
			next.epoch = old.epoch + 1
		}
		if v.p.CompareAndSwap(old, next) {
			return next.epoch
		}
	}
}
