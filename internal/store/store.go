// Package store holds the mutation-side building blocks of the shard
// store: tombstone bitsets (per-shard deleted-row masks consulted during
// the search merge), an epoch-versioned atomic cell for copy-on-write
// index swaps, a memtable accumulating pending inserts until a shard
// build is worthwhile, and the compaction policy deciding which shards a
// background compactor should rebuild.
//
// The package is deliberately free of index types: the root gkmeans
// package imports it for tombstones, and the serving layer composes the
// rest around *gkmeans.Index values, so no import cycle arises. Everything
// here is deterministic — no randomness, no clocks — because compaction
// and replay must reproduce bit-identical shard sets.
package store

import "fmt"

// Bits is a fixed-size bitset recording deleted rows of one shard. The
// zero value is unusable; create one with NewBits. Bits is not
// concurrency-safe for writing — mutation happens copy-on-write (clone,
// set, swap), so readers only ever observe immutable snapshots.
type Bits struct {
	n     int
	count int
	words []uint64
}

// NewBits returns an empty bitset over n rows.
func NewBits(n int) *Bits {
	if n < 0 {
		panic(fmt.Sprintf("store: negative bitset size %d", n))
	}
	return &Bits{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the number of rows the set covers.
func (b *Bits) Len() int { return b.n }

// Count returns how many bits are set.
func (b *Bits) Count() int { return b.count }

// Get reports whether bit i is set. i out of range panics.
func (b *Bits) Get(i int) bool {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("store: bit %d out of range [0,%d)", i, b.n))
	}
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i and reports whether the set changed (false when the bit
// was already set). i out of range panics.
func (b *Bits) Set(i int) bool {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("store: bit %d out of range [0,%d)", i, b.n))
	}
	mask := uint64(1) << (uint(i) & 63)
	if b.words[i>>6]&mask != 0 {
		return false
	}
	b.words[i>>6] |= mask
	b.count++
	return true
}

// Clone returns an independent copy.
func (b *Bits) Clone() *Bits {
	words := make([]uint64, len(b.words))
	copy(words, b.words)
	return &Bits{n: b.n, count: b.count, words: words}
}

// Words exposes the backing words for persistence. Callers must treat the
// slice as read-only.
func (b *Bits) Words() []uint64 { return b.words }

// BitsFromWords reconstructs a bitset over n rows from persisted words.
// The word count must match exactly and no bit at index >= n may be set,
// so a corrupt tombstone section fails loudly instead of resurrecting or
// killing rows it does not cover.
func BitsFromWords(n int, words []uint64) (*Bits, error) {
	if want := (n + 63) / 64; len(words) != want {
		return nil, fmt.Errorf("store: tombstone bitmap has %d words for %d rows (want %d)", len(words), n, want)
	}
	b := &Bits{n: n, words: words}
	for i, w := range words {
		if hi := (i + 1) * 64; hi > n {
			if tail := w >> (uint(n) & 63); n%64 != 0 && tail != 0 {
				return nil, fmt.Errorf("store: tombstone bitmap sets bits beyond row %d", n)
			}
		}
		for ; w != 0; w &= w - 1 {
			b.count++
		}
	}
	return b, nil
}
