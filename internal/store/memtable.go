package store

import "fmt"

// Memtable accumulates inserted vectors that are not yet part of any
// shard: the serving write path appends to it after the WAL write and
// builds a new shard from its contents once the configured threshold is
// reached. It is a plain row buffer — id assignment and durability are
// the caller's business — and is not concurrency-safe: the serving layer
// already serialises its write path.
type Memtable struct {
	dim  int
	rows int
	data []float32
}

// NewMemtable returns an empty memtable for dim-dimensional vectors.
func NewMemtable(dim int) *Memtable {
	if dim <= 0 {
		panic(fmt.Sprintf("store: memtable dimensionality %d", dim))
	}
	return &Memtable{dim: dim}
}

// Add appends one vector. The row must have the memtable's
// dimensionality; a mismatch panics (the serving layer validates request
// dimensions before the WAL write, so this guards an internal invariant).
func (m *Memtable) Add(row []float32) {
	if len(row) != m.dim {
		panic(fmt.Sprintf("store: memtable row has dimensionality %d, want %d", len(row), m.dim))
	}
	m.data = append(m.data, row...)
	m.rows++
}

// Rows returns the number of buffered vectors.
func (m *Memtable) Rows() int { return m.rows }

// Dim returns the vector dimensionality.
func (m *Memtable) Dim() int { return m.dim }

// Data returns the buffered vectors as one row-major slice. The caller
// must copy it before the next Add or Reset.
func (m *Memtable) Data() []float32 { return m.data }

// Reset empties the memtable, keeping its capacity for the next fill.
func (m *Memtable) Reset() {
	m.data = m.data[:0]
	m.rows = 0
}
