package analysis_test

import (
	"strings"
	"testing"

	"gkmeans/internal/analysis"
	"gkmeans/internal/analysis/analysistest"
)

// Each analyzer runs over a positive fixture (diagnostics expected on the
// lines marked // want) and, where the policy is package-scoped, a negative
// fixture proving out-of-scope packages are exempt. Test files inside the
// fixture directories carry violations with no want markers: the harness
// excludes _test.go exactly like the real driver, so a diagnostic from one
// would fail the test.

func TestDetRand(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.DetRand,
		"gkmeans/internal/kmeans",  // in scope: math/rand import and clock seed flagged
		"gkmeans/internal/router",  // in scope: routing tables persist and must reproduce
		"gkmeans/internal/store",   // in scope: the mutable-store layer is deterministic too
		"gkmeans/internal/dataset", // out of scope: math/rand allowed
	)
}

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.HotAlloc, "hotalloc")
}

func TestPoolPut(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.PoolPut, "poolput")
}

func TestInt32Cast(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Int32Cast,
		"gkmeans/internal/vec",     // in scope: unguarded narrowings flagged
		"gkmeans/internal/metrics", // out of scope: narrowing allowed
	)
}

func TestErrSink(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.ErrSink,
		"gkmeans/internal/knngraph", // in scope: dropped write errors flagged
		"gkmeans/internal/wal",      // in scope: an unlogged WAL write breaks durability
		"gkmeans/internal/server",   // out of scope: HTTP writes exempt
	)
}

// TestSuiteOverRepo is the self-test the CI job relies on: the analyzer
// suite over the real module must be clean. It subsumes `go run ./cmd/gkvet
// ./...` minus the vet pass (CI runs go vet separately).
func TestSuiteOverRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, pkg := range pkgs {
		for _, err := range pkg.Errors {
			t.Errorf("%s: %v", pkg.PkgPath, err)
		}
	}
	diags, err := analysis.RunAnalyzers(pkgs, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s [%s]", pkgs[0].Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	// Sanity: the deterministic scope actually loaded (a renamed package
	// would silently drop the policy).
	found := false
	for _, pkg := range pkgs {
		if pkg.PkgPath == "gkmeans/internal/kmeans" {
			found = true
		}
		if strings.HasSuffix(pkg.PkgPath, "_test") {
			t.Errorf("test package %s leaked into the load", pkg.PkgPath)
		}
	}
	if !found {
		t.Error("gkmeans/internal/kmeans missing from module load")
	}
}
