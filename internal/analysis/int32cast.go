package analysis

import (
	"go/ast"
	"go/types"
)

// int32CastScope lists the packages where sample ids and on-disk fields are
// 32 bits wide: the root package (persistence, shard fan-out), the CSR
// search structures, the graph and the matrix wire format. A silent int →
// int32/uint32 truncation there corrupts ids or files instead of failing.
var int32CastScope = map[string]bool{
	"gkmeans":                   true,
	"gkmeans/internal/anns":     true,
	"gkmeans/internal/knngraph": true,
	"gkmeans/internal/vec":      true,
}

// Int32Cast flags unguarded narrowing conversions to int32/uint32 in the
// id/persistence packages. A conversion is considered guarded when the
// enclosing function contains an explicit bounds check mentioning
// math.MaxInt32 or math.MaxUint32 (the idiom every persist path uses), or
// when the value goes through gkmeans/internal/checked, whose helpers
// panic on overflow instead of truncating.
var Int32Cast = &Analyzer{
	Name: "int32cast",
	Doc: "int→int32/uint32 narrowing must be bounds-checked in id and persistence code\n\n" +
		"Sample ids (CSR adjacency, graph lists) and .gkx header fields are 32\n" +
		"bits. Narrowing conversions in those packages must sit in a function\n" +
		"with an explicit math.MaxInt32/MaxUint32 bounds check, or use the\n" +
		"panicking helpers in gkmeans/internal/checked.",
	Run: runInt32Cast,
}

func runInt32Cast(pass *Pass) error {
	if !int32CastScope[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkNarrowing(pass, fn)
		}
	}
	return nil
}

func checkNarrowing(pass *Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	guarded := hasBoundsGuard(fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		target, ok := isConversion(info, call)
		if !ok || !isNarrow32(target) {
			return true
		}
		argTV, ok := info.Types[call.Args[0]]
		if !ok || argTV.Value != nil { // constants are checked by the compiler
			return true
		}
		if !isWideInt(argTV.Type) {
			return true
		}
		if guarded {
			return true
		}
		pass.Reportf(call.Pos(), "unguarded %s(%s) narrowing in %s; bounds-check against math.%s first or use gkmeans/internal/checked",
			target.String(), argTV.Type.String(), fn.Name.Name, maxConstFor(target))
		return true
	})
}

// hasBoundsGuard reports whether the function contains an if or for
// condition that mentions math.MaxInt32 or math.MaxUint32 — the explicit
// overflow check that makes later narrowings in the function deliberate.
func hasBoundsGuard(fn *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		var cond ast.Expr
		switch n := n.(type) {
		case *ast.IfStmt:
			cond = n.Cond
		case *ast.ForStmt:
			cond = n.Cond
		default:
			return true
		}
		if cond == nil {
			return true
		}
		ast.Inspect(cond, func(c ast.Node) bool {
			switch c := c.(type) {
			case *ast.SelectorExpr:
				if name := c.Sel.Name; name == "MaxInt32" || name == "MaxUint32" {
					found = true
				}
			case *ast.Ident:
				if c.Name == "MaxInt32" || c.Name == "MaxUint32" {
					found = true
				}
			}
			return !found
		})
		return !found
	})
	return found
}

// isNarrow32 reports whether t is int32 or uint32 (or a named type over
// one of them).
func isNarrow32(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Kind() == types.Int32 || b.Kind() == types.Uint32
}

// isWideInt reports whether a conversion from t to a 32-bit integer can
// truncate: int and uint (64-bit on every platform CI gates except 386,
// where the conversion is at least suspicious), the explicit 64-bit types,
// and uintptr.
func isWideInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int, types.Uint, types.Int64, types.Uint64, types.Uintptr:
		return true
	}
	return false
}

func maxConstFor(target types.Type) string {
	if b, ok := target.Underlying().(*types.Basic); ok && b.Kind() == types.Uint32 {
		return "MaxUint32"
	}
	return "MaxInt32"
}
