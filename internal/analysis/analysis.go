// Package analysis is a self-contained, dependency-free re-creation of the
// golang.org/x/tools/go/analysis surface that gkvet's checkers build on: an
// Analyzer is a named Run function over a type-checked package (a Pass), and
// a driver loads packages and reports the diagnostics the analyzers emit.
//
// The real x/tools module is deliberately not imported — the repo builds
// offline from the standard library alone — but the shapes match, so the
// analyzers would port to a stock multichecker by swapping the import.
//
// The five analyzers shipped here (see All) enforce repo invariants that
// ordinary vet passes cannot know about:
//
//   - detrand: deterministic-build packages must not import math/rand
//   - hotalloc: functions annotated //gk:hotpath must not allocate
//   - poolput: every sync.Pool.Get needs a Put before each later return
//   - int32cast: int→int32/uint32 narrowing must be guarded or checked
//   - errsink: persistence writes must not discard errors
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check: a name for diagnostics, a doc string
// for -help output, and the Run function applied to every loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one type-checked package through one analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test compiled Go files. Test files are
	// structurally absent — analyzer policies automatically exempt tests.
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// All returns the repo's analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{DetRand, HotAlloc, PoolPut, Int32Cast, ErrSink}
}

// inspectStack walks every file of the pass, calling fn with each node and
// the stack of its ancestors (outermost first, not including n itself).
// Returning false from fn prunes the subtree.
func inspectStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if !fn(n, stack) {
				return false
			}
			stack = append(stack, n)
			return true
		})
	}
}

// hotpathDirective is the comment marker that opts a function into the
// hotalloc rules.
const hotpathDirective = "//gk:hotpath"

// isHotpath reports whether the function declaration carries the
// //gk:hotpath directive in its doc comment block.
func isHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == hotpathDirective {
			return true
		}
	}
	return false
}

// calleePkgPath returns the import path of the package whose function or
// method the call invokes, or "" when unresolvable (builtins, conversions,
// function-typed variables).
func calleePkgPath(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fun].(*types.Func); ok && obj.Pkg() != nil {
			return obj.Pkg().Path()
		}
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[fun.Sel].(*types.Func); ok && obj.Pkg() != nil {
			return obj.Pkg().Path()
		}
	}
	return ""
}

// calleeName returns the bare name of the called function or method, or "".
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isConversion reports whether the call expression is a type conversion and
// returns the target type.
func isConversion(info *types.Info, call *ast.CallExpr) (types.Type, bool) {
	if len(call.Args) != 1 {
		return nil, false
	}
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, false
	}
	return tv.Type, true
}
