package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The driver loads packages the way a go/packages-based multichecker would,
// but with only the standard library: `go list -export` supplies compiled
// export data for every dependency (standard library included — modern
// GOROOTs ship no .a files, so export data must come from the build cache),
// and each target package is parsed and type-checked from source against
// that export data. Test files are not part of `GoFiles`, so analyzers never
// see them — the exemption the fixture suite locks in.

// Package is one loaded, type-checked target package.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// Errors holds parse/type errors; analyzers still run on partial
	// information, but gkvet reports these and fails.
	Errors []error
}

// listedPackage is the subset of `go list -json` output the driver reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Name       string
	Standard   bool
	Error      *struct{ Err string }
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json=ImportPath,Dir,Export,GoFiles,Name,Standard,Error"}, args...)...)
	cmd.Dir = dir
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, errBuf.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&out)
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from compiled export data. Paths are
// looked up in the pre-populated table first (filled by `go list -export
// -deps`), then lazily through one `go list -export` call per missing path —
// the path the fixture harness takes for standard-library imports.
type exportImporter struct {
	dir     string
	mu      sync.Mutex
	exports map[string]string // import path -> export data file
	imp     types.Importer
}

func newExportImporter(dir string, fset *token.FileSet, exports map[string]string) *exportImporter {
	e := &exportImporter{dir: dir, exports: exports}
	if e.exports == nil {
		e.exports = make(map[string]string)
	}
	e.imp = importer.ForCompiler(fset, "gc", e.lookup)
	return e
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	return e.imp.Import(path)
}

func (e *exportImporter) lookup(path string) (io.ReadCloser, error) {
	e.mu.Lock()
	file, ok := e.exports[path]
	e.mu.Unlock()
	if !ok {
		pkgs, err := goList(e.dir, "-export", "--", path)
		if err != nil {
			return nil, err
		}
		if len(pkgs) != 1 || pkgs[0].Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		file = pkgs[0].Export
		e.mu.Lock()
		e.exports[path] = file
		e.mu.Unlock()
	}
	return os.Open(file)
}

// Load resolves patterns (e.g. "./...") relative to dir into type-checked
// packages ready for analysis.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// One -deps walk populates export data for every dependency of every
	// target, so type-checking below never shells out per import.
	all, err := goList(dir, append([]string{"-export", "-deps", "--"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(all))
	for _, p := range all {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	targets, err := goList(dir, append([]string{"--"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newExportImporter(dir, fset, exports)
	var out []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("%s: %s", t.ImportPath, t.Error.Err)
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := checkPackage(fset, imp, t.ImportPath, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// LoadFixture parses and type-checks one fixture package (the analysistest
// harness' entry point): the files form a package with the given import
// path, and imports resolve lazily through `go list -export` run in dir —
// fixtures may therefore import any standard-library package, but nothing
// else.
func LoadFixture(dir, pkgPath string, filenames []string) (*Package, error) {
	fset := token.NewFileSet()
	imp := newExportImporter(dir, fset, nil)
	return checkPackage(fset, imp, pkgPath, filenames)
}

// checkPackage parses and type-checks one package from source.
func checkPackage(fset *token.FileSet, imp types.Importer, pkgPath string, filenames []string) (*Package, error) {
	pkg := &Package{PkgPath: pkgPath, Fset: fset}
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.Errors = append(pkg.Errors, err) },
	}
	tpkg, err := conf.Check(pkgPath, fset, pkg.Files, pkg.Info)
	if err != nil && len(pkg.Errors) == 0 {
		pkg.Errors = append(pkg.Errors, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

// RunAnalyzers applies every analyzer to every package and returns the
// diagnostics sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	var mu sync.Mutex
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report: func(d Diagnostic) {
					mu.Lock()
					diags = append(diags, d)
					mu.Unlock()
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
