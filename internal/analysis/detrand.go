package analysis

import (
	"go/ast"
	"strconv"
	"strings"
)

// detRandScope lists the packages whose output must be a pure function of
// the configured seed: the build pipeline (bit-identical graphs across runs
// and worker counts is a documented guarantee) and everything it calls.
// math/rand is banned outright there — even seeded rand.New ties the output
// to one upstream generator implementation and invites accidental use of
// the global source; randomness must come from internal/splitmix streams
// (or an injected seeded source), which the repo owns.
var detRandScope = map[string]bool{
	"gkmeans/internal/anns":      true,
	"gkmeans/internal/bkm":       true,
	"gkmeans/internal/closure":   true,
	"gkmeans/internal/core":      true,
	"gkmeans/internal/kmeans":    true,
	"gkmeans/internal/knngraph":  true,
	"gkmeans/internal/nndescent": true,
	// Shard routing tables are persisted and must be reproducible: the
	// centroid builds draw exclusively from salted splitmix streams.
	"gkmeans/internal/router": true,
	// The mutable-store layer replays WALs into deterministic shard
	// rebuilds: compaction planning and replay must not depend on chance.
	"gkmeans/internal/store":    true,
	"gkmeans/internal/twomeans": true,
	"gkmeans/internal/wal":      true,
}

// DetRand forbids math/rand (and math/rand/v2) in deterministic-build
// packages, plus time.Now-derived seeding anywhere in them.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc: "forbid math/rand and time-derived seeds in deterministic build packages\n\n" +
		"The graph build and clustering guarantee bit-identical output for a\n" +
		"fixed seed across runs and worker counts. Packages on that path must\n" +
		"draw randomness from gkmeans/internal/splitmix streams derived from\n" +
		"the configured seed, never from math/rand or wall-clock seeding.",
	Run: runDetRand,
}

func runDetRand(pass *Pass) error {
	if !detRandScope[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "deterministic package %s must not import %s; derive randomness from gkmeans/internal/splitmix streams seeded by the caller",
					pass.Pkg.Path(), path)
			}
		}
	}
	// time.Now as a seed source defeats determinism even without math/rand
	// (e.g. splitmix.New(time.Now().UnixNano())). Flag any time.Now call
	// whose result flows into something named like a seed — conservatively,
	// any time.Now().Unix*/Nanosecond call chain at all: these packages take
	// seeds from their Config and have no other business reading the clock
	// beyond time.Since/time.Now pairs for telemetry, which use the
	// time.Time value directly rather than converting it to an integer.
	inspectStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if name != "UnixNano" && name != "Unix" && name != "UnixMilli" && name != "UnixMicro" {
			return true
		}
		if inner, ok := ast.Unparen(sel.X).(*ast.CallExpr); ok {
			if calleePkgPath(pass.TypesInfo, inner) == "time" && calleeName(inner) == "Now" {
				pass.Reportf(call.Pos(), "time.Now().%s is a wall-clock seed; deterministic package %s must seed from its Config",
					name, shortPkg(pass.Pkg.Path()))
			}
		}
		return true
	})
	return nil
}

// shortPkg trims the module prefix for terser messages.
func shortPkg(path string) string {
	return strings.TrimPrefix(path, "gkmeans/")
}
