package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// PoolPut checks that a function taking scratch from a sync.Pool gives it
// back on every way out. Losing a scratch object is not a leak in the
// garbage-collected sense, but it silently degrades the pool into an
// allocation per query — exactly the cost the pool exists to remove.
//
// The check is lexical, matching how the repo writes pool code: once a
// function calls (*sync.Pool).Get, every return statement that appears
// after the Get must be preceded by a (*sync.Pool).Put, unless a defer
// registers the Put instead. Early returns before the Get (argument
// validation) are unconstrained.
var PoolPut = &Analyzer{
	Name: "poolput",
	Doc: "every sync.Pool.Get must be matched by a Put before each later return\n\n" +
		"A function that takes scratch from a pool and returns without giving\n" +
		"it back turns the pool into an allocation per call. Put must be\n" +
		"deferred immediately or appear before every return that follows the\n" +
		"Get.",
	Run: runPoolPut,
}

func runPoolPut(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkPoolFunc(pass, fn.Name.Name, fn.Body)
		}
	}
	return nil
}

func checkPoolFunc(pass *Pass, name string, body *ast.BlockStmt) {
	var (
		getPos   = token.NoPos
		getName  string
		putPos   []token.Pos
		deferred bool
		returns  []*ast.ReturnStmt
	)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A nested closure is its own scope: its returns do not exit
			// this function, and its Get/Put pairing is checked separately.
			checkPoolFunc(pass, name+" (closure)", n.Body)
			return false
		case *ast.ReturnStmt:
			returns = append(returns, n)
		case *ast.DeferStmt:
			if isPoolCall(pass.TypesInfo, n.Call, "Put") {
				deferred = true
			}
		case *ast.CallExpr:
			if isPoolCall(pass.TypesInfo, n, "Get") {
				if !getPos.IsValid() || n.Pos() < getPos {
					getPos = n.Pos()
					getName = receiverString(pass.Fset, n)
				}
			}
			if isPoolCall(pass.TypesInfo, n, "Put") {
				putPos = append(putPos, n.Pos())
			}
		}
		return true
	})
	if !getPos.IsValid() || deferred {
		return
	}
	missing := false
	for _, ret := range returns {
		if ret.Pos() < getPos {
			continue // validation exit before the Get
		}
		ok := false
		for _, p := range putPos {
			if p > getPos && p < ret.Pos() {
				ok = true
				break
			}
		}
		if !ok {
			missing = true
			pass.Reportf(ret.Pos(), "%s returns without putting the %s scratch back (Get at %s); call Put first or defer it",
				name, getName, pass.Fset.Position(getPos))
		}
	}
	// A Get whose function has no later return and no Put at all (falls off
	// the end) still loses the scratch.
	if !missing && len(putPos) == 0 {
		pass.Reportf(getPos, "%s gets from sync.Pool %s but never puts back", name, getName)
	}
}

// isPoolCall reports whether call is (*sync.Pool).<method>.
func isPoolCall(info *types.Info, call *ast.CallExpr, method string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return false
	}
	recv := selection.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Pool"
}

// receiverString renders the receiver expression of a pool call for the
// message ("s.scratch", "p", …).
func receiverString(fset *token.FileSet, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "pool"
	}
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, sel.X); err != nil {
		return "pool"
	}
	return buf.String()
}
