package analysis

import (
	"go/ast"
	"go/types"
)

// errSinkScope lists the packages that serialise durable artefacts (.gkx
// indexes, graph files, matrix sections). A dropped write error there
// produces a truncated file that the loader rejects much later, far from
// the cause — or worse, silently serves stale data after a failed save.
var errSinkScope = map[string]bool{
	"gkmeans":                   true,
	"gkmeans/internal/knngraph": true,
	"gkmeans/internal/store":    true,
	"gkmeans/internal/vec":      true,
	"gkmeans/internal/wal":      true,
}

// errSinkCallees are the write-path functions and methods whose error
// results must not be discarded in persist packages. Method names match on
// any receiver: every Write/WriteTo/WriteSection/Flush in these packages is
// a serialisation step.
var errSinkMethods = map[string]bool{
	"Write":        true,
	"WriteTo":      true,
	"WriteSection": true,
	"WriteMatrix":  true,
	"Flush":        true,
}

// ErrSink flags discarded error results on the persistence write path:
// a binary.Write / (io.Writer).Write / Flush call used as a bare statement,
// or with its error assigned to the blank identifier.
var ErrSink = &Analyzer{
	Name: "errsink",
	Doc: "persistence writes must not discard their error results\n\n" +
		"In the .gkx/graph/matrix serialisation packages, every Write,\n" +
		"WriteTo, WriteSection, WriteMatrix, Flush and encoding/binary call\n" +
		"returns an error that must be propagated; a discarded error turns an\n" +
		"I/O failure into a silently truncated artefact.",
	Run: runErrSink,
}

func runErrSink(pass *Pass) error {
	if !errSinkScope[pass.Pkg.Path()] {
		return nil
	}
	info := pass.TypesInfo
	inspectStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isWriteCall(info, call) {
				pass.Reportf(call.Pos(), "result of %s is discarded; persistence write errors must be propagated", calleeName(call))
			}
		case *ast.AssignStmt:
			// _ = w.Write(...) or n, _ := w.Write(...): the error lands in
			// the blank identifier.
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok || !isWriteCall(info, call) {
				return true
			}
			if last, ok := n.Lhs[len(n.Lhs)-1].(*ast.Ident); ok && last.Name == "_" {
				pass.Reportf(call.Pos(), "error of %s assigned to _; persistence write errors must be propagated", calleeName(call))
			}
		}
		return true
	})
	return nil
}

// isWriteCall reports whether the call is an error-returning write-path
// call: anything in encoding/binary, or a method/function from
// errSinkMethods whose last result is an error.
func isWriteCall(info *types.Info, call *ast.CallExpr) bool {
	if _, ok := isConversion(info, call); ok {
		return false
	}
	name := calleeName(call)
	pkgPath := calleePkgPath(info, call)
	if pkgPath == "encoding/binary" && (name == "Write" || name == "Read") {
		return lastResultIsError(info, call)
	}
	if !errSinkMethods[name] {
		return false
	}
	return lastResultIsError(info, call)
}

// lastResultIsError reports whether the call's final result is of type
// error.
func lastResultIsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[ast.Expr(call)]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		if t.Len() == 0 {
			return false
		}
		return isErrorType(t.At(t.Len() - 1).Type())
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
