// Package analysistest runs one analyzer over golden fixture packages and
// checks its diagnostics against // want comments — the same contract as
// golang.org/x/tools/go/analysis/analysistest, rebuilt on the repo's
// stdlib-only driver.
//
// Fixtures live under testdata/src/<import-path>/: the directory name is
// the import path the analyzer sees, so package-scoped policies (detrand's
// deterministic set, int32cast's persistence set) can be exercised both
// inside and outside their scope. Fixture files may import only the
// standard library; expectations are written on the offending line as
//
//	expr // want `regexp`
//
// with one backquoted or double-quoted regexp per expected diagnostic.
// Every diagnostic must be matched by a want on its line and every want
// must be matched by a diagnostic, or the test fails.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"gkmeans/internal/analysis"
)

// wantRE extracts the quoted regexps of a want comment.
var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// Run loads each fixture package under dir ("testdata"), applies the
// analyzer, and compares diagnostics with the fixtures' want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, pkgPath := range pkgPaths {
		runOne(t, dir, a, pkgPath)
	}
}

func runOne(t *testing.T, dir string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	srcDir := filepath.Join(dir, "src", filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatalf("%s: reading fixture dir: %v", pkgPath, err)
	}
	var files []string
	for _, e := range entries {
		// _test.go files are excluded exactly as the real driver excludes
		// them (it loads GoFiles only): fixtures place violations in test
		// files to prove tests are exempt from every policy.
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			files = append(files, filepath.Join(srcDir, e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatalf("%s: no fixture files in %s", pkgPath, srcDir)
	}
	pkg, err := analysis.LoadFixture(".", pkgPath, files)
	if err != nil {
		t.Fatalf("%s: %v", pkgPath, err)
	}
	for _, err := range pkg.Errors {
		t.Errorf("%s: fixture does not type-check: %v", pkgPath, err)
	}
	if t.Failed() {
		return
	}
	diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("%s: %v", pkgPath, err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*want)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(c.Text), "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[len("want "):], -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					k := key{pos.Filename, pos.Line}
					wants[k] = append(wants[k], &want{re: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	var keys []key
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matched want %q", k.file, k.line, w.re.String())
			}
		}
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}
