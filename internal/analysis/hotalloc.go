package analysis

import (
	"go/ast"
	"go/types"
)

// HotAlloc flags allocation-causing constructs inside functions annotated
// //gk:hotpath. The search and distance kernels are allocation-free by
// design (per-query state lives in a sync.Pool, results reuse caller
// buffers where possible); this analyzer keeps them that way.
//
// Flagged inside an annotated function:
//
//   - any call into package fmt (formatting allocates)
//   - non-constant string concatenation
//   - make(map) / make(chan), new(T)
//   - slice and map composite literals, and &T{} (heap-escaping literal)
//   - go and defer statements
//   - append whose base is not a reslice (x[:0]-style reuse) when it sits
//     lexically inside a loop — growth in a loop amortises into the query
//   - explicit conversion of a non-pointer concrete value to an interface
//     type (boxing allocates; boxing a pointer does not)
//
// Deliberately allowed: make([]T, …) (the accepted per-query result
// allocation), struct literals by value, function literals that stay local
// (assigned to a local variable or passed as a call argument).
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "forbid allocation-causing constructs in //gk:hotpath functions\n\n" +
		"Functions on the per-query search path and the distance kernels are\n" +
		"annotated //gk:hotpath and must not allocate: no fmt, no string\n" +
		"concatenation, no map/chan construction, no goroutine or defer, no\n" +
		"un-reused append growth in loops, no value-to-interface boxing.",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotpath(fn) {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	inspectStack([]*ast.File{wrapDecl(fn)}, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "hotpath %s starts a goroutine; move concurrency to the caller", fn.Name.Name)
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "hotpath %s defers; defer allocates a record per call on this path", fn.Name.Name)
		case *ast.BinaryExpr:
			if n.Op.String() == "+" {
				if tv, ok := info.Types[ast.Expr(n)]; ok && tv.Value == nil && isString(tv.Type) {
					pass.Reportf(n.Pos(), "hotpath %s concatenates strings at run time", fn.Name.Name)
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[ast.Expr(n)]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(n.Pos(), "hotpath %s builds a %s literal; preallocate outside the hot path", fn.Name.Name, typeKind(tv.Type))
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "hotpath %s heap-allocates with &composite-literal", fn.Name.Name)
				}
			}
		case *ast.FuncLit:
			if escapesLocally(stack) {
				pass.Reportf(n.Pos(), "hotpath %s creates an escaping closure", fn.Name.Name)
			}
		case *ast.CallExpr:
			checkHotCall(pass, fn, n, stack)
		}
		return true
	})
}

func checkHotCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr, stack []ast.Node) {
	info := pass.TypesInfo
	if target, ok := isConversion(info, call); ok {
		if types.IsInterface(target) {
			if argT, ok := info.Types[call.Args[0]]; ok && !types.IsInterface(argT.Type) && !isPointerShaped(argT.Type) {
				pass.Reportf(call.Pos(), "hotpath %s boxes a %s into an interface", fn.Name.Name, argT.Type.String())
			}
		}
		return
	}
	if calleePkgPath(info, call) == "fmt" {
		pass.Reportf(call.Pos(), "hotpath %s calls fmt.%s; formatting allocates", fn.Name.Name, calleeName(call))
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj, ok := info.Uses[id].(*types.Builtin); ok {
			switch obj.Name() {
			case "new":
				pass.Reportf(call.Pos(), "hotpath %s heap-allocates with new", fn.Name.Name)
			case "make":
				if tv, ok := info.Types[call.Args[0]]; ok {
					switch tv.Type.Underlying().(type) {
					case *types.Map, *types.Chan:
						pass.Reportf(call.Pos(), "hotpath %s makes a %s; preallocate outside the hot path", fn.Name.Name, typeKind(tv.Type))
					}
				}
			case "append":
				if !insideLoop(stack) {
					return
				}
				if _, reslice := ast.Unparen(call.Args[0]).(*ast.SliceExpr); !reslice {
					pass.Reportf(call.Pos(), "hotpath %s appends inside a loop without reslicing a reused buffer (x[:0])", fn.Name.Name)
				}
			}
		}
	}
}

// wrapDecl lets inspectStack (which walks files) walk a single declaration.
func wrapDecl(fn *ast.FuncDecl) *ast.File {
	return &ast.File{Name: ast.NewIdent("_"), Decls: []ast.Decl{fn}}
}

// insideLoop reports whether the innermost enclosing statement chain of the
// node (whose ancestors are stack) contains a for or range loop.
func insideLoop(stack []ast.Node) bool {
	for _, n := range stack {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}

// escapesLocally reports whether a function literal's immediate context
// lets it escape: anything other than being a call argument or the RHS of
// an assignment to a plain (local) identifier.
func escapesLocally(stack []ast.Node) bool {
	if len(stack) == 0 {
		return true
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.CallExpr:
		return false // call argument: the callee invokes it synchronously
	case *ast.AssignStmt:
		for _, lhs := range parent.Lhs {
			if _, ok := ast.Unparen(lhs).(*ast.Ident); !ok {
				return true // stored through a field/index: escapes
			}
		}
		return false
	case *ast.ReturnStmt:
		return true
	}
	return true
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isPointerShaped reports whether boxing a value of type t into an
// interface stores the value directly (pointers, maps, chans, funcs,
// unsafe pointers) rather than heap-allocating a copy.
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func typeKind(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	case *types.Chan:
		return "channel"
	}
	return t.String()
}
