// hotalloc fixtures for the uint8 distance-kernel idioms: a 4-way unrolled
// integer kernel with stripe accumulators is allocation-free and must pass
// the annotated check clean; the same kernel sprouting an allocation — a
// per-call diff buffer or an accumulator boxed for logging — is flagged.
package hotalloc

//gk:hotpath
func hotU8KernelOK(a, b []byte) int32 {
	var s0, s1, s2, s3 int32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := int32(a[i]) - int32(b[i])
		d1 := int32(a[i+1]) - int32(b[i+1])
		d2 := int32(a[i+2]) - int32(b[i+2])
		d3 := int32(a[i+3]) - int32(b[i+3])
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := int32(a[i]) - int32(b[i])
		s0 += d * d
	}
	return ((s0 + s1) + s2) + s3
}

//gk:hotpath
func hotU8KernelBad(a, b []byte) int32 {
	diffs := []int32{} // want `builds a slice literal`
	for i := range a {
		d := int32(a[i]) - int32(b[i])
		diffs = append(diffs, d*d) // want `appends inside a loop`
	}
	var sum int32
	for _, d := range diffs {
		sum += d
	}
	trace := any(sum) // want `boxes a int32 into an interface`
	_ = trace
	return sum
}

// coldU8Kernel is unannotated: the identical allocating shape draws no
// diagnostics outside a //gk:hotpath function.
func coldU8Kernel(a, b []byte) int32 {
	diffs := []int32{}
	for i := range a {
		d := int32(a[i]) - int32(b[i])
		diffs = append(diffs, d*d)
	}
	var sum int32
	for _, d := range diffs {
		sum += d
	}
	return sum
}
