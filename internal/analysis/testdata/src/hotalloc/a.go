// hotalloc fixtures: annotated functions must be allocation-free; the same
// constructs in unannotated functions draw no diagnostics.
package hotalloc

import "fmt"

type T struct{ n int }

//gk:hotpath
func hotBad(xs []int, name string) int {
	m := make(map[int]int) // want `makes a map`
	_ = m
	c := make(chan int) // want `makes a channel`
	_ = c
	p := new(T) // want `heap-allocates with new`
	_ = p
	q := &T{n: 1} // want `heap-allocates with &composite-literal`
	_ = q
	s := []int{1, 2}                  // want `builds a slice literal`
	msg := fmt.Sprintf("%d", len(xs)) // want `calls fmt.Sprintf`
	_ = msg
	label := name + "!" // want `concatenates strings`
	_ = label
	v := any(T{n: 2}) // want `boxes a hotalloc.T into an interface`
	_ = v
	go func() {}()    // want `starts a goroutine`
	defer func() {}() // want `defers`
	out := 0
	for _, x := range xs {
		s = append(s, x) // want `appends inside a loop`
		out += x
	}
	return out + len(s)
}

//gk:hotpath
func hotClosureBad() func() int {
	n := 0
	return func() int { // want `escaping closure`
		n++
		return n
	}
}

// hotOK shows every allowed form: result-slice make, local closures,
// call-argument closures, reslice-reuse append in loops, append outside
// loops, value struct literals and pointer boxing.
//
//gk:hotpath
func hotOK(xs []int, buf []int) []int {
	out := make([]int, 0, len(xs))
	add := func(v int) { out = append(out, v) }
	add(1)
	each(xs, func(v int) {})
	t := T{n: 3}
	_ = t
	for i := range xs {
		buf = append(buf[:0], i)
	}
	_ = buf
	return out
}

//gk:hotpath
func hotPtrBox(t *T) any {
	return any(t) // boxing a pointer stores it directly: allowed
}

// coldFine has no //gk:hotpath annotation, so nothing here is flagged.
func coldFine(xs []int, name string) string {
	m := make(map[int]int)
	for _, x := range xs {
		m[x] = x
	}
	go func() {}()
	return fmt.Sprintf("%s:%d", name+"!", len(m))
}

func each(xs []int, fn func(int)) {
	for _, x := range xs {
		fn(x)
	}
}
