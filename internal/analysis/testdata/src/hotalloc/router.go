// Router-shaped hotalloc fixtures: the shard-routing Rank path is annotated
// //gk:hotpath in the real tree, so this file pins down the forms it must
// avoid (per-call scratch maps, growing appends, value boxing) and the forms
// it relies on (caller-provided order/dists buffers, insertion sort).
package hotalloc

//gk:hotpath
func rankBad(q []float32, cents [][]float32) []int32 {
	seen := make(map[int32]float32) // want `makes a map`
	var order []int32
	for s := range cents {
		order = append(order, int32(s)) // want `appends inside a loop`
		seen[int32(s)] = q[0]
	}
	sink := any(q[0]) // want `boxes a float32 into an interface`
	_ = sink
	return order
}

//gk:hotpath
func rankOK(q []float32, cents [][]float32, order []int32, dists []float32) {
	for s, c := range cents {
		d := float32(0)
		for i := range c {
			diff := q[i] - c[i]
			d += diff * diff
		}
		dists[s] = d
		order[s] = int32(s)
	}
	// Insertion sort by (dist asc, id asc): no closures, no boxing.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if dists[a] < dists[b] || (dists[a] == dists[b] && a < b) {
				break
			}
			order[j-1], order[j] = b, a
		}
	}
}
