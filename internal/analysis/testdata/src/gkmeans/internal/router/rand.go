// Positive detrand fixture: this directory poses as the deterministic
// package gkmeans/internal/router. Routing centroid tables persist in .gkx
// files and must be a pure function of (data, k, seed), so chance and
// wall-clock seeds are banned.
package router

import (
	"math/rand" // want `deterministic package gkmeans/internal/router must not import math/rand`
	"time"
)

func randomProbeOrder(shards int) int {
	return rand.New(rand.NewSource(7)).Intn(shards)
}

func clockSeededCentroids() int64 {
	return time.Now().UnixNano() // want `wall-clock seed`
}

// Timing a centroid build for stats is fine.
func buildElapsed(start time.Time) time.Duration {
	return time.Since(start)
}
