// Positive detrand fixture: this directory poses as the deterministic
// package gkmeans/internal/store. Compaction planning and WAL replay feed
// deterministic shard rebuilds, so chance and wall-clock seeds are banned.
package store

import (
	"math/rand" // want `deterministic package gkmeans/internal/store must not import math/rand`
	"time"
)

func randomVictim(shards int) int {
	return rand.New(rand.NewSource(1)).Intn(shards)
}

func clockSeed() int64 {
	return time.Now().UnixNano() // want `wall-clock seed`
}

// Reading the clock for telemetry durations is fine.
func elapsed(start time.Time) time.Duration {
	return time.Since(start)
}
