// Negative detrand fixture: gkmeans/internal/dataset generates synthetic
// benchmark data and is not on the deterministic build path, so math/rand
// is allowed here — no diagnostics expected.
package dataset

import "math/rand"

func Noise(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}
