// errsink fixtures: this directory poses as gkmeans/internal/wal, the
// write-ahead log package. A dropped write or flush error there means a
// mutation is acknowledged without being durable — the exact failure the
// WAL exists to prevent.
package wal

import (
	"bufio"
	"encoding/binary"
	"io"
)

func dropFrame(w io.Writer, length uint32) {
	binary.Write(w, binary.LittleEndian, length) // want `result of Write is discarded`
}

func blankAppend(w io.Writer, rec []byte) {
	_, _ = w.Write(rec) // want `error of Write assigned to _`
}

func dropFlush(bw *bufio.Writer) {
	bw.Flush() // want `result of Flush is discarded`
}

func propagated(w io.Writer, rec []byte) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(rec))); err != nil {
		return err
	}
	_, err := w.Write(rec)
	return err
}
