// Positive detrand fixture: this directory poses as the deterministic
// package gkmeans/internal/kmeans, where math/rand and wall-clock seeding
// are banned.
package kmeans

import (
	"math/rand" // want `deterministic package gkmeans/internal/kmeans must not import math/rand`
	"time"
)

func shuffled(n int) []int {
	rng := rand.New(rand.NewSource(1))
	return rng.Perm(n)
}

func clockSeed() int64 {
	return time.Now().UnixNano() // want `wall-clock seed`
}

// telemetry-style use of the clock is fine: no integer conversion.
func elapsed(start time.Time) time.Duration {
	return time.Since(start)
}
