// Test files are exempt from every policy: the driver loads compiled
// GoFiles only, so this math/rand import must produce no diagnostic.
package kmeans

import "math/rand"

func testOnlyHelper(n int) []int {
	return rand.New(rand.NewSource(7)).Perm(n)
}
