// errsink fixtures: this directory poses as gkmeans/internal/knngraph,
// a persistence package where write errors must be propagated.
package knngraph

import (
	"bufio"
	"encoding/binary"
	"io"
)

func dropBinary(w io.Writer, v uint32) {
	binary.Write(w, binary.LittleEndian, v) // want `result of Write is discarded`
}

func blankError(w io.Writer, p []byte) {
	_, _ = w.Write(p) // want `error of Write assigned to _`
}

func dropFlush(bw *bufio.Writer) {
	bw.Flush() // want `result of Flush is discarded`
}

func propagated(w io.Writer, v uint32) error {
	return binary.Write(w, binary.LittleEndian, v)
}

func handled(w io.Writer, p []byte) (int, error) {
	return w.Write(p)
}
