// Negative int32cast fixture: gkmeans/internal/metrics is not an id or
// persistence package, so narrowing here is out of scope — no diagnostics.
package metrics

func histogramBucket(n int) int32 {
	return int32(n)
}
