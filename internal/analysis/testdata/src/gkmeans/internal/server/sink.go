// Negative errsink fixture: gkmeans/internal/server streams HTTP
// responses, where a failed response write has no durable artefact to
// corrupt — out of scope, no diagnostics.
package server

import "io"

func respond(w io.Writer, body []byte) {
	w.Write(body)
}
