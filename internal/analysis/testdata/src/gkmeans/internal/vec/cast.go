// int32cast fixtures: this directory poses as gkmeans/internal/vec, where
// narrowing to 32-bit id/header types must be guarded.
package vec

import "math"

func unguardedInt(n int) int32 {
	return int32(n) // want `unguarded int32\(int\) narrowing`
}

func unguardedUintFromInt64(v int64) uint32 {
	return uint32(v) // want `unguarded uint32\(int64\) narrowing`
}

// guardedInt: the explicit MaxInt32 bounds check blesses the narrowing.
func guardedInt(n int) int32 {
	if int64(n) > math.MaxInt32 {
		panic("overflow")
	}
	return int32(n)
}

// guardedUint: same for uint32 against MaxUint32.
func guardedUint(n int) uint32 {
	if n < 0 || int64(n) > math.MaxUint32 {
		panic("overflow")
	}
	return uint32(n)
}

// notNarrowing: conversions between same-width or widening types are fine.
func notNarrowing(v int32, w uint32) (int32, int64) {
	return int32(v), int64(w)
}

// constantConversion: the compiler itself rejects out-of-range constants.
func constantConversion() int32 {
	return int32(1 << 10)
}
