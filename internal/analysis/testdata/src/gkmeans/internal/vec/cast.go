// int32cast fixtures: this directory poses as gkmeans/internal/vec, where
// narrowing to 32-bit id/header types must be guarded.
package vec

import "math"

func unguardedInt(n int) int32 {
	return int32(n) // want `unguarded int32\(int\) narrowing`
}

func unguardedUintFromInt64(v int64) uint32 {
	return uint32(v) // want `unguarded uint32\(int64\) narrowing`
}

// guardedInt: the explicit MaxInt32 bounds check blesses the narrowing.
func guardedInt(n int) int32 {
	if int64(n) > math.MaxInt32 {
		panic("overflow")
	}
	return int32(n)
}

// guardedUint: same for uint32 against MaxUint32.
func guardedUint(n int) uint32 {
	if n < 0 || int64(n) > math.MaxUint32 {
		panic("overflow")
	}
	return uint32(n)
}

// notNarrowing: conversions between same-width or widening types are fine.
func notNarrowing(v int32, w uint32) (int32, int64) {
	return int32(v), int64(w)
}

// constantConversion: the compiler itself rejects out-of-range constants.
func constantConversion() int32 {
	return int32(1 << 10)
}

// u8AccumulatorWidening: the uint8 kernel idiom — widening byte operands
// into int32 stripe accumulators — never narrows, so none of it is flagged.
func u8AccumulatorWidening(a, b []byte) int32 {
	var s0, s1 int32
	for i := 0; i+2 <= len(a); i += 2 {
		d0 := int32(a[i]) - int32(b[i])
		d1 := int32(a[i+1]) - int32(b[i+1])
		s0 += d0 * d0
		s1 += d1 * d1
	}
	return s0 + s1
}

// u8SumNarrowedUnguarded: totalling per-row kernel results in int64 and
// narrowing the total back to the id width without a bounds check is the
// overflow this analyzer exists for.
func u8SumNarrowedUnguarded(rows [][]byte, q []byte) int32 {
	var total int64
	for _, r := range rows {
		total += int64(u8AccumulatorWidening(r, q))
	}
	return int32(total) // want `unguarded int32\(int64\) narrowing`
}

// u8SumNarrowedGuarded: the same narrowing under an explicit MaxInt32
// check is deliberate and passes.
func u8SumNarrowedGuarded(rows [][]byte, q []byte) int32 {
	var total int64
	for _, r := range rows {
		total += int64(u8AccumulatorWidening(r, q))
	}
	if total > math.MaxInt32 {
		panic("overflow")
	}
	return int32(total)
}
