// poolput fixtures: scratch taken from a sync.Pool must go back on every
// exit path after the Get.
package poolput

import "sync"

type scratch struct{ buf []byte }

var pool = sync.Pool{New: func() any { return new(scratch) }}

// good: validation exit before the Get is unconstrained; the one return
// after the Get is preceded by a Put.
func good(n int) int {
	if n < 0 {
		return 0
	}
	sc := pool.Get().(*scratch)
	sc.buf = sc.buf[:0]
	pool.Put(sc)
	return n
}

// deferredPut: registering the Put with defer covers every return.
func deferredPut(n int) int {
	sc := pool.Get().(*scratch)
	defer pool.Put(sc)
	if n > 10 {
		return n
	}
	return len(sc.buf)
}

// earlyEscape loses the scratch on the n > 10 path.
func earlyEscape(n int) int {
	sc := pool.Get().(*scratch)
	if n > 10 {
		return n // want `returns without putting the pool scratch back`
	}
	pool.Put(sc)
	return 0
}

// neverPut takes scratch and falls off the end without returning it.
func neverPut() {
	sc := pool.Get().(*scratch) // want `gets from sync.Pool pool but never puts back`
	sc.buf = nil
}

// closureScoped: the inner closure's returns do not exit the outer
// function; the outer Get/Put pair is complete, so no diagnostics.
func closureScoped(xs []int) int {
	sc := pool.Get().(*scratch)
	pick := func(v int) int {
		if v > 0 {
			return v
		}
		return -v
	}
	total := 0
	for _, x := range xs {
		total += pick(x)
	}
	pool.Put(sc)
	return total
}
