// Package wal implements the write-ahead log behind gkserved's mutation
// endpoints: an append-only file of length-prefixed, CRC-checked records,
// fsync'd before any write is acknowledged, and replayed on startup to
// restore inserts and deletes that have not yet been folded into a
// persisted index checkpoint.
//
// File layout (all little-endian):
//
//	uint32  magic "GKWL"
//	uint32  format version (1)
//	records: each { uint32 payload length, uint32 CRC-32 (IEEE) of the
//	          payload, payload bytes }
//
// A record is valid only when its full payload is present and matches its
// CRC; Scan never delivers a partial or corrupt record to the caller. A
// torn tail — the expected artefact of a crash mid-append — is detected
// by Open and truncated away, so the log always resumes from the last
// fully durable record.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

const (
	magic      = uint32(0x474b574c) // "GKWL"
	version    = uint32(1)
	headerSize = 8
	frameSize  = 8 // length + CRC prefix of every record

	// MaxRecord bounds one record's payload so a corrupt length field
	// cannot demand an absurd allocation.
	MaxRecord = 256 << 20
)

// ErrCorrupt marks a record that cannot be trusted: truncated mid-frame,
// an implausible length, or a CRC mismatch. Nothing at or after the
// corruption is replayed.
var ErrCorrupt = errors.New("wal: corrupt record")

// Scan reads framed records from r, invoking fn with each fully verified
// payload. It returns the number of records delivered and the byte offset
// just past the last valid record. A clean end of input returns a nil
// error; malformed input returns an error wrapping ErrCorrupt; an fn
// error aborts the scan and is returned as-is. The payload slice is
// reused across calls — fn must not retain it.
func Scan(r io.Reader, fn func(payload []byte) error) (n int, consumed int64, err error) {
	var frame [frameSize]byte
	var buf []byte
	for {
		if _, err := io.ReadFull(r, frame[:]); err != nil {
			if err == io.EOF {
				return n, consumed, nil
			}
			return n, consumed, fmt.Errorf("%w: truncated frame header after record %d", ErrCorrupt, n)
		}
		length := binary.LittleEndian.Uint32(frame[0:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		if length == 0 || length > MaxRecord {
			return n, consumed, fmt.Errorf("%w: implausible record length %d", ErrCorrupt, length)
		}
		if uint32(cap(buf)) < length {
			buf = make([]byte, length)
		}
		payload := buf[:length]
		if _, err := io.ReadFull(r, payload); err != nil {
			return n, consumed, fmt.Errorf("%w: truncated payload in record %d", ErrCorrupt, n)
		}
		if got := crc32.ChecksumIEEE(payload); got != sum {
			return n, consumed, fmt.Errorf("%w: CRC mismatch in record %d (stored %#x, computed %#x)", ErrCorrupt, n, sum, got)
		}
		if err := fn(payload); err != nil {
			return n, consumed, err
		}
		n++
		consumed += frameSize + int64(length)
	}
}

// Log is an open write-ahead log file. All methods are safe for
// concurrent use; Append only returns after the record is fsync'd, so an
// acknowledged write survives any crash.
type Log struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	end     int64 // write offset: headerSize + bytes of valid records
	records int
}

// Open opens (or creates) the log at path. An existing log is scanned to
// the last fully valid record; a torn tail — the artefact of a crash
// mid-append — is truncated away so appends resume from a durable state.
// A file that is not a WAL at all is refused rather than clobbered.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Log{f: f, path: path, end: headerSize}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		var hdr [headerSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], magic)
		binary.LittleEndian.PutUint32(hdr[4:8], version)
		if _, err := f.Write(hdr[:]); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: writing header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: syncing header: %w", err)
		}
		return l, nil
	}
	if err := readHeader(f); err != nil {
		f.Close()
		return nil, err
	}
	n, consumed, err := Scan(f, func([]byte) error { return nil })
	l.records = n
	l.end = headerSize + consumed
	if err != nil {
		// Only corruption can surface here (the discard fn never fails):
		// drop the unusable tail so the next append lands after the last
		// record that was ever acknowledged.
		if terr := f.Truncate(l.end); terr != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncating corrupt tail: %v (after %w)", terr, err)
		}
		if serr := f.Sync(); serr != nil {
			f.Close()
			return nil, fmt.Errorf("wal: syncing truncation: %w", serr)
		}
	}
	if _, err := f.Seek(l.end, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

func readHeader(f *os.File) error {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return fmt.Errorf("wal: reading header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:4]); m != magic {
		return fmt.Errorf("wal: bad magic %#x (not a WAL file)", m)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != version {
		return fmt.Errorf("wal: unsupported version %d (want %d)", v, version)
	}
	return nil
}

// Append frames payload, writes it and fsyncs before returning: once
// Append returns nil the record will be replayed by every future Open,
// which is what lets the serving layer acknowledge a mutation.
func (l *Log) Append(payload []byte) error {
	if len(payload) == 0 || len(payload) > MaxRecord {
		return fmt.Errorf("wal: record payload of %d bytes (want 1..%d)", len(payload), MaxRecord)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	rec := make([]byte, frameSize+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload))
	copy(rec[frameSize:], payload)
	if _, err := l.f.WriteAt(rec, l.end); err != nil {
		return fmt.Errorf("wal: appending record: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing record: %w", err)
	}
	l.end += int64(len(rec))
	l.records++
	return nil
}

// Replay re-reads the log from the start and invokes fn with every valid
// record payload in append order. Corruption mid-log aborts with an
// ErrCorrupt-wrapped error (Open already trims torn tails, so this means
// the file changed underneath the process).
func (l *Log) Replay(fn func(payload []byte) error) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	if err := readHeader(l.f); err != nil {
		return 0, err
	}
	n, _, err := Scan(io.LimitReader(l.f, l.end-headerSize), fn)
	if _, serr := l.f.Seek(l.end, io.SeekStart); serr != nil && err == nil {
		err = serr
	}
	return n, err
}

// Truncate discards every record, leaving an empty log: called after the
// records' effects have been made durable elsewhere (an index checkpoint
// written by the compactor).
func (l *Log) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Truncate(headerSize); err != nil {
		return fmt.Errorf("wal: truncating: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing truncation: %w", err)
	}
	l.end = headerSize
	l.records = 0
	return nil
}

// Records returns the number of valid records currently in the log.
func (l *Log) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close closes the underlying file. The log is unusable afterwards.
func (l *Log) Close() error { return l.f.Close() }
