package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func openTemp(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.wal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, path
}

func replayAll(t *testing.T, l *Log) [][]byte {
	t.Helper()
	var got [][]byte
	n, err := l.Replay(func(p []byte) error {
		got = append(got, append([]byte{}, p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(got) {
		t.Fatalf("Replay reported %d records, delivered %d", n, len(got))
	}
	return got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	l, path := openTemp(t)
	payloads := [][]byte{[]byte("alpha"), []byte("beta"), {0, 1, 2, 3, 255}}
	for _, p := range payloads {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if l.Records() != len(payloads) {
		t.Fatalf("Records = %d, want %d", l.Records(), len(payloads))
	}
	got := replayAll(t, l)
	if len(got) != len(payloads) {
		t.Fatalf("replayed %d records, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("record %d: %q, want %q", i, got[i], payloads[i])
		}
	}

	// Appends after a replay must land after the existing records.
	if err := l.Append([]byte("gamma")); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, l); len(got) != 4 || !bytes.Equal(got[3], []byte("gamma")) {
		t.Fatalf("after post-replay append: %q", got)
	}

	// Reopening reads the same records.
	l.Close()
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Records() != 4 {
		t.Fatalf("reopened Records = %d, want 4", l2.Records())
	}
}

func TestAppendRejectsBadPayloads(t *testing.T) {
	l, _ := openTemp(t)
	if err := l.Append(nil); err == nil {
		t.Fatal("Append(nil) did not error")
	}
	if err := l.Append([]byte{}); err == nil {
		t.Fatal("Append(empty) did not error")
	}
}

func TestTruncateEmptiesLog(t *testing.T) {
	l, path := openTemp(t)
	if err := l.Append([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	if l.Records() != 0 {
		t.Fatalf("Records after Truncate = %d", l.Records())
	}
	if got := replayAll(t, l); len(got) != 0 {
		t.Fatalf("replay after Truncate delivered %d records", len(got))
	}
	if err := l.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Records() != 1 {
		t.Fatalf("reopened Records = %d, want 1", l2.Records())
	}
}

// A torn tail — the crash artefact — must be truncated away on Open, with
// every fully written record preserved.
func TestOpenTruncatesTornTail(t *testing.T) {
	l, path := openTemp(t)
	if err := l.Append([]byte("kept-1")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("kept-2")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Simulate a crash mid-append: frame written, payload cut short.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := make([]byte, 8)
	binary.LittleEndian.PutUint32(torn[0:4], 100)
	binary.LittleEndian.PutUint32(torn[4:8], 12345)
	raw = append(raw, torn...)
	raw = append(raw, []byte("only-part")...)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Records() != 2 {
		t.Fatalf("Records after torn tail = %d, want 2", l2.Records())
	}
	got := replayAll(t, l2)
	if len(got) != 2 || !bytes.Equal(got[1], []byte("kept-2")) {
		t.Fatalf("replay after torn tail: %q", got)
	}
	// The file itself was trimmed: appending works and survives reopen.
	if err := l2.Append([]byte("kept-3")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if l3.Records() != 3 {
		t.Fatalf("Records after repair+append = %d, want 3", l3.Records())
	}
}

// A CRC-corrupted record mid-log cuts replay at the corruption: records
// before it survive, nothing at or after it is delivered.
func TestOpenCutsAtCorruptRecord(t *testing.T) {
	l, path := openTemp(t)
	for _, p := range []string{"first", "second", "third"} {
		if err := l.Append([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the second record (header 8 + rec1 frame 8+5,
	// into rec2's payload after its 8-byte frame).
	raw[8+13+8+2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Records() != 1 {
		t.Fatalf("Records after mid-log corruption = %d, want 1", l2.Records())
	}
	got := replayAll(t, l2)
	if len(got) != 1 || !bytes.Equal(got[0], []byte("first")) {
		t.Fatalf("replay after corruption: %q", got)
	}
}

func TestOpenRefusesForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-wal")
	if err := os.WriteFile(path, []byte("GKIX this is an index, not a log"), 0o644); err != nil {
		t.Fatal(err)
	}
	if l, err := Open(path); err == nil {
		l.Close()
		t.Fatal("Open accepted a non-WAL file")
	}
	raw, _ := os.ReadFile(path)
	if !bytes.HasPrefix(raw, []byte("GKIX")) {
		t.Fatal("refused Open clobbered the foreign file")
	}
}

func TestOpsRoundTrip(t *testing.T) {
	ins, err := EncodeInsert(7, 3, []float32{1, 2, 3, 4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	op, err := Decode(ins)
	if err != nil {
		t.Fatal(err)
	}
	if !op.Insert || op.FirstID != 7 || op.Dim != 3 || op.Count() != 2 || op.Vectors[5] != 6 {
		t.Fatalf("decoded insert: %+v", op)
	}
	del, err := EncodeDelete([]int32{3, 9})
	if err != nil {
		t.Fatal(err)
	}
	op, err = Decode(del)
	if err != nil {
		t.Fatal(err)
	}
	if op.Insert || len(op.IDs) != 2 || op.IDs[1] != 9 {
		t.Fatalf("decoded delete: %+v", op)
	}

	if _, err := EncodeInsert(-1, 3, []float32{1, 2, 3}); err == nil {
		t.Fatal("EncodeInsert with a negative id did not error")
	}
	if _, err := EncodeInsert(0, 4, []float32{1, 2, 3}); err == nil {
		t.Fatal("EncodeInsert with a ragged row did not error")
	}
	if _, err := EncodeDelete(nil); err == nil {
		t.Fatal("EncodeDelete of nothing did not error")
	}
	if _, err := EncodeDelete([]int32{-2}); err == nil {
		t.Fatal("EncodeDelete of a negative id did not error")
	}
	if _, err := Decode([]byte{99, 0, 0}); err == nil {
		t.Fatal("Decode of an unknown op kind did not error")
	}
	if _, err := Decode(ins[:len(ins)-1]); err == nil {
		t.Fatal("Decode of a truncated insert did not error")
	}
}

// FuzzWALReplay: whatever bytes land on disk, Open must never deliver a
// partial or corrupt record — every replayed payload must match its CRC
// frame exactly, the delivered prefix must be a valid re-encoding of
// itself, and Open must repair the file so a reopen agrees with the first
// read.
func FuzzWALReplay(f *testing.F) {
	header := func() []byte {
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], magic)
		binary.LittleEndian.PutUint32(hdr[4:8], version)
		return hdr[:]
	}
	frame := func(payload []byte) []byte {
		rec := make([]byte, 8+len(payload))
		binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload))
		copy(rec[8:], payload)
		return rec
	}
	ins, _ := EncodeInsert(0, 2, []float32{1, 2, 3, 4})
	del, _ := EncodeDelete([]int32{1})
	valid := append(append(header(), frame(ins)...), frame(del)...)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])            // torn tail
	f.Add(append(valid, 0xde, 0xad, 0xbe)) // trailing garbage
	corrupt := append([]byte{}, valid...)
	corrupt[len(header())+8+2] ^= 0x40 // CRC mismatch in record 1
	f.Add(corrupt)
	f.Add(header())
	f.Add([]byte("GKWL"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.wal")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(path)
		if err != nil {
			// Refused entirely (bad header): the file must be untouched.
			now, rerr := os.ReadFile(path)
			if rerr != nil || !bytes.Equal(now, raw) {
				t.Fatalf("failed Open modified the file")
			}
			return
		}
		var replayed [][]byte
		n, err := l.Replay(func(p []byte) error {
			replayed = append(replayed, append([]byte{}, p...))
			return nil
		})
		if err != nil {
			t.Fatalf("Replay errored after Open repaired the log: %v", err)
		}
		if n != l.Records() {
			t.Fatalf("Replay delivered %d records, Records says %d", n, l.Records())
		}
		// Every delivered record must be byte-identical to a CRC-valid
		// frame in the original input, in order: no partial replays.
		off := len(header())
		for i, p := range replayed {
			if off+8+len(p) > len(raw) {
				t.Fatalf("record %d extends past the original input", i)
			}
			length := binary.LittleEndian.Uint32(raw[off : off+4])
			sum := binary.LittleEndian.Uint32(raw[off+4 : off+8])
			if int(length) != len(p) {
				t.Fatalf("record %d length %d, frame says %d", i, len(p), length)
			}
			if crc32.ChecksumIEEE(p) != sum {
				t.Fatalf("record %d does not match its CRC", i)
			}
			if !bytes.Equal(raw[off+8:off+8+len(p)], p) {
				t.Fatalf("record %d payload differs from the file bytes", i)
			}
			off += 8 + len(p)
		}
		l.Close()

		// Open repaired the file: a second Open replays identically.
		l2, err := Open(path)
		if err != nil {
			t.Fatalf("reopen after repair failed: %v", err)
		}
		defer l2.Close()
		if l2.Records() != n {
			t.Fatalf("reopen sees %d records, first open saw %d", l2.Records(), n)
		}
	})
}
