package wal

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Record payloads of the mutation log. Two operations exist:
//
//	insert: uint8 kind (1), uint32 first external id, uint32 dim,
//	        uint32 count, count×dim float32 vectors (row-major)
//	delete: uint8 kind (2), uint32 count, count×uint32 external ids
//
// An insert carries the external id of its first vector so replay is
// idempotent against an index checkpoint: an op whose ids are already
// below the checkpoint's id bound was folded into the checkpoint before a
// crash and is skipped, never applied twice.
const (
	opInsert = uint8(1)
	opDelete = uint8(2)
)

// Op is one decoded mutation record.
type Op struct {
	Insert  bool      // true: insert, false: delete
	FirstID int32     // insert: external id assigned to Vectors' first row
	Dim     int       // insert: vector dimensionality
	Vectors []float32 // insert: Count() rows, row-major
	IDs     []int32   // delete: external ids to tombstone
}

// Count returns the number of rows an insert op carries.
func (op Op) Count() int {
	if op.Dim == 0 {
		return 0
	}
	return len(op.Vectors) / op.Dim
}

// EncodeInsert builds an insert payload. vectors is row-major with
// len(vectors) = count×dim.
func EncodeInsert(firstID int32, dim int, vectors []float32) ([]byte, error) {
	if dim <= 0 || len(vectors) == 0 || len(vectors)%dim != 0 {
		return nil, fmt.Errorf("wal: insert of %d floats at dimensionality %d", len(vectors), dim)
	}
	if firstID < 0 {
		return nil, fmt.Errorf("wal: negative insert id %d", firstID)
	}
	count := len(vectors) / dim
	buf := make([]byte, 13+4*len(vectors))
	buf[0] = opInsert
	binary.LittleEndian.PutUint32(buf[1:5], uint32(firstID))
	binary.LittleEndian.PutUint32(buf[5:9], uint32(dim))
	binary.LittleEndian.PutUint32(buf[9:13], uint32(count))
	for i, v := range vectors {
		binary.LittleEndian.PutUint32(buf[13+4*i:], math.Float32bits(v))
	}
	return buf, nil
}

// EncodeDelete builds a delete payload.
func EncodeDelete(ids []int32) ([]byte, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("wal: empty delete")
	}
	buf := make([]byte, 5+4*len(ids))
	buf[0] = opDelete
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(ids)))
	for i, id := range ids {
		if id < 0 {
			return nil, fmt.Errorf("wal: negative delete id %d", id)
		}
		binary.LittleEndian.PutUint32(buf[5+4*i:], uint32(id))
	}
	return buf, nil
}

// Decode parses one record payload. Every length is validated against the
// payload's actual size — a record that frames correctly (CRC intact) but
// encodes an inconsistent op is rejected, so a logic bug cannot smuggle a
// half-meaningful mutation through replay.
func Decode(payload []byte) (Op, error) {
	if len(payload) == 0 {
		return Op{}, fmt.Errorf("wal: empty op payload")
	}
	switch payload[0] {
	case opInsert:
		if len(payload) < 13 {
			return Op{}, fmt.Errorf("wal: insert op of %d bytes", len(payload))
		}
		firstID := binary.LittleEndian.Uint32(payload[1:5])
		dim := binary.LittleEndian.Uint32(payload[5:9])
		count := binary.LittleEndian.Uint32(payload[9:13])
		if firstID > math.MaxInt32 || dim == 0 || count == 0 {
			return Op{}, fmt.Errorf("wal: insert op with id %d, dim %d, count %d", firstID, dim, count)
		}
		want := uint64(dim) * uint64(count) * 4
		if uint64(len(payload)-13) != want {
			return Op{}, fmt.Errorf("wal: insert op payload is %d bytes, header says %d", len(payload)-13, want)
		}
		if uint64(firstID)+uint64(count) > math.MaxInt32 {
			return Op{}, fmt.Errorf("wal: insert op ids %d..%d overflow int32", firstID, uint64(firstID)+uint64(count))
		}
		vecs := make([]float32, int(dim)*int(count))
		for i := range vecs {
			vecs[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[13+4*i:]))
		}
		return Op{Insert: true, FirstID: int32(firstID), Dim: int(dim), Vectors: vecs}, nil
	case opDelete:
		if len(payload) < 5 {
			return Op{}, fmt.Errorf("wal: delete op of %d bytes", len(payload))
		}
		count := binary.LittleEndian.Uint32(payload[1:5])
		if count == 0 {
			return Op{}, fmt.Errorf("wal: empty delete op")
		}
		if uint64(len(payload)-5) != uint64(count)*4 {
			return Op{}, fmt.Errorf("wal: delete op payload is %d bytes, header says %d ids", len(payload)-5, count)
		}
		ids := make([]int32, count)
		for i := range ids {
			v := binary.LittleEndian.Uint32(payload[5+4*i:])
			if v > math.MaxInt32 {
				return Op{}, fmt.Errorf("wal: delete id %d overflows int32", v)
			}
			ids[i] = int32(v)
		}
		return Op{IDs: ids}, nil
	}
	return Op{}, fmt.Errorf("wal: unknown op kind %d", payload[0])
}
