package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gkmeans/internal/dataset"
	"gkmeans/internal/vec"
)

func TestCentroidsSimple(t *testing.T) {
	data := vec.FromRows([][]float32{{0, 0}, {2, 2}, {10, 10}})
	c := Centroids(data, []int{0, 0, 1}, 2)
	if c.At(0, 0) != 1 || c.At(0, 1) != 1 {
		t.Fatalf("centroid 0 = %v", c.Row(0))
	}
	if c.At(1, 0) != 10 {
		t.Fatalf("centroid 1 = %v", c.Row(1))
	}
}

func TestCentroidsEmptyClusterIsZero(t *testing.T) {
	data := vec.FromRows([][]float32{{1, 1}})
	c := Centroids(data, []int{0}, 3)
	if c.At(2, 0) != 0 || c.At(1, 1) != 0 {
		t.Fatal("empty clusters should have zero centroids")
	}
}

func TestCentroidsPanicsOnBadLabel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Centroids(vec.FromRows([][]float32{{1}}), []int{5}, 2)
}

func TestAverageDistortionKnownValue(t *testing.T) {
	// Two clusters at (0,0) and (4,0); each sample 1 away from its centroid.
	data := vec.FromRows([][]float32{{-1, 0}, {1, 0}, {3, 0}, {5, 0}})
	labels := []int{0, 0, 1, 1}
	c := Centroids(data, labels, 2)
	got := AverageDistortion(data, labels, c)
	if math.Abs(got-1) > 1e-9 {
		t.Fatalf("distortion %v, want 1", got)
	}
	if got2 := DistortionFromLabels(data, labels, 2); math.Abs(got2-1) > 1e-9 {
		t.Fatalf("DistortionFromLabels %v", got2)
	}
}

func TestAverageDistortionLabelMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AverageDistortion(vec.NewMatrix(2, 2), []int{0}, vec.NewMatrix(1, 2))
}

// Property: E = (Σ‖x‖² − I)/n for arbitrary labelings (the identity BKM
// relies on for cheap distortion tracking).
func TestObjectiveDistortionIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		d := 1 + rng.Intn(12)
		k := 1 + rng.Intn(6)
		data := dataset.Uniform(n, d, seed)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(k)
		}
		e1 := DistortionFromLabels(data, labels, k)
		e2 := DistortionFromObjective(SumSqNorms(data), Objective(data, labels, k), n)
		return math.Abs(e1-e2) <= 1e-6*math.Max(1, math.Abs(e1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: moving any sample to its nearest centroid never increases
// distortion measured against fixed centroids.
func TestDistortionMonotoneUnderNearestAssignment(t *testing.T) {
	data := dataset.GloVeLike(120, 3)
	rng := rand.New(rand.NewSource(4))
	k := 6
	labels := make([]int, data.N)
	for i := range labels {
		labels[i] = rng.Intn(k)
	}
	c := Centroids(data, labels, k)
	before := AverageDistortion(data, labels, c)
	for i := range labels {
		best, _ := vec.NearestRow(c, data.Row(i))
		labels[i] = best
	}
	after := AverageDistortion(data, labels, c)
	if after > before+1e-9 {
		t.Fatalf("nearest assignment increased distortion %v -> %v", before, after)
	}
}

func TestClusterSizesAndNonEmpty(t *testing.T) {
	sizes := ClusterSizes([]int{0, 1, 1, 3}, 4)
	want := []int{1, 2, 0, 1}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("sizes %v", sizes)
		}
	}
	if NonEmpty(sizes) != 3 {
		t.Fatalf("NonEmpty = %d", NonEmpty(sizes))
	}
}

func TestSumSqNorms(t *testing.T) {
	data := vec.FromRows([][]float32{{3, 4}, {1, 0}})
	if got := SumSqNorms(data); math.Abs(got-26) > 1e-9 {
		t.Fatalf("SumSqNorms %v", got)
	}
}

func TestDistortionFromObjectiveZeroN(t *testing.T) {
	if DistortionFromObjective(5, 3, 0) != 0 {
		t.Fatal("n=0 should give 0")
	}
}

func TestAverageDistortionEmpty(t *testing.T) {
	if AverageDistortion(&vec.Matrix{Dim: 3}, nil, vec.NewMatrix(1, 3)) != 0 {
		t.Fatal("empty data should give 0")
	}
}

func TestAverageDistortionParallelMatchesSerial(t *testing.T) {
	data := dataset.SIFTLike(5000, 11) // above the parallel threshold
	rng := rand.New(rand.NewSource(5))
	k := 16
	labels := make([]int, data.N)
	for i := range labels {
		labels[i] = rng.Intn(k)
	}
	c := Centroids(data, labels, k)
	par := AverageDistortion(data, labels, c)
	var serial float64
	for i := 0; i < data.N; i++ {
		serial += float64(vec.L2Sqr(data.Row(i), c.Row(labels[i])))
	}
	serial /= float64(data.N)
	if math.Abs(par-serial) > 1e-6*serial {
		t.Fatalf("parallel %v vs serial %v", par, serial)
	}
}
