package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNMIPerfectAgreement(t *testing.T) {
	pred := []int{0, 0, 1, 1, 2, 2}
	truth := []int{5, 5, 3, 3, 9, 9} // same partition, different labels
	nmi, err := NMI(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nmi-1) > 1e-9 {
		t.Fatalf("NMI %v, want 1", nmi)
	}
}

func TestNMISingleClusterIsZero(t *testing.T) {
	nmi, err := NMI([]int{0, 0, 0}, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if nmi != 0 {
		t.Fatalf("degenerate NMI %v", nmi)
	}
}

func TestNMIRandomIsLow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 2000
	pred := make([]int, n)
	truth := make([]int, n)
	for i := range pred {
		pred[i] = rng.Intn(10)
		truth[i] = rng.Intn(10)
	}
	nmi, err := NMI(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if nmi > 0.05 {
		t.Fatalf("random NMI %v should be near 0", nmi)
	}
}

func TestARIPerfectAndRandom(t *testing.T) {
	pred := []int{0, 0, 1, 1}
	if ari, _ := ARI(pred, []int{1, 1, 0, 0}); math.Abs(ari-1) > 1e-9 {
		t.Fatalf("ARI %v, want 1", ari)
	}
	rng := rand.New(rand.NewSource(2))
	n := 3000
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = rng.Intn(8)
		b[i] = rng.Intn(8)
	}
	ari, err := ARI(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ari) > 0.03 {
		t.Fatalf("random ARI %v should be near 0", ari)
	}
}

func TestARITinyInput(t *testing.T) {
	if ari, _ := ARI([]int{0}, []int{0}); ari != 0 {
		t.Fatalf("n=1 ARI %v", ari)
	}
}

func TestPurity(t *testing.T) {
	// Cluster 0: {a,a,b} -> 2/3 pure; cluster 1: {b,b} -> pure.
	pred := []int{0, 0, 0, 1, 1}
	truth := []int{0, 0, 1, 1, 1}
	p, err := Purity(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.8) > 1e-9 {
		t.Fatalf("purity %v, want 0.8", p)
	}
}

func TestExternalMeasuresLengthMismatch(t *testing.T) {
	if _, err := NMI([]int{0}, []int{0, 1}); err == nil {
		t.Fatal("NMI length mismatch should error")
	}
	if _, err := ARI([]int{0}, []int{0, 1}); err == nil {
		t.Fatal("ARI length mismatch should error")
	}
	if _, err := Purity([]int{0}, []int{0, 1}); err == nil {
		t.Fatal("Purity length mismatch should error")
	}
}

// Properties: all three measures are symmetric-safe, bounded, and invariant
// to consistent relabelling.
func TestExternalMeasuresQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(200)
		kp, kt := 1+rng.Intn(6), 1+rng.Intn(6)
		pred := make([]int, n)
		truth := make([]int, n)
		for i := range pred {
			pred[i] = rng.Intn(kp)
			truth[i] = rng.Intn(kt)
		}
		nmi, err1 := NMI(pred, truth)
		ari, err2 := ARI(pred, truth)
		pur, err3 := Purity(pred, truth)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		if nmi < -1e-9 || nmi > 1+1e-9 || pur <= 0 || pur > 1+1e-9 || ari > 1+1e-9 {
			return false
		}
		// Relabelling invariance: shift every predicted label by 10.
		shifted := make([]int, n)
		for i := range pred {
			shifted[i] = pred[i] + 10
		}
		nmi2, _ := NMI(shifted, truth)
		ari2, _ := ARI(shifted, truth)
		return math.Abs(nmi-nmi2) < 1e-9 && math.Abs(ari-ari2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNMIEmptyInput(t *testing.T) {
	if nmi, err := NMI(nil, nil); err != nil || nmi != 0 {
		t.Fatalf("empty NMI = %v, %v", nmi, err)
	}
	if p, err := Purity(nil, nil); err != nil || p != 0 {
		t.Fatalf("empty purity = %v, %v", p, err)
	}
}
