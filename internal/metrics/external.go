package metrics

import (
	"fmt"
	"math"
)

// External clustering-quality measures: when ground-truth classes exist
// (e.g. the latent components of a synthetic mixture), these quantify how
// well a predicted clustering recovers them. They complement the paper's
// internal measure (average distortion) in tests and experiments.

// contingency builds the k×c co-occurrence table of predicted clusters and
// truth classes, plus the marginals.
func contingency(pred, truth []int) (table map[[2]int]int, predSizes, truthSizes map[int]int, n int, err error) {
	if len(pred) != len(truth) {
		return nil, nil, nil, 0, fmt.Errorf("metrics: %d predictions for %d truths", len(pred), len(truth))
	}
	table = make(map[[2]int]int)
	predSizes = make(map[int]int)
	truthSizes = make(map[int]int)
	for i := range pred {
		table[[2]int{pred[i], truth[i]}]++
		predSizes[pred[i]]++
		truthSizes[truth[i]]++
	}
	return table, predSizes, truthSizes, len(pred), nil
}

// NMI returns the normalized mutual information between a predicted
// clustering and ground-truth classes, in [0,1] (1 = identical partitions
// up to relabelling). Normalisation is by the arithmetic mean of the two
// entropies; degenerate single-cluster cases return 0.
func NMI(pred, truth []int) (float64, error) {
	table, ps, ts, n, err := contingency(pred, truth)
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, nil
	}
	fn := float64(n)
	var mi float64
	for key, c := range table {
		pxy := float64(c) / fn
		px := float64(ps[key[0]]) / fn
		py := float64(ts[key[1]]) / fn
		mi += pxy * math.Log(pxy/(px*py))
	}
	entropy := func(sizes map[int]int) float64 {
		var h float64
		for _, c := range sizes {
			p := float64(c) / fn
			h -= p * math.Log(p)
		}
		return h
	}
	hp, ht := entropy(ps), entropy(ts)
	if hp == 0 || ht == 0 {
		return 0, nil
	}
	return mi / ((hp + ht) / 2), nil
}

// ARI returns the adjusted Rand index: chance-corrected pair-counting
// agreement between two partitions, 1 for identical, ≈0 for random.
func ARI(pred, truth []int) (float64, error) {
	table, ps, ts, n, err := contingency(pred, truth)
	if err != nil {
		return 0, err
	}
	if n < 2 {
		return 0, nil
	}
	choose2 := func(x int) float64 { return float64(x) * float64(x-1) / 2 }
	var sumTable, sumPred, sumTruth float64
	for _, c := range table {
		sumTable += choose2(c)
	}
	for _, c := range ps {
		sumPred += choose2(c)
	}
	for _, c := range ts {
		sumTruth += choose2(c)
	}
	total := choose2(n)
	expected := sumPred * sumTruth / total
	maxIdx := (sumPred + sumTruth) / 2
	if maxIdx == expected {
		return 0, nil
	}
	return (sumTable - expected) / (maxIdx - expected), nil
}

// Purity returns the weighted fraction of each predicted cluster occupied
// by its majority truth class, in (0,1].
func Purity(pred, truth []int) (float64, error) {
	table, ps, _, n, err := contingency(pred, truth)
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, nil
	}
	best := make(map[int]int)
	for key, c := range table {
		if c > best[key[0]] {
			best[key[0]] = c
		}
	}
	var sum int
	for p := range ps {
		sum += best[p]
	}
	return float64(sum) / float64(n), nil
}
