// Package metrics implements the paper's evaluation protocol (§5.1): the
// average distortion of a clustering (Eqn. 4, equal to the mean squared
// error / WCSSD-per-sample), the boost k-means objective I (Eqn. 2), and
// helpers that convert between the two.
package metrics

import (
	"fmt"

	"gkmeans/internal/parallel"
	"gkmeans/internal/vec"
)

// Centroids computes the k cluster centroids implied by labels. Empty
// clusters get a zero centroid.
func Centroids(data *vec.Matrix, labels []int, k int) *vec.Matrix {
	if len(labels) != data.N {
		panic(fmt.Sprintf("metrics: %d labels for %d samples", len(labels), data.N))
	}
	sums := make([]float64, k*data.Dim)
	counts := make([]int, k)
	for i, l := range labels {
		if l < 0 || l >= k {
			panic(fmt.Sprintf("metrics: label %d out of range [0,%d)", l, k))
		}
		counts[l]++
		row := data.Row(i)
		base := l * data.Dim
		for j, v := range row {
			sums[base+j] += float64(v)
		}
	}
	c := vec.NewMatrix(k, data.Dim)
	for r := 0; r < k; r++ {
		if counts[r] == 0 {
			continue
		}
		inv := 1 / float64(counts[r])
		row := c.Row(r)
		base := r * data.Dim
		for j := range row {
			row[j] = float32(sums[base+j] * inv)
		}
	}
	return c
}

// AverageDistortion is Eqn. 4: the mean squared distance between each sample
// and its assigned centroid. Lower is better.
func AverageDistortion(data *vec.Matrix, labels []int, centroids *vec.Matrix) float64 {
	if len(labels) != data.N {
		panic(fmt.Sprintf("metrics: %d labels for %d samples", len(labels), data.N))
	}
	if data.N == 0 {
		return 0
	}
	workers := 0
	if data.N < 4096 {
		workers = 1
	}
	partial := make([]float64, data.N) // summed per chunk below
	parallel.For(data.N, workers, func(lo, hi int) {
		var s float64
		for i := lo; i < hi; i++ {
			s += float64(vec.L2Sqr(data.Row(i), centroids.Row(labels[i])))
		}
		partial[lo] = s
	})
	var total float64
	for _, p := range partial {
		total += p
	}
	return total / float64(data.N)
}

// DistortionFromLabels recomputes centroids from labels and returns the
// average distortion — the one-call evaluation used across experiments.
func DistortionFromLabels(data *vec.Matrix, labels []int, k int) float64 {
	return AverageDistortion(data, labels, Centroids(data, labels, k))
}

// Objective is Eqn. 2: I = Σ_r D_r·D_r / n_r, where D_r is the composite
// (sum) vector of cluster r. Empty clusters contribute zero. BKM maximises
// this quantity.
func Objective(data *vec.Matrix, labels []int, k int) float64 {
	sums := make([]float64, k*data.Dim)
	counts := make([]int, k)
	for i, l := range labels {
		counts[l]++
		row := data.Row(i)
		base := l * data.Dim
		for j, v := range row {
			sums[base+j] += float64(v)
		}
	}
	var obj float64
	for r := 0; r < k; r++ {
		if counts[r] == 0 {
			continue
		}
		var dd float64
		base := r * data.Dim
		for j := 0; j < data.Dim; j++ {
			dd += sums[base+j] * sums[base+j]
		}
		obj += dd / float64(counts[r])
	}
	return obj
}

// SumSqNorms returns Σ‖x_i‖², the constant linking Eqn. 2 to Eqn. 4:
// n·E = Σ‖x_i‖² − I. BKM uses it to track distortion for free.
func SumSqNorms(data *vec.Matrix) float64 {
	var s float64
	for i := 0; i < data.N; i++ {
		s += float64(vec.SqNorm(data.Row(i)))
	}
	return s
}

// DistortionFromObjective converts the BKM objective into average
// distortion using the identity E = (Σ‖x‖² − I)/n.
func DistortionFromObjective(sumSqNorms, objective float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return (sumSqNorms - objective) / float64(n)
}

// ClusterSizes tallies the size of each cluster.
func ClusterSizes(labels []int, k int) []int {
	sizes := make([]int, k)
	for _, l := range labels {
		sizes[l]++
	}
	return sizes
}

// NonEmpty counts clusters with at least one member.
func NonEmpty(sizes []int) int {
	n := 0
	for _, s := range sizes {
		if s > 0 {
			n++
		}
	}
	return n
}
