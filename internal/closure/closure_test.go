package closure

import (
	"gkmeans/internal/splitmix"
	"testing"

	"gkmeans/internal/dataset"
	"gkmeans/internal/kmeans"
	"gkmeans/internal/metrics"
	"gkmeans/internal/vec"
)

func TestBuildPartitionCoversAllPoints(t *testing.T) {
	data := dataset.SIFTLike(300, 1)
	rng := splitmix.New(1)
	p := BuildPartition(data, 20, &rng)
	seen := make([]bool, data.N)
	total := 0
	for c, cell := range p.Cells {
		if len(cell) == 0 {
			t.Fatalf("cell %d empty", c)
		}
		if len(cell) > 20 {
			t.Fatalf("cell %d has %d members, leaf size 20", c, len(cell))
		}
		for _, i := range cell {
			if seen[i] {
				t.Fatalf("point %d in two cells", i)
			}
			seen[i] = true
			total++
			if p.CellOf[i] != int32(c) {
				t.Fatalf("CellOf[%d]=%d but found in cell %d", i, p.CellOf[i], c)
			}
		}
	}
	if total != data.N {
		t.Fatalf("partition covers %d of %d points", total, data.N)
	}
}

func TestBuildPartitionDuplicateData(t *testing.T) {
	// All-identical points: the depth cap must terminate recursion.
	rows := make([][]float32, 100)
	for i := range rows {
		rows[i] = []float32{1, 2, 3, 4}
	}
	m := vec.FromRows(rows)
	rng := splitmix.New(2)
	p := BuildPartition(m, 10, &rng)
	total := 0
	for _, cell := range p.Cells {
		total += len(cell)
	}
	if total != 100 {
		t.Fatalf("covered %d of 100 duplicate points", total)
	}
}

func TestEnsembleNeighborhoodContainsSelf(t *testing.T) {
	data := dataset.GloVeLike(200, 3)
	e := BuildEnsemble(data, 3, 15, 4)
	if len(e.Parts) != 3 {
		t.Fatalf("ensemble size %d", len(e.Parts))
	}
	found := false
	e.Neighborhood(7, func(j int32) {
		if j == 7 {
			found = true
		}
	})
	if !found {
		t.Fatal("neighbourhood of a point must contain the point")
	}
}

func TestEnsembleNeighborhoodIsLocal(t *testing.T) {
	// On well-separated blobs, leaf-mates should overwhelmingly come from
	// the same latent component.
	data, truth := dataset.GMM(dataset.GMMConfig{
		N: 600, Dim: 16, Components: 4, Spread: 40, Noise: 1, Seed: 5,
	})
	e := BuildEnsemble(data, 3, 25, 6)
	same, total := 0, 0
	for i := 0; i < data.N; i += 10 {
		e.Neighborhood(i, func(j int32) {
			if int(j) == i {
				return
			}
			total++
			if truth[j] == truth[i] {
				same++
			}
		})
	}
	if total == 0 || float64(same)/float64(total) < 0.9 {
		t.Fatalf("neighbourhood purity %d/%d too low", same, total)
	}
}

func TestClusterRecoversSeparatedBlobs(t *testing.T) {
	data, truth := dataset.GMM(dataset.GMMConfig{
		N: 500, Dim: 8, Components: 5, Spread: 40, Noise: 1, Seed: 7,
	})
	res, err := Cluster(data, Config{K: 5, MaxIter: 30, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(data.N); err != nil {
		t.Fatal(err)
	}
	rng := splitmix.New(9)
	agree, total := 0, 0
	for trial := 0; trial < 20000; trial++ {
		i, j := rng.Intn(data.N), rng.Intn(data.N)
		if i == j || truth[i] != truth[j] {
			continue
		}
		total++
		if res.Labels[i] == res.Labels[j] {
			agree++
		}
	}
	if float64(agree)/float64(total) < 0.95 {
		t.Fatalf("pair agreement %d/%d too low", agree, total)
	}
}

func TestClusterQualityBetweenMiniBatchAndLloyd(t *testing.T) {
	// The paper places closure k-means between Mini-Batch (worst) and
	// BKM/Lloyd (best) in distortion (Fig. 5, Fig. 7). Check the relative
	// ordering against Mini-Batch on structured data.
	data := dataset.SIFTLike(1200, 10)
	k := 24
	cl, err := Cluster(data, Config{K: k, MaxIter: 25, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	mb, err := kmeans.MiniBatch(data, kmeans.MiniBatchConfig{
		Config:    kmeans.Config{K: k, MaxIter: 25, Seed: 11},
		BatchSize: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	eC := metrics.AverageDistortion(data, cl.Labels, cl.Centroids)
	eM := metrics.AverageDistortion(data, mb.Labels, mb.Centroids)
	if eC > eM*1.05 {
		t.Fatalf("closure distortion %.2f clearly worse than mini-batch %.2f", eC, eM)
	}
}

func TestClusterErrors(t *testing.T) {
	data := dataset.Uniform(10, 2, 1)
	if _, err := Cluster(data, Config{K: 0}); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := Cluster(data, Config{K: 11}); err == nil {
		t.Fatal("k>n should error")
	}
}

func TestClusterDeterministic(t *testing.T) {
	data := dataset.GloVeLike(300, 12)
	a, _ := Cluster(data, Config{K: 10, MaxIter: 10, Seed: 13})
	b, _ := Cluster(data, Config{K: 10, MaxIter: 10, Seed: 13})
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed produced different labels")
		}
	}
}

func TestClusterTrace(t *testing.T) {
	data := dataset.Uniform(200, 6, 14)
	res, err := Cluster(data, Config{K: 8, MaxIter: 12, Seed: 15, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != res.Iters {
		t.Fatalf("history %d entries for %d iters", len(res.History), res.Iters)
	}
}
