// Package closure implements the "fast approximate k-means via cluster
// closures" baseline (Wang et al., CVPR 2012 — paper reference [27]). Each
// cluster's closure is the union of its members' neighbourhoods, where a
// point's neighbourhood is the set of points that share a leaf with it in an
// ensemble of random-projection partition trees. During the k-means
// iteration a point is only compared against the clusters whose closure it
// belongs to — the "active points on cluster boundaries" idea the paper
// discusses in §2.1.
package closure

import (
	"sort"

	"gkmeans/internal/splitmix"
	"gkmeans/internal/vec"
)

// saltTree tags the per-tree splitmix streams of BuildEnsemble so tree t of
// seed s can never collide with another derivation from the same seed.
const saltTree uint64 = 0x54524545 // "TREE"

// Partition assigns every sample to a leaf cell of one random-projection
// tree: Cells[c] lists the member indices of cell c and CellOf[i] is the
// cell of sample i.
type Partition struct {
	Cells  [][]int32
	CellOf []int32
}

// BuildPartition recursively splits the dataset on random projection
// directions at the median until every cell has at most leafSize members.
// Random projections adapt to high-dimensional data where coordinate-axis
// splits (KD trees) fail — the curse-of-dimensionality point made in §2.1.
func BuildPartition(data *vec.Matrix, leafSize int, rng *splitmix.Stream) *Partition {
	if leafSize < 1 {
		leafSize = 1
	}
	all := make([]int32, data.N)
	for i := range all {
		all[i] = int32(i)
	}
	p := &Partition{CellOf: make([]int32, data.N)}
	var split func(members []int32, depth int)
	split = func(members []int32, depth int) {
		// Depth cap guards against pathological duplicate-heavy inputs.
		if len(members) <= leafSize || depth > 40 {
			cell := int32(len(p.Cells))
			p.Cells = append(p.Cells, members)
			for _, i := range members {
				p.CellOf[i] = cell
			}
			return
		}
		dir := make([]float32, data.Dim)
		for j := range dir {
			dir[j] = float32(rng.NormFloat64())
		}
		proj := make([]float32, len(members))
		for idx, i := range members {
			proj[idx] = vec.Dot(data.Row(int(i)), dir)
		}
		order := make([]int, len(members))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			if proj[order[a]] != proj[order[b]] {
				return proj[order[a]] < proj[order[b]]
			}
			return members[order[a]] < members[order[b]]
		})
		half := len(members) / 2
		left := make([]int32, 0, half)
		right := make([]int32, 0, len(members)-half)
		for idx, o := range order {
			if idx < half {
				left = append(left, members[o])
			} else {
				right = append(right, members[o])
			}
		}
		split(left, depth+1)
		split(right, depth+1)
	}
	split(all, 0)
	return p
}

// Ensemble is a set of independent random partitions; a point's
// neighbourhood is the union of its cells across all partitions.
type Ensemble struct {
	Parts []*Partition
}

// BuildEnsemble builds m independent partitions with the given leaf size.
// Each tree draws from its own splitmix stream derived from (seed, t), so
// the ensemble is reproducible from the seed alone.
func BuildEnsemble(data *vec.Matrix, m, leafSize int, seed int64) *Ensemble {
	e := &Ensemble{Parts: make([]*Partition, m)}
	for t := 0; t < m; t++ {
		rng := splitmix.New(seed, saltTree, uint64(t))
		e.Parts[t] = BuildPartition(data, leafSize, &rng)
	}
	return e
}

// Neighborhood calls fn for every point sharing a cell with sample i in any
// partition (including i itself, possibly multiple times across trees).
func (e *Ensemble) Neighborhood(i int, fn func(j int32)) {
	for _, p := range e.Parts {
		for _, j := range p.Cells[p.CellOf[i]] {
			fn(j)
		}
	}
}
