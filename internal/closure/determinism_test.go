package closure

import (
	"testing"

	"gkmeans/internal/dataset"
)

// Closure k-means is seeded through splitmix streams only; the same
// (data, Config) pair must reproduce bit for bit, and different seeds must
// be able to disagree.

func TestClusterDeterministicAcrossRuns(t *testing.T) {
	data := dataset.SIFTLike(600, 42)
	cfg := Config{K: 12, Trees: 3, LeafSize: 40, MaxIter: 15, Seed: 7}
	a, err := Cluster(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Labels) != len(b.Labels) {
		t.Fatalf("label counts differ: %d vs %d", len(a.Labels), len(b.Labels))
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatalf("labels diverge at sample %d: %d vs %d", i, a.Labels[i], b.Labels[i])
		}
	}
	for i, v := range a.Centroids.Data {
		if v != b.Centroids.Data[i] {
			t.Fatalf("centroids diverge at element %d: %v vs %v", i, v, b.Centroids.Data[i])
		}
	}
}

func TestEnsembleReproducibleFromSeed(t *testing.T) {
	data := dataset.SIFTLike(400, 9)
	a := BuildEnsemble(data, 3, 30, 11)
	b := BuildEnsemble(data, 3, 30, 11)
	for t_ := range a.Parts {
		pa, pb := a.Parts[t_], b.Parts[t_]
		if len(pa.Cells) != len(pb.Cells) {
			t.Fatalf("tree %d: cell counts differ: %d vs %d", t_, len(pa.Cells), len(pb.Cells))
		}
		for i := range pa.CellOf {
			if pa.CellOf[i] != pb.CellOf[i] {
				t.Fatalf("tree %d: sample %d lands in cell %d vs %d", t_, i, pa.CellOf[i], pb.CellOf[i])
			}
		}
	}
}

func TestClusterSeedsChangeResults(t *testing.T) {
	data := dataset.SIFTLike(600, 42)
	a, err := Cluster(data, Config{K: 12, MaxIter: 15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(data, Config{K: 12, MaxIter: 15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical labelings; seed appears unused")
	}
}
