package closure

import (
	"fmt"
	"time"

	"gkmeans/internal/kmeans"
	"gkmeans/internal/metrics"
	"gkmeans/internal/splitmix"
	"gkmeans/internal/vec"
)

// saltCluster decorrelates the clustering stream from the RP-tree ensemble
// streams derived from the same seed (see saltTree in rptree.go).
const saltCluster uint64 = 0x434c5553 // "CLUS"

// Config controls closure k-means.
type Config struct {
	K        int
	Trees    int // RP-tree ensemble size; <=0 selects 4
	LeafSize int // RP-tree leaf size; <=0 selects 50
	MaxIter  int // <=0 selects 50
	Seed     int64
	Trace    bool
}

// Cluster runs closure k-means. Initialisation picks k random seed samples
// and assigns every point to the nearest seed *found in its neighbourhood*
// (falling back to a random-probe scan when a neighbourhood contains no
// seed), so even the first assignment avoids the O(n·k) pass. Iterations
// then alternate closure-restricted assignment with centroid updates.
func Cluster(data *vec.Matrix, cfg Config) (*kmeans.Result, error) {
	n := data.N
	if cfg.K <= 0 || cfg.K > n {
		return nil, fmt.Errorf("closure: invalid k=%d for n=%d", cfg.K, n)
	}
	trees := cfg.Trees
	if trees <= 0 {
		trees = 4
	}
	leaf := cfg.LeafSize
	if leaf <= 0 {
		leaf = 50
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = 50
	}
	rng := splitmix.New(cfg.Seed, saltCluster)

	start := time.Now()
	ens := BuildEnsemble(data, trees, leaf, cfg.Seed)

	// Seed selection and seed-restricted initial assignment.
	seedOf := make(map[int32]int, cfg.K) // sample index -> cluster id
	perm := rng.Perm(n)
	seedIdx := make([]int, cfg.K)
	for r := 0; r < cfg.K; r++ {
		seedOf[int32(perm[r])] = r
		seedIdx[r] = perm[r]
	}
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		if r, ok := seedOf[int32(i)]; ok {
			labels[i] = r
			continue
		}
		best, bestD := -1, float32(0)
		row := data.Row(i)
		ens.Neighborhood(i, func(j int32) {
			r, ok := seedOf[j]
			if !ok {
				return
			}
			d := vec.L2Sqr(row, data.Row(int(j)))
			if best < 0 || d < bestD {
				best, bestD = r, d
			}
		})
		if best < 0 {
			// No seed in the neighbourhood: probe a few random seeds.
			for p := 0; p < 16; p++ {
				r := rng.Intn(cfg.K)
				d := vec.L2Sqr(row, data.Row(seedIdx[r]))
				if best < 0 || d < bestD {
					best, bestD = r, d
				}
			}
		}
		labels[i] = best
	}
	initTime := time.Since(start)

	centroids := metrics.Centroids(data, labels, cfg.K)
	res := &kmeans.Result{Labels: labels, Centroids: centroids, K: cfg.K, InitTime: initTime}
	iterStart := time.Now()
	candBuf := make([]int, 0, 256)
	seen := make([]int, cfg.K) // epoch stamp per cluster for O(1) dedup
	for i := range seen {
		seen[i] = -1
	}
	stamp := 0
	for iter := 0; iter < maxIter; iter++ {
		moves := 0
		for i := 0; i < n; i++ {
			// Candidate clusters: the clusters of the neighbourhood, i.e.
			// the closures sample i belongs to, plus its current cluster.
			stamp++
			candBuf = candBuf[:0]
			cur := labels[i]
			seen[cur] = stamp
			candBuf = append(candBuf, cur)
			ens.Neighborhood(i, func(j int32) {
				c := labels[j]
				if seen[c] != stamp {
					seen[c] = stamp
					candBuf = append(candBuf, c)
				}
			})
			row := data.Row(i)
			best, bestD := cur, vec.L2Sqr(row, centroids.Row(cur))
			for _, c := range candBuf[1:] {
				if d := vec.L2Sqr(row, centroids.Row(c)); d < bestD {
					best, bestD = c, d
				}
			}
			if best != cur {
				labels[i] = best
				moves++
			}
		}
		rebuildCentroids(data, labels, centroids, &rng)
		res.Iters = iter + 1
		if cfg.Trace {
			res.History = append(res.History, kmeans.IterStat{
				Iter:       iter + 1,
				Distortion: metrics.AverageDistortion(data, labels, centroids),
				Moves:      moves,
				Elapsed:    initTime + time.Since(iterStart),
			})
		}
		if moves == 0 {
			break
		}
	}
	res.IterTime = time.Since(iterStart)
	if err := res.Validate(n); err != nil {
		return nil, fmt.Errorf("closure: %w", err)
	}
	return res, nil
}

// rebuildCentroids recomputes centroids in place; empty clusters are
// reseeded on random samples from oversized clusters.
func rebuildCentroids(data *vec.Matrix, labels []int, centroids *vec.Matrix, rng *splitmix.Stream) {
	k, d := centroids.N, centroids.Dim
	sums := make([]float64, k*d)
	counts := make([]int, k)
	for i, l := range labels {
		counts[l]++
		row := data.Row(i)
		base := l * d
		for j, v := range row {
			sums[base+j] += float64(v)
		}
	}
	for r := 0; r < k; r++ {
		if counts[r] == 0 {
			// Reseed on a random sample from a cluster that can spare one.
			for probe := 0; probe < 64; probe++ {
				i := rng.Intn(data.N)
				if counts[labels[i]] > 1 {
					counts[labels[i]]--
					labels[i] = r
					counts[r] = 1
					copy(centroids.Row(r), data.Row(i))
					break
				}
			}
			continue
		}
		inv := 1 / float64(counts[r])
		row := centroids.Row(r)
		base := r * d
		for j := range row {
			row[j] = float32(sums[base+j] * inv)
		}
	}
}
