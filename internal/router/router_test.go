package router

import (
	"math"
	"testing"

	"gkmeans/internal/dataset"
	"gkmeans/internal/vec"
)

func matrixOf(rows ...[]float32) *vec.Matrix {
	m := vec.NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		copy(m.Row(i), r)
	}
	return m
}

func TestNewValidates(t *testing.T) {
	ok := []*vec.Matrix{matrixOf([]float32{0, 0}), matrixOf([]float32{1, 1})}
	if _, err := New(1, 2, ok); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
	cases := []struct {
		name  string
		k     int
		dim   int
		cents []*vec.Matrix
	}{
		{"zero k", 0, 2, ok},
		{"zero dim", 1, 0, ok},
		{"no shards", 1, 2, nil},
		{"nil shard", 1, 2, []*vec.Matrix{nil}},
		{"too many centroids", 1, 2, []*vec.Matrix{matrixOf([]float32{0, 0}, []float32{1, 1})}},
		{"dim mismatch", 1, 3, ok},
	}
	for _, tc := range cases {
		if _, err := New(tc.k, tc.dim, tc.cents); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestRankOrdersByClosestCentroid(t *testing.T) {
	// Shard 0 owns x≈0, shard 1 x≈10, shard 2 x≈20; shard 1 also holds a
	// second centroid near 3 — the min over a shard's centroids is what
	// ranks it, so a query at 3.4 must put shard 1 first despite shard 0's
	// single centroid being closer than shard 1's main one.
	table, err := New(2, 1,
		[]*vec.Matrix{
			matrixOf([]float32{0}),
			matrixOf([]float32{10}, []float32{3}),
			matrixOf([]float32{20}),
		})
	if err != nil {
		t.Fatal(err)
	}
	if table.Shards() != 3 || table.TotalCentroids() != 4 {
		t.Fatalf("table reports %d shards, %d centroids", table.Shards(), table.TotalCentroids())
	}
	order := make([]int32, 3)
	dists := make([]float32, 3)
	table.Rank([]float32{3.4}, order, dists)
	if order[0] != 1 || order[1] != 0 || order[2] != 2 {
		t.Fatalf("order = %v, want [1 0 2]", order)
	}
	for i := 1; i < len(dists); i++ {
		if dists[i-1] > dists[i] {
			t.Fatalf("dists not ascending: %v", dists)
		}
	}
}

func TestRankBreaksTiesByShardID(t *testing.T) {
	// Three shards with identical centroids: every distance ties, so the
	// probe order must be the shard ids ascending — at any query.
	same := []float32{5, 5}
	table, err := New(1, 2, []*vec.Matrix{matrixOf(same), matrixOf(same), matrixOf(same)})
	if err != nil {
		t.Fatal(err)
	}
	order := make([]int32, 3)
	dists := make([]float32, 3)
	table.Rank([]float32{1, 9}, order, dists)
	if order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("tied ranks order %v, want ascending shard ids", order)
	}
}

func TestBuildShardDeterministicAcrossWorkers(t *testing.T) {
	data := dataset.SIFTLike(300, 7)
	base, err := BuildShard(data, 8, 99, 1)
	if err != nil {
		t.Fatal(err)
	}
	if base.N != 8 || base.Dim != data.Dim {
		t.Fatalf("centroids shaped %dx%d, want 8x%d", base.N, base.Dim, data.Dim)
	}
	for _, workers := range []int{2, 5} {
		m, err := BuildShard(data, 8, 99, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !sameFloats(base.Data, m.Data) {
			t.Fatalf("workers=%d produced different centroids", workers)
		}
	}
	// A different seed must produce a different table (decorrelated streams).
	other, err := BuildShard(data, 8, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sameFloats(base.Data, other.Data) {
		t.Fatal("seeds 99 and 100 produced identical centroids")
	}
}

func TestBuildShardSmallShard(t *testing.T) {
	// k is clamped to the row count, so a tiny shard still routes.
	data := dataset.SIFTLike(3, 11)
	m, err := BuildShard(data, 8, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.N < 1 || m.N > 3 {
		t.Fatalf("tiny shard produced %d centroids", m.N)
	}
	if _, err := BuildShard(nil, 4, 1, 0); err == nil {
		t.Fatal("empty shard accepted")
	}
}

func sameFloats(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}
