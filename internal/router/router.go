// Package router implements centroid-based shard routing for sharded
// indexes: a Table holds a few small k-means centroids per shard, and Rank
// orders the shards by their closest centroid's distance to a query. The
// fan-out layer then searches only the nprobe best-ranked shards instead of
// broadcasting to all of them — the IVF-style work/recall trade.
//
// Determinism contract: centroid construction goes through the seeded
// splitmix-backed kmeans machinery (BuildShard), so a table is a pure
// function of (data, k, seed) at any worker count, and Rank breaks distance
// ties by ascending shard id, so the probe order is a pure function of the
// query and the table.
package router

import (
	"fmt"

	"gkmeans/internal/kmeans"
	"gkmeans/internal/vec"
)

// centroidMaxIter caps the Lloyd iterations of one shard's routing
// centroids. Routing only needs centroids that sit inside the shard's mass —
// a handful of refinement passes over k ≪ rows centroids — not a converged
// clustering.
const centroidMaxIter = 16

// Table is an immutable set of per-shard routing centroids. Shard s is
// represented by cents[s], a ki×dim matrix with 1 <= ki <= k (a shard with
// fewer rows than k holds one centroid per row). Mutation layers build a new
// Table (sharing unchanged centroid matrices) rather than editing one in
// place, mirroring the copy-on-write shard discipline.
type Table struct {
	k     int // configured centroids per shard (upper bound per entry)
	dim   int
	cents []*vec.Matrix
}

// New validates the per-shard centroid matrices and wraps them in a Table.
// The slice is retained, not copied; callers hand over ownership.
func New(k, dim int, cents []*vec.Matrix) (*Table, error) {
	if k < 1 {
		return nil, fmt.Errorf("router: centroids per shard must be >= 1, got %d", k)
	}
	if dim < 1 {
		return nil, fmt.Errorf("router: dimensionality must be >= 1, got %d", dim)
	}
	if len(cents) == 0 {
		return nil, fmt.Errorf("router: table needs at least one shard")
	}
	for s, m := range cents {
		if m == nil || m.N < 1 {
			return nil, fmt.Errorf("router: shard %d has no centroids", s)
		}
		if m.N > k {
			return nil, fmt.Errorf("router: shard %d has %d centroids, config allows %d", s, m.N, k)
		}
		if m.Dim != dim {
			return nil, fmt.Errorf("router: shard %d centroids are %d-dimensional, data is %d-dimensional", s, m.Dim, dim)
		}
	}
	return &Table{k: k, dim: dim, cents: cents}, nil
}

// BuildShard computes routing centroids for one shard: min(k, rows)
// k-means++ seeded Lloyd centroids over the shard's rows. Deterministic for
// a fixed (data, k, seed) at any worker count.
func BuildShard(data *vec.Matrix, k int, seed int64, workers int) (*vec.Matrix, error) {
	if data == nil || data.N == 0 {
		return nil, fmt.Errorf("router: building centroids over an empty shard")
	}
	if k > data.N {
		k = data.N
	}
	res, err := kmeans.Lloyd(data, kmeans.Config{
		K:        k,
		MaxIter:  centroidMaxIter,
		Seed:     seed,
		Workers:  workers,
		PlusPlus: true,
	})
	if err != nil {
		return nil, fmt.Errorf("router: shard centroids: %w", err)
	}
	return res.Centroids, nil
}

// K returns the configured centroids-per-shard bound.
func (t *Table) K() int { return t.k }

// Dim returns the centroid dimensionality.
func (t *Table) Dim() int { return t.dim }

// Shards returns the number of shards the table routes over.
func (t *Table) Shards() int { return len(t.cents) }

// Centroids returns shard s's centroid matrix. Treat it as read-only.
func (t *Table) Centroids(s int) *vec.Matrix { return t.cents[s] }

// TotalCentroids returns the number of centroids across all shards — the
// distance computations one routed query spends on ranking.
func (t *Table) TotalCentroids() int {
	total := 0
	for _, m := range t.cents {
		total += m.N
	}
	return total
}

// Rank orders all shards by ascending distance from q to their closest
// routing centroid, ties broken by ascending shard id. order and dists are
// caller-provided scratch of length >= Shards(); on return order[:Shards()]
// holds the shard ids best-first and dists[i] the best-centroid distance of
// shard order[i]. The caller probes a prefix of order.
//
//gk:hotpath
func (t *Table) Rank(q []float32, order []int32, dists []float32) {
	n := len(t.cents)
	for s := 0; s < n; s++ {
		m := t.cents[s]
		best := vec.L2Sqr(q, m.Row(0))
		for r := 1; r < m.N; r++ {
			if d := vec.L2Sqr(q, m.Row(r)); d < best {
				best = d
			}
		}
		order[s] = int32(s)
		dists[s] = best
	}
	// Insertion sort by (dist, shard id): n is the shard count — small — and
	// this keeps the hot path free of the sort.Slice closure allocation.
	for i := 1; i < n; i++ {
		od, oi := dists[i], order[i]
		j := i
		for j > 0 && (dists[j-1] > od || (dists[j-1] == od && order[j-1] > oi)) {
			dists[j] = dists[j-1]
			order[j] = order[j-1]
			j--
		}
		dists[j] = od
		order[j] = oi
	}
}
