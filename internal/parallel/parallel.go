// Package parallel provides a minimal data-parallel loop helper. The
// clustering inner loops (Lloyd assignment, brute-force k-NN ground truth,
// per-cluster graph refinement) are embarrassingly parallel across disjoint
// index ranges, which is exactly the shape For covers.
package parallel

import (
	"runtime"
	"sync"
)

// For splits [0,n) into contiguous chunks and runs body(lo, hi) on up to
// workers goroutines. workers <= 0 selects GOMAXPROCS. body must only write
// to state owned by its own index range. For n == 0 it returns immediately;
// with a single worker it runs body inline, which keeps small inputs and
// single-core machines free of goroutine overhead.
func For(n, workers int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		body(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ForEach runs body(i) for every i in [0,n) using For. Convenience wrapper
// for loops whose body is heavy enough that per-index closure overhead does
// not matter.
func ForEach(n, workers int, body func(i int)) {
	For(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}
