// Package parallel provides a minimal data-parallel loop helper. The
// clustering inner loops (Lloyd assignment, brute-force k-NN ground truth,
// NN-Descent local joins, per-cluster graph refinement) are embarrassingly
// parallel across disjoint index ranges, which is exactly the shape For
// covers.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// chunksPerWorker sets the scheduling granularity of For: the index space
// is cut into roughly chunksPerWorker chunks per worker, claimed
// dynamically. More chunks means better balance under skewed per-index
// costs (an NN-Descent hub node, an oversized refinement cluster) at the
// price of one atomic add per chunk.
const chunksPerWorker = 8

// For runs body(lo, hi) over disjoint subranges covering [0,n) on up to
// workers goroutines. workers <= 0 selects GOMAXPROCS. body must only write
// to state owned by its own index range. For n == 0 it returns immediately;
// with a single worker it runs body(0, n) inline, which keeps small inputs
// and single-core machines free of goroutine overhead.
//
// Work is divided into fixed-size chunks claimed from a shared atomic
// cursor rather than one contiguous block per worker: a worker that
// finishes its chunk early steals the next unclaimed one, so a run of
// expensive indices cannot serialise the loop on the slowest worker. Every
// index is passed to body exactly once; the assignment of chunks to
// workers is scheduling-dependent, so body must not derive logic from
// worker identity.
func For(n, workers int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		body(0, n)
		return
	}
	chunk := n / (workers * chunksPerWorker)
	if chunk < 1 {
		chunk = 1
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				hi := int(cursor.Add(int64(chunk)))
				lo := hi - chunk
				if lo >= n {
					return
				}
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// ForEach runs body(i) for every i in [0,n) using For. Convenience wrapper
// for loops whose body is heavy enough that per-index closure overhead does
// not matter.
func ForEach(n, workers int, body func(i int)) {
	For(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}
