package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 100} {
		n := 137
		hits := make([]int32, n)
		For(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	called := false
	For(0, 4, func(lo, hi int) { called = true })
	For(-3, 4, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body must not run for n <= 0")
	}
}

func TestForSingleWorkerRunsInline(t *testing.T) {
	// With one worker the callback sees the full range in one call.
	calls := 0
	For(10, 1, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("got range [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("got %d calls, want 1", calls)
	}
}

func TestForEach(t *testing.T) {
	var sum int64
	ForEach(100, 4, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 4950 {
		t.Fatalf("sum=%d", sum)
	}
}

func TestForMoreWorkersThanItems(t *testing.T) {
	var count int64
	For(3, 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt64(&count, 1)
		}
	})
	if count != 3 {
		t.Fatalf("count=%d", count)
	}
}
