package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndicesOnce(t *testing.T) {
	// Exact-once coverage must hold for every chunking the atomic cursor
	// can produce: n smaller/larger than workers·chunksPerWorker, chunk
	// sizes that don't divide n, and degenerate single-index inputs.
	for _, n := range []int{1, 2, 3, 17, 64, 137, 1000, 4096, 4099} {
		for _, workers := range []int{0, 1, 2, 3, 7, 16, 100} {
			hits := make([]int32, n)
			For(n, workers, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("n=%d workers=%d invalid range [%d,%d)", n, workers, lo, hi)
					return
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d index %d hit %d times", n, workers, i, h)
				}
			}
		}
	}
}

func TestForBalancesSkewedCosts(t *testing.T) {
	// A contiguous-split schedule hands the single expensive run of
	// indices to one worker; chunked claiming must still cover everything
	// exactly once when early indices are much slower than late ones.
	const n = 256
	hits := make([]int32, n)
	For(n, 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i < n/8 { // simulate skew: the first stripe is "slow"
				for s := 0; s < 1000; s++ {
					_ = s * s
				}
			}
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestForUsesMultipleChunksPerWorker(t *testing.T) {
	// The scheduling point of striding: with skew-prone inputs the loop
	// must be cut finer than one block per worker.
	var calls int64
	For(1000, 4, func(lo, hi int) { atomic.AddInt64(&calls, 1) })
	if calls <= 4 {
		t.Fatalf("got %d chunks for 4 workers, want more than one per worker", calls)
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	called := false
	For(0, 4, func(lo, hi int) { called = true })
	For(-3, 4, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body must not run for n <= 0")
	}
}

func TestForSingleWorkerRunsInline(t *testing.T) {
	// With one worker the callback sees the full range in one call.
	calls := 0
	For(10, 1, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("got range [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("got %d calls, want 1", calls)
	}
}

func TestForEach(t *testing.T) {
	var sum int64
	ForEach(100, 4, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 4950 {
		t.Fatalf("sum=%d", sum)
	}
}

func TestForMoreWorkersThanItems(t *testing.T) {
	var count int64
	For(3, 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt64(&count, 1)
		}
	})
	if count != 3 {
		t.Fatalf("count=%d", count)
	}
}
