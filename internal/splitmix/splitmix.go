// Package splitmix provides a tiny deterministic PRNG (splitmix64,
// Steele et al., OOPSLA 2014). Unlike math/rand's default Source (~5 KB of
// state), a Stream is a single word, so the parallel graph builders can
// derive one independent stream per node from (seed, salts…) for free.
// That per-node derivation is what makes their output identical for every
// worker count: randomness depends only on the node identity, never on
// which goroutine happens to process it.
//
// The generator is not cryptographic and Intn uses modulo reduction (bias
// is ~n/2^64, irrelevant for sampling neighbours), but it passes the
// statistical bar the builders need: decorrelated streams and uniform
// draws.
package splitmix

import "math"

const (
	gamma = 0x9e3779b97f4a7c15 // golden-ratio increment of splitmix64
	mult1 = 0xbf58476d1ce4e5b9
	mult2 = 0x94d049bb133111eb
)

// mix is the splitmix64 finalizer: a bijective avalanche over 64 bits.
func mix(z uint64) uint64 {
	z ^= z >> 30
	z *= mult1
	z ^= z >> 27
	z *= mult2
	z ^= z >> 31
	return z
}

// Stream is one deterministic random stream. The zero value is a valid
// stream seeded at 0; use New to derive decorrelated streams.
type Stream struct {
	state uint64
}

// New derives a stream from a base seed and any number of salts (node id,
// round number, phase tag, …). Two calls with the same arguments yield
// identical streams; changing any argument yields a statistically
// independent one.
func New(seed int64, salts ...uint64) Stream {
	s := mix(uint64(seed) + gamma)
	for _, x := range salts {
		s = mix(s ^ (x + gamma))
	}
	return Stream{state: s}
}

// Uint64 returns the next 64 uniform random bits.
func (s *Stream) Uint64() uint64 {
	s.state += gamma
	return mix(s.state)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("splitmix: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Shuffle performs a Fisher-Yates shuffle over n elements via swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, s.Intn(i+1))
	}
}

// Int63 returns a uniform non-negative int64 — the shape rand.Source
// exposes, kept for deriving child seeds from a parent stream.
func (s *Stream) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Perm returns a uniform random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// NormFloat64 returns a standard-normal draw via the Box-Muller transform.
// Unlike math/rand's ziggurat it needs no precomputed tables and its output
// is a pure function of the stream state, which keeps cross-version
// reproducibility trivial; the two uniforms per draw are irrelevant next to
// the vector arithmetic the callers (random projections) do per draw.
func (s *Stream) NormFloat64() float64 {
	// u must be strictly positive for the log; Float64 returns [0,1).
	u := 1 - s.Float64()
	v := s.Float64()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}
