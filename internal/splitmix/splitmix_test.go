package splitmix

import "testing"

func TestDeterministic(t *testing.T) {
	a, b := New(42, 7, 3), New(42, 7, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("identical streams diverged at draw %d", i)
		}
	}
}

func TestSaltsDecorrelate(t *testing.T) {
	// Streams that differ in seed or any salt must not produce the same
	// prefix. (Equality of one draw is possible in principle but has
	// probability 2^-64 per pair.)
	variants := []Stream{
		New(1), New(2), New(1, 0), New(1, 1), New(1, 0, 0), New(1, 0, 1), New(1, 1, 0),
	}
	seen := map[uint64]int{}
	for vi := range variants {
		v := variants[vi]
		first := v.Uint64()
		if prev, dup := seen[first]; dup {
			t.Fatalf("variants %d and %d share first draw %#x", prev, vi, first)
		}
		seen[first] = vi
	}
}

func TestIntnRangeAndUniformity(t *testing.T) {
	s := New(9)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := s.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
		counts[v]++
	}
	// Each bucket expects 10000; allow ±5% which is >16 sigma.
	for b, c := range counts {
		if c < draws/n*95/100 || c > draws/n*105/100 {
			t.Fatalf("bucket %d has %d draws, expected ~%d", b, c, draws/n)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(11)
	var sum float64
	const draws = 10000
	for i := 0; i < draws; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / draws; mean < 0.47 || mean > 0.53 {
		t.Fatalf("mean %v too far from 0.5", mean)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := New(13)
	perm := make([]int, 50)
	for i := range perm {
		perm[i] = i
	}
	s.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	seen := make([]bool, len(perm))
	for _, v := range perm {
		if v < 0 || v >= len(perm) || seen[v] {
			t.Fatalf("not a permutation: %v", perm)
		}
		seen[v] = true
	}
}

func TestIntnPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	s := New(1)
	s.Intn(0)
}

func TestPerm(t *testing.T) {
	s := New(7)
	p := s.Perm(100)
	if len(p) != 100 {
		t.Fatalf("Perm(100) returned %d elements", len(p))
	}
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
	s2 := New(7)
	p2 := s2.Perm(100)
	for i := range p {
		if p[i] != p2[i] {
			t.Fatalf("Perm not deterministic at %d", i)
		}
	}
}

func TestInt63NonNegative(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		if v := s.Int63(); v < 0 {
			t.Fatalf("Int63 returned negative %d", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if mean < -0.02 || mean > 0.02 {
		t.Errorf("NormFloat64 mean %f, want ~0", mean)
	}
	if variance < 0.97 || variance > 1.03 {
		t.Errorf("NormFloat64 variance %f, want ~1", variance)
	}
}
