package kmeans

import (
	"testing"

	"gkmeans/internal/dataset"
	"gkmeans/internal/vec"
)

// The splitmix migration's contract: every clusterer is a pure function of
// (data, config) — same seed means bit-identical labels and centroids
// across repeated runs and across worker counts. These tests would have
// caught a regression to shared or global RNG state immediately.

// runTwice runs fn twice and compares results bit for bit.
func assertDeterministic(t *testing.T, name string, fn func() (*Result, error)) {
	t.Helper()
	a, err := fn()
	if err != nil {
		t.Fatalf("%s: first run: %v", name, err)
	}
	b, err := fn()
	if err != nil {
		t.Fatalf("%s: second run: %v", name, err)
	}
	assertSameResult(t, name, a, b)
}

func assertSameResult(t *testing.T, name string, a, b *Result) {
	t.Helper()
	if len(a.Labels) != len(b.Labels) {
		t.Fatalf("%s: label counts differ: %d vs %d", name, len(a.Labels), len(b.Labels))
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatalf("%s: labels diverge at sample %d: %d vs %d", name, i, a.Labels[i], b.Labels[i])
		}
	}
	if a.Centroids.N != b.Centroids.N || a.Centroids.Dim != b.Centroids.Dim {
		t.Fatalf("%s: centroid shapes differ", name)
	}
	for i, v := range a.Centroids.Data {
		if v != b.Centroids.Data[i] {
			t.Fatalf("%s: centroids diverge at element %d: %v vs %v", name, i, v, b.Centroids.Data[i])
		}
	}
}

func determinismData() *vec.Matrix {
	return dataset.SIFTLike(600, 42)
}

func TestVariantsDeterministicAcrossRuns(t *testing.T) {
	data := determinismData()
	cfg := Config{K: 12, MaxIter: 15, Seed: 7}
	variants := []struct {
		name string
		run  func() (*Result, error)
	}{
		{"Lloyd", func() (*Result, error) { return Lloyd(data, cfg) }},
		{"LloydPlusPlus", func() (*Result, error) {
			c := cfg
			c.PlusPlus = true
			return Lloyd(data, c)
		}},
		{"Elkan", func() (*Result, error) { return Elkan(data, cfg) }},
		{"Hamerly", func() (*Result, error) { return Hamerly(data, cfg) }},
		{"Bisecting", func() (*Result, error) { return Bisecting(data, cfg) }},
		{"AKM", func() (*Result, error) { return AKM(data, AKMConfig{Config: cfg}) }},
		{"MiniBatch", func() (*Result, error) { return MiniBatch(data, MiniBatchConfig{Config: cfg, BatchSize: 128}) }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) { assertDeterministic(t, v.name, v.run) })
	}
}

func TestVariantsWorkerCountIndependent(t *testing.T) {
	data := determinismData()
	type runner func(workers int) (*Result, error)
	variants := []struct {
		name string
		run  runner
	}{
		{"Lloyd", func(w int) (*Result, error) { return Lloyd(data, Config{K: 12, MaxIter: 15, Seed: 7, Workers: w}) }},
		{"Elkan", func(w int) (*Result, error) { return Elkan(data, Config{K: 12, MaxIter: 15, Seed: 7, Workers: w}) }},
		{"Hamerly", func(w int) (*Result, error) { return Hamerly(data, Config{K: 12, MaxIter: 15, Seed: 7, Workers: w}) }},
		{"AKM", func(w int) (*Result, error) {
			return AKM(data, AKMConfig{Config: Config{K: 12, MaxIter: 15, Seed: 7, Workers: w}})
		}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			one, err := v.run(1)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{2, 5} {
				many, err := v.run(w)
				if err != nil {
					t.Fatal(err)
				}
				assertSameResult(t, v.name, one, many)
			}
		})
	}
}

func TestSeedsChangeResults(t *testing.T) {
	// Complement of the determinism contract: a different seed must be able
	// to produce a different clustering — guards against the RNG being
	// ignored entirely.
	data := determinismData()
	a, err := Lloyd(data, Config{K: 12, MaxIter: 15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Lloyd(data, Config{K: 12, MaxIter: 15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical labelings; seed appears unused")
	}
}
