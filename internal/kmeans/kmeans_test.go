package kmeans

import (
	"gkmeans/internal/splitmix"
	"math"
	"testing"

	"gkmeans/internal/dataset"
	"gkmeans/internal/metrics"
	"gkmeans/internal/vec"
)

// separated returns a dataset with c well-separated blobs; ideal for
// checking that clustering recovers obvious structure.
func separated(n, d, c int, seed int64) (*vec.Matrix, []int) {
	return dataset.GMM(dataset.GMMConfig{
		N: n, Dim: d, Components: c, Spread: 50, Noise: 0.5, Seed: seed,
	})
}

func TestLloydRecoversSeparatedClusters(t *testing.T) {
	data, truth := separated(300, 8, 4, 1)
	res, err := Lloyd(data, Config{K: 4, MaxIter: 50, Seed: 42, PlusPlus: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(data.N); err != nil {
		t.Fatal(err)
	}
	// Every pair from the same latent component must land together.
	agreement := pairAgreement(res.Labels, truth)
	if agreement < 0.98 {
		t.Fatalf("pair agreement %.3f too low", agreement)
	}
}

// pairAgreement measures how often two samples from the same latent
// component share a predicted cluster (sampled Rand-index style check).
func pairAgreement(pred, truth []int) float64 {
	rng := splitmix.New(9)
	agree, total := 0, 0
	for trial := 0; trial < 20000; trial++ {
		i, j := rng.Intn(len(pred)), rng.Intn(len(pred))
		if i == j || truth[i] != truth[j] {
			continue
		}
		total++
		if pred[i] == pred[j] {
			agree++
		}
	}
	if total == 0 {
		return 1
	}
	return float64(agree) / float64(total)
}

func TestLloydDistortionNonIncreasing(t *testing.T) {
	data := dataset.SIFTLike(500, 2)
	res, err := Lloyd(data, Config{K: 10, MaxIter: 25, Seed: 7, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.History); i++ {
		// Allow a microscopic float tolerance.
		if res.History[i].Distortion > res.History[i-1].Distortion*1.0001 {
			t.Fatalf("distortion increased at iter %d: %v -> %v",
				i, res.History[i-1].Distortion, res.History[i].Distortion)
		}
	}
	if res.History[len(res.History)-1].Moves != 0 && res.Iters == 25 {
		t.Log("did not fully converge in 25 iterations (acceptable)")
	}
}

func TestLloydDeterministicForSeed(t *testing.T) {
	data := dataset.GloVeLike(200, 3)
	a, _ := Lloyd(data, Config{K: 8, MaxIter: 20, Seed: 5})
	b, _ := Lloyd(data, Config{K: 8, MaxIter: 20, Seed: 5})
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed produced different labels")
		}
	}
}

func TestLloydRejectsBadK(t *testing.T) {
	data := dataset.Uniform(10, 4, 1)
	if _, err := Lloyd(data, Config{K: 0}); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := Lloyd(data, Config{K: 11}); err == nil {
		t.Fatal("k>n should error")
	}
}

func TestLloydKeepsAllClustersNonEmpty(t *testing.T) {
	data, _ := separated(200, 4, 2, 6)
	// k=8 on 2 blobs forces empty-cluster repairs.
	res, err := Lloyd(data, Config{K: 8, MaxIter: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sizes := metrics.ClusterSizes(res.Labels, 8)
	if metrics.NonEmpty(sizes) < 6 {
		t.Fatalf("too many empty clusters: sizes %v", sizes)
	}
}

func TestPlusPlusSpreadsSeeds(t *testing.T) {
	data, _ := separated(400, 8, 4, 8)
	rng := splitmix.New(1)
	c := PlusPlusSeed(data, 4, &rng)
	// Seeds should hit distinct blobs: pairwise distances all large.
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			if vec.L2Sqr(c.Row(a), c.Row(b)) < 100 {
				t.Fatalf("seeds %d and %d too close", a, b)
			}
		}
	}
}

func TestPlusPlusDuplicateData(t *testing.T) {
	// All-identical rows: total mass is zero after the first pick; seeding
	// must still return k centres without dividing by zero.
	rows := make([][]float32, 10)
	for i := range rows {
		rows[i] = []float32{1, 2, 3}
	}
	data := vec.FromRows(rows)
	rng := splitmix.New(2)
	c := PlusPlusSeed(data, 3, &rng)
	if c.N != 3 {
		t.Fatalf("got %d seeds", c.N)
	}
}

func TestRandomSeedDistinctRows(t *testing.T) {
	data := dataset.Uniform(50, 4, 3)
	rng := splitmix.New(3)
	c := RandomSeed(data, 50, &rng)
	seen := map[int]bool{}
	for r := 0; r < 50; r++ {
		found := -1
		for i := 0; i < data.N; i++ {
			if vec.L2Sqr(c.Row(r), data.Row(i)) == 0 {
				found = i
				break
			}
		}
		if found < 0 || seen[found] {
			t.Fatalf("seed %d not a distinct data row", r)
		}
		seen[found] = true
	}
}

func TestMiniBatchRunsAndLabels(t *testing.T) {
	data, truth := separated(400, 8, 4, 4)
	res, err := MiniBatch(data, MiniBatchConfig{
		Config:    Config{K: 4, MaxIter: 40, Seed: 1, PlusPlus: true},
		BatchSize: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(data.N); err != nil {
		t.Fatal(err)
	}
	if agreement := pairAgreement(res.Labels, truth); agreement < 0.9 {
		t.Fatalf("mini-batch pair agreement %.3f", agreement)
	}
}

func TestMiniBatchWorseThanLloydOnHardData(t *testing.T) {
	// The paper's recurring observation (Fig. 5, Fig. 7): mini-batch is fast
	// but converges to clearly higher distortion.
	data := dataset.SIFTLike(1500, 5)
	k := 30
	ll, err := Lloyd(data, Config{K: k, MaxIter: 25, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	mb, err := MiniBatch(data, MiniBatchConfig{
		Config:    Config{K: k, MaxIter: 25, Seed: 2},
		BatchSize: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	eL := metrics.AverageDistortion(data, ll.Labels, ll.Centroids)
	eM := metrics.AverageDistortion(data, mb.Labels, mb.Centroids)
	if eM < eL*0.95 {
		t.Fatalf("mini-batch (%.1f) unexpectedly beat Lloyd (%.1f)", eM, eL)
	}
}

func TestMiniBatchBadConfig(t *testing.T) {
	data := dataset.Uniform(10, 2, 1)
	if _, err := MiniBatch(data, MiniBatchConfig{Config: Config{K: 0}}); err == nil {
		t.Fatal("expected error")
	}
}

func TestElkanMatchesLloydAssignments(t *testing.T) {
	data, _ := separated(300, 16, 5, 10)
	cfg := Config{K: 5, MaxIter: 40, Seed: 11}
	ll, err := Lloyd(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ek, err := Elkan(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ll.Labels {
		if ll.Labels[i] != ek.Labels[i] {
			t.Fatalf("sample %d: lloyd=%d elkan=%d", i, ll.Labels[i], ek.Labels[i])
		}
	}
}

func TestHamerlyMatchesLloydAssignments(t *testing.T) {
	data, _ := separated(300, 16, 5, 12)
	cfg := Config{K: 5, MaxIter: 40, Seed: 13}
	ll, err := Lloyd(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hm, err := Hamerly(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ll.Labels {
		if ll.Labels[i] != hm.Labels[i] {
			t.Fatalf("sample %d: lloyd=%d hamerly=%d", i, ll.Labels[i], hm.Labels[i])
		}
	}
}

func TestElkanHamerlyDistortionCloseToLloydOnRandomData(t *testing.T) {
	// On unstructured data ties/rounding may flip an assignment; the
	// resulting distortion must still match Lloyd's within float noise.
	data := dataset.GloVeLike(600, 14)
	cfg := Config{K: 12, MaxIter: 30, Seed: 15}
	ll, _ := Lloyd(data, cfg)
	ek, _ := Elkan(data, cfg)
	hm, _ := Hamerly(data, cfg)
	eL := metrics.AverageDistortion(data, ll.Labels, ll.Centroids)
	eE := metrics.AverageDistortion(data, ek.Labels, ek.Centroids)
	eH := metrics.AverageDistortion(data, hm.Labels, hm.Centroids)
	if math.Abs(eE-eL) > 0.02*eL {
		t.Fatalf("elkan distortion %v vs lloyd %v", eE, eL)
	}
	if math.Abs(eH-eL) > 0.02*eL {
		t.Fatalf("hamerly distortion %v vs lloyd %v", eH, eL)
	}
}

func TestElkanBadConfig(t *testing.T) {
	data := dataset.Uniform(5, 2, 1)
	if _, err := Elkan(data, Config{K: 9}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := Hamerly(data, Config{K: 0}); err == nil {
		t.Fatal("expected error")
	}
}

func TestResultValidate(t *testing.T) {
	r := &Result{Labels: []int{0, 1}, Centroids: vec.NewMatrix(2, 2), K: 2}
	if err := r.Validate(2); err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(3); err == nil {
		t.Fatal("wrong n should fail")
	}
	r.Labels[0] = 5
	if err := r.Validate(2); err == nil {
		t.Fatal("out-of-range label should fail")
	}
	r2 := &Result{Labels: []int{0}, Centroids: vec.NewMatrix(3, 2), K: 2}
	if err := r2.Validate(1); err == nil {
		t.Fatal("centroid shape mismatch should fail")
	}
}

func TestTraceHistoryRecorded(t *testing.T) {
	data := dataset.Uniform(100, 4, 1)
	res, err := Lloyd(data, Config{K: 5, MaxIter: 10, Seed: 1, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 || len(res.History) != res.Iters {
		t.Fatalf("history %d entries for %d iters", len(res.History), res.Iters)
	}
	for i, h := range res.History {
		if h.Iter != i+1 {
			t.Fatalf("history iter numbering wrong at %d", i)
		}
		if h.Elapsed <= 0 {
			t.Fatalf("history elapsed not recorded at %d", i)
		}
	}
}
