package kmeans

import (
	"testing"

	"gkmeans/internal/dataset"
	"gkmeans/internal/metrics"
)

func TestAKMRecoversSeparatedClusters(t *testing.T) {
	data, truth := separated(400, 8, 4, 20)
	res, err := AKM(data, AKMConfig{
		Config: Config{K: 4, MaxIter: 30, Seed: 21, PlusPlus: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(data.N); err != nil {
		t.Fatal(err)
	}
	if agreement := pairAgreement(res.Labels, truth); agreement < 0.95 {
		t.Fatalf("pair agreement %.3f", agreement)
	}
}

func TestAKMApproachesLloydWithBudget(t *testing.T) {
	// In low dimension a generous budget should land at Lloyd-level
	// distortion; a starved budget should be no better.
	data := dataset.Uniform(1500, 8, 22)
	k := 40
	ll, err := Lloyd(data, Config{K: k, MaxIter: 20, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	rich, err := AKM(data, AKMConfig{
		Config: Config{K: k, MaxIter: 20, Seed: 23}, MaxChecks: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	eL := metrics.AverageDistortion(data, ll.Labels, ll.Centroids)
	eRich := metrics.AverageDistortion(data, rich.Labels, rich.Centroids)
	if eRich > eL*1.05 {
		t.Fatalf("rich-budget AKM %.4f too far above Lloyd %.4f", eRich, eL)
	}
}

func TestAKMHighDimensionDegradation(t *testing.T) {
	// The §2.1 claim that motivates GK-means: with a fixed small budget,
	// KD-tree assignment loses accuracy in descriptor dimensionality. AKM
	// must remain a valid clustering but with measurably higher distortion
	// than exact Lloyd on 128-d data.
	data := dataset.SIFTLike(1500, 24)
	k := 50
	ll, _ := Lloyd(data, Config{K: k, MaxIter: 15, Seed: 25})
	akm, err := AKM(data, AKMConfig{
		Config: Config{K: k, MaxIter: 15, Seed: 25}, MaxChecks: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	eL := metrics.AverageDistortion(data, ll.Labels, ll.Centroids)
	eA := metrics.AverageDistortion(data, akm.Labels, akm.Centroids)
	if eA < eL*0.999 {
		t.Fatalf("starved AKM %.1f should not beat exact Lloyd %.1f", eA, eL)
	}
}

func TestAKMErrorsAndTrace(t *testing.T) {
	data := dataset.Uniform(30, 4, 26)
	if _, err := AKM(data, AKMConfig{Config: Config{K: 0}}); err == nil {
		t.Fatal("k=0 should error")
	}
	res, err := AKM(data, AKMConfig{Config: Config{K: 5, MaxIter: 6, Seed: 27, Trace: true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 || len(res.History) != res.Iters {
		t.Fatalf("history %d for %d iters", len(res.History), res.Iters)
	}
}

func TestAKMDeterministic(t *testing.T) {
	data := dataset.GloVeLike(300, 28)
	a, _ := AKM(data, AKMConfig{Config: Config{K: 10, MaxIter: 8, Seed: 29}})
	b, _ := AKM(data, AKMConfig{Config: Config{K: 10, MaxIter: 8, Seed: 29}})
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed produced different labels")
		}
	}
}
