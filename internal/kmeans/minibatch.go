package kmeans

import (
	"fmt"
	"gkmeans/internal/splitmix"
	"time"

	"gkmeans/internal/metrics"
	"gkmeans/internal/vec"
)

// MiniBatchConfig extends Config with the batch size of Sculley's web-scale
// k-means [20].
type MiniBatchConfig struct {
	Config
	BatchSize int // samples per mini batch; <=0 selects min(1024, n)
}

// MiniBatch implements Sculley's mini-batch k-means: each iteration samples
// a batch, assigns it against the current centroids and nudges each centroid
// towards its batch members with a per-centre learning rate 1/count. It is
// the paper's fastest-but-lowest-quality baseline (Fig. 5–7): the gradient
// updates may never see most of the data, so distortion stays high.
func MiniBatch(data *vec.Matrix, cfg MiniBatchConfig) (*Result, error) {
	if err := cfg.check(data.N); err != nil {
		return nil, err
	}
	b := cfg.BatchSize
	if b <= 0 {
		b = 1024
	}
	if b > data.N {
		b = data.N
	}
	rng := splitmix.New(cfg.Seed)
	start := time.Now()
	var centroids *vec.Matrix
	if cfg.PlusPlus {
		centroids = PlusPlusSeed(data, cfg.K, &rng)
	} else {
		centroids = RandomSeed(data, cfg.K, &rng)
	}
	initTime := time.Since(start)
	counts := make([]int, cfg.K)
	batch := make([]int, b)
	assign := make([]int, b)
	res := &Result{K: cfg.K, Centroids: centroids, InitTime: initTime}
	iterStart := time.Now()
	for iter := 0; iter < cfg.maxIter(); iter++ {
		for i := range batch {
			batch[i] = rng.Intn(data.N)
		}
		for i, s := range batch {
			assign[i], _ = vec.NearestRow(centroids, data.Row(s))
		}
		for i, s := range batch {
			c := assign[i]
			counts[c]++
			eta := float32(1) / float32(counts[c])
			cRow := centroids.Row(c)
			sRow := data.Row(s)
			for j := range cRow {
				cRow[j] += eta * (sRow[j] - cRow[j])
			}
		}
		res.Iters = iter + 1
		if cfg.Trace {
			labels := finalAssign(data, centroids, cfg.Workers)
			res.History = append(res.History, IterStat{
				Iter:       iter + 1,
				Distortion: metrics.AverageDistortion(data, labels, centroids),
				Moves:      b,
				Elapsed:    initTime + time.Since(iterStart),
			})
		}
	}
	res.Labels = finalAssign(data, centroids, cfg.Workers)
	res.IterTime = time.Since(iterStart)
	if err := res.Validate(data.N); err != nil {
		return nil, fmt.Errorf("minibatch: %w", err)
	}
	return res, nil
}

// finalAssign labels every sample with its nearest centroid (one full pass;
// mini-batch only does this to report a clustering, not during training).
func finalAssign(data *vec.Matrix, centroids *vec.Matrix, workers int) []int {
	labels := make([]int, data.N)
	for i := range labels {
		labels[i] = -1
	}
	assignNearest(data, centroids, labels, workers)
	return labels
}
