package kmeans

import (
	"gkmeans/internal/splitmix"
	"time"

	"gkmeans/internal/metrics"
	"gkmeans/internal/parallel"
	"gkmeans/internal/vec"
)

// Lloyd runs the classic batch k-means of the paper's "k-means" baseline:
// assign every sample to its closest centroid, recompute centroids, repeat
// until no assignment changes or MaxIter is reached. The assignment step is
// the O(n·d·k) bottleneck the paper sets out to remove.
func Lloyd(data *vec.Matrix, cfg Config) (*Result, error) {
	if err := cfg.check(data.N); err != nil {
		return nil, err
	}
	rng := splitmix.New(cfg.Seed)
	start := time.Now()
	var centroids *vec.Matrix
	if cfg.PlusPlus {
		centroids = PlusPlusSeed(data, cfg.K, &rng)
	} else {
		centroids = RandomSeed(data, cfg.K, &rng)
	}
	initTime := time.Since(start)
	labels := make([]int, data.N)
	for i := range labels {
		labels[i] = -1
	}
	res := &Result{Labels: labels, Centroids: centroids, K: cfg.K, InitTime: initTime}
	iterStart := time.Now()
	for iter := 0; iter < cfg.maxIter(); iter++ {
		moves := assignNearest(data, centroids, labels, cfg.Workers)
		updateCentroids(data, labels, centroids, &rng)
		res.Iters = iter + 1
		if cfg.Trace {
			res.History = append(res.History, IterStat{
				Iter:       iter + 1,
				Distortion: metrics.AverageDistortion(data, labels, centroids),
				Moves:      moves,
				Elapsed:    initTime + time.Since(iterStart),
			})
		}
		if moves == 0 {
			break
		}
	}
	res.IterTime = time.Since(iterStart)
	return res, nil
}

// assignNearest relabels every sample with its closest centroid and returns
// the number of label changes. Parallel across samples.
func assignNearest(data *vec.Matrix, centroids *vec.Matrix, labels []int, workers int) int {
	chunkMoves := make([]int, data.N) // one slot per chunk head
	parallel.For(data.N, workers, func(lo, hi int) {
		m := 0
		for i := lo; i < hi; i++ {
			best, _ := vec.NearestRow(centroids, data.Row(i))
			if best != labels[i] {
				labels[i] = best
				m++
			}
		}
		chunkMoves[lo] = m
	})
	total := 0
	for _, m := range chunkMoves {
		total += m
	}
	return total
}

// updateCentroids recomputes centroids as member means. An empty cluster is
// repaired by reseeding it on the sample farthest from its centroid, the
// standard Lloyd rescue that keeps k clusters alive.
func updateCentroids(data *vec.Matrix, labels []int, centroids *vec.Matrix, rng *splitmix.Stream) {
	k := centroids.N
	d := centroids.Dim
	sums := make([]float64, k*d)
	counts := make([]int, k)
	for i, l := range labels {
		counts[l]++
		row := data.Row(i)
		base := l * d
		for j, v := range row {
			sums[base+j] += float64(v)
		}
	}
	var empty []int
	for r := 0; r < k; r++ {
		if counts[r] == 0 {
			empty = append(empty, r)
			continue
		}
		inv := 1 / float64(counts[r])
		row := centroids.Row(r)
		base := r * d
		for j := range row {
			row[j] = float32(sums[base+j] * inv)
		}
	}
	for _, r := range empty {
		reseedEmpty(data, labels, centroids, counts, r, rng)
	}
}

// reseedEmpty moves centroid r onto the sample farthest from its current
// centroid among a random probe set, and reassigns that sample.
func reseedEmpty(data *vec.Matrix, labels []int, centroids *vec.Matrix, counts []int, r int, rng *splitmix.Stream) {
	probes := 64
	if probes > data.N {
		probes = data.N
	}
	worst, worstD := -1, float32(-1)
	for p := 0; p < probes; p++ {
		i := rng.Intn(data.N)
		if counts[labels[i]] <= 1 {
			continue // do not empty another cluster
		}
		if d := vec.L2Sqr(data.Row(i), centroids.Row(labels[i])); d > worstD {
			worst, worstD = i, d
		}
	}
	if worst < 0 {
		return
	}
	counts[labels[worst]]--
	copy(centroids.Row(r), data.Row(worst))
	labels[worst] = r
	counts[r] = 1
}
