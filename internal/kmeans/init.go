package kmeans

import (
	"gkmeans/internal/splitmix"
	"gkmeans/internal/vec"
)

// RandomSeed picks k distinct rows of data as initial centroids.
func RandomSeed(data *vec.Matrix, k int, rng *splitmix.Stream) *vec.Matrix {
	perm := rng.Perm(data.N)
	c := vec.NewMatrix(k, data.Dim)
	for r := 0; r < k; r++ {
		copy(c.Row(r), data.Row(perm[r]))
	}
	return c
}

// PlusPlusSeed implements k-means++ [14]: the first centre is uniform, each
// subsequent centre is sampled with probability proportional to the squared
// distance to the nearest centre chosen so far. O(n·k·d) in this direct
// form — the paper notes the k scanning rounds as the cost of careful
// seeding, which is why GK-means initialises with a 2M tree instead.
func PlusPlusSeed(data *vec.Matrix, k int, rng *splitmix.Stream) *vec.Matrix {
	n := data.N
	c := vec.NewMatrix(k, data.Dim)
	copy(c.Row(0), data.Row(rng.Intn(n)))
	// d2[i] tracks the squared distance of sample i to its closest chosen
	// centre; updated incrementally as centres are added.
	d2 := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		d2[i] = float64(vec.L2Sqr(data.Row(i), c.Row(0)))
		total += d2[i]
	}
	for r := 1; r < k; r++ {
		var pick int
		if total <= 0 {
			// All remaining mass is zero (duplicate-heavy data): fall back
			// to a uniform pick so we still return k centres.
			pick = rng.Intn(n)
		} else {
			target := rng.Float64() * total
			acc := 0.0
			pick = n - 1
			for i := 0; i < n; i++ {
				acc += d2[i]
				if acc >= target {
					pick = i
					break
				}
			}
		}
		copy(c.Row(r), data.Row(pick))
		newC := c.Row(r)
		total = 0
		for i := 0; i < n; i++ {
			if d := float64(vec.L2Sqr(data.Row(i), newC)); d < d2[i] {
				d2[i] = d
			}
			total += d2[i]
		}
	}
	return c
}
