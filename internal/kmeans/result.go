// Package kmeans implements the exact-assignment baselines of the paper's
// evaluation: Lloyd's k-means [5], k-means++ seeding [14], Mini-Batch
// k-means [20], and the triangle-inequality accelerated Elkan [29] and
// Hamerly variants. All of them produce identical Result structures so the
// experiment harness can sweep methods uniformly.
package kmeans

import (
	"fmt"
	"time"

	"gkmeans/internal/vec"
)

// IterStat records the state of one clustering iteration for the
// distortion-versus-iteration and distortion-versus-time curves of Fig. 5.
type IterStat struct {
	Iter       int
	Distortion float64       // average distortion (Eqn. 4) after the iteration
	Moves      int           // samples that changed cluster in the iteration
	Elapsed    time.Duration // wall clock since clustering started
}

// Result is the output of any clustering run in this repository.
type Result struct {
	Labels    []int       // cluster id per sample
	Centroids *vec.Matrix // k × d centroid matrix
	K         int
	Iters     int        // iterations actually executed
	History   []IterStat // per-iteration trace (nil when tracing disabled)
	InitTime  time.Duration
	IterTime  time.Duration
}

// Validate checks structural sanity of a result against its input.
func (r *Result) Validate(n int) error {
	if len(r.Labels) != n {
		return fmt.Errorf("kmeans: %d labels for %d samples", len(r.Labels), n)
	}
	if r.Centroids == nil || r.Centroids.N != r.K {
		return fmt.Errorf("kmeans: centroid matrix shape mismatch")
	}
	for i, l := range r.Labels {
		if l < 0 || l >= r.K {
			return fmt.Errorf("kmeans: label %d of sample %d out of range [0,%d)", l, i, r.K)
		}
	}
	return nil
}

// Config carries the options shared by the exact baselines.
type Config struct {
	K        int
	MaxIter  int   // maximum number of iterations; <=0 selects 100
	Seed     int64 // RNG seed for seeding/sampling
	Workers  int   // parallel workers; <=0 selects GOMAXPROCS
	Trace    bool  // record History (costs one distortion pass per iteration)
	PlusPlus bool  // k-means++ seeding instead of random distinct rows
}

func (c *Config) maxIter() int {
	if c.MaxIter <= 0 {
		return 100
	}
	return c.MaxIter
}

func (c *Config) check(n int) error {
	if c.K <= 0 {
		return fmt.Errorf("kmeans: k must be positive, got %d", c.K)
	}
	if c.K > n {
		return fmt.Errorf("kmeans: k=%d exceeds n=%d", c.K, n)
	}
	return nil
}
