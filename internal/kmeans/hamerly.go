package kmeans

import (
	"gkmeans/internal/splitmix"
	"math"
	"time"

	"gkmeans/internal/metrics"
	"gkmeans/internal/parallel"
	"gkmeans/internal/vec"
)

// Hamerly implements Hamerly's k-means: like Elkan it prunes distance
// computations with the triangle inequality, but keeps only one lower bound
// per sample (the distance to the second-closest centre), so memory is O(n)
// instead of Elkan's O(n·k). It trades tighter pruning for that footprint —
// the usual middle ground between Lloyd and Elkan.
func Hamerly(data *vec.Matrix, cfg Config) (*Result, error) {
	if err := cfg.check(data.N); err != nil {
		return nil, err
	}
	n, k := data.N, cfg.K
	rng := splitmix.New(cfg.Seed)
	start := time.Now()
	var centroids *vec.Matrix
	if cfg.PlusPlus {
		centroids = PlusPlusSeed(data, k, &rng)
	} else {
		centroids = RandomSeed(data, k, &rng)
	}
	initTime := time.Since(start)
	iterStart := time.Now()

	dist := func(i, c int) float32 {
		return float32(math.Sqrt(float64(vec.L2Sqr(data.Row(i), centroids.Row(c)))))
	}

	labels := make([]int, n)
	ub := make([]float32, n) // upper bound on distance to assigned centre
	lb := make([]float32, n) // lower bound on distance to any other centre
	sc := make([]float32, k) // ½·min distance to another centre
	shift := make([]float32, k)
	sums := make([]float64, k*data.Dim)
	counts := make([]int, k)

	// Initial assignment: full search tracking best and second best.
	parallel.For(n, cfg.Workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			best, bestD, secondD := 0, dist(i, 0), float32(math.Inf(1))
			for c := 1; c < k; c++ {
				d := dist(i, c)
				if d < bestD {
					best, secondD, bestD = c, bestD, d
				} else if d < secondD {
					secondD = d
				}
			}
			labels[i] = best
			ub[i] = bestD
			lb[i] = secondD
		}
	})

	res := &Result{Labels: labels, Centroids: centroids, K: k, InitTime: initTime}
	for iter := 0; iter < cfg.maxIter(); iter++ {
		for a := 0; a < k; a++ {
			m := float32(math.Inf(1))
			for b := 0; b < k; b++ {
				if b == a {
					continue
				}
				d := float32(math.Sqrt(float64(vec.L2Sqr(centroids.Row(a), centroids.Row(b)))))
				if d < m {
					m = d
				}
			}
			sc[a] = m / 2
		}

		moveCount := make([]int, n)
		parallel.For(n, cfg.Workers, func(lo, hi int) {
			moves := 0
			for i := lo; i < hi; i++ {
				bound := lb[i]
				if sc[labels[i]] > bound {
					bound = sc[labels[i]]
				}
				if ub[i] <= bound {
					continue
				}
				// Tighten the upper bound; maybe the point still cannot move.
				ub[i] = dist(i, labels[i])
				if ub[i] <= bound {
					continue
				}
				// Full search for best and second best.
				best, bestD, secondD := 0, dist(i, 0), float32(math.Inf(1))
				for c := 1; c < k; c++ {
					d := dist(i, c)
					if d < bestD {
						best, secondD, bestD = c, bestD, d
					} else if d < secondD {
						secondD = d
					}
				}
				if best != labels[i] {
					labels[i] = best
					moves++
				}
				ub[i] = bestD
				lb[i] = secondD
			}
			moveCount[lo] = moves
		})
		moves := 0
		for _, m := range moveCount {
			moves += m
		}

		for i := range sums {
			sums[i] = 0
		}
		for i := range counts {
			counts[i] = 0
		}
		for i, l := range labels {
			counts[l]++
			row := data.Row(i)
			base := l * data.Dim
			for j, v := range row {
				sums[base+j] += float64(v)
			}
		}
		var maxShift, secondShift float32
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				shift[c] = 0
				continue
			}
			old := make([]float32, data.Dim)
			copy(old, centroids.Row(c))
			inv := 1 / float64(counts[c])
			row := centroids.Row(c)
			base := c * data.Dim
			for j := range row {
				row[j] = float32(sums[base+j] * inv)
			}
			shift[c] = float32(math.Sqrt(float64(vec.L2Sqr(old, row))))
			if shift[c] > maxShift {
				maxShift, secondShift = shift[c], maxShift
			} else if shift[c] > secondShift {
				secondShift = shift[c]
			}
		}

		parallel.For(n, cfg.Workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ub[i] += shift[labels[i]]
				// The farthest any *other* centre may have approached: the
				// largest shift, or the second largest when the assigned
				// centre is the one that moved most.
				dec := maxShift
				if shift[labels[i]] == maxShift {
					dec = secondShift
				}
				lb[i] -= dec
				if lb[i] < 0 {
					lb[i] = 0
				}
			}
		})

		res.Iters = iter + 1
		if cfg.Trace {
			res.History = append(res.History, IterStat{
				Iter:       iter + 1,
				Distortion: metrics.AverageDistortion(data, labels, centroids),
				Moves:      moves,
				Elapsed:    initTime + time.Since(iterStart),
			})
		}
		if moves == 0 && iter > 0 {
			break
		}
	}
	res.IterTime = time.Since(iterStart)
	return res, nil
}
