package kmeans

import (
	"gkmeans/internal/splitmix"
	"math"
	"time"

	"gkmeans/internal/metrics"
	"gkmeans/internal/parallel"
	"gkmeans/internal/vec"
)

// Elkan implements Elkan's triangle-inequality accelerated k-means [29].
// It produces exactly Lloyd's assignments while skipping most distance
// computations, at the cost of an n×k lower-bound matrix — the quadratic-
// in-k memory footprint the paper cites as the reason this family does not
// scale to very large k (§1). It is included both as a baseline and as the
// ablation point for that claim.
//
// Bounds are kept on true (square-rooted) Euclidean distances, where the
// triangle inequality holds. Empty clusters keep their previous centroid
// (zero shift), which preserves bound validity.
func Elkan(data *vec.Matrix, cfg Config) (*Result, error) {
	if err := cfg.check(data.N); err != nil {
		return nil, err
	}
	n, k := data.N, cfg.K
	rng := splitmix.New(cfg.Seed)
	start := time.Now()
	var centroids *vec.Matrix
	if cfg.PlusPlus {
		centroids = PlusPlusSeed(data, k, &rng)
	} else {
		centroids = RandomSeed(data, k, &rng)
	}
	initTime := time.Since(start)
	iterStart := time.Now()

	dist := func(i, c int) float32 {
		return float32(math.Sqrt(float64(vec.L2Sqr(data.Row(i), centroids.Row(c)))))
	}

	labels := make([]int, n)
	ub := make([]float32, n)    // upper bound on d(x_i, centroid(labels[i]))
	lb := make([]float32, n*k)  // lower bounds on d(x_i, c) for every c
	tight := make([]bool, n)    // whether ub[i] is exact
	cc := make([]float32, k*k)  // centre-to-centre distances
	sc := make([]float32, k)    // s(c) = ½·min_{c'≠c} cc[c][c']
	shift := make([]float32, k) // centre movement of the last update
	sums := make([]float64, k*data.Dim)
	counts := make([]int, k)

	// Initial assignment: full search, bounds become exact.
	parallel.For(n, cfg.Workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			best, bestD := 0, dist(i, 0)
			lb[i*k] = bestD
			for c := 1; c < k; c++ {
				d := dist(i, c)
				lb[i*k+c] = d
				if d < bestD {
					best, bestD = c, d
				}
			}
			labels[i] = best
			ub[i] = bestD
			tight[i] = true
		}
	})

	res := &Result{Labels: labels, Centroids: centroids, K: k, InitTime: initTime}
	for iter := 0; iter < cfg.maxIter(); iter++ {
		// Step 1: centre-to-centre distances and s(c).
		for a := 0; a < k; a++ {
			sc[a] = float32(math.Inf(1))
			for b := a + 1; b < k; b++ {
				d := float32(math.Sqrt(float64(vec.L2Sqr(centroids.Row(a), centroids.Row(b)))))
				cc[a*k+b] = d
				cc[b*k+a] = d
			}
			for b := 0; b < k; b++ {
				if b != a && cc[a*k+b] < sc[a] {
					sc[a] = cc[a*k+b]
				}
			}
			sc[a] /= 2
		}

		moveCount := make([]int, n)
		parallel.For(n, cfg.Workers, func(lo, hi int) {
			moves := 0
			for i := lo; i < hi; i++ {
				a := labels[i]
				if ub[i] <= sc[a] {
					continue // no centre can be closer than the assigned one
				}
				for c := 0; c < k; c++ {
					if c == a {
						continue
					}
					if ub[i] <= lb[i*k+c] || ub[i] <= cc[a*k+c]/2 {
						continue
					}
					if !tight[i] {
						ub[i] = dist(i, a)
						lb[i*k+a] = ub[i]
						tight[i] = true
						if ub[i] <= lb[i*k+c] || ub[i] <= cc[a*k+c]/2 {
							continue
						}
					}
					d := dist(i, c)
					lb[i*k+c] = d
					if d < ub[i] {
						a = c
						ub[i] = d
					}
				}
				if a != labels[i] {
					labels[i] = a
					moves++
				}
			}
			moveCount[lo] = moves
		})
		moves := 0
		for _, m := range moveCount {
			moves += m
		}

		// Step 2: recompute centroids, record shifts.
		for i := range sums {
			sums[i] = 0
		}
		for i := range counts {
			counts[i] = 0
		}
		for i, l := range labels {
			counts[l]++
			row := data.Row(i)
			base := l * data.Dim
			for j, v := range row {
				sums[base+j] += float64(v)
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				shift[c] = 0
				continue
			}
			old := make([]float32, data.Dim)
			copy(old, centroids.Row(c))
			inv := 1 / float64(counts[c])
			row := centroids.Row(c)
			base := c * data.Dim
			for j := range row {
				row[j] = float32(sums[base+j] * inv)
			}
			shift[c] = float32(math.Sqrt(float64(vec.L2Sqr(old, row))))
		}

		// Step 3: repair bounds for the centre movement.
		parallel.For(n, cfg.Workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				base := i * k
				for c := 0; c < k; c++ {
					lb[base+c] -= shift[c]
					if lb[base+c] < 0 {
						lb[base+c] = 0
					}
				}
				ub[i] += shift[labels[i]]
				tight[i] = false
			}
		})

		res.Iters = iter + 1
		if cfg.Trace {
			res.History = append(res.History, IterStat{
				Iter:       iter + 1,
				Distortion: metrics.AverageDistortion(data, labels, centroids),
				Moves:      moves,
				Elapsed:    initTime + time.Since(iterStart),
			})
		}
		if moves == 0 && iter > 0 {
			break
		}
	}
	res.IterTime = time.Since(iterStart)
	return res, nil
}
