package kmeans

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gkmeans/internal/dataset"
	"gkmeans/internal/metrics"
	"gkmeans/internal/vec"
)

func TestBisectingProducesKClusters(t *testing.T) {
	data := dataset.SIFTLike(400, 1)
	for _, k := range []int{2, 5, 13, 32} {
		res, err := Bisecting(data, Config{K: k, MaxIter: 10, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Validate(data.N); err != nil {
			t.Fatal(err)
		}
		sizes := metrics.ClusterSizes(res.Labels, k)
		if metrics.NonEmpty(sizes) != k {
			t.Fatalf("k=%d: %d non-empty clusters", k, metrics.NonEmpty(sizes))
		}
	}
}

func TestBisectingRecoversSeparatedBlobs(t *testing.T) {
	data, truth := dataset.GMM(dataset.GMMConfig{
		N: 400, Dim: 8, Components: 4, Spread: 40, Noise: 1, Seed: 3,
	})
	res, err := Bisecting(data, Config{K: 4, MaxIter: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if agreement := pairAgreement(res.Labels, truth); agreement < 0.95 {
		t.Fatalf("pair agreement %.3f", agreement)
	}
}

func TestBisectingWorseOrEqualToLloyd(t *testing.T) {
	// The paper's point (§2.1): hierarchical splitting trades quality for
	// the log(k) factor. On structured data its distortion should not beat
	// Lloyd's by any meaningful margin.
	data := dataset.SIFTLike(1000, 5)
	k := 20
	bi, err := Bisecting(data, Config{K: k, MaxIter: 10, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	ll, err := Lloyd(data, Config{K: k, MaxIter: 30, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	eB := metrics.AverageDistortion(data, bi.Labels, bi.Centroids)
	eL := metrics.AverageDistortion(data, ll.Labels, ll.Centroids)
	if eB < eL*0.9 {
		t.Fatalf("bisecting %.2f suspiciously better than Lloyd %.2f", eB, eL)
	}
}

func TestBisectingDuplicateHeavyData(t *testing.T) {
	// Identical points force the degenerate-split path.
	rows := make([][]float32, 64)
	for i := range rows {
		rows[i] = []float32{1, 2}
	}
	data := vec.FromRows(rows)
	res, err := Bisecting(data, Config{K: 8, MaxIter: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sizes := metrics.ClusterSizes(res.Labels, 8)
	if metrics.NonEmpty(sizes) != 8 {
		t.Fatalf("degenerate data: %d non-empty clusters", metrics.NonEmpty(sizes))
	}
}

func TestBisectingErrors(t *testing.T) {
	data := dataset.Uniform(10, 2, 8)
	if _, err := Bisecting(data, Config{K: 0}); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := Bisecting(data, Config{K: 11}); err == nil {
		t.Fatal("k>n should error")
	}
}

// Property: any valid (n,k) yields a complete partition.
func TestBisectingPartitionQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(80)
		k := 1 + rng.Intn(n)
		data := dataset.Uniform(n, 1+rng.Intn(6), seed)
		res, err := Bisecting(data, Config{K: k, MaxIter: 6, Seed: seed})
		if err != nil {
			return false
		}
		return metrics.NonEmpty(metrics.ClusterSizes(res.Labels, k)) == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
