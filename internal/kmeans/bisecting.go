package kmeans

import (
	"container/heap"
	"fmt"
	"gkmeans/internal/splitmix"
	"time"

	"gkmeans/internal/metrics"
	"gkmeans/internal/vec"
)

// Bisecting implements top-down hierarchical k-means (paper §2.1, refs
// [1,40,41]): repeatedly split the cluster with the largest summed squared
// error into two with a short 2-means run, until k clusters exist. Its cost
// is O(t·log(k)·n·d) — the log(k) factor the paper quotes — but it usually
// converges to worse distortion than flat k-means because each split is
// locally greedy (it "breaks the Lloyd condition").
//
// It differs from the 2M tree (internal/twomeans) in two ways: clusters are
// chosen by distortion rather than size, and splits are not adjusted to
// equal size.
func Bisecting(data *vec.Matrix, cfg Config) (*Result, error) {
	if err := cfg.check(data.N); err != nil {
		return nil, err
	}
	rng := splitmix.New(cfg.Seed)
	start := time.Now()

	all := make([]int, data.N)
	for i := range all {
		all[i] = i
	}
	h := &sseHeap{{members: all, sse: clusterSSE(data, all)}}
	heap.Init(h)
	for h.Len() < cfg.K {
		top := heap.Pop(h).(*sseCluster)
		if len(top.members) < 2 {
			heap.Push(h, top)
			return nil, fmt.Errorf("kmeans: bisecting cannot split singleton (k=%d, n=%d)", cfg.K, data.N)
		}
		left, right := twoMeansSplit(data, top.members, cfg.maxIter(), &rng)
		if len(left) == 0 || len(right) == 0 {
			// Degenerate split (identical points): force an arbitrary cut
			// so progress is guaranteed.
			mid := len(top.members) / 2
			left, right = top.members[:mid], top.members[mid:]
		}
		heap.Push(h, &sseCluster{members: left, sse: clusterSSE(data, left)})
		heap.Push(h, &sseCluster{members: right, sse: clusterSSE(data, right)})
	}

	labels := make([]int, data.N)
	for id, c := range *h {
		for _, i := range c.members {
			labels[i] = id
		}
	}
	res := &Result{
		Labels:    labels,
		Centroids: metrics.Centroids(data, labels, cfg.K),
		K:         cfg.K,
		Iters:     cfg.K - 1, // one split per new cluster
		InitTime:  0,
		IterTime:  time.Since(start),
	}
	return res, nil
}

// sseCluster is a heap entry ordered by summed squared error, so the
// "worst" cluster is split first.
type sseCluster struct {
	members []int
	sse     float64
}

type sseHeap []*sseCluster

func (h sseHeap) Len() int            { return len(h) }
func (h sseHeap) Less(i, j int) bool  { return h[i].sse > h[j].sse }
func (h sseHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *sseHeap) Push(x interface{}) { *h = append(*h, x.(*sseCluster)) }
func (h *sseHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return c
}

// clusterSSE returns the summed squared distance of members to their mean.
func clusterSSE(data *vec.Matrix, members []int) float64 {
	c := data.Mean(members)
	var sse float64
	for _, i := range members {
		sse += float64(vec.L2Sqr(data.Row(i), c))
	}
	return sse
}

// twoMeansSplit runs plain 2-means (Lloyd at k=2) on the members and
// returns the two sides.
func twoMeansSplit(data *vec.Matrix, members []int, maxIter int, rng *splitmix.Stream) (left, right []int) {
	// Seed with two distinct random members.
	a := members[rng.Intn(len(members))]
	b := a
	for tries := 0; tries < 32 && b == a; tries++ {
		b = members[rng.Intn(len(members))]
	}
	ca := append([]float32(nil), data.Row(a)...)
	cb := append([]float32(nil), data.Row(b)...)
	side := make([]bool, len(members))
	if maxIter > 16 {
		maxIter = 16 // splits need few iterations; the budget is per split
	}
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for idx, i := range members {
			row := data.Row(i)
			s := vec.L2Sqr(row, cb) < vec.L2Sqr(row, ca)
			if s != side[idx] {
				side[idx] = s
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute the two centres.
		sumA := make([]float64, data.Dim)
		sumB := make([]float64, data.Dim)
		nA, nB := 0, 0
		for idx, i := range members {
			row := data.Row(i)
			if side[idx] {
				nB++
				for j, v := range row {
					sumB[j] += float64(v)
				}
			} else {
				nA++
				for j, v := range row {
					sumA[j] += float64(v)
				}
			}
		}
		if nA == 0 || nB == 0 {
			break
		}
		for j := 0; j < data.Dim; j++ {
			ca[j] = float32(sumA[j] / float64(nA))
			cb[j] = float32(sumB[j] / float64(nB))
		}
	}
	for idx, i := range members {
		if side[idx] {
			right = append(right, i)
		} else {
			left = append(left, i)
		}
	}
	return left, right
}
