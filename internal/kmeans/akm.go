package kmeans

import (
	"gkmeans/internal/splitmix"
	"time"

	"gkmeans/internal/kdtree"
	"gkmeans/internal/metrics"
	"gkmeans/internal/parallel"
	"gkmeans/internal/vec"
)

// AKMConfig extends Config with the search budget of approximate k-means.
type AKMConfig struct {
	Config
	// MaxChecks bounds the centroid comparisons per assignment (the
	// best-bin-first budget); <=0 selects 64. Larger = closer to exact
	// Lloyd, slower.
	MaxChecks int
	// LeafSize is the KD-tree leaf size; <=0 selects 8.
	LeafSize int
}

// AKM implements approximate k-means (Philbin et al., CVPR 2007 — paper
// reference [22]): each Lloyd iteration rebuilds a KD tree over the current
// centroids and answers every sample's nearest-centroid query with a
// budgeted best-bin-first search. Cost per iteration is O(n·checks·d) plus
// the tree build — sub-linear in k for the assignment, which made AKM the
// standard large-vocabulary method before graph-based pruning.
//
// The paper excludes AKM from its headline comparison because closure
// k-means dominates it ([27] reports the inferiority); it is implemented
// here to complete the related-work inventory and to demonstrate the
// KD-tree degradation in high dimensions that motivates GK-means.
func AKM(data *vec.Matrix, cfg AKMConfig) (*Result, error) {
	if err := cfg.check(data.N); err != nil {
		return nil, err
	}
	checks := cfg.MaxChecks
	if checks <= 0 {
		checks = 64
	}
	leaf := cfg.LeafSize
	if leaf <= 0 {
		leaf = 8
	}
	rng := splitmix.New(cfg.Seed)
	start := time.Now()
	var centroids *vec.Matrix
	if cfg.PlusPlus {
		centroids = PlusPlusSeed(data, cfg.K, &rng)
	} else {
		centroids = RandomSeed(data, cfg.K, &rng)
	}
	initTime := time.Since(start)
	labels := make([]int, data.N)
	for i := range labels {
		labels[i] = -1
	}
	res := &Result{Labels: labels, Centroids: centroids, K: cfg.K, InitTime: initTime}
	iterStart := time.Now()
	for iter := 0; iter < cfg.maxIter(); iter++ {
		tree, err := kdtree.Build(centroids, leaf)
		if err != nil {
			return nil, err
		}
		moveCount := make([]int, data.N)
		parallel.For(data.N, cfg.Workers, func(lo, hi int) {
			moves := 0
			for i := lo; i < hi; i++ {
				got := tree.Search(data.Row(i), checks)
				if int(got.ID) != labels[i] {
					labels[i] = int(got.ID)
					moves++
				}
			}
			moveCount[lo] = moves
		})
		moves := 0
		for _, m := range moveCount {
			moves += m
		}
		updateCentroids(data, labels, centroids, &rng)
		res.Iters = iter + 1
		if cfg.Trace {
			res.History = append(res.History, IterStat{
				Iter:       iter + 1,
				Distortion: metrics.AverageDistortion(data, labels, centroids),
				Moves:      moves,
				Elapsed:    initTime + time.Since(iterStart),
			})
		}
		if moves == 0 {
			break
		}
	}
	res.IterTime = time.Since(iterStart)
	return res, nil
}
