package knngraph

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"gkmeans/internal/dataset"
	"gkmeans/internal/vec"
)

func TestInsertSortedBounded(t *testing.T) {
	g := New(10, 3)
	if !g.Insert(0, 5, 2.0) || !g.Insert(0, 6, 1.0) || !g.Insert(0, 7, 3.0) {
		t.Fatal("initial inserts should succeed")
	}
	// Full list: a farther candidate is rejected.
	if g.Insert(0, 8, 4.0) {
		t.Fatal("should reject candidate beyond current worst when full")
	}
	// A closer candidate evicts the worst.
	if !g.Insert(0, 9, 0.5) {
		t.Fatal("closer candidate should be inserted")
	}
	want := []int32{9, 6, 5}
	for i, id := range want {
		if g.Lists[0][i].ID != id {
			t.Fatalf("list order %v, want ids %v", g.Lists[0], want)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertRejectsDuplicatesAndSelf(t *testing.T) {
	g := New(2, 4)
	g.Insert(0, 1, 1.0)
	if g.Insert(0, 1, 0.5) {
		t.Fatal("duplicate id must be rejected")
	}
	if len(g.Lists[0]) != 1 {
		t.Fatalf("list grew on duplicate: %v", g.Lists[0])
	}
	if g.Insert(0, 0, 0.0) {
		t.Fatal("self edge must be rejected")
	}
}

func TestInsertDuplicateBeyondInsertionPoint(t *testing.T) {
	g := New(10, 4)
	g.Insert(0, 5, 3.0)
	g.Insert(0, 6, 4.0)
	// id 6 already present with larger distance; offering it again closer
	// must not create a duplicate.
	if g.Insert(0, 6, 1.0) {
		t.Fatal("existing id offered again must be rejected")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestContains(t *testing.T) {
	g := New(1, 2)
	g.Insert(0, 3, 1)
	if !g.Contains(0, 3) || g.Contains(0, 4) {
		t.Fatal("Contains wrong")
	}
}

// Property: after arbitrary insert sequences every invariant holds.
func TestInsertInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := New(n, 1+rng.Intn(8))
		for op := 0; op < 300; op++ {
			g.Insert(rng.Intn(n), int32(rng.Intn(n)), rng.Float32()*10)
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBruteForceIsExact(t *testing.T) {
	data := dataset.Uniform(60, 8, 3)
	g := BruteForce(data, 5, 2)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Verify node 0 against a naive full sort.
	type pair struct {
		id int
		d  float32
	}
	var all []pair
	for j := 1; j < data.N; j++ {
		all = append(all, pair{j, vec.L2Sqr(data.Row(0), data.Row(j))})
	}
	for i := 0; i < 5; i++ {
		best := i
		for j := i + 1; j < len(all); j++ {
			if all[j].d < all[best].d {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
		if g.Lists[0][i].ID != int32(all[i].id) {
			t.Fatalf("rank %d: got %d want %d", i, g.Lists[0][i].ID, all[i].id)
		}
	}
}

func TestBruteForceSelfRecallIsOne(t *testing.T) {
	data := dataset.SIFTLike(80, 4)
	g := BruteForce(data, 4, 0)
	if r := g.Recall(g); r != 1 {
		t.Fatalf("exact graph recall against itself = %v", r)
	}
	if r := g.RecallAtK(g, 4); r != 1 {
		t.Fatalf("recall@4 = %v", r)
	}
}

func TestRandomGraph(t *testing.T) {
	data := dataset.Uniform(50, 6, 7)
	g := Random(data, 10, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, list := range g.Lists {
		if len(list) != 10 {
			t.Fatalf("node %d has %d neighbours, want 10", i, len(list))
		}
	}
	// Distances must be the true distances.
	nb := g.Lists[3][0]
	if got := vec.L2Sqr(data.Row(3), data.Row(int(nb.ID))); got != nb.Dist {
		t.Fatalf("stored distance %v, true %v", nb.Dist, got)
	}
	// Random graph recall should be far below exact.
	exact := BruteForce(data, 10, 0)
	if r := g.Recall(exact); r > 0.9 {
		t.Fatalf("random graph suspiciously good: recall %v", r)
	}
}

func TestRandomKappaClamped(t *testing.T) {
	data := dataset.Uniform(5, 3, 1)
	g := Random(data, 100, 1)
	if g.Kappa != 4 {
		t.Fatalf("kappa should clamp to n-1, got %d", g.Kappa)
	}
}

func TestRandomWorkerCountInvariant(t *testing.T) {
	// Per-node streams make the random initial graph identical for every
	// worker count — the property Alg. 3 builds inherit.
	data := dataset.Uniform(200, 8, 5)
	ref, refComps := RandomN(data, 7, 3, 1)
	if refComps < int64(200*7) {
		t.Fatalf("comps %d below the n·κ floor", refComps)
	}
	for _, workers := range []int{2, 4, 9} {
		g, comps := RandomN(data, 7, 3, workers)
		if comps != refComps {
			t.Fatalf("workers=%d comps %d vs %d", workers, comps, refComps)
		}
		for i := range ref.Lists {
			if len(g.Lists[i]) != len(ref.Lists[i]) {
				t.Fatalf("workers=%d node %d length differs", workers, i)
			}
			for j := range ref.Lists[i] {
				if g.Lists[i][j] != ref.Lists[i][j] {
					t.Fatalf("workers=%d node %d entry %d differs", workers, i, j)
				}
			}
		}
	}
}

func TestRecallSampled(t *testing.T) {
	data := dataset.Uniform(40, 4, 2)
	exact := BruteForce(data, 3, 0)
	if r := exact.RecallSampled(exact, []int{0, 1, 2}); r != 1 {
		t.Fatalf("sampled self recall %v", r)
	}
	empty := New(40, 3)
	if r := empty.Recall(exact); r != 0 {
		t.Fatalf("empty graph recall %v", r)
	}
}

func TestRecallPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(3, 2).Recall(New(4, 2))
}

func TestSerializationRoundTrip(t *testing.T) {
	data := dataset.GloVeLike(30, 5)
	g := BruteForce(data, 6, 0)
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kappa != g.Kappa || got.N() != g.N() {
		t.Fatalf("shape mismatch after round trip")
	}
	for i := range g.Lists {
		if len(got.Lists[i]) != len(g.Lists[i]) {
			t.Fatalf("node %d length mismatch", i)
		}
		for j := range g.Lists[i] {
			if got.Lists[i][j] != g.Lists[i][j] {
				t.Fatalf("node %d entry %d mismatch", i, j)
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("expected error for truncated header")
	}
	if _, err := Read(bytes.NewReader(make([]byte, 12))); err == nil {
		t.Fatal("expected error for bad magic")
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.knn")
	data := dataset.Uniform(20, 4, 9)
	g := BruteForce(data, 3, 0)
	if err := g.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 20 {
		t.Fatalf("loaded %d nodes", got.N())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(3, 0)
}
