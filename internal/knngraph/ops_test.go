package knngraph

import (
	"testing"

	"gkmeans/internal/dataset"
)

func TestMergeRaisesRecall(t *testing.T) {
	data := dataset.SIFTLike(300, 1)
	exact := BruteForce(data, 8, 0)
	a := Random(data, 8, 1)
	b := Random(data, 8, 2)
	rA := a.Recall(exact)
	if err := Merge(a, b); err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Recall(exact) < rA {
		t.Fatalf("merge lowered recall: %v -> %v", rA, a.Recall(exact))
	}
}

func TestMergeSizeMismatch(t *testing.T) {
	a := New(3, 2)
	b := New(4, 2)
	if err := Merge(a, b); err == nil {
		t.Fatal("size mismatch should error")
	}
}

func TestMergeIdempotent(t *testing.T) {
	data := dataset.Uniform(100, 4, 3)
	g := BruteForce(data, 5, 0)
	before := g.EdgeCount()
	if err := Merge(g, g.Clone()); err != nil {
		t.Fatal(err)
	}
	if g.EdgeCount() != before {
		t.Fatal("merging a graph into itself changed it")
	}
}

func TestTruncate(t *testing.T) {
	data := dataset.Uniform(50, 4, 4)
	g := BruteForce(data, 10, 0)
	cut := g.Truncate(3)
	if err := cut.Validate(); err != nil {
		t.Fatal(err)
	}
	if cut.Kappa != 3 {
		t.Fatalf("kappa %d", cut.Kappa)
	}
	for i, list := range cut.Lists {
		if len(list) != 3 {
			t.Fatalf("node %d has %d entries", i, len(list))
		}
		// Must keep the closest entries.
		for j := range list {
			if list[j] != g.Lists[i][j] {
				t.Fatalf("node %d entry %d changed", i, j)
			}
		}
	}
	// Truncating shorter lists keeps them intact.
	same := g.Truncate(100)
	if same.EdgeCount() != g.EdgeCount() {
		t.Fatal("truncate above list length should not drop edges")
	}
}

func TestTruncatePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).Truncate(0)
}

func TestCloneIndependent(t *testing.T) {
	data := dataset.Uniform(30, 4, 5)
	g := BruteForce(data, 4, 0)
	c := g.Clone()
	c.Insert(0, int32(29), 0.000001)
	if g.Lists[0][0] == c.Lists[0][0] && g.Lists[0][0].Dist == 0.000001 {
		t.Fatal("clone shares storage")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDegreesAndEdgeCount(t *testing.T) {
	data := dataset.Uniform(200, 6, 6)
	g := BruteForce(data, 5, 0)
	stats := g.Degrees()
	if stats.OutMean != 5 {
		t.Fatalf("out mean %v, want 5 (full lists)", stats.OutMean)
	}
	if stats.MeanIn != 5 { // total in-degree equals total out-degree
		t.Fatalf("mean in %v", stats.MeanIn)
	}
	if stats.MinIn > stats.MedianIn || stats.MedianIn > stats.MaxIn {
		t.Fatalf("degree ordering wrong: %+v", stats)
	}
	if g.EdgeCount() != 200*5 {
		t.Fatalf("edges %d", g.EdgeCount())
	}
}

func TestDegreesEmptyGraph(t *testing.T) {
	if stats := New(0, 3).Degrees(); stats.MeanIn != 0 {
		t.Fatalf("empty graph stats %+v", stats)
	}
}

func TestAverageDistanceReflectsQuality(t *testing.T) {
	data := dataset.SIFTLike(300, 7)
	exact := BruteForce(data, 6, 0)
	random := Random(data, 6, 8)
	if exact.AverageDistance() >= random.AverageDistance() {
		t.Fatalf("exact graph avg distance %v should be below random %v",
			exact.AverageDistance(), random.AverageDistance())
	}
	if New(3, 2).AverageDistance() != 0 {
		t.Fatal("empty lists should average 0")
	}
}
