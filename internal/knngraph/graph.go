// Package knngraph implements the approximate k-nearest-neighbour graph that
// drives GK-means (paper §4): a bounded, sorted neighbour list per node, a
// brute-force exact builder used for ground truth, random initialisation
// (Alg. 3 line 4), and binary (de)serialisation.
package knngraph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"gkmeans/internal/checked"
	"gkmeans/internal/parallel"
	"gkmeans/internal/splitmix"
	"gkmeans/internal/vec"
)

// Neighbor is one entry of a k-NN list.
type Neighbor struct {
	ID   int32   // index of the neighbouring sample
	Dist float32 // squared Euclidean distance
}

// Graph is an approximate k-NN graph over n samples. Lists[i] holds up to
// Kappa neighbours of sample i sorted by ascending distance, never including
// i itself, with unique IDs.
type Graph struct {
	Lists [][]Neighbor
	Kappa int
}

// New allocates a graph with n empty lists of capacity kappa.
func New(n, kappa int) *Graph {
	if n < 0 || kappa <= 0 {
		panic(fmt.Sprintf("knngraph: invalid graph shape n=%d kappa=%d", n, kappa))
	}
	g := &Graph{Lists: make([][]Neighbor, n), Kappa: kappa}
	for i := range g.Lists {
		g.Lists[i] = make([]Neighbor, 0, kappa)
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.Lists) }

// Insert offers neighbour (id, dist) to node i's bounded list. It returns
// true when the list changed. The list stays sorted by ascending distance,
// capped at Kappa entries; an id already present is ignored (the "visited"
// check of Alg. 3 — an edge is never scored twice), as are self-edges.
func (g *Graph) Insert(i int, id int32, dist float32) bool {
	if i == int(id) {
		return false
	}
	list := g.Lists[i]
	if len(list) == g.Kappa && dist >= list[len(list)-1].Dist {
		return false
	}
	// Find insertion point and reject duplicates along the way. Lists are
	// at most a few dozen entries, so linear scan beats binary search plus a
	// separate duplicate pass.
	pos := len(list)
	for j, nb := range list {
		if nb.ID == id {
			return false
		}
		if dist < nb.Dist && pos == len(list) {
			pos = j
		}
	}
	// Entries after pos may still contain id; check before shifting.
	for j := pos; j < len(list); j++ {
		if list[j].ID == id {
			return false
		}
	}
	if len(list) < g.Kappa {
		list = append(list, Neighbor{})
	}
	copy(list[pos+1:], list[pos:len(list)-1])
	list[pos] = Neighbor{ID: id, Dist: dist}
	g.Lists[i] = list
	return true
}

// Contains reports whether id is in node i's list.
func (g *Graph) Contains(i int, id int32) bool {
	for _, nb := range g.Lists[i] {
		if nb.ID == id {
			return true
		}
	}
	return false
}

// Lookup returns the stored distance to id in node i's list, if present.
// Graph refinement uses it to avoid re-scoring an edge one endpoint already
// holds.
func (g *Graph) Lookup(i int, id int32) (float32, bool) {
	for _, nb := range g.Lists[i] {
		if nb.ID == id {
			return nb.Dist, true
		}
	}
	return 0, false
}

// Recall returns the fraction of nodes whose true nearest neighbour (the
// first entry of the exact graph) appears anywhere in this graph's list —
// the "average recall (top-1)" of the paper's evaluation protocol (§5.1).
// Nodes with an empty exact list are skipped.
func (g *Graph) Recall(exact *Graph) float64 {
	return g.RecallSampled(exact, nil)
}

// RecallSampled is Recall restricted to the given node subset; a nil subset
// means all nodes. The paper uses a 100-node sample for VLAD10M (§5.1).
func (g *Graph) RecallSampled(exact *Graph, nodes []int) float64 {
	if exact.N() != g.N() {
		panic(fmt.Sprintf("knngraph: recall against graph of different size %d vs %d", exact.N(), g.N()))
	}
	if nodes == nil {
		nodes = make([]int, g.N())
		for i := range nodes {
			nodes[i] = i
		}
	}
	hits, total := 0, 0
	for _, i := range nodes {
		if len(exact.Lists[i]) == 0 {
			continue
		}
		total++
		if g.Contains(i, exact.Lists[i][0].ID) {
			hits++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// RecallAtK returns the average fraction of each node's true top-k
// neighbours that appear in this graph's list.
func (g *Graph) RecallAtK(exact *Graph, k int) float64 {
	var sum float64
	total := 0
	for i := range g.Lists {
		truth := exact.Lists[i]
		if len(truth) > k {
			truth = truth[:k]
		}
		if len(truth) == 0 {
			continue
		}
		total++
		hit := 0
		for _, nb := range truth {
			if g.Contains(i, nb.ID) {
				hit++
			}
		}
		sum += float64(hit) / float64(len(truth))
	}
	if total == 0 {
		return 0
	}
	return float64(sum) / float64(total)
}

// saltRandom tags the per-node splitmix streams of Random so they never
// collide with other derivations from the same seed.
const saltRandom uint64 = 0x52414e44 // "RAND"

// Random fills a graph with kappa random distinct neighbours per node and
// their true distances — the initial graph of Alg. 3 (line 4). It runs on
// GOMAXPROCS workers; use RandomN to bound parallelism.
func Random(data *vec.Matrix, kappa int, seed int64) *Graph {
	g, _ := RandomN(data, kappa, seed, 0)
	return g
}

// RandomN is Random on up to workers goroutines (<=0 selects GOMAXPROCS),
// also returning the number of distance computations performed. Each node
// draws its neighbours from its own splitmix stream derived from (seed,
// node), so the result is identical for every worker count.
func RandomN(data *vec.Matrix, kappa int, seed int64, workers int) (*Graph, int64) {
	n := data.N
	if kappa >= n {
		kappa = n - 1
	}
	if kappa <= 0 {
		panic("knngraph: Random needs at least 2 samples")
	}
	g := New(n, kappa)
	var distComps atomic.Int64
	parallel.For(n, workers, func(lo, hi int) {
		var comps int64
		for i := lo; i < hi; i++ {
			rng := splitmix.New(seed, saltRandom, uint64(i))
			for len(g.Lists[i]) < kappa {
				j := checked.Int32(rng.Intn(n))
				if int(j) == i {
					continue
				}
				// A duplicate draw is rejected by Insert, but the distance
				// was computed either way.
				g.Insert(i, j, vec.L2Sqr(data.Row(i), data.Row(int(j))))
				comps++
			}
		}
		distComps.Add(comps)
	})
	return g, distComps.Load()
}

// BruteForce builds the exact k-NN graph by exhaustive pairwise comparison,
// parallelised across nodes. It is O(d·n²): only used for ground truth on
// small inputs (the paper reports >20 h for exact SIFT1M ground truth).
func BruteForce(data *vec.Matrix, kappa int, workers int) *Graph {
	n := data.N
	if kappa >= n {
		kappa = n - 1
	}
	g := New(n, kappa)
	parallel.For(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := data.Row(i)
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				g.Insert(i, checked.Int32(j), vec.L2Sqr(row, data.Row(j)))
			}
		}
	})
	return g
}

// Validate checks the structural invariants of the graph (sorted lists,
// unique ids, no self-loops, ids in range, lists within Kappa). Tests and
// the property suite call it after every mutation-heavy operation.
func (g *Graph) Validate() error {
	n := g.N()
	for i, list := range g.Lists {
		if len(list) > g.Kappa {
			return fmt.Errorf("node %d has %d neighbours, cap %d", i, len(list), g.Kappa)
		}
		seen := make(map[int32]bool, len(list))
		for j, nb := range list {
			if int(nb.ID) < 0 || int(nb.ID) >= n {
				return fmt.Errorf("node %d neighbour %d id %d out of range", i, j, nb.ID)
			}
			if int(nb.ID) == i {
				return fmt.Errorf("node %d has a self-loop", i)
			}
			if seen[nb.ID] {
				return fmt.Errorf("node %d has duplicate neighbour %d", i, nb.ID)
			}
			seen[nb.ID] = true
			if j > 0 && list[j-1].Dist > nb.Dist {
				return fmt.Errorf("node %d list not sorted at %d", i, j)
			}
		}
	}
	return nil
}

const graphMagic = uint32(0x474b4e4e) // "GKNN"

// Write serialises the graph in a compact little-endian binary format.
func (g *Graph) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, v := range []uint32{graphMagic, checked.U32(g.N()), checked.U32(g.Kappa)} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, list := range g.Lists {
		if err := binary.Write(bw, binary.LittleEndian, checked.U32(len(list))); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, list); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// readChunk bounds how many neighbours Read materialises per binary.Read:
// allocation grows with bytes actually present in the stream, so a corrupt
// header advertising billions of entries fails with a read error after a
// few kilobytes instead of attempting a runaway allocation.
const readChunk = 4096

// Read deserialises a graph written by Write. The node count and list
// lengths in the header are untrusted: every allocation is bounded by the
// bytes actually read, so truncated or bit-flipped inputs return an error —
// never a panic or an out-of-memory crash.
func Read(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var hdr [3]uint32
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("knngraph: reading header: %w", err)
	}
	if hdr[0] != graphMagic {
		return nil, fmt.Errorf("knngraph: bad magic %#x", hdr[0])
	}
	n, kappa := int(hdr[1]), int(hdr[2])
	if kappa <= 0 || n < 0 {
		return nil, fmt.Errorf("knngraph: invalid header n=%d kappa=%d", n, kappa)
	}
	listsCap := n
	if listsCap > readChunk {
		listsCap = readChunk // grow by appending; don't trust n up front
	}
	g := &Graph{Lists: make([][]Neighbor, 0, listsCap), Kappa: kappa}
	var buf []Neighbor
	for i := 0; i < n; i++ {
		var l uint32
		if err := binary.Read(br, binary.LittleEndian, &l); err != nil {
			return nil, fmt.Errorf("knngraph: reading list %d: %w", i, err)
		}
		if int(l) > kappa {
			return nil, fmt.Errorf("knngraph: list %d has %d entries, cap %d", i, l, kappa)
		}
		if l <= readChunk {
			list := make([]Neighbor, l)
			if err := binary.Read(br, binary.LittleEndian, list); err != nil {
				return nil, fmt.Errorf("knngraph: reading list %d: %w", i, err)
			}
			g.Lists = append(g.Lists, list)
			continue
		}
		// Oversized list (kappa is untrusted too): stream it chunk by chunk.
		if buf == nil {
			buf = make([]Neighbor, readChunk)
		}
		list := make([]Neighbor, 0, readChunk)
		for remaining := int(l); remaining > 0; {
			c := remaining
			if c > readChunk {
				c = readChunk
			}
			if err := binary.Read(br, binary.LittleEndian, buf[:c]); err != nil {
				return nil, fmt.Errorf("knngraph: reading list %d: %w", i, err)
			}
			list = append(list, buf[:c]...)
			remaining -= c
		}
		g.Lists = append(g.Lists, list)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("knngraph: corrupt graph: %w", err)
	}
	return g, nil
}

// encodedSize returns the exact byte count Write produces: a 12-byte
// header plus, per node, a 4-byte list length and 8 bytes per neighbour.
func (g *Graph) encodedSize() int64 {
	size := int64(12)
	for _, list := range g.Lists {
		size += 4 + 8*int64(len(list))
	}
	return size
}

// SectionSize returns the exact byte count WriteSection produces — the
// 8-byte length prefix plus the Write encoding. Container formats that
// declare segment sizes up front (the multi-segment index layout) rely on
// it matching WriteSection exactly.
func (g *Graph) SectionSize() int64 { return 8 + g.encodedSize() }

// WriteSection serialises the graph as a length-prefixed section: a uint64
// byte count followed by the Write format, streamed (not buffered whole).
// Unlike Write/Read, a section can be embedded in the middle of a larger
// stream (index persistence does), because the prefix lets the reader
// bound its buffering exactly.
func (g *Graph) WriteSection(w io.Writer) (int64, error) {
	size := g.encodedSize()
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(size))
	n, err := w.Write(hdr[:])
	written := int64(n)
	if err != nil {
		return written, err
	}
	if err := g.Write(w); err != nil {
		return written, err
	}
	return written + size, nil
}

// ReadSection deserialises a graph written by WriteSection, consuming
// exactly the section's bytes from r.
func ReadSection(r io.Reader) (*Graph, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("knngraph: reading section header: %w", err)
	}
	size := binary.LittleEndian.Uint64(hdr[:])
	if size > 1<<40 {
		return nil, fmt.Errorf("knngraph: implausible section size %d", size)
	}
	g, err := Read(io.LimitReader(r, int64(size)))
	if err != nil {
		return nil, err
	}
	return g, nil
}

// SaveFile writes the graph to a file on disk.
func (g *Graph) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a graph from a file written by SaveFile.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
