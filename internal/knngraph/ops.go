package knngraph

import (
	"fmt"
	"sort"
)

// Graph-level operations used by the experiment harness and by downstream
// consumers that combine or post-process graphs (e.g. merging graphs built
// with different seeds, or shrinking κ after construction).

// Merge folds src into dst: every edge of src is offered to dst's bounded
// lists. Both graphs must cover the same node set. Merging graphs built
// from independent seeds is a cheap way to raise recall without more
// construction rounds.
func Merge(dst, src *Graph) error {
	if dst.N() != src.N() {
		return fmt.Errorf("knngraph: merge size mismatch %d vs %d", dst.N(), src.N())
	}
	for i, list := range src.Lists {
		for _, nb := range list {
			dst.Insert(i, nb.ID, nb.Dist)
		}
	}
	return nil
}

// Truncate returns a copy of the graph with each list cut to at most kappa
// entries (the closest ones, since lists are sorted).
func (g *Graph) Truncate(kappa int) *Graph {
	if kappa <= 0 {
		panic(fmt.Sprintf("knngraph: Truncate to kappa=%d", kappa))
	}
	out := New(g.N(), kappa)
	for i, list := range g.Lists {
		n := len(list)
		if n > kappa {
			n = kappa
		}
		out.Lists[i] = append(out.Lists[i], list[:n]...)
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := New(g.N(), g.Kappa)
	for i, list := range g.Lists {
		out.Lists[i] = append(out.Lists[i], list...)
	}
	return out
}

// DegreeStats summarises the in-degree distribution of the graph — the
// skew that determines how well greedy search traverses it (heavily hubby
// graphs route everything through few nodes).
type DegreeStats struct {
	MinIn, MaxIn int
	MeanIn       float64
	MedianIn     int
	// OutMean is the mean list length (equals κ when every list is full).
	OutMean float64
}

// Degrees computes in/out degree statistics.
func (g *Graph) Degrees() DegreeStats {
	n := g.N()
	if n == 0 {
		return DegreeStats{}
	}
	in := make([]int, n)
	totalOut := 0
	for _, list := range g.Lists {
		totalOut += len(list)
		for _, nb := range list {
			in[nb.ID]++
		}
	}
	sorted := append([]int(nil), in...)
	sort.Ints(sorted)
	var sum int
	for _, d := range in {
		sum += d
	}
	return DegreeStats{
		MinIn:    sorted[0],
		MaxIn:    sorted[n-1],
		MeanIn:   float64(sum) / float64(n),
		MedianIn: sorted[n/2],
		OutMean:  float64(totalOut) / float64(n),
	}
}

// EdgeCount returns the total number of directed edges stored.
func (g *Graph) EdgeCount() int {
	total := 0
	for _, list := range g.Lists {
		total += len(list)
	}
	return total
}

// AverageDistance returns the mean stored edge distance — a scale-dependent
// proxy for graph quality (closer edges = better lists) used by tests.
func (g *Graph) AverageDistance() float64 {
	var sum float64
	count := 0
	for _, list := range g.Lists {
		for _, nb := range list {
			sum += float64(nb.Dist)
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}
