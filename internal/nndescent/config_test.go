package nndescent

import (
	"testing"

	"gkmeans/internal/dataset"
	"gkmeans/internal/knngraph"
)

func TestHighDeltaTerminatesEarlier(t *testing.T) {
	data := dataset.SIFTLike(400, 1)
	rounds := func(delta float64) int {
		last := 0
		_, err := Build(data, Config{Kappa: 8, Seed: 2, Delta: delta, MaxRounds: 40,
			OnRound: func(r, updates int) { last = r }})
		if err != nil {
			t.Fatal(err)
		}
		return last
	}
	strict, loose := rounds(0.0001), rounds(0.2)
	if loose > strict {
		t.Fatalf("looser delta ran longer: %d vs %d rounds", loose, strict)
	}
}

func TestRhoControlsWorkPerRound(t *testing.T) {
	// Smaller rho samples fewer candidates; the graph should still reach
	// reasonable quality, just possibly needing more rounds.
	data := dataset.SIFTLike(500, 3)
	exact := knngraph.BruteForce(data, 8, 0)
	g, err := Build(data, Config{Kappa: 8, Seed: 4, Rho: 0.3, MaxRounds: 25})
	if err != nil {
		t.Fatal(err)
	}
	if r := g.Recall(exact); r < 0.8 {
		t.Fatalf("low-rho recall %.3f", r)
	}
	// Out-of-range rho falls back to the default rather than breaking.
	if _, err := Build(data, Config{Kappa: 8, Seed: 5, Rho: 7}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildTinyDatasets(t *testing.T) {
	for n := 2; n <= 5; n++ {
		data := dataset.Uniform(n, 3, int64(n))
		g, err := Build(data, Config{Kappa: 3, Seed: 6})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// kappa clamps to n-1, and with full lists the graph is exact.
		exact := knngraph.BruteForce(data, n-1, 0)
		if r := g.Recall(exact); r != 1 {
			t.Fatalf("n=%d: complete graph recall %v", n, r)
		}
	}
}
