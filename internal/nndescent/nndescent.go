// Package nndescent implements NN-Descent (Dong, Moses, Li — WWW 2011,
// paper reference [32], the "KGraph" baseline): an approximate k-NN graph
// builder driven by the observation that "a neighbour of a neighbour is
// also likely to be a neighbour". Each round compares every node's new
// neighbours against its (new ∪ old ∪ reverse) neighbourhood and keeps the
// closest κ; the process stops when fewer than δ·n·κ list updates happen.
//
// The paper uses NN-Descent in the "KGraph+GK-means" configuration of the
// evaluation (Fig. 4, Fig. 5, Table 2) — same clustering speed-up, roughly
// 2× slower graph construction and slightly different distortion.
package nndescent

import (
	"fmt"
	"math/rand"

	"gkmeans/internal/knngraph"
	"gkmeans/internal/vec"
)

// Config controls NN-Descent.
type Config struct {
	Kappa     int     // neighbours per node
	Rho       float64 // sample rate of new/reverse candidates; <=0 selects 0.5
	Delta     float64 // termination threshold on update rate; <=0 selects 0.001
	MaxRounds int     // hard cap on rounds; <=0 selects 30
	Seed      int64
	OnRound   func(round, updates int) // optional progress hook (used by experiments)
}

// entry is a neighbour with the NN-Descent "new" flag.
type entry struct {
	id   int32
	dist float32
	new  bool
}

// Build constructs an approximate k-NN graph with NN-Descent.
func Build(data *vec.Matrix, cfg Config) (*knngraph.Graph, error) {
	n := data.N
	if n < 2 {
		return nil, fmt.Errorf("nndescent: need at least 2 samples, got %d", n)
	}
	kappa := cfg.Kappa
	if kappa >= n {
		kappa = n - 1
	}
	if kappa <= 0 {
		return nil, fmt.Errorf("nndescent: kappa must be positive, got %d", cfg.Kappa)
	}
	rho := cfg.Rho
	if rho <= 0 || rho > 1 {
		rho = 0.5
	}
	delta := cfg.Delta
	if delta <= 0 {
		delta = 0.001
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 30
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// B[v]: the current neighbour list with flags, kept sorted by distance.
	lists := make([][]entry, n)
	for i := 0; i < n; i++ {
		lists[i] = make([]entry, 0, kappa)
		for len(lists[i]) < kappa {
			j := int32(rng.Intn(n))
			if int(j) == i || containsEntry(lists[i], j) {
				continue
			}
			insertEntry(&lists[i], kappa, entry{j, vec.L2Sqr(data.Row(i), data.Row(int(j))), true})
		}
	}

	sampleCap := int(rho * float64(kappa))
	if sampleCap < 1 {
		sampleCap = 1
	}
	for round := 0; round < maxRounds; round++ {
		// Forward new/old sets; sampling new entries caps per-round work.
		newF := make([][]int32, n)
		oldF := make([][]int32, n)
		for v := 0; v < n; v++ {
			for idx := range lists[v] {
				e := &lists[v][idx]
				if e.new {
					if len(newF[v]) < sampleCap || rng.Float64() < rho {
						newF[v] = append(newF[v], e.id)
						e.new = false
					}
				} else {
					oldF[v] = append(oldF[v], e.id)
				}
			}
		}
		// Reverse sets, sampled to the same cap.
		newR := make([][]int32, n)
		oldR := make([][]int32, n)
		for v := 0; v < n; v++ {
			for _, id := range newF[v] {
				newR[id] = append(newR[id], int32(v))
			}
			for _, id := range oldF[v] {
				oldR[id] = append(oldR[id], int32(v))
			}
		}
		updates := 0
		for v := 0; v < n; v++ {
			newSet := mergeSampled(newF[v], newR[v], sampleCap, rng)
			oldSet := mergeSampled(oldF[v], oldR[v], sampleCap, rng)
			// Compare new×new and new×old pairs; each comparison may update
			// both endpoints' lists.
			for a := 0; a < len(newSet); a++ {
				ia := newSet[a]
				for b := a + 1; b < len(newSet); b++ {
					updates += tryPair(data, lists, kappa, ia, newSet[b])
				}
				for _, ib := range oldSet {
					updates += tryPair(data, lists, kappa, ia, ib)
				}
			}
		}
		if cfg.OnRound != nil {
			cfg.OnRound(round+1, updates)
		}
		if float64(updates) < delta*float64(n)*float64(kappa) {
			break
		}
	}

	g := knngraph.New(n, kappa)
	for i := 0; i < n; i++ {
		for _, e := range lists[i] {
			g.Insert(i, e.id, e.dist)
		}
	}
	return g, nil
}

// tryPair scores the pair (a,b) once and offers the distance to both lists;
// returns the number of list updates (0–2).
func tryPair(data *vec.Matrix, lists [][]entry, kappa int, a, b int32) int {
	if a == b {
		return 0
	}
	d := vec.L2Sqr(data.Row(int(a)), data.Row(int(b)))
	u := 0
	if insertEntry(&lists[a], kappa, entry{b, d, true}) {
		u++
	}
	if insertEntry(&lists[b], kappa, entry{a, d, true}) {
		u++
	}
	return u
}

// insertEntry offers e to a bounded sorted list, rejecting duplicates and
// entries beyond the current worst when full. Returns true on change.
func insertEntry(list *[]entry, kappa int, e entry) bool {
	l := *list
	if len(l) == kappa && e.dist >= l[len(l)-1].dist {
		return false
	}
	pos := len(l)
	for i := range l {
		if l[i].id == e.id {
			return false
		}
		if e.dist < l[i].dist && pos == len(l) {
			pos = i
		}
	}
	for i := pos; i < len(l); i++ {
		if l[i].id == e.id {
			return false
		}
	}
	if len(l) < kappa {
		l = append(l, entry{})
	}
	copy(l[pos+1:], l[pos:len(l)-1])
	l[pos] = e
	*list = l
	return true
}

func containsEntry(list []entry, id int32) bool {
	for _, e := range list {
		if e.id == id {
			return true
		}
	}
	return false
}

// mergeSampled unions two id lists, deduplicates, and reservoir-samples the
// reverse part down to cap to bound the quadratic comparison cost.
func mergeSampled(fwd, rev []int32, cap_ int, rng *rand.Rand) []int32 {
	if len(rev) > cap_ {
		rng.Shuffle(len(rev), func(a, b int) { rev[a], rev[b] = rev[b], rev[a] })
		rev = rev[:cap_]
	}
	out := make([]int32, 0, len(fwd)+len(rev))
	seen := make(map[int32]bool, len(fwd)+len(rev))
	for _, id := range fwd {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for _, id := range rev {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}
