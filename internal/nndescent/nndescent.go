// Package nndescent implements NN-Descent (Dong, Moses, Li — WWW 2011,
// paper reference [32], the "KGraph" baseline): an approximate k-NN graph
// builder driven by the observation that "a neighbour of a neighbour is
// also likely to be a neighbour". Each round compares every node's new
// neighbours against its (new ∪ old ∪ reverse) neighbourhood and keeps the
// closest κ; the process stops when fewer than δ·n·κ list updates happen.
//
// The paper uses NN-Descent in the "KGraph+GK-means" configuration of the
// evaluation (Fig. 4, Fig. 5, Table 2) — same clustering speed-up, roughly
// 2× slower graph construction and slightly different distortion.
//
// # Parallelism and determinism
//
// Build runs the two hot phases — random initialisation and the per-round
// local joins, which together account for every distance computation — on
// a parallel.For worker pool. All randomness is drawn from per-node
// splitmix streams derived from (Seed, round, node), and cross-node list
// updates are buffered as per-chunk proposals that a single deterministic
// merge pass applies in fixed chunk order. The result: the same Seed
// produces the bit-identical graph for every worker count, so tests,
// benchmarks and persisted indexes never depend on GOMAXPROCS.
//
// Compared to the classic sequential formulation this is the synchronous
// variant of NN-Descent: comparisons within a round all see the lists as
// they stood at the start of the round, and accepted updates land between
// rounds. Convergence behaviour is equivalent (the δ-termination rule
// applies unchanged); only the in-round update interleaving differs.
package nndescent

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"gkmeans/internal/knngraph"
	"gkmeans/internal/parallel"
	"gkmeans/internal/splitmix"
	"gkmeans/internal/vec"
)

// Config controls NN-Descent.
type Config struct {
	Kappa     int     // neighbours per node
	Rho       float64 // sample rate of new/reverse candidates; <=0 selects 0.5
	Delta     float64 // termination threshold on update rate; <=0 selects 0.001
	MaxRounds int     // hard cap on rounds; <=0 selects 30
	Seed      int64
	Workers   int                      // parallel workers; <=0 selects GOMAXPROCS
	OnRound   func(round, updates int) // optional progress hook (used by experiments)
	Interrupt func() error             // polled before every round; non-nil return aborts
}

// Stats reports the work a Build performed.
type Stats struct {
	Rounds    int   // rounds actually run (≤ MaxRounds)
	Updates   int64 // accepted neighbour-list updates across all rounds
	DistComps int64 // distance computations (initialisation + local joins)
}

// entry is a neighbour with the NN-Descent "new" flag.
type entry struct {
	id   int32
	dist float32
	new  bool
}

// proposal is one scored pair from a local join, pending the merge pass.
// The distance is offered to both endpoints' lists.
type proposal struct {
	a, b int32
	d    float32
}

// joinChunk is the fixed node-block size of the local-join phase. Proposals
// are bucketed by chunk and merged in chunk order, which is what keeps the
// output independent of the worker count; the size must therefore never
// depend on Workers. 64 nodes keeps buckets small while amortising the
// scheduling cost.
const joinChunk = 64

// Per-phase stream salts: each (round, node) pair owns one independent
// stream per randomised phase.
const (
	saltInit uint64 = iota + 1
	saltSample
	saltJoin
)

// Build constructs an approximate k-NN graph with NN-Descent.
func Build(data *vec.Matrix, cfg Config) (*knngraph.Graph, error) {
	g, _, err := BuildWithStats(data, cfg)
	return g, err
}

// BuildWithStats is Build plus work counters for benchmarks and the CI
// perf trajectory.
func BuildWithStats(data *vec.Matrix, cfg Config) (*knngraph.Graph, Stats, error) {
	var stats Stats
	n := data.N
	if n < 2 {
		return nil, stats, fmt.Errorf("nndescent: need at least 2 samples, got %d", n)
	}
	kappa := cfg.Kappa
	if kappa >= n {
		kappa = n - 1
	}
	if kappa <= 0 {
		return nil, stats, fmt.Errorf("nndescent: kappa must be positive, got %d", cfg.Kappa)
	}
	rho := cfg.Rho
	if rho <= 0 || rho > 1 {
		rho = 0.5
	}
	delta := cfg.Delta
	if delta <= 0 {
		delta = 0.001
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 30
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// B[v]: the current neighbour list with flags, kept sorted by distance.
	// Initialisation is parallel and per-node deterministic: node i's
	// neighbours come from its own stream, whatever worker runs it.
	lists := make([][]entry, n)
	var distComps atomic.Int64
	parallel.For(n, workers, func(lo, hi int) {
		var comps int64
		for i := lo; i < hi; i++ {
			rng := splitmix.New(cfg.Seed, saltInit, uint64(i))
			list := make([]entry, 0, kappa)
			for len(list) < kappa {
				j := int32(rng.Intn(n))
				if int(j) == i || containsEntry(list, j) {
					continue
				}
				insertEntry(&list, kappa, entry{j, vec.L2Sqr(data.Row(i), data.Row(int(j))), true})
				comps++
			}
			lists[i] = list
		}
		distComps.Add(comps)
	})

	sampleCap := int(rho * float64(kappa))
	if sampleCap < 1 {
		sampleCap = 1
	}
	newF := make([][]int32, n)
	oldF := make([][]int32, n)
	newR := make([][]int32, n)
	oldR := make([][]int32, n)
	nChunks := (n + joinChunk - 1) / joinChunk
	proposals := make([][]proposal, nChunks)
	var totalUpdates int64
	for round := 0; round < maxRounds; round++ {
		if cfg.Interrupt != nil {
			if err := cfg.Interrupt(); err != nil {
				return nil, stats, err
			}
		}
		// Phase 1 — forward sampling (parallel, writes only node-local
		// state): split each list into sampled-new and old, clearing the
		// "new" flag on sampled entries so they are joined once.
		parallel.For(n, workers, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				rng := splitmix.New(cfg.Seed, saltSample, uint64(round), uint64(v))
				nf, of := newF[v][:0], oldF[v][:0]
				for idx := range lists[v] {
					e := &lists[v][idx]
					if e.new {
						if len(nf) < sampleCap || rng.Float64() < rho {
							nf = append(nf, e.id)
							e.new = false
						}
					} else {
						of = append(of, e.id)
					}
				}
				newF[v], oldF[v] = nf, of
			}
		})
		// Phase 2 — reverse sets. Sequential on purpose: it performs no
		// distance computations (a vanishing share of round cost) and the
		// ascending-v append order is what makes the reverse lists — and
		// hence their reservoir sampling below — worker-count independent.
		for v := 0; v < n; v++ {
			newR[v], oldR[v] = newR[v][:0], oldR[v][:0]
		}
		for v := 0; v < n; v++ {
			for _, id := range newF[v] {
				newR[id] = append(newR[id], int32(v))
			}
			for _, id := range oldF[v] {
				oldR[id] = append(oldR[id], int32(v))
			}
		}
		// Phase 3 — local joins (parallel over fixed-size chunks): score
		// new×new and new×old pairs against the round-start lists, which
		// are read-only until the merge. A pair is proposed only if the
		// snapshot says at least one endpoint could still accept it; since
		// merge passes only shrink a full list's worst distance, the prune
		// never drops a pair the merge would have taken.
		parallel.ForEach(nChunks, workers, func(c int) {
			buf := proposals[c][:0]
			var comps int64
			hi := (c + 1) * joinChunk
			if hi > n {
				hi = n
			}
			for v := c * joinChunk; v < hi; v++ {
				rng := splitmix.New(cfg.Seed, saltJoin, uint64(round), uint64(v))
				newSet := mergeSampled(newF[v], newR[v], sampleCap, &rng)
				oldSet := mergeSampled(oldF[v], oldR[v], sampleCap, &rng)
				for a := 0; a < len(newSet); a++ {
					ia := newSet[a]
					rowA := data.Row(int(ia))
					for b := a + 1; b < len(newSet); b++ {
						ib := newSet[b]
						if ia == ib {
							continue
						}
						d := vec.L2Sqr(rowA, data.Row(int(ib)))
						comps++
						if mayAccept(lists[ia], kappa, ib, d) || mayAccept(lists[ib], kappa, ia, d) {
							buf = append(buf, proposal{ia, ib, d})
						}
					}
					for _, ib := range oldSet {
						if ia == ib {
							continue
						}
						d := vec.L2Sqr(rowA, data.Row(int(ib)))
						comps++
						if mayAccept(lists[ia], kappa, ib, d) || mayAccept(lists[ib], kappa, ia, d) {
							buf = append(buf, proposal{ia, ib, d})
						}
					}
				}
			}
			proposals[c] = buf
			distComps.Add(comps)
		})
		// Phase 4 — merge (sequential, deterministic): apply proposals in
		// chunk order. Both endpoints are offered the pair, as in the
		// sequential algorithm; the update count drives δ-termination.
		updates := 0
		for c := range proposals {
			for _, p := range proposals[c] {
				if insertEntry(&lists[p.a], kappa, entry{p.b, p.d, true}) {
					updates++
				}
				if insertEntry(&lists[p.b], kappa, entry{p.a, p.d, true}) {
					updates++
				}
			}
		}
		totalUpdates += int64(updates)
		stats.Rounds = round + 1
		if cfg.OnRound != nil {
			cfg.OnRound(round+1, updates)
		}
		if float64(updates) < delta*float64(n)*float64(kappa) {
			break
		}
	}
	stats.Updates = totalUpdates
	stats.DistComps = distComps.Load()

	// Lists are sorted, unique, self-free and ≤ κ by construction — copy
	// them into the graph directly (in parallel) instead of re-inserting.
	g := knngraph.New(n, kappa)
	parallel.For(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for _, e := range lists[i] {
				g.Lists[i] = append(g.Lists[i], knngraph.Neighbor{ID: e.id, Dist: e.dist})
			}
		}
	})
	return g, stats, nil
}

// mayAccept reports whether offering (id, d) to list could change it —
// the read-only prune of the join phase. It is conservative against the
// merge-time list state: lists only improve between the snapshot and the
// merge (a full list's worst distance never grows, and an evicted id can
// only have been displaced by closer entries), so a pair rejected here
// would also be rejected by insertEntry at merge time.
func mayAccept(list []entry, kappa int, id int32, d float32) bool {
	if len(list) == kappa && d >= list[len(list)-1].dist {
		return false
	}
	for i := range list {
		if list[i].id == id {
			return false
		}
	}
	return true
}

// insertEntry offers e to a bounded sorted list, rejecting duplicates and
// entries beyond the current worst when full. Returns true on change.
func insertEntry(list *[]entry, kappa int, e entry) bool {
	l := *list
	if len(l) == kappa && e.dist >= l[len(l)-1].dist {
		return false
	}
	pos := len(l)
	for i := range l {
		if l[i].id == e.id {
			return false
		}
		if e.dist < l[i].dist && pos == len(l) {
			pos = i
		}
	}
	for i := pos; i < len(l); i++ {
		if l[i].id == e.id {
			return false
		}
	}
	if len(l) < kappa {
		l = append(l, entry{})
	}
	copy(l[pos+1:], l[pos:len(l)-1])
	l[pos] = e
	*list = l
	return true
}

func containsEntry(list []entry, id int32) bool {
	for _, e := range list {
		if e.id == id {
			return true
		}
	}
	return false
}

// mergeSampled unions two id lists, deduplicates, and reservoir-samples the
// reverse part down to cap to bound the quadratic comparison cost.
func mergeSampled(fwd, rev []int32, cap_ int, rng *splitmix.Stream) []int32 {
	if len(rev) > cap_ {
		rng.Shuffle(len(rev), func(a, b int) { rev[a], rev[b] = rev[b], rev[a] })
		rev = rev[:cap_]
	}
	out := make([]int32, 0, len(fwd)+len(rev))
	seen := make(map[int32]bool, len(fwd)+len(rev))
	for _, id := range fwd {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for _, id := range rev {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}
