package nndescent

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"gkmeans/internal/dataset"
	"gkmeans/internal/knngraph"
)

func TestBuildHighRecallOnClusteredData(t *testing.T) {
	data := dataset.SIFTLike(800, 1)
	g, err := Build(data, Config{Kappa: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	exact := knngraph.BruteForce(data, 10, 0)
	if r := g.Recall(exact); r < 0.90 {
		t.Fatalf("NN-Descent recall@top1 %.3f, want >= 0.90", r)
	}
}

func TestBuildBeatsRandomGraph(t *testing.T) {
	data := dataset.GloVeLike(500, 2)
	g, err := Build(data, Config{Kappa: 8, Seed: 2, MaxRounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	exact := knngraph.BruteForce(data, 8, 0)
	random := knngraph.Random(data, 8, 2)
	if g.Recall(exact) < 4*random.Recall(exact) {
		t.Fatalf("NN-Descent recall %.3f not clearly above random %.3f",
			g.Recall(exact), random.Recall(exact))
	}
}

func TestBuildKappaClampedToN(t *testing.T) {
	data := dataset.Uniform(5, 3, 3)
	g, err := Build(data, Config{Kappa: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.Kappa != 4 {
		t.Fatalf("kappa %d, want 4", g.Kappa)
	}
	// With kappa = n-1 the graph must be exact.
	exact := knngraph.BruteForce(data, 4, 0)
	if r := g.Recall(exact); r != 1 {
		t.Fatalf("complete graph recall %v", r)
	}
}

func TestBuildErrors(t *testing.T) {
	data := dataset.Uniform(1, 3, 1)
	if _, err := Build(data, Config{Kappa: 2}); err == nil {
		t.Fatal("n=1 should error")
	}
	if _, err := Build(dataset.Uniform(10, 2, 1), Config{Kappa: 0}); err == nil {
		t.Fatal("kappa=0 should error")
	}
}

func TestBuildDeterministic(t *testing.T) {
	data := dataset.Uniform(150, 6, 4)
	a, _ := Build(data, Config{Kappa: 6, Seed: 9, MaxRounds: 5})
	b, _ := Build(data, Config{Kappa: 6, Seed: 9, MaxRounds: 5})
	for i := range a.Lists {
		if len(a.Lists[i]) != len(b.Lists[i]) {
			t.Fatal("same seed produced different graphs")
		}
		for j := range a.Lists[i] {
			if a.Lists[i][j] != b.Lists[i][j] {
				t.Fatal("same seed produced different graphs")
			}
		}
	}
}

func TestBuildWorkerCountInvariant(t *testing.T) {
	// The determinism contract of the parallel rewrite: the same seed
	// produces the bit-identical graph for every worker count, including
	// the inline single-worker path.
	data := dataset.SIFTLike(600, 11)
	var ref *knngraph.Graph
	var refStats Stats
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0), 13} {
		g, st, err := BuildWithStats(data, Config{Kappa: 8, Seed: 21, MaxRounds: 6, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref, refStats = g, st
			continue
		}
		if st != refStats {
			t.Fatalf("workers=%d stats %+v differ from workers=1 %+v", workers, st, refStats)
		}
		for i := range ref.Lists {
			if len(g.Lists[i]) != len(ref.Lists[i]) {
				t.Fatalf("workers=%d node %d list length differs", workers, i)
			}
			for j := range ref.Lists[i] {
				if g.Lists[i][j] != ref.Lists[i][j] {
					t.Fatalf("workers=%d node %d entry %d: %v vs %v",
						workers, i, j, g.Lists[i][j], ref.Lists[i][j])
				}
			}
		}
	}
}

func TestBuildWithStatsCounters(t *testing.T) {
	data := dataset.SIFTLike(300, 2)
	g, st, err := BuildWithStats(data, Config{Kappa: 8, Seed: 3, MaxRounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds <= 0 || st.Rounds > 10 {
		t.Fatalf("rounds %d out of range", st.Rounds)
	}
	// Initialisation alone costs ≥ n·κ distance computations.
	if st.DistComps < int64(data.N*8) {
		t.Fatalf("dist comps %d below the initialisation floor %d", st.DistComps, data.N*8)
	}
	// Every edge in the final graph was accepted by at least one update.
	if st.Updates <= 0 {
		t.Fatalf("updates %d", st.Updates)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildInterrupt(t *testing.T) {
	data := dataset.SIFTLike(300, 4)
	calls := 0
	wantErr := fmt.Errorf("stop now")
	_, _, err := BuildWithStats(data, Config{Kappa: 8, Seed: 1, MaxRounds: 20,
		Interrupt: func() error {
			calls++
			if calls > 2 {
				return wantErr
			}
			return nil
		}})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want the interrupt error", err)
	}
}

func TestBuildConcurrentUse(t *testing.T) {
	// Separate Build calls over the same read-only dataset must not
	// interfere — the shape gkserved and test suites rely on. Run under
	// -race in CI.
	data := dataset.SIFTLike(300, 6)
	var wg sync.WaitGroup
	graphs := make([]*knngraph.Graph, 6)
	for i := range graphs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g, err := Build(data, Config{Kappa: 6, Seed: 7, MaxRounds: 4, Workers: 2})
			if err != nil {
				t.Error(err)
				return
			}
			graphs[i] = g
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(graphs); i++ {
		if graphs[i] == nil || graphs[0] == nil {
			t.Fatal("missing graph")
		}
		for v := range graphs[0].Lists {
			for j := range graphs[0].Lists[v] {
				if graphs[i].Lists[v][j] != graphs[0].Lists[v][j] {
					t.Fatalf("concurrent builds diverged at node %d", v)
				}
			}
		}
	}
}

func TestOnRoundHookAndTermination(t *testing.T) {
	data := dataset.SIFTLike(300, 5)
	rounds := 0
	_, err := Build(data, Config{Kappa: 8, Seed: 3, MaxRounds: 50,
		OnRound: func(round, updates int) { rounds = round }})
	if err != nil {
		t.Fatal(err)
	}
	if rounds == 0 {
		t.Fatal("OnRound never called")
	}
	if rounds == 50 {
		t.Fatal("never terminated early despite convergence threshold")
	}
}

func TestInsertEntryBounded(t *testing.T) {
	var list []entry
	insertEntry(&list, 2, entry{1, 5, true})
	insertEntry(&list, 2, entry{2, 3, true})
	if !insertEntry(&list, 2, entry{3, 1, true}) {
		t.Fatal("closer entry should evict")
	}
	if insertEntry(&list, 2, entry{4, 10, true}) {
		t.Fatal("far entry should be rejected when full")
	}
	if insertEntry(&list, 2, entry{3, 0.5, true}) {
		t.Fatal("duplicate id should be rejected")
	}
	if list[0].id != 3 || list[1].id != 2 {
		t.Fatalf("order wrong: %v", list)
	}
}
