// Package kdtree implements a KD tree with best-bin-first (priority) search
// over float32 points. It backs the AKM baseline (approximate k-means,
// Philbin et al. — paper reference [22]): a KD tree over the centroids
// answers each sample's nearest-centroid query approximately.
//
// The paper's §2.1 dismisses KD-tree acceleration for k-means because the
// tree degrades in high dimensions ("only feasible when the dimension of
// data is in few tens"); the AKM baseline and its tests demonstrate exactly
// that behaviour, which is why GK-means prunes with a neighbour graph
// instead of a spatial index.
package kdtree

import (
	"container/heap"
	"fmt"
	"sort"

	"gkmeans/internal/vec"
)

// Tree is an immutable KD tree over the rows of a matrix.
type Tree struct {
	data   *vec.Matrix
	nodes  []node
	points []int32 // leaf permutation of row ids
	root   int32
}

// node is one tree node: internal nodes split on (dim, threshold); leaves
// hold a contiguous range of point ids.
type node struct {
	dim         int32   // split dimension; -1 marks a leaf
	threshold   float32 // split value
	left, right int32   // child node indices
	start, end  int32   // leaf: range into points
}

// pointsField: leaves index into this permutation of row ids.
type buildState struct {
	tree   *Tree
	points []int32
	leaf   int
}

// Build constructs a KD tree over all rows of data. leafSize bounds leaf
// occupancy (<=0 selects 8). Split dimension is the one with the largest
// spread inside each node (the classic heuristic).
func Build(data *vec.Matrix, leafSize int) (*Tree, error) {
	if data.N == 0 {
		return nil, fmt.Errorf("kdtree: empty dataset")
	}
	if leafSize <= 0 {
		leafSize = 8
	}
	t := &Tree{data: data, points: make([]int32, data.N)}
	st := &buildState{tree: t, points: t.points, leaf: leafSize}
	for i := range st.points {
		st.points[i] = int32(i)
	}
	t.root = st.build(0, data.N, 0)
	return t, nil
}

func (st *buildState) build(lo, hi, depth int) int32 {
	t := st.tree
	if hi-lo <= st.leaf || depth > 48 {
		t.nodes = append(t.nodes, node{dim: -1, start: int32(lo), end: int32(hi)})
		return int32(len(t.nodes) - 1)
	}
	dim, thr, ok := st.chooseSplit(lo, hi)
	if !ok { // all points identical: make a leaf
		t.nodes = append(t.nodes, node{dim: -1, start: int32(lo), end: int32(hi)})
		return int32(len(t.nodes) - 1)
	}
	mid := st.partition(lo, hi, dim, thr)
	if mid == lo || mid == hi { // degenerate split: fall back to median cut
		mid = (lo + hi) / 2
		st.sortRange(lo, hi, dim)
		thr = t.data.At(int(st.points[mid]), dim)
	}
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{dim: int32(dim), threshold: thr})
	left := st.build(lo, mid, depth+1)
	right := st.build(mid, hi, depth+1)
	t.nodes[idx].left = left
	t.nodes[idx].right = right
	return idx
}

// chooseSplit picks the dimension with the widest spread and its midpoint.
func (st *buildState) chooseSplit(lo, hi int) (int, float32, bool) {
	data := st.tree.data
	bestDim, bestSpread := -1, float32(0)
	var bestMid float32
	// Sampling keeps construction cheap for wide nodes.
	stride := 1
	if hi-lo > 256 {
		stride = (hi - lo) / 256
	}
	for d := 0; d < data.Dim; d++ {
		min := data.At(int(st.points[lo]), d)
		max := min
		for i := lo; i < hi; i += stride {
			v := data.At(int(st.points[i]), d)
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if spread := max - min; spread > bestSpread {
			bestSpread = spread
			bestDim = d
			bestMid = (min + max) / 2
		}
	}
	if bestDim < 0 {
		return 0, 0, false
	}
	return bestDim, bestMid, true
}

// partition moves points with coord < thr to the front; returns the split.
func (st *buildState) partition(lo, hi, dim int, thr float32) int {
	data := st.tree.data
	i := lo
	for j := lo; j < hi; j++ {
		if data.At(int(st.points[j]), dim) < thr {
			st.points[i], st.points[j] = st.points[j], st.points[i]
			i++
		}
	}
	return i
}

func (st *buildState) sortRange(lo, hi, dim int) {
	data := st.tree.data
	sub := st.points[lo:hi]
	sort.Slice(sub, func(a, b int) bool {
		va := data.At(int(sub[a]), dim)
		vb := data.At(int(sub[b]), dim)
		if va != vb {
			return va < vb
		}
		return sub[a] < sub[b]
	})
}

// Result is one nearest-neighbour candidate.
type Result struct {
	ID   int32
	Dist float32
}

// branch is a deferred subtree in best-bin-first order.
type branch struct {
	node    int32
	minDist float32 // lower bound on distance to the subtree's half-space
}

type branchHeap []branch

func (h branchHeap) Len() int            { return len(h) }
func (h branchHeap) Less(i, j int) bool  { return h[i].minDist < h[j].minDist }
func (h branchHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *branchHeap) Push(x interface{}) { *h = append(*h, x.(branch)) }
func (h *branchHeap) Pop() interface{} {
	old := *h
	n := len(old)
	b := old[n-1]
	*h = old[:n-1]
	return b
}

// Search returns the approximately nearest row to q using best-bin-first
// descent with a budget of maxChecks leaf-point comparisons (<=0 means
// exact: every reachable leaf is checked). Larger budgets raise accuracy.
func (t *Tree) Search(q []float32, maxChecks int) Result {
	best := Result{ID: -1}
	checks := 0
	var pending branchHeap
	descend := func(ni int32, bound float32) {
		for {
			nd := &t.nodes[ni]
			if nd.dim < 0 {
				for _, id := range t.points[nd.start:nd.end] {
					d := vec.L2Sqr(q, t.data.Row(int(id)))
					checks++
					if best.ID < 0 || d < best.Dist {
						best = Result{ID: id, Dist: d}
					}
				}
				return
			}
			diff := q[nd.dim] - nd.threshold
			near, far := nd.left, nd.right
			if diff >= 0 {
				near, far = far, near
			}
			farBound := bound + diff*diff
			heap.Push(&pending, branch{node: far, minDist: farBound})
			ni = near
		}
	}
	descend(t.root, 0)
	for len(pending) > 0 {
		if maxChecks > 0 && checks >= maxChecks {
			break
		}
		b := heap.Pop(&pending).(branch)
		if best.ID >= 0 && b.minDist >= best.Dist {
			continue
		}
		descend(b.node, b.minDist)
	}
	return best
}
