package kdtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gkmeans/internal/dataset"
	"gkmeans/internal/vec"
)

func TestBuildErrors(t *testing.T) {
	if _, err := Build(&vec.Matrix{Dim: 3}, 8); err == nil {
		t.Fatal("empty dataset should error")
	}
}

func TestExactSearchMatchesBruteForce(t *testing.T) {
	data := dataset.Uniform(500, 8, 1)
	tree, err := Build(data, 8)
	if err != nil {
		t.Fatal(err)
	}
	queries := dataset.Uniform(50, 8, 2)
	for qi := 0; qi < queries.N; qi++ {
		q := queries.Row(qi)
		got := tree.Search(q, 0) // unlimited checks = exact
		want, wantD := vec.NearestRow(data, q)
		if got.ID != int32(want) && got.Dist != wantD {
			t.Fatalf("query %d: got (%d,%v) want (%d,%v)", qi, got.ID, got.Dist, want, wantD)
		}
	}
}

func TestSelfQueriesExact(t *testing.T) {
	data := dataset.SIFTLike(300, 3)
	tree, err := Build(data, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < data.N; i += 17 {
		got := tree.Search(data.Row(i), 0)
		if got.Dist != 0 {
			t.Fatalf("self query %d returned dist %v", i, got.Dist)
		}
	}
}

func TestBudgetedSearchAccuracyDegradesGracefully(t *testing.T) {
	data := dataset.Uniform(2000, 8, 4)
	tree, _ := Build(data, 8)
	queries := dataset.Uniform(100, 8, 5)
	correct := func(budget int) int {
		hits := 0
		for qi := 0; qi < queries.N; qi++ {
			q := queries.Row(qi)
			got := tree.Search(q, budget)
			want, _ := vec.NearestRow(data, q)
			if got.ID == int32(want) {
				hits++
			}
		}
		return hits
	}
	low, high := correct(16), correct(512)
	if high < low {
		t.Fatalf("more budget gave fewer hits: %d vs %d", low, high)
	}
	if high < 95 { // 8-d: generous budget should be near exact
		t.Fatalf("high-budget accuracy %d/100 too low in 8 dimensions", high)
	}
}

func TestCurseOfDimensionality(t *testing.T) {
	// The paper's §2.1 point: the KD tree prunes well in few tens of
	// dimensions and collapses at descriptor dimensionality. With the same
	// small check budget, accuracy in 128-d must be clearly below 8-d.
	budget := 64
	accuracy := func(dim int) float64 {
		cfg := dataset.GMMConfig{N: 2000, Dim: dim, Components: 10, Spread: 1, Noise: 1, Seed: 6}
		data, _ := dataset.GMM(cfg)
		qcfg := cfg
		qcfg.N, qcfg.Seed = 100, 7
		queries, _ := dataset.GMM(qcfg)
		tree, err := Build(data, 8)
		if err != nil {
			t.Fatal(err)
		}
		hits := 0
		for qi := 0; qi < queries.N; qi++ {
			q := queries.Row(qi)
			got := tree.Search(q, budget)
			want, _ := vec.NearestRow(data, q)
			if got.ID == int32(want) {
				hits++
			}
		}
		return float64(hits) / float64(queries.N)
	}
	lowD, highD := accuracy(8), accuracy(128)
	if highD >= lowD {
		t.Fatalf("expected degradation with dimension: 8-d %.2f vs 128-d %.2f", lowD, highD)
	}
}

func TestDuplicateHeavyData(t *testing.T) {
	rows := make([][]float32, 200)
	for i := range rows {
		rows[i] = []float32{1, 2, 3}
	}
	data := vec.FromRows(rows)
	tree, err := Build(data, 8)
	if err != nil {
		t.Fatal(err)
	}
	got := tree.Search([]float32{1, 2, 3}, 0)
	if got.Dist != 0 {
		t.Fatalf("duplicate data search dist %v", got.Dist)
	}
}

// Property: exact search (unlimited budget) always equals brute force.
func TestExactSearchQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(200)
		dim := 1 + rng.Intn(10)
		data := dataset.Uniform(n, dim, seed)
		tree, err := Build(data, 1+rng.Intn(16))
		if err != nil {
			return false
		}
		q := dataset.Uniform(1, dim, seed+1).Row(0)
		got := tree.Search(q, 0)
		_, wantD := vec.NearestRow(data, q)
		return got.Dist == wantD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLeafPermutationCoversAllPoints(t *testing.T) {
	data := dataset.Uniform(333, 5, 8)
	tree, _ := Build(data, 4)
	seen := make([]bool, data.N)
	for _, id := range tree.points {
		if seen[id] {
			t.Fatalf("point %d appears twice", id)
		}
		seen[id] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("point %d missing from leaves", i)
		}
	}
}
