package gkmeans

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"gkmeans/internal/dataset"
	"gkmeans/internal/vec"
)

// End-to-end parity of the uint8 distance path against the float32 path.
// The contract (dtype.go): graphs are built over transient widened copies
// and byte partial sums are exact in float32, so for the same byte-valued
// data, options and seed the two paths return bit-identical results AND
// identical work counters — only the resident dataset differs.

// writeBvecsFile round-trips byte-valued synthetic data through the bvecs
// wire format so the test exercises both loaders on one real file.
func writeBvecsFile(t *testing.T, data *Matrix) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "corpus.bvecs")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteBvecs(f, data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// buildTwins loads the same bvecs file through both paths and builds both
// indexes with identical options.
func buildTwins(t *testing.T, path string, opts ...Option) (u8Idx, f32Idx *Index) {
	t.Helper()
	u8, err := dataset.LoadBvecsU8(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	f32, err := dataset.LoadBvecsFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if u8Idx, err = BuildU8(context.Background(), u8, opts...); err != nil {
		t.Fatal(err)
	}
	if f32Idx, err = Build(context.Background(), f32, opts...); err != nil {
		t.Fatal(err)
	}
	return u8Idx, f32Idx
}

// assertParity runs a query set through both indexes and requires identical
// results and identical cumulative work counters.
func assertParity(t *testing.T, u8Idx, f32Idx *Index, queries *Matrix, topK, ef int) {
	t.Helper()
	for qi := 0; qi < queries.N; qi++ {
		a := u8Idx.Search(queries.Row(qi), topK, ef)
		b := f32Idx.Search(queries.Row(qi), topK, ef)
		if len(a) != len(b) {
			t.Fatalf("query %d: uint8 returned %d results, float32 %d", qi, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d result %d: uint8 %v vs float32 %v", qi, i, a[i], b[i])
			}
		}
	}
	if as, bs := u8Idx.SearchStats(), f32Idx.SearchStats(); as != bs {
		t.Fatalf("work counters diverge: uint8 %+v vs float32 %+v", as, bs)
	}
}

func TestU8FloatParityEndToEnd(t *testing.T) {
	data := dataset.SIFTLike(240, 41) // byte-valued by construction
	path := writeBvecsFile(t, data)
	queries := dataset.SIFTLike(12, 87)
	base := []Option{WithKappa(6), WithXi(18), WithTau(3), WithSeed(41)}

	configs := []struct {
		name string
		opts []Option
	}{
		{"mono", nil},
		{"mono 1 worker", []Option{WithWorkers(1)}},
		{"mono 4 workers", []Option{WithWorkers(4)}},
		{"sharded", []Option{WithShards(3)}},
		{"routed", []Option{WithShards(3), WithRouting(2)}},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			u8Idx, f32Idx := buildTwins(t, path, append(append([]Option{}, base...), tc.opts...)...)
			if u8Idx.DType() != DTypeUint8 || f32Idx.DType() != DTypeFloat32 {
				t.Fatalf("dtypes: %s / %s", u8Idx.DType(), f32Idx.DType())
			}
			if u8Idx.N() != f32Idx.N() || u8Idx.Dim() != f32Idx.Dim() {
				t.Fatalf("shapes: %dx%d vs %dx%d", u8Idx.N(), u8Idx.Dim(), f32Idx.N(), f32Idx.Dim())
			}
			assertParity(t, u8Idx, f32Idx, queries, 5, 40)
		})
	}
}

// Worker count must not change results on either path (determinism), so
// parity across worker counts follows; this pins the uint8 side directly.
func TestU8DeterministicAcrossWorkers(t *testing.T) {
	data := dataset.SIFTLike(180, 43)
	u8, err := vec.U8FromMatrix(data)
	if err != nil {
		t.Fatal(err)
	}
	queries := dataset.SIFTLike(8, 88)
	var ref *Index
	for _, workers := range []int{1, 2, 8} {
		idx, err := BuildU8(context.Background(), u8,
			WithKappa(6), WithXi(18), WithTau(3), WithSeed(43), WithWorkers(workers), WithShards(2))
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = idx
			continue
		}
		for qi := 0; qi < queries.N; qi++ {
			a := ref.Search(queries.Row(qi), 5, 32)
			b := idx.Search(queries.Row(qi), 5, 32)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("workers=%d query %d result %d: %v vs %v", workers, qi, i, a[i], b[i])
				}
			}
		}
	}
}

// The mutation chain — append, delete, compact — must keep the uint8 dtype
// at every step and stay in lockstep with the float32 twin, including
// through a save/load cycle at the end.
func TestU8MutationChainParity(t *testing.T) {
	data := dataset.SIFTLike(160, 47)
	path := writeBvecsFile(t, data)
	queries := dataset.SIFTLike(10, 89)
	opts := []Option{WithKappa(6), WithXi(18), WithTau(3), WithSeed(47), WithShards(2), WithRouting(2)}
	u8Idx, f32Idx := buildTwins(t, path, opts...)

	extra := NewMatrix(8, u8Idx.Dim())
	for i := range extra.Data {
		extra.Data[i] = float32((i * 7) % 256) // exact bytes: both paths accept them
	}
	step := func(name string, mutate func(*Index) (*Index, error)) {
		t.Helper()
		var err error
		if u8Idx, err = mutate(u8Idx); err != nil {
			t.Fatalf("%s on uint8: %v", name, err)
		}
		if f32Idx, err = mutate(f32Idx); err != nil {
			t.Fatalf("%s on float32: %v", name, err)
		}
		if u8Idx.DType() != DTypeUint8 {
			t.Fatalf("after %s the index reports dtype %s", name, u8Idx.DType())
		}
		assertParity(t, u8Idx, f32Idx, queries, 5, 40)
	}
	ctx := context.Background()
	step("append", func(x *Index) (*Index, error) { return x.Append(ctx, extra) })
	step("delete", func(x *Index) (*Index, error) { return x.Delete(3, 9, 161) })
	step("compact", func(x *Index) (*Index, error) { return x.Compact(ctx) })

	// The chain's end state must survive disk, dtype included.
	file := filepath.Join(t.TempDir(), "chain.gkx")
	if err := SaveIndex(file, u8Idx); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(file)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.DType() != DTypeUint8 {
		t.Fatalf("reloaded chain reports dtype %s", loaded.DType())
	}
	for qi := 0; qi < queries.N; qi++ {
		a := u8Idx.Search(queries.Row(qi), 5, 40)
		b := loaded.Search(queries.Row(qi), 5, 40)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("reload query %d result %d: %v vs %v", qi, i, a[i], b[i])
			}
		}
	}
}

// Non-byte queries and inserts must be refused, not computed wrongly.
func TestU8RejectsNonByteValues(t *testing.T) {
	data := dataset.SIFTLike(80, 53)
	u8, err := vec.U8FromMatrix(data)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := BuildU8(context.Background(), u8, WithKappa(5), WithXi(15), WithTau(3), WithSeed(53))
	if err != nil {
		t.Fatal(err)
	}
	bad := make([]float32, idx.Dim())
	bad[2] = 3.5
	if err := idx.CheckByteValues(bad); err == nil {
		t.Fatal("CheckByteValues accepted 3.5")
	}
	bad[2] = -1
	if err := idx.CheckByteValues(bad); err == nil {
		t.Fatal("CheckByteValues accepted -1")
	}
	bad[2] = 256
	if err := idx.CheckByteValues(bad); err == nil {
		t.Fatal("CheckByteValues accepted 256")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Search on a uint8 index accepted a non-byte query without panicking")
		}
	}()
	bad[2] = 0.25
	idx.Search(bad, 3, 16)
}

// Append with non-byte vectors on a uint8 index must error cleanly.
func TestU8AppendRejectsNonByteVectors(t *testing.T) {
	data := dataset.SIFTLike(80, 59)
	u8, err := vec.U8FromMatrix(data)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := BuildU8(context.Background(), u8, WithKappa(5), WithXi(15), WithTau(3), WithSeed(59))
	if err != nil {
		t.Fatal(err)
	}
	extra := NewMatrix(2, idx.Dim())
	extra.Data[1] = 0.5
	if _, err := idx.Append(context.Background(), extra); err == nil {
		t.Fatal("Append accepted non-byte vectors on a uint8 index")
	}
}
