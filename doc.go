// Package gkmeans is a Go implementation of "Fast k-means based on KNN
// Graph" (Deng & Zhao, ICDE 2018): k-means clustering whose per-iteration
// cost is independent of the cluster count k, plus approximate
// nearest-neighbour search over the same graph.
//
// # The algorithm
//
// Traditional k-means spends O(n·d·k) per iteration assigning every sample
// to its closest of k centroids. GK-means removes k from that bound: an
// approximate k-nearest-neighbour graph is built first, and during the
// clustering iteration each sample is compared only against the clusters in
// which its κ nearest neighbours currently live (κ ≈ 50 ≪ k). Because near
// neighbours overwhelmingly belong to the same cluster, quality barely
// drops while large-k workloads speed up by orders of magnitude.
//
// The k-NN graph itself is built by the same machinery (the paper's
// intertwined process): repeatedly partition the data into many tiny
// clusters with graph-supported k-means, exhaustively compare samples
// inside each tiny cluster, and feed closer pairs back into the graph.
//
// The optimisation engine underneath is boost k-means: incremental,
// objective-driven single-sample moves that converge to lower distortion
// than Lloyd iterations.
//
// # The Index
//
// The package API centres on Index: an immutable bundle of a dataset, its
// k-NN graph and an optional clustering — the one artefact the paper builds
// once and then serves two workloads from. Build constructs it with
// functional options and honours context cancellation between graph rounds
// and clustering epochs:
//
//	data := gkmeans.FromRows(rows)          // n×d float32 samples
//	idx, err := gkmeans.Build(ctx, data,
//	        gkmeans.WithKappa(50),          // graph neighbours per sample
//	        gkmeans.WithClusters(1000),     // also cluster into k=1000
//	)
//	res := idx.Clusters()                   // labels, centroids, distortion
//
// An Index is safe for concurrent use: Search, SearchBatch and Cluster may
// be called from any number of goroutines with no per-goroutine plumbing —
// per-query scratch is pooled internally.
//
//	nbs := idx.Search(q, 10, 64)            // top-10, pool size ef=64
//	all := idx.SearchBatch(queries, 10, 64) // fan a query set across cores
//	res, err := idx.Cluster(ctx, 500)       // another k, same graph
//
// Search walks the k-NN graph best-first over a flat CSR adjacency,
// keeping the ef closest candidates found so far, and terminates early:
// expansion stops once the best unexpanded candidate can no longer improve
// the current top-topK and a further patience window of expansions has not
// improved them either. ef is the recall/latency knob — it bounds both
// pool admission and the worst-case work — while easy queries finish well
// below that budget. Index.SearchStats reports the cumulative work
// (distance computations, candidate expansions) so the per-query cost is
// observable in production, and cmd/gkbench measures latency percentiles,
// throughput and recall across a topK/ef grid, recording the trajectory in
// BENCH_search.json.
//
// A built index persists as a versioned binary container (".gkx", holding
// the dataset, graph(s) and clustering) and loads back ready to serve,
// with search results identical to the saved index. Monolithic indexes
// write the v1 single-segment layout; sharded indexes write the v2
// multi-segment layout with a segment table; a mutated index (see
// Mutation below) writes the v3 layout carrying tombstones and id maps;
// a routed index (see Sharding) writes the v4 layout appending the
// routing-centroid trailer; a uint8 index (see the dtype section) writes
// the v5 layout storing the dataset as raw bytes; loaders accept all
// five. See ARCHITECTURE.md for the byte-level format reference.
//
//	err = gkmeans.SaveIndex("sift.gkx", idx)
//	idx, err = gkmeans.LoadIndex("sift.gkx")
//	n, err := idx.WriteTo(w)                // or stream it anywhere
//	idx, err = gkmeans.ReadIndexFrom(r)
//
// Wrap a graph built elsewhere (a loaded file, NN-Descent, …) with NewIndex
// to search or cluster over it.
//
// # Sharding
//
// WithShards(n) scales an index past what one graph build can hold: Build
// partitions the dataset into n contiguous shards (zero-copy views), runs
// the full build pipeline once per shard — so peak build memory is one
// shard's, not the corpus's — and returns an index whose Search fans out
// across the shards concurrently, merging the per-shard top-k into one
// global top-k with global ids:
//
//	idx, err := gkmeans.Build(ctx, data, gkmeans.WithShards(4))
//	nbs := idx.Search(q, 10, 64)            // one goroutine per shard
//
// Sharded search is deterministic (distance ties merge by id), stats
// aggregate across shards, persistence uses the multi-segment layout, and
// gkserved serves sharded indexes transparently. The one restriction:
// clustering needs a global graph, so WithShards excludes WithClusters
// and Index.Cluster. Every shard is searched with the full ef budget and
// brings its own entry points, so recall tracks the monolithic index on
// the same data (gkbench -shards records the comparison) — but the full
// fan-out also multiplies the per-query work by the shard count.
//
// WithRouting(k) removes that multiplier. A routed build partitions rows
// into spatially coherent, size-balanced shards (a two-level k-means:
// micro-cluster the data, then group whole micro-clusters; external ids
// still name the caller's rows) and keeps k routing centroids per shard.
// At search time the query is ranked against the centroids and only the
// nprobe nearest shards are searched:
//
//	idx, err := gkmeans.Build(ctx, data,
//	        gkmeans.WithShards(4),
//	        gkmeans.WithRouting(32),      // 32 routing centroids per shard
//	        gkmeans.WithNProbe(2),        // default probe width, optional
//	)
//	nbs := idx.Search(q, 10, 64)              // probes the 2 nearest shards
//	nbs  = idx.SearchNProbe(q, 10, 64, 1)     // per-call override
//	all := idx.SearchBatchNProbe(qs, 10, 64, 2)
//
// The trade is explicit and small: on the 50k benchmark grid, probing 2
// of 4 shards spends 1.75x fewer distance computations per query than
// the full fan-out at recall@10 within 0.002. An nprobe of zero without
// a WithNProbe default, or at or past the shard count, skips the router
// entirely and is bit-identical to the full fan-out — results and work
// counters. SearchStats adds ShardsProbed and RoutedQueries so the probe
// behaviour is observable in production; Routed and RoutingCentroids
// report the configuration. Append and Compact keep routing intact by
// computing centroids for the shards they create.
//
// # Mutation
//
// An Index value never changes, but an index is not frozen at Build:
// Append, Delete and Compact are copy-on-write mutators, each returning a
// new *Index that shares every unchanged shard with its receiver. Readers
// of the old value keep answering from a consistent snapshot; a serving
// layer promotes the successor with one atomic swap.
//
//	idx2, err := idx.Append(ctx, fresh)  // one new shard; ids from idx.IDBound()
//	idx3, err := idx2.Delete(17, 205)    // tombstones, skipped by every search
//	idx4, err := idx3.Compact(ctx)       // reclaim dead rows, merge fragments
//
// Append builds a graph over just the new vectors and adds it as a shard
// (the fan-out merge already combines it at search time), assigning
// external ids from the monotone IDBound counter. Delete marks rows in
// per-shard tombstone bitmaps. Compact rebuilds the named shards (all,
// when none are named) from their live rows only, keeping an explicit id
// map so an external id names the same vector for its whole life and
// search results are identical before and after. ShardInfos, Live and
// Deleted expose the per-shard state compaction decisions are made from —
// the background compactor in gkserved feeds them through a policy to
// pick tombstone-heavy and fragmented shards.
//
// # The uint8 distance path
//
// Byte-valued corpora (SIFT1B-style .bvecs) do not need float32 storage:
// WithDType(DTypeUint8) keeps the dataset at one byte per value and scans
// candidates with exact integer kernels, and BuildU8 skips the float
// detour entirely for data loaded as bytes:
//
//	data, err := dataset.LoadBvecsU8("sift.bvecs", 0)
//	idx, err := gkmeans.BuildU8(ctx, data, gkmeans.WithShards(4))
//
// Because byte values and their squared-distance partial sums are exact
// in float32, and graphs are built over a transient widened copy of each
// shard, a uint8 index returns bit-identical results and work counters
// to the float32 index on the same data — at a quarter of the dataset
// memory (BENCH_u8_50k.json: 6.4 MB vs 25.5 MB for 50k×128) and lower
// search latency from the reduced scan bandwidth. Queries remain
// []float32 but every value must be an exact byte (an integer in 0–255):
// Search panics otherwise, like a dimension mismatch, CheckByteValues
// pre-validates, and gkserved turns violations into 400s. Sharding,
// routing and the whole mutation chain preserve the dtype; clustering
// requires float32 centroids and is the one excluded feature. DType,
// DataU8 and ParseDType round out the API.
//
// # Build parallelism and determinism
//
// WithWorkers bounds the goroutines used by the whole build pipeline —
// random graph initialisation, NN-Descent local joins, the per-round
// in-cluster refinement of the intertwined process, and the exact
// ground-truth scans behind ExactNeighbors — as well as SearchBatch.
// Builds are worker-count deterministic: every random draw comes from a
// per-node stream derived from (seed, round, node) and cross-node updates
// merge in a fixed order, so the same WithSeed yields the bit-identical
// graph at any worker count. WithGraphBuilder selects between the paper's
// intertwined construction (BuilderGKMeans, the default) and the parallel
// NN-Descent baseline (BuilderNNDescent):
//
//	idx, err := gkmeans.Build(ctx, data,
//	        gkmeans.WithWorkers(8),
//	        gkmeans.WithGraphBuilder(gkmeans.BuilderNNDescent),
//	)
//
// cmd/gkbench records the build side of the perf trajectory (wall-clock
// swept over worker counts, speedup, rounds, distance computations) in
// BENCH_search.json, and its -compare flag turns the committed baseline
// into a CI perf-regression gate: the job fails when p50 latency or build
// time regress beyond noise-tolerant thresholds or recall@k drops. See the
// README for the thresholds and the baseline-refresh procedure.
//
// # Serving an index
//
// A persisted index can be served over HTTP without linking this library:
// the gkserved daemon (cmd/gkserved) loads .gkx files into a named
// registry and exposes search, insert, delete, clustering, index listing,
// hot registration, stats, /debug/vars and Prometheus /metrics as a JSON
// API. Its hot path micro-batches: concurrent single-query searches are
// coalesced for a short window and answered through one SearchBatch call,
// so callers share the worker pool. On SIGTERM it drains in-flight work
// before exiting.
//
//	gkserved -listen :8080 -index sift=sift.gkx -data /var/lib/gkserved \
//	    -timeout 2s -max-inflight 256 -cache 65536
//
// The read path is hardened for production traffic: -timeout bounds
// every search (clients tighten it per request via their context
// deadline; expiry answers 504 without disturbing the rest of the
// micro-batch), -max-inflight sheds excess concurrency with 429 +
// Retry-After before reading the body, and -cache adds a per-index LRU
// of single-query results invalidated through the index epoch — a hit is
// bit-identical to the cold search and can never cross a mutation. The
// OPERATIONS.md runbook documents every flag and metric family.
//
// Writes ride the mutation API: inserts buffer in a memtable and build a
// new shard at a threshold, deletes tombstone immediately, and each index
// swaps atomically under live searches. With -data set, every mutation is
// appended to a per-index write-ahead log and fsync'd before it is
// acknowledged, and the log replays over the latest checkpoint on
// startup — a crashed server restarts into exactly the state it acked. A
// background compactor rebuilds tombstone-heavy shards off the serving
// path and checkpoints.
//
// The typed Go client lives in gkmeans/client; results are identical to
// calling Index.Search in-process, the context deadline is forwarded as
// the request's timeout_ms, and retries follow the serving contract (429
// waits out Retry-After, 502/503/504 back off boundedly, other 4xx never
// retry):
//
//	cl := client.New("http://localhost:8080")
//	nbs, err := cl.Search(ctx, "sift", q, 10, 64)
//	nbs, err = cl.SearchNProbe(ctx, "sift", q, 10, 64, 2)  // routed indexes
//	ins, err := cl.Insert(ctx, "sift", vectors)
//	del, err := cl.Delete(ctx, "sift", 17, 205)
//
// See examples/serve for the full build → persist → serve → query → drain
// walkthrough in one process.
//
// # Migrating from the legacy functions
//
// The original free functions remain as thin deprecated wrappers over the
// Index API:
//
//	Cluster(data, k, opt)              ->  Build(ctx, data, WithClusters(k), ...)
//	BuildGraph(data, opt)              ->  Build(ctx, data, ...) + Index.Graph()
//	ClusterWithGraph(data, k, g, opt)  ->  NewIndex(data, g, ...) + Index.Cluster(ctx, k)
//	NewSearcher(data, g, entries)      ->  Build/NewIndex + Index.Search
//	SearchBatch(s, q, topK, ef, w)     ->  Index.SearchBatch(q, topK, ef)
//	Options{Kappa: 50, Tau: 10, ...}   ->  WithKappa(50), WithTau(10), ...
//
// BoostKMeans (the exhaustive quality yardstick) is not graph-based and
// stays a free function. See examples/quickstart for a full walkthrough,
// the Example functions in this package for runnable snippets that CI
// executes, and ARCHITECTURE.md for the layer map and on-disk formats.
package gkmeans
