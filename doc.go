// Package gkmeans is a Go implementation of "Fast k-means based on KNN
// Graph" (Deng & Zhao, ICDE 2018): k-means clustering whose per-iteration
// cost is independent of the cluster count k.
//
// # The algorithm
//
// Traditional k-means spends O(n·d·k) per iteration assigning every sample
// to its closest of k centroids. GK-means removes k from that bound: an
// approximate k-nearest-neighbour graph is built first, and during the
// clustering iteration each sample is compared only against the clusters in
// which its κ nearest neighbours currently live (κ ≈ 50 ≪ k). Because near
// neighbours overwhelmingly belong to the same cluster, quality barely
// drops while large-k workloads speed up by orders of magnitude.
//
// The k-NN graph itself is built by the same machinery (the paper's
// intertwined process): repeatedly partition the data into many tiny
// clusters with graph-supported k-means, exhaustively compare samples
// inside each tiny cluster, and feed closer pairs back into the graph.
//
// The optimisation engine underneath is boost k-means: incremental,
// objective-driven single-sample moves that converge to lower distortion
// than Lloyd iterations.
//
// # Quick start
//
//	data := gkmeans.FromRows(rows)          // n×d float32 samples
//	res, err := gkmeans.Cluster(data, 1000, gkmeans.Options{})
//	// res.Labels, res.Centroids, res.Distortion(data)
//
// For repeated clusterings of the same data at different k, build the graph
// once with BuildGraph and call ClusterWithGraph. The graph also powers
// approximate nearest-neighbour search via NewSearcher.
package gkmeans
