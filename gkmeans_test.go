package gkmeans

import (
	"path/filepath"
	"testing"

	"gkmeans/internal/dataset"
	"gkmeans/internal/metrics"
)

func TestClusterEndToEnd(t *testing.T) {
	data := dataset.SIFTLike(1000, 1)
	res, err := Cluster(data, 40, Options{Kappa: 10, Xi: 25, Tau: 5, MaxIter: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(data); err != nil {
		t.Fatal(err)
	}
	if res.Graph == nil {
		t.Fatal("pipeline result must carry the graph")
	}
	if res.GraphTime <= 0 || res.IterTime <= 0 {
		t.Fatal("timings not recorded")
	}
	if res.AvgCandidates <= 0 || res.AvgCandidates > 10 {
		t.Fatalf("avg candidates %.2f outside (0, kappa]", res.AvgCandidates)
	}
	if res.Distortion(data) <= 0 {
		t.Fatal("distortion should be positive on noisy data")
	}
}

func TestClusterWithGraphReuse(t *testing.T) {
	data := dataset.GloVeLike(500, 3)
	g, err := BuildGraph(data, Options{Kappa: 8, Xi: 20, Tau: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Same graph, two different k values.
	for _, k := range []int{10, 25} {
		res, err := ClusterWithGraph(data, k, g, Options{MaxIter: 15, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Validate(data); err != nil {
			t.Fatal(err)
		}
		if res.K != k {
			t.Fatalf("K=%d, want %d", res.K, k)
		}
	}
}

func TestBoostKMeansQualityYardstick(t *testing.T) {
	data := dataset.SIFTLike(800, 6)
	k := 20
	gk, err := Cluster(data, k, Options{Kappa: 10, Xi: 25, Tau: 5, MaxIter: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	bk, err := BoostKMeans(data, k, Options{MaxIter: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	eG, eB := gk.Distortion(data), bk.Distortion(data)
	if eG > eB*1.10 {
		t.Fatalf("GK-means %.2f more than 10%% above BKM %.2f", eG, eB)
	}
}

func TestTraditionalOption(t *testing.T) {
	data := dataset.Uniform(400, 8, 8)
	res, err := Cluster(data, 16, Options{Kappa: 8, Xi: 20, Tau: 3, MaxIter: 10, Seed: 9, Traditional: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(data); err != nil {
		t.Fatal(err)
	}
}

func TestTraceOption(t *testing.T) {
	data := dataset.Uniform(300, 6, 10)
	res, err := Cluster(data, 12, Options{Kappa: 6, Xi: 20, Tau: 3, MaxIter: 8, Seed: 11, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 {
		t.Fatal("trace requested but history empty")
	}
	if res.History[0].Iter != 1 {
		t.Fatal("history numbering wrong")
	}
}

func TestSearcherOverClusterGraph(t *testing.T) {
	data := dataset.SIFTLike(600, 12)
	res, err := Cluster(data, 20, Options{Kappa: 10, Xi: 25, Tau: 6, MaxIter: 10, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSearcher(data, res.Graph, 32)
	if err != nil {
		t.Fatal(err)
	}
	hits := s.Search(data.Row(7), 5, 32)
	if len(hits) != 5 || hits[0].ID != 7 || hits[0].Dist != 0 {
		t.Fatalf("self query failed: %v", hits)
	}
	truth := ExactNeighbors(data, data.SubsetRows([]int{3, 50, 99}), 1)
	if len(truth) != 3 || len(truth[0]) != 1 {
		t.Fatalf("ExactNeighbors shape wrong: %v", truth)
	}
}

func TestFvecsRoundTripFacade(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.fvecs")
	m := dataset.GloVeLike(30, 14)
	if err := SaveFvecs(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFvecs(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("round trip mismatch")
	}
}

func TestDistortionHelper(t *testing.T) {
	data := FromRows([][]float32{{0, 0}, {0, 2}, {10, 0}, {10, 2}})
	labels := []int{0, 0, 1, 1}
	if d := Distortion(data, labels, 2); d != 1 {
		t.Fatalf("distortion %v, want 1", d)
	}
}

func TestSearchBatchFacade(t *testing.T) {
	all := dataset.SIFTLike(520, 17)
	data, queries := Split(all, 20)
	if data.N != 500 || queries.N != 20 {
		t.Fatalf("split %d/%d", data.N, queries.N)
	}
	g, err := BuildGraph(data, Options{Kappa: 10, Xi: 25, Tau: 5, Seed: 18})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSearcher(data, g, 32)
	if err != nil {
		t.Fatal(err)
	}
	batch := SearchBatch(s, queries, 3, 32, 2)
	if len(batch) != 20 {
		t.Fatalf("batch results %d", len(batch))
	}
	for qi, res := range batch {
		if len(res) != 3 {
			t.Fatalf("query %d returned %d results", qi, len(res))
		}
	}
}

func TestPipelineRecoversLatentStructure(t *testing.T) {
	// End-to-end quality check with an external measure: clustering mixture
	// data at k = number of latent components should score high NMI.
	data, truth := dataset.GMM(dataset.GMMConfig{
		N: 2000, Dim: 32, Components: 20, Spread: 6, Noise: 1.5, Seed: 19,
	})
	res, err := Cluster(data, 20, Options{Kappa: 10, Xi: 30, Tau: 5, MaxIter: 25, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	nmi, err := metrics.NMI(res.Labels, truth)
	if err != nil {
		t.Fatal(err)
	}
	if nmi < 0.85 {
		t.Fatalf("NMI %.3f too low — pipeline failed to recover latent clusters", nmi)
	}
}

func TestClusterErrorsSurface(t *testing.T) {
	data := dataset.Uniform(20, 4, 15)
	if _, err := Cluster(data, 0, Options{Tau: 1}); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := Cluster(data, 21, Options{Tau: 1}); err == nil {
		t.Fatal("k>n should error")
	}
	if _, err := BoostKMeans(data, 0, Options{}); err == nil {
		t.Fatal("BoostKMeans k=0 should error")
	}
}

func TestValidateCatchesCorruptResult(t *testing.T) {
	data := dataset.Uniform(10, 2, 16)
	res := &Result{Labels: make([]int, 10), K: 2, Centroids: NewMatrix(2, 2)}
	if err := res.Validate(data); err != nil {
		t.Fatal(err)
	}
	res.Labels[0] = 9
	if err := res.Validate(data); err == nil {
		t.Fatal("bad label should fail validation")
	}
	res.Labels[0] = 0

	res2 := &Result{Labels: make([]int, 3), K: 1, Centroids: NewMatrix(1, 2)}
	if err := res2.Validate(data); err == nil {
		t.Fatal("length mismatch should fail validation")
	}

	// The extended checks: nil labels, nil centroids, centroid shape.
	if err := (&Result{K: 2, Centroids: NewMatrix(2, 2)}).Validate(data); err == nil {
		t.Fatal("nil labels should fail validation")
	}
	if err := (&Result{Labels: make([]int, 10), K: 2}).Validate(data); err == nil {
		t.Fatal("nil centroids should fail validation")
	}
	res.Centroids = NewMatrix(3, 2) // wrong row count for K=2
	if err := res.Validate(data); err == nil {
		t.Fatal("centroid row mismatch should fail validation")
	}
	res.Centroids = NewMatrix(2, 5) // wrong dimensionality
	if err := res.Validate(data); err == nil {
		t.Fatal("centroid dimensionality mismatch should fail validation")
	}
	res.Centroids = NewMatrix(2, 2)
	if err := res.Validate(data); err != nil {
		t.Fatalf("repaired result should validate: %v", err)
	}
}
