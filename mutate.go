package gkmeans

import (
	"context"
	"fmt"
	"math"

	"gkmeans/internal/checked"
	"gkmeans/internal/router"
	"gkmeans/internal/store"
	"gkmeans/internal/vec"
)

// Mutation: Append, Delete and Compact grow, shrink and consolidate an
// index without ever touching a published value. Every mutation is
// copy-on-write — it returns a new *Index sharing every unchanged shard
// (sub-index, graph, searcher) with the receiver — so concurrent readers
// of the old value keep answering queries from a consistent snapshot and
// a serving layer promotes the new value with one atomic swap.
//
// The unit of mutation is the shard (PR 5's fan-out already merges
// per-shard results): Append builds one new shard over the fresh vectors,
// Delete marks rows in per-shard tombstone bitmaps that every search
// skips, and Compact rebuilds tombstone-heavy or fragmented shards from
// their live rows only. External ids are stable for the life of a vector:
// Append assigns them from a monotone counter and a compacted shard keeps
// an explicit id map for its surviving rows, so compaction changes which
// shard answers for a vector but never its id.

// ShardInfo describes one shard of an index for operational decisions
// (compaction policy, stats endpoints). A monolithic index reports a
// single entry.
type ShardInfo struct {
	Rows    int    // physical rows, live and tombstoned
	Deleted int    // tombstoned rows
	Live    int    // Rows - Deleted
	Gen     uint64 // build generation: 0 at Build, counting up per mutation
}

// idBound returns the lowest never-assigned external id: every id in the
// index is below it. For an index that was never mutated this is the row
// count.
func (x *Index) idBound() int32 {
	if x.nextID > 0 {
		return x.nextID
	}
	return checked.Int32(x.rows())
}

// IDBound returns the exclusive upper bound of the external ids in use:
// Append assigns ids starting here. Serving layers use it to pre-assign
// ids to vectors buffered ahead of a shard build.
func (x *Index) IDBound() int32 { return x.idBound() }

// shardCount returns the number of physical shards, counting a monolithic
// index as one.
func (x *Index) shardCount() int {
	if x.Sharded() {
		return len(x.shards)
	}
	return 1
}

// shardRows returns shard s's physical row count.
func (x *Index) shardRows(s int) int {
	if x.Sharded() {
		return x.shards[s].N()
	}
	return x.rows()
}

// shardTomb returns shard s's tombstone bitmap, or nil when the shard has
// none. Safe on indexes that were never mutated (nil slice).
func (x *Index) shardTomb(s int) *store.Bits {
	if s < len(x.tombs) {
		return x.tombs[s]
	}
	return nil
}

// shardIDMap returns shard s's explicit external-id map, or nil when the
// shard uses base+local ids.
func (x *Index) shardIDMap(s int) []int32 {
	if s < len(x.shardIDs) {
		return x.shardIDs[s]
	}
	return nil
}

// shardBaseOf returns shard s's external base id (0 for a monolithic
// index).
func (x *Index) shardBaseOf(s int) int32 {
	if s < len(x.shardBase) {
		return x.shardBase[s]
	}
	return 0
}

// shardGeneration returns shard s's build generation.
func (x *Index) shardGeneration(s int) uint64 {
	if s < len(x.shardGen) {
		return x.shardGen[s]
	}
	return 0
}

// maxGen returns the highest shard generation.
func (x *Index) maxGen() uint64 {
	var g uint64
	for _, v := range x.shardGen {
		if v > g {
			g = v
		}
	}
	return g
}

// ShardInfos returns one ShardInfo per shard (a single entry for a
// monolithic index), the input of the compaction policy.
func (x *Index) ShardInfos() []ShardInfo {
	out := make([]ShardInfo, x.shardCount())
	for s := range out {
		rows := x.shardRows(s)
		del := 0
		if t := x.shardTomb(s); t != nil {
			del = t.Count()
		}
		out[s] = ShardInfo{Rows: rows, Deleted: del, Live: rows - del, Gen: x.shardGeneration(s)}
	}
	return out
}

// Deleted returns the number of tombstoned rows across all shards.
func (x *Index) Deleted() int {
	del := 0
	for _, t := range x.tombs {
		if t != nil {
			del += t.Count()
		}
	}
	return del
}

// Live returns the number of searchable rows: N() minus Deleted().
func (x *Index) Live() int { return x.N() - x.Deleted() }

// cloneShell returns a new Index sharing every component of x. The
// searcher is adopted (not rebuilt) when x already constructed one; the
// sync fields themselves are never copied.
func (x *Index) cloneShell() *Index {
	y := &Index{
		data: x.data, u8: x.u8, graph: x.graph,
		shards: x.shards, shardBase: x.shardBase,
		shardIDs: x.shardIDs, shardGen: x.shardGen, tombs: x.tombs,
		route: x.route, probes: x.probes,
		clusters: x.clusters, graphTime: x.graphTime, cfg: x.cfg, nextID: x.nextID,
	}
	if !x.Sharded() {
		if s := x.searcher.Load(); s != nil {
			y.searcherOnce.Do(func() { y.searcher.Store(s) })
		}
	}
	return y
}

// locate maps an external id to its (shard, local row), scanning id maps
// where present. ok is false for an id the index never assigned or that
// compaction has already reclaimed.
func (x *Index) locate(id int32) (shard, local int, ok bool) {
	if id < 0 {
		return 0, 0, false
	}
	if !x.Sharded() {
		if int(id) < x.rows() {
			return 0, int(id), true
		}
		return 0, 0, false
	}
	for s, sh := range x.shards {
		if ids := x.shardIDMap(s); ids != nil {
			// Compacted shards carry explicit ids; a linear scan keeps the
			// id map free of auxiliary structures. Deletes are rare next to
			// searches, so the O(rows) cost sits off the hot path.
			for l, v := range ids {
				if v == id {
					return s, l, true
				}
			}
			continue
		}
		base := x.shardBaseOf(s)
		if id >= base && int(id-base) < sh.N() {
			return s, int(id - base), true
		}
	}
	return 0, 0, false
}

// Append builds one new shard over vectors and returns a new *Index
// serving both the old rows and the new ones. The receiver is not
// modified: every existing shard — graph, searcher, tombstones — is
// shared with the result, so readers of the old value stay valid while
// the caller swaps the new one in. The appended vectors are assigned the
// external ids IDBound()..IDBound()+vectors.N-1, in order.
//
// The new shard is built with the receiver's Build-time options (seed,
// workers, builder, κ/ξ/τ) through the same pipeline as WithShards
// shards. vectors needs at least two rows (a k-NN graph needs a
// neighbour); serving layers buffer single inserts until a build is due.
// An index carrying a Build-time clustering refuses Append — the labels
// cannot cover rows that did not exist — as does one whose id space
// would overflow int32.
//
// Every Append adds a shard, and every shard adds per-query fan-out
// work; pair Append with Compact (or the serving compactor) to fold
// accumulated small shards back into large ones.
func (x *Index) Append(ctx context.Context, vectors *Matrix) (*Index, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if vectors == nil || vectors.N == 0 {
		return nil, fmt.Errorf("gkmeans: Append needs a non-empty vector set")
	}
	if vectors.Dim != x.dims() {
		return nil, fmt.Errorf("gkmeans: appending %d-dimensional vectors to a %d-dimensional index", vectors.Dim, x.dims())
	}
	if vectors.N < minShardRows {
		return nil, fmt.Errorf("gkmeans: Append needs at least %d vectors to build a shard graph, got %d", minShardRows, vectors.N)
	}
	if x.clusters != nil {
		return nil, fmt.Errorf("gkmeans: Append on an index with a Build-time clustering; rebuild without WithClusters")
	}
	bound := x.idBound()
	if int64(bound)+int64(vectors.N) > math.MaxInt32 {
		return nil, fmt.Errorf("gkmeans: appending %d vectors would overflow the int32 id space at %d", vectors.N, bound)
	}

	// The parent matrix is rebuilt as old rows + new rows (persistence and
	// Data()/DataU8() expect one contiguous dataset), but the new shard is
	// built over its own copy of the vectors: a shard must not pin a whole
	// concatenated matrix in memory once a later Append replaces it. On a
	// uint8 index the incoming vectors are narrowed up front — every value
	// must be an exact byte, like a query — and the appended shard stays
	// bytes end to end.
	total := x.rows() + vectors.N
	var newData, own *Matrix
	var newU8, ownU8 *vec.U8Matrix
	if x.u8 != nil {
		v8, err := vec.U8FromMatrix(vectors)
		if err != nil {
			return nil, fmt.Errorf("gkmeans: Append on a uint8 index: %w", err)
		}
		newU8 = vec.NewU8Matrix(total, x.u8.Dim)
		copy(newU8.Data[:len(x.u8.Data)], x.u8.Data)
		copy(newU8.Data[len(x.u8.Data):], v8.Data)
		ownU8 = v8 // U8FromMatrix already allocated an independent copy
	} else {
		newData = NewMatrix(total, x.data.Dim)
		copy(newData.Data[:len(x.data.Data)], x.data.Data)
		copy(newData.Data[len(x.data.Data):], vectors.Data)
		own = NewMatrix(vectors.N, vectors.Dim)
		copy(own.Data, vectors.Data)
	}

	shardCfg := x.cfg
	shardCfg.shards = 0
	shardCfg.clusterK = 0
	shardCfg.progress = nil
	built, graphTime, err := buildShardLoop(ctx, own, ownU8, shardCfg, []int{vectors.N}, nil)
	if err != nil {
		return nil, err
	}

	n := x.shardCount()
	shards := make([]*Index, n, n+1)
	base := make([]int32, n, n+1)
	ids := make([][]int32, n, n+1)
	gens := make([]uint64, n, n+1)
	tombs := make([]*store.Bits, n, n+1)
	if x.Sharded() {
		copy(shards, x.shards)
		copy(base, x.shardBase)
		copy(ids, x.shardIDs)
		copy(gens, x.shardGen)
		copy(tombs, x.tombs)
	} else {
		// The receiver itself becomes shard 0: it is a complete monolithic
		// index over exactly the old rows, searcher included.
		shards[0] = x
		tombs[0] = x.shardTomb(0)
	}
	gen := x.maxGen() + 1
	y := &Index{
		data:      newData,
		u8:        newU8,
		shards:    append(shards, built[0]),
		shardBase: append(base, bound),
		shardIDs:  append(ids, nil),
		shardGen:  append(gens, gen),
		tombs:     append(tombs, nil),
		probes:    x.probes,
		graphTime: x.graphTime + graphTime,
		cfg:       x.cfg,
		nextID:    checked.Int32(int(bound) + vectors.N),
	}
	if y.probes == nil {
		y.probes = &probeStats{}
	}
	// A routed receiver extends its router: the new shard gets its own
	// centroids (unchanged shards share theirs), so appended vectors are
	// routable the moment the new index is swapped in.
	if x.route != nil {
		cents := make([]*Matrix, 0, n+1)
		for s := 0; s < n; s++ {
			cents = append(cents, x.route.Centroids(s))
		}
		routeInput := own
		if ownU8 != nil {
			routeInput = ownU8.Widen()
		}
		m, err := router.BuildShard(routeInput, x.route.K(), routingSeed(x.cfg.seed, gen, n), x.cfg.workers)
		if err != nil {
			return nil, fmt.Errorf("gkmeans: routing centroids for appended shard: %w", err)
		}
		route, err := router.New(x.route.K(), x.dims(), append(cents, m))
		if err != nil {
			return nil, fmt.Errorf("gkmeans: extending shard router: %w", err)
		}
		y.route = route
	}
	return y, nil
}

// Delete tombstones the vectors with the given external ids and returns a
// new *Index that skips them in every search. The receiver is not
// modified (copy-on-write: only the affected shards' bitmaps are copied),
// so readers of the old value still see the rows. Deleting an
// already-deleted id is a no-op; an id the index never assigned — or one
// compaction has reclaimed — is an error and no new index is produced.
// The rows' storage is reclaimed by Compact, not here. A Build-time
// clustering does not carry over: its labels would keep covering deleted
// rows. Routing centroids (WithRouting) do carry over unchanged — after
// deletions they are approximate by design, since recomputing them per
// delete would put a k-means run on the write path for marginal routing
// benefit; Compact recomputes the rebuilt shard's centroids exactly.
func (x *Index) Delete(ids ...int32) (*Index, error) {
	if len(ids) == 0 {
		return x, nil
	}
	n := x.shardCount()
	tombs := make([]*store.Bits, n)
	copy(tombs, x.tombs)
	owned := make([]bool, n)
	for _, id := range ids {
		s, local, ok := x.locate(id)
		if !ok {
			return nil, fmt.Errorf("gkmeans: Delete of unknown id %d", id)
		}
		if !owned[s] {
			if tombs[s] == nil {
				tombs[s] = store.NewBits(x.shardRows(s))
			} else {
				tombs[s] = tombs[s].Clone()
			}
			owned[s] = true
		}
		tombs[s].Set(local)
	}
	y := x.cloneShell()
	y.tombs = tombs
	y.clusters = nil
	return y, nil
}

// Compact rebuilds the given shards (all of them when none are named)
// from their live rows only, merged into one fresh shard, and returns a
// new *Index: tombstoned rows are physically dropped, their tombstones
// disappear, and the shard count shrinks by len(targets)-1. Unnamed
// shards are shared with the receiver untouched, and surviving rows keep
// their external ids (the merged shard carries an explicit id map when
// the ids are no longer contiguous), so the only observable change is
// that searches stop paying for dead rows and extra fan-out.
//
// The merged shard is built with the receiver's Build-time options; on a
// serving path, run Compact off the request path and swap the result in
// (the background compactor in gkmeans/internal/server does exactly
// that). Compacting away every row of the index is refused, as is a
// selection whose live remainder is too small to carry a graph.
func (x *Index) Compact(ctx context.Context, targets ...int) (*Index, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := x.shardCount()
	if len(targets) == 0 {
		targets = make([]int, n)
		for i := range targets {
			targets[i] = i
		}
	}
	inTarget := make([]bool, n)
	for _, s := range targets {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("gkmeans: Compact of shard %d, index has %d", s, n)
		}
		if inTarget[s] {
			return nil, fmt.Errorf("gkmeans: Compact names shard %d twice", s)
		}
		inTarget[s] = true
	}
	if x.clusters != nil {
		return nil, fmt.Errorf("gkmeans: Compact on an index with a Build-time clustering; rebuild without WithClusters")
	}

	mergedLive := 0
	for s := 0; s < n; s++ {
		if inTarget[s] {
			del := 0
			if t := x.shardTomb(s); t != nil {
				del = t.Count()
			}
			mergedLive += x.shardRows(s) - del
		}
	}
	// A merged shard below the graph minimum cannot be built on its own:
	// widen the selection with the smallest untargeted shards until it
	// carries enough live rows (or nothing is left to widen with).
	for mergedLive > 0 && mergedLive < minShardRows {
		best := -1
		for s := 0; s < n; s++ {
			if !inTarget[s] && (best < 0 || x.shardRows(s) < x.shardRows(best)) {
				best = s
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("gkmeans: compaction would leave %d live rows, fewer than a graph needs (%d)", mergedLive, minShardRows)
		}
		inTarget[best] = true
		del := 0
		if t := x.shardTomb(best); t != nil {
			del = t.Count()
		}
		mergedLive += x.shardRows(best) - del
	}

	first := -1
	for s := 0; s < n; s++ {
		if inTarget[s] {
			first = s
			break
		}
	}

	// Lay out the new parent matrix in shard order, the merged live rows
	// taking the first target's place, and collect their external ids.
	keptRows := 0
	for s := 0; s < n; s++ {
		if !inTarget[s] {
			keptRows += x.shardRows(s)
		}
	}
	if keptRows+mergedLive == 0 {
		return nil, fmt.Errorf("gkmeans: compaction would empty the index (every row is deleted)")
	}

	var newData *Matrix
	var newU8 *vec.U8Matrix
	if x.u8 != nil {
		newU8 = vec.NewU8Matrix(keptRows+mergedLive, x.u8.Dim)
	} else {
		newData = NewMatrix(keptRows+mergedLive, x.data.Dim)
	}
	mergedIDs := make([]int32, 0, mergedLive)
	var layout []int // untargeted shards, in order
	row := 0
	mergedLo := -1
	// copyRow moves shard s's local row l into parent row dst, in whichever
	// element type the index stores.
	copyRow := func(dst, s, l int) {
		if x.u8 != nil {
			src := x.u8
			if x.Sharded() {
				src = x.shards[s].u8
			}
			copy(newU8.Row(dst), src.Row(l))
			return
		}
		src := x.data
		if x.Sharded() {
			src = x.shards[s].data
		}
		copy(newData.Row(dst), src.Row(l))
	}
	for s := 0; s < n; s++ {
		switch {
		case s == first:
			mergedLo = row
			for t := s; t < n; t++ {
				if !inTarget[t] {
					continue
				}
				tomb := x.shardTomb(t)
				idmap := x.shardIDMap(t)
				tbase := x.shardBaseOf(t)
				for l := 0; l < x.shardRows(t); l++ {
					if tomb != nil && tomb.Get(l) {
						continue
					}
					copyRow(row, t, l)
					if idmap != nil {
						mergedIDs = append(mergedIDs, idmap[l])
					} else {
						mergedIDs = append(mergedIDs, tbase+checked.Int32(l))
					}
					row++
				}
			}
		case inTarget[s]:
			// Folded into the merged shard above.
		default:
			for l := 0; l < x.shardRows(s); l++ {
				copyRow(row, s, l)
				row++
			}
			layout = append(layout, s)
		}
	}

	var merged *Index
	var mergedTime = x.graphTime
	if mergedLive > 0 {
		shardCfg := x.cfg
		shardCfg.shards = 0
		shardCfg.clusterK = 0
		shardCfg.progress = nil
		var mergedView *Matrix
		var mergedViewU8 *vec.U8Matrix
		if newU8 != nil {
			mergedViewU8 = shardViewU8(newU8, mergedLo, mergedLo+mergedLive)
		} else {
			mergedView = shardView(newData, mergedLo, mergedLo+mergedLive)
		}
		built, graphTime, err := buildShardLoop(ctx, mergedView, mergedViewU8, shardCfg, []int{mergedLive}, nil)
		if err != nil {
			return nil, err
		}
		merged = built[0]
		mergedTime += graphTime
	}

	// If the surviving ids are still base+local, drop the id map: the
	// shard persists and serves exactly like an unmutated one.
	var mergedMap []int32
	mergedBase := int32(0)
	if merged != nil {
		mergedBase = mergedIDs[0]
		for l, id := range mergedIDs {
			if id != mergedBase+checked.Int32(l) {
				mergedMap = mergedIDs
				break
			}
		}
	}

	gen := x.maxGen() + 1
	var shards []*Index
	var base []int32
	var ids [][]int32
	var gens []uint64
	var tombs []*store.Bits
	var cents []*Matrix
	li := 0
	for s := 0; s < n; s++ {
		switch {
		case s == first && merged != nil:
			shards = append(shards, merged)
			base = append(base, mergedBase)
			ids = append(ids, mergedMap)
			gens = append(gens, gen)
			tombs = append(tombs, nil)
			if x.route != nil {
				// The merged shard's rows changed, so its routing centroids
				// are recomputed from scratch; untargeted shards keep theirs.
				var view *Matrix
				if newU8 != nil {
					view = shardViewU8(newU8, mergedLo, mergedLo+mergedLive).Widen()
				} else {
					view = shardView(newData, mergedLo, mergedLo+mergedLive)
				}
				m, err := router.BuildShard(view,
					x.route.K(), routingSeed(x.cfg.seed, gen, len(shards)-1), x.cfg.workers)
				if err != nil {
					return nil, fmt.Errorf("gkmeans: routing centroids for compacted shard: %w", err)
				}
				cents = append(cents, m)
			}
		case inTarget[s]:
			// Dropped (either folded into merged, or fully dead).
		default:
			k := layout[li]
			li++
			var sub *Index
			if x.Sharded() {
				sub = x.shards[k]
			} else {
				sub = x
			}
			shards = append(shards, sub)
			base = append(base, x.shardBaseOf(k))
			ids = append(ids, x.shardIDMap(k))
			gens = append(gens, x.shardGeneration(k))
			tombs = append(tombs, x.shardTomb(k))
			if x.route != nil {
				cents = append(cents, x.route.Centroids(k))
			}
		}
	}

	y := &Index{
		data:      newData,
		u8:        newU8,
		shards:    shards,
		shardBase: base,
		shardIDs:  ids,
		shardGen:  gens,
		tombs:     tombs,
		probes:    x.probes,
		graphTime: mergedTime,
		cfg:       x.cfg,
		nextID:    x.idBound(),
	}
	if y.Sharded() && y.probes == nil {
		y.probes = &probeStats{}
	}
	if x.route != nil {
		route, err := router.New(x.route.K(), x.dims(), cents)
		if err != nil {
			return nil, fmt.Errorf("gkmeans: reassembling shard router: %w", err)
		}
		y.route = route
	}
	return y, nil
}
