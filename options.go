package gkmeans

import "gkmeans/internal/core"

// Option is a functional option for Build, NewIndex and Index.Cluster. The
// zero configuration reproduces the paper's standard setup (§4.4): κ=50,
// ξ=50, τ=10, 50 optimisation epochs, GOMAXPROCS workers.
type Option func(*config)

// config is the resolved option set. Zero values mean "use the paper
// default"; defaults are applied by the layer that consumes each field so
// they stay defined in exactly one place.
type config struct {
	kappa   int
	xi      int
	tau     int
	seed    int64
	workers int
	entries int
	builder string
	shards  int
	routing int   // routing centroids per shard; 0 = no router
	nprobe  int   // default shards probed per query; <=0 = all
	dtype   DType // dataset element type; zero value = float32

	maxIter     int
	trace       bool
	traditional bool

	clusterK int

	progress func(stage string, done, total int)
}

func applyOptions(base config, opts []Option) config {
	for _, o := range opts {
		o(&base)
	}
	return base
}

// WithKappa sets the number of graph neighbours per sample (κ). Larger
// values raise clustering and search quality at higher cost. Default 50.
func WithKappa(kappa int) Option { return func(c *config) { c.kappa = kappa } }

// WithXi sets the refinement cluster size used while building the graph (ξ).
// Recommended range 40–100. Default 50.
func WithXi(xi int) Option { return func(c *config) { c.xi = xi } }

// WithTau sets the number of graph construction rounds (τ). 10 suffices for
// clustering; up to 32 pays off when the graph is reused for ANN search.
// Default 10.
func WithTau(tau int) Option { return func(c *config) { c.tau = tau } }

// WithSeed makes graph construction and clustering deterministic.
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithWorkers bounds parallelism across the whole build-and-serve
// pipeline: random graph initialisation, NN-Descent local joins,
// in-cluster refinement and batch search all run on at most this many
// goroutines; <=0 uses GOMAXPROCS. The built graph is bit-identical for
// every worker count — randomness is derived per node, never per worker —
// so changing WithWorkers trades only wall-clock, never results.
func WithWorkers(workers int) Option { return func(c *config) { c.workers = workers } }

// Graph builder names for WithGraphBuilder, aliased from the core layer
// that dispatches on them so the public names can never drift from what
// Build accepts.
const (
	// BuilderGKMeans is the paper's intertwined construction (Alg. 3):
	// alternate graph-supported clustering and in-cluster refinement.
	BuilderGKMeans = core.BuilderGKMeans
	// BuilderNNDescent is the KGraph baseline (Dong et al., WWW 2011):
	// parallel local joins over sampled neighbours of neighbours.
	BuilderNNDescent = core.BuilderNNDescent
)

// WithGraphBuilder selects the graph construction algorithm used by Build:
// BuilderGKMeans (the default) or BuilderNNDescent. Both honour WithSeed,
// WithKappa, WithTau and WithWorkers; WithXi only affects BuilderGKMeans.
// For BuilderNNDescent, WithTau caps the NN-Descent rounds (its update-rate
// termination usually stops earlier; <=0 keeps its 30-round default).
func WithGraphBuilder(builder string) Option { return func(c *config) { c.builder = builder } }

// WithEntryPoints sets the number of ANN search entry points (<=0 selects
// 16; raise it for data with many well-separated clusters). With WithShards
// the count applies to every shard independently.
func WithEntryPoints(entries int) Option { return func(c *config) { c.entries = entries } }

// WithShards makes Build partition the dataset into n contiguous shards and
// build one independent sub-index per shard (each through the full parallel
// build pipeline). Search and SearchBatch fan out across the shards and
// merge the per-shard top-k into one global top-k, so results carry global
// ids exactly as if the index were monolithic; SearchStats aggregates the
// per-shard counters. Sharding bounds the peak memory of one graph build to
// a single shard and turns idle cores into search throughput, at the price
// of searching every shard per query.
//
// n <= 1 builds the usual monolithic index. Build clamps n so every shard
// holds at least two samples. A sharded index persists in the multi-segment
// container format (see SaveIndex) and serves through gkserved like any
// other index; it cannot be clustered, so combining WithShards and
// WithClusters makes Build return an error.
func WithShards(n int) Option { return func(c *config) { c.shards = n } }

// WithRouting makes a sharded Build also compute a shard router:
// centroidsPerShard small k-means centroids per shard (built with the same
// seeded, worker-count-deterministic machinery as everything else), held in
// the index and persisted with it. A routed index can answer a query by
// probing only the nprobe shards whose centroids are closest instead of
// broadcasting to all of them — see WithNProbe and Index.SearchNProbe for
// the recall-vs-work trade. Routing changes how Build partitions the data:
// instead of slicing rows in input order, a coarse k-means pass groups
// similar rows into the same shard (external ids still name the original
// input rows, via per-shard id maps), because routing contiguous slices of
// arbitrarily ordered input would discard recall for no saved work.
//
// centroidsPerShard <= 0 disables routing. WithRouting requires
// WithShards(n), n > 1, and Build returns an error otherwise; if the
// dataset is too small to actually split, the clamp to a monolithic index
// drops the router too (a monolithic index has nothing to route).
//
// The default keeps current behaviour: without WithRouting (or with
// nprobe resolving to the shard count) every shard is searched, and the
// results are bit-identical to the unrouted full fan-out.
func WithRouting(centroidsPerShard int) Option {
	return func(c *config) { c.routing = centroidsPerShard }
}

// WithNProbe sets the default number of shards a routed index probes per
// query: the nprobe shards whose routing centroids are closest to the query
// are searched and merged, the rest are skipped. n <= 0 or n >= the shard
// count probes every shard (bit-identical to the unrouted fan-out).
// Ignored without WithRouting. Per-call values (SearchNProbe,
// SearchBatchNProbe) override this default.
func WithNProbe(n int) Option { return func(c *config) { c.nprobe = n } }

// WithMaxIter caps the clustering optimisation epochs. Default 50; a run
// stops earlier at the first epoch with no accepted move.
func WithMaxIter(maxIter int) Option { return func(c *config) { c.maxIter = maxIter } }

// WithTrace records per-epoch distortion history in clustering results.
func WithTrace() Option { return func(c *config) { c.trace = true } }

// WithTraditional switches the optimisation step from boost k-means moves
// to nearest-centroid moves (the paper's GK-means− ablation; lower quality,
// same speed).
func WithTraditional() Option { return func(c *config) { c.traditional = true } }

// WithClusters makes Build also cluster the dataset into k clusters right
// after the graph is ready; the result is available from Index.Clusters and
// persists with the index.
func WithClusters(k int) Option { return func(c *config) { c.clusterK = k } }

// WithProgress installs a progress callback. It is invoked with stage
// "graph" after every construction round and stage "cluster" after every
// optimisation epoch, with done out of total units complete. The callback
// must be safe for use from the goroutine that runs Build or Cluster.
func WithProgress(fn func(stage string, done, total int)) Option {
	return func(c *config) { c.progress = fn }
}

// resolvedTau mirrors the builders' round-cap defaults so progress totals
// match the number of rounds actually run (NN-Descent may stop earlier via
// its update-rate termination).
func (c config) resolvedTau() int {
	if c.tau > 0 {
		return c.tau
	}
	if c.builder == BuilderNNDescent {
		return 30
	}
	return 10
}
