package gkmeans_test

// Runnable documentation: every Example below executes under `go test`
// (CI runs `go test -run Example ./...` in the docs job), so the code and
// output shown on pkg.go.dev can never drift from what the library does.
// The corpus is tiny and fully deterministic — each query is an exact copy
// of an indexed vector, so its nearest neighbour is itself at distance 0
// regardless of graph-construction details.

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"gkmeans"
)

// exampleVectors builds a small deterministic corpus: n distinct 4-d
// vectors with no randomness, so example output is stable.
func exampleVectors(n int) *gkmeans.Matrix {
	rows := make([][]float32, n)
	for i := range rows {
		rows[i] = []float32{
			float32(i),
			float32((i * i) % 97),
			float32((i * 31) % 61),
			float32(i % 7),
		}
	}
	return gkmeans.FromRows(rows)
}

func ExampleBuild() {
	data := exampleVectors(200)
	idx, err := gkmeans.Build(context.Background(), data,
		gkmeans.WithKappa(8),    // graph neighbours per sample
		gkmeans.WithTau(4),      // construction rounds
		gkmeans.WithSeed(1),     // deterministic build
		gkmeans.WithClusters(4)) // also cluster while we're at it
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d vectors of dim %d\n", idx.N(), idx.Dim())
	fmt.Printf("graph holds up to %d neighbours per sample\n", idx.Graph().Kappa)
	fmt.Printf("clustered into k=%d\n", idx.Clusters().K)
	// Output:
	// indexed 200 vectors of dim 4
	// graph holds up to 8 neighbours per sample
	// clustered into k=4
}

func ExampleIndex_Search() {
	data := exampleVectors(200)
	idx, err := gkmeans.Build(context.Background(), data,
		gkmeans.WithKappa(8), gkmeans.WithTau(4), gkmeans.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	// The query is an exact copy of sample 42, so the closest neighbour is
	// sample 42 itself at squared distance 0.
	query := data.Row(42)
	neighbors := idx.Search(query, 3, 64) // top-3, candidate pool ef=64
	fmt.Printf("closest id=%d dist=%.0f\n", neighbors[0].ID, neighbors[0].Dist)
	fmt.Printf("returned %d neighbours in ascending distance\n", len(neighbors))
	// Output:
	// closest id=42 dist=0
	// returned 3 neighbours in ascending distance
}

func ExampleIndex_SearchBatch() {
	data := exampleVectors(200)
	idx, err := gkmeans.Build(context.Background(), data,
		gkmeans.WithKappa(8), gkmeans.WithTau(4), gkmeans.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	// Three queries answered concurrently, one sorted result list each.
	queries := gkmeans.FromRows([][]float32{data.Row(7), data.Row(63), data.Row(127)})
	results := idx.SearchBatch(queries, 2, 64)
	for i, res := range results {
		fmt.Printf("query %d: closest id=%d dist=%.0f\n", i, res[0].ID, res[0].Dist)
	}
	// Output:
	// query 0: closest id=7 dist=0
	// query 1: closest id=63 dist=0
	// query 2: closest id=127 dist=0
}

func ExampleLoadIndex() {
	data := exampleVectors(200)
	idx, err := gkmeans.Build(context.Background(), data,
		gkmeans.WithKappa(8), gkmeans.WithTau(4), gkmeans.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}

	// SaveIndex writes the versioned .gkx container atomically; LoadIndex
	// returns an index that answers searches identically to the saved one.
	dir, err := os.MkdirTemp("", "gkx-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "example.gkx")
	if err := gkmeans.SaveIndex(path, idx); err != nil {
		log.Fatal(err)
	}
	loaded, err := gkmeans.LoadIndex(path)
	if err != nil {
		log.Fatal(err)
	}
	res := loaded.Search(data.Row(9), 1, 32)
	fmt.Printf("loaded %d×%d, closest to query: id=%d dist=%.0f\n",
		loaded.N(), loaded.Dim(), res[0].ID, res[0].Dist)
	// Output:
	// loaded 200×4, closest to query: id=9 dist=0
}

// Sharded build: WithShards(n) partitions the dataset into n independently
// built sub-indexes; Search fans out across them and merges the per-shard
// top-k, so results carry global ids exactly like a monolithic index.
func ExampleBuild_sharded() {
	data := exampleVectors(200)
	idx, err := gkmeans.Build(context.Background(), data,
		gkmeans.WithShards(4),
		gkmeans.WithKappa(8), gkmeans.WithTau(4), gkmeans.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	// Sample 150 lives in the last shard; the merged result still reports
	// its global id.
	res := idx.Search(data.Row(150), 3, 64)
	fmt.Printf("shards=%d\n", idx.Shards())
	fmt.Printf("closest id=%d dist=%.0f\n", res[0].ID, res[0].Dist)
	fmt.Printf("stats aggregate across shards: queries=%d\n", idx.SearchStats().Queries)
	// Output:
	// shards=4
	// closest id=150 dist=0
	// stats aggregate across shards: queries=1
}
