package gkmeans_test

// One testing.B benchmark per table and figure of the paper's evaluation
// (each invokes the same runner as cmd/experiments at a reduced size so
// `go test -bench=.` completes on a laptop), plus micro-benchmarks on the
// kernels that dominate run time. Regenerate the full-size tables with
// cmd/experiments.

import (
	"testing"

	"gkmeans"

	"gkmeans/internal/bench"
	"gkmeans/internal/bkm"
	"gkmeans/internal/core"
	"gkmeans/internal/dataset"
	"gkmeans/internal/knngraph"
	"gkmeans/internal/vec"
)

func BenchmarkFig1CoOccurrence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig1(bench.Fig1Config{N: 1500, MaxRank: 50, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2GraphEvolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig2(bench.Fig2Config{N: 2000, Tau: 6, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4ConfigurationTest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig4(bench.Fig4Config{N: 1500, Iters: 8, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5SIFT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig5("sift", bench.Fig5Config{N: 1500, Iters: 8, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5Glove(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig5("glove", bench.Fig5Config{N: 1500, Iters: 8, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5GIST(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig5("gist", bench.Fig5Config{N: 1200, Iters: 8, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6SizeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := bench.Fig6Size(bench.Fig6Config{Sizes: []int{500, 1000, 2000}, KForN: 16, Iters: 6, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6KSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := bench.Fig6K(bench.Fig6Config{NForK: 2000, Ks: []int{16, 32, 64}, Iters: 6, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2HugeK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table2(bench.Table2Config{N: 2000, Iters: 5, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkANNSSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.ANNS(bench.ANNSConfig{N: 2000, Queries: 50, Tau: 6, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Ablation(bench.AblationConfig{N: 800, Iters: 5, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselinesAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Baselines(bench.BaselinesConfig{N: 1000, K: 20, Iters: 6, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDimsSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := bench.Dims(bench.DimsConfig{N: 800, K: 16, Iters: 5, Seed: 1, Dims: []int{8, 128}})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks on the hot kernels ---

func BenchmarkL2Sqr128(b *testing.B) {
	x := dataset.SIFTLike(2, 1)
	a, c := x.Row(0), x.Row(1)
	b.SetBytes(128 * 4)
	for i := 0; i < b.N; i++ {
		_ = vec.L2Sqr(a, c)
	}
}

func BenchmarkDotMixed512(b *testing.B) {
	x := dataset.VLADLike(1, 1)
	comp := make([]float64, 512)
	for i := range comp {
		comp[i] = float64(i)
	}
	b.SetBytes(512 * 8)
	for i := 0; i < b.N; i++ {
		_ = vec.DotMixed(comp, x.Row(0))
	}
}

func BenchmarkBKMFullEpoch(b *testing.B) {
	data := dataset.SIFTLike(2000, 1)
	k := 50
	labels := make([]int, data.N)
	for i := range labels {
		labels[i] = i % k
	}
	o, err := bkm.NewOptimizer(data, labels, k)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Epoch(nil, nil) // exhaustive candidates: O(n·k·d)
	}
}

func BenchmarkGKMeansEpoch(b *testing.B) {
	// The same epoch with graph-pruned candidates: O(n·κ·d). Compare with
	// BenchmarkBKMFullEpoch to see the paper's speed-up at this k.
	data := dataset.SIFTLike(2000, 1)
	k := 50
	g, err := core.BuildGraph(data, core.GraphConfig{Kappa: 10, Xi: 25, Tau: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := core.Cluster(data, g, core.Config{K: k, MaxIter: 1, Seed: 2})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphConstruction(b *testing.B) {
	data := dataset.SIFTLike(2000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := core.BuildGraph(data, core.GraphConfig{Kappa: 10, Xi: 50, Tau: 4, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphInsert(b *testing.B) {
	g := knngraph.New(1000, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Insert(i%1000, int32((i*7)%1000), float32(i%97))
	}
}

func BenchmarkSearcherQuery(b *testing.B) {
	data := dataset.SIFTLike(4000, 1)
	g, err := core.BuildGraph(data, core.GraphConfig{Kappa: 20, Xi: 50, Tau: 6, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	s, err := gkmeans.NewSearcher(data, g, 32)
	if err != nil {
		b.Fatal(err)
	}
	q := dataset.SIFTLike(1, 9).Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Search(q, 10, 32)
	}
}

func BenchmarkTwoMeansInit(b *testing.B) {
	data := dataset.SIFTLike(2000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := gkmeans.ClusterWithGraph(data, 40, knngraph.Random(data, 5, 1),
			gkmeans.Options{MaxIter: 1, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}
