package gkmeans

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"gkmeans/internal/anns"
	"gkmeans/internal/core"
	"gkmeans/internal/knngraph"
	"gkmeans/internal/router"
	"gkmeans/internal/store"
	"gkmeans/internal/vec"
)

// Index is an immutable bundle of a dataset, its approximate k-NN graph and
// an optional clustering — the one artefact the paper builds (Alg. 3) and
// then reuses for both graph-supported clustering (Alg. 2) and ANN search
// (§4.3). After Build returns, an Index is safe for concurrent use: Search,
// SearchBatch and Cluster may all be called from any number of goroutines.
//
// The dataset and graph are shared, not copied; callers must not mutate
// them after handing them to Build or NewIndex.
//
// With WithShards(n), n > 1, the Index is a thin fan-out shell instead: it
// holds the full dataset plus n independently built sub-indexes over
// contiguous row ranges, and Search/SearchBatch merge the per-shard results
// (see shard.go). A sharded index has no global graph and no clustering.
type Index struct {
	data  *Matrix       // float32 dataset; nil on a uint8 index
	u8    *vec.U8Matrix // byte dataset of a WithDType(DTypeUint8)/BuildU8 index
	graph *Graph        // nil when sharded

	// shards holds the per-shard sub-indexes of a sharded index (nil for a
	// monolithic one); shardBase[s] is the external id of shard s's first
	// row, so external id = shardBase[s] + local id unless the shard carries
	// an explicit id map (see below).
	shards    []*Index
	shardBase []int32

	// route holds the per-shard routing centroids of a WithRouting build
	// (nil for unrouted indexes); probes counts the fan-out work of a
	// sharded index. The probes pointer is shared across copy-on-write
	// mutations so serving counters stay monotone across index swaps.
	route  *router.Table
	probes *probeStats

	// Mutation metadata (see mutate.go). The three slices are parallel to
	// shards on a sharded index; a monolithic index uses entry 0 of tombs
	// only. nil slices (the common, never-mutated case) mean none.
	//
	//   - shardIDs[s], when non-nil, maps shard s's local rows to external
	//     ids (a compacted shard keeps the ids of its surviving rows);
	//   - shardGen[s] is the generation shard s was built in (appends and
	//     compactions count up from the Build-time 0);
	//   - tombs[s] marks shard s's deleted rows, skipped by every search.
	//
	// nextID is the lowest never-assigned external id (0 means data.N):
	// Append hands out ids from here, and compaction never reuses them.
	shardIDs [][]int32
	shardGen []uint64
	tombs    []*store.Bits
	nextID   int32

	// clusters is the Build-time clustering (WithClusters), if any.
	clusters *Result

	// graphTime is the wall clock spent constructing the graph; zero when
	// the graph was supplied (NewIndex) or loaded (ReadIndexFrom).
	graphTime time.Duration

	// cfg keeps the build-time options as defaults for Cluster and
	// SearchBatch calls.
	cfg config

	// searcher is built lazily on first search: pure clustering workloads
	// never pay for the CSR adjacency. Construction cannot fail — the shape
	// invariants it checks are validated by Build/NewIndex. The atomic
	// pointer lets SearchStats peek without forcing the build.
	searcherOnce sync.Once
	searcher     atomic.Pointer[anns.Searcher]
}

// Build constructs an Index over data: it runs the paper's intertwined
// graph construction (Alg. 3) and, with WithClusters, a graph-supported
// clustering (Alg. 2). ctx cancellation is honoured between graph rounds
// and clustering epochs; on cancellation Build returns ctx.Err().
func Build(ctx context.Context, data *Matrix, opts ...Option) (*Index, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if data == nil || data.N == 0 {
		return nil, fmt.Errorf("gkmeans: Build needs a non-empty dataset")
	}
	// Sample ids are int32 throughout (neighbour lists, CSR adjacency, the
	// .gkx format). Refusing oversized datasets here makes every downstream
	// narrowing a checked invariant rather than a potential truncation.
	if int64(data.N) > math.MaxInt32 {
		return nil, fmt.Errorf("gkmeans: dataset has %d rows; sample ids are int32", data.N)
	}
	cfg := applyOptions(config{}, opts)
	// WithDType(DTypeUint8): narrow the (exactly byte-valued) input and run
	// the uint8 build path — same graphs and results, 4x less dataset memory.
	if cfg.dtype == DTypeUint8 {
		u8, err := vec.U8FromMatrix(data)
		if err != nil {
			return nil, fmt.Errorf("gkmeans: WithDType(DTypeUint8): %w", err)
		}
		return buildU8(ctx, u8, cfg)
	}
	if cfg.dtype != DTypeFloat32 {
		return nil, fmt.Errorf("gkmeans: unsupported dtype %s", cfg.dtype)
	}
	// Checked before the shard-count clamp: the option conflict must error
	// even when a tiny dataset would clamp the request down to one shard.
	if cfg.shards > 1 && cfg.clusterK > 0 {
		return nil, fmt.Errorf("gkmeans: WithClusters needs a global k-NN graph; it cannot be combined with WithShards")
	}
	if cfg.routing > 0 && cfg.shards <= 1 {
		return nil, fmt.Errorf("gkmeans: WithRouting routes across shards; combine it with WithShards(n), n > 1")
	}
	if n := clampShards(cfg.shards, data.N); n > 1 {
		return buildSharded(ctx, data, nil, cfg, n)
	}
	// A dataset too small to split clamps to one shard; a monolithic index
	// has nothing to route, so the router request is dropped with the shards.
	cfg.routing = 0
	return buildMono(ctx, data, cfg)
}

// buildMono is Build's monolithic path: one graph over the whole dataset,
// plus the optional Build-time clustering. The sharded path builds one of
// these per shard.
func buildMono(ctx context.Context, data *Matrix, cfg config) (*Index, error) {
	gc := core.GraphConfig{
		Kappa:     cfg.kappa,
		Xi:        cfg.xi,
		Tau:       cfg.tau,
		Seed:      cfg.seed,
		Workers:   cfg.workers,
		Builder:   cfg.builder,
		Interrupt: ctx.Err,
	}
	if cfg.progress != nil {
		progress, tau := cfg.progress, cfg.resolvedTau()
		gc.OnRound = func(t int, _ *knngraph.Graph, _ []int) { progress("graph", t, tau) }
	}
	start := time.Now()
	g, err := core.BuildGraph(data, gc)
	if err != nil {
		return nil, err
	}
	x := &Index{data: data, graph: g, graphTime: time.Since(start), cfg: cfg}
	if cfg.clusterK > 0 {
		res, err := x.Cluster(ctx, cfg.clusterK)
		if err != nil {
			return nil, err
		}
		x.clusters = res
	}
	return x, nil
}

// NewIndex wraps a dataset and a pre-built graph (from BuildGraph, a loaded
// file, NN-Descent, …) into an Index without constructing anything. The
// graph must cover exactly the samples of data.
func NewIndex(data *Matrix, g *Graph, opts ...Option) (*Index, error) {
	if data == nil || data.N == 0 {
		return nil, fmt.Errorf("gkmeans: NewIndex needs a non-empty dataset")
	}
	if int64(data.N) > math.MaxInt32 {
		return nil, fmt.Errorf("gkmeans: dataset has %d rows; sample ids are int32", data.N)
	}
	if g == nil {
		return nil, fmt.Errorf("gkmeans: NewIndex needs a graph")
	}
	if g.N() != data.N {
		return nil, fmt.Errorf("gkmeans: graph has %d nodes for %d samples", g.N(), data.N)
	}
	// The graph may come from anywhere (a file, NN-Descent, …); reject a
	// structurally broken one here rather than panicking inside the first
	// search or clustering call.
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("gkmeans: invalid graph: %w", err)
	}
	return &Index{data: data, graph: g, cfg: applyOptions(config{}, opts)}, nil
}

// Data returns the indexed float32 dataset, or nil for a uint8 index
// (whose byte dataset is available from DataU8). Treat it as read-only.
// For a sharded index this is the full dataset; the shards hold row-range
// views of it.
func (x *Index) Data() *Matrix { return x.data }

// Graph returns the underlying k-NN graph, or nil for a sharded index
// (each shard has its own graph over its own rows; there is no global one).
// Treat it as read-only.
func (x *Index) Graph() *Graph { return x.graph }

// Sharded reports whether the index was built with WithShards(n), n > 1.
func (x *Index) Sharded() bool { return len(x.shards) > 0 }

// Shards returns the number of shards: 1 for a monolithic index.
func (x *Index) Shards() int {
	if !x.Sharded() {
		return 1
	}
	return len(x.shards)
}

// rows and dims resolve the dataset shape across dtypes: exactly one of
// data and u8 is non-nil on every index.
func (x *Index) rows() int {
	if x.u8 != nil {
		return x.u8.N
	}
	return x.data.N
}

func (x *Index) dims() int {
	if x.u8 != nil {
		return x.u8.Dim
	}
	return x.data.Dim
}

// N returns the number of indexed samples.
func (x *Index) N() int { return x.rows() }

// Dim returns the dimensionality of the indexed samples.
func (x *Index) Dim() int { return x.dims() }

// Clusters returns the clustering computed at Build time via WithClusters,
// or nil when none was requested.
func (x *Index) Clusters() *Result { return x.clusters }

// GraphTime returns the wall clock spent on graph construction (summed
// across shards for a sharded build); zero for indexes over pre-built or
// loaded graphs.
func (x *Index) GraphTime() time.Duration { return x.graphTime }

// Cluster partitions the indexed dataset into k clusters with
// graph-supported boost k-means (Alg. 2). Options given here override the
// Build-time options (seed, epoch cap, trace, traditional, progress). The
// call only reads the index, so any number of clusterings — at the same or
// different k — may run concurrently with each other and with searches.
// ctx cancellation is honoured between epochs. A sharded index has no
// global graph to cluster over and returns an error.
func (x *Index) Cluster(ctx context.Context, k int, opts ...Option) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if x.Sharded() {
		return nil, fmt.Errorf("gkmeans: clustering needs a global k-NN graph; a sharded index has none (build without WithShards to cluster)")
	}
	if x.u8 != nil {
		return nil, fmt.Errorf("gkmeans: clustering needs float32 data; a uint8 index cannot cluster (build with DTypeFloat32)")
	}
	if t := x.shardTomb(0); t != nil && t.Count() > 0 {
		return nil, fmt.Errorf("gkmeans: clustering would include %d deleted rows; compact the index first", t.Count())
	}
	cfg := applyOptions(x.cfg, opts)
	cc := core.Config{
		K:           k,
		MaxIter:     cfg.maxIter,
		Seed:        cfg.seed,
		Trace:       cfg.trace,
		Traditional: cfg.traditional,
		Interrupt:   ctx.Err,
	}
	if cfg.progress != nil {
		progress := cfg.progress
		cc.OnEpoch = func(epoch, maxIter int) { progress("cluster", epoch, maxIter) }
	}
	res, err := core.Cluster(x.data, x.graph, cc)
	if err != nil {
		return nil, err
	}
	return fromCore(res, x.graph, 0), nil
}
