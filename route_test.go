package gkmeans

import (
	"bytes"
	"context"
	"encoding/binary"
	"strings"
	"testing"

	"gkmeans/internal/dataset"
	"gkmeans/internal/vec"
)

// buildRoutedIndex constructs a small deterministic routed index plus the
// original (un-reordered) data and a held-out query set.
func buildRoutedIndex(t *testing.T, opts ...Option) (*Index, *Matrix, *Matrix) {
	t.Helper()
	all := dataset.SIFTLike(1040, 31)
	data, queries := Split(all, 40)
	opts = append([]Option{
		WithShards(4), WithRouting(4),
		WithKappa(10), WithXi(25), WithTau(4), WithSeed(33),
	}, opts...)
	idx, err := Build(context.Background(), data, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return idx, data, queries
}

func TestRoutedBuildPreservesExternalIDs(t *testing.T) {
	idx, data, queries := buildRoutedIndex(t)
	if !idx.Routed() || idx.RoutingCentroids() != 4 || idx.Shards() != 4 {
		t.Fatalf("routed=%v centroids=%d shards=%d, want true/4/4",
			idx.Routed(), idx.RoutingCentroids(), idx.Shards())
	}
	// The routed build reorders rows internally but result ids must keep
	// naming the caller's rows: every data row finds itself at distance 0.
	for _, i := range []int{0, 7, 313, 999} {
		res := idx.Search(data.Row(i), 1, 32)
		if len(res) != 1 || res[0].ID != int32(i) || res[0].Dist != 0 {
			t.Fatalf("self query %d returned %v", i, res)
		}
	}
	// Reported distances are against the original rows, even under routing.
	for qi := 0; qi < 5; qi++ {
		q := queries.Row(qi)
		for _, nb := range idx.SearchNProbe(q, 5, 64, 2) {
			if want := vec.L2Sqr(q, data.Row(int(nb.ID))); nb.Dist != want {
				t.Fatalf("query %d id %d dist %v, want %v", qi, nb.ID, nb.Dist, want)
			}
		}
	}
}

func TestRoutedFullFanOutBitIdentical(t *testing.T) {
	// nprobe >= shardCount must return exactly the full fan-out results AND
	// do exactly the full fan-out work (the router is never consulted) — at
	// any worker count.
	for _, workers := range []int{1, 3} {
		idx, _, queries := buildRoutedIndex(t, WithWorkers(workers))
		ref, _, _ := buildRoutedIndex(t, WithWorkers(workers))
		for qi := 0; qi < queries.N; qi++ {
			q := queries.Row(qi)
			a := idx.SearchNProbe(q, 10, 64, idx.Shards())
			b := ref.Search(q, 10, 64)
			if len(a) != len(b) {
				t.Fatalf("workers=%d query %d: %d vs %d results", workers, qi, len(a), len(b))
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("workers=%d query %d result %d: %v vs %v", workers, qi, j, a[j], b[j])
				}
			}
		}
		sa, sb := idx.SearchStats(), ref.SearchStats()
		if sa != sb {
			t.Fatalf("workers=%d stats differ at full fan-out:\n%+v\n%+v", workers, sa, sb)
		}
		if sa.RoutedQueries != 0 {
			t.Fatalf("full fan-out recorded %d routed queries", sa.RoutedQueries)
		}
		if want := uint64(queries.N * idx.Shards()); sa.ShardsProbed != want {
			t.Fatalf("full fan-out probed %d shard searches, want %d", sa.ShardsProbed, want)
		}
	}
}

func TestRoutedSearchProbesFewerShards(t *testing.T) {
	idx, _, queries := buildRoutedIndex(t)
	full := idx.SearchNProbe(queries.Row(0), 10, 64, 0)
	routed := idx.SearchNProbe(queries.Row(0), 10, 64, 1)
	if len(full) != 10 || len(routed) != 10 {
		t.Fatalf("result sizes %d/%d, want 10/10", len(full), len(routed))
	}
	st := idx.SearchStats()
	if st.Queries != 2 || st.RoutedQueries != 1 {
		t.Fatalf("stats %+v, want 2 queries of which 1 routed", st)
	}
	if want := uint64(idx.Shards() + 1); st.ShardsProbed != want {
		t.Fatalf("probed %d shard searches, want %d", st.ShardsProbed, want)
	}

	// Batch routing counts every query and stays worker-deterministic.
	batch := idx.SearchBatchNProbe(queries, 10, 64, 2)
	if len(batch) != queries.N {
		t.Fatalf("batch returned %d lists", len(batch))
	}
	st = idx.SearchStats()
	if want := uint64(2 + queries.N); st.Queries != want {
		t.Fatalf("stats %+v, want %d queries", st, want)
	}
	for qi := 0; qi < queries.N; qi++ {
		single := idx.SearchNProbe(queries.Row(qi), 10, 64, 2)
		for j := range single {
			if batch[qi][j] != single[j] {
				t.Fatalf("query %d result %d: batch %v vs single %v", qi, j, batch[qi][j], single[j])
			}
		}
	}
}

func TestWithNProbeDefault(t *testing.T) {
	idx, _, queries := buildRoutedIndex(t, WithNProbe(2))
	ref, _, _ := buildRoutedIndex(t)
	// The index default applies when the per-call value is 0 and loses to a
	// positive per-call value.
	a := idx.Search(queries.Row(0), 10, 64)
	b := ref.SearchNProbe(queries.Row(0), 10, 64, 2)
	for j := range a {
		if a[j] != b[j] {
			t.Fatalf("WithNProbe(2) default result %d: %v vs explicit %v", j, a[j], b[j])
		}
	}
	if st := idx.SearchStats(); st.RoutedQueries != 1 || st.ShardsProbed != 2 {
		t.Fatalf("stats %+v, want 1 routed query probing 2 shards", st)
	}
}

func TestWithRoutingRequiresShards(t *testing.T) {
	data := dataset.SIFTLike(200, 9)
	_, err := Build(context.Background(), data,
		WithKappa(6), WithXi(15), WithTau(2), WithSeed(9), WithRouting(4))
	if err == nil || !strings.Contains(err.Error(), "WithShards") {
		t.Fatalf("WithRouting without WithShards: %v, want an error naming WithShards", err)
	}
}

func TestRoutedSaveLoadRoundTrip(t *testing.T) {
	idx, _, queries := buildRoutedIndex(t)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	if v := binary.LittleEndian.Uint32(blob[4:8]); v != 4 {
		t.Fatalf("routed index serialised as version %d, want 4", v)
	}
	loaded, err := ReadIndexFrom(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Routed() || loaded.RoutingCentroids() != idx.RoutingCentroids() {
		t.Fatalf("router lost in round trip: routed=%v centroids=%d",
			loaded.Routed(), loaded.RoutingCentroids())
	}
	// Byte-stable: writing the loaded index reproduces the stream exactly.
	var buf2 bytes.Buffer
	if _, err := loaded.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, buf2.Bytes()) {
		t.Fatal("routed index round trip is not byte-stable")
	}
	// Routed searches on the loaded index are identical, probe for probe.
	for qi := 0; qi < queries.N; qi++ {
		for _, np := range []int{1, 2, 0} {
			a := idx.SearchNProbe(queries.Row(qi), 10, 64, np)
			b := loaded.SearchNProbe(queries.Row(qi), 10, 64, np)
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("query %d nprobe %d result %d differs: %v vs %v", qi, np, j, a[j], b[j])
				}
			}
		}
	}
}

func TestUnroutedPersistenceUnchanged(t *testing.T) {
	// An unrouted sharded index must still serialise as version 3 with no
	// routing flag: the v4 section is strictly opt-in.
	idx, _ := buildTestIndex(t, WithShards(3))
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	if v := binary.LittleEndian.Uint32(blob[4:8]); v == 4 {
		t.Fatal("unrouted index serialised as version 4")
	}
	if flags := binary.LittleEndian.Uint32(blob[8:12]); flags&flagRouting != 0 {
		t.Fatalf("unrouted index has the routing flag set (flags %#x)", flags)
	}
}

func TestRoutedMutationChain(t *testing.T) {
	idx, data, queries := buildRoutedIndex(t)
	extra := NewMatrix(8, idx.Dim())
	for i := range extra.Data {
		extra.Data[i] = float32(i % 97)
	}
	grown, err := idx.Append(context.Background(), extra)
	if err != nil {
		t.Fatal(err)
	}
	if !grown.Routed() || grown.Shards() != idx.Shards()+1 {
		t.Fatalf("append lost routing: routed=%v shards=%d", grown.Routed(), grown.Shards())
	}
	// The appended shard routes: its rows are findable with nprobe 1 when
	// every shard is probed — and the new shard has centroids, so full
	// fan-out still works.
	newID := int32(data.N)
	if res := grown.Search(extra.Row(0), 1, 32); len(res) != 1 || res[0].ID != newID {
		t.Fatalf("appended row not found: %v", res)
	}

	pruned, err := grown.Delete(3, 700)
	if err != nil {
		t.Fatal(err)
	}
	if !pruned.Routed() {
		t.Fatal("delete dropped the router")
	}
	for _, nb := range pruned.SearchNProbe(queries.Row(0), 10, 64, 2) {
		if nb.ID == 3 || nb.ID == 700 {
			t.Fatalf("deleted id %d surfaced under routing", nb.ID)
		}
	}

	compacted, err := pruned.Compact(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !compacted.Routed() || compacted.RoutingCentroids() != idx.RoutingCentroids() {
		t.Fatal("compact dropped the router")
	}
	if res := compacted.Search(data.Row(999), 1, 32); len(res) != 1 || res[0].ID != 999 || res[0].Dist != 0 {
		t.Fatalf("self query after compact returned %v", res)
	}
	// The whole chain still round-trips as v4.
	var buf bytes.Buffer
	if _, err := compacted.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndexFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Routed() {
		t.Fatal("mutated routed index lost its router in the round trip")
	}
}

func TestRoutedReadRejectsCorruptCentroids(t *testing.T) {
	idx, _, _ := buildRoutedIndex(t)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	// The routing trailer sits at the end: uint32 k, then one
	// vec.WriteMatrix (8-byte shape header + rows*dim float32s) per shard.
	trailer := 4
	for s := 0; s < idx.Shards(); s++ {
		trailer += 8 + idx.route.Centroids(s).N*idx.Dim()*4
	}
	kOff := len(blob) - trailer

	corrupt := func(name string, mutate func(b []byte) []byte) {
		b := mutate(append([]byte(nil), blob...))
		if _, err := ReadIndexFrom(bytes.NewReader(b)); err == nil {
			t.Fatalf("%s: corrupt routed index accepted", name)
		}
	}
	corrupt("truncated trailer", func(b []byte) []byte { return b[:len(b)-5] })
	corrupt("zero centroid count", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[kOff:], 0)
		return b
	})
	corrupt("absurd centroid count", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[kOff:], 1<<31)
		return b
	})
	corrupt("routing flag without trailer", func(b []byte) []byte { return b[:kOff] })
	corrupt("v3 with routing flag", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[4:8], 3)
		return b
	})
}
