package gkmeans

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gkmeans/internal/dataset"
)

func TestDefaultEfContract(t *testing.T) {
	cases := []struct {
		topK, ef, want int
	}{
		{10, 0, 40},   // non-positive ef selects 4·topK
		{4, 0, 32},    // … floored at 32
		{10, -7, 40},  // any non-positive value means "default"
		{10, 64, 64},  // explicit ef passes through
		{10, 10, 10},  // ef == topK passes through
		{50, 20, 50},  // ef < topK is raised to topK
		{100, 1, 100}, // … even from a tiny pool request
	}
	for _, c := range cases {
		if got := defaultEf(c.topK, c.ef); got != c.want {
			t.Errorf("defaultEf(%d, %d) = %d, want %d", c.topK, c.ef, got, c.want)
		}
	}
}

// Regression: topK larger than the explicit ef must still return topK
// results — the documented "ef < topK is raised to topK" contract.
func TestSearchTopKLargerThanEf(t *testing.T) {
	idx, queries := buildTestIndex(t)
	res := idx.Search(queries.Row(0), 50, 8)
	if len(res) != 50 {
		t.Fatalf("topK=50 ef=8 returned %d results, want 50", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i-1].Dist > res[i].Dist {
			t.Fatal("results not sorted by ascending distance")
		}
	}
	batch := idx.SearchBatch(queries, 50, 8)
	for qi, r := range batch {
		if len(r) != 50 {
			t.Fatalf("batch query %d: %d results, want 50", qi, len(r))
		}
	}
}

// Regression: topK larger than the index returns every indexed sample
// rather than panicking or padding.
func TestSearchTopKLargerThanIndex(t *testing.T) {
	data := dataset.SIFTLike(60, 3)
	idx, err := Build(context.Background(), data, WithKappa(8), WithXi(15), WithTau(3), WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	res := idx.Search(data.Row(0), 1000, 0)
	if len(res) != data.N {
		t.Fatalf("topK=1000 over %d samples returned %d results", data.N, len(res))
	}
	seen := make(map[int32]bool, len(res))
	for _, nb := range res {
		if seen[nb.ID] {
			t.Fatalf("duplicate id %d in exhaustive result", nb.ID)
		}
		seen[nb.ID] = true
	}
}

func TestSearchDimensionMismatchPanics(t *testing.T) {
	idx, _ := buildTestIndex(t)
	assertDimPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: dimension mismatch did not panic", name)
			}
			msg, ok := r.(string)
			if !ok || !strings.Contains(msg, "dimensionality") {
				t.Fatalf("%s: panic %v does not name the dimensionality mismatch", name, r)
			}
		}()
		fn()
	}
	assertDimPanic("Search short", func() { idx.Search(make([]float32, idx.Dim()-1), 5, 32) })
	assertDimPanic("Search long", func() { idx.Search(make([]float32, idx.Dim()+1), 5, 32) })
	assertDimPanic("SearchBatch", func() { idx.SearchBatch(NewMatrix(3, idx.Dim()+2), 5, 32) })
}

// An empty batch must not trip the dimensionality check (a zero-value
// matrix has Dim 0) and returns zero result lists.
func TestSearchBatchEmpty(t *testing.T) {
	idx, _ := buildTestIndex(t)
	if got := idx.SearchBatch(&Matrix{}, 5, 32); len(got) != 0 {
		t.Fatalf("empty batch returned %d result lists", len(got))
	}
}

func TestLoadVectorsDispatch(t *testing.T) {
	dir := t.TempDir()
	m := dataset.SIFTLike(20, 9) // quantised non-negative values fit bytes

	fpath := filepath.Join(dir, "x.fvecs")
	if err := SaveFvecs(fpath, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadVectors(fpath, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("fvecs round trip via LoadVectors mismatch")
	}

	bpath := filepath.Join(dir, "x.bvecs")
	f, err := os.Create(bpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteBvecs(f, m); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err = LoadVectors(bpath, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("bvecs round trip via LoadVectors mismatch")
	}
	if _, err := LoadBvecs(bpath, 5); err != nil {
		t.Fatalf("LoadBvecs: %v", err)
	}
}
