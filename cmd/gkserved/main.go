// Command gkserved serves persisted gkmeans indexes (.gkx files written by
// gkmeans.SaveIndex or `gkmeans -index`) over HTTP: approximate
// nearest-neighbour search — with concurrent single-query requests
// micro-batched through SearchBatch — graph-supported clustering, index
// listing/registration, per-endpoint metrics and health checking. Sharded
// indexes (gkmeans.WithShards / `gkmeans -shards`) load and serve
// transparently: searches fan out across the shards, /v1/indexes reports
// the shard count, and only the clustering endpoint is refused for them.
//
// Served indexes are mutable: /insert appends vectors and /delete
// tombstones rows. With -data DIR, every accepted write is fsynced to a
// per-index write-ahead log (DIR/<name>.wal) before the response and
// replayed on the next start, so acknowledged mutations survive a crash;
// the background compactor (-compact-interval) folds tombstoned and
// fragmented shards back into dense ones and checkpoints the index to
// DIR/<name>.gkx. Without -data, mutations are accepted but volatile.
//
// For heavy traffic the daemon hardens the read path with -timeout (every
// search/cluster request is answered 504 once its deadline expires;
// clients can tighten it per request), -max-inflight (excess concurrent
// searches are shed with 429 + Retry-After instead of queueing) and
// -cache (an epoch-invalidated per-index LRU of single-query results —
// hits are bit-identical to cold searches and mutations invalidate them
// via the index epoch). Prometheus metrics are exported at /metrics; see
// OPERATIONS.md for the full runbook.
//
//	gkserved -listen :8080 -data /var/lib/gkserved \
//	    -timeout 2s -max-inflight 256 -cache 65536 \
//	    -index sift=sift.gkx -index glove=glove.gkx
//
//	curl localhost:8080/healthz
//	curl localhost:8080/v1/indexes
//	curl -d '{"query":[...],"top_k":10}' localhost:8080/v1/indexes/sift/search
//	curl -d '{"vectors":[[...]]}' localhost:8080/v1/indexes/sift/insert
//	curl -d '{"ids":[17,42]}' localhost:8080/v1/indexes/sift/delete
//	curl -d '{"name":"new","path":"new.gkx"}' localhost:8080/v1/indexes
//	curl localhost:8080/debug/vars
//	curl localhost:8080/metrics
//
// On SIGINT/SIGTERM the daemon drains: the health check flips to 503, open
// micro-batches are flushed, in-flight requests finish (up to -drain), and
// only then does the process exit. Buffered (unflushed) inserts are left in
// the WAL and replayed on the next start.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gkmeans/internal/server"
	"gkmeans/internal/store"
)

// indexFlags collects repeated -index name=path.gkx arguments.
type indexFlags []struct{ name, path string }

func (f *indexFlags) String() string { return fmt.Sprintf("%d indexes", len(*f)) }

func (f *indexFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path.gkx, got %q", v)
	}
	*f = append(*f, struct{ name, path string }{name, path})
	return nil
}

func main() {
	var indexes indexFlags
	var (
		listen   = flag.String("listen", ":8080", "address to serve on")
		window   = flag.Duration("window", server.DefaultWindow, "micro-batch collection window (0 disables batching)")
		maxBatch = flag.Int("max-batch", server.DefaultMaxBatch, "max single queries coalesced into one SearchBatch")
		drain    = flag.Duration("drain", 15*time.Second, "shutdown grace period for in-flight requests")
		dataDir  = flag.String("data", "", "directory for write-ahead logs and checkpoints (empty: mutations are volatile)")
		memtable = flag.Int("memtable", server.DefaultMemtableThreshold, "buffered inserts that trigger a shard build")
		compact  = flag.Duration("compact-interval", time.Minute, "background compaction period (0 disables)")
		tombs    = flag.Float64("compact-tomb-ratio", store.DefaultPolicy.TombRatio, "deleted/rows ratio that queues a shard for compaction")
		frags    = flag.Int("compact-fragments", store.DefaultPolicy.MaxFragments, "shard count above which the smallest shards are merged")
		timeout  = flag.Duration("timeout", 0, "server-wide search/cluster deadline, answered with 504 when exceeded (0 disables)")
		inflight = flag.Int("max-inflight", 0, "concurrent search/cluster requests admitted before shedding 429s (0 disables)")
		retryAft = flag.Duration("retry-after", server.DefaultRetryAfter, "Retry-After hint attached to shed (429) responses")
		cache    = flag.Int("cache", 0, "per-index query-cache capacity in entries, epoch-invalidated (0 disables)")
	)
	flag.Var(&indexes, "index", "serve a persisted index as name=path.gkx (repeatable)")
	flag.Parse()

	cfg := server.Config{
		Window:            *window,
		MaxBatch:          *maxBatch,
		DataDir:           *dataDir,
		MemtableThreshold: *memtable,
		Policy:            store.Policy{TombRatio: *tombs, MaxFragments: *frags},
		CompactInterval:   *compact,
		RequestTimeout:    *timeout,
		MaxInFlight:       *inflight,
		RetryAfter:        *retryAft,
		CacheSize:         *cache,
	}
	logger := log.New(os.Stderr, "gkserved: ", log.LstdFlags)
	if err := run(logger, *listen, cfg, *drain, indexes); err != nil {
		logger.Fatal(err)
	}
}

func run(logger *log.Logger, listen string, cfg server.Config,
	drain time.Duration, indexes indexFlags) error {

	if cfg.Window <= 0 {
		cfg.Window = -1 // "-window 0" means no batching, not the server default
	}
	cfg.Logger = logger
	srv := server.New(cfg)
	for _, ix := range indexes {
		if err := srv.RegisterFile(ix.name, ix.path); err != nil {
			return err
		}
	}
	if len(indexes) == 0 {
		logger.Printf("no -index given; starting empty (register via POST /v1/indexes)")
	}

	hs := &http.Server{Addr: listen, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", listen)
		errc <- hs.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err // listener failed before any signal
	case <-ctx.Done():
	}

	logger.Printf("signal received, draining for up to %s", drain)
	srv.BeginShutdown()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Printf("drained, exiting")
	return nil
}
