// Command knngraph builds, inspects and evaluates approximate k-NN graphs
// from the command line. Both builders (gkmeans, Alg. 3, and the
// nndescent/KGraph baseline) go through the public Index API, so builds are
// Ctrl-C cancellable, run across -workers goroutines and can emit a whole
// search-ready index.
//
//	knngraph build -synth sift -n 20000 -kappa 50 -tau 10 -out g.knn
//	knngraph build -synth sift -n 20000 -index sift.gkx
//	knngraph build -data sift1m.fvecs -builder nndescent -workers 8 -out g.knn
//	knngraph stats -graph g.knn
//	knngraph recall -graph g.knn -synth sift -n 20000 -sample 200
//	knngraph merge -graph a.knn -with b.knn -out merged.knn
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"gkmeans"
	"gkmeans/internal/dataset"
	"gkmeans/internal/knngraph"
	"gkmeans/internal/vec"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = cmdBuild(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "recall":
		err = cmdRecall(os.Args[2:])
	case "merge":
		err = cmdMerge(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "knngraph:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: knngraph build|stats|recall|merge [flags]")
}

// loadData resolves the -data/-synth/-n flags common to build and recall.
func loadData(dataPath, synth string, n int, seed int64) (*vec.Matrix, error) {
	switch {
	case dataPath != "":
		return gkmeans.LoadVectors(dataPath, n)
	case synth != "":
		info, err := dataset.ByName(synth)
		if err != nil {
			return nil, err
		}
		return info.Gen(n, seed), nil
	default:
		return nil, fmt.Errorf("one of -data or -synth is required")
	}
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	dataPath := fs.String("data", "", "fvecs or bvecs input file")
	synth := fs.String("synth", "", "synthetic corpus: sift, gist, glove, vlad")
	n := fs.Int("n", 10000, "sample count / fvecs cap")
	kappa := fs.Int("kappa", 50, "neighbours per node")
	xi := fs.Int("xi", 50, "refinement cluster size (gkmeans builder)")
	tau := fs.Int("tau", 0, "construction rounds (0 = builder default: 10 gkmeans, 30-round nndescent cap)")
	builder := fs.String("builder", "gkmeans", "gkmeans (Alg. 3) or nndescent")
	workers := fs.Int("workers", 0, "parallel build workers (0 = GOMAXPROCS)")
	seed := fs.Int64("seed", 1, "RNG seed")
	out := fs.String("out", "graph.knn", "output file")
	indexOut := fs.String("index", "", "also write the whole search-ready index (.gkx) to this file")
	fs.Parse(args)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	data, err := loadData(*dataPath, *synth, *n, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("data: %d × %d\n", data.N, data.Dim)
	start := time.Now()
	idx, err := gkmeans.Build(ctx, data,
		gkmeans.WithKappa(*kappa), gkmeans.WithXi(*xi), gkmeans.WithTau(*tau),
		gkmeans.WithSeed(*seed), gkmeans.WithWorkers(*workers),
		gkmeans.WithGraphBuilder(*builder))
	if err != nil {
		return err
	}
	g := idx.Graph()
	if *indexOut != "" {
		if err := gkmeans.SaveIndex(*indexOut, idx); err != nil {
			return err
		}
		fmt.Println("index written to", *indexOut)
	}
	fmt.Printf("built with %s in %v (%d edges)\n",
		*builder, time.Since(start).Round(time.Millisecond), g.EdgeCount())
	if err := g.SaveFile(*out); err != nil {
		return err
	}
	fmt.Println("graph written to", *out)
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	graphPath := fs.String("graph", "", "graph file")
	fs.Parse(args)
	if *graphPath == "" {
		return fmt.Errorf("-graph is required")
	}
	g, err := knngraph.LoadFile(*graphPath)
	if err != nil {
		return err
	}
	st := g.Degrees()
	fmt.Printf("nodes: %d   kappa: %d   edges: %d\n", g.N(), g.Kappa, g.EdgeCount())
	fmt.Printf("out-degree mean: %.2f\n", st.OutMean)
	fmt.Printf("in-degree min/median/mean/max: %d / %d / %.2f / %d\n",
		st.MinIn, st.MedianIn, st.MeanIn, st.MaxIn)
	fmt.Printf("average edge distance: %.4f\n", g.AverageDistance())
	return nil
}

func cmdRecall(args []string) error {
	fs := flag.NewFlagSet("recall", flag.ExitOnError)
	graphPath := fs.String("graph", "", "graph file")
	dataPath := fs.String("data", "", "fvecs or bvecs input file the graph was built on")
	synth := fs.String("synth", "", "synthetic corpus the graph was built on")
	n := fs.Int("n", 10000, "sample count / fvecs cap")
	sample := fs.Int("sample", 200, "nodes sampled for ground truth")
	seed := fs.Int64("seed", 1, "RNG seed (must match build for -synth)")
	fs.Parse(args)
	if *graphPath == "" {
		return fmt.Errorf("-graph is required")
	}
	g, err := knngraph.LoadFile(*graphPath)
	if err != nil {
		return err
	}
	data, err := loadData(*dataPath, *synth, *n, *seed)
	if err != nil {
		return err
	}
	if data.N != g.N() {
		return fmt.Errorf("graph has %d nodes, data %d", g.N(), data.N)
	}
	// Ground truth on a node sample (the paper's VLAD10M protocol).
	stride := data.N / *sample
	if stride == 0 {
		stride = 1
	}
	hits, total := 0, 0
	for i := 0; i < data.N && total < *sample; i += stride {
		row := data.Row(i)
		best, bestD := -1, float32(0)
		for j := 0; j < data.N; j++ {
			if j == i {
				continue
			}
			if d := vec.L2Sqr(row, data.Row(j)); best < 0 || d < bestD {
				best, bestD = j, d
			}
		}
		total++
		if g.Contains(i, int32(best)) {
			hits++
		}
	}
	fmt.Printf("recall@top1 on %d sampled nodes: %.3f\n", total, float64(hits)/float64(total))
	return nil
}

func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	graphPath := fs.String("graph", "", "first graph file")
	withPath := fs.String("with", "", "second graph file")
	out := fs.String("out", "merged.knn", "output file")
	fs.Parse(args)
	if *graphPath == "" || *withPath == "" {
		return fmt.Errorf("-graph and -with are required")
	}
	a, err := knngraph.LoadFile(*graphPath)
	if err != nil {
		return err
	}
	b, err := knngraph.LoadFile(*withPath)
	if err != nil {
		return err
	}
	if err := knngraph.Merge(a, b); err != nil {
		return err
	}
	if err := a.SaveFile(*out); err != nil {
		return err
	}
	fmt.Printf("merged graph (%d edges) written to %s\n", a.EdgeCount(), *out)
	return nil
}
