// Command experiments regenerates every table and figure of the paper's
// evaluation section at laptop scale (problem sizes are scaled down so the
// full suite finishes in minutes; -scale multiplies them back up).
//
//	experiments -run all            # everything (can take ~20 min)
//	experiments -run fig2,table2    # selected experiments
//	experiments -run fig6 -scale 2  # double the default problem sizes
//	experiments -csv out/           # additionally write CSV files
//
// Available experiments: table1, fig1, fig2, fig4, fig5, fig6, fig7,
// table2, anns, ablation. (fig7 is the distortion companion of fig6 and is
// produced by the same sweep; both names run it.)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gkmeans/internal/bench"
)

func main() {
	var (
		run   = flag.String("run", "all", "comma-separated experiment list or 'all'")
		scale = flag.Float64("scale", 1, "size multiplier on every experiment")
		seed  = flag.Int64("seed", 1, "RNG seed")
		csv   = flag.String("csv", "", "directory to also write CSV files into")
	)
	flag.Parse()
	if err := realMain(*run, *scale, *seed, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func realMain(run string, scale float64, seed int64, csvDir string) error {
	want := map[string]bool{}
	for _, name := range strings.Split(run, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]
	sc := func(n int) int { return int(float64(n) * scale) }

	type experiment struct {
		name string
		fn   func() ([]*bench.Table, error)
	}
	experiments := []experiment{
		{"table1", func() ([]*bench.Table, error) {
			return []*bench.Table{bench.Table1()}, nil
		}},
		{"fig1", func() ([]*bench.Table, error) {
			t, err := bench.Fig1(bench.Fig1Config{N: sc(6000), Seed: seed})
			return []*bench.Table{t}, err
		}},
		{"fig2", func() ([]*bench.Table, error) {
			t, err := bench.Fig2(bench.Fig2Config{N: sc(6000), Seed: seed})
			return []*bench.Table{t}, err
		}},
		{"fig4", func() ([]*bench.Table, error) {
			t, err := bench.Fig4(bench.Fig4Config{N: sc(8000), Seed: seed})
			return []*bench.Table{t}, err
		}},
		{"fig5", func() ([]*bench.Table, error) {
			var out []*bench.Table
			for _, ds := range []string{"sift", "glove", "gist"} {
				tabs, err := bench.Fig5(ds, bench.Fig5Config{N: sc(8000), Seed: seed})
				if err != nil {
					return nil, err
				}
				out = append(out, tabs...)
			}
			return out, nil
		}},
		{"fig6", func() ([]*bench.Table, error) {
			var out []*bench.Table
			sizes := []int{sc(1000), sc(2000), sc(4000), sc(8000), sc(16000)}
			tabs, err := bench.Fig6Size(bench.Fig6Config{Sizes: sizes, Seed: seed})
			if err != nil {
				return nil, err
			}
			out = append(out, tabs...)
			tabs, err = bench.Fig6K(bench.Fig6Config{NForK: sc(8000), Seed: seed})
			if err != nil {
				return nil, err
			}
			return append(out, tabs...), nil
		}},
		{"table2", func() ([]*bench.Table, error) {
			t, err := bench.Table2(bench.Table2Config{N: sc(10000), Seed: seed})
			return []*bench.Table{t}, err
		}},
		{"anns", func() ([]*bench.Table, error) {
			t, err := bench.ANNS(bench.ANNSConfig{N: sc(8000), Seed: seed})
			return []*bench.Table{t}, err
		}},
		{"ablation", func() ([]*bench.Table, error) {
			t, err := bench.Ablation(bench.AblationConfig{N: sc(4000), Seed: seed})
			return []*bench.Table{t}, err
		}},
		{"baselines", func() ([]*bench.Table, error) {
			t, err := bench.Baselines(bench.BaselinesConfig{N: sc(5000), Seed: seed})
			return []*bench.Table{t}, err
		}},
		{"dims", func() ([]*bench.Table, error) {
			t, err := bench.Dims(bench.DimsConfig{N: sc(3000), Seed: seed})
			return []*bench.Table{t}, err
		}},
	}

	ran := 0
	for _, e := range experiments {
		// fig7 shares fig6's sweep.
		if !all && !want[e.name] && !(e.name == "fig6" && want["fig7"]) {
			continue
		}
		ran++
		fmt.Printf("--- %s ---\n", e.name)
		start := time.Now()
		tabs, err := e.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		for i, t := range tabs {
			fmt.Println(t.Render())
			if csvDir != "" {
				if err := writeCSV(csvDir, fmt.Sprintf("%s_%d.csv", e.name, i), t); err != nil {
					return err
				}
			}
		}
		fmt.Printf("(%s finished in %v)\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matches %q", run)
	}
	return nil
}

func writeCSV(dir, name string, t *bench.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
