// Command gkmeans clusters a dataset from the command line with the
// GK-means pipeline and optionally saves the labels, centroids and k-NN
// graph.
//
// Input is either an fvecs file (-data) or a named synthetic corpus
// (-synth sift|gist|glove|vlad with -n). Examples:
//
//	gkmeans -synth sift -n 10000 -k 500
//	gkmeans -data sift1m.fvecs -k 10000 -labels out.ivecs -centroids c.fvecs
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"time"

	"gkmeans"
	"gkmeans/internal/dataset"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "fvecs input file (alternative to -synth)")
		synth     = flag.String("synth", "", "synthetic corpus: sift, gist, glove or vlad")
		n         = flag.Int("n", 10000, "number of samples (synthetic input or fvecs cap)")
		k         = flag.Int("k", 1000, "number of clusters")
		kappa     = flag.Int("kappa", 50, "graph neighbours per sample (κ)")
		xi        = flag.Int("xi", 50, "refinement cluster size (ξ)")
		tau       = flag.Int("tau", 10, "graph construction rounds (τ)")
		maxIter   = flag.Int("iter", 50, "maximum optimisation epochs")
		seed      = flag.Int64("seed", 1, "RNG seed")
		trad      = flag.Bool("traditional", false, "use the GK-means− (nearest centroid) variant")
		labelsOut = flag.String("labels", "", "write labels to this ivecs file")
		centsOut  = flag.String("centroids", "", "write centroids to this fvecs file")
		graphOut  = flag.String("graph", "", "write the k-NN graph to this file")
	)
	flag.Parse()
	if err := run(*dataPath, *synth, *n, *k, *kappa, *xi, *tau, *maxIter, *seed, *trad,
		*labelsOut, *centsOut, *graphOut); err != nil {
		fmt.Fprintln(os.Stderr, "gkmeans:", err)
		os.Exit(1)
	}
}

func run(dataPath, synth string, n, k, kappa, xi, tau, maxIter int, seed int64,
	trad bool, labelsOut, centsOut, graphOut string) error {

	var data *gkmeans.Matrix
	switch {
	case dataPath != "":
		var err error
		data, err = gkmeans.LoadFvecs(dataPath, n)
		if err != nil {
			return fmt.Errorf("loading %s: %w", dataPath, err)
		}
	case synth != "":
		info, err := dataset.ByName(synth)
		if err != nil {
			return err
		}
		data = info.Gen(n, seed)
	default:
		return fmt.Errorf("one of -data or -synth is required")
	}
	fmt.Printf("data: %d × %d\n", data.N, data.Dim)

	start := time.Now()
	res, err := gkmeans.Cluster(data, k, gkmeans.Options{
		Kappa: kappa, Xi: xi, Tau: tau, MaxIter: maxIter, Seed: seed, Traditional: trad,
	})
	if err != nil {
		return err
	}
	fmt.Printf("clustered into %d clusters in %v\n", k, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  graph: %v   init: %v   iterations: %v (%d epochs)\n",
		res.GraphTime.Round(time.Millisecond), res.InitTime.Round(time.Millisecond),
		res.IterTime.Round(time.Millisecond), res.Iters)
	fmt.Printf("  average distortion: %.4f\n", res.Distortion(data))
	fmt.Printf("  avg candidate clusters per sample: %.1f (k = %d)\n", res.AvgCandidates, k)

	if labelsOut != "" {
		if err := writeLabels(labelsOut, res.Labels); err != nil {
			return err
		}
		fmt.Println("labels written to", labelsOut)
	}
	if centsOut != "" {
		if err := gkmeans.SaveFvecs(centsOut, res.Centroids); err != nil {
			return err
		}
		fmt.Println("centroids written to", centsOut)
	}
	if graphOut != "" {
		if err := res.Graph.SaveFile(graphOut); err != nil {
			return err
		}
		fmt.Println("graph written to", graphOut)
	}
	return nil
}

// writeLabels stores the labels as a single ivecs record.
func writeLabels(path string, labels []int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	row := make([]int32, len(labels))
	for i, l := range labels {
		row[i] = int32(l)
	}
	if err := binary.Write(f, binary.LittleEndian, int32(len(row))); err != nil {
		return err
	}
	return binary.Write(f, binary.LittleEndian, row)
}
