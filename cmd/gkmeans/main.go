// Command gkmeans clusters a dataset from the command line with the
// GK-means pipeline and optionally saves the labels, centroids, k-NN graph
// or the whole search-ready index. Ctrl-C cancels a run cleanly between
// graph rounds / optimisation epochs.
//
// Input is either an fvecs or bvecs file (-data, dispatching on the
// extension) or a named synthetic corpus (-synth sift|gist|glove|vlad with
// -n). With -shards N the tool skips clustering and instead builds a
// sharded search index (N independently built sub-indexes, searched by
// fan-out; see gkmeans.WithShards), which requires -index; -routing K adds
// per-shard routing centroids so searches can probe only the nearest
// shards (gkmeans.WithRouting). Examples:
//
//	gkmeans -synth sift -n 10000 -k 500
//	gkmeans -data sift1m.fvecs -k 10000 -labels out.ivecs -centroids c.fvecs
//	gkmeans -synth sift -n 50000 -k 1000 -index sift.gkx -progress
//	gkmeans -data sift1m.bvecs -shards 8 -index sift-sharded.gkx
//	gkmeans -synth sift -n 50000 -shards 8 -routing 32 -index sift-routed.gkx
package main

import (
	"context"
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"gkmeans"
	"gkmeans/internal/dataset"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "fvecs or bvecs input file (alternative to -synth)")
		synth     = flag.String("synth", "", "synthetic corpus: sift, gist, glove or vlad")
		n         = flag.Int("n", 10000, "number of samples (synthetic input or fvecs cap)")
		k         = flag.Int("k", 1000, "number of clusters")
		kappa     = flag.Int("kappa", 50, "graph neighbours per sample (κ)")
		xi        = flag.Int("xi", 50, "refinement cluster size (ξ)")
		tau       = flag.Int("tau", 10, "graph construction rounds (τ)")
		maxIter   = flag.Int("iter", 50, "maximum optimisation epochs")
		seed      = flag.Int64("seed", 1, "RNG seed")
		trad      = flag.Bool("traditional", false, "use the GK-means− (nearest centroid) variant")
		progress  = flag.Bool("progress", false, "print per-stage progress")
		labelsOut = flag.String("labels", "", "write labels to this ivecs file")
		centsOut  = flag.String("centroids", "", "write centroids to this fvecs file")
		graphOut  = flag.String("graph", "", "write the k-NN graph to this file")
		indexOut  = flag.String("index", "", "write the whole search-ready index to this file")
		shards    = flag.Int("shards", 0, "build a sharded search index instead of clustering (requires -index)")
		routing   = flag.Int("routing", 0, "routing centroids per shard (requires -shards; searches can then probe only the nearest shards)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if err := run(ctx, *dataPath, *synth, *n, *k, *kappa, *xi, *tau, *maxIter, *seed, *trad,
		*progress, *labelsOut, *centsOut, *graphOut, *indexOut, *shards, *routing); err != nil {
		fmt.Fprintln(os.Stderr, "gkmeans:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, dataPath, synth string, n, k, kappa, xi, tau, maxIter int,
	seed int64, trad, progress bool, labelsOut, centsOut, graphOut, indexOut string, shards, routing int) error {

	if shards > 1 {
		switch {
		case indexOut == "":
			return fmt.Errorf("-shards needs -index: a sharded build produces a search index, nothing else")
		case labelsOut != "" || centsOut != "" || graphOut != "":
			return fmt.Errorf("-shards cannot emit labels, centroids or a single graph (sharded indexes have no global clustering or graph)")
		}
	} else {
		if routing > 0 {
			return fmt.Errorf("-routing needs -shards: routing centroids direct the sharded fan-out")
		}
		if k <= 0 {
			return fmt.Errorf("-k must be positive, got %d", k)
		}
	}
	var data *gkmeans.Matrix
	switch {
	case dataPath != "":
		var err error
		data, err = gkmeans.LoadVectors(dataPath, n)
		if err != nil {
			return fmt.Errorf("loading %s: %w", dataPath, err)
		}
	case synth != "":
		info, err := dataset.ByName(synth)
		if err != nil {
			return err
		}
		data = info.Gen(n, seed)
	default:
		return fmt.Errorf("one of -data or -synth is required")
	}
	fmt.Printf("data: %d × %d\n", data.N, data.Dim)

	opts := []gkmeans.Option{
		gkmeans.WithKappa(kappa), gkmeans.WithXi(xi), gkmeans.WithTau(tau),
		gkmeans.WithMaxIter(maxIter), gkmeans.WithSeed(seed),
	}
	if shards > 1 {
		opts = append(opts, gkmeans.WithShards(shards))
		if routing > 0 {
			opts = append(opts, gkmeans.WithRouting(routing))
		}
	} else {
		opts = append(opts, gkmeans.WithClusters(k))
	}
	if trad {
		opts = append(opts, gkmeans.WithTraditional())
	}
	var openLine bool
	if progress {
		opts = append(opts, gkmeans.WithProgress(func(stage string, done, total int) {
			fmt.Printf("\r  %-8s %d/%d", stage, done, total)
			openLine = done != total
			if !openLine {
				fmt.Println()
			}
		}))
	}

	start := time.Now()
	idx, err := gkmeans.Build(ctx, data, opts...)
	if openLine {
		fmt.Println() // a stage ended early (e.g. clustering converged)
	}
	if err != nil {
		return err
	}
	if shards > 1 {
		routed := ""
		if idx.Routed() {
			routed = fmt.Sprintf(", %d routing centroids/shard", idx.RoutingCentroids())
		}
		fmt.Printf("built %d-shard index in %v (graph time %v%s)\n",
			idx.Shards(), time.Since(start).Round(time.Millisecond),
			idx.GraphTime().Round(time.Millisecond), routed)
		if err := gkmeans.SaveIndex(indexOut, idx); err != nil {
			return err
		}
		fmt.Println("index written to", indexOut)
		return nil
	}
	res := idx.Clusters()
	fmt.Printf("clustered into %d clusters in %v\n", k, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  graph: %v   init: %v   iterations: %v (%d epochs)\n",
		idx.GraphTime().Round(time.Millisecond), res.InitTime.Round(time.Millisecond),
		res.IterTime.Round(time.Millisecond), res.Iters)
	fmt.Printf("  average distortion: %.4f\n", res.Distortion(data))
	fmt.Printf("  avg candidate clusters per sample: %.1f (k = %d)\n", res.AvgCandidates, k)

	if labelsOut != "" {
		if err := writeLabels(labelsOut, res.Labels); err != nil {
			return err
		}
		fmt.Println("labels written to", labelsOut)
	}
	if centsOut != "" {
		if err := gkmeans.SaveFvecs(centsOut, res.Centroids); err != nil {
			return err
		}
		fmt.Println("centroids written to", centsOut)
	}
	if graphOut != "" {
		if err := idx.Graph().SaveFile(graphOut); err != nil {
			return err
		}
		fmt.Println("graph written to", graphOut)
	}
	if indexOut != "" {
		if err := gkmeans.SaveIndex(indexOut, idx); err != nil {
			return err
		}
		fmt.Println("index written to", indexOut)
	}
	return nil
}

// writeLabels stores the labels as a single ivecs record.
func writeLabels(path string, labels []int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	row := make([]int32, len(labels))
	for i, l := range labels {
		row[i] = int32(l)
	}
	if err := binary.Write(f, binary.LittleEndian, int32(len(row))); err != nil {
		return err
	}
	return binary.Write(f, binary.LittleEndian, row)
}
