// Command gkvet is the repo's vet: it runs `go vet` plus the five
// repo-specific analyzers from internal/analysis over the given package
// patterns and exits non-zero on any finding. CI gates on it; run it
// locally with
//
//	go run ./cmd/gkvet ./...
//
// The analyzers enforce invariants ordinary vet cannot know about:
//
//	detrand    deterministic build packages must not use math/rand or
//	           wall-clock seeds — randomness comes from seeded splitmix
//	           streams (the bit-identical-output guarantee)
//	hotalloc   //gk:hotpath functions (search path, distance kernels)
//	           must not allocate
//	poolput    sync.Pool scratch must be returned on every exit path
//	int32cast  int→int32/uint32 narrowing in id/persistence code must be
//	           bounds-checked or go through internal/checked
//	errsink    persistence writes must not discard error results
//
// Flags:
//
//	-novet    skip the `go vet` pass (when vet already ran separately)
//	-list     print the analyzer names and docs and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"gkmeans/internal/analysis"
)

func main() {
	novet := flag.Bool("novet", false, "skip the go vet pass")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Printf("%-10s %s\n", a.Name, doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if !*novet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gkvet: %v\n", err)
		os.Exit(2)
	}
	for _, pkg := range pkgs {
		for _, err := range pkg.Errors {
			fmt.Fprintf(os.Stderr, "gkvet: %s: %v\n", pkg.PkgPath, err)
			failed = true
		}
	}
	diags, err := analysis.RunAnalyzers(pkgs, analysis.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "gkvet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		pos := positionOf(pkgs, d)
		fmt.Printf("%s: %s [%s]\n", pos, d.Message, d.Analyzer)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// positionOf resolves a diagnostic position against the shared FileSet
// (every package loaded by one Load call shares it).
func positionOf(pkgs []*analysis.Package, d analysis.Diagnostic) string {
	if len(pkgs) == 0 {
		return "-"
	}
	return pkgs[0].Fset.Position(d.Pos).String()
}
