// Command gkbench benchmarks the build and search hot paths and records the
// result as a JSON perf trajectory. It builds a k-NN graph over a corpus
// (synthetic or fvecs/bvecs), holds out a query set, then measures graph
// build time (optionally swept over worker counts, with speedup, rounds and
// distance-computation counters), single-query Search latency percentiles
// with per-query work counters, SearchBatch throughput and recall@k against
// exact ground truth across a topK×ef grid. The report is printed as a
// table and written to BENCH_search.json (see -out) so successive PRs leave
// comparable numbers.
//
// With -compare OLD.json the fresh run is additionally diffed against a
// committed baseline and the process exits non-zero when p50 latency or
// build time regress beyond -max-p50-regress/-max-build-regress or recall
// drops more than -max-recall-drop — the CI perf-regression gate.
//
// With -shards N the corpus is indexed as N independently built shards
// (gkmeans.WithShards) and the same grid is measured through the fan-out
// search path, so sharded and monolithic recall/latency can be compared on
// identical data. A sharded report records its shard count and is only
// -compare-able against a baseline with the same one.
//
// Adding -routing K builds the sharded index with K routing centroids per
// shard (gkmeans.WithRouting) and -nprobe lists the shard-probe caps to
// measure per cell, making the recall-vs-work trade of routed fan-out part
// of the trajectory. -quick-routed is the CI preset for that path, gated
// against BENCH_search_routed.json.
//
// With -dtype uint8 the corpus (which must be exactly byte-valued — the
// synthetic sift corpus and real bvecs data are) is indexed at one byte per
// value and scanned with the exact integer kernels; recall and work
// counters match the float32 run bit for bit, while dataset_bytes records
// the 4x memory saving. -dtype composes with -quick (the CI uint8 gate,
// against BENCH_u8_quick.json) and with -shards/-routing.
//
// With -http URL the harness instead drives a live gkserved daemon through
// the Go client at -http-conc concurrency, cycling -http-distinct distinct
// queries so a cache-enabled server (gkserved -cache) answers the repeats
// from its epoch-invalidated query cache; the report (BENCH_http.json)
// records end-to-end latency percentiles plus the server's cache hit/miss
// deltas. -quick-http is the self-contained preset: it builds a small index
// in-process, serves it over a loopback listener twice — cache off, then
// cache on — and commits both runs to one report, so the file itself shows
// the p50 the cache saves.
//
// Examples:
//
//	gkbench -quick                            # CI smoke preset, ~seconds
//	gkbench -quick -compare BENCH_search.json # CI perf gate
//	gkbench -quick-routed -compare BENCH_search_routed.json
//	gkbench -quick-http                       # cache-off vs cache-on, in-process
//	gkbench -http http://127.0.0.1:8080 -http-index sift -http-conc 32
//	gkbench -synth sift -n 50000 -queries 500 -builder nndescent
//	gkbench -synth sift -n 50000 -shards 4    # sharded index, same grid
//	gkbench -synth sift -n 50000 -shards 4 -routing 8 -nprobe 1,2,4
//	gkbench -data sift1m.fvecs -n 100000 -topk 1,10,100 -ef 32,64,128,256
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gkmeans"
	"gkmeans/internal/bench"
)

// options collects the parsed flag set for one gkbench run.
type options struct {
	cfg         bench.SearchBenchConfig
	quick       bool
	quickRouted bool
	dataPath    string
	out         string
	outSet      bool
	quiet       bool
	comparePath string
	thresholds  bench.CompareThresholds

	httpCfg   bench.HTTPBenchConfig
	quickHTTP bool
}

func main() {
	var (
		opt      options
		quick    = flag.Bool("quick", false, "small fixed preset for CI: sift 2000×128, topK 10, ef 16/32/64, build sweep 1/2/4")
		quickR   = flag.Bool("quick-routed", false, "small fixed routed preset for CI: sift 4000×128, 4 shards, 4 centroids/shard, nprobe 1/2/4")
		synth    = flag.String("synth", "sift", "synthetic corpus: sift, gist, glove or vlad")
		dataPath = flag.String("data", "", "fvecs or bvecs input file (overrides -synth)")
		n        = flag.Int("n", 20000, "corpus size (synthetic count or file row cap)")
		queries  = flag.Int("queries", 200, "held-out query count")
		kappa    = flag.Int("kappa", 20, "graph neighbours per sample (κ)")
		xi       = flag.Int("xi", 50, "refinement cluster size (ξ)")
		tau      = flag.Int("tau", 8, "graph construction rounds (τ)")
		seed     = flag.Int64("seed", 1, "RNG seed")
		entries  = flag.Int("entries", 0, "search entry points (0 = default)")
		workers  = flag.Int("workers", 0, "build + SearchBatch workers (0 = GOMAXPROCS)")
		builder  = flag.String("builder", "gkmeans", "graph builder: gkmeans (Alg. 3) or nndescent")
		dtype    = flag.String("dtype", "float32", "dataset element type: float32, or uint8 for the integer distance path (byte-valued corpora only; composes with -quick and -shards)")
		shards   = flag.Int("shards", 0, "build a sharded index with this many shards (<=1 = monolithic)")
		routing  = flag.Int("routing", 0, "routing centroids per shard (gkmeans.WithRouting; 0 = unrouted, needs -shards)")
		nprobes  = flag.String("nprobe", "", "comma-separated shard-probe caps to measure per cell (routed runs only)")
		bworkers = flag.String("build-workers", "1,2,4", "comma-separated worker counts for the build sweep ('' disables)")
		topks    = flag.String("topk", "1,10", "comma-separated topK grid")
		efs      = flag.String("ef", "16,32,64,128", "comma-separated ef grid")
		out      = flag.String("out", "BENCH_search.json", "JSON report path ('' disables; http modes default to BENCH_http.json)")
		quiet    = flag.Bool("quiet", false, "suppress progress lines")

		httpURL   = flag.String("http", "", "drive a live gkserved at this base URL instead of benching in-process")
		httpIndex = flag.String("http-index", "", "served index name to query (http mode)")
		httpConc  = flag.Int("http-conc", 8, "concurrent client workers (http modes)")
		httpReqs  = flag.Int("http-requests", 2000, "timed search requests (http modes)")
		httpDist  = flag.Int("http-distinct", 64, "distinct query pool cycled by the workload (http modes)")
		quickHTTP = flag.Bool("quick-http", false, "self-contained cache-off vs cache-on HTTP preset over a loopback server")

		compare   = flag.String("compare", "", "baseline report to diff against; regressions fail the run")
		maxP50    = flag.Float64("max-p50-regress", 0.25, "allowed fractional p50 latency increase per cell")
		maxBuild  = flag.Float64("max-build-regress", 0.25, "allowed fractional graph build-time increase")
		maxRecall = flag.Float64("max-recall-drop", 0.01, "allowed absolute recall@k decrease per cell")
		latSlack  = flag.Float64("latency-slack-us", 10, "absolute µs below which p50 increases are never flagged (negative disables)")
		bldSlack  = flag.Float64("build-slack-s", 0.25, "absolute seconds below which build-time increases are never flagged (negative disables)")
	)
	flag.Parse()

	opt.quick, opt.quickRouted, opt.quickHTTP = *quick, *quickR, *quickHTTP
	opt.dataPath, opt.out, opt.quiet = *dataPath, *out, *quiet
	opt.comparePath = *compare
	opt.httpCfg = bench.HTTPBenchConfig{
		BaseURL: *httpURL, Index: *httpIndex,
		Concurrency: *httpConc, Requests: *httpReqs, Distinct: *httpDist,
		TopK: 10, Ef: 64, Seed: *seed,
	}
	flag.Visit(func(fl *flag.Flag) {
		if fl.Name == "out" {
			opt.outSet = true
		}
	})
	opt.thresholds = bench.CompareThresholds{
		MaxLatencyRegress: *maxP50,
		MaxBuildRegress:   *maxBuild,
		MaxRecallDrop:     *maxRecall,
		LatencySlackUS:    *latSlack,
		BuildSlackSeconds: *bldSlack,
	}
	opt.cfg = bench.SearchBenchConfig{
		Dataset: *synth, N: *n, Queries: *queries,
		Kappa: *kappa, Xi: *xi, Tau: *tau, Seed: *seed,
		Entries: *entries, Workers: *workers, Builder: *builder,
		Shards: *shards, Routing: *routing, DType: *dtype,
	}
	var err error
	if opt.cfg.TopKs, err = parseGrid(*topks); err != nil {
		fatal(fmt.Errorf("-topk: %w", err))
	}
	if opt.cfg.Efs, err = parseGrid(*efs); err != nil {
		fatal(fmt.Errorf("-ef: %w", err))
	}
	if *bworkers != "" {
		if opt.cfg.BuildWorkers, err = parseGrid(*bworkers); err != nil {
			fatal(fmt.Errorf("-build-workers: %w", err))
		}
	}
	if *nprobes != "" {
		if opt.cfg.NProbes, err = parseGrid(*nprobes); err != nil {
			fatal(fmt.Errorf("-nprobe: %w", err))
		}
	}
	if err := run(opt); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gkbench:", err)
	os.Exit(1)
}

func run(opt options) error {
	if opt.quickHTTP || opt.httpCfg.BaseURL != "" {
		return runHTTP(opt)
	}
	cfg := opt.cfg
	if opt.quick {
		// The CI smoke preset: small enough for seconds, large enough that
		// recall, the early-exit savings and the build-sweep speedup are
		// visible in the trajectory. The builder and seed are kept from the
		// flags so the preset can still exercise nndescent.
		cfg.Dataset, cfg.Data = "sift", nil
		cfg.N, cfg.Queries = 2000, 100
		cfg.Kappa, cfg.Xi, cfg.Tau = 10, 25, 4
		cfg.TopKs, cfg.Efs = []int{10}, []int{16, 32, 64}
		// cfg.BuildWorkers is left alone: the -build-workers default is
		// already the preset's 1/2/4 sweep, and an explicit flag (including
		// '' to disable) must win over the preset.
	} else if opt.quickRouted {
		// The routed CI preset: the smallest corpus where a 4-shard routed
		// index still separates the nprobe columns (fewer probes → fewer
		// distance comps, recall within a few points of full fan-out).
		// nprobe 4 == the shard count, so that column is bit-identical to
		// unrouted fan-out and anchors the gate.
		cfg.Dataset, cfg.Data = "sift", nil
		cfg.N, cfg.Queries = 4000, 100
		cfg.Kappa, cfg.Xi, cfg.Tau = 10, 25, 4
		cfg.Shards, cfg.Routing = 4, 4
		cfg.TopKs, cfg.Efs = []int{10}, []int{64}
		cfg.NProbes = []int{1, 2, 4}
		cfg.BuildWorkers = nil
	} else if opt.dataPath != "" {
		var err error
		if cfg.Data, err = gkmeans.LoadVectors(opt.dataPath, cfg.N); err != nil {
			return fmt.Errorf("loading %s: %w", opt.dataPath, err)
		}
		cfg.Dataset = opt.dataPath
	}

	logf := func(format string, args ...any) {
		fmt.Printf("  "+format+"\n", args...)
	}
	if opt.quiet {
		logf = nil
	}
	rep, err := bench.RunSearchBench(cfg, logf)
	if err != nil {
		return err
	}

	fmt.Println()
	fmt.Print(rep.Summary().Render())
	if rep.Shards > 1 {
		fmt.Printf("build: %s, %d shards in %.2fs (sequential shard builds, WithWorkers each)\n",
			rep.Build.Builder, rep.Shards, rep.Build.GraphSeconds)
	} else {
		fmt.Printf("build: %s, graph %.2fs (%d rounds, %d dist comps), searcher %.3fs, %d edges, %d entry points\n",
			rep.Build.Builder, rep.Build.GraphSeconds, rep.Build.Rounds, rep.Build.DistComps,
			rep.Build.SearcherSeconds, rep.Build.GraphEdges, rep.Build.EntryPoints)
	}
	for _, pt := range rep.Build.Sweep {
		fmt.Printf("build sweep: workers=%-2d %.3fs  speedup %.2fx  graph recall %.3f\n",
			pt.Workers, pt.Seconds, pt.Speedup, pt.GraphRecall)
	}
	if len(rep.Build.Sweep) > 0 && !rep.Build.Deterministic {
		fmt.Println("WARNING: graphs differed across the build sweep — determinism regression")
	}

	if opt.out != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(opt.out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("report written to", opt.out)
	}

	if opt.comparePath == "" {
		return nil
	}
	old, err := bench.LoadReport(opt.comparePath)
	if err != nil {
		return fmt.Errorf("loading baseline: %w", err)
	}
	regs, err := bench.CompareReports(old, rep, opt.thresholds)
	if err != nil {
		return err
	}
	if len(regs) == 0 {
		fmt.Printf("compare: no regressions vs %s\n", opt.comparePath)
		return nil
	}
	for _, r := range regs {
		fmt.Fprintln(os.Stderr, "REGRESSION:", r)
	}
	return fmt.Errorf("%d perf regression(s) vs %s — investigate, or refresh the baseline if the change is intentional", len(regs), opt.comparePath)
}

// runHTTP is the HTTP-mode entry: -http drives a live daemon, -quick-http
// serves a fresh in-process index twice (cache off/on) over loopback. The
// single measured grid cell is the first value of the -topk/-ef grids.
func runHTTP(opt options) error {
	cfg := opt.httpCfg
	cfg.TopK, cfg.Ef = opt.cfg.TopKs[0], opt.cfg.Efs[0]
	logf := func(format string, args ...any) {
		fmt.Printf("  "+format+"\n", args...)
	}
	if opt.quiet {
		logf = nil
	}

	var (
		rep *bench.HTTPReport
		err error
	)
	if opt.quickHTTP {
		// The preset corpus/cache sizing: big enough that a cold search
		// costs visibly more than a cache hit, small enough for CI seconds.
		// The cache holds the whole distinct pool, so after warmup every
		// cache-on request is a hit.
		rep, err = bench.RunHTTPCachePair(cfg, 4000, 4096, logf)
	} else {
		rep, err = bench.RunHTTPBench(cfg, logf)
	}
	if err != nil {
		return err
	}

	fmt.Println()
	fmt.Print(rep.Summary().Render())
	if len(rep.Runs) == 2 && rep.Runs[0].P50US > 0 {
		fmt.Printf("cache-on p50 is %.1f%% of cache-off (%.0fµs vs %.0fµs)\n",
			100*rep.Runs[1].P50US/rep.Runs[0].P50US, rep.Runs[1].P50US, rep.Runs[0].P50US)
	}

	out := opt.out
	if !opt.outSet {
		out = "BENCH_http.json"
	}
	if out != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("report written to", out)
	}
	return nil
}

// parseGrid parses a comma-separated list of positive ints.
func parseGrid(s string) ([]int, error) {
	var grid []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("grid values must be positive, got %d", v)
		}
		grid = append(grid, v)
	}
	if len(grid) == 0 {
		return nil, fmt.Errorf("empty grid")
	}
	return grid, nil
}
