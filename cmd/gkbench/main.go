// Command gkbench benchmarks the search hot path and records the result as
// a JSON perf trajectory. It builds a k-NN graph over a corpus (synthetic
// or fvecs/bvecs), holds out a query set, then measures Build time,
// single-query Search latency percentiles with per-query work counters,
// SearchBatch throughput and recall@k against exact ground truth across a
// topK×ef grid. The report is printed as a table and written to
// BENCH_search.json (see -out) so successive PRs leave comparable numbers.
//
// Examples:
//
//	gkbench -quick                            # CI smoke preset, ~seconds
//	gkbench -synth sift -n 50000 -queries 500
//	gkbench -data sift1m.fvecs -n 100000 -topk 1,10,100 -ef 32,64,128,256
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gkmeans"
	"gkmeans/internal/bench"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "small fixed preset for CI: sift 2000×128, topK 10, ef 16/32/64")
		synth    = flag.String("synth", "sift", "synthetic corpus: sift, gist, glove or vlad")
		dataPath = flag.String("data", "", "fvecs or bvecs input file (overrides -synth)")
		n        = flag.Int("n", 20000, "corpus size (synthetic count or file row cap)")
		queries  = flag.Int("queries", 200, "held-out query count")
		kappa    = flag.Int("kappa", 20, "graph neighbours per sample (κ)")
		xi       = flag.Int("xi", 50, "refinement cluster size (ξ)")
		tau      = flag.Int("tau", 8, "graph construction rounds (τ)")
		seed     = flag.Int64("seed", 1, "RNG seed")
		entries  = flag.Int("entries", 0, "search entry points (0 = default)")
		workers  = flag.Int("workers", 0, "SearchBatch workers (0 = GOMAXPROCS)")
		topks    = flag.String("topk", "1,10", "comma-separated topK grid")
		efs      = flag.String("ef", "16,32,64,128", "comma-separated ef grid")
		out      = flag.String("out", "BENCH_search.json", "JSON report path ('' disables)")
		quiet    = flag.Bool("quiet", false, "suppress progress lines")
	)
	flag.Parse()

	if err := run(*quick, *synth, *dataPath, *n, *queries, *kappa, *xi, *tau, *seed,
		*entries, *workers, *topks, *efs, *out, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "gkbench:", err)
		os.Exit(1)
	}
}

func run(quick bool, synth, dataPath string, n, queries, kappa, xi, tau int, seed int64,
	entries, workers int, topks, efs, out string, quiet bool) error {

	cfg := bench.SearchBenchConfig{
		Dataset: synth, N: n, Queries: queries,
		Kappa: kappa, Xi: xi, Tau: tau, Seed: seed,
		Entries: entries, Workers: workers,
	}
	var err error
	if cfg.TopKs, err = parseGrid(topks); err != nil {
		return fmt.Errorf("-topk: %w", err)
	}
	if cfg.Efs, err = parseGrid(efs); err != nil {
		return fmt.Errorf("-ef: %w", err)
	}
	if quick {
		// The CI smoke preset: small enough for seconds, large enough that
		// recall and the early-exit savings are visible in the trajectory.
		cfg.Dataset, cfg.Data = "sift", nil
		cfg.N, cfg.Queries = 2000, 100
		cfg.Kappa, cfg.Xi, cfg.Tau = 10, 25, 4
		cfg.TopKs, cfg.Efs = []int{10}, []int{16, 32, 64}
	} else if dataPath != "" {
		if cfg.Data, err = gkmeans.LoadVectors(dataPath, n); err != nil {
			return fmt.Errorf("loading %s: %w", dataPath, err)
		}
		cfg.Dataset = dataPath
	}

	logf := func(format string, args ...any) {
		fmt.Printf("  "+format+"\n", args...)
	}
	if quiet {
		logf = nil
	}
	rep, err := bench.RunSearchBench(cfg, logf)
	if err != nil {
		return err
	}

	fmt.Println()
	fmt.Print(rep.Summary().Render())
	fmt.Printf("build: graph %.2fs, searcher %.3fs, %d edges, %d entry points\n",
		rep.Build.GraphSeconds, rep.Build.SearcherSeconds, rep.Build.GraphEdges, rep.Build.EntryPoints)

	if out == "" {
		return nil
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("report written to", out)
	return nil
}

// parseGrid parses a comma-separated list of positive ints.
func parseGrid(s string) ([]int, error) {
	var grid []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("grid values must be positive, got %d", v)
		}
		grid = append(grid, v)
	}
	if len(grid) == 0 {
		return nil, fmt.Errorf("empty grid")
	}
	return grid, nil
}
