package gkmeans_test

// Markdown link check for the maintained doc pages: every relative link
// must point at an existing file, and every intra-repo anchor at a real
// heading. CI runs this in the docs job so README/ARCHITECTURE references
// cannot rot as files move. PAPERS.md and SNIPPETS.md are excluded — they
// are retrieved source material, not documentation this repo maintains.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// inlineLink matches [text](target); images ![alt](target) share the
// bracket-paren shape and are caught by the same expression.
var inlineLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

var skippedDocs = map[string]bool{
	"PAPERS.md":   true,
	"SNIPPETS.md": true,
}

func TestMarkdownLinks(t *testing.T) {
	pages, err := filepath.Glob("*.md")
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) == 0 {
		t.Fatal("no markdown pages found — test running in the wrong directory?")
	}
	checked := 0
	for _, page := range pages {
		if skippedDocs[page] {
			continue
		}
		blob, err := os.ReadFile(page)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range inlineLink.FindAllStringSubmatch(string(blob), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue // external; not checked offline
			}
			checked++
			file, anchor, _ := strings.Cut(target, "#")
			if file == "" {
				file = page // pure anchor: #section within the same page
			}
			if strings.Contains(file, "..") || strings.HasPrefix(file, "/") {
				t.Errorf("%s: link %q escapes the repository", page, target)
				continue
			}
			if _, err := os.Stat(filepath.FromSlash(file)); err != nil {
				t.Errorf("%s: link target %q does not exist", page, target)
				continue
			}
			if anchor != "" && strings.HasSuffix(file, ".md") {
				if !hasAnchor(t, file, anchor) {
					t.Errorf("%s: link %q: no heading for anchor #%s in %s", page, target, anchor, file)
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no relative links checked — the extraction regex may have rotted")
	}
}

// hasAnchor reports whether the markdown file has a heading whose
// GitHub-style slug equals anchor (lowercase, spaces to hyphens,
// underscores kept, other punctuation dropped).
func hasAnchor(t *testing.T, file, anchor string) bool {
	t.Helper()
	blob, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(blob), "\n") {
		if !strings.HasPrefix(line, "#") {
			continue
		}
		heading := strings.TrimLeft(line, "# ")
		if slugify(heading) == anchor {
			return true
		}
	}
	return false
}

func slugify(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(heading)) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		case r == ' ', r == '-':
			b.WriteByte('-')
		}
	}
	return b.String()
}
