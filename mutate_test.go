package gkmeans

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"gkmeans/internal/dataset"
	"gkmeans/internal/vec"
)

// liveSearch is the test oracle: exact nearest neighbours over the live
// (non-deleted) rows only, by external id.
func liveSearch(idx *Index, q []float32, topK int) []Neighbor {
	dead := map[int32]bool{}
	for s := 0; s < idx.shardCount(); s++ {
		t := idx.shardTomb(s)
		if t == nil {
			continue
		}
		for l := 0; l < t.Len(); l++ {
			if !t.Get(l) {
				continue
			}
			if ids := idx.shardIDMap(s); ids != nil {
				dead[ids[l]] = true
			} else {
				dead[idx.shardBaseOf(s)+int32(l)] = true
			}
		}
	}
	var all []Neighbor
	for s := 0; s < idx.shardCount(); s++ {
		var sh *Index
		if idx.Sharded() {
			sh = idx.shards[s]
		} else {
			sh = idx
		}
		for l := 0; l < sh.N(); l++ {
			id := idx.shardBaseOf(s) + int32(l)
			if ids := idx.shardIDMap(s); ids != nil {
				id = ids[l]
			}
			if dead[id] {
				continue
			}
			all = append(all, Neighbor{ID: id, Dist: vec.L2Sqr(q, sh.Data().Row(l))})
		}
	}
	res := mergeShardResults([][]Neighbor{all}, topK)
	return res
}

func TestAppendGrowsIndex(t *testing.T) {
	all := dataset.SIFTLike(320, 41)
	data, extra := Split(all, 20)
	old, err := Build(context.Background(), data, WithKappa(8), WithTau(4), WithSeed(41))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := old.Append(context.Background(), extra)
	if err != nil {
		t.Fatal(err)
	}

	if idx.N() != all.N || idx.Live() != all.N || idx.IDBound() != int32(all.N) {
		t.Fatalf("appended index N=%d Live=%d IDBound=%d, want %d", idx.N(), idx.Live(), idx.IDBound(), all.N)
	}
	if !idx.Sharded() || idx.Shards() != 2 {
		t.Fatalf("append produced Shards=%d, want 2 (old rows + new shard)", idx.Shards())
	}
	// Copy-on-write: the receiver is untouched and still answers over the
	// old rows only.
	if old.Sharded() || old.N() != data.N {
		t.Fatalf("receiver mutated: Sharded=%v N=%d", old.Sharded(), old.N())
	}
	// Every appended vector must be findable at its assigned id (the exact
	// row is in the index, so the top-1 at a generous ef must be it).
	for i := 0; i < extra.N; i++ {
		wantID := int32(data.N + i)
		res := idx.Search(extra.Row(i), 1, 256)
		if len(res) != 1 || res[0].ID != wantID {
			t.Fatalf("appended vector %d: got %+v, want id %d", i, res, wantID)
		}
	}
	// Old rows keep their ids.
	res := idx.Search(data.Row(3), 1, 256)
	if len(res) != 1 || res[0].ID != 3 {
		t.Fatalf("old row 3: got %+v", res)
	}
	// The new parent dataset is the concatenation of old rows then new
	// rows, in order.
	want := append(append([]float32{}, data.Data...), extra.Data...)
	got := idx.Data().Data
	if len(got) != len(want) {
		t.Fatalf("appended dataset has %d floats, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("appended dataset differs from old+new concatenation at float %d", i)
		}
	}
}

func TestAppendErrors(t *testing.T) {
	data := dataset.SIFTLike(60, 43)
	idx, err := Build(context.Background(), data, WithKappa(6), WithTau(3), WithSeed(43))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.Append(context.Background(), nil); err == nil {
		t.Fatal("Append(nil) did not error")
	}
	if _, err := idx.Append(context.Background(), NewMatrix(2, data.Dim+1)); err == nil {
		t.Fatal("Append with wrong dimensionality did not error")
	}
	one := shardView(data, 0, 1)
	if _, err := idx.Append(context.Background(), one); err == nil {
		t.Fatal("Append of a single vector did not error (a shard graph needs two rows)")
	}
	clustered, err := Build(context.Background(), data, WithKappa(6), WithTau(3), WithSeed(43), WithClusters(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clustered.Append(context.Background(), shardView(data, 0, 4)); err == nil {
		t.Fatal("Append on a clustered index did not error")
	}
}

func TestDeleteSkipsRowsEverywhere(t *testing.T) {
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			all := dataset.SIFTLike(640, 47)
			data, queries := Split(all, 40)
			old, err := Build(context.Background(), data,
				WithShards(shards), WithKappa(8), WithTau(4), WithSeed(47))
			if err != nil {
				t.Fatal(err)
			}
			// Delete the exact nearest neighbour of each query so the miss
			// would be visible at the top of every result list.
			truth := ExactNeighbors(data, queries, 1)
			var doomed []int32
			seen := map[int32]bool{}
			for _, row := range truth {
				if !seen[row[0]] {
					doomed = append(doomed, row[0])
					seen[row[0]] = true
				}
			}
			idx, err := old.Delete(doomed...)
			if err != nil {
				t.Fatal(err)
			}
			if idx.Deleted() != len(doomed) || idx.Live() != data.N-len(doomed) {
				t.Fatalf("Deleted=%d Live=%d, want %d/%d", idx.Deleted(), idx.Live(), len(doomed), data.N-len(doomed))
			}
			if old.Deleted() != 0 {
				t.Fatalf("receiver mutated: Deleted=%d", old.Deleted())
			}

			batch := idx.SearchBatch(queries, 10, 0)
			for qi := 0; qi < queries.N; qi++ {
				res := idx.Search(queries.Row(qi), 10, 0)
				if len(res) != 10 {
					t.Fatalf("query %d returned %d results, want 10", qi, len(res))
				}
				for _, nb := range res {
					if seen[nb.ID] {
						t.Fatalf("query %d returned deleted id %d", qi, nb.ID)
					}
				}
				assertSameNeighbors(t, fmt.Sprintf("query %d single vs batch", qi), res, batch[qi])
			}
			// The old index must still surface the deleted rows: looking a
			// doomed row's own vector up finds it at distance zero.
			for _, id := range doomed[:5] {
				oldRes := old.Search(data.Row(int(id)), 1, 128)
				if len(oldRes) != 1 || oldRes[0].ID != id {
					t.Fatalf("old index lost row %d: %+v", id, oldRes)
				}
				newRes := idx.Search(data.Row(int(id)), 1, 128)
				if len(newRes) == 1 && newRes[0].ID == id {
					t.Fatalf("deleted row %d still surfaces for its own vector", id)
				}
			}

			// Deleting an already-deleted id is a no-op; an unknown id errors.
			again, err := idx.Delete(doomed[0])
			if err != nil {
				t.Fatal(err)
			}
			if again.Deleted() != idx.Deleted() {
				t.Fatalf("re-delete changed the count: %d vs %d", again.Deleted(), idx.Deleted())
			}
			if _, err := idx.Delete(int32(data.N) + 5); err == nil {
				t.Fatal("Delete of an unknown id did not error")
			}
			if _, err := idx.Delete(-1); err == nil {
				t.Fatal("Delete of a negative id did not error")
			}
		})
	}
}

// Deleting every exact top-k row must surface the next-best live rows —
// the overfetch has to dig past the tombstones, not return short lists.
func TestDeleteSurfacesNextBest(t *testing.T) {
	all := dataset.GloVeLike(500, 53)
	data, queries := Split(all, 10)
	base, err := Build(context.Background(), data, WithShards(2), WithKappa(10), WithTau(5), WithSeed(53))
	if err != nil {
		t.Fatal(err)
	}
	q := queries.Row(0)
	exact := ExactNeighbors(data, shardView(queries, 0, 1), 5)[0]
	idx, err := base.Delete(exact...)
	if err != nil {
		t.Fatal(err)
	}
	res := idx.Search(q, 5, data.N)
	want := liveSearch(idx, q, 5)
	assertSameNeighbors(t, "next-best after deleting the exact top-5", res, want)
}

func TestClusterRefusesDeletedRows(t *testing.T) {
	data := dataset.SIFTLike(80, 59)
	base, err := Build(context.Background(), data, WithKappa(6), WithTau(3), WithSeed(59))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := base.Delete(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.Cluster(context.Background(), 4); err == nil {
		t.Fatal("Cluster over deleted rows did not error")
	}
	if _, err := base.Cluster(context.Background(), 4); err != nil {
		t.Fatalf("Cluster on the untouched receiver errored: %v", err)
	}
}

// The acceptance property: compacting tombstone-heavy shards changes no
// search results — the live top-k is bit-identical before and after, at an
// ef that makes the per-shard searches effectively exhaustive.
func TestCompactPreservesResults(t *testing.T) {
	all := dataset.SIFTLike(560, 61)
	data, queries := Split(all, 40)
	base, err := Build(context.Background(), data,
		WithShards(4), WithKappa(10), WithTau(5), WithSeed(61))
	if err != nil {
		t.Fatal(err)
	}
	// Tombstone ~40% of shard 1 and a few rows of shard 2.
	var doomed []int32
	lo := int32(base.shardBaseOf(1))
	for i := int32(0); i < int32(base.shards[1].N()*2/5); i++ {
		doomed = append(doomed, lo+i)
	}
	doomed = append(doomed, base.shardBaseOf(2)+1, base.shardBaseOf(2)+7)
	idx, err := base.Delete(doomed...)
	if err != nil {
		t.Fatal(err)
	}

	ef := data.N // effectively exhaustive per shard
	before := make([][]Neighbor, queries.N)
	for qi := range before {
		before[qi] = idx.Search(queries.Row(qi), 10, ef)
	}

	compacted, err := idx.Compact(context.Background(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if compacted.Deleted() != 0 {
		t.Fatalf("compacted index still has %d tombstones", compacted.Deleted())
	}
	if compacted.Shards() != 3 {
		t.Fatalf("compacted Shards=%d, want 3 (two merged into one)", compacted.Shards())
	}
	if compacted.Live() != idx.Live() || compacted.N() != idx.Live() {
		t.Fatalf("compacted N=%d Live=%d, want %d", compacted.N(), compacted.Live(), idx.Live())
	}
	if compacted.IDBound() != idx.IDBound() {
		t.Fatalf("compaction changed the id bound: %d vs %d", compacted.IDBound(), idx.IDBound())
	}
	for qi := 0; qi < queries.N; qi++ {
		after := compacted.Search(queries.Row(qi), 10, ef)
		assertSameNeighbors(t, fmt.Sprintf("query %d before vs after compaction", qi), before[qi], after)
	}
	// The source index is untouched and still filtering tombstones.
	if idx.Deleted() != len(doomed) {
		t.Fatalf("source index mutated: Deleted=%d", idx.Deleted())
	}

	// Ids survive: the merged shard carries an id map (row removal made ids
	// non-contiguous), deleting a surviving id still works, and deleting a
	// compacted-away id now errors.
	if _, err := compacted.Delete(doomed[0]); err == nil {
		t.Fatal("Delete of a compacted-away id did not error")
	}
	survivor := base.shardBaseOf(2) + 2
	d2, err := compacted.Delete(survivor)
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.Search(data.Row(int(survivor)), 1, ef); len(got) == 1 && got[0].ID == survivor {
		t.Fatalf("deleted survivor %d still surfaces", survivor)
	}
}

// Compact() with no targets folds everything — including a monolithic
// index with tombstones — into one fresh shard holding only live rows.
func TestCompactAllMonolithic(t *testing.T) {
	data := dataset.GloVeLike(90, 67)
	base, err := Build(context.Background(), data, WithKappa(6), WithTau(3), WithSeed(67))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := base.Delete(0, 5, 88)
	if err != nil {
		t.Fatal(err)
	}
	compacted, err := idx.Compact(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if compacted.N() != data.N-3 || compacted.Deleted() != 0 {
		t.Fatalf("compacted N=%d Deleted=%d, want %d/0", compacted.N(), compacted.Deleted(), data.N-3)
	}
	for qi := 0; qi < 10; qi++ {
		got := compacted.Search(data.Row(qi*7+1), 5, data.N)
		want := liveSearch(idx, data.Row(qi*7+1), 5)
		assertSameNeighbors(t, fmt.Sprintf("query %d", qi), got, want)
	}
	if _, err := idx.Compact(context.Background(), 3); err == nil {
		t.Fatal("Compact of an out-of-range shard did not error")
	}
}

// An all-rows-deleted compaction must be refused, not produce an empty
// index.
func TestCompactRefusesEmptying(t *testing.T) {
	data := dataset.SIFTLike(40, 71)
	base, err := Build(context.Background(), data, WithKappa(5), WithTau(3), WithSeed(71))
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int32, data.N)
	for i := range ids {
		ids[i] = int32(i)
	}
	idx, err := base.Delete(ids...)
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.Search(data.Row(0), 3, 0); len(got) != 0 {
		t.Fatalf("fully deleted index returned %d results", len(got))
	}
	if _, err := idx.Compact(context.Background()); err == nil {
		t.Fatal("compacting a fully deleted index did not error")
	}
}

// Mutations must be deterministic: the same Build + Append + Delete +
// Compact sequence yields identical persisted bytes and search results at
// every worker count.
func TestMutationsDeterministicAcrossWorkerCounts(t *testing.T) {
	all := dataset.SIFTLike(400, 73)
	data, rest := Split(all, 60)
	extra, queries := Split(rest, 20)

	type snapshot struct {
		blob    []byte
		results [][]Neighbor
	}
	run := func(workers int) snapshot {
		base, err := Build(context.Background(), data,
			WithShards(2), WithKappa(8), WithTau(4), WithSeed(73), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		idx, err := base.Append(context.Background(), extra)
		if err != nil {
			t.Fatal(err)
		}
		idx, err = idx.Delete(3, 9, int32(data.N)+1)
		if err != nil {
			t.Fatal(err)
		}
		idx, err = idx.Compact(context.Background(), 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := idx.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		snap := snapshot{blob: buf.Bytes()}
		for qi := 0; qi < queries.N; qi++ {
			snap.results = append(snap.results, idx.Search(queries.Row(qi), 8, 128))
		}
		return snap
	}
	ref := run(1)
	for _, workers := range []int{2, 0} {
		got := run(workers)
		if !bytes.Equal(ref.blob, got.blob) {
			t.Fatalf("workers=%d produced different persisted bytes than workers=1", workers)
		}
		for qi := range ref.results {
			assertSameNeighbors(t, fmt.Sprintf("workers=%d query %d", workers, qi), ref.results[qi], got.results[qi])
		}
	}
}

// A mutated index (append + delete + compact ⇒ tombstones, id maps,
// generations, an id bound past the row count) must round-trip through the
// v3 container: same shape, same metadata, same search results, and
// re-saving the loaded index reproduces the bytes.
func TestMutatedPersistRoundTrip(t *testing.T) {
	all := dataset.SIFTLike(360, 79)
	data, rest := Split(all, 60)
	extra, queries := Split(rest, 20)

	base, err := Build(context.Background(), data, WithShards(2), WithKappa(8), WithTau(4), WithSeed(79), WithEntryPoints(6))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := base.Append(context.Background(), extra)
	if err != nil {
		t.Fatal(err)
	}
	idx, err = idx.Delete(0, 7, int32(data.N)+2)
	if err != nil {
		t.Fatal(err)
	}
	idx, err = idx.Compact(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Still carrying: one tombstoned shard (shard 1), one id-mapped shard
	// (the compacted shard 0), generations, and IDBound > N.
	if idx.Deleted() == 0 || idx.shardIDMap(0) == nil {
		t.Fatalf("fixture lost its mutation state: Deleted=%d idmap=%v", idx.Deleted(), idx.shardIDMap(0))
	}

	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndexFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N() != idx.N() || loaded.Shards() != idx.Shards() ||
		loaded.Deleted() != idx.Deleted() || loaded.IDBound() != idx.IDBound() {
		t.Fatalf("loaded N=%d Shards=%d Deleted=%d IDBound=%d, want %d/%d/%d/%d",
			loaded.N(), loaded.Shards(), loaded.Deleted(), loaded.IDBound(),
			idx.N(), idx.Shards(), idx.Deleted(), idx.IDBound())
	}
	for s := 0; s < idx.shardCount(); s++ {
		if loaded.shardGeneration(s) != idx.shardGeneration(s) {
			t.Fatalf("shard %d generation %d, want %d", s, loaded.shardGeneration(s), idx.shardGeneration(s))
		}
	}
	var again bytes.Buffer
	if _, err := loaded.WriteTo(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("re-saving the loaded index produced different bytes")
	}
	for qi := 0; qi < queries.N; qi++ {
		assertSameNeighbors(t, fmt.Sprintf("query %d", qi),
			idx.Search(queries.Row(qi), 8, 128), loaded.Search(queries.Row(qi), 8, 128))
	}

	// A monolithic index with tombstones round-trips through v3 too, and
	// further mutation of the loaded index works.
	monoDel, err := base.shards[0].Delete(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if _, err := monoDel.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	monoLoaded, err := ReadIndexFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if monoLoaded.Sharded() || monoLoaded.Deleted() != 2 {
		t.Fatalf("loaded mono: Sharded=%v Deleted=%d", monoLoaded.Sharded(), monoLoaded.Deleted())
	}
	if _, err := monoLoaded.Delete(3); err != nil {
		t.Fatalf("deleting on the loaded mono index: %v", err)
	}
}

// An unmutated index must keep writing the v1/v2 layouts byte-stably: the
// mutable v3 layout is reserved for indexes that actually carry mutation
// state (old readers keep working on plain saves).
func TestUnmutatedIndexKeepsLegacyLayout(t *testing.T) {
	data := dataset.GloVeLike(120, 83)
	mono, err := Build(context.Background(), data, WithKappa(6), WithTau(3), WithSeed(83))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := Build(context.Background(), data, WithShards(2), WithKappa(6), WithTau(3), WithSeed(83))
	if err != nil {
		t.Fatal(err)
	}
	version := func(x *Index) uint32 {
		var buf bytes.Buffer
		if _, err := x.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return uint32(buf.Bytes()[4]) | uint32(buf.Bytes()[5])<<8 | uint32(buf.Bytes()[6])<<16 | uint32(buf.Bytes()[7])<<24
	}
	if v := version(mono); v != indexVersionSingle {
		t.Fatalf("plain monolithic index wrote version %d, want %d", v, indexVersionSingle)
	}
	if v := version(sharded); v != indexVersionSharded {
		t.Fatalf("plain sharded index wrote version %d, want %d", v, indexVersionSharded)
	}
	del, err := mono.Delete(4)
	if err != nil {
		t.Fatal(err)
	}
	if v := version(del); v != indexVersionMutable {
		t.Fatalf("tombstoned index wrote version %d, want %d", v, indexVersionMutable)
	}
}
