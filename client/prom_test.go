package client

import (
	"net/http"
	"strings"
	"testing"
	"time"
)

const sampleExposition = `# HELP gkserved_requests_total Requests served, by endpoint and status code.
# TYPE gkserved_requests_total counter
gkserved_requests_total{endpoint="search",code="200"} 41
gkserved_requests_total{endpoint="search",code="400"} 1
# HELP gkserved_request_duration_seconds Request latency.
# TYPE gkserved_request_duration_seconds histogram
gkserved_request_duration_seconds_bucket{endpoint="search",le="0.001"} 12
gkserved_request_duration_seconds_bucket{endpoint="search",le="+Inf"} 42
gkserved_request_duration_seconds_sum{endpoint="search"} 0.618
gkserved_request_duration_seconds_count{endpoint="search"} 42
# TYPE gkserved_inflight_requests gauge
gkserved_inflight_requests 3
gkserved_untyped_thing{note="escaped \"quote\" and \\ and \n newline"} 1.5
`

func TestParseMetrics(t *testing.T) {
	families, err := ParseMetrics(strings.NewReader(sampleExposition))
	if err != nil {
		t.Fatal(err)
	}

	reqs, ok := Find(families, "gkserved_requests_total")
	if !ok || reqs.Type != "counter" || len(reqs.Samples) != 2 {
		t.Fatalf("requests family = %+v", reqs)
	}
	if reqs.Help == "" || reqs.Samples[0].Labels["endpoint"] != "search" || reqs.Samples[0].Value != 41 {
		t.Fatalf("requests sample 0 = %+v (help %q)", reqs.Samples[0], reqs.Help)
	}

	// Histogram series attach to their declared base family, keeping their
	// literal names.
	hist, ok := Find(families, "gkserved_request_duration_seconds")
	if !ok || hist.Type != "histogram" {
		t.Fatalf("histogram family = %+v", hist)
	}
	if len(hist.Samples) != 4 {
		t.Fatalf("histogram collected %d samples, want 4", len(hist.Samples))
	}
	names := map[string]bool{}
	for _, s := range hist.Samples {
		names[s.Name] = true
	}
	for _, want := range []string{
		"gkserved_request_duration_seconds_bucket",
		"gkserved_request_duration_seconds_sum",
		"gkserved_request_duration_seconds_count",
	} {
		if !names[want] {
			t.Fatalf("histogram missing %s series", want)
		}
	}
	if hist.Samples[1].Labels["le"] != "+Inf" || hist.Samples[1].Value != 42 {
		t.Fatalf("+Inf bucket = %+v", hist.Samples[1])
	}

	gauge, ok := Find(families, "gkserved_inflight_requests")
	if !ok || gauge.Type != "gauge" || len(gauge.Samples) != 1 || gauge.Samples[0].Value != 3 {
		t.Fatalf("gauge family = %+v", gauge)
	}

	// An undeclared sample gets an implicit untyped family; label escapes
	// decode.
	un, ok := Find(families, "gkserved_untyped_thing")
	if !ok || un.Type != "untyped" {
		t.Fatalf("untyped family = %+v", un)
	}
	if note := un.Samples[0].Labels["note"]; note != "escaped \"quote\" and \\ and \n newline" {
		t.Fatalf("label unescaped to %q", note)
	}
	if keys := un.Samples[0].SortedLabelKeys(); len(keys) != 1 || keys[0] != "note" {
		t.Fatalf("SortedLabelKeys = %v", keys)
	}

	if _, ok := Find(families, "nope"); ok {
		t.Fatal("Find invented a family")
	}
}

func TestParseMetricsRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"no_value_at_all\n",
		"bad name{x=\"y\"} 1\n",
		"9starts_with_digit 1\n",
		"unterminated{x=\"y\n",
		"unquoted{x=y} 1\n",
		"bad_escape{x=\"\\q\"} 1\n",
		"trailing{x=\"y\"} 1 2 3\n",
		"not_a_number{} abc\n",
	} {
		if _, err := ParseMetrics(strings.NewReader(bad)); err == nil {
			t.Errorf("malformed line %q parsed without error", strings.TrimSpace(bad))
		}
	}
}

func TestParseRetryAfter(t *testing.T) {
	if d := parseRetryAfter(""); d != 0 {
		t.Fatalf("empty header parsed to %v", d)
	}
	if d := parseRetryAfter("5"); d != 5*time.Second {
		t.Fatalf("delta-seconds parsed to %v", d)
	}
	if d := parseRetryAfter("-3"); d != 0 {
		t.Fatalf("negative delta parsed to %v", d)
	}
	if d := parseRetryAfter("garbage"); d != 0 {
		t.Fatalf("garbage parsed to %v", d)
	}
	future := time.Now().Add(90 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(future); d < 80*time.Second || d > 91*time.Second {
		t.Fatalf("HTTP-date parsed to %v", d)
	}
	past := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(past); d != 0 {
		t.Fatalf("past HTTP-date parsed to %v", d)
	}
}
