// Package client is a typed Go client for gkserved, the HTTP serving
// daemon of the gkmeans library. It speaks the /v1 JSON API: single and
// batched approximate nearest-neighbour search, graph-supported clustering,
// index listing/registration and serving stats. Sharded indexes
// (gkmeans.WithShards) serve transparently — search requests and results
// look exactly like a monolithic index's, IndexInfo.Shards reports the
// shard count, and only clustering is refused. An index built with routing
// centroids (gkmeans.WithRouting, IndexInfo.Routed) additionally accepts a
// per-query nprobe through SearchNProbe/SearchBatchNProbe, trading a little
// recall for scanning only the nprobe most promising shards.
//
// Stats returns the per-index serving counters (IndexStats): request-level
// counts — queries, coalesced batches, explicit batch and cluster requests
// — plus the index's own hot-path totals, distance_comps and
// expanded_candidates, whose per-query averages make the search work the
// early-termination rule bounds observable in production (summed across
// shards for a sharded index).
//
// Served indexes are mutable: Insert appends vectors (the server assigns
// consecutive ids and, when durable, fsyncs them to a write-ahead log
// before acknowledging) and Delete tombstones rows out of every future
// search. IndexInfo reports the mutation state — epoch, live/deleted
// counts and rows pending their shard build.
//
// Every call takes a context and honours its cancellation; a context
// deadline is additionally propagated to the server as the search's
// timeout_ms budget, so a request the client would abandon is answered 504
// and stops consuming server work. Transient failures are retried
// (configurable via WithRetries/WithRetryBackoff) on every call except
// Register and Insert, the two operations whose blind retry could
// double-apply (Insert) or misreport (Register) a first attempt that
// succeeded without a response. The retry policy distinguishes the
// status classes: 429 load sheds retry after the server's Retry-After
// pacing hint, 502/503/504 retry on the exponential backoff schedule,
// and every other 4xx is definitive and never retried. Prometheus
// metrics are available in typed form via Metrics.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client talks to one gkserved instance. It is safe for concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (default:
// http.DefaultClient).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets how many times a transient failure is retried after the
// first attempt (default 2; 0 disables retrying).
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithRetryBackoff sets the initial retry delay, doubled after every
// failed attempt (default 50ms).
func WithRetryBackoff(d time.Duration) Option { return func(c *Client) { c.backoff = d } }

// New returns a client for the server at baseURL (e.g. "http://localhost:8080").
// The default transport is a private clone of http.DefaultTransport, so the
// client owns its connection pool and Close affects nothing else.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:    strings.TrimRight(baseURL, "/"),
		retries: 2,
		backoff: 50 * time.Millisecond,
	}
	if t, ok := http.DefaultTransport.(*http.Transport); ok {
		c.hc = &http.Client{Transport: t.Clone()}
	} else {
		c.hc = &http.Client{}
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Close releases idle connections held by the underlying HTTP client.
// Call it when done with the client: a draining server waits several
// seconds for half-open idle connections before giving up on them, so
// closing them client-side lets a graceful shutdown finish promptly.
func (c *Client) Close() { c.hc.CloseIdleConnections() }

// APIError is a non-2xx response from the server.
type APIError struct {
	Status     int           // HTTP status code
	Message    string        // server-provided error message
	RetryAfter time.Duration // parsed Retry-After header, 0 when absent
}

func (e *APIError) Error() string {
	return fmt.Sprintf("gkserved: %s (HTTP %d)", e.Message, e.Status)
}

// retryable reports whether a status code signals a transient condition
// worth retrying. The three classes behave differently and the
// distinction matters:
//
//   - 429 (load shed): the server is healthy but at its concurrency
//     limit. Retried, honouring the server's Retry-After pacing hint —
//     immediate exponential backoff would re-shed and add load exactly
//     when the server asked for less.
//   - 502/503/504 (drain, gateway trouble, timeout): transient
//     infrastructure conditions, retried a bounded number of times with
//     exponential backoff.
//   - every other 4xx is a definitive verdict about the request itself —
//     retrying a 400/404/409 can only repeat the answer (or, for Insert,
//     double-apply), so those never retry.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests ||
		status == http.StatusBadGateway ||
		status == http.StatusServiceUnavailable ||
		status == http.StatusGatewayTimeout
}

// parseRetryAfter reads a Retry-After header: delta-seconds or an
// HTTP-date; 0 when absent or unparseable.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// timeoutMS converts a context deadline into the wire's timeout_ms budget,
// rounding up so a 4.2ms budget is sent as 5 rather than truncated to 4.
// 0 (no deadline, or one already expired — the transport will fail the
// request itself) means the server applies only its own -timeout.
func timeoutMS(ctx context.Context) int {
	d, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := time.Until(d).Milliseconds()
	if time.Until(d)%time.Millisecond != 0 {
		ms++
	}
	if ms <= 0 {
		return 0
	}
	return int(ms)
}

// do runs one API call with retries. in (when non-nil) is marshalled as the
// JSON request body; out (when non-nil) receives the decoded response.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	return c.doRetries(ctx, method, path, in, out, c.retries)
}

func (c *Client) doRetries(ctx context.Context, method, path string, in, out any, retries int) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			delay := c.backoff << (attempt - 1)
			// A shed (429) carries the server's own pacing hint; honour it
			// instead of the local backoff schedule.
			var apiErr *APIError
			if errors.As(lastErr, &apiErr) && apiErr.RetryAfter > 0 {
				delay = apiErr.RetryAfter
			}
			select {
			case <-ctx.Done():
				return fmt.Errorf("client: %w (last error: %v)", ctx.Err(), lastErr)
			case <-time.After(delay):
			}
		}
		lastErr = c.once(ctx, method, path, body, out)
		if lastErr == nil {
			return nil
		}
		var apiErr *APIError
		if errors.As(lastErr, &apiErr) && !retryable(apiErr.Status) {
			return lastErr // a definitive server verdict: do not retry
		}
		if ctx.Err() != nil || attempt >= retries {
			return lastErr
		}
	}
}

// once runs a single HTTP attempt.
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("client: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &APIError{
			Status:     resp.StatusCode,
			Message:    msg,
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding response: %w", err)
	}
	return nil
}

// Health reports whether the server is up and accepting work; a draining
// (shutting down) server returns an *APIError with status 503.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Indexes lists the served indexes.
func (c *Client) Indexes(ctx context.Context) ([]IndexInfo, error) {
	var out ListResponse
	if err := c.do(ctx, http.MethodGet, "/v1/indexes", nil, &out); err != nil {
		return nil, err
	}
	return out.Indexes, nil
}

// Register asks the server to load the persisted index at path (a .gkx file
// on the server's filesystem, written by gkmeans.SaveIndex) and serve it
// under name. Unlike the read-only calls, registration is not retried: a
// first attempt whose response was lost may have registered the index, and
// a blind retry would misreport that success as 409 Conflict.
func (c *Client) Register(ctx context.Context, name, path string) (IndexInfo, error) {
	var out IndexInfo
	err := c.doRetries(ctx, http.MethodPost, "/v1/indexes", RegisterRequest{Name: name, Path: path}, &out, 0)
	return out, err
}

// Stats fetches the serving counters of one index.
func (c *Client) Stats(ctx context.Context, name string) (IndexStats, error) {
	var out IndexStats
	err := c.do(ctx, http.MethodGet, "/v1/indexes/"+name+"/stats", nil, &out)
	return out, err
}

// Search returns the approximately closest topK samples to q, sorted by
// ascending squared distance. On the server, concurrent single-query
// searches are micro-batched through the index's SearchBatch. ef follows
// the library defaulting (<=0 selects max(4·topK, 32)).
func (c *Client) Search(ctx context.Context, name string, q []float32, topK, ef int) ([]Neighbor, error) {
	return c.SearchNProbe(ctx, name, q, topK, ef, 0)
}

// SearchNProbe is Search with a per-query shard-probe cap for routed
// indexes: only the nprobe shards whose routing centroids are closest to q
// are scanned. nprobe 0 keeps the index's default (all shards unless the
// server built it with gkmeans.WithNProbe); values at or above the shard
// count are equivalent to Search. A positive nprobe against an unrouted
// index is a 400 from the server.
func (c *Client) SearchNProbe(ctx context.Context, name string, q []float32, topK, ef, nprobe int) ([]Neighbor, error) {
	var out SearchResponse
	req := SearchRequest{Query: q, TopK: topK, Ef: ef, NProbe: nprobe, TimeoutMS: timeoutMS(ctx)}
	if err := c.do(ctx, http.MethodPost, "/v1/indexes/"+name+"/search", req, &out); err != nil {
		return nil, err
	}
	if len(out.Results) != 1 {
		return nil, fmt.Errorf("client: server returned %d result lists for one query", len(out.Results))
	}
	return out.Results[0], nil
}

// SearchBatch answers every query and returns one sorted neighbour list per
// query, in order. An empty query set answers locally with no request.
func (c *Client) SearchBatch(ctx context.Context, name string, queries [][]float32, topK, ef int) ([][]Neighbor, error) {
	return c.SearchBatchNProbe(ctx, name, queries, topK, ef, 0)
}

// SearchBatchNProbe is SearchBatch with the per-query shard-probe cap
// described on SearchNProbe, applied to every query in the batch.
func (c *Client) SearchBatchNProbe(ctx context.Context, name string, queries [][]float32, topK, ef, nprobe int) ([][]Neighbor, error) {
	if len(queries) == 0 {
		// The wire format cannot distinguish an empty batch from an absent
		// one (omitempty), and there is nothing to ask anyway.
		return [][]Neighbor{}, nil
	}
	var out SearchResponse
	req := SearchRequest{Queries: queries, TopK: topK, Ef: ef, NProbe: nprobe, TimeoutMS: timeoutMS(ctx)}
	if err := c.do(ctx, http.MethodPost, "/v1/indexes/"+name+"/search", req, &out); err != nil {
		return nil, err
	}
	if len(out.Results) != len(queries) {
		return nil, fmt.Errorf("client: server returned %d result lists for %d queries", len(out.Results), len(queries))
	}
	return out.Results, nil
}

// Insert appends vectors to the served index. The response reports the
// assigned ids (FirstID..FirstID+Count-1, in send order). Inserts are not
// retried: a lost response after a successful append would double-insert
// on retry, so callers see the transient error and decide themselves.
func (c *Client) Insert(ctx context.Context, name string, vectors [][]float32) (InsertResponse, error) {
	var out InsertResponse
	err := c.doRetries(ctx, http.MethodPost, "/v1/indexes/"+name+"/insert",
		InsertRequest{Vectors: vectors}, &out, 0)
	return out, err
}

// Delete tombstones the rows with the given ids; they disappear from every
// subsequent search. Any unknown id rejects the whole request and deletes
// nothing. Deleting is idempotent (a tombstoned row may be deleted again),
// so transient failures are retried like reads.
func (c *Client) Delete(ctx context.Context, name string, ids ...int32) (DeleteResponse, error) {
	var out DeleteResponse
	err := c.do(ctx, http.MethodPost, "/v1/indexes/"+name+"/delete", DeleteRequest{IDs: ids}, &out)
	return out, err
}

// Cluster partitions the served dataset into req.K clusters with
// graph-supported boost k-means on the server.
func (c *Client) Cluster(ctx context.Context, name string, req ClusterRequest) (ClusterResponse, error) {
	var out ClusterResponse
	err := c.do(ctx, http.MethodPost, "/v1/indexes/"+name+"/cluster", req, &out)
	return out, err
}
