package client

// Wire types of the gkserved HTTP/JSON API, shared by this client and the
// server implementation (gkmeans/internal/server) so the two cannot drift.
// All endpoints exchange JSON; errors are `{"error": "..."}` with a
// non-2xx status code.

// Neighbor is one search result on the wire: a sample id and its squared
// Euclidean distance, mirroring gkmeans.Neighbor.
type Neighbor struct {
	ID   int32   `json:"id"`
	Dist float32 `json:"dist"`
}

// SearchRequest is the body of POST /v1/indexes/{name}/search. Exactly one
// of Query (single) or Queries (batch) must be set. TopK is the number of
// neighbours to return; Ef bounds the candidate pool and follows the
// library defaulting (ef <= 0 selects max(4·topK, 32), ef < topK is raised
// to topK).
type SearchRequest struct {
	Query   []float32   `json:"query,omitempty"`
	Queries [][]float32 `json:"queries,omitempty"`
	TopK    int         `json:"top_k"`
	Ef      int         `json:"ef,omitempty"`
}

// SearchResponse carries one sorted neighbour list per query; a single-query
// request gets exactly one list.
type SearchResponse struct {
	Results [][]Neighbor `json:"results"`
}

// ClusterRequest is the body of POST /v1/indexes/{name}/cluster: cluster the
// indexed dataset into K clusters over the served k-NN graph. Labels and
// centroids are opt-in because they scale with n and k×d respectively.
type ClusterRequest struct {
	K             int   `json:"k"`
	MaxIter       int   `json:"max_iter,omitempty"`
	Seed          int64 `json:"seed,omitempty"`
	WithLabels    bool  `json:"with_labels,omitempty"`
	WithCentroids bool  `json:"with_centroids,omitempty"`
}

// ClusterResponse summarises a clustering run.
type ClusterResponse struct {
	K          int         `json:"k"`
	Iters      int         `json:"iters"`
	Distortion float64     `json:"distortion"`
	Labels     []int       `json:"labels,omitempty"`
	Centroids  [][]float32 `json:"centroids,omitempty"`
}

// RegisterRequest is the body of POST /v1/indexes: load a persisted index
// (a .gkx file written by gkmeans.SaveIndex) from the server's filesystem
// and serve it under Name.
type RegisterRequest struct {
	Name string `json:"name"`
	Path string `json:"path"`
}

// IndexInfo describes one served index (GET /v1/indexes). Shards is 1 for
// a monolithic index and the shard count for one built with
// gkmeans.WithShards — sharded indexes serve searches like any other, but
// refuse clustering.
type IndexInfo struct {
	Name        string `json:"name"`
	N           int    `json:"n"`
	Dim         int    `json:"dim"`
	Shards      int    `json:"shards"`
	HasClusters bool   `json:"has_clusters"`
}

// ListResponse is the body of GET /v1/indexes.
type ListResponse struct {
	Indexes []IndexInfo `json:"indexes"`
}

// IndexStats extends IndexInfo with serving counters
// (GET /v1/indexes/{name}/stats). Queries counts every query answered
// (single and batch rows); Batches counts SearchBatch executions on the hot
// path, so Queries > Batches means the micro-batching coalescer merged
// concurrent single-query requests.
type IndexStats struct {
	IndexInfo
	Path             string `json:"path,omitempty"`
	Queries          int64  `json:"queries"`
	Batches          int64  `json:"batches"`
	MaxBatch         int64  `json:"max_batch"`
	BatchRequests    int64  `json:"batch_requests"`
	ClusterRequests  int64  `json:"cluster_requests"`
	CoalesceWindowNS int64  `json:"coalesce_window_ns"`

	// Hot-path totals from the index itself: distance-kernel evaluations
	// (the dominant per-query cost) and candidate expansions across every
	// search served. DistanceComps/Queries is the average per-query work —
	// the quantity the searcher's early-termination rule bounds.
	DistanceComps      uint64 `json:"distance_comps"`
	ExpandedCandidates uint64 `json:"expanded_candidates"`
}
