package client

// Wire types of the gkserved HTTP/JSON API, shared by this client and the
// server implementation (gkmeans/internal/server) so the two cannot drift.
// All endpoints exchange JSON; errors are `{"error": "..."}` with a
// non-2xx status code.

// Neighbor is one search result on the wire: a sample id and its squared
// Euclidean distance, mirroring gkmeans.Neighbor.
type Neighbor struct {
	ID   int32   `json:"id"`
	Dist float32 `json:"dist"`
}

// SearchRequest is the body of POST /v1/indexes/{name}/search. Exactly one
// of Query (single) or Queries (batch) must be set. TopK is the number of
// neighbours to return; Ef bounds the candidate pool and follows the
// library defaulting (ef <= 0 selects max(4·topK, 32), ef < topK is raised
// to topK). NProbe caps how many shards a routed index (gkmeans.WithRouting)
// scans per query: 0 keeps the index's own default, values at or above the
// shard count scan everything, and any positive value on an unrouted index
// is rejected with 400 rather than silently ignored.
type SearchRequest struct {
	Query   []float32   `json:"query,omitempty"`
	Queries [][]float32 `json:"queries,omitempty"`
	TopK    int         `json:"top_k"`
	Ef      int         `json:"ef,omitempty"`
	NProbe  int         `json:"nprobe,omitempty"`
	// TimeoutMS is the request's deadline budget in milliseconds: the
	// server answers 504 if the search has not completed within it. It can
	// only tighten the server-wide request timeout, never extend it; 0
	// means no request-supplied deadline. The Go client fills it from the
	// context deadline automatically.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// SearchResponse carries one sorted neighbour list per query; a single-query
// request gets exactly one list.
type SearchResponse struct {
	Results [][]Neighbor `json:"results"`
}

// ClusterRequest is the body of POST /v1/indexes/{name}/cluster: cluster the
// indexed dataset into K clusters over the served k-NN graph. Labels and
// centroids are opt-in because they scale with n and k×d respectively.
type ClusterRequest struct {
	K             int   `json:"k"`
	MaxIter       int   `json:"max_iter,omitempty"`
	Seed          int64 `json:"seed,omitempty"`
	WithLabels    bool  `json:"with_labels,omitempty"`
	WithCentroids bool  `json:"with_centroids,omitempty"`
}

// ClusterResponse summarises a clustering run.
type ClusterResponse struct {
	K          int         `json:"k"`
	Iters      int         `json:"iters"`
	Distortion float64     `json:"distortion"`
	Labels     []int       `json:"labels,omitempty"`
	Centroids  [][]float32 `json:"centroids,omitempty"`
}

// RegisterRequest is the body of POST /v1/indexes: load a persisted index
// (a .gkx file written by gkmeans.SaveIndex) from the server's filesystem
// and serve it under Name.
type RegisterRequest struct {
	Name string `json:"name"`
	Path string `json:"path"`
}

// InsertRequest is the body of POST /v1/indexes/{name}/insert: append
// Vectors (each of the index's dimensionality) to the served index. The
// server assigns consecutive external ids and, when running with a data
// directory, fsyncs the vectors to the index's write-ahead log before
// responding. Inserted rows become searchable when the server's memtable
// threshold triggers a shard build (Flushed reports whether this request
// did).
type InsertRequest struct {
	Vectors [][]float32 `json:"vectors"`
}

// InsertResponse reports the ids assigned to an insert: FirstID through
// FirstID+Count-1, in the order the vectors were sent. Epoch is the
// index's version after the insert; Pending counts rows buffered but not
// yet built into a searchable shard.
type InsertResponse struct {
	FirstID int32  `json:"first_id"`
	Count   int    `json:"count"`
	Epoch   uint64 `json:"epoch"`
	Flushed bool   `json:"flushed"`
	Pending int    `json:"pending"`
}

// DeleteRequest is the body of POST /v1/indexes/{name}/delete: tombstone
// the rows with the given external ids. Deleted rows disappear from every
// subsequent search; any unknown id rejects the whole request (400) and
// nothing is deleted.
type DeleteRequest struct {
	IDs []int32 `json:"ids"`
}

// DeleteResponse reports an applied delete. Epoch is the index's version
// after the delete.
type DeleteResponse struct {
	Deleted int    `json:"deleted"`
	Epoch   uint64 `json:"epoch"`
}

// IndexInfo describes one served index (GET /v1/indexes). Shards is 1 for
// a monolithic index and the shard count for one built with
// gkmeans.WithShards or grown by inserts — sharded indexes serve searches
// like any other, but refuse clustering. Epoch increments every time a
// mutation (insert flush, delete, compaction) publishes a new index
// version; Live/Deleted split N by tombstone state, and Pending counts
// inserted rows buffered ahead of their shard build.
type IndexInfo struct {
	Name string `json:"name"`
	N    int    `json:"n"`
	Dim  int    `json:"dim"`
	// DType is the element type the index stores its dataset in ("float32"
	// or "uint8"). On a uint8 index every query and inserted vector value
	// must be an exact byte (an integer in [0,255]); the server rejects
	// anything else with 400.
	DType       string `json:"dtype"`
	Shards      int    `json:"shards"`
	HasClusters bool   `json:"has_clusters"`
	// Routed reports whether the index carries per-shard routing centroids
	// (gkmeans.WithRouting), which makes SearchRequest.NProbe usable.
	Routed  bool   `json:"routed,omitempty"`
	Epoch   uint64 `json:"epoch"`
	Live    int    `json:"live"`
	Deleted int    `json:"deleted"`
	Pending int    `json:"pending"`
}

// ListResponse is the body of GET /v1/indexes.
type ListResponse struct {
	Indexes []IndexInfo `json:"indexes"`
}

// IndexStats extends IndexInfo with serving counters
// (GET /v1/indexes/{name}/stats). Queries counts every query answered
// (single and batch rows); Batches counts SearchBatch executions on the hot
// path, so Queries > Batches means the micro-batching coalescer merged
// concurrent single-query requests.
type IndexStats struct {
	IndexInfo
	Path             string `json:"path,omitempty"`
	Queries          int64  `json:"queries"`
	Batches          int64  `json:"batches"`
	MaxBatch         int64  `json:"max_batch"`
	BatchRequests    int64  `json:"batch_requests"`
	ClusterRequests  int64  `json:"cluster_requests"`
	CoalesceWindowNS int64  `json:"coalesce_window_ns"`

	// Hot-path totals from the index itself: distance-kernel evaluations
	// (the dominant per-query cost) and candidate expansions across every
	// search served. DistanceComps/Queries is the average per-query work —
	// the quantity the searcher's early-termination rule bounds.
	DistanceComps      uint64 `json:"distance_comps"`
	ExpandedCandidates uint64 `json:"expanded_candidates"`

	// Routed-fan-out totals, zero on unrouted indexes. ShardsProbed counts
	// shards actually scanned across every search; RoutedQueries counts the
	// queries whose nprobe skipped at least one shard. ShardsProbed/Queries
	// against the shard count shows how much fan-out routing saves.
	ShardsProbed  uint64 `json:"shards_probed,omitempty"`
	RoutedQueries uint64 `json:"routed_queries,omitempty"`

	// Mutation counters. Inserts and Deletes count accepted vectors and
	// ids; Flushes counts memtable→shard builds; Compactions counts
	// background/explicit compaction rounds. Durable reports whether the
	// index is backed by a write-ahead log.
	Inserts     int64 `json:"inserts"`
	Deletes     int64 `json:"deletes"`
	Flushes     int64 `json:"flushes"`
	Compactions int64 `json:"compactions"`
	Durable     bool  `json:"durable"`

	// Query-cache counters, all zero when the server runs without a cache
	// (gkserved -cache 0). A hit is a single-query search answered from
	// the epoch-pinned cache, bit-identical to the cold search it saved;
	// misses include epoch invalidations after mutations. CacheEntries is
	// the resident entry count at snapshot time.
	CacheHits      int64 `json:"cache_hits,omitempty"`
	CacheMisses    int64 `json:"cache_misses,omitempty"`
	CacheEvictions int64 `json:"cache_evictions,omitempty"`
	CacheEntries   int   `json:"cache_entries,omitempty"`
}
