package client_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gkmeans"
	"gkmeans/client"
	"gkmeans/internal/dataset"
	"gkmeans/internal/server"
)

// e2e is a full serving stack: an index built over synthetic data, saved
// and hot-loaded into a gkserved server on a real random-port listener.
type e2e struct {
	idx     *gkmeans.Index
	queries *gkmeans.Matrix
	srv     *server.Server
	hs      *http.Server
	cl      *client.Client
}

func startE2E(t *testing.T, cfg server.Config) *e2e {
	t.Helper()
	all := dataset.SIFTLike(540, 11)
	data, queries := dataset.Split(all, 40)
	idx, err := gkmeans.Build(context.Background(), data,
		gkmeans.WithKappa(10), gkmeans.WithXi(25), gkmeans.WithTau(4), gkmeans.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "e2e.gkx")
	if err := gkmeans.SaveIndex(path, idx); err != nil {
		t.Fatal(err)
	}

	srv := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0") // a random free port
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })

	cl := client.New("http://" + ln.Addr().String())
	if _, err := cl.Register(context.Background(), "sift", path); err != nil {
		t.Fatal(err)
	}
	return &e2e{idx: idx, queries: queries, srv: srv, hs: hs, cl: cl}
}

func sameNeighbors(got []client.Neighbor, want []gkmeans.Neighbor) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d neighbours, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || got[i].Dist != want[i].Dist {
			return fmt.Errorf("neighbour %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	return nil
}

// The acceptance path: a saved index served over a real listener answers
// batched HTTP searches identically to in-process Index.Search.
func TestEndToEndSearchMatchesInProcess(t *testing.T) {
	e := startE2E(t, server.Config{})
	ctx := context.Background()

	if err := e.cl.Health(ctx); err != nil {
		t.Fatal(err)
	}
	infos, err := e.cl.Indexes(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "sift" || infos[0].N != e.idx.N() {
		t.Fatalf("indexes = %+v", infos)
	}

	rows := make([][]float32, e.queries.N)
	for i := range rows {
		rows[i] = e.queries.Row(i)
	}
	batch, err := e.cl.SearchBatch(ctx, "sift", rows, 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	for qi, res := range batch {
		if err := sameNeighbors(res, e.idx.Search(rows[qi], 10, 64)); err != nil {
			t.Fatalf("batch query %d: %v", qi, err)
		}
	}

	for qi := 0; qi < 10; qi++ {
		res, err := e.cl.Search(ctx, "sift", rows[qi], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		if err := sameNeighbors(res, e.idx.Search(rows[qi], 10, 64)); err != nil {
			t.Fatalf("single query %d: %v", qi, err)
		}
	}

	// An empty batch answers locally: zero lists, no error, no request.
	if empty, err := e.cl.SearchBatch(ctx, "sift", nil, 10, 64); err != nil || len(empty) != 0 {
		t.Fatalf("empty batch = %v, %v", empty, err)
	}

	// API errors surface as typed *APIError with the server's status.
	var apiErr *client.APIError
	if _, err := e.cl.Search(ctx, "nosuch", rows[0], 5, 32); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Fatalf("unknown index error = %v", err)
	}
	if _, err := e.cl.Search(ctx, "sift", []float32{1, 2}, 5, 32); !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("dimension mismatch error = %v", err)
	}
}

// 32 goroutines hammering single-query search over a real listener: every
// request answered, every result identical to in-process search, and the
// server's stats prove the coalescer funnelled them through SearchBatch.
func TestEndToEndConcurrentCoalescing(t *testing.T) {
	e := startE2E(t, server.Config{Window: 20 * time.Millisecond, MaxBatch: 8})
	ctx := context.Background()

	const goroutines, perG = 32, 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				q := e.queries.Row((g*perG + i) % e.queries.N)
				res, err := e.cl.Search(ctx, "sift", q, 10, 64)
				if err != nil {
					errs <- fmt.Errorf("g%d i%d: %w", g, i, err)
					return
				}
				if err := sameNeighbors(res, e.idx.Search(q, 10, 64)); err != nil {
					errs <- fmt.Errorf("g%d i%d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	stats, err := e.cl.Stats(ctx, "sift")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Queries != goroutines*perG {
		t.Fatalf("stats.Queries = %d, want %d (dropped requests)", stats.Queries, goroutines*perG)
	}
	if stats.Batches >= stats.Queries {
		t.Fatalf("%d batches for %d queries: nothing coalesced", stats.Batches, stats.Queries)
	}
	if stats.MaxBatch < 2 {
		t.Fatalf("max batch %d, want >= 2", stats.MaxBatch)
	}
	t.Logf("coalescer: %d queries in %d batches (max batch %d)",
		stats.Queries, stats.Batches, stats.MaxBatch)
}

// Clustering over HTTP matches the library's own distortion accounting.
func TestEndToEndCluster(t *testing.T) {
	e := startE2E(t, server.Config{})
	ctx := context.Background()

	res, err := e.cl.Cluster(ctx, "sift", client.ClusterRequest{K: 8, Seed: 5, WithLabels: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 8 || len(res.Labels) != e.idx.N() || res.Distortion <= 0 {
		t.Fatalf("cluster response %+v", res)
	}
	want, err := e.idx.Cluster(ctx, 8, gkmeans.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range res.Labels {
		if l != want.Labels[i] {
			t.Fatalf("label %d = %d, want %d (served clustering differs)", i, l, want.Labels[i])
		}
	}
}

// Graceful shutdown: draining flips health and search to 503 while the
// listener finishes in-flight work.
func TestEndToEndGracefulShutdown(t *testing.T) {
	e := startE2E(t, server.Config{})
	ctx := context.Background()

	e.srv.BeginShutdown()

	// The default client retries 503s (a restarting server would recover);
	// here the drain is permanent, so the retried error still surfaces.
	var apiErr *client.APIError
	if err := e.cl.Health(ctx); !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("health during drain = %v", err)
	}
	if _, err := e.cl.Search(ctx, "sift", e.queries.Row(0), 5, 32); !errors.As(err, &apiErr) ||
		apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("search during drain = %v", err)
	}

	// Release the client's kept-alive connections; without this the
	// server's drain waits ~5s for half-open idle connections.
	e.cl.Close()
	shutdownCtx, cancel := context.WithTimeout(ctx, 15*time.Second)
	defer cancel()
	if err := e.hs.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("listener shutdown: %v", err)
	}
}

// The client retries transient 503s and connection-level failures, and
// gives up immediately on definitive 4xx verdicts.
func TestClientRetries(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"warming up"}`, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()

	cl := client.New(ts.URL, client.WithRetries(3), client.WithRetryBackoff(time.Millisecond))
	if err := cl.Health(context.Background()); err != nil {
		t.Fatalf("retried health check failed: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 failures + success)", got)
	}

	// 404 is definitive: exactly one attempt.
	calls.Store(0)
	notFound := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"unknown index"}`, http.StatusNotFound)
	}))
	defer notFound.Close()
	cl = client.New(notFound.URL, client.WithRetries(3), client.WithRetryBackoff(time.Millisecond))
	var apiErr *client.APIError
	if _, err := cl.Stats(context.Background(), "x"); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Fatalf("stats error = %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("definitive 404 retried: %d calls", got)
	}

	// Register never retries: a lost response may mask an applied
	// registration, so exactly one attempt goes out even on 503.
	calls.Store(0)
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"warming up"}`, http.StatusServiceUnavailable)
	}))
	defer flaky.Close()
	cl = client.New(flaky.URL, client.WithRetries(3), client.WithRetryBackoff(time.Millisecond))
	if _, err := cl.Register(context.Background(), "x", "x.gkx"); !errors.As(err, &apiErr) || apiErr.Status != 503 {
		t.Fatalf("register error = %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("register retried: %d calls, want 1", got)
	}

	// Context cancellation cuts the retry loop short.
	dead := client.New("http://127.0.0.1:1", client.WithRetries(50), client.WithRetryBackoff(20*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := dead.Health(ctx); err == nil {
		t.Fatal("health against dead address succeeded")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("retry loop ignored context for %v", elapsed)
	}
}
