package client

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Typed access to gkserved's Prometheus /metrics endpoint. The exposition
// format is line-oriented text (version 0.0.4); ParseMetrics implements
// enough of it for gkserved's output and any similarly conventional
// exporter: HELP/TYPE comment headers, escaped label values, +Inf/NaN
// sample values, and histogram series. The parser is also what the server
// tests use to prove /metrics stays well-formed.

// MetricFamily is one named metric with its metadata and every sample that
// belongs to it. Histogram families collect their _bucket/_sum/_count
// series as samples under the base name.
type MetricFamily struct {
	Name    string
	Help    string
	Type    string // counter, gauge, histogram, summary or untyped
	Samples []Sample
}

// Sample is one exposition line: the literal series name (for histograms
// this keeps the _bucket/_sum/_count suffix), its label set and the value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Metrics fetches and parses the server's Prometheus exposition. The
// result is ordered as exported; look up families by name with Find.
func (c *Client) Metrics(ctx context.Context) ([]MetricFamily, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, fmt.Errorf("client: building request: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: GET /metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &APIError{Status: resp.StatusCode, Message: resp.Status}
	}
	return ParseMetrics(resp.Body)
}

// Find returns the named family from a parsed exposition, or false.
func Find(families []MetricFamily, name string) (MetricFamily, bool) {
	for _, f := range families {
		if f.Name == name {
			return f, true
		}
	}
	return MetricFamily{}, false
}

// ParseMetrics parses a Prometheus text-format (0.0.4) exposition. Samples
// whose name extends a declared family with a _bucket, _sum or _count
// suffix are attached to that family; samples with no TYPE declaration get
// an implicit untyped family. Malformed lines are errors, not skips — the
// point of parsing in tests is to reject drift.
func ParseMetrics(r io.Reader) ([]MetricFamily, error) {
	var (
		families []MetricFamily
		byName   = map[string]int{}
	)
	ensure := func(name string) *MetricFamily {
		if i, ok := byName[name]; ok {
			return &families[i]
		}
		byName[name] = len(families)
		families = append(families, MetricFamily{Name: name, Type: "untyped"})
		return &families[len(families)-1]
	}
	// familyOf resolves a sample name to its family, honouring histogram
	// and summary suffixes only when the base family was declared.
	familyOf := func(sample string) *MetricFamily {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(sample, suffix)
			if base == sample {
				continue
			}
			if i, ok := byName[base]; ok && (families[i].Type == "histogram" || families[i].Type == "summary") {
				return &families[i]
			}
		}
		return ensure(sample)
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && fields[1] == "TYPE" {
				f := ensure(fields[2])
				if len(fields) >= 4 {
					f.Type = strings.TrimSpace(fields[3])
				}
			} else if len(fields) >= 3 && fields[1] == "HELP" {
				f := ensure(fields[2])
				if len(fields) >= 4 {
					f.Help = unescapeHelp(fields[3])
				}
			}
			continue // any other comment is legal and ignored
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("metrics line %d: %w", lineNo, err)
		}
		f := familyOf(name)
		f.Samples = append(f.Samples, Sample{Name: name, Labels: labels, Value: value})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return families, nil
}

// parseSample parses `name{label="v",...} value [timestamp]`.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i <= 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name = rest[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		end, lbls, lerr := parseLabels(rest)
		if lerr != nil {
			return "", nil, 0, fmt.Errorf("sample %q: %w", line, lerr)
		}
		labels = lbls
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("sample %q: want value [timestamp]", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("sample %q: bad value: %w", line, err)
	}
	return name, labels, value, nil
}

// parseLabels parses a `{k="v",...}` block starting at s[0] == '{' and
// returns the index just past the closing brace.
func parseLabels(s string) (end int, labels map[string]string, err error) {
	labels = map[string]string{}
	i := 1
	for {
		for i < len(s) && (s[i] == ',' || s[i] == ' ') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, labels, nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return 0, nil, fmt.Errorf("unterminated label block")
		}
		key := s[i : i+eq]
		if key == "" {
			return 0, nil, fmt.Errorf("empty label name")
		}
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return 0, nil, fmt.Errorf("label %q: unquoted value", key)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(s) {
				return 0, nil, fmt.Errorf("label %q: unterminated value", key)
			}
			switch s[i] {
			case '\\':
				if i+1 >= len(s) {
					return 0, nil, fmt.Errorf("label %q: dangling escape", key)
				}
				switch s[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("label %q: bad escape \\%c", key, s[i+1])
				}
				i += 2
				continue
			case '"':
				i++
			default:
				b.WriteByte(s[i])
				i++
				continue
			}
			break
		}
		labels[key] = b.String()
	}
}

func validMetricName(name string) bool {
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return name != ""
}

func unescapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\n`, "\n")
	return strings.ReplaceAll(s, `\\`, `\`)
}

// SortedLabelKeys returns a sample's label names in stable order — a
// convenience for callers rendering or diffing metric sets.
func (s Sample) SortedLabelKeys() []string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
