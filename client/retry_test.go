package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"gkmeans/client"
)

func readJSON(r *http.Request, dst any) error {
	defer r.Body.Close()
	return json.NewDecoder(r.Body).Decode(dst)
}

// A 429 shed is retried, but on the server's Retry-After schedule rather
// than the client's own backoff: with a 1ms backoff and a 1s Retry-After,
// the second attempt must not arrive before the hint elapses.
func TestClient429HonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	var gap atomic.Int64 // ns between first and second attempt
	var first time.Time
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			first = time.Now()
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"server at concurrency limit"}`, http.StatusTooManyRequests)
		default:
			gap.Store(int64(time.Since(first)))
			w.Write([]byte(`{"status":"ok"}`))
		}
	}))
	defer ts.Close()

	cl := client.New(ts.URL, client.WithRetries(2), client.WithRetryBackoff(time.Millisecond))
	defer cl.Close()
	if err := cl.Health(context.Background()); err != nil {
		t.Fatalf("shed-then-ok request failed: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2", got)
	}
	if d := time.Duration(gap.Load()); d < 900*time.Millisecond {
		t.Fatalf("retry arrived %v after the 429; Retry-After of 1s was not honoured", d)
	}
}

// A 429 without success within the retry budget surfaces as an APIError
// carrying the parsed Retry-After, so callers can keep pacing themselves.
func TestClient429ErrorCarriesRetryAfter(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		http.Error(w, `{"error":"shed"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()

	cl := client.New(ts.URL, client.WithRetries(0))
	defer cl.Close()
	err := cl.Health(context.Background())
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("error = %v, want APIError 429", err)
	}
	if apiErr.RetryAfter != 7*time.Second {
		t.Fatalf("RetryAfter = %v, want 7s", apiErr.RetryAfter)
	}
}

// 504 joins 502/503 as a bounded-retry transient: the budget is spent, then
// the error surfaces.
func TestClient504RetriedBounded(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"search deadline exceeded"}`, http.StatusGatewayTimeout)
	}))
	defer ts.Close()

	cl := client.New(ts.URL, client.WithRetries(2), client.WithRetryBackoff(time.Millisecond))
	defer cl.Close()
	err := cl.Health(context.Background())
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusGatewayTimeout {
		t.Fatalf("error = %v, want APIError 504", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (initial + 2 retries)", got)
	}
}

// A context deadline is forwarded to the server as timeout_ms on search
// requests, and only on them.
func TestClientForwardsDeadlineAsTimeoutMS(t *testing.T) {
	var seen atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req client.SearchRequest
		if err := readJSON(r, &req); err != nil {
			t.Errorf("decoding search request: %v", err)
		}
		seen.Store(int64(req.TimeoutMS))
		w.Write([]byte(`{"results":[[]]}`))
	}))
	defer ts.Close()

	cl := client.New(ts.URL, client.WithRetries(0))
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := cl.Search(ctx, "x", []float32{1}, 1, 0); err != nil {
		t.Fatal(err)
	}
	if ms := seen.Load(); ms <= 0 || ms > 5000 {
		t.Fatalf("timeout_ms = %d, want in (0, 5000]", ms)
	}

	// Without a deadline the field stays zero (omitted on the wire).
	if _, err := cl.Search(context.Background(), "x", []float32{1}, 1, 0); err != nil {
		t.Fatal(err)
	}
	if ms := seen.Load(); ms != 0 {
		t.Fatalf("timeout_ms = %d without a deadline, want 0", ms)
	}
}
