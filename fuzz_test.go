package gkmeans

import (
	"bytes"
	"context"
	"testing"

	"gkmeans/internal/dataset"
	"gkmeans/internal/vec"
)

// FuzzReadIndexFrom hammers the .gkx container parser with mutated bytes.
// The contract under fuzzing is the same one TestReadIndexFromCorruptInputs
// checks pointwise: ReadIndexFrom either returns an error or an index whose
// accessors are safe to call and which re-serialises cleanly — it never
// panics and never allocates absurdly from a lying length field.
//
// CI runs this for a short budget: go test -fuzz=FuzzReadIndexFrom -fuzztime=20s .
func FuzzReadIndexFrom(f *testing.F) {
	seedBlob := func(opts ...Option) []byte {
		data := dataset.SIFTLike(60, 3)
		idx, err := Build(context.Background(), data,
			append([]Option{WithKappa(4), WithXi(10), WithTau(2), WithSeed(5)}, opts...)...)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := idx.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}

	mono := seedBlob()
	clustered := seedBlob(WithMaxIter(4), WithClusters(3))
	sharded := seedBlob(WithShards(2))
	// A mutated index exercises the v3 layout: appended shard, tombstones,
	// an idmap segment from compaction, nonzero generations.
	mutated := func() []byte {
		data := dataset.SIFTLike(60, 3)
		idx, err := Build(context.Background(), data, WithKappa(4), WithXi(10), WithTau(2), WithSeed(5))
		if err != nil {
			f.Fatal(err)
		}
		extra := NewMatrix(4, idx.Dim())
		for i := range extra.Data {
			extra.Data[i] = float32(i)
		}
		if idx, err = idx.Append(context.Background(), extra); err != nil {
			f.Fatal(err)
		}
		if idx, err = idx.Delete(1, 5, 61); err != nil {
			f.Fatal(err)
		}
		if idx, err = idx.Compact(context.Background(), 0); err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := idx.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}()
	// A routed index exercises the v4 layout: the routing flag plus the
	// centroid trailer after the shard segments.
	routed := seedBlob(WithShards(2), WithRouting(2))
	// v5 blobs exercise the uint8 layout: the dtype word in the header and
	// the byte-packed dataset, monolithic and sharded+routed.
	u8Blob := func(opts ...Option) []byte {
		u8, err := vec.U8FromMatrix(dataset.SIFTLike(60, 3))
		if err != nil {
			f.Fatal(err)
		}
		idx, err := BuildU8(context.Background(), u8,
			append([]Option{WithKappa(4), WithXi(10), WithTau(2), WithSeed(5)}, opts...)...)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := idx.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	u8Mono := u8Blob()
	u8Routed := u8Blob(WithShards(2), WithRouting(2))
	f.Add(mono)
	f.Add(clustered)
	f.Add(sharded)
	f.Add(mutated)
	f.Add(routed)
	f.Add([]byte{})
	f.Add([]byte("GKXI"))
	// A valid prefix with a lying tail exercises the section-length checks.
	f.Add(mono[:len(mono)/2])
	flipped := append([]byte(nil), sharded...)
	flipped[8] ^= 0xff // version / shard-count region
	f.Add(flipped)
	// Corrupt routing centroids: the trailer sits at the end of a v4 blob,
	// so a late byte flip lands in the centroid data or its shape words.
	badCentroid := append([]byte(nil), routed...)
	badCentroid[len(badCentroid)-3] ^= 0xff
	f.Add(badCentroid)
	f.Add(routed[:len(routed)-7]) // truncated routing trailer
	f.Add(u8Mono)
	f.Add(u8Routed)
	// A lying dtype word on an otherwise valid v5 blob exercises the
	// double-pinned dtype check (header flag AND dtype word must agree).
	badDtype := append([]byte(nil), u8Mono...)
	badDtype[16] ^= 0xff
	f.Add(badDtype)
	// The uint8 flag forced onto a float v1 blob exercises the inverse check.
	badFlag := append([]byte(nil), mono...)
	badFlag[8] |= 1 << 4
	f.Add(badFlag)

	f.Fuzz(func(t *testing.T, b []byte) {
		idx, err := ReadIndexFrom(bytes.NewReader(b))
		if err != nil {
			return
		}
		// Accepted inputs must round-trip through the writer.
		if idx.N() < 0 || idx.Dim() < 0 {
			t.Fatalf("accepted index reports negative shape %d×%d", idx.N(), idx.Dim())
		}
		var out bytes.Buffer
		if _, err := idx.WriteTo(&out); err != nil {
			t.Fatalf("accepted index fails to re-serialise: %v", err)
		}
	})
}
