// Word-embedding clustering — the Glove1M workload of the paper's Table 1:
// group 100-dimensional word vectors into semantic clusters.
//
// The example traces the distortion-versus-epoch curve (the paper's Fig. 5
// shape) and shows how to reuse one k-NN graph across several k values,
// which is the economical way to sweep cluster granularity.
//
// Run with: go run ./examples/textwords
package main

import (
	"context"
	"fmt"
	"log"

	"gkmeans"
	"gkmeans/internal/dataset"
)

func main() {
	ctx := context.Background()
	data := dataset.GloVeLike(10000, 11)
	fmt.Printf("clustering %d GloVe-like word vectors (d=%d)\n\n", data.N, data.Dim)

	// Build the index once (the expensive step is its k-NN graph)...
	idx, err := gkmeans.Build(ctx, data,
		gkmeans.WithKappa(20), gkmeans.WithXi(50), gkmeans.WithTau(8), gkmeans.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}

	// ...then sweep cluster granularity cheaply on the same index.
	fmt.Printf("%-8s %12s %14s %8s\n", "k", "distortion", "avg candidates", "epochs")
	for _, k := range []int{100, 300, 1000} {
		res, err := idx.Cluster(ctx, k, gkmeans.WithMaxIter(25), gkmeans.WithSeed(6))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %12.3f %14.1f %8d\n", k, res.Distortion(data), res.AvgCandidates, res.Iters)
	}

	// Distortion-vs-epoch trace at k=300 (the Fig. 5 view).
	res, err := idx.Cluster(ctx, 300, gkmeans.WithMaxIter(15), gkmeans.WithSeed(6), gkmeans.WithTrace())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndistortion by epoch (k=300):")
	for _, h := range res.History {
		if h.Iter <= 5 || h.Iter == len(res.History) {
			fmt.Printf("  epoch %2d: %.3f (%d moves)\n", h.Iter, h.Distortion, h.Moves)
		}
	}

	// Inspect one cluster: word ids grouped as "semantically" close vectors.
	members := []int{}
	for i, l := range res.Labels {
		if l == res.Labels[0] && len(members) < 8 {
			members = append(members, i)
		}
	}
	fmt.Printf("\nword ids sharing a cluster with word 0: %v\n", members)
}
