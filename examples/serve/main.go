// Serving an index over HTTP — the gkserved stack in one process.
//
// The example builds an index over SIFT-like descriptors, persists it,
// starts the gkserved server on a random local port and talks to it with
// the typed Go client: health check, index listing, micro-batched
// single-query searches fired from many goroutines, one explicit batch
// search, the clustering refusal a sharded index answers with, and the
// serving stats that show how many SearchBatch executions the coalescer
// compressed the query stream into.
//
// Run with: go run ./examples/serve
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"gkmeans"
	"gkmeans/client"
	"gkmeans/internal/dataset"
	"gkmeans/internal/server"
)

func main() {
	ctx := context.Background()

	// Build and persist an index, exactly as an offline pipeline would.
	// WithShards splits the build into two independently constructed
	// sub-indexes; serving, search and stats below are oblivious to it —
	// drop the option and everything behaves identically.
	all := dataset.SIFTLike(5200, 41)
	data, queries := gkmeans.Split(all, 200)
	idx, err := gkmeans.Build(ctx, data,
		gkmeans.WithKappa(20), gkmeans.WithTau(8), gkmeans.WithSeed(41),
		gkmeans.WithShards(2))
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "gkserved-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "sift.gkx")
	if err := gkmeans.SaveIndex(path, idx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d × %d, saved to %s\n", idx.N(), idx.Dim(), path)

	// Start gkserved in-process on a random port. `cmd/gkserved` wraps
	// exactly this server; -index sift=sift.gkx replaces RegisterFile.
	srv := server.New(server.Config{Window: 2 * time.Millisecond, MaxBatch: 16})
	if err := srv.RegisterFile("sift", path); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)

	// Query it with the typed client.
	cl := client.New("http://" + ln.Addr().String())
	if err := cl.Health(ctx); err != nil {
		log.Fatal(err)
	}
	infos, err := cl.Indexes(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving: %+v\n", infos)

	// 64 goroutines of single-query traffic: the server coalesces them
	// into shared SearchBatch calls.
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				q := queries.Row((g*4 + i) % queries.N)
				if _, err := cl.Search(ctx, "sift", q, 10, 64); err != nil {
					log.Fatal(err)
				}
			}
		}(g)
	}
	wg.Wait()
	fmt.Printf("256 concurrent single-query searches in %v\n",
		time.Since(start).Round(time.Millisecond))

	// One explicit batch search (bypasses the coalescer).
	rows := make([][]float32, 32)
	for i := range rows {
		rows[i] = queries.Row(i)
	}
	batch, err := cl.SearchBatch(ctx, "sift", rows, 10, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch search: %d result lists, first hit id=%d dist=%.1f\n",
		len(batch), batch[0][0].ID, batch[0][0].Dist)

	// Clustering needs a global k-NN graph, which a sharded index does not
	// have: the server refuses with a 400 the typed client surfaces as an
	// *client.APIError. Serve a monolithic index to cluster server-side.
	var apiErr *client.APIError
	if _, err := cl.Cluster(ctx, "sift", client.ClusterRequest{K: 64, Seed: 41}); errors.As(err, &apiErr) {
		fmt.Printf("clustering a sharded index: HTTP %d (%s)\n", apiErr.Status, apiErr.Message)
	} else if err != nil {
		log.Fatal(err)
	}

	stats, err := cl.Stats(ctx, "sift")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coalescer: %d queries served by %d SearchBatch calls (largest batch %d)\n",
		stats.Queries-32, stats.Batches, stats.MaxBatch) // -32: the explicit batch bypasses it

	// Drain and stop, as gkserved does on SIGTERM. Closing the client
	// first releases its kept-alive connections so the drain is instant.
	cl.Close()
	srv.BeginShutdown()
	shutdownCtx, cancel := context.WithTimeout(ctx, 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained and stopped")
}
