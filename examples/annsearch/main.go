// Approximate nearest-neighbour search over the Alg. 3 graph — the paper's
// §4.3 claim: the same graph that accelerates clustering serves ANN search.
//
// The example builds an index over VLAD-like image descriptors, answers a
// held-out query set at several pool sizes (ef), and reports recall@1 and
// per-query latency against exact brute force. Batch queries run through
// Index.SearchBatch, which fans the query set across all cores against the
// one shared index.
//
// Run with: go run ./examples/annsearch
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"gkmeans"
	"gkmeans/internal/dataset"
)

func main() {
	all := dataset.VLADLike(8200, 17)
	// Hold out 200 in-distribution queries.
	data, queries := gkmeans.Split(all, 200)

	fmt.Printf("reference set %d × %d, %d queries\n", data.N, data.Dim, queries.N)

	start := time.Now()
	// Tau higher than the clustering default: §4.4 recommends up to 32
	// rounds when the graph is built for search.
	idx, err := gkmeans.Build(context.Background(), data,
		gkmeans.WithKappa(20), gkmeans.WithXi(50), gkmeans.WithTau(12),
		gkmeans.WithSeed(19), gkmeans.WithEntryPoints(32))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index construction: %v\n", time.Since(start).Round(time.Millisecond))

	start = time.Now()
	truth := gkmeans.ExactNeighbors(data, queries, 1)
	bruteTotal := time.Since(start)
	fmt.Printf("brute force: %v total (%.2f ms/query)\n\n",
		bruteTotal.Round(time.Millisecond),
		float64(bruteTotal.Microseconds())/1000/float64(queries.N))

	fmt.Printf("%-6s %10s %14s %14s\n", "ef", "recall@1", "ms/query", "batch ms/query")
	for _, ef := range []int{8, 16, 32, 64, 128} {
		// Sequential single queries.
		start = time.Now()
		hit := 0
		for qi := 0; qi < queries.N; qi++ {
			res := idx.Search(queries.Row(qi), 1, ef)
			if len(res) > 0 && len(truth[qi]) > 0 && res[0].ID == truth[qi][0] {
				hit++
			}
		}
		seq := time.Since(start)

		// The same query set as one concurrent batch on the same index.
		start = time.Now()
		idx.SearchBatch(queries, 1, ef)
		batch := time.Since(start)

		fmt.Printf("%-6d %10.3f %14.3f %14.3f\n", ef,
			float64(hit)/float64(queries.N),
			float64(seq.Microseconds())/1000/float64(queries.N),
			float64(batch.Microseconds())/1000/float64(queries.N))
	}
}
