// Approximate nearest-neighbour search over the Alg. 3 graph — the paper's
// §4.3 claim: the same graph that accelerates clustering serves ANN search.
//
// The example builds a graph over VLAD-like image descriptors, answers a
// held-out query set at several pool sizes (ef), and reports recall@1 and
// per-query latency against exact brute force.
//
// Run with: go run ./examples/annsearch
package main

import (
	"fmt"
	"log"
	"time"

	"gkmeans"
	"gkmeans/internal/dataset"
)

func main() {
	all := dataset.VLADLike(8200, 17)
	// Hold out 200 in-distribution queries.
	dataIdx, queryIdx := make([]int, 0, 8000), make([]int, 0, 200)
	for i := 0; i < all.N; i++ {
		if i%41 == 0 && len(queryIdx) < 200 {
			queryIdx = append(queryIdx, i)
		} else {
			dataIdx = append(dataIdx, i)
		}
	}
	data := all.SubsetRows(dataIdx)
	queries := all.SubsetRows(queryIdx)

	fmt.Printf("reference set %d × %d, %d queries\n", data.N, data.Dim, queries.N)

	start := time.Now()
	// Tau higher than the clustering default: §4.4 recommends up to 32
	// rounds when the graph is built for search.
	g, err := gkmeans.BuildGraph(data, gkmeans.Options{Kappa: 20, Xi: 50, Tau: 12, Seed: 19})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph construction: %v\n", time.Since(start).Round(time.Millisecond))

	s, err := gkmeans.NewSearcher(data, g, 32)
	if err != nil {
		log.Fatal(err)
	}

	start = time.Now()
	truth := gkmeans.ExactNeighbors(data, queries, 1)
	bruteTotal := time.Since(start)
	fmt.Printf("brute force: %v total (%.2f ms/query)\n\n",
		bruteTotal.Round(time.Millisecond),
		float64(bruteTotal.Microseconds())/1000/float64(queries.N))

	fmt.Printf("%-6s %10s %14s\n", "ef", "recall@1", "ms/query")
	for _, ef := range []int{8, 16, 32, 64, 128} {
		start = time.Now()
		hit := 0
		for qi := 0; qi < queries.N; qi++ {
			res := s.Search(queries.Row(qi), 1, ef)
			if len(res) > 0 && len(truth[qi]) > 0 && res[0].ID == truth[qi][0] {
				hit++
			}
		}
		elapsed := time.Since(start)
		fmt.Printf("%-6d %10.3f %14.3f\n", ef,
			float64(hit)/float64(queries.N),
			float64(elapsed.Microseconds())/1000/float64(queries.N))
	}
}
