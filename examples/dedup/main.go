// Near-duplicate detection — the "large-scale image linking" application
// from the paper's introduction: find all pairs of items whose descriptors
// are almost identical, without the O(n²) all-pairs scan.
//
// The k-NN graph already contains each item's closest neighbours, so
// near-duplicate mining reduces to one pass over its edges with a distance
// threshold. This example plants known duplicates in a VLAD-like corpus and
// measures how many the graph recovers.
//
// Run with: go run ./examples/dedup
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"gkmeans"
	"gkmeans/internal/dataset"
)

func main() {
	base := dataset.VLADLike(6000, 23)
	rng := rand.New(rand.NewSource(24))

	// Plant 300 near-duplicates: copies of random rows with tiny jitter.
	const planted = 300
	rows := make([][]float32, 0, base.N+planted)
	for i := 0; i < base.N; i++ {
		rows = append(rows, base.Row(i))
	}
	type pair struct{ orig, dup int }
	truth := make([]pair, 0, planted)
	for p := 0; p < planted; p++ {
		src := rng.Intn(base.N)
		dup := make([]float32, base.Dim)
		copy(dup, base.Row(src))
		for j := range dup {
			dup[j] += float32(rng.NormFloat64()) * 0.002
		}
		truth = append(truth, pair{src, len(rows)})
		rows = append(rows, dup)
	}
	data := gkmeans.FromRows(rows)
	fmt.Printf("corpus: %d items (%d planted near-duplicates)\n", data.N, planted)

	start := time.Now()
	idx, err := gkmeans.Build(context.Background(), data,
		gkmeans.WithKappa(10), gkmeans.WithXi(50), gkmeans.WithTau(8), gkmeans.WithSeed(25))
	if err != nil {
		log.Fatal(err)
	}
	g := idx.Graph()
	fmt.Printf("graph built in %v\n", time.Since(start).Round(time.Millisecond))

	// One pass over graph edges: any edge below the threshold is a
	// candidate duplicate pair.
	const threshold = 0.01 // squared distance; unit-norm vectors
	found := map[[2]int32]bool{}
	for i, list := range g.Lists {
		for _, nb := range list {
			if nb.Dist < threshold {
				a, b := int32(i), nb.ID
				if a > b {
					a, b = b, a
				}
				found[[2]int32{a, b}] = true
			}
		}
	}

	hits := 0
	for _, p := range truth {
		a, b := int32(p.orig), int32(p.dup)
		if a > b {
			a, b = b, a
		}
		if found[[2]int32{a, b}] {
			hits++
		}
	}
	fmt.Printf("candidate pairs below threshold: %d\n", len(found))
	fmt.Printf("planted duplicates recovered: %d/%d (%.1f%%)\n",
		hits, planted, 100*float64(hits)/float64(planted))
	fmt.Printf("distance computations avoided vs all-pairs: %.1f%%\n",
		100*(1-float64(g.EdgeCount())/float64(data.N*(data.N-1)/2)))
}
