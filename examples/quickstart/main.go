// Quickstart: cluster 5,000 synthetic 128-d descriptors into 200 clusters
// with the full GK-means pipeline and inspect the result.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gkmeans"
	"gkmeans/internal/dataset"
)

func main() {
	// SIFT-like synthetic descriptors: 5,000 samples, 128 dimensions.
	data := dataset.SIFTLike(5000, 42)
	k := 200

	res, err := gkmeans.Cluster(data, k, gkmeans.Options{
		Kappa:   20, // graph neighbours per sample
		Xi:      50, // refinement cluster size during graph construction
		Tau:     8,  // graph construction rounds
		MaxIter: 30,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("clustered %d samples into %d clusters\n", data.N, k)
	fmt.Printf("  graph construction: %v\n", res.GraphTime)
	fmt.Printf("  2M-tree init:       %v\n", res.InitTime)
	fmt.Printf("  optimisation:       %v (%d epochs)\n", res.IterTime, res.Iters)
	fmt.Printf("  average distortion: %.2f\n", res.Distortion(data))
	fmt.Printf("  candidate clusters examined per sample: %.1f of k=%d\n",
		res.AvgCandidates, k)

	// Cluster size distribution.
	sizes := make([]int, k)
	for _, l := range res.Labels {
		sizes[l]++
	}
	min, max := sizes[0], sizes[0]
	for _, s := range sizes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	fmt.Printf("  cluster sizes: min=%d avg=%d max=%d\n", min, data.N/k, max)

	// The graph built for clustering is reusable for nearest-neighbour
	// search — here: find the 5 samples most similar to sample 0.
	s, err := gkmeans.NewSearcher(data, res.Graph, 32)
	if err != nil {
		log.Fatal(err)
	}
	for _, nb := range s.Search(data.Row(0), 5, 32) {
		fmt.Printf("  neighbour of sample 0: id=%d dist=%.1f cluster=%d\n",
			nb.ID, nb.Dist, res.Labels[nb.ID])
	}
}
