// Quickstart: one gkmeans.Index serving clustering, concurrent ANN search
// and persistence — the walkthrough for the unified API.
//
// The paper's central artefact is a single k-NN graph (Alg. 3) that both
// accelerates k-means (Alg. 2) and answers sub-millisecond ANN queries
// (§4.3). The Index type bundles that artefact with its dataset: build it
// once, then cluster, search from any goroutine, and save it to disk.
//
// Migrating from the deprecated free functions:
//
//	Cluster(data, k, opt)              ->  Build(ctx, data, WithClusters(k), ...)
//	BuildGraph(data, opt)              ->  Build(ctx, data, ...) + Index.Graph()
//	ClusterWithGraph(data, k, g, opt)  ->  NewIndex(data, g) + Index.Cluster(ctx, k)
//	NewSearcher(data, g, entries)      ->  Build/NewIndex + Index.Search
//	SearchBatch(s, q, topK, ef, w)     ->  Index.SearchBatch(q, topK, ef)
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"gkmeans"
	"gkmeans/internal/dataset"
)

func main() {
	// SIFT-like synthetic descriptors: 5,000 samples, 128 dimensions.
	data := dataset.SIFTLike(5000, 42)
	k := 200

	// Build the index: the k-NN graph plus (via WithClusters) a clustering.
	// The context cancels cleanly between graph rounds and epochs — wire it
	// to signal.NotifyContext in a real service.
	idx, err := gkmeans.Build(context.Background(), data,
		gkmeans.WithKappa(20), // graph neighbours per sample
		gkmeans.WithXi(50),    // refinement cluster size during construction
		gkmeans.WithTau(8),    // graph construction rounds
		gkmeans.WithMaxIter(30),
		gkmeans.WithSeed(1),
		gkmeans.WithClusters(k),
	)
	if err != nil {
		log.Fatal(err)
	}
	res := idx.Clusters()

	fmt.Printf("clustered %d samples into %d clusters\n", idx.N(), k)
	fmt.Printf("  graph construction: %v\n", idx.GraphTime())
	fmt.Printf("  2M-tree init:       %v\n", res.InitTime)
	fmt.Printf("  optimisation:       %v (%d epochs)\n", res.IterTime, res.Iters)
	fmt.Printf("  average distortion: %.2f\n", res.Distortion(data))
	fmt.Printf("  candidate clusters examined per sample: %.1f of k=%d\n",
		res.AvgCandidates, k)

	// Cluster size distribution.
	sizes := make([]int, k)
	for _, l := range res.Labels {
		sizes[l]++
	}
	min, max := sizes[0], sizes[0]
	for _, s := range sizes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	fmt.Printf("  cluster sizes: min=%d avg=%d max=%d\n", min, idx.N()/k, max)

	// The same index answers nearest-neighbour queries — concurrently, no
	// per-goroutine searcher plumbing needed.
	var wg sync.WaitGroup
	hits := make([][]gkmeans.Neighbor, 4)
	for g := range hits {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			hits[g] = idx.Search(data.Row(g), 5, 32)
		}(g)
	}
	wg.Wait()
	for _, nb := range hits[0] {
		fmt.Printf("  neighbour of sample 0: id=%d dist=%.1f cluster=%d\n",
			nb.ID, nb.Dist, res.Labels[nb.ID])
	}

	// Persist the whole index — dataset, graph and clustering — and load it
	// back; the loaded index answers queries identically.
	dir, err := os.MkdirTemp("", "gkmeans-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "quickstart.gkx")
	if err := gkmeans.SaveIndex(path, idx); err != nil {
		log.Fatal(err)
	}
	loaded, err := gkmeans.LoadIndex(path)
	if err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(path)
	fmt.Printf("  index saved to %s (%.1f MiB) and loaded: %d samples, k=%d\n",
		filepath.Base(path), float64(st.Size())/(1<<20), loaded.N(), loaded.Clusters().K)
	again := loaded.Search(data.Row(0), 5, 32)
	fmt.Printf("  loaded-index search matches: %v\n", again[0] == hits[0][0])
}
