// Visual vocabulary construction — the workload that motivates the paper's
// introduction (bag-of-visual-words retrieval needs k-means with very large
// k over millions of local descriptors).
//
// This example builds a 1,000-word vocabulary over 20,000 SIFT-like local
// descriptors twice: once with exhaustive boost k-means (the quality
// yardstick, O(n·k·d) per epoch) and once with GK-means (O(n·κ·d) per
// epoch), then compares wall clock and distortion — a miniature of the
// paper's Fig. 6/7 trade-off.
//
// Run with: go run ./examples/vocab
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"gkmeans"
	"gkmeans/internal/dataset"
)

func main() {
	data := dataset.SIFTLike(20000, 7)
	k := 1000

	fmt.Printf("building a %d-word visual vocabulary over %d descriptors (d=%d)\n\n",
		k, data.N, data.Dim)

	startG := time.Now()
	idx, err := gkmeans.Build(context.Background(), data,
		gkmeans.WithKappa(20), gkmeans.WithXi(50), gkmeans.WithTau(6),
		gkmeans.WithMaxIter(20), gkmeans.WithSeed(3), gkmeans.WithClusters(k))
	if err != nil {
		log.Fatal(err)
	}
	gres := idx.Clusters()
	gTime := time.Since(startG)
	gE := gres.Distortion(data)

	startB := time.Now()
	bres, err := gkmeans.BoostKMeans(data, k, gkmeans.Options{MaxIter: 20, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	bTime := time.Since(startB)
	bE := bres.Distortion(data)

	fmt.Printf("%-14s %12s %12s %10s\n", "method", "time", "distortion", "epochs")
	fmt.Printf("%-14s %12v %12.2f %10d\n", "GK-means", gTime.Round(time.Millisecond), gE, gres.Iters)
	fmt.Printf("%-14s %12v %12.2f %10d\n", "boost k-means", bTime.Round(time.Millisecond), bE, bres.Iters)
	fmt.Printf("\nspeed-up %.1fx at %.1f%% distortion overhead\n",
		float64(bTime)/float64(gTime), 100*(gE-bE)/bE)
	fmt.Printf("GK-means examined %.1f candidate clusters per descriptor (k = %d)\n",
		gres.AvgCandidates, k)

	// Quantise a few "query" descriptors against the vocabulary: the
	// assignment step of a bag-of-words pipeline.
	queries := dataset.SIFTLike(5, 99)
	fmt.Println("\nquantising 5 query descriptors to visual words:")
	for qi := 0; qi < queries.N; qi++ {
		q := queries.Row(qi)
		best, bestD := 0, float32(0)
		for w := 0; w < k; w++ {
			d := l2sqr(q, gres.Centroids.Row(w))
			if w == 0 || d < bestD {
				best, bestD = w, d
			}
		}
		fmt.Printf("  query %d -> word %d (dist %.1f)\n", qi, best, bestD)
	}
}

func l2sqr(a, b []float32) float32 {
	var s float32
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
