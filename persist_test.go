package gkmeans

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gkmeans/internal/dataset"
)

// smallClusteredIndex builds a compact index with a clustering section so
// corruption tests cover every section of the .gkx container.
func smallClusteredIndex(t *testing.T) *Index {
	t.Helper()
	data := dataset.GloVeLike(80, 31)
	idx, err := Build(context.Background(), data,
		WithKappa(5), WithXi(15), WithTau(3), WithSeed(32),
		WithMaxIter(5), WithClusters(4))
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// A write failure partway through SaveIndex must leave the previous file
// untouched and no temporary behind — a truncated .gkx at the target path
// would make a later gkserved -index refuse to start.
func TestWriteFileAtomicPreservesOldFileOnFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "idx.gkx")
	const sentinel = "previous good index bytes"
	if err := os.WriteFile(path, []byte(sentinel), 0o644); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("disk full")
	err := writeFileAtomic(path, func(w io.Writer) error {
		// Write some bytes first so a non-atomic implementation would have
		// already truncated the target.
		if _, err := w.Write(make([]byte, 1024)); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("injected write failure not propagated: %v", err)
	}

	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("target file gone after failed save: %v", err)
	}
	if string(got) != sentinel {
		t.Fatalf("target file clobbered by failed save: %q", got)
	}
	assertNoTempFiles(t, dir)
}

func TestWriteFileAtomicNoFileOnFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fresh.gkx")
	err := writeFileAtomic(path, func(w io.Writer) error {
		_, _ = w.Write([]byte("partial"))
		return errors.New("interrupted")
	})
	if err == nil {
		t.Fatal("injected failure not propagated")
	}
	if _, serr := os.Stat(path); !os.IsNotExist(serr) {
		t.Fatalf("failed save left a file at the target path: %v", serr)
	}
	assertNoTempFiles(t, dir)
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temporary file %s left behind", e.Name())
		}
	}
}

// SaveIndex over an existing (possibly corrupt) file must replace it whole:
// afterwards LoadIndex sees only the new, complete index.
func TestSaveIndexReplacesExistingFile(t *testing.T) {
	idx := smallClusteredIndex(t)
	path := filepath.Join(t.TempDir(), "idx.gkx")
	if err := os.WriteFile(path, []byte("garbage that is not an index"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := SaveIndex(path, idx); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(path)
	if err != nil {
		t.Fatalf("load after overwrite: %v", err)
	}
	if loaded.N() != idx.N() || loaded.Clusters() == nil {
		t.Fatal("overwritten index incomplete")
	}
}

// Monolithic indexes must keep writing the v1 single-segment layout so
// .gkx files stay loadable by pre-sharding readers, and a load/save cycle
// must be byte-stable in both directions.
func TestMonolithicStaysVersion1(t *testing.T) {
	idx := smallClusteredIndex(t)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(buf.Bytes()[4:]); v != 1 {
		t.Fatalf("monolithic index wrote format version %d, want 1", v)
	}
	loaded, err := ReadIndexFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Sharded() {
		t.Fatal("v1 file loaded as sharded")
	}
	var again bytes.Buffer
	if _, err := loaded.WriteTo(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("v1 load/save round-trip changed bytes")
	}
}

// smallShardedIndex builds a compact sharded index for the v2 corruption
// tests.
func smallShardedIndex(t *testing.T) *Index {
	t.Helper()
	data := dataset.SIFTLike(120, 13)
	idx, err := Build(context.Background(), data,
		WithShards(3), WithKappa(5), WithXi(15), WithTau(3), WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// shardedBlob serialises the index and returns the bytes plus the offsets
// of the v2 layout landmarks used by the corruption tests.
func shardedBlob(t *testing.T, idx *Index) (whole []byte, tableOff, segmentsOff int) {
	t.Helper()
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	whole = buf.Bytes()
	// v2 layout: 24-byte header, matrix (8-byte shape + payload), segment
	// table (16 bytes per shard), then the segments.
	tableOff = 24 + 8 + 4*idx.N()*idx.Dim()
	segmentsOff = tableOff + 16*len(idx.shards)
	return whole, tableOff, segmentsOff
}

// Corrupt multi-segment containers — truncations (in the header, the
// segment table and the segments), a lying shard count and inconsistent
// table entries — must always produce an error: never a panic, never a
// misaligned read that "succeeds".
func TestReadShardedCorruptInputs(t *testing.T) {
	idx := smallShardedIndex(t)
	whole, tableOff, segmentsOff := shardedBlob(t, idx)
	if v := binary.LittleEndian.Uint32(whole[4:]); v != 2 {
		t.Fatalf("sharded index wrote format version %d, want 2", v)
	}

	mustErr := func(t *testing.T, name string, b []byte) {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: ReadIndexFrom panicked: %v", name, r)
			}
		}()
		if _, err := ReadIndexFrom(bytes.NewReader(b)); err == nil {
			t.Fatalf("%s: corrupt input accepted", name)
		}
	}

	t.Run("truncations", func(t *testing.T) {
		stride := len(whole) / 120
		if stride < 1 {
			stride = 1
		}
		for cut := 0; cut < len(whole); cut += stride {
			mustErr(t, fmt.Sprintf("cut at %d/%d", cut, len(whole)), whole[:cut])
		}
		// Boundary cuts: mid-header, table start, mid-table (the "truncated
		// segment table" case), segments start, mid-segment.
		for _, cut := range []int{4, 16, 20, tableOff, tableOff + 7, tableOff + 16, segmentsOff, segmentsOff + 3, len(whole) - 1} {
			mustErr(t, fmt.Sprintf("boundary cut at %d", cut), whole[:cut])
		}
	})

	t.Run("mutations", func(t *testing.T) {
		flip := func(mutate func(b []byte)) []byte {
			b := bytes.Clone(whole)
			mutate(b)
			return b
		}
		cases := []struct {
			name   string
			mutate func(b []byte)
		}{
			{"version 99", func(b []byte) { b[4] = 99 }},
			{"sharded flag missing", func(b []byte) {
				binary.LittleEndian.PutUint32(b[8:], 0)
			}},
			{"shard count zero", func(b []byte) {
				binary.LittleEndian.PutUint32(b[16:], 0)
			}},
			{"shard count one", func(b []byte) {
				binary.LittleEndian.PutUint32(b[16:], 1)
			}},
			{"shard count huge", func(b []byte) {
				binary.LittleEndian.PutUint32(b[16:], 0xFFFFFFFF)
			}},
			// The header says 4 shards but the table and segments hold 3:
			// the row sum no longer covers the dataset.
			{"shard count mismatch", func(b []byte) {
				binary.LittleEndian.PutUint32(b[16:], 4)
			}},
			{"table rows inflated", func(b []byte) {
				binary.LittleEndian.PutUint32(b[tableOff:], 9999)
			}},
			{"table rows zeroed", func(b []byte) {
				binary.LittleEndian.PutUint32(b[tableOff:], 0)
			}},
			{"table segment size wrong", func(b []byte) {
				binary.LittleEndian.PutUint64(b[tableOff+8:], 12)
			}},
			{"table segment size huge", func(b []byte) {
				binary.LittleEndian.PutUint64(b[tableOff+8:], 1<<50)
			}},
			{"segment graph magic", func(b []byte) { b[segmentsOff+8] ^= 0xFF }},
		}
		for _, c := range cases {
			mustErr(t, c.name, flip(c.mutate))
		}
	})
}

// Corrupt container inputs — truncations and targeted bit flips in every
// section — must always produce an error: never a panic, never a runaway
// allocation from an untrusted header.
func TestReadIndexFromCorruptInputs(t *testing.T) {
	idx := smallClusteredIndex(t)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()

	// Section offsets, from the container layout (persist.go): 16-byte
	// header, matrix (8-byte shape + payload), length-prefixed graph
	// section, clustering.
	const hdrEnd = 16
	matrixPayload := 4 * idx.N() * idx.Dim()
	graphSection := hdrEnd + 8 + matrixPayload
	graphSize := binary.LittleEndian.Uint64(whole[graphSection:])
	clustering := graphSection + 8 + int(graphSize)
	if clustering >= len(whole) {
		t.Fatalf("layout arithmetic wrong: clustering offset %d, file %d bytes", clustering, len(whole))
	}

	mustErr := func(t *testing.T, name string, b []byte) {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: ReadIndexFrom panicked: %v", name, r)
			}
		}()
		if _, err := ReadIndexFrom(bytes.NewReader(b)); err == nil {
			t.Fatalf("%s: corrupt input accepted", name)
		}
	}

	// Every strict prefix must fail cleanly, whichever section the cut
	// lands in.
	t.Run("truncations", func(t *testing.T) {
		stride := len(whole) / 150
		if stride < 1 {
			stride = 1
		}
		for cut := 0; cut < len(whole); cut += stride {
			mustErr(t, fmt.Sprintf("cut at %d/%d", cut, len(whole)), whole[:cut])
		}
		// Exact section boundaries are the interesting edge cases.
		for _, cut := range []int{hdrEnd, hdrEnd + 8, graphSection, graphSection + 8, clustering, len(whole) - 1} {
			mustErr(t, fmt.Sprintf("boundary cut at %d", cut), whole[:cut])
		}
	})

	t.Run("bitflips", func(t *testing.T) {
		flip := func(mutate func(b []byte)) []byte {
			b := bytes.Clone(whole)
			mutate(b)
			return b
		}
		cases := []struct {
			name   string
			mutate func(b []byte)
		}{
			{"magic", func(b []byte) { b[0] ^= 0xFF }},
			{"version", func(b []byte) { b[4] = 99 }},
			{"matrix rows huge", func(b []byte) {
				binary.LittleEndian.PutUint32(b[hdrEnd:], 0xFFFFFF00) // allocation-guard territory
			}},
			{"matrix dim zero", func(b []byte) {
				binary.LittleEndian.PutUint32(b[hdrEnd+4:], 0)
			}},
			{"graph section size huge", func(b []byte) {
				binary.LittleEndian.PutUint64(b[graphSection:], 1<<50)
			}},
			{"graph magic", func(b []byte) { b[graphSection+8] ^= 0xFF }},
			{"graph node count huge", func(b []byte) {
				binary.LittleEndian.PutUint32(b[graphSection+12:], 0xFFFFFF00)
			}},
			{"graph kappa zero", func(b []byte) {
				binary.LittleEndian.PutUint32(b[graphSection+16:], 0)
			}},
			{"first list length over kappa", func(b []byte) {
				binary.LittleEndian.PutUint32(b[graphSection+20:], 0xFFFF)
			}},
			{"label out of range", func(b []byte) {
				// First label of the clustering section (after k and iters).
				binary.LittleEndian.PutUint32(b[clustering+8:], 0x7FFFFFFF)
			}},
			{"centroid dim zero", func(b []byte) {
				centroids := clustering + 8 + 4*idx.N()
				binary.LittleEndian.PutUint32(b[centroids+4:], 0)
			}},
		}
		for _, c := range cases {
			mustErr(t, c.name, flip(c.mutate))
		}
	})
}
