package gkmeans

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gkmeans/internal/dataset"
)

// smallClusteredIndex builds a compact index with a clustering section so
// corruption tests cover every section of the .gkx container.
func smallClusteredIndex(t *testing.T) *Index {
	t.Helper()
	data := dataset.GloVeLike(80, 31)
	idx, err := Build(context.Background(), data,
		WithKappa(5), WithXi(15), WithTau(3), WithSeed(32),
		WithMaxIter(5), WithClusters(4))
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// A write failure partway through SaveIndex must leave the previous file
// untouched and no temporary behind — a truncated .gkx at the target path
// would make a later gkserved -index refuse to start.
func TestWriteFileAtomicPreservesOldFileOnFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "idx.gkx")
	const sentinel = "previous good index bytes"
	if err := os.WriteFile(path, []byte(sentinel), 0o644); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("disk full")
	err := writeFileAtomic(path, func(w io.Writer) error {
		// Write some bytes first so a non-atomic implementation would have
		// already truncated the target.
		if _, err := w.Write(make([]byte, 1024)); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("injected write failure not propagated: %v", err)
	}

	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("target file gone after failed save: %v", err)
	}
	if string(got) != sentinel {
		t.Fatalf("target file clobbered by failed save: %q", got)
	}
	assertNoTempFiles(t, dir)
}

func TestWriteFileAtomicNoFileOnFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fresh.gkx")
	err := writeFileAtomic(path, func(w io.Writer) error {
		_, _ = w.Write([]byte("partial"))
		return errors.New("interrupted")
	})
	if err == nil {
		t.Fatal("injected failure not propagated")
	}
	if _, serr := os.Stat(path); !os.IsNotExist(serr) {
		t.Fatalf("failed save left a file at the target path: %v", serr)
	}
	assertNoTempFiles(t, dir)
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temporary file %s left behind", e.Name())
		}
	}
}

// SaveIndex over an existing (possibly corrupt) file must replace it whole:
// afterwards LoadIndex sees only the new, complete index.
func TestSaveIndexReplacesExistingFile(t *testing.T) {
	idx := smallClusteredIndex(t)
	path := filepath.Join(t.TempDir(), "idx.gkx")
	if err := os.WriteFile(path, []byte("garbage that is not an index"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := SaveIndex(path, idx); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(path)
	if err != nil {
		t.Fatalf("load after overwrite: %v", err)
	}
	if loaded.N() != idx.N() || loaded.Clusters() == nil {
		t.Fatal("overwritten index incomplete")
	}
}

// Corrupt container inputs — truncations and targeted bit flips in every
// section — must always produce an error: never a panic, never a runaway
// allocation from an untrusted header.
func TestReadIndexFromCorruptInputs(t *testing.T) {
	idx := smallClusteredIndex(t)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()

	// Section offsets, from the container layout (persist.go): 16-byte
	// header, matrix (8-byte shape + payload), length-prefixed graph
	// section, clustering.
	const hdrEnd = 16
	matrixPayload := 4 * idx.N() * idx.Dim()
	graphSection := hdrEnd + 8 + matrixPayload
	graphSize := binary.LittleEndian.Uint64(whole[graphSection:])
	clustering := graphSection + 8 + int(graphSize)
	if clustering >= len(whole) {
		t.Fatalf("layout arithmetic wrong: clustering offset %d, file %d bytes", clustering, len(whole))
	}

	mustErr := func(t *testing.T, name string, b []byte) {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: ReadIndexFrom panicked: %v", name, r)
			}
		}()
		if _, err := ReadIndexFrom(bytes.NewReader(b)); err == nil {
			t.Fatalf("%s: corrupt input accepted", name)
		}
	}

	// Every strict prefix must fail cleanly, whichever section the cut
	// lands in.
	t.Run("truncations", func(t *testing.T) {
		stride := len(whole) / 150
		if stride < 1 {
			stride = 1
		}
		for cut := 0; cut < len(whole); cut += stride {
			mustErr(t, fmt.Sprintf("cut at %d/%d", cut, len(whole)), whole[:cut])
		}
		// Exact section boundaries are the interesting edge cases.
		for _, cut := range []int{hdrEnd, hdrEnd + 8, graphSection, graphSection + 8, clustering, len(whole) - 1} {
			mustErr(t, fmt.Sprintf("boundary cut at %d", cut), whole[:cut])
		}
	})

	t.Run("bitflips", func(t *testing.T) {
		flip := func(mutate func(b []byte)) []byte {
			b := bytes.Clone(whole)
			mutate(b)
			return b
		}
		cases := []struct {
			name   string
			mutate func(b []byte)
		}{
			{"magic", func(b []byte) { b[0] ^= 0xFF }},
			{"version", func(b []byte) { b[4] = 99 }},
			{"matrix rows huge", func(b []byte) {
				binary.LittleEndian.PutUint32(b[hdrEnd:], 0xFFFFFF00) // allocation-guard territory
			}},
			{"matrix dim zero", func(b []byte) {
				binary.LittleEndian.PutUint32(b[hdrEnd+4:], 0)
			}},
			{"graph section size huge", func(b []byte) {
				binary.LittleEndian.PutUint64(b[graphSection:], 1<<50)
			}},
			{"graph magic", func(b []byte) { b[graphSection+8] ^= 0xFF }},
			{"graph node count huge", func(b []byte) {
				binary.LittleEndian.PutUint32(b[graphSection+12:], 0xFFFFFF00)
			}},
			{"graph kappa zero", func(b []byte) {
				binary.LittleEndian.PutUint32(b[graphSection+16:], 0)
			}},
			{"first list length over kappa", func(b []byte) {
				binary.LittleEndian.PutUint32(b[graphSection+20:], 0xFFFF)
			}},
			{"label out of range", func(b []byte) {
				// First label of the clustering section (after k and iters).
				binary.LittleEndian.PutUint32(b[clustering+8:], 0x7FFFFFFF)
			}},
			{"centroid dim zero", func(b []byte) {
				centroids := clustering + 8 + 4*idx.N()
				binary.LittleEndian.PutUint32(b[centroids+4:], 0)
			}},
		}
		for _, c := range cases {
			mustErr(t, c.name, flip(c.mutate))
		}
	})
}
