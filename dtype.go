package gkmeans

import (
	"context"
	"fmt"
	"math"

	"gkmeans/internal/vec"
)

// The uint8 distance path: SIFT1B-style bvecs data is byte-valued, and
// widening it to float32 at load pays 4x the memory and scan bandwidth the
// data needs. An index built with WithDType(DTypeUint8) — or directly from
// a *U8Matrix via BuildU8 — keeps the dataset as bytes and computes
// candidate distances with exact integer kernels (vec.L2SqrU8 and its
// early-abandoning variant). Graph construction still runs over a
// transient widened copy of each shard, so the graph — and therefore every
// search result and work counter — is bit-identical to the float32 path on
// the same data; only the resident dataset and the per-candidate scans
// shrink. Queries stay []float32 at the API, but on a uint8 index every
// query value must be an exact byte (an integer in [0,255]); Search panics
// otherwise, like a dimension mismatch, and serving layers reject such
// requests up front with CheckByteValues.

// DType identifies the element type an index stores its dataset in.
type DType uint8

const (
	// DTypeFloat32 is the default: float32 rows, float32 kernels.
	DTypeFloat32 DType = iota
	// DTypeUint8 stores byte rows and scans them with exact integer
	// kernels. Build input must be exactly byte-valued.
	DTypeUint8
)

// String returns the wire name of the dtype ("float32", "uint8").
func (d DType) String() string {
	switch d {
	case DTypeFloat32:
		return "float32"
	case DTypeUint8:
		return "uint8"
	}
	return fmt.Sprintf("dtype(%d)", uint8(d))
}

// ParseDType maps a wire name back to a DType; "" means DTypeFloat32.
func ParseDType(s string) (DType, error) {
	switch s {
	case "", "float32":
		return DTypeFloat32, nil
	case "uint8":
		return DTypeUint8, nil
	}
	return 0, fmt.Errorf("gkmeans: unknown dtype %q (want float32 or uint8)", s)
}

// U8Matrix is a row-major uint8 dataset, aliased from the vec layer like
// Matrix and Graph.
type U8Matrix = vec.U8Matrix

// NewU8Matrix allocates a zeroed n×d uint8 matrix.
func NewU8Matrix(n, d int) *U8Matrix { return vec.NewU8Matrix(n, d) }

// WithDType selects the dataset element type Build stores and scans. With
// DTypeUint8 every input value must be an exact byte (an integer in
// [0,255]) — Build returns an error naming the first offender otherwise —
// and the index stores the dataset at 1 byte per value. BuildU8 skips the
// float32 detour entirely for data already loaded as bytes
// (dataset.LoadBvecsU8).
func WithDType(dt DType) Option { return func(c *config) { c.dtype = dt } }

// DType returns the element type of the indexed dataset.
func (x *Index) DType() DType {
	if x.u8 != nil {
		return DTypeUint8
	}
	return DTypeFloat32
}

// DataU8 returns the byte dataset of a uint8 index, or nil for a float32
// one. Treat it as read-only; for a sharded index this is the full dataset.
func (x *Index) DataU8() *U8Matrix { return x.u8 }

// CheckByteValues reports whether every value of q is an exact byte (an
// integer in [0,255]) — the query precondition of a uint8 index. On a
// float32 index it always returns nil. Serving layers call it to turn a
// bad request into an error before the search path panics.
func (x *Index) CheckByteValues(q []float32) error {
	if x.u8 == nil {
		return nil
	}
	for i, v := range q {
		if !(v >= 0 && v <= 255) || v != float32(uint8(v)) {
			return fmt.Errorf("gkmeans: value %v at dim %d is not an exact byte (index dtype uint8)", v, i)
		}
	}
	return nil
}

// BuildU8 is Build for data already held as bytes: it indexes data without
// ever materialising a full float32 copy of it (graph construction widens
// one shard at a time, transiently). The resulting index is identical to
// Build(ctx, data.Widen(), append(opts, WithDType(DTypeUint8))...) — same
// graph, same search results, same counters — at a quarter of the resident
// dataset memory. WithClusters is refused: clustering needs float32
// centroids over the full dataset.
func BuildU8(ctx context.Context, data *U8Matrix, opts ...Option) (*Index, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if data == nil || data.N == 0 {
		return nil, fmt.Errorf("gkmeans: BuildU8 needs a non-empty dataset")
	}
	if int64(data.N) > math.MaxInt32 {
		return nil, fmt.Errorf("gkmeans: dataset has %d rows; sample ids are int32", data.N)
	}
	return buildU8(ctx, data, applyOptions(config{}, opts))
}

// buildU8 is the uint8 dispatch mirroring Build's: validate the option
// set, then route to the monolithic, sharded or routed build. cfg.dtype is
// forced to DTypeUint8 so every shard and clone reports the right dtype.
func buildU8(ctx context.Context, data *U8Matrix, cfg config) (*Index, error) {
	cfg.dtype = DTypeUint8
	if cfg.clusterK > 0 {
		return nil, fmt.Errorf("gkmeans: WithClusters needs float32 centroids over the full dataset; a uint8 index cannot cluster")
	}
	if cfg.routing > 0 && cfg.shards <= 1 {
		return nil, fmt.Errorf("gkmeans: WithRouting routes across shards; combine it with WithShards(n), n > 1")
	}
	if n := clampShards(cfg.shards, data.N); n > 1 {
		if cfg.routing > 0 {
			return buildRouted(ctx, nil, data, cfg, n)
		}
		return buildSharded(ctx, nil, data, cfg, n)
	}
	cfg.routing = 0
	return buildMonoU8(ctx, data, cfg)
}

// buildMonoU8 builds one uint8 monolithic index: the graph is constructed
// over a transient widened copy (bit-identical to the float32 build, since
// bytes are exact in float32), then dropped — only the byte matrix and the
// graph stay resident.
func buildMonoU8(ctx context.Context, data *U8Matrix, cfg config) (*Index, error) {
	x, err := buildMono(ctx, data.Widen(), cfg)
	if err != nil {
		return nil, err
	}
	x.data = nil
	x.u8 = data
	return x, nil
}

// newU8Index wraps a byte dataset and a pre-built graph, mirroring
// NewIndex's validations; the persistence loader assembles v5 segments
// through it.
func newU8Index(data *U8Matrix, g *Graph, cfg config) (*Index, error) {
	if data == nil || data.N == 0 {
		return nil, fmt.Errorf("gkmeans: a uint8 index needs a non-empty dataset")
	}
	if int64(data.N) > math.MaxInt32 {
		return nil, fmt.Errorf("gkmeans: dataset has %d rows; sample ids are int32", data.N)
	}
	if g == nil {
		return nil, fmt.Errorf("gkmeans: a uint8 index needs a graph")
	}
	if g.N() != data.N {
		return nil, fmt.Errorf("gkmeans: graph has %d nodes for %d samples", g.N(), data.N)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("gkmeans: invalid graph: %w", err)
	}
	cfg.dtype = DTypeUint8
	return &Index{u8: data, graph: g, cfg: cfg}, nil
}
