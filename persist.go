package gkmeans

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"gkmeans/internal/knngraph"
	"gkmeans/internal/vec"
)

// Whole-index persistence: a versioned container holding the dataset, the
// k-NN graph (reusing the knngraph wire format as an embedded section) and
// the optional Build-time clustering. Derived search structures (adjacency,
// entry points) are rebuilt on load from the persisted entry-point count,
// so a loaded index answers queries identically to the saved one.
//
// Layout (all little-endian):
//
//	uint32  magic "GKIX"
//	uint32  format version (1)
//	uint32  flags (bit 0: clustering section present)
//	uint32  requested entry points (0 = default)
//	matrix  dataset            (vec.WriteMatrix)
//	section k-NN graph         (knngraph.WriteSection)
//	[clustering: uint32 k, uint32 iters, n×int32 labels,
//	             matrix centroids]
const (
	indexMagic   = uint32(0x474b4958) // "GKIX"
	indexVersion = uint32(1)

	flagClusters = uint32(1 << 0)
)

// countingWriter tracks bytes written so WriteTo can satisfy io.WriterTo.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// WriteTo serialises the whole index to w and returns the number of bytes
// written. It implements io.WriterTo.
func (x *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	var flags uint32
	if x.clusters != nil {
		flags |= flagClusters
	}
	entries := x.cfg.entries
	if entries < 0 {
		entries = 0 // any non-positive request means "default"; keep it 0 on disk
	}
	hdr := []uint32{indexMagic, indexVersion, flags, uint32(entries)}
	if err := binary.Write(cw, binary.LittleEndian, hdr); err != nil {
		return cw.n, err
	}
	if _, err := vec.WriteMatrix(cw, x.data); err != nil {
		return cw.n, err
	}
	if _, err := x.graph.WriteSection(cw); err != nil {
		return cw.n, err
	}
	if x.clusters != nil {
		c := x.clusters
		if err := binary.Write(cw, binary.LittleEndian, []uint32{uint32(c.K), uint32(c.Iters)}); err != nil {
			return cw.n, err
		}
		labels := make([]int32, len(c.Labels))
		for i, l := range c.Labels {
			labels[i] = int32(l)
		}
		if err := binary.Write(cw, binary.LittleEndian, labels); err != nil {
			return cw.n, err
		}
		if _, err := vec.WriteMatrix(cw, c.Centroids); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

// ReadIndexFrom deserialises an index written by WriteTo. The loaded index
// is immediately ready for Search, SearchBatch and Cluster and answers
// searches identically to the index that was saved.
func ReadIndexFrom(r io.Reader) (*Index, error) {
	hdr := make([]uint32, 4)
	if err := binary.Read(r, binary.LittleEndian, hdr); err != nil {
		return nil, fmt.Errorf("gkmeans: reading index header: %w", err)
	}
	if hdr[0] != indexMagic {
		return nil, fmt.Errorf("gkmeans: bad index magic %#x", hdr[0])
	}
	if hdr[1] != indexVersion {
		return nil, fmt.Errorf("gkmeans: unsupported index version %d (want %d)", hdr[1], indexVersion)
	}
	flags, entries := hdr[2], int(hdr[3])

	data, err := vec.ReadMatrix(r)
	if err != nil {
		return nil, err
	}
	g, err := knngraph.ReadSection(r)
	if err != nil {
		return nil, err
	}
	x, err := NewIndex(data, g, WithEntryPoints(entries))
	if err != nil {
		return nil, err
	}
	if flags&flagClusters != 0 {
		var ck [2]uint32
		if err := binary.Read(r, binary.LittleEndian, ck[:]); err != nil {
			return nil, fmt.Errorf("gkmeans: reading clustering header: %w", err)
		}
		labels32 := make([]int32, data.N)
		if err := binary.Read(r, binary.LittleEndian, labels32); err != nil {
			return nil, fmt.Errorf("gkmeans: reading labels: %w", err)
		}
		labels := make([]int, len(labels32))
		for i, l := range labels32 {
			labels[i] = int(l)
		}
		centroids, err := vec.ReadMatrix(r)
		if err != nil {
			return nil, err
		}
		res := &Result{Labels: labels, Centroids: centroids, K: int(ck[0]), Iters: int(ck[1]), Graph: g}
		if err := res.Validate(data); err != nil {
			return nil, fmt.Errorf("gkmeans: corrupt clustering section: %w", err)
		}
		x.clusters = res
	}
	return x, nil
}

// writeFileAtomic writes through a temporary file in path's directory and
// renames it into place only after every byte is down and the file is
// closed. A failed or interrupted write therefore never leaves a truncated
// file at path (which a later gkserved -index would refuse to load) — the
// previous contents, if any, survive intact and the temporary is removed.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	// CreateTemp opens 0600; widen to the 0644 a plain os.Create would
	// typically produce, so an index saved by a build pipeline stays
	// readable by a separate serving user.
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// SaveIndex writes the index to a file on disk, atomically: the index is
// serialised to a temporary file next to path and renamed into place, so a
// mid-write failure cannot leave a truncated index behind.
func SaveIndex(path string, x *Index) error {
	return writeFileAtomic(path, func(w io.Writer) error {
		_, err := x.WriteTo(w)
		return err
	})
}

// LoadIndex reads an index from a file written by SaveIndex.
func LoadIndex(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadIndexFrom(f)
}
